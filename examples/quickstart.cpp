/// Quickstart: build an armchair-GNR FET, run the self-consistent
/// NEGF-Poisson solver at a handful of bias points, and print the device
/// characteristics — the device-level half of the paper in ~40 lines.
///
/// Uses a shortened channel so it completes in seconds; the full 15 nm
/// paper device is just DeviceSpec{} (see tools/gen_tables.cpp).
#include <cstdio>

#include "device/geometry.hpp"
#include "device/sweeps.hpp"
#include "gnr/bandstructure.hpp"

using namespace gnrfet;

int main() {
  device::DeviceSpec spec;
  spec.n_index = 12;               // N=12 armchair ribbon, W = 1.35 nm
  spec.channel_length_nm = 8.0;    // shortened for the demo
  const device::DeviceGeometry geometry(spec);

  std::printf("N=%d A-GNR: width %.2f nm, band gap %.3f eV (%zu atoms, %d slices)\n",
              spec.n_index, geometry.lattice().width_nm(), geometry.modes().band_gap_eV(),
              geometry.lattice().atoms().size(), geometry.lattice().num_slices());

  device::SolveOptions opts;
  opts.energy_step_eV = 4e-3;  // demo resolution
  const auto axis = device::voltage_axis(0.0, 0.75, 7);
  std::printf("\nGate sweep at VD = 0.5 V (Schottky-barrier FET, ambipolar):\n");
  std::printf("%-8s %-14s %-14s\n", "VG (V)", "ID (A)", "Q (C)");
  for (const auto& p : device::sweep_gate(geometry, opts, 0.5, axis)) {
    std::printf("%-8.3f %-14.4e %-14.4e %s\n", p.vg, p.current_A, p.charge_C,
                p.converged ? "" : "(not converged)");
  }
  std::printf("\nNote the current minimum near VG = VD/2 = 0.25 V: both electrons and\n"
              "holes tunnel through the mid-gap-pinned Schottky contacts.\n");
  return 0;
}
