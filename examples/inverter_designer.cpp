/// Inverter designer: pick a (VDD, VT) design point, build the extrinsic
/// 4-GNR complementary inverter from the cached intrinsic tables, and
/// report delay, powers, and noise margin — the circuit-level flow of
/// Sec. 3. First run generates the N=12 device table (a few minutes);
/// afterwards the cache makes this instant.
#include <cstdio>
#include <cstdlib>

#include "circuit/measure.hpp"
#include "explore/tech_explore.hpp"

using namespace gnrfet;

int main(int argc, char** argv) {
  const double vdd = argc > 1 ? std::atof(argv[1]) : 0.4;
  const double vt = argc > 2 ? std::atof(argv[2]) : 0.13;
  std::printf("designing GNRFET inverter at VDD = %.2f V, VT = %.2f V\n", vdd, vt);

  explore::DesignKit kit;
  std::printf("intrinsic device VT0 = %.3f V -> gate work-function offset %.3f V\n",
              kit.vt0(), kit.vt0() - vt);

  const circuit::InverterModels inv = kit.inverter(vt);
  circuit::InverterMeasureOptions opts;
  opts.vdd = vdd;
  const circuit::InverterMetrics m = circuit::measure_inverter(inv, inv, opts);
  if (!m.ok) {
    std::printf("measurement failed (design point may not switch)\n");
    return 1;
  }
  std::printf("\nFO4 delay        : %.2f ps\n", m.delay_s * 1e12);
  std::printf("static power     : %.4g uW\n", m.static_power_W * 1e6);
  std::printf("dynamic power    : %.4g uW (full cycle at %.0f ps period)\n",
              m.dynamic_power_W * 1e6, opts.probe_period_s * 1e12);
  std::printf("static noise marg: %.3f V\n", m.snm_V);
  std::printf("\n(paper operating point B: 7.54 ps, 0.095 uW, 0.706 uW, 0.15 V)\n");
  return 0;
}
