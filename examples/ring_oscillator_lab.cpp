/// Ring-oscillator lab: sweep the supply voltage of the 15-stage FO4
/// GNRFET ring oscillator and watch frequency, power, and EDP trade off —
/// the experiment behind the Fig. 3(b) exploration plane, one axis at a
/// time.
#include <cstdio>
#include <cstdlib>

#include "circuit/measure.hpp"
#include "explore/tech_explore.hpp"

using namespace gnrfet;

int main(int argc, char** argv) {
  const double vt = argc > 1 ? std::atof(argv[1]) : 0.13;
  explore::DesignKit kit;
  const circuit::InverterModels inv = kit.inverter(vt);

  std::printf("15-stage FO4 GNRFET ring oscillator, VT = %.2f V\n", vt);
  std::printf("%-8s %-10s %-12s %-12s %-14s\n", "VDD(V)", "f (GHz)", "Ptot (uW)", "E/cyc (fJ)",
              "EDP (fJ-ps)");
  for (double vdd = 0.25; vdd <= 0.651; vdd += 0.1) {
    circuit::RingMeasureOptions opts;
    opts.vdd = vdd;
    opts.t_stop_s = 2e-9;
    opts.dt_s = 0.4e-12;
    const auto m = circuit::measure_ring_oscillator(
        std::vector<circuit::InverterModels>(15, inv), inv, opts);
    if (!m.ok) {
      std::printf("%-8.2f (does not oscillate)\n", vdd);
      continue;
    }
    std::printf("%-8.2f %-10.2f %-12.4g %-12.4g %-14.4g\n", vdd, m.frequency_Hz / 1e9,
                m.total_power_W * 1e6, m.energy_per_cycle_J * 1e15, m.edp_Js * 1e27);
  }
  std::printf("\nRaising VDD buys frequency at quadratic energy cost; the EDP minimum\n"
              "sits at an intermediate supply (Sec. 3.1 of the paper).\n");
  return 0;
}
