/// Variability walkthrough: compare the nominal inverter against the
/// paper's worst-case corner (n-FET GNRs narrowed to N=9 with a +q oxide
/// impurity, p-FET widened to N=18 with -q) in both the single-GNR and
/// all-GNRs scenarios, and show the latch butterfly collapse of Fig. 7.
#include <cstdio>

#include "explore/latch_study.hpp"
#include "explore/variants.hpp"

using namespace gnrfet;

int main() {
  explore::DesignKit kit;
  explore::VariationStudyOptions opts;  // operating point B

  std::printf("nominal inverter at VDD=%.1f V, VT=%.2f V:\n", opts.vdd, opts.vt);
  const auto base = explore::nominal_inverter_metrics(kit, opts);
  std::printf("  delay %.2f ps | Pstat %.4g uW | Pdyn %.4g uW | SNM %.3f V\n\n",
              base.delay_s * 1e12, base.static_power_W * 1e6, base.dynamic_power_W * 1e6,
              base.snm_V);

  const std::vector<explore::VariantSpec> worst_n = {{9, 1.0}};
  const std::vector<explore::VariantSpec> worst_p = {{18, -1.0}};
  const auto entries = explore::run_variation_study(kit, worst_n, worst_p, opts);
  for (const auto& e : entries) {
    for (int s = 0; s < 2; ++s) {
      std::printf("worst corner, %s: delay %+0.f%% | Pstat %+0.f%% | Pdyn %+0.f%% | SNM %+0.f%%\n",
                  s == 0 ? "1 of 4 GNRs" : "4 of 4 GNRs", e.delay_pct[s],
                  e.static_power_pct[s], e.dynamic_power_pct[s], e.snm_pct[s]);
    }
  }

  std::printf("\nlatch butterfly (Fig. 7):\n");
  for (const auto& c : explore::run_latch_study(kit)) {
    std::printf("  %-22s SNM %.3f V, static power %.4g uW\n", c.label, c.snm_V,
                c.static_power_W * 1e6);
  }
  return 0;
}
