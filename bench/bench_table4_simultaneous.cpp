/// Table 4 reproduction: simultaneous width (N = 9/18) and charge-impurity
/// (-q/+q) variations in the n/p GNRFET arrays; width variation dominates
/// and impurities exacerbate it (worst case: delay >2x, Pstat >7x,
/// Pdyn >2x, SNM -> 0 when all GNRs are affected).
#include <cstdio>

#include "bench_common.hpp"
#include "explore/variants.hpp"

using namespace gnrfet;

int main() {
  bench::banner("Table 4: simultaneous width + impurity study (percent change)");
  explore::DesignKit kit;
  explore::VariationStudyOptions opts;
  std::vector<explore::VariantSpec> combos = {{9, -1.0}, {9, 1.0}, {18, -1.0}, {18, 1.0}};
  const auto entries = explore::run_variation_study(kit, combos, combos, opts);

  csv::Table out({"n_N", "n_q", "p_N", "p_q", "affected", "delay_pct", "pstat_pct",
                  "pdyn_pct", "snm_pct"});
  std::printf("%-9s %-9s | %-14s | %-14s | %-14s | %-14s\n", "p(N,q)", "n(N,q)",
              "delay % (1,4)", "Pstat % (1,4)", "Pdyn % (1,4)", "SNM % (1,4)");
  for (const auto& e : entries) {
    std::printf("%2d,%+2.0f    %2d,%+2.0f    | %6.0f,%6.0f | %6.0f,%6.0f | %6.0f,%6.0f | "
                "%6.0f,%6.0f\n",
                e.p_variant.n_index, e.p_variant.impurity_q, e.n_variant.n_index,
                e.n_variant.impurity_q, e.delay_pct[0], e.delay_pct[1],
                e.static_power_pct[0], e.static_power_pct[1], e.dynamic_power_pct[0],
                e.dynamic_power_pct[1], e.snm_pct[0], e.snm_pct[1]);
    for (int s = 0; s < 2; ++s) {
      out.add_row({static_cast<double>(e.n_variant.n_index), e.n_variant.impurity_q,
                   static_cast<double>(e.p_variant.n_index), e.p_variant.impurity_q,
                   s == 0 ? 1.0 : 4.0, e.delay_pct[s], e.static_power_pct[s],
                   e.dynamic_power_pct[s], e.snm_pct[s]});
    }
  }
  std::printf("\n(paper worst cases: delay +6..142%% (9,+q/9,-q-ish corner), Pstat up to\n"
              " +371..684%%, Pdyn up to +149..142%%, SNM down to -100%% at the 9/18 corners)\n");
  bench::save_csv(out, "table4_simultaneous");
  return 0;
}
