/// Batched-RGF benchmark: the SoA energy-batch kernel (negf/batch_rgf)
/// against the per-energy scalar path it replaces, on the fig2-style
/// source-drain ramp family. Two phases:
///
///   kernel    — raw scalar_rgf_solve vs scalar_rgf_solve_batch solve
///               rates over the subband chains of the ramp family, with
///               an FNV-1a hash of every transmission value as the
///               bit-identity witness.
///   transport — full solve_mode_space sweeps with GNRFET_RGF_BATCH=off
///               and =on; the CI perf-smoke stage asserts the current
///               hashes match (and match across GNRFET_THREADS values).
///
/// Emits bench_out/BENCH_rgf.json, one record per line; perf-smoke
/// asserts kernel speedup >= 1.5x.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "gnr/modespace.hpp"
#include "negf/batch_rgf.hpp"
#include "negf/scalar_rgf.hpp"
#include "negf/transport.hpp"

using namespace gnrfet;

namespace {

std::vector<std::vector<double>> ramp_potential(size_t ncol, size_t nlines, double vd) {
  std::vector<std::vector<double>> u(ncol, std::vector<double>(nlines, 0.0));
  for (size_t c = 0; c < ncol; ++c) {
    const double x = static_cast<double>(c) / static_cast<double>(ncol - 1);
    for (size_t j = 0; j < nlines; ++j) {
      u[c][j] = -0.3 - vd * x + 0.02 * std::cos(0.7 * static_cast<double>(j));
    }
  }
  return u;
}

/// The subband chains the mode-space solver extracts from the ramp: one
/// SSH-like chain per (bias, subband) with the column potential on-site.
std::vector<negf::ScalarChain> ramp_chains(size_t ncol, int nvd) {
  std::vector<negf::ScalarChain> chains;
  for (int i = 0; i < nvd; ++i) {
    const double vd = 0.05 + 0.45 * static_cast<double>(i) / static_cast<double>(nvd - 1);
    const auto u = ramp_potential(ncol, 3, vd);
    for (size_t j = 0; j < 3; ++j) {
      negf::ScalarChain c;
      c.onsite.resize(ncol);
      c.hopping.resize(ncol - 1);
      for (size_t col = 0; col < ncol; ++col) c.onsite[col] = u[col][j];
      for (size_t col = 0; col + 1 < ncol; ++col) {
        c.hopping[col] = (col % 2 == 0) ? -2.7 : -2.43;
      }
      c.gamma_left = 0.05;
      c.gamma_right = 0.05;
      chains.push_back(std::move(c));
    }
  }
  return chains;
}

uint64_t fnv1a(const std::vector<double>& v) {
  uint64_t h = 1469598103934665603ull;
  for (const double d : v) {
    unsigned char b[sizeof(double)];
    std::memcpy(b, &d, sizeof(double));
    for (const unsigned char c : b) {
      h ^= c;
      h *= 1099511628211ull;
    }
  }
  return h;
}

std::string hex16(uint64_t h) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

int effective_simd_width() {
#if defined(__AVX512F__)
  return 8;
#elif defined(__AVX__)
  return 4;
#elif defined(__SSE2__) || defined(__x86_64__)
  return 2;
#else
  return 1;
#endif
}

}  // namespace

int main() {
  const size_t ncol = static_cast<size_t>(bench::env_int("GNRFET_BENCH_RGF_NCOL", 64));
  const int nvd = bench::env_int("GNRFET_BENCH_RGF_NVD", 6);
  const int ne = bench::env_int("GNRFET_BENCH_RGF_NE", 608);
  const int repeats = bench::env_int("GNRFET_BENCH_RGF_REPEATS", 3);

  bench::banner("Batched RGF kernels (SoA energy lanes vs per-energy scalar)");
  std::printf("%zu columns, %d bias points, %d energies, %d repeats, SIMD width %d%s\n", ncol,
              nvd, ne, repeats, effective_simd_width(),
              negf::rgf_batch_uses_fast_reciprocal() ? ", fast reciprocal"
                                                     : ", std reciprocal fallback");

  const auto chains = ramp_chains(ncol, nvd);
  std::vector<double> energies(static_cast<size_t>(ne));
  for (int k = 0; k < ne; ++k) {
    energies[static_cast<size_t>(k)] = -0.9 + 1.2 * static_cast<double>(k) /
                                                 static_cast<double>(ne - 1);
  }
  const double eta = 1e-4;
  const auto total_solves =
      static_cast<double>(chains.size()) * static_cast<double>(ne) * repeats;

  bench::output_path("rgf_batch");  // ensures bench_out/ exists
  std::ofstream json("bench_out/BENCH_rgf.json");

  // --- kernel phase: per-energy scalar path -------------------------------
  std::vector<double> t_scalar;
  double sec_scalar = 0.0;
  {
    bench::PhaseTimer timer("rgf_batch", "kernel_scalar");
    negf::ScalarRgfWorkspace ws;
    negf::ScalarRgfResult out;
    for (int r = 0; r < repeats; ++r) {
      for (const auto& chain : chains) {
        for (const double e : energies) {
          negf::scalar_rgf_solve(chain, e, eta, ws, out);
          if (r == 0) t_scalar.push_back(out.transmission);
        }
      }
    }
    sec_scalar = timer.stop();
  }

  // --- kernel phase: SoA batch path ---------------------------------------
  std::vector<double> t_batch;
  double sec_batch = 0.0;
  {
    bench::PhaseTimer timer("rgf_batch", "kernel_batch");
    negf::ScalarRgfBatchWorkspace ws;
    negf::ScalarRgfBatchResult out;
    for (int r = 0; r < repeats; ++r) {
      for (const auto& chain : chains) {
        for (size_t k0 = 0; k0 < energies.size(); k0 += negf::kRgfBatchLanes) {
          const size_t nb = std::min(negf::kRgfBatchLanes, energies.size() - k0);
          negf::scalar_rgf_solve_batch(chain, energies.data() + k0, nb, eta, ws, out);
          if (r == 0) {
            for (size_t k = 0; k < nb; ++k) t_batch.push_back(out.transmission[k]);
          }
        }
      }
    }
    sec_batch = timer.stop();
  }

  const double rate_scalar = total_solves / sec_scalar;
  const double rate_batch = total_solves / sec_batch;
  const double speedup = rate_batch / rate_scalar;
  const uint64_t hash_scalar = fnv1a(t_scalar);
  const uint64_t hash_batch = fnv1a(t_batch);
  std::printf("scalar : %10.0f solves/s (%.3f s), T hash %s\n", rate_scalar, sec_scalar,
              hex16(hash_scalar).c_str());
  std::printf("batched: %10.0f solves/s (%.3f s), T hash %s, speedup %.2fx\n", rate_batch,
              sec_batch, hex16(hash_batch).c_str(), speedup);
  json << "{\"kind\":\"kernel\",\"path\":\"scalar\",\"solves_per_s\":" << rate_scalar
       << ",\"seconds\":" << sec_scalar << ",\"transmission_hash\":\"" << hex16(hash_scalar)
       << "\"}\n";
  json << "{\"kind\":\"kernel\",\"path\":\"batch\",\"solves_per_s\":" << rate_batch
       << ",\"seconds\":" << sec_batch << ",\"speedup\":" << speedup
       << ",\"transmission_hash\":\"" << hex16(hash_batch) << "\"}\n";

  // --- transport phase: full mode-space sweeps, knob off vs on ------------
  const auto modes = gnr::build_mode_set(12, {2.7, 0.12}, 3);
  const size_t nlines = static_cast<size_t>(modes.n_index);
  setenv("GNRFET_NEGF_GRID", "uniform", 1);
  double sec_off = 0.0;
  for (const char* knob : {"off", "on"}) {
    setenv("GNRFET_RGF_BATCH", knob, 1);
    bench::PhaseTimer timer("rgf_batch", std::string("transport_") + knob);
    std::vector<double> currents;
    for (int i = 0; i < nvd; ++i) {
      const double vd = 0.05 + 0.45 * static_cast<double>(i) / static_cast<double>(nvd - 1);
      negf::TransportOptions opt;
      opt.mu_drain_eV = -vd;
      opt.energy_step_eV = 2e-3;
      const auto sol = negf::solve_mode_space(modes, ramp_potential(ncol, nlines, vd), opt);
      currents.push_back(sol.current_A);
    }
    const double sec = timer.stop();
    const uint64_t h = fnv1a(currents);
    std::printf("transport %-3s: %.3f s, I hash %s\n", knob, sec, hex16(h).c_str());
    json << "{\"kind\":\"transport\",\"knob\":\"" << knob << "\",\"seconds\":" << sec
         << ",\"current_hash\":\"" << hex16(h) << "\"";
    if (knob[1] == 'n') {
      json << ",\"speedup\":" << (sec_off / sec);
    } else {
      sec_off = sec;
    }
    json << "}\n";
  }

  json << "{\"kind\":\"env\",\"simd_width\":" << effective_simd_width()
       << ",\"fast_reciprocal\":" << (negf::rgf_batch_uses_fast_reciprocal() ? "true" : "false")
       << ",\"batch_lanes\":" << negf::kRgfBatchLanes << ",\"threads\":" << par::thread_count()
       << "}\n";
  json.close();
  std::printf("[json] bench_out/BENCH_rgf.json\n");
  return 0;
}
