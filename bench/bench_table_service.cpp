/// Device-table service macrobenchmark: measures the three service paths on
/// a private cache directory under bench_out/. Phase "cold" generates three
/// tiny real device variants through the service (the NEGF pipeline, one
/// generation each); phase "warm_batch" replays ~10^6 mixed lookups over
/// those warm keys through the batch API (shrink with
/// GNRFET_BENCH_TS_LOOKUPS); phase "stampede" hammers one fresh variant
/// from 8 concurrent callers, which must coalesce onto a single generation.
/// Emits bench_out/BENCH_tableservice.json with one {phase, ...} record per
/// line plus a CSV mirror. tools/ci_checks.sh perf-smoke asserts the
/// warm-batch rate is >= 100x the cold generation rate, the stampede ran
/// exactly one generation, and its wall time stays near one generation.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "service/tableservice.hpp"

using namespace gnrfet;

namespace {

uint64_t counter_total(metrics::Counter c) {
  return metrics::snapshot().counters[static_cast<size_t>(c)];
}

/// Tiny real device (the test-suite geometry): full self-consistent
/// NEGF-Poisson generation on a 2x2 bias grid, seconds per variant.
service::TableRequest tiny_request(int n_index) {
  service::TableRequest req;
  req.spec.n_index = n_index;
  req.spec.channel_length_nm = 6.0;
  req.spec.grid_step_nm = 0.35;
  req.spec.lateral_margin_nm = 2.0;
  req.spec.num_modes = 2;
  req.opts.vg_points = 2;
  req.opts.vd_points = 2;
  req.opts.vg_max = 0.5;
  req.opts.vd_max = 0.5;
  req.opts.solve.energy_step_eV = 5e-3;
  req.opts.solve.gummel_tolerance_V = 3e-3;
  return req;
}

}  // namespace

int main() {
  const int lookups = bench::env_int("GNRFET_BENCH_TS_LOOKUPS", 1000000);
  const int batch_size = bench::env_int("GNRFET_BENCH_TS_BATCH", 1536);
  const int callers = bench::env_int("GNRFET_BENCH_TS_CALLERS", 8);

  bench::banner("Device-table service (LRU pool, batched queries, coalescing)");
  bench::output_path("table_service");  // ensures bench_out/ exists
  // A private, initially empty cache directory: the cold phase must
  // actually generate, and reruns must not inherit earlier tables.
  const std::string cache_dir = "bench_out/tableservice_cache";
  std::filesystem::remove_all(cache_dir);
  ::setenv("GNRFET_CACHE_DIR", cache_dir.c_str(), 1);

  std::ofstream json("bench_out/BENCH_tableservice.json");
  json.precision(17);
  csv::Table table({"phase_id", "items", "generations", "seconds", "rate_per_s"});
  table.set_meta("phase_id", "0 = cold, 1 = warm_batch, 2 = stampede");

  service::TableService svc;  // default generator, GNRFET_TABLE_LRU_MB capacity

  // Phase 1: cold generation of three width variants.
  const int variants[3] = {9, 12, 15};
  const uint64_t misses_before_cold = counter_total(metrics::Counter::kTableCacheMisses);
  bench::PhaseTimer cold_timer("table_service", "cold");
  for (const int n : variants) svc.query(tiny_request(n));
  const double cold_seconds = cold_timer.stop();
  const uint64_t cold_generations =
      counter_total(metrics::Counter::kTableCacheMisses) - misses_before_cold;
  std::printf("cold: %zu variants, %llu generations, %.3f s (%.3f s/variant)\n",
              std::size(variants), static_cast<unsigned long long>(cold_generations),
              cold_seconds, cold_seconds / static_cast<double>(std::size(variants)));
  json << "{\"phase\":\"cold\",\"variants\":" << std::size(variants)
       << ",\"generations\":" << cold_generations << ",\"seconds\":" << cold_seconds << "}\n";
  table.add_row({0.0, double(std::size(variants)), double(cold_generations), cold_seconds,
                 double(std::size(variants)) / cold_seconds});

  // Phase 2: warm-batch replay cycling the three resident keys. Every
  // lookup must come out of the in-memory pool: zero further generations.
  std::vector<service::TableRequest> batch;
  batch.reserve(static_cast<size_t>(batch_size));
  for (int i = 0; i < batch_size; ++i) {
    batch.push_back(tiny_request(variants[static_cast<size_t>(i) % std::size(variants)]));
  }
  const uint64_t misses_before_warm = counter_total(metrics::Counter::kTableCacheMisses);
  uint64_t served = 0;
  bench::PhaseTimer warm_timer("table_service", "warm_batch");
  while (served < static_cast<uint64_t>(lookups)) {
    served += svc.query_batch(batch).size();
  }
  const double warm_seconds = warm_timer.stop();
  const uint64_t warm_generations =
      counter_total(metrics::Counter::kTableCacheMisses) - misses_before_warm;
  const double warm_rate = static_cast<double>(served) / warm_seconds;
  std::printf("warm_batch: %llu lookups, %llu generations, %.3f s (%.0f lookups/s)\n",
              static_cast<unsigned long long>(served),
              static_cast<unsigned long long>(warm_generations), warm_seconds, warm_rate);
  json << "{\"phase\":\"warm_batch\",\"lookups\":" << served
       << ",\"generations\":" << warm_generations << ",\"seconds\":" << warm_seconds
       << ",\"rate_per_s\":" << warm_rate << "}\n";
  table.add_row({1.0, double(served), double(warm_generations), warm_seconds, warm_rate});

  // Phase 3: cold stampede — `callers` concurrent queries for one fresh
  // variant must coalesce onto a single generation, so the wall time stays
  // near one cold generation rather than `callers` of them.
  service::TableRequest fresh = tiny_request(12);
  fresh.spec.impurities.push_back({1.0, 1.0, 0.0, 0.4});
  const int old_threads = par::thread_count();
  par::set_thread_count(callers);
  const uint64_t misses_before_stampede = counter_total(metrics::Counter::kTableCacheMisses);
  bench::PhaseTimer stampede_timer("table_service", "stampede");
  par::parallel_for(static_cast<size_t>(callers), [&](size_t) { svc.query(fresh); });
  const double stampede_seconds = stampede_timer.stop();
  par::set_thread_count(old_threads);
  const uint64_t stampede_generations =
      counter_total(metrics::Counter::kTableCacheMisses) - misses_before_stampede;
  std::printf("stampede: %d callers, %llu generation(s), %.3f s\n", callers,
              static_cast<unsigned long long>(stampede_generations), stampede_seconds);
  json << "{\"phase\":\"stampede\",\"callers\":" << callers
       << ",\"generations\":" << stampede_generations << ",\"seconds\":" << stampede_seconds
       << "}\n";
  table.add_row({2.0, double(callers), double(stampede_generations), stampede_seconds,
                 double(callers) / stampede_seconds});

  const service::TableService::Stats st = svc.stats();
  std::printf("service stats: %llu hits, %llu misses, %llu coalesced, %llu evictions, "
              "%zu entries (%zu bytes pooled)\n",
              static_cast<unsigned long long>(st.hits),
              static_cast<unsigned long long>(st.misses),
              static_cast<unsigned long long>(st.coalesced),
              static_cast<unsigned long long>(st.evictions), st.entries, st.bytes);

  json.close();
  std::printf("[json] bench_out/BENCH_tableservice.json\n");
  bench::save_csv(table, "table_service");
  std::filesystem::remove_all(cache_dir);
  return 0;
}
