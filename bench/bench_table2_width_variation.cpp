/// Table 2 reproduction: effect of independent GNR-width variations
/// (N in {9,12,15,18}) in the n/p GNRFET arrays on FO4-inverter delay,
/// static/dynamic power, and SNM, in the 1-of-4 and 4-of-4 scenarios, at
/// the operating point B (VDD=0.4 V, VT=0.13 V).
#include <cstdio>

#include "bench_common.hpp"
#include "explore/variants.hpp"

using namespace gnrfet;

int main() {
  bench::banner("Table 2: width variation study (percent change vs nominal)");
  explore::DesignKit kit;
  explore::VariationStudyOptions opts;
  const auto base = explore::nominal_inverter_metrics(kit, opts);
  std::printf("nominal: delay %.2f ps, Pstat %.4g uW, Pdyn %.4g uW, SNM %.3f V\n",
              base.delay_s * 1e12, base.static_power_W * 1e6, base.dynamic_power_W * 1e6,
              base.snm_V);
  std::printf("(paper nominal: 7.54 ps, 0.095 uW, 0.706 uW, 0.15 V)\n\n");

  std::vector<explore::VariantSpec> widths = {{9, 0.0}, {12, 0.0}, {15, 0.0}, {18, 0.0}};
  const auto entries = explore::run_variation_study(kit, widths, widths, opts);

  csv::Table out({"n_N", "p_N", "affected", "delay_pct", "pstat_pct", "pdyn_pct", "snm_pct"});
  std::printf("%-5s %-5s | %-14s | %-14s | %-14s | %-14s\n", "pN", "nN", "delay % (1,4)",
              "Pstat % (1,4)", "Pdyn % (1,4)", "SNM % (1,4)");
  for (const auto& e : entries) {
    std::printf("%-5d %-5d | %6.0f,%6.0f | %6.0f,%6.0f | %6.0f,%6.0f | %6.0f,%6.0f\n",
                e.p_variant.n_index, e.n_variant.n_index, e.delay_pct[0], e.delay_pct[1],
                e.static_power_pct[0], e.static_power_pct[1], e.dynamic_power_pct[0],
                e.dynamic_power_pct[1], e.snm_pct[0], e.snm_pct[1]);
    for (int s = 0; s < 2; ++s) {
      out.add_row({static_cast<double>(e.n_variant.n_index),
                   static_cast<double>(e.p_variant.n_index), s == 0 ? 1.0 : 4.0,
                   e.delay_pct[s], e.static_power_pct[s], e.dynamic_power_pct[s],
                   e.snm_pct[s]});
    }
  }
  std::printf("\n(paper worst cases: N=9/9 delay +6..77%%; N=18/18 Pstat +313..643%%,\n"
              " Pdyn +37..215%%; max n/p mismatch N=9 vs 18: SNM -27..-80%%)\n");
  bench::save_csv(out, "table2_width_variation");
  return 0;
}
