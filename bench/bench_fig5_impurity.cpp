/// Fig. 5 reproduction: (a) conduction-band profile of the N=12 GNRFET
/// with a charge impurity (0, +-q, +-2q) placed 0.4 nm above the ribbon
/// near the source at VD = 0.5 V — a negative impurity raises/thickens the
/// Schottky barrier, a positive one lowers it; (b) the resulting I-V at
/// VD = 0.5 V, with the -2q impurity cutting the on-current by several x.
#include <cstdio>

#include "bench_common.hpp"
#include "device/selfconsistent.hpp"
#include "explore/tech_explore.hpp"

using namespace gnrfet;

int main() {
  bench::banner("Fig. 5(a): conduction-band profile vs impurity charge");
  csv::Table prof({"impurity_q", "x_nm", "ec_eV"});
  const double charges[] = {0.0, 1.0, -1.0, 2.0, -2.0};
  for (const double q : charges) {
    device::DeviceSpec spec;
    spec.n_index = 12;
    if (q != 0.0) spec.impurities.push_back({q, 1.0, 0.0, 0.4});
    const device::DeviceGeometry geo(spec);
    const device::SelfConsistentSolver solver(geo);
    // Bias near the on-state shown in the paper: VG = 0.4 V, VD = 0.5 V.
    const device::DeviceSolution sol = solver.solve({0.4, 0.5});
    const double half_gap = 0.5 * geo.modes().band_gap_eV();
    double ec_max = -1e9;
    for (size_t c = 0; c < sol.column_x_nm.size(); ++c) {
      const double ec = sol.midgap_profile_eV[c] + half_gap;
      prof.add_row({q, sol.column_x_nm[c], ec});
      if (sol.column_x_nm[c] < 4.0) ec_max = std::max(ec_max, ec);
    }
    std::printf("q=%+.0f: source-side barrier peak EC = %.3f eV, I(VG=0.4,VD=0.5) = %.3e A\n",
                q, ec_max, sol.current_A);
  }
  bench::save_csv(prof, "fig5a_band_profile");

  bench::banner("Fig. 5(b): I-V with +-2q impurities at VD = 0.5 V");
  explore::DesignKit kit;
  csv::Table iv({"impurity_q", "vg_V", "id_A"});
  double ion[3] = {0, 0, 0};
  const double qs[] = {0.0, 2.0, -2.0};
  for (int k = 0; k < 3; ++k) {
    const device::DeviceTable& t = kit.table({12, qs[k]});
    const size_t ivd = 10;  // 0.5 V
    for (size_t ig = 0; ig < t.vg.size(); ++ig) {
      if (t.vg[ig] > 0.75 + 1e-9) break;
      iv.add_row({qs[k], t.vg[ig], t.at_current(ig, ivd)});
      ion[k] = std::max(ion[k], t.at_current(ig, ivd));
    }
  }
  std::printf("Ion: ideal %.3e A, +2q %.3e A (%.2fx), -2q %.3e A (%.2fx of ideal)\n", ion[0],
              ion[1], ion[1] / ion[0], ion[2], ion[2] / ion[0]);
  std::printf("(paper: -2q reduces on-current by ~6x; +2q changes it much less)\n");
  bench::save_csv(iv, "fig5b_impurity_iv");
  return 0;
}
