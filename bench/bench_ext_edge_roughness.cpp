/// Extension experiment (paper Sec. 4 / ref. [17], Yoon & Guo APL 2007):
/// edge roughness in the GNR channel scatters carriers and degrades the
/// ballistic on-current. Sweeps the edge-atom removal probability on a
/// short N=9 ribbon with the real-space atomistic solver, averaging a few
/// disorder realizations per point.
#include <cstdio>

#include "bench_common.hpp"
#include "gnr/lattice.hpp"
#include "negf/transport.hpp"

using namespace gnrfet;

int main() {
  bench::banner("Extension: edge-roughness degradation of the ballistic on-current");
  const gnr::TightBindingParams p{2.7, 0.12};
  const gnr::Lattice ideal = gnr::Lattice::armchair(9, 20, p.edge_delta);
  negf::TransportOptions opt;
  opt.mu_drain_eV = -0.4;
  opt.energy_step_eV = 4e-3;

  const auto run = [&](const gnr::Lattice& lat) {
    return negf::solve_real_space(lat, p, std::vector<double>(lat.atoms().size(), -0.5), opt)
        .current_A;
  };
  const double i0 = run(ideal);
  std::printf("ideal ribbon: Ion = %.4e A\n", i0);

  csv::Table out({"removal_probability", "ion_mean_A", "ion_over_ideal"});
  out.add_row({0.0, i0, 1.0});
  for (const double prob : {0.05, 0.10, 0.20, 0.30}) {
    double mean = 0.0;
    const int realizations = 4;
    for (int r = 0; r < realizations; ++r) {
      mean += run(ideal.with_edge_roughness(prob, 100u + static_cast<unsigned>(r)));
    }
    mean /= realizations;
    std::printf("p=%.2f: Ion = %.4e A (%.2fx of ideal, %d realizations)\n", prob, mean,
                mean / i0, realizations);
    out.add_row({prob, mean, mean / i0});
  }
  std::printf("(ref. [17]: on-current degrades monotonically with edge disorder; the\n"
              " ballistic advantage of GNRs relies on smooth chemically-derived edges)\n");
  bench::save_csv(out, "ext_edge_roughness");
  return 0;
}
