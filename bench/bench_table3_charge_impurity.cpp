/// Table 3 reproduction: effect of independent oxide charge impurities
/// (-2q..+2q) in the n/p GNRFET arrays on FO4-inverter delay, power, and
/// SNM (1-of-4 and 4-of-4), at operating point B. The effects are highly
/// asymmetric in the impurity polarity.
#include <cstdio>

#include "bench_common.hpp"
#include "explore/variants.hpp"

using namespace gnrfet;

int main() {
  bench::banner("Table 3: charge-impurity study (percent change vs nominal)");
  explore::DesignKit kit;
  explore::VariationStudyOptions opts;
  std::vector<explore::VariantSpec> charges = {
      {12, -2.0}, {12, -1.0}, {12, 0.0}, {12, 1.0}, {12, 2.0}};
  const auto entries = explore::run_variation_study(kit, charges, charges, opts);

  csv::Table out({"n_q", "p_q", "affected", "delay_pct", "pstat_pct", "pdyn_pct", "snm_pct"});
  std::printf("%-5s %-5s | %-14s | %-14s | %-14s | %-14s\n", "p_q", "n_q", "delay % (1,4)",
              "Pstat % (1,4)", "Pdyn % (1,4)", "SNM % (1,4)");
  for (const auto& e : entries) {
    std::printf("%+4.0f %+4.0f  | %6.0f,%6.0f | %6.0f,%6.0f | %6.0f,%6.0f | %6.0f,%6.0f\n",
                e.p_variant.impurity_q, e.n_variant.impurity_q, e.delay_pct[0], e.delay_pct[1],
                e.static_power_pct[0], e.static_power_pct[1], e.dynamic_power_pct[0],
                e.dynamic_power_pct[1], e.snm_pct[0], e.snm_pct[1]);
    for (int s = 0; s < 2; ++s) {
      out.add_row({e.n_variant.impurity_q, e.p_variant.impurity_q, s == 0 ? 1.0 : 4.0,
                   e.delay_pct[s], e.static_power_pct[s], e.dynamic_power_pct[s],
                   e.snm_pct[s]});
    }
  }
  std::printf("\n(paper: worst delay +8..92%% at n=-2q/p=+2q; Pstat +11..37%% and Pdyn\n"
              " +5..19%% at n=+q/p=-q; SNM -14..-40%%; improvements are small — the\n"
              " impurity effect is asymmetric in polarity)\n");
  bench::save_csv(out, "table3_charge_impurity");
  return 0;
}
