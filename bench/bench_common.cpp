#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

namespace gnrfet::bench {

std::string output_path(const std::string& name) {
  std::filesystem::create_directories("bench_out");
  return "bench_out/" + name + ".csv";
}

void save_csv(const csv::Table& table, const std::string& name) {
  const std::string path = output_path(name);
  table.save(path);
  std::printf("[csv] %s (%zu rows)\n", path.c_str(), table.num_rows());
}

void banner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  const int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}

}  // namespace gnrfet::bench
