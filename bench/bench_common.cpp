#include "bench_common.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/env.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"

namespace gnrfet::bench {

std::string output_path(const std::string& name) {
  std::filesystem::create_directories("bench_out");
  return "bench_out/" + name + ".csv";
}

void save_csv(const csv::Table& table, const std::string& name) {
  const std::string path = output_path(name);
  table.save(path);
  std::printf("[csv] %s (%zu rows)\n", path.c_str(), table.num_rows());
}

void banner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

int env_int(const char* name, int fallback) { return common::env_int(name, fallback); }

PhaseTimer::PhaseTimer(std::string bench, std::string phase)
    : bench_(std::move(bench)), phase_(std::move(phase)), start_us_(trace::now_us()) {}

PhaseTimer::~PhaseTimer() { stop(); }

double PhaseTimer::stop() {
  if (seconds_ >= 0.0) return seconds_;
  // Phase rows and trace spans share the trace clock, so a
  // perf_timings.csv row can be matched against the spans it encloses.
  const double end_us = trace::now_us();
  seconds_ = (end_us - start_us_) * 1e-6;
  trace::emit_complete("bench", bench_ + "/" + phase_, start_us_, end_us - start_us_);
  std::filesystem::create_directories("bench_out");
  const std::string path = "bench_out/perf_timings.csv";
  const bool fresh = !std::filesystem::exists(path);
  std::ofstream out(path, std::ios::app);
  if (out) {
    if (fresh) out << "bench,phase,seconds,threads\n";
    out << bench_ << "," << phase_ << "," << seconds_ << "," << par::thread_count() << "\n";
  }
  std::printf("[time] %s/%s: %.3f s on %d thread(s)\n", bench_.c_str(), phase_.c_str(),
              seconds_, par::thread_count());
  return seconds_;
}

}  // namespace gnrfet::bench
