/// Table-service load harness: the "millions of users" replay bench.
///
/// Phase "cold" generates one tiny real device table twice — in-process
/// and sharded across GNRFET_BENCH_LOAD_WORKERS worker processes — and
/// reports both wall times plus an FNV-1a hash of every table bit, the
/// byte-identity pin CI compares across GNRFET_TABLE_SHARD / worker-count
/// / GNRFET_THREADS configurations.
///
/// Phase "replay" drives GNRFET_BENCH_LOAD_QUERIES single lookups through
/// a TableService with a synthetic (deterministic, compute-priced)
/// generator: variant popularity is Zipf-skewed (rank weight 1/r^1.07, the
/// classic web-cache shape) and a slice of queries carries Monte-Carlo
/// style bias jitter, producing an endless cold tail that churns the LRU.
/// Reports lookups/s, cold generations/s, p50/p99 query latency, and the
/// coalesce / eviction / resident-bytes counters. QUERIES=0 skips the
/// replay (CI's hash-matrix mode).
///
/// Emits bench_out/BENCH_tableload.json (one {phase,...} record per line)
/// plus a CSV mirror. tools/ci_checks.sh perf-smoke asserts hash equality
/// across the shard matrix, the >= 1.5x sharded speedup (multi-core hosts
/// only), and warm rate >= 100x cold rate.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "device/tablegen.hpp"
#include "service/shardgen.hpp"
#include "service/tableservice.hpp"

using namespace gnrfet;

namespace {

/// FNV-1a over the full bit content of a table; the cross-configuration
/// identity pin (doubles hashed via their IEEE representation).
uint64_t fnv1a_table(const device::DeviceTable& t) {
  uint64_t h = 1469598103934665603ull;
  const auto mix_bytes = [&h](const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  const auto mix_vec = [&](const std::vector<double>& v) {
    mix_bytes(v.data(), v.size() * sizeof(double));
  };
  mix_vec(t.vg);
  mix_vec(t.vd);
  mix_vec(t.current_A);
  mix_vec(t.charge_C);
  mix_bytes(&t.band_gap_eV, sizeof t.band_gap_eV);
  return h;
}

std::string hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return std::string(buf);
}

/// Tiny real device (the test-suite geometry): full self-consistent
/// NEGF-Poisson generation, seconds per table.
service::TableRequest tiny_request(int n_index) {
  service::TableRequest req;
  req.spec.n_index = n_index;
  req.spec.channel_length_nm = 6.0;
  req.spec.grid_step_nm = 0.35;
  req.spec.lateral_margin_nm = 2.0;
  req.spec.num_modes = 2;
  req.opts.vg_points = 2;
  req.opts.vd_points = 2;
  req.opts.vg_max = 0.5;
  req.opts.vd_max = 0.5;
  req.opts.solve.energy_step_eV = 5e-3;
  req.opts.solve.gummel_tolerance_V = 3e-3;
  req.opts.use_cache = false;  // measure generation, not the disk cache
  return req;
}

/// Deterministic synthetic generator with a real compute price per table
/// (~10^5 transcendental evaluations): expensive enough that a cold miss
/// is unmistakably slower than a warm lookup, cheap enough to regenerate
/// thousands of times in the replay.
device::DeviceTable synth_generate(const device::DeviceSpec& spec,
                                   const device::TableGenOptions& opts) {
  device::DeviceTable t;
  const size_t nvg = opts.vg_points, nvd = opts.vd_points;
  t.vg.resize(nvg);
  t.vd.resize(nvd);
  for (size_t i = 0; i < nvg; ++i) {
    t.vg[i] = opts.vg_min + (opts.vg_max - opts.vg_min) * double(i) / double(nvg - 1);
  }
  for (size_t i = 0; i < nvd; ++i) {
    t.vd[i] = opts.vd_min + (opts.vd_max - opts.vd_min) * double(i) / double(nvd - 1);
  }
  t.current_A.resize(nvg * nvd);
  t.charge_C.resize(nvg * nvd);
  t.band_gap_eV = 0.1 + 0.01 * spec.n_index;
  for (size_t ig = 0; ig < nvg; ++ig) {
    for (size_t id = 0; id < nvd; ++id) {
      double acc = double(spec.n_index) + t.vg[ig] * 3.0 + t.vd[id];
      for (int k = 0; k < 96; ++k) acc = std::sin(acc) + 1.0 + 1e-3 * k;
      t.current_A[ig * nvd + id] = acc * 1e-6;
      t.charge_C[ig * nvd + id] = -acc * 1e-18;
    }
  }
  return t;
}

/// Replay query: variant picked from a Zipf CDF, with every 211th query
/// carrying a fresh MC-style vg_max jitter (a key never seen before — the
/// cold tail).
service::TableRequest synth_request(int variant, double vg_max_jitter) {
  service::TableRequest req;
  req.spec.n_index = variant;
  req.opts.vg_points = 32;
  req.opts.vd_points = 32;
  req.opts.vg_max = 0.75 + vg_max_jitter;
  req.opts.use_cache = false;  // the synthetic study never touches disk
  return req;
}

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * double(sorted_us.size() - 1));
  return sorted_us[idx];
}

}  // namespace

int main() {
  const int queries = bench::env_int("GNRFET_BENCH_LOAD_QUERIES", 1000000);
  const int variants = bench::env_int("GNRFET_BENCH_LOAD_VARIANTS", 64);
  const int workers = bench::env_int("GNRFET_BENCH_LOAD_WORKERS", 4);
  const int lru_mb = bench::env_int("GNRFET_BENCH_LOAD_LRU_MB", 8);

  bench::banner("Table-service load harness (sharded cold gen + Zipf replay)");
  bench::output_path("table_load");  // ensures bench_out/ exists
  std::ofstream json("bench_out/BENCH_tableload.json");
  json.precision(17);
  csv::Table table({"phase_id", "items", "seconds", "rate_per_s", "aux"});
  table.set_meta("phase_id", "0 = cold_unsharded, 1 = cold_sharded, 2 = replay");

  // ---- Phase "cold": sharded vs in-process generation of one real table.
  const service::TableRequest cold_req = tiny_request(12);

  bench::PhaseTimer unsharded_timer("table_load", "cold_unsharded");
  const device::DeviceTable unsharded =
      device::generate_device_table(cold_req.spec, cold_req.opts);
  const double unsharded_s = unsharded_timer.stop();
  const uint64_t unsharded_hash = fnv1a_table(unsharded);

  service::ShardOptions shard_opts;
  shard_opts.workers = workers;
  service::ShardScheduler scheduler(shard_opts);
  bench::PhaseTimer sharded_timer("table_load", "cold_sharded");
  const device::DeviceTable sharded = scheduler.generate(cold_req.spec, cold_req.opts);
  const double sharded_s = sharded_timer.stop();
  const uint64_t sharded_hash = fnv1a_table(sharded);

  const double speedup = sharded_s > 0.0 ? unsharded_s / sharded_s : 0.0;
  const bool identical = unsharded_hash == sharded_hash;
  std::printf("cold: unsharded %.3f s, sharded(%d workers) %.3f s, speedup %.2fx, "
              "hashes %s (threads=%d)\n",
              unsharded_s, workers, sharded_s, speedup, identical ? "identical" : "DIFFER",
              par::thread_count());
  json << "{\"phase\":\"cold\",\"workers\":" << workers << ",\"threads\":" << par::thread_count()
       << ",\"unsharded_seconds\":" << unsharded_s << ",\"sharded_seconds\":" << sharded_s
       << ",\"speedup\":" << speedup << ",\"unsharded_hash\":\"" << hex64(unsharded_hash)
       << "\",\"sharded_hash\":\"" << hex64(sharded_hash)
       << "\",\"identical\":" << (identical ? 1 : 0) << "}\n";
  table.add_row({0.0, 1.0, unsharded_s, 1.0 / unsharded_s, double(par::thread_count())});
  table.add_row({1.0, 1.0, sharded_s, 1.0 / sharded_s, double(workers)});
  if (!identical) {
    std::printf("FATAL: sharded table differs from unsharded table\n");
    return 1;
  }

  // ---- Phase "replay": Zipf-skewed warm/cold query mix.
  if (queries > 0) {
    service::TableService::Options opts;
    opts.capacity_bytes = static_cast<size_t>(lru_mb) * 1024 * 1024;
    opts.generator = &synth_generate;
    service::TableService svc(opts);

    // Zipf CDF over variant ranks (weight 1/r^1.07).
    std::vector<double> cdf(static_cast<size_t>(variants));
    double mass = 0.0;
    for (int r = 0; r < variants; ++r) {
      mass += 1.0 / std::pow(double(r + 1), 1.07);
      cdf[static_cast<size_t>(r)] = mass;
    }
    for (double& c : cdf) c /= mass;

    std::vector<double> warm_us, cold_us;
    warm_us.reserve(static_cast<size_t>(queries));
    uint64_t lcg = 0x9e3779b97f4a7c15ull;
    uint64_t jitter_seq = 0;
    uint64_t prev_misses = svc.stats().misses;

    bench::PhaseTimer replay_timer("table_load", "replay");
    for (int q = 0; q < queries; ++q) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      const double u = double(lcg >> 11) * (1.0 / 9007199254740992.0);
      const int variant =
          int(std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      double jitter = 0.0;
      if (q % 211 == 210) jitter = 1e-9 * double(++jitter_seq);  // fresh cold key
      const service::TableRequest req = synth_request(variant, jitter);

      const double t0 = now_us();
      svc.query(req);
      const double dt = now_us() - t0;

      const uint64_t misses = svc.stats().misses;
      if (misses != prev_misses) {
        cold_us.push_back(dt);
        prev_misses = misses;
      } else {
        warm_us.push_back(dt);
      }
    }
    const double replay_s = replay_timer.stop();

    const service::TableService::Stats st = svc.stats();
    std::vector<double> all_us;
    all_us.reserve(warm_us.size() + cold_us.size());
    all_us.insert(all_us.end(), warm_us.begin(), warm_us.end());
    all_us.insert(all_us.end(), cold_us.begin(), cold_us.end());
    std::sort(all_us.begin(), all_us.end());
    const double p50 = percentile(all_us, 0.50);
    const double p99 = percentile(all_us, 0.99);

    double warm_total_us = 0.0, cold_total_us = 0.0;
    for (const double v : warm_us) warm_total_us += v;
    for (const double v : cold_us) cold_total_us += v;
    const double lookups_per_s = double(queries) / replay_s;
    const double warm_rate =
        warm_total_us > 0.0 ? double(warm_us.size()) / (warm_total_us * 1e-6) : 0.0;
    const double cold_rate =
        cold_total_us > 0.0 ? double(cold_us.size()) / (cold_total_us * 1e-6) : 0.0;
    const bool lru_ok = st.peak_bytes <= svc.capacity_bytes();

    std::printf("replay: %d queries (%zu warm, %zu cold) in %.3f s — %.0f lookups/s, "
                "%.0f cold gen/s, p50 %.2f us, p99 %.2f us\n",
                queries, warm_us.size(), cold_us.size(), replay_s, lookups_per_s, cold_rate,
                p50, p99);
    std::printf("replay pool: %llu coalesced, %llu evictions, %zu entries, %zu bytes resident "
                "(peak %zu / capacity %zu: %s)\n",
                static_cast<unsigned long long>(st.coalesced),
                static_cast<unsigned long long>(st.evictions), st.entries, st.bytes,
                st.peak_bytes, svc.capacity_bytes(), lru_ok ? "within budget" : "EXCEEDED");
    json << "{\"phase\":\"replay\",\"queries\":" << queries << ",\"warm\":" << warm_us.size()
         << ",\"cold\":" << cold_us.size() << ",\"seconds\":" << replay_s
         << ",\"lookups_per_s\":" << lookups_per_s << ",\"warm_rate_per_s\":" << warm_rate
         << ",\"cold_gen_per_s\":" << cold_rate << ",\"p50_us\":" << p50 << ",\"p99_us\":" << p99
         << ",\"coalesced\":" << st.coalesced << ",\"evictions\":" << st.evictions
         << ",\"entries\":" << st.entries << ",\"resident_bytes\":" << st.bytes
         << ",\"peak_bytes\":" << st.peak_bytes << ",\"capacity_bytes\":" << svc.capacity_bytes()
         << ",\"lru_ok\":" << (lru_ok ? 1 : 0) << "}\n";
    table.add_row({2.0, double(queries), replay_s, lookups_per_s, p99});
    if (!lru_ok) {
      std::printf("FATAL: resident bytes exceeded the LRU budget\n");
      return 1;
    }
  } else {
    std::printf("replay: skipped (GNRFET_BENCH_LOAD_QUERIES=0)\n");
  }

  json.close();
  std::printf("[json] bench_out/BENCH_tableload.json\n");
  bench::save_csv(table, "table_load");
  return 0;
}
