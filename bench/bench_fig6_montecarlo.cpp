/// Fig. 6 reproduction: Monte Carlo over the 15-stage FO4 ring oscillator
/// with independent per-inverter width (N in {9,12,15}) and charge
/// (q in {-1,0,+1}) draws from discretized normals (off-nominal values at
/// one sigma). The paper reports mean frequency ~10% below nominal, mean
/// static power ~23% above nominal, and unchanged mean dynamic power.
///
/// Sample count defaults to 60 for bench runtime; set GNRFET_MC_SAMPLES to
/// raise it (the paper used tens of thousands on their cluster).
#include <cstdio>

#include "bench_common.hpp"
#include "explore/montecarlo.hpp"

using namespace gnrfet;

int main() {
  bench::banner("Fig. 6: Monte Carlo over the 15-stage ring oscillator");
  explore::DesignKit kit;
  explore::MonteCarloOptions opts;
  opts.samples = bench::env_int("GNRFET_MC_SAMPLES", 60);
  opts.ring.t_stop_s = 1.5e-9;
  opts.ring.dt_s = 0.5e-12;
  std::printf("samples: %d (override with GNRFET_MC_SAMPLES)\n", opts.samples);

  bench::PhaseTimer mc_timer("fig6_montecarlo", "monte_carlo");
  const auto mc = explore::run_ring_monte_carlo(kit, opts);
  mc_timer.stop();
  std::printf("nominal: f = %.3f GHz, Pdyn = %.4g uW, Pstat = %.4g uW\n",
              mc.nominal.frequency_Hz / 1e9, mc.nominal.dynamic_power_W * 1e6,
              mc.nominal.static_power_W * 1e6);
  std::printf("MC mean: f = %.3f GHz (%+.1f%%), Pdyn = %.4g uW (%+.1f%%), "
              "Pstat = %.4g uW (%+.1f%%)\n",
              mc.mean_frequency_Hz / 1e9,
              100.0 * (mc.mean_frequency_Hz / mc.nominal.frequency_Hz - 1.0),
              mc.mean_dynamic_power_W * 1e6,
              100.0 * (mc.mean_dynamic_power_W / mc.nominal.dynamic_power_W - 1.0),
              mc.mean_static_power_W * 1e6,
              100.0 * (mc.mean_static_power_W / mc.nominal.static_power_W - 1.0));
  std::printf("(paper: mean f -10%%, mean Pstat +23%%, mean Pdyn unchanged)\n");

  csv::Table samples({"frequency_GHz", "pdyn_uW", "pstat_uW"});
  std::vector<double> fs, pd, ps;
  for (const auto& s : mc.samples) {
    if (!s.ok) continue;
    samples.add_row({s.frequency_Hz / 1e9, s.dynamic_power_W * 1e6, s.static_power_W * 1e6});
    fs.push_back(s.frequency_Hz / 1e9);
    pd.push_back(s.dynamic_power_W * 1e6);
    ps.push_back(s.static_power_W * 1e6);
  }
  bench::save_csv(samples, "fig6_mc_samples");

  const auto print_hist = [](const char* name, const std::vector<double>& v) {
    const auto h = explore::histogram(v, 9);
    std::printf("%s histogram:\n", name);
    for (size_t b = 0; b < h.bin_centers.size(); ++b) {
      std::printf("  %8.3f | %s (%d)\n", h.bin_centers[b],
                  std::string(static_cast<size_t>(h.counts[b]), '#').c_str(), h.counts[b]);
    }
  };
  print_hist("frequency (GHz)", fs);
  print_hist("dynamic power (uW)", pd);
  print_hist("static power (uW)", ps);
  return 0;
}
