/// Fig. 3(b) reproduction: EDP, oscillation-frequency, and SNM maps of the
/// 15-stage FO4 ring oscillator over the (VT, VDD) design plane, the iso
/// contours, and the paper's operating points A (min EDP at 3 GHz),
/// B (min EDP at 3 GHz with SNM >= 0.15 V), and C (same EDP/SNM class as B
/// at higher VT, lower frequency).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "explore/contours.hpp"
#include "explore/tech_explore.hpp"

using namespace gnrfet;

int main() {
  bench::banner("Fig. 3(b): EDP / frequency / SNM over the (VT, VDD) plane");
  explore::DesignKit kit;
  std::vector<double> vts, vdds;
  for (double vt = 0.03; vt <= 0.28 + 1e-9; vt += 0.05) vts.push_back(vt);
  for (double vdd = 0.15; vdd <= 0.65 + 1e-9; vdd += 0.10) vdds.push_back(vdd);

  explore::ExploreOptions opts;
  opts.ring.t_stop_s = 2.0e-9;
  opts.ring.dt_s = 0.4e-12;
  const auto grid = explore::explore_plane(kit, vts, vdds, opts);

  csv::Table out({"vt_V", "vdd_V", "freq_GHz", "ln_edp_aJps", "snm_V", "pstat_W", "pdyn_W"});
  std::printf("%-6s %-6s %-9s %-12s %-7s\n", "VT", "VDD", "f(GHz)", "ln EDP(aJ-ps)", "SNM(V)");
  for (const auto& p : grid) {
    const double ln_edp = p.ok && p.edp_Js > 0 ? std::log(p.edp_Js * 1e30) : NAN;
    std::printf("%-6.2f %-6.2f %-9.2f %-12.2f %-7.3f\n", p.vt, p.vdd,
                p.ok ? p.frequency_Hz / 1e9 : 0.0, ln_edp, p.snm_V);
    out.add_row({p.vt, p.vdd, p.ok ? p.frequency_Hz / 1e9 : NAN, ln_edp, p.ok ? p.snm_V : NAN,
                 p.static_power_W, p.dynamic_power_W});
  }
  bench::save_csv(out, "fig3b_plane");

  // Contours like the figure: frequency 3 GHz, SNM 0.1/0.15 V, a few
  // ln(EDP) levels (the figure labels 8.2..13 in ln aJ-ps).
  {
    csv::Table segs({"metric_id", "level", "x1_vt", "y1_vdd", "x2_vt", "y2_vdd"});
    // Field layout expected by contour_segments: [ix * ny + iy] over (vt, vdd).
    std::vector<double> f_freq(vts.size() * vdds.size(), NAN);
    std::vector<double> f_snm(f_freq), f_edp(f_freq);
    for (size_t iv = 0; iv < vdds.size(); ++iv) {
      for (size_t it = 0; it < vts.size(); ++it) {
        const auto& p = grid[iv * vts.size() + it];
        if (!p.ok) continue;
        f_freq[it * vdds.size() + iv] = p.frequency_Hz / 1e9;
        f_snm[it * vdds.size() + iv] = p.snm_V;
        f_edp[it * vdds.size() + iv] = std::log(std::max(p.edp_Js, 1e-33) * 1e30);
      }
    }
    const auto emit = [&](int id, const std::vector<double>& field, double level) {
      for (const auto& s : explore::contour_segments(vts, vdds, field, level)) {
        segs.add_row({static_cast<double>(id), level, s.x1, s.y1, s.x2, s.y2});
      }
    };
    emit(0, f_freq, 3.0);
    for (const double lv : {0.05, 0.10, 0.15}) emit(1, f_snm, lv);
    for (const double lv : {6.0, 7.0, 8.0, 9.0}) emit(2, f_edp, lv);
    bench::save_csv(segs, "fig3b_contours");
  }

  const auto pts = explore::find_operating_points(grid);
  const auto show = [](const char* name, const explore::ExplorePoint& p) {
    std::printf("point %s: VDD=%.2f VT=%.2f  f=%.2f GHz  EDP=%.3g fJ-ps  SNM=%.3f V\n", name,
                p.vdd, p.vt, p.frequency_Hz / 1e9, p.edp_Js * 1e27, p.snm_V);
  };
  show("A", pts.a);
  show("B", pts.b);
  show("C", pts.c);
  std::printf("(paper: A=(0.3,0.06) low SNM; B=(0.4,0.13) SNM 0.15 V at 3+ GHz; C has the\n"
              " same EDP/SNM as B but ~40%% lower frequency at higher VT)\n");
  if (pts.b.ok && pts.c.ok && pts.c.vt > pts.b.vt) {
    std::printf("frequency penalty of C vs B: %.0f%%\n",
                100.0 * (1.0 - pts.c.frequency_Hz / pts.b.frequency_Hz));
  }
  return 0;
}
