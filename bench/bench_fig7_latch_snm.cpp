/// Fig. 7 reproduction: latch butterfly curves for the nominal design, a
/// single affected GNR, and all four GNRs affected by the worst-case
/// combination (n-FET: N=9 with +q; p-FET: N=18 with -q). The asymmetry
/// collapses one butterfly eye (SNM -> ~0) and raises latch static power
/// by >5x in the worst case.
#include <cstdio>

#include "bench_common.hpp"
#include "explore/latch_study.hpp"

using namespace gnrfet;

int main() {
  bench::banner("Fig. 7: latch SNM under worst-case variations and defects");
  explore::DesignKit kit;
  const auto cases = explore::run_latch_study(kit);

  csv::Table curves({"case_id", "v1_V", "v2_V"});
  double p_nominal = 0.0;
  for (size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    if (i == 0) p_nominal = c.static_power_W;
    std::printf("%-22s: SNM = %.3f V (lobes %.3f / %.3f), latch Pstat = %.4g uW (%.2fx)\n",
                c.label, c.snm_V, c.lobe1_V, c.lobe2_V, c.static_power_W * 1e6,
                c.static_power_W / p_nominal);
    for (size_t k = 0; k < c.vtc.vin.size(); ++k) {
      curves.add_row({static_cast<double>(i), c.vtc.vin[k], c.vtc.vout[k]});
    }
  }
  std::printf("(paper: nominal latch has healthy eyes; the worst case collapses one eye to\n"
              " near-zero SNM and increases static power by >5x)\n");
  bench::save_csv(curves, "fig7_butterfly_curves");
  return 0;
}
