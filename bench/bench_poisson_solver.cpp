/// Poisson linear-solver microbenchmark: one fixed assembly (a MOS-like
/// gate stack around a channel plane) and one fixed set of charge/bias
/// right-hand sides, solved under each preconditioner. Emits
/// bench_out/BENCH_poisson.json with one {preconditioner, iterations,
/// seconds} record per line — the repo's perf-trajectory file — and a CSV
/// mirror. tools/ci_checks.sh perf-smoke asserts IC(0) beats Jacobi on
/// total PCG iterations.
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "common/metrics.hpp"
#include "poisson/assembly.hpp"
#include "poisson/grid.hpp"
#include "poisson/solver.hpp"

using namespace gnrfet;

namespace {

struct Workload {
  poisson::GridSpec grid;
  std::vector<std::vector<double>> fixed_sets;  ///< fixed charge per case
  std::vector<std::vector<double>> n0_sets;     ///< electron population per case
  std::vector<double> p0, zero;
};

Workload build_workload(const poisson::Domain& domain, const poisson::GridSpec& g) {
  Workload w;
  w.grid = g;
  w.zero.assign(g.num_nodes(), 0.0);
  w.p0.assign(g.num_nodes(), 0.0);
  // Charge cases: a sheet of channel electrons at three densities plus a
  // localized impurity, mirroring what the Gummel loop feeds Poisson.
  for (const double amp : {0.2, 0.6, 1.2}) {
    std::vector<double> fixed(g.num_nodes(), 0.0);
    std::vector<double> n0(g.num_nodes(), 0.0);
    domain.deposit_charge(g.x(g.nx / 3), g.y(g.ny / 2), g.z(g.nz / 2), 1.0, fixed);
    for (size_t i = 2; i + 2 < g.nx; ++i) {
      domain.deposit_charge(g.x(i), g.y(g.ny / 2), g.z(g.nz / 2), amp / double(g.nx), n0);
    }
    w.fixed_sets.push_back(std::move(fixed));
    w.n0_sets.push_back(std::move(n0));
  }
  return w;
}

}  // namespace

int main() {
  // ~50k free nodes by default — the fig2 device grid scale; shrink via
  // env for the CI smoke run.
  poisson::GridSpec g;
  g.nx = static_cast<size_t>(bench::env_int("GNRFET_BENCH_POISSON_NX", 48));
  g.ny = static_cast<size_t>(bench::env_int("GNRFET_BENCH_POISSON_NY", 32));
  g.nz = static_cast<size_t>(bench::env_int("GNRFET_BENCH_POISSON_NZ", 32));
  g.dx = g.dy = g.dz = 0.25;
  const int repeats = bench::env_int("GNRFET_BENCH_POISSON_REPEATS", 3);

  poisson::Domain domain(g);
  domain.paint_permittivity({-1.0, 1e9, -1.0, 1e9, -1.0, 1e9}, 3.9);
  // Top/bottom gate planes: Dirichlet boundaries as in the device stack.
  domain.add_electrode({-1.0, 1e9, -1.0, 1e9, -0.001, 0.001});
  domain.add_electrode({-1.0, 1e9, -1.0, 1e9, g.z_max() - 0.001, g.z_max() + 0.001});
  const poisson::Assembly assembly(domain);
  const Workload w = build_workload(domain, g);

  bench::banner("Poisson PCG preconditioners (fixed assembly, fixed RHS set)");
  std::printf("grid %zux%zux%zu, %zu free nodes, %zu charge cases x %d repeats\n", g.nx, g.ny,
              g.nz, assembly.num_free(), w.fixed_sets.size(), repeats);

  bench::output_path("poisson_solver");  // ensures bench_out/ exists
  std::ofstream json("bench_out/BENCH_poisson.json");
  csv::Table table({"preconditioner_id", "pcg_iterations", "precond_setups", "seconds"});
  table.set_meta("preconditioner_id", "0 = jacobi, 1 = ssor, 2 = ic0");

  for (const char* pc : {"jacobi", "ssor", "ic0"}) {
    const auto kind = linalg::preconditioner_kind_from_string(pc);
    const auto before = metrics::snapshot();
    bench::PhaseTimer timer("poisson_solver", pc);
    for (int rep = 0; rep < repeats; ++rep) {
      poisson::PoissonSolver solver(assembly, kind);
      for (size_t c = 0; c < w.fixed_sets.size(); ++c) {
        const auto phi_lin = solver.solve_linear({0.0, 0.4}, w.fixed_sets[c]);
        const auto res = solver.solve_nonlinear({0.0, 0.4}, w.n0_sets[c], w.p0,
                                                w.fixed_sets[c], phi_lin, phi_lin);
        if (!res.converged) {
          std::fprintf(stderr, "poisson bench: %s case %zu did not converge\n", pc, c);
          return 1;
        }
      }
    }
    const double seconds = timer.stop();
    const auto after = metrics::snapshot();
    const auto iters =
        after.counters[static_cast<size_t>(metrics::Counter::kPcgIterations)] -
        before.counters[static_cast<size_t>(metrics::Counter::kPcgIterations)];
    const auto setups =
        after.counters[static_cast<size_t>(metrics::Counter::kPcgPrecondSetups)] -
        before.counters[static_cast<size_t>(metrics::Counter::kPcgPrecondSetups)];
    std::printf("%-6s: %6llu PCG iterations, %4llu precond setups, %.3f s\n", pc,
                static_cast<unsigned long long>(iters), static_cast<unsigned long long>(setups),
                seconds);
    json << "{\"preconditioner\":\"" << pc << "\",\"iterations\":" << iters
         << ",\"seconds\":" << seconds << "}\n";
    table.add_row({double(kind == linalg::PreconditionerKind::kJacobi   ? 0
                          : kind == linalg::PreconditionerKind::kSsor ? 1
                                                                      : 2),
                   double(iters), double(setups), seconds});
  }
  json.close();
  std::printf("[json] bench_out/BENCH_poisson.json\n");
  bench::save_csv(table, "poisson_solver");
  return 0;
}
