/// Poisson linear-solver microbenchmark: one fixed assembly (a MOS-like
/// gate stack around a channel plane) and one fixed set of charge/bias
/// right-hand sides, solved under each preconditioner at the base grid and
/// a 2x-refined grid. Emits bench_out/BENCH_poisson.json with one
/// {preconditioner, grid_scale, iterations, seconds} record per line — the
/// repo's perf-trajectory file — plus two device rows (ic0 vs mg current on
/// a small self-consistent device) and a CSV mirror. tools/ci_checks.sh
/// perf-smoke asserts IC(0) beats Jacobi, multigrid beats IC(0) with a gap
/// that widens on the refined grid, and that switching the device stack to
/// mg leaves the terminal current and Gummel count unchanged.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "common/metrics.hpp"
#include "device/geometry.hpp"
#include "device/selfconsistent.hpp"
#include "poisson/assembly.hpp"
#include "poisson/grid.hpp"
#include "poisson/solver.hpp"

using namespace gnrfet;

namespace {

struct Workload {
  poisson::GridSpec grid;
  std::vector<std::vector<double>> fixed_sets;  ///< fixed charge per case
  std::vector<std::vector<double>> n0_sets;     ///< electron population per case
  std::vector<double> p0, zero;
};

Workload build_workload(const poisson::Domain& domain, const poisson::GridSpec& g) {
  Workload w;
  w.grid = g;
  w.zero.assign(g.num_nodes(), 0.0);
  w.p0.assign(g.num_nodes(), 0.0);
  // Charge cases: a sheet of channel electrons at three densities plus a
  // localized impurity, mirroring what the Gummel loop feeds Poisson.
  for (const double amp : {0.2, 0.6, 1.2}) {
    std::vector<double> fixed(g.num_nodes(), 0.0);
    std::vector<double> n0(g.num_nodes(), 0.0);
    domain.deposit_charge(g.x(g.nx / 3), g.y(g.ny / 2), g.z(g.nz / 2), 1.0, fixed);
    for (size_t i = 2; i + 2 < g.nx; ++i) {
      domain.deposit_charge(g.x(i), g.y(g.ny / 2), g.z(g.nz / 2), amp / double(g.nx), n0);
    }
    w.fixed_sets.push_back(std::move(fixed));
    w.n0_sets.push_back(std::move(n0));
  }
  return w;
}

int pc_id(linalg::PreconditionerKind kind) {
  switch (kind) {
    case linalg::PreconditionerKind::kJacobi: return 0;
    case linalg::PreconditionerKind::kSsor: return 1;
    case linalg::PreconditionerKind::kIc0: return 2;
    case linalg::PreconditionerKind::kMg: return 3;
  }
  return -1;
}

}  // namespace

int main() {
  // ~50k free nodes at scale 1 by default — the fig2 device grid scale —
  // and ~400k at scale 2, where the mesh-independent multigrid iteration
  // count must widen its lead over IC(0). Shrink via env for the CI smoke
  // run.
  const size_t base_nx = static_cast<size_t>(bench::env_int("GNRFET_BENCH_POISSON_NX", 48));
  const size_t base_ny = static_cast<size_t>(bench::env_int("GNRFET_BENCH_POISSON_NY", 32));
  const size_t base_nz = static_cast<size_t>(bench::env_int("GNRFET_BENCH_POISSON_NZ", 32));
  const int repeats = bench::env_int("GNRFET_BENCH_POISSON_REPEATS", 3);

  bench::banner("Poisson PCG preconditioners (fixed assembly, fixed RHS set)");
  bench::output_path("poisson_solver");  // ensures bench_out/ exists
  std::ofstream json("bench_out/BENCH_poisson.json");
  json.precision(17);
  csv::Table table({"preconditioner_id", "grid_scale", "pcg_iterations", "precond_setups",
                    "seconds"});
  table.set_meta("preconditioner_id", "0 = jacobi, 1 = ssor, 2 = ic0, 3 = mg");

  for (const size_t scale : {size_t{1}, size_t{2}}) {
    poisson::GridSpec g;
    g.nx = base_nx * scale;
    g.ny = base_ny * scale;
    g.nz = base_nz * scale;
    // Same physical box at every scale: refine the spacing, not the extent,
    // so the scale-2 rows measure mesh refinement of one problem.
    g.dx = g.dy = g.dz = 0.25 / double(scale);

    poisson::Domain domain(g);
    domain.paint_permittivity({-1.0, 1e9, -1.0, 1e9, -1.0, 1e9}, 3.9);
    // Top/bottom gate planes: Dirichlet boundaries as in the device stack.
    domain.add_electrode({-1.0, 1e9, -1.0, 1e9, -0.001, 0.001});
    domain.add_electrode({-1.0, 1e9, -1.0, 1e9, g.z_max() - 0.001, g.z_max() + 0.001});
    const poisson::Assembly assembly(domain);
    const Workload w = build_workload(domain, g);

    std::printf("grid %zux%zux%zu (scale %zu), %zu free nodes, %zu charge cases x %d repeats\n",
                g.nx, g.ny, g.nz, scale, assembly.num_free(), w.fixed_sets.size(), repeats);

    for (const char* pc : {"jacobi", "ssor", "ic0", "mg"}) {
      const auto kind = linalg::preconditioner_kind_from_string(pc);
      const auto before = metrics::snapshot();
      bench::PhaseTimer timer("poisson_solver", pc);
      for (int rep = 0; rep < repeats; ++rep) {
        poisson::PoissonSolver solver(assembly, kind);
        for (size_t c = 0; c < w.fixed_sets.size(); ++c) {
          const auto phi_lin = solver.solve_linear({0.0, 0.4}, w.fixed_sets[c]);
          const auto res = solver.solve_nonlinear({0.0, 0.4}, w.n0_sets[c], w.p0,
                                                  w.fixed_sets[c], phi_lin, phi_lin);
          if (!res.converged) {
            std::fprintf(stderr, "poisson bench: %s scale %zu case %zu did not converge\n", pc,
                         scale, c);
            return 1;
          }
        }
      }
      const double seconds = timer.stop();
      const auto after = metrics::snapshot();
      const auto iters =
          after.counters[static_cast<size_t>(metrics::Counter::kPcgIterations)] -
          before.counters[static_cast<size_t>(metrics::Counter::kPcgIterations)];
      const auto setups =
          after.counters[static_cast<size_t>(metrics::Counter::kPcgPrecondSetups)] -
          before.counters[static_cast<size_t>(metrics::Counter::kPcgPrecondSetups)];
      std::printf("%-6s (scale %zu): %6llu PCG iterations, %4llu precond setups, %.3f s\n", pc,
                  scale, static_cast<unsigned long long>(iters),
                  static_cast<unsigned long long>(setups), seconds);
      json << "{\"preconditioner\":\"" << pc << "\",\"grid_scale\":" << scale
           << ",\"iterations\":" << iters << ",\"seconds\":" << seconds << "}\n";
      table.add_row({double(pc_id(kind)), double(scale), double(iters), double(setups), seconds});
    }
  }

  // fig2 proxy: one on-state bias point of a small self-consistent device
  // under ic0 vs mg. The preconditioner must not move the physics — CI
  // asserts the currents agree to 1e-10 relative with identical Gummel
  // counts. The uniform energy grid keeps the transport integral a smooth
  // function of the potential, so the comparison measures only the Poisson
  // solve (adaptive panel thresholds could flip on 1e-12 perturbations).
  ::setenv("GNRFET_NEGF_GRID", "uniform", 1);
  device::DeviceSpec spec;
  spec.channel_length_nm = 6.0;
  spec.grid_step_nm = 0.35;
  spec.lateral_margin_nm = 2.0;
  spec.num_modes = 2;
  device::SolveOptions sopts;
  sopts.energy_step_eV = 5e-3;
  for (const char* pc : {"ic0", "mg"}) {
    ::setenv("GNRFET_POISSON_PC", pc, 1);
    bench::PhaseTimer timer("poisson_solver_device", pc);
    const device::DeviceGeometry geometry(spec);
    const device::SelfConsistentSolver solver(geometry, sopts);
    const auto sol = solver.solve({0.4, 0.3});
    const double seconds = timer.stop();
    std::printf("device %-4s: I = %.12g A, %d Gummel iterations, %.3f s\n", pc, sol.current_A,
                sol.iterations, seconds);
    json << "{\"device_pc\":\"" << pc << "\",\"current_A\":" << sol.current_A
         << ",\"gummel_iterations\":" << sol.iterations << ",\"seconds\":" << seconds << "}\n";
  }
  ::unsetenv("GNRFET_POISSON_PC");
  ::unsetenv("GNRFET_NEGF_GRID");

  json.close();
  std::printf("[json] bench_out/BENCH_poisson.json\n");
  bench::save_csv(table, "poisson_solver");
  return 0;
}
