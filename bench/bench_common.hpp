#pragma once

#include <string>

#include "common/csv.hpp"

/// Shared bench scaffolding: every bench prints the paper-style rows to
/// stdout and mirrors the series into CSV files under bench_out/ (relative
/// to the working directory) for plotting.
namespace gnrfet::bench {

/// bench_out/<name>.csv; creates the directory.
std::string output_path(const std::string& name);

/// Save and announce a CSV artifact.
void save_csv(const csv::Table& table, const std::string& name);

/// Section banner.
void banner(const std::string& title);

/// Number of Monte Carlo samples etc. can be overridden via environment
/// (e.g. GNRFET_MC_SAMPLES); returns fallback when unset/invalid.
int env_int(const char* name, int fallback);

/// Wall-clock timer for one named bench phase. On stop (or destruction)
/// it prints the elapsed time and appends a
/// `{bench, phase, seconds, threads}` row to bench_out/perf_timings.csv,
/// so speedups stay measurable across PRs and thread counts. Runs on the
/// trace clock (common/trace.hpp): with GNRFET_TRACE set, every phase
/// also lands in the trace as a `bench` span aligned with the solver
/// spans it encloses.
class PhaseTimer {
 public:
  PhaseTimer(std::string bench, std::string phase);
  ~PhaseTimer();

  /// Stop and record; returns elapsed seconds. Idempotent.
  double stop();

 private:
  std::string bench_, phase_;
  double start_us_ = 0.0;
  double seconds_ = -1.0;
};

}  // namespace gnrfet::bench
