#pragma once

#include <string>

#include "common/csv.hpp"

/// Shared bench scaffolding: every bench prints the paper-style rows to
/// stdout and mirrors the series into CSV files under bench_out/ (relative
/// to the working directory) for plotting.
namespace gnrfet::bench {

/// bench_out/<name>.csv; creates the directory.
std::string output_path(const std::string& name);

/// Save and announce a CSV artifact.
void save_csv(const csv::Table& table, const std::string& name);

/// Section banner.
void banner(const std::string& title);

/// Number of Monte Carlo samples etc. can be overridden via environment
/// (e.g. GNRFET_MC_SAMPLES); returns fallback when unset/invalid.
int env_int(const char* name, int fallback);

}  // namespace gnrfet::bench
