/// NEGF energy-integration benchmark: the same mode-space I-V sweep (a
/// fig2-style source-drain ramp family) solved on the uniform grid and on
/// the adaptive grid, both checked against a 4x-finer uniform reference.
/// Emits bench_out/BENCH_negf.json with one {grid, rgf_solves,
/// energy_points, seconds, max_rel_current_err} record per line — the
/// perf-trajectory file behind tools/ci_checks.sh perf-smoke, which
/// asserts the adaptive grid does at most half the uniform RGF solves at
/// <= 1e-4 relative current error.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "common/metrics.hpp"
#include "gnr/modespace.hpp"
#include "negf/transport.hpp"

using namespace gnrfet;

namespace {

std::vector<std::vector<double>> ramp_potential(size_t ncol, size_t nlines, double vd) {
  // Source-drain ramp with a line-direction ripple: the potential family
  // the self-consistent fig2 sweep produces, minus the Poisson loop.
  std::vector<std::vector<double>> u(ncol, std::vector<double>(nlines, 0.0));
  for (size_t c = 0; c < ncol; ++c) {
    const double x = static_cast<double>(c) / static_cast<double>(ncol - 1);
    for (size_t j = 0; j < nlines; ++j) {
      u[c][j] = -0.3 - vd * x + 0.02 * std::cos(0.7 * static_cast<double>(j));
    }
  }
  return u;
}

/// FNV-1a over raw double bytes: the bit-identity witness the CI thread
/// sweep compares across GNRFET_THREADS values.
uint64_t fnv1a(const std::vector<double>& v) {
  uint64_t h = 1469598103934665603ull;
  for (const double d : v) {
    unsigned char b[sizeof(double)];
    std::memcpy(b, &d, sizeof(double));
    for (const unsigned char c : b) {
      h ^= c;
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace

int main() {
  const int n_gnr = bench::env_int("GNRFET_BENCH_NEGF_N", 12);
  const size_t ncol = static_cast<size_t>(bench::env_int("GNRFET_BENCH_NEGF_NCOL", 64));
  const int nvd = bench::env_int("GNRFET_BENCH_NEGF_NVD", 6);
  const auto modes = gnr::build_mode_set(n_gnr, {2.7, 0.12}, 3);
  const size_t nlines = static_cast<size_t>(modes.n_index);

  bench::banner("NEGF energy integration (uniform vs adaptive grid)");
  std::printf("N=%d ribbon, %zu columns, %d bias points\n", n_gnr, ncol, nvd);

  std::vector<negf::TransportOptions> biases;
  std::vector<std::vector<std::vector<double>>> potentials;
  for (int i = 0; i < nvd; ++i) {
    const double vd = 0.05 + 0.45 * static_cast<double>(i) / static_cast<double>(nvd - 1);
    negf::TransportOptions opt;
    opt.mu_drain_eV = -vd;
    opt.energy_step_eV = 2e-3;
    biases.push_back(opt);
    potentials.push_back(ramp_potential(ncol, nlines, vd));
  }

  // 4x-finer uniform reference currents.
  setenv("GNRFET_NEGF_GRID", "uniform", 1);
  std::vector<double> ref(biases.size());
  for (size_t i = 0; i < biases.size(); ++i) {
    negf::TransportOptions fine = biases[i];
    fine.energy_step_eV /= 4.0;
    ref[i] = negf::solve_mode_space(modes, potentials[i], fine).current_A;
  }

  bench::output_path("negf_grid");  // ensures bench_out/ exists
  std::ofstream json("bench_out/BENCH_negf.json");
  csv::Table table({"grid_id", "rgf_solves", "energy_points", "seconds", "max_rel_current_err"});
  table.set_meta("grid_id", "0 = uniform, 1 = adaptive");

  for (const char* grid : {"uniform", "adaptive"}) {
    setenv("GNRFET_NEGF_GRID", grid, 1);
    const auto before = metrics::snapshot();
    bench::PhaseTimer timer("negf_grid", grid);
    double max_rel = 0.0;
    std::vector<double> currents;
    currents.reserve(biases.size());
    for (size_t i = 0; i < biases.size(); ++i) {
      const auto sol = negf::solve_mode_space(modes, potentials[i], biases[i]);
      currents.push_back(sol.current_A);
      max_rel = std::max(max_rel, std::abs(sol.current_A - ref[i]) / std::abs(ref[i]));
    }
    const double seconds = timer.stop();
    const auto after = metrics::snapshot();
    const auto solves = after.counters[static_cast<size_t>(metrics::Counter::kRgfSolves)] -
                        before.counters[static_cast<size_t>(metrics::Counter::kRgfSolves)];
    const auto points =
        after.counters[static_cast<size_t>(metrics::Counter::kNegfEnergyPoints)] -
        before.counters[static_cast<size_t>(metrics::Counter::kNegfEnergyPoints)];
    char hash[32];
    std::snprintf(hash, sizeof hash, "%016llx",
                  static_cast<unsigned long long>(fnv1a(currents)));
    std::printf(
        "%-8s: %8llu RGF solves, %8llu energy points, %.3f s, max |dI/I| = %.2e, I hash %s\n",
        grid, static_cast<unsigned long long>(solves),
        static_cast<unsigned long long>(points), seconds, max_rel, hash);
    json << "{\"grid\":\"" << grid << "\",\"rgf_solves\":" << solves
         << ",\"energy_points\":" << points << ",\"seconds\":" << seconds
         << ",\"max_rel_current_err\":" << max_rel << ",\"current_hash\":\"" << hash
         << "\"}\n";
    table.add_row({grid[0] == 'u' ? 0.0 : 1.0, double(solves), double(points), seconds,
                   max_rel});
  }
  json.close();
  std::printf("[json] bench_out/BENCH_negf.json\n");
  bench::save_csv(table, "negf_grid");
  return 0;
}
