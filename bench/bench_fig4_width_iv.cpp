/// Fig. 4 reproduction: I-V characteristics at VD = 0.5 V for GNR widths
/// N = 9, 12, 15, 18. The band gap shrinks with width, so N=9 reaches
/// Ion/Ioff ~ 1000x while N=18 is too leaky; wider ribbons also carry more
/// channel charge (larger intrinsic capacitance).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "explore/tech_explore.hpp"

using namespace gnrfet;

int main() {
  bench::banner("Fig. 4: I-V vs GNR width at VD = 0.5 V");
  explore::DesignKit kit;
  csv::Table out({"n_index", "vg_V", "id_A"});
  std::printf("%-4s %-10s %-12s %-12s %-10s %-12s\n", "N", "Eg(eV)", "Ion(A)", "Ioff(A)",
              "Ion/Ioff", "Cg_on(F)");
  for (const int n : {9, 12, 15, 18}) {
    const device::DeviceTable& t = kit.table({n, 0.0});
    const size_t ivd = 10;  // VD = 0.5 V
    double ion = 0.0, ioff = 1e9;
    for (size_t ig = 0; ig < t.vg.size(); ++ig) {
      if (t.vg[ig] > 0.75 + 1e-9) break;
      const double id = t.at_current(ig, ivd);
      out.add_row({static_cast<double>(n), t.vg[ig], id});
      ion = std::max(ion, id);
      ioff = std::min(ioff, id);
    }
    // On-state intrinsic gate capacitance from the charge table slope.
    const size_t ig_on = 15;  // 0.75 V
    const double cg_on = std::abs(t.at_charge(ig_on, ivd) - t.at_charge(ig_on - 1, ivd)) /
                         (t.vg[ig_on] - t.vg[ig_on - 1]);
    std::printf("%-4d %-10.3f %-12.3e %-12.3e %-10.0f %-12.3e\n", n, t.band_gap_eV, ion, ioff,
                ion / ioff, cg_on);
  }
  std::printf("(paper: N=9 reaches Ion/Ioff ~1000x; N=18 band gap too small for low leakage;\n"
              " N=18 on-state channel capacitance ~50%% larger than N=9)\n");
  bench::save_csv(out, "fig4_width_iv");
  return 0;
}
