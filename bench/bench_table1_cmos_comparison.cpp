/// Table 1 reproduction: 15-stage FO4 ring-oscillator frequency, EDP, and
/// inverter SNM for the GNRFET operating points A/B/C against scaled CMOS
/// at the 22/32/45 nm nodes with VDD in {0.4, 0.6, 0.8} V. The headline
/// claim is the 40-168x EDP advantage of GNRFETs at comparable operating
/// points.
#include <cstdio>

#include "bench_common.hpp"
#include "circuit/snm.hpp"
#include "cmos/nodes.hpp"
#include "explore/tech_explore.hpp"

using namespace gnrfet;

namespace {

struct Row {
  std::string label;
  double freq_GHz = 0.0;
  double edp_fJps = 0.0;
  double snm_V = 0.0;
};

Row measure(const std::string& label, const circuit::InverterModels& inv, double vdd,
            const circuit::RingMeasureOptions& base) {
  circuit::RingMeasureOptions opts = base;
  opts.vdd = vdd;
  const circuit::RingMetrics m =
      circuit::measure_ring_oscillator(std::vector<circuit::InverterModels>(15, inv), inv, opts);
  const circuit::Vtc vtc = circuit::compute_vtc(inv, vdd);
  Row r;
  r.label = label;
  r.freq_GHz = m.frequency_Hz / 1e9;
  r.edp_fJps = m.edp_Js * 1e27;
  r.snm_V = circuit::butterfly_snm(vtc, vtc);
  return r;
}

}  // namespace

int main() {
  bench::banner("Table 1: GNRFET (A/B/C) vs scaled CMOS ring oscillators");
  circuit::RingMeasureOptions ropt;
  ropt.t_stop_s = 2.0e-9;
  ropt.dt_s = 0.4e-12;

  std::vector<Row> rows;
  explore::DesignKit kit;
  // The paper's operating points (VDD, VT): A=(0.3, 0.06), B=(0.4, 0.13),
  // C=(0.4, 0.23).
  rows.push_back(measure("GNRFET A (0.3V,VT=0.06)", kit.inverter(0.06), 0.3, ropt));
  rows.push_back(measure("GNRFET B (0.4V,VT=0.13)", kit.inverter(0.13), 0.4, ropt));
  rows.push_back(measure("GNRFET C (0.4V,VT=0.23)", kit.inverter(0.23), 0.4, ropt));

  circuit::RingMeasureOptions cmos_ropt;
  cmos_ropt.t_stop_s = 4.0e-9;
  cmos_ropt.dt_s = 1.0e-12;
  for (const auto node : {cmos::Node::k22nm, cmos::Node::k32nm, cmos::Node::k45nm}) {
    const circuit::InverterModels inv = cmos::make_cmos_inverter(node);
    for (const double vdd : {0.8, 0.6, 0.4}) {
      rows.push_back(measure(std::string("CMOS ") + cmos::node_name(node) + " " +
                                 std::to_string(vdd).substr(0, 3) + "V",
                             inv, vdd, cmos_ropt));
    }
  }

  csv::Table out({"row", "freq_GHz", "edp_fJps", "snm_V"});
  std::printf("%-26s %-10s %-12s %-8s\n", "design", "f (GHz)", "EDP (fJ-ps)", "SNM (V)");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-26s %-10.2f %-12.4g %-8.3f\n", rows[i].label.c_str(), rows[i].freq_GHz,
                rows[i].edp_fJps, rows[i].snm_V);
    out.add_row({static_cast<double>(i), rows[i].freq_GHz, rows[i].edp_fJps, rows[i].snm_V});
  }
  // EDP advantage of point B against the best (lowest) CMOS EDP per node.
  const double edp_b = rows[1].edp_fJps;
  const char* names[] = {"22nm", "32nm", "45nm"};
  for (int n = 0; n < 3; ++n) {
    double best = 1e300;
    for (int v = 0; v < 3; ++v) best = std::min(best, rows[3 + 3 * n + v].edp_fJps);
    std::printf("EDP advantage of GNRFET B vs %s optimum: %.0fx (paper: 40-168x)\n", names[n],
                best / edp_b);
  }
  bench::save_csv(out, "table1_comparison");
  return 0;
}
