/// Fig. 2 reproduction: (a) ambipolar I-V characteristics of the ideal
/// N=12 GNRFET at several drain biases (minimum leakage at VG ~ VD/2,
/// on-current density ~10^3-10^4 uA/um); (b) threshold-voltage extraction
/// by the max-gm linear-extrapolation method at low VD, with and without a
/// gate work-function offset.
#include <cstdio>

#include "bench_common.hpp"
#include "common/constants.hpp"
#include "device/sweeps.hpp"
#include "explore/tech_explore.hpp"

using namespace gnrfet;

int main() {
  bench::banner("Fig. 2(a): I-V of ideal N=12 GNRFET");
  explore::DesignKit kit;
  bench::PhaseTimer table_timer("fig2_device_iv", "table_generation");
  const device::DeviceTable& t = kit.table({12, 0.0});
  table_timer.stop();
  const double width_um =
      (12 - 1) * 0.123 * 1e-3;  // ribbon width in um for current density

  csv::Table out({"vg_V", "vd_V", "id_A"});
  const double vds[] = {0.25, 0.50, 0.75};
  for (const double vd : vds) {
    // Locate the vd column (0.05 V grid).
    size_t ivd = 0;
    for (size_t i = 0; i < t.vd.size(); ++i) {
      if (std::abs(t.vd[i] - vd) < 1e-9) ivd = i;
    }
    std::printf("VD = %.2f V:\n  VG(V)  ID(A)\n", vd);
    double id_min = 1e9, vg_min = 0.0;
    for (size_t ig = 0; ig < t.vg.size(); ++ig) {
      if (t.vg[ig] > 0.75 + 1e-9) break;
      const double id = t.at_current(ig, ivd);
      out.add_row({t.vg[ig], vd, id});
      std::printf("  %5.2f  %.4e\n", t.vg[ig], id);
      if (id < id_min) {
        id_min = id;
        vg_min = t.vg[ig];
      }
    }
    std::printf("  -> min leakage %.3e A at VG = %.2f V (VD/2 = %.2f V)\n", id_min, vg_min,
                vd / 2);
  }
  // On-current density at VD = 0.5 V, VG = 0.75 V.
  {
    size_t ivd = 10;  // 0.50 V
    size_t ig = 15;   // 0.75 V
    const double ion = t.at_current(ig, ivd);
    std::printf("Ion/W at VD=0.5, VG=0.75: %.0f uA/um (paper: ~6300 uA/um at VG=0.5..0.75)\n",
                ion * 1e6 / width_um);
  }
  bench::save_csv(out, "fig2a_iv");

  bench::banner("Fig. 2(b): VT extraction at low VD");
  {
    const size_t ivd = 1;  // 0.05 V
    std::vector<double> id(t.vg.size());
    for (size_t ig = 0; ig < t.vg.size(); ++ig) id[ig] = t.at_current(ig, ivd);
    const double vt0 = device::extract_threshold_voltage(t.vg, id);
    std::printf("offset 0.0 V: VT = %.3f V (paper: ~0.3 V)\n", vt0);
    // A 0.2 V work-function offset shifts the curve left: VT drops by 0.2.
    std::vector<double> vg_shift(t.vg);
    for (auto& v : vg_shift) v -= 0.2;
    const double vt_off = device::extract_threshold_voltage(vg_shift, id);
    std::printf("offset 0.2 V: VT = %.3f V (paper: ~0.1 V)\n", vt_off);
    csv::Table vt({"vg_V", "id_A_vd0p05"});
    for (size_t ig = 0; ig < t.vg.size(); ++ig) vt.add_row({t.vg[ig], id[ig]});
    bench::save_csv(vt, "fig2b_vt_extraction");
  }
  return 0;
}
