/// Ablation study for the solver design choices called out in DESIGN.md:
/// (a) how many mode-space subbands the transport needs, (b) the energy-grid
/// resolution, and (c) the uncoupled mode-space fast path against the
/// real-space atomistic reference — on a shortened device so the sweep runs
/// in seconds.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "device/selfconsistent.hpp"
#include "gnr/hamiltonian.hpp"
#include "negf/transport.hpp"

using namespace gnrfet;

int main() {
  bench::banner("Ablation: mode count (self-consistent Ion, 8 nm N=12 device)");
  csv::Table modes_csv({"num_modes", "ion_A", "iterations"});
  double ion_2modes = 0.0, ion_ref = 0.0;
  for (const int nm : {1, 2, 3, 4}) {
    device::DeviceSpec spec;
    spec.channel_length_nm = 8.0;
    spec.num_modes = nm;
    const device::DeviceGeometry geo(spec);
    const device::SelfConsistentSolver solver(geo);
    const auto sol = solver.solve({0.6, 0.5});
    if (nm == 2) ion_2modes = sol.current_A;
    if (nm == 4) ion_ref = sol.current_A;
    modes_csv.add_row({static_cast<double>(nm), sol.current_A,
                       static_cast<double>(sol.iterations)});
    std::printf("modes=%d: Ion=%.4e A (%d Gummel iterations)\n", nm, sol.current_A,
                sol.iterations);
  }
  std::printf("-> the lowest 2 subband pairs carry the transport window; modes 3+ add %.2f%%\n",
              100.0 * std::abs(ion_ref / std::max(ion_2modes, 1e-300) - 1.0));
  bench::save_csv(modes_csv, "ablation_modes");

  bench::banner("Ablation: energy-grid step (same device, 3 modes)");
  csv::Table estep_csv({"estep_meV", "ion_A"});
  for (const double de : {10e-3, 5e-3, 2.5e-3, 1.25e-3}) {
    device::DeviceSpec spec;
    spec.channel_length_nm = 8.0;
    const device::DeviceGeometry geo(spec);
    device::SolveOptions opts;
    opts.energy_step_eV = de;
    const device::SelfConsistentSolver solver(geo, opts);
    const auto sol = solver.solve({0.6, 0.5});
    estep_csv.add_row({de * 1e3, sol.current_A});
    std::printf("dE=%.2f meV: Ion=%.4e A\n", de * 1e3, sol.current_A);
  }
  bench::save_csv(estep_csv, "ablation_energy_step");

  bench::banner("Ablation: mode space vs real-space reference (fixed potential)");
  {
    const gnr::TightBindingParams p{2.7, 0.12};
    const int slices = 24;
    const gnr::Lattice lat = gnr::Lattice::armchair(12, slices, p.edge_delta);
    // Linear drain-to-source potential drop, on-state.
    std::vector<double> onsite(lat.atoms().size());
    for (size_t i = 0; i < onsite.size(); ++i) {
      const double x = lat.atoms()[i].x_nm / lat.length_nm();
      onsite[i] = -0.45 - 0.4 * x;
    }
    negf::TransportOptions opt;
    opt.mu_drain_eV = -0.4;
    opt.energy_step_eV = 2.5e-3;
    const auto real = negf::solve_real_space(lat, p, onsite, opt);

    const auto modes = gnr::build_mode_set(12, p, 6);
    std::vector<std::vector<double>> u(static_cast<size_t>(2 * slices),
                                       std::vector<double>(12, 0.0));
    for (size_t c = 0; c < u.size(); ++c) {
      const double x = lat.column_x_nm()[c] / lat.length_nm();
      for (auto& v : u[c]) v = -0.45 - 0.4 * x;
    }
    const auto mode = negf::solve_mode_space(modes, u, opt);
    std::printf("real space : I=%.4e A, net electrons=%.3f\n", real.current_A,
                real.total_net_electrons);
    std::printf("mode space : I=%.4e A, net electrons=%.3f (err %.1f%% / %.1f%%)\n",
                mode.current_A, mode.total_net_electrons,
                100.0 * std::abs(mode.current_A / real.current_A - 1.0),
                100.0 * std::abs(mode.total_net_electrons - real.total_net_electrons) /
                    std::max(1e-9, std::abs(real.total_net_electrons)));
  }
  return 0;
}
