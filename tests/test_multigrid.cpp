#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/env.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "linalg/pcg.hpp"
#include "linalg/preconditioner.hpp"
#include "poisson/assembly.hpp"
#include "poisson/grid.hpp"
#include "poisson/multigrid.hpp"
#include "poisson/solver.hpp"

namespace {

using namespace gnrfet;
using linalg::PreconditionerKind;

uint64_t fnv1a(const std::vector<double>& v) {
  uint64_t h = 1469598103934665603ull;
  for (const double d : v) {
    unsigned char b[sizeof(double)];
    std::memcpy(b, &d, sizeof(double));
    for (const unsigned char c : b) {
      h ^= c;
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// Scoped environment override restoring the prior state on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value)
      : name_(name), was_set_(common::env_set(name)) {
    if (was_set_) previous_ = common::env_or(name, "");
    if (value) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (was_set_) {
      ::setenv(name_, previous_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool was_set_;
  std::string previous_;
};

/// A grid deep enough for a three-level hierarchy: one grounded plane,
/// a biased plane, a dielectric step, and deposited point charges.
struct MgProblem {
  poisson::GridSpec g;
  poisson::Domain domain;
  poisson::Assembly assembly;
  std::vector<double> zero, fixed, n0, p0;

  MgProblem() : g(make_grid()), domain(g), assembly((setup(domain), domain)) {
    zero.assign(g.num_nodes(), 0.0);
    fixed.assign(g.num_nodes(), 0.0);
    domain.deposit_charge(g.x(8), g.y(6), g.z(5), 3.0, fixed);
    domain.deposit_charge(g.x(3), g.y(9), g.z(7), -1.5, fixed);
    n0.assign(g.num_nodes(), 0.0);
    n0[g.index(8, 6, 5)] = 1.0;
    n0[g.index(4, 3, 6)] = 0.25;
    p0.assign(g.num_nodes(), 0.0);
    p0[g.index(12, 9, 4)] = 0.5;
  }

  static poisson::GridSpec make_grid() {
    poisson::GridSpec g;
    g.nx = 17;
    g.ny = 13;
    g.nz = 11;
    g.dx = g.dy = g.dz = 0.3;
    return g;
  }
  static void setup(poisson::Domain& d) {
    d.paint_permittivity({0.0, 10.0, 0.0, 10.0, 0.0, 1.0}, 3.9);
    d.add_electrode({-1.0, 10.0, -1.0, 10.0, -0.001, 0.001});  // grounded base
    d.add_electrode({1.0, 2.5, 1.0, 2.5, 2.95, 3.05});         // embedded gate pad
  }
};

/// Deterministic quasi-random vector (no RNG: fixed phases).
std::vector<double> test_vector(size_t n, double phase) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = std::sin(0.7 * static_cast<double>(i) + phase) +
           0.3 * std::cos(1.3 * static_cast<double>(i));
  }
  return v;
}

TEST(Multigrid, BuildsMultipleLevelsOnDeviceScaleGrid) {
  MgProblem p;
  const poisson::MultigridHierarchy h(p.assembly);
  ASSERT_GE(h.num_levels(), 3u);
  EXPECT_EQ(h.unknowns(0), p.assembly.num_free());
  for (size_t l = 0; l + 1 < h.num_levels(); ++l) {
    EXPECT_LT(h.unknowns(l + 1), h.unknowns(l)) << "level " << l;
  }
}

TEST(Multigrid, RestrictionIsProlongationTranspose) {
  // <R u, v>_coarse must equal <u, P v>_fine for every level pair: the
  // restriction is built as the exact transpose of trilinear
  // prolongation, which keeps the Galerkin coarse operators symmetric.
  MgProblem p;
  const poisson::MultigridHierarchy h(p.assembly);
  ASSERT_GE(h.num_levels(), 2u);
  for (size_t l = 0; l + 1 < h.num_levels(); ++l) {
    const std::vector<double> u = test_vector(h.unknowns(l), 0.2);
    const std::vector<double> v = test_vector(h.unknowns(l + 1), 1.7);
    const std::vector<double> ru = h.restrict_residual(l, u);
    const std::vector<double> pv = h.prolongate(l, v);
    double lhs = 0.0, rhs = 0.0;
    for (size_t i = 0; i < ru.size(); ++i) lhs += ru[i] * v[i];
    for (size_t i = 0; i < pv.size(); ++i) rhs += pv[i] * u[i];
    EXPECT_NEAR(lhs, rhs, 1e-11 * (std::abs(lhs) + 1.0)) << "level " << l;
  }
}

TEST(Multigrid, VcycleContractsOnManufacturedSolution) {
  // b = A x* for a known x*: the standalone V-cycle iteration must reach
  // a 1e-10 relative residual in far fewer cycles than one per digit
  // would suggest (grid-independent contraction), and land on x*.
  MgProblem p;
  const poisson::MultigridHierarchy h(p.assembly);
  const size_t n = p.assembly.num_free();
  const std::vector<double> x_star = test_vector(n, 0.9);
  std::vector<double> b(n);
  p.assembly.matrix().multiply(x_star, b);

  std::vector<double> x(n, 0.0);
  const auto res = h.solve(b, x, 1e-10);
  ASSERT_TRUE(res.converged);
  EXPECT_LE(res.cycles, 35);  // ~0.45 contraction per V(1,1) cycle or better
  for (size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(x[i], x_star[i], 1e-7) << "unknown " << i;
  }
}

TEST(Multigrid, RefactorAfterDiagonalShiftsMatchesFreshFactorBitForBit) {
  // The Newton loop refactors after diagonal-only edits; the refresh must
  // depend only on the current matrix, not the update history.
  MgProblem p;
  const size_t n = p.assembly.num_free();
  linalg::SparseMatrix jac_a(p.assembly.matrix());
  linalg::SparseMatrix jac_b(p.assembly.matrix());
  const std::vector<double> base = p.assembly.matrix().diagonal();

  poisson::MultigridPreconditioner seasoned(p.assembly);
  seasoned.factor(jac_a);
  // Walk the diagonal through two unrelated shifts before the target.
  for (size_t i = 0; i < n; ++i) jac_a.set_diagonal(i, base[i] * (1.0 + 0.5 / (1.0 + i)));
  seasoned.refactor(jac_a);
  for (size_t i = 0; i < n; ++i) jac_a.set_diagonal(i, base[i] + 2.0);
  seasoned.refactor(jac_a);
  const double target_shift = 0.125;
  for (size_t i = 0; i < n; ++i) jac_a.set_diagonal(i, base[i] + target_shift);
  seasoned.refactor(jac_a);

  poisson::MultigridPreconditioner fresh(p.assembly);
  for (size_t i = 0; i < n; ++i) jac_b.set_diagonal(i, base[i] + target_shift);
  fresh.factor(jac_b);

  const std::vector<double> r = test_vector(n, 2.4);
  std::vector<double> za, zb;
  seasoned.apply(r, za);
  fresh.apply(r, zb);
  ASSERT_EQ(za.size(), zb.size());
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(za[i], zb[i]) << "unknown " << i;
}

TEST(Multigrid, PcgWithVcyclePreconditionerConvergesInFewIterations) {
  MgProblem p;
  poisson::MultigridPreconditioner mg(p.assembly);
  mg.factor(p.assembly.matrix());
  const std::vector<double> b = p.assembly.rhs({0.0, 0.4}, p.fixed);
  std::vector<double> x(p.assembly.num_free(), 0.0);
  linalg::PcgOptions opts;
  opts.preconditioner = &mg;
  opts.sum_order = linalg::kernels::SumOrder::kPairwise;
  const auto res = linalg::pcg_solve(p.assembly.matrix(), b, x, opts);
  ASSERT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 15u);
}

TEST(Multigrid, StandaloneSolveAgreesWithPcgPath) {
  MgProblem p;
  const std::vector<double> b = p.assembly.rhs({0.0, 0.4}, p.fixed);

  std::vector<double> x_mg(p.assembly.num_free(), 0.0);
  const auto res = poisson::multigrid_solve(p.assembly, b, x_mg, 1e-12);
  ASSERT_TRUE(res.converged);

  poisson::PoissonSolver pcg_solver(p.assembly, PreconditionerKind::kIc0);
  const std::vector<double> phi = pcg_solver.solve_linear({0.0, 0.4}, p.fixed);
  const std::vector<double> x_pcg = p.assembly.restrict_to_free(phi);
  for (size_t i = 0; i < x_mg.size(); ++i) {
    ASSERT_NEAR(x_mg[i], x_pcg[i], 1e-7) << "unknown " << i;
  }
}

TEST(Multigrid, EnvKnobsSelectMgAndStandaloneMode) {
  MgProblem p;
  {
    EnvGuard guard("GNRFET_POISSON_PC", "mg");
    EXPECT_EQ(poisson::preconditioner_kind_from_env(), PreconditionerKind::kMg);
    EXPECT_EQ(poisson::PoissonSolver(p.assembly).kind(), PreconditionerKind::kMg);
  }
  {
    EnvGuard guard("GNRFET_POISSON_MG_MODE", "typo");
    EXPECT_THROW(poisson::PoissonSolver(p.assembly, PreconditionerKind::kMg),
                 std::invalid_argument);
  }
  // make_preconditioner cannot build mg: it has no grid geometry.
  EXPECT_THROW(linalg::make_preconditioner(PreconditionerKind::kMg), std::invalid_argument);
}

TEST(Multigrid, NonlinearFixedPointMatchesIc0InBothModes) {
  // mg changes the inner linear iteration, not the Newton fixed point:
  // both the PCG-wrapped and the standalone V-cycle path must land on
  // the ic0 potential far below the 1e-5 V Newton tolerance.
  MgProblem p;
  poisson::PoissonSolver ic0(p.assembly, PreconditionerKind::kIc0);
  const auto ref = ic0.solve_nonlinear({0.0, 0.4}, p.n0, p.p0, p.fixed, p.zero, p.zero);
  ASSERT_TRUE(ref.converged);

  poisson::PoissonSolver mg(p.assembly, PreconditionerKind::kMg);
  const auto pcg_path = mg.solve_nonlinear({0.0, 0.4}, p.n0, p.p0, p.fixed, p.zero, p.zero);
  ASSERT_TRUE(pcg_path.converged);

  EnvGuard guard("GNRFET_POISSON_MG_MODE", "standalone");
  poisson::PoissonSolver mg_sa(p.assembly, PreconditionerKind::kMg);
  const auto standalone = mg_sa.solve_nonlinear({0.0, 0.4}, p.n0, p.p0, p.fixed, p.zero, p.zero);
  ASSERT_TRUE(standalone.converged);

  for (size_t i = 0; i < ref.phi_full.size(); ++i) {
    EXPECT_NEAR(pcg_path.phi_full[i], ref.phi_full[i], 1e-9);
    EXPECT_NEAR(standalone.phi_full[i], ref.phi_full[i], 1e-9);
  }
}

TEST(Multigrid, SolveRecordsVcycleAndIterationMetrics) {
  MgProblem p;
  const auto before = metrics::snapshot();
  poisson::PoissonSolver solver(p.assembly, PreconditionerKind::kMg);
  const auto res = solver.solve_nonlinear({0.0, 0.4}, p.n0, p.p0, p.fixed, p.zero, p.zero);
  ASSERT_TRUE(res.converged);
  const auto after = metrics::snapshot();
  EXPECT_GT(after.counters[static_cast<size_t>(metrics::Counter::kMgVcycles)],
            before.counters[static_cast<size_t>(metrics::Counter::kMgVcycles)]);
  EXPECT_GT(after.histograms[static_cast<size_t>(metrics::Histogram::kPcgIterationsMg)].count,
            before.histograms[static_cast<size_t>(metrics::Histogram::kPcgIterationsMg)].count);
}

TEST(MultigridParallel, ConcurrentMgSolversMatchSerialBitForBit) {
  // mg solves are single-threaded inside (parallelism is across solves);
  // concurrent workers each owning a PoissonSolver must reproduce the
  // serial bits for any pool size. Also the TSan target for this layer.
  MgProblem p;
  constexpr size_t kCases = 6;
  std::vector<uint64_t> serial(kCases);
  for (size_t i = 0; i < kCases; ++i) {
    poisson::PoissonSolver solver(p.assembly, PreconditionerKind::kMg);
    const auto res = solver.solve_nonlinear({0.05 * static_cast<double>(i), 0.3}, p.n0, p.p0,
                                            p.fixed, p.zero, p.zero);
    ASSERT_TRUE(res.converged);
    serial[i] = fnv1a(res.phi_full);
  }

  for (const int threads : {4, 16}) {
    const int prev_threads = par::thread_count();
    par::set_thread_count(threads);
    std::vector<uint64_t> parallel(kCases, 0);
    par::parallel_for(kCases, [&](size_t i) {
      poisson::PoissonSolver solver(p.assembly, PreconditionerKind::kMg);
      const auto res = solver.solve_nonlinear({0.05 * static_cast<double>(i), 0.3}, p.n0, p.p0,
                                              p.fixed, p.zero, p.zero);
      parallel[i] = res.converged ? fnv1a(res.phi_full) : 0;
    });
    par::set_thread_count(prev_threads);
    for (size_t i = 0; i < kCases; ++i) {
      EXPECT_EQ(parallel[i], serial[i]) << "case " << i << " threads " << threads;
    }
  }
}

}  // namespace
