// Corrupted-input tests for the physics-contract layer: each feeds a solver
// an input that violates one documented invariant and asserts that the
// resulting ContractViolation names the right subsystem and invariant —
// i.e. that a corrupted simulation dies loudly at the layer that knows why,
// not with a NaN result three layers up. All firing tests are guarded by
// GNRFET_CHECKS_ENABLED so the suite also passes under GNRFET_CHECKS=OFF.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "circuit/dc.hpp"
#include "circuit/elements.hpp"
#include "circuit/mna.hpp"
#include "circuit/transient.hpp"
#include "common/contracts.hpp"
#include "device/tablegen.hpp"
#include "gnr/hamiltonian.hpp"
#include "gnr/lattice.hpp"
#include "linalg/dense.hpp"
#include "model/table2d.hpp"
#include "negf/rgf.hpp"
#include "negf/scalar_rgf.hpp"
#include "poisson/assembly.hpp"
#include "poisson/grid.hpp"
#include "poisson/nonlinear.hpp"

namespace {

using namespace gnrfet;
using contracts::ContractViolation;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Runs `fn`, requires it to throw ContractViolation, and returns the
/// exception for field checks.
template <typename Fn>
ContractViolation capture_violation(Fn&& fn) {
  try {
    fn();
  } catch (const ContractViolation& v) {
    return v;
  }
  ADD_FAILURE() << "expected a ContractViolation, none was thrown";
  return ContractViolation("none", "none", "", "", 0);
}

TEST(Contracts, ViolationCarriesSubsystemInvariantAndLocation) {
  // contracts::fail is what the macros expand to; calling it directly keeps
  // this test meaningful under GNRFET_CHECKS=OFF too.
  const ContractViolation v = capture_violation([] {
    contracts::fail("negf", "example-invariant", "arithmetic still works",
                    "tests/test_contracts.cpp", 42);
  });
  EXPECT_EQ(v.subsystem(), "negf");
  EXPECT_EQ(v.invariant(), "example-invariant");
  const std::string msg = v.what();
  EXPECT_NE(msg.find("negf/example-invariant"), std::string::npos) << msg;
  EXPECT_NE(msg.find("test_contracts.cpp"), std::string::npos) << msg;
  EXPECT_NE(msg.find("arithmetic still works"), std::string::npos) << msg;
}

TEST(Contracts, FiniteHelperAndAscendingHelper) {
  EXPECT_TRUE(contracts::all_finite(std::vector<double>{0.0, -1.5, 3e300}));
  EXPECT_FALSE(contracts::all_finite(std::vector<double>{0.0, kNan}));
  EXPECT_FALSE(contracts::all_finite(std::vector<double>{std::numeric_limits<double>::infinity()}));
  EXPECT_TRUE(contracts::strictly_ascending(std::vector<double>{-1.0, 0.0, 0.5}));
  EXPECT_FALSE(contracts::strictly_ascending(std::vector<double>{0.0, 0.0, 0.5}));
  EXPECT_FALSE(contracts::strictly_ascending(std::vector<double>{0.0, kNan, 1.0}));
}

#if GNRFET_CHECKS_ENABLED

TEST(Contracts, ChecksAreCompiledInByDefault) {
  EXPECT_THROW(GNRFET_REQUIRE("common", "always-false", false, "fires"), ContractViolation);
}

// --- negf ---------------------------------------------------------------

TEST(Contracts, NonHermitianHamiltonianNamesNegf) {
  gnr::BlockTridiagonal h;
  linalg::CMatrix d0(2, 2);
  d0(0, 0) = 0.1;
  d0(1, 1) = -0.1;
  d0(0, 1) = {0.3, 0.0};
  d0(1, 0) = {0.7, 0.0};  // != conj(d0(0,1)): not Hermitian
  h.diag = {d0, d0};
  h.upper = {linalg::CMatrix(2, 2)};
  const linalg::CMatrix sigma(2, 2);

  const ContractViolation v =
      capture_violation([&] { negf::rgf_solve(h, 0.0, 1e-6, sigma, sigma); });
  EXPECT_EQ(v.subsystem(), "negf");
  EXPECT_EQ(v.invariant(), "hermitian-hamiltonian");
}

TEST(Contracts, NanChainNamesNegf) {
  negf::ScalarChain chain;
  chain.onsite = {0.0, kNan, 0.0};
  chain.hopping = {-2.7, -2.7};
  chain.gamma_left = chain.gamma_right = 0.05;

  const ContractViolation v =
      capture_violation([&] { negf::scalar_rgf_solve(chain, 0.0, 1e-6); });
  EXPECT_EQ(v.subsystem(), "negf");
  EXPECT_EQ(v.invariant(), "finite-chain");
}

TEST(Contracts, NonPositiveBroadeningNamesNegf) {
  negf::ScalarChain chain;
  chain.onsite = {0.0, 0.0};
  chain.hopping = {-2.7};
  chain.gamma_left = chain.gamma_right = 0.05;

  const ContractViolation v =
      capture_violation([&] { negf::scalar_rgf_solve(chain, 0.0, 0.0); });
  EXPECT_EQ(v.subsystem(), "negf");
  EXPECT_EQ(v.invariant(), "positive-broadening");
}

// --- gnr ----------------------------------------------------------------

TEST(Contracts, NanOnsiteEnergyNamesGnr) {
  const gnr::Lattice lat = gnr::Lattice::armchair(9, 4, 0.0);
  std::vector<double> onsite(lat.atoms().size(), 0.0);
  onsite[onsite.size() / 2] = kNan;

  const ContractViolation v =
      capture_violation([&] { gnr::build_hamiltonian(lat, {}, onsite); });
  EXPECT_EQ(v.subsystem(), "gnr");
  EXPECT_EQ(v.invariant(), "finite-onsite");
}

// --- poisson ------------------------------------------------------------

TEST(Contracts, NanChargeNamesPoisson) {
  poisson::GridSpec g;
  g.nx = g.ny = g.nz = 4;
  g.dx = g.dy = g.dz = 0.5;
  poisson::Domain d(g);
  d.add_electrode({0.0, 1.5, 0.0, 1.5, 0.0, 0.0});  // z = 0 face
  const poisson::Assembly assembly(d);
  std::vector<double> rho(g.num_nodes(), 0.0);
  rho[7] = kNan;

  const ContractViolation v =
      capture_violation([&] { poisson::solve_linear_poisson(assembly, {0.0}, rho); });
  EXPECT_EQ(v.subsystem(), "poisson");
  EXPECT_EQ(v.invariant(), "finite-charge");
}

TEST(Contracts, NanPopulationNamesPoissonInNonlinearSolve) {
  poisson::GridSpec g;
  g.nx = g.ny = g.nz = 4;
  g.dx = g.dy = g.dz = 0.5;
  poisson::Domain d(g);
  d.add_electrode({0.0, 1.5, 0.0, 1.5, 0.0, 0.0});  // z = 0 face
  const poisson::Assembly assembly(d);
  const size_t n = g.num_nodes();
  std::vector<double> n0(n, 0.0), p0(n, 0.0), fixed(n, 0.0), ref(n, 0.0), init(n, 0.0);
  n0[3] = kNan;

  const ContractViolation v = capture_violation(
      [&] { poisson::solve_nonlinear_poisson(assembly, {0.0}, n0, p0, fixed, ref, init); });
  EXPECT_EQ(v.subsystem(), "poisson");
  EXPECT_EQ(v.invariant(), "finite-charge");
}

// --- circuit ------------------------------------------------------------

TEST(Contracts, ZeroTimestepNamesCircuit) {
  circuit::Circuit ckt;
  const circuit::NodeId a = ckt.new_node("a");
  ckt.add(std::make_unique<circuit::VoltageSource>(a, circuit::kGround, 1.0));
  circuit::TransientOptions opts;
  opts.dt = 0.0;

  const ContractViolation v = capture_violation([&] { circuit::run_transient(ckt, opts); });
  EXPECT_EQ(v.subsystem(), "circuit");
  EXPECT_EQ(v.invariant(), "positive-timestep");
}

TEST(Contracts, DegenerateVoltageSourceNamesCircuitStructuralRank) {
  // Both terminals on ground: the source's branch row stamps nothing, so
  // the MNA system is structurally singular in that row.
  circuit::Circuit ckt;
  const circuit::NodeId a = ckt.new_node("a");
  ckt.add(std::make_unique<circuit::Resistor>(a, circuit::kGround, 1e3));
  ckt.add(std::make_unique<circuit::VoltageSource>(circuit::kGround, circuit::kGround, 1.0));

  const ContractViolation v = capture_violation([&] { circuit::solve_dc(ckt); });
  EXPECT_EQ(v.subsystem(), "circuit");
  EXPECT_EQ(v.invariant(), "structural-rank");
}

TEST(Contracts, ZeroOhmResistorNamesCircuitFiniteStamp) {
  circuit::Circuit ckt;
  const circuit::NodeId a = ckt.new_node("a");
  ckt.add(std::make_unique<circuit::VoltageSource>(a, circuit::kGround, 1.0));
  const circuit::NodeId b = ckt.new_node("b");
  ckt.add(std::make_unique<circuit::Resistor>(a, b, 0.0));  // 1/R = inf
  ckt.add(std::make_unique<circuit::Resistor>(b, circuit::kGround, 1e3));

  const ContractViolation v = capture_violation([&] { circuit::solve_dc(ckt); });
  EXPECT_EQ(v.subsystem(), "circuit");
  EXPECT_EQ(v.invariant(), "finite-stamp");
}

// --- device tables ------------------------------------------------------

device::DeviceTable tiny_table() {
  device::DeviceTable t;
  t.vg = {0.0, 0.25, 0.5};
  t.vd = {0.0, 0.5};
  t.current_A.assign(t.vg.size() * t.vd.size(), 1e-6);
  t.charge_C.assign(t.vg.size() * t.vd.size(), 1e-18);
  t.band_gap_eV = 0.7;
  return t;
}

/// Round-trips `t` through save_table/load_table; load_table runs the
/// table validation contract against the corrupted payload.
void save_and_load(const device::DeviceTable& t, const std::string& name) {
  const std::string path = "contracts_" + name + ".csv";
  device::save_table(t, path, "corrupted-table-test");
  struct Cleanup {
    std::string path;
    ~Cleanup() { std::remove(path.c_str()); }
  } cleanup{path};
  device::load_table(path);
}

TEST(Contracts, NanTableCurrentNamesDevice) {
  device::DeviceTable t = tiny_table();
  t.current_A[2] = kNan;
  const ContractViolation v = capture_violation([&] { save_and_load(t, "nan_current"); });
  EXPECT_EQ(v.subsystem(), "device/tablegen");
  EXPECT_EQ(v.invariant(), "finite-table");
}

TEST(Contracts, NonMonotoneBiasAxisNamesDevice) {
  device::DeviceTable t = tiny_table();
  t.vg = {0.0, 0.5, 0.25};  // not ascending
  const ContractViolation v = capture_violation([&] { save_and_load(t, "bad_axis"); });
  EXPECT_EQ(v.subsystem(), "device/tablegen");
  EXPECT_EQ(v.invariant(), "monotone-bias-axes");
}

// --- model --------------------------------------------------------------

TEST(Contracts, NanInterpolationTableNamesModel) {
  std::vector<double> values(9, 1.0);
  values[4] = kNan;
  const ContractViolation v = capture_violation([&] {
    model::Table2D({0.0, 1.0, 2.0}, {0.0, 1.0, 2.0}, values);
  });
  EXPECT_EQ(v.subsystem(), "model");
  EXPECT_EQ(v.invariant(), "finite-table");
}

#else  // !GNRFET_CHECKS_ENABLED

TEST(Contracts, DisabledChecksNeverEvaluateTheirOperands) {
  bool evaluated = false;
  auto touch = [&] {
    evaluated = true;
    return false;
  };
  GNRFET_REQUIRE("common", "disabled", touch(), "must not run");
  EXPECT_FALSE(evaluated);
}

#endif  // GNRFET_CHECKS_ENABLED

}  // namespace
