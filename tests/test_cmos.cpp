#include <gtest/gtest.h>

#include <cmath>

#include "circuit/measure.hpp"
#include "circuit/snm.hpp"
#include "cmos/nodes.hpp"

namespace {

using namespace gnrfet;
using cmos::CmosParams;

CmosParams base_params() {
  CmosParams p;
  p.width_um = 1.0;
  p.vth_V = 0.3;
  p.k_A_per_um = 1e-3;
  return p;
}

TEST(CmosFet, CutoffAndSaturationRegimes) {
  const cmos::CmosFet fet(base_params());
  const double i_off = fet.current(0.0, 0.8).value;
  const double i_on = fet.current(0.8, 0.8).value;
  EXPECT_GT(i_on, 1e-4);          // hundreds of uA/um on
  EXPECT_LT(i_off, 1e-6);         // leakage orders below
  EXPECT_GT(i_on / i_off, 1e3);
}

TEST(CmosFet, SubthresholdSlopeIsReasonable) {
  const cmos::CmosFet fet(base_params());
  const double i1 = fet.current(0.10, 0.8).value;
  const double i2 = fet.current(0.20, 0.8).value;
  const double ss_mV_per_dec = 100.0 / std::log10(i2 / i1);
  EXPECT_GT(ss_mV_per_dec, 60.0);   // thermionic limit
  EXPECT_LT(ss_mV_per_dec, 130.0);  // realistic short-channel value
}

TEST(CmosFet, CurrentMonotoneInBias) {
  const cmos::CmosFet fet(base_params());
  double prev = 0.0;
  for (double vgs = 0.0; vgs <= 0.8; vgs += 0.1) {
    const double i = fet.current(vgs, 0.5).value;
    EXPECT_GE(i, prev);
    prev = i;
  }
  prev = -1.0;
  for (double vds = 0.0; vds <= 0.8; vds += 0.1) {
    const double i = fet.current(0.6, vds).value;
    EXPECT_GE(i, prev);
    prev = i;
  }
}

TEST(CmosFet, PTypeMirror) {
  CmosParams pn = base_params();
  CmosParams pp = base_params();
  pp.polarity = model::Polarity::kP;
  const cmos::CmosFet n(pn), p(pp);
  EXPECT_NEAR(p.current(-0.6, -0.5).value, -n.current(0.6, 0.5).value, 1e-15);
}

TEST(CmosFet, NegativeVdsAntisymmetry) {
  const cmos::CmosFet fet(base_params());
  EXPECT_NEAR(fet.current(0.6, -0.4).value, -fet.current(0.6 + 0.4, 0.4).value, 1e-12);
  EXPECT_NEAR(fet.current(0.6, 0.0).value, 0.0, 1e-9);
}

TEST(CmosNodes, InverterVtcAndSnm) {
  const circuit::InverterModels inv = cmos::make_cmos_inverter(cmos::Node::k22nm);
  const circuit::Vtc vtc = circuit::compute_vtc(inv, 0.8);
  EXPECT_GT(vtc.vout.front(), 0.75);
  EXPECT_LT(vtc.vout.back(), 0.05);
  const double snm = circuit::butterfly_snm(vtc, vtc);
  // Paper Table 1: ~0.3 V at 0.8 V supply.
  EXPECT_GT(snm, 0.2);
  EXPECT_LT(snm, 0.4);
}

TEST(CmosNodes, FrequencyOrderingAcrossNodes) {
  circuit::RingMeasureOptions opts;
  opts.vdd = 0.8;
  opts.t_stop_s = 3e-9;
  opts.dt_s = 1e-12;
  double prev = 1e300;
  for (const auto node : {cmos::Node::k22nm, cmos::Node::k32nm, cmos::Node::k45nm}) {
    const circuit::InverterModels inv = cmos::make_cmos_inverter(node);
    const circuit::RingMetrics m =
        circuit::measure_ring_oscillator(std::vector<circuit::InverterModels>(15, inv), inv,
                                         opts);
    ASSERT_TRUE(m.ok) << cmos::node_name(node);
    EXPECT_LT(m.frequency_Hz, prev) << cmos::node_name(node);
    EXPECT_GT(m.frequency_Hz, 0.5e9);
    prev = m.frequency_Hz;
  }
}

}  // namespace
