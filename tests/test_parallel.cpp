#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "device/tablegen.hpp"
#include "explore/montecarlo.hpp"
#include "gnr/bandstructure.hpp"
#include "negf/transport.hpp"
#include "synthetic_device.hpp"

namespace {

using namespace gnrfet;

/// Scoped thread-count override restoring the previous value on exit.
struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) : old_(par::thread_count()) { par::set_thread_count(n); }
  ~ThreadCountGuard() { par::set_thread_count(old_); }
  int old_;
};

TEST(Parallel, CoversEveryIndexExactlyOnceUnderOversubscription) {
  // Far more threads than this host has cores: scheduling is maximally
  // adversarial, coverage must still be exact.
  ThreadCountGuard guard(16);
  const size_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  par::parallel_for(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, ChunkLayoutIndependentOfThreadCount) {
  EXPECT_EQ(par::num_chunks(0, 8), 0u);
  EXPECT_EQ(par::num_chunks(1, 8), 1u);
  EXPECT_EQ(par::num_chunks(16, 8), 2u);
  EXPECT_EQ(par::num_chunks(17, 8), 3u);
  for (int threads : {1, 3, 16}) {
    ThreadCountGuard guard(threads);
    std::vector<std::pair<size_t, size_t>> bounds(par::num_chunks(100, 7));
    par::parallel_for_chunks(100, 7, [&](size_t chunk, size_t begin, size_t end) {
      bounds[chunk] = {begin, end};
    });
    for (size_t c = 0; c < bounds.size(); ++c) {
      EXPECT_EQ(bounds[c].first, c * 7);
      EXPECT_EQ(bounds[c].second, std::min<size_t>(100, (c + 1) * 7));
    }
  }
}

TEST(Parallel, OrderedReductionBitIdenticalAcrossThreadCounts) {
  // A sum whose value depends on the fold order at the last bit; the
  // ordered reduction must produce the same bits for every thread count.
  const size_t n = 5000;
  const auto run = [&] {
    return par::parallel_reduce_ordered<double>(
        n, 16, 0.0,
        [](size_t begin, size_t end) {
          double s = 0.0;
          for (size_t i = begin; i < end; ++i) {
            s += std::sin(0.1 * static_cast<double>(i)) * 1e-3 + 1e8;
          }
          return s;
        },
        [](double& acc, double part) { acc += part; });
  };
  ThreadCountGuard g1(1);
  const double serial = run();
  for (int threads : {2, 4, 16}) {
    ThreadCountGuard g(threads);
    EXPECT_EQ(serial, run()) << threads << " threads";
  }
}

TEST(Parallel, NestedRegionsRunInlineWithoutDeadlock) {
  ThreadCountGuard guard(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  par::parallel_for(8, [&](size_t outer) {
    par::parallel_for(8, [&](size_t inner) { hits[outer * 8 + inner].fetch_add(1); });
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, CallerNestedRegionUnderSharedLockDoesNotDeadlock) {
  // Regression: every participant — including the top-level caller — takes
  // a shared lock and opens a nested region while holding it. The nested
  // region must run inline on the holder; if the caller's nested region
  // re-entered the pool instead, it would wait for workers that are
  // blocked on the lock the caller holds (permanent hang). This is the
  // shape of a cold-cache Monte Carlo sample generating a device table
  // under the DesignKit mutex.
  ThreadCountGuard guard(4);
  std::mutex mu;
  std::atomic<int> total{0};
  par::parallel_for(16, [&](size_t) {
    std::lock_guard<std::mutex> lk(mu);
    par::parallel_for(4, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(Parallel, ConcurrentTopLevelRegionsFromTwoThreadsComplete) {
  // Two non-worker threads open top-level regions at once; one wins the
  // pool, the other must fall back to inline execution — both regions
  // still cover every index exactly once.
  ThreadCountGuard guard(4);
  std::vector<std::atomic<int>> hits(2000);
  for (auto& h : hits) h.store(0);
  std::thread other(
      [&] { par::parallel_for(1000, [&](size_t i) { hits[i].fetch_add(1); }); });
  par::parallel_for(1000, [&](size_t i) { hits[1000 + i].fetch_add(1); });
  other.join();
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, FirstExceptionPropagatesToCaller) {
  ThreadCountGuard guard(4);
  EXPECT_THROW(par::parallel_for(100,
                                 [](size_t i) {
                                   if (i == 37) throw std::runtime_error("chunk failure");
                                 }),
               std::runtime_error);
}

negf::TransportSolution solve_reference_device() {
  const auto modes = gnr::build_mode_set(12, {2.7, 0.12}, 3);
  const size_t ncol = 30;
  std::vector<std::vector<double>> u(ncol, std::vector<double>(12, -0.3));
  for (size_t c = 0; c < ncol; ++c) {
    const double x = static_cast<double>(c) / static_cast<double>(ncol - 1);
    for (size_t j = 0; j < 12; ++j) u[c][j] = -0.3 - 0.4 * x;
  }
  negf::TransportOptions opt;
  opt.mu_drain_eV = -0.4;
  opt.energy_step_eV = 2e-3;
  return negf::solve_mode_space(modes, u, opt);
}

TEST(ParallelDeterminism, ModeSpaceSolveBitIdentical1v4Threads) {
  ThreadCountGuard g1(1);
  const auto serial = solve_reference_device();
  ThreadCountGuard g4(4);
  const auto threaded = solve_reference_device();

  EXPECT_EQ(serial.current_A, threaded.current_A);
  EXPECT_EQ(serial.total_net_electrons, threaded.total_net_electrons);
  ASSERT_EQ(serial.transmission.size(), threaded.transmission.size());
  for (size_t ie = 0; ie < serial.transmission.size(); ++ie) {
    ASSERT_EQ(serial.transmission[ie], threaded.transmission[ie]) << "ie=" << ie;
  }
  ASSERT_EQ(serial.electrons.size(), threaded.electrons.size());
  for (size_t c = 0; c < serial.electrons.size(); ++c) {
    for (size_t j = 0; j < serial.electrons[c].size(); ++j) {
      ASSERT_EQ(serial.electrons[c][j], threaded.electrons[c][j]);
      ASSERT_EQ(serial.holes[c][j], threaded.holes[c][j]);
    }
  }
}

device::DeviceTable generate_tiny_table() {
  device::DeviceSpec spec;
  spec.channel_length_nm = 6.0;
  spec.grid_step_nm = 0.35;
  spec.lateral_margin_nm = 2.0;
  spec.num_modes = 2;
  device::TableGenOptions opts;
  opts.vg_points = 3;
  opts.vd_points = 3;
  opts.vg_max = 0.5;
  opts.vd_max = 0.5;
  opts.solve.energy_step_eV = 5e-3;
  opts.solve.gummel_tolerance_V = 3e-3;
  opts.use_cache = false;
  return device::generate_device_table(spec, opts);
}

TEST(ParallelDeterminism, DeviceTableBitIdentical1v4Threads) {
  ThreadCountGuard g1(1);
  const device::DeviceTable serial = generate_tiny_table();
  ThreadCountGuard g4(4);
  const device::DeviceTable threaded = generate_tiny_table();

  ASSERT_EQ(serial.current_A.size(), threaded.current_A.size());
  for (size_t i = 0; i < serial.current_A.size(); ++i) {
    ASSERT_EQ(serial.current_A[i], threaded.current_A[i]) << "row " << i;
    ASSERT_EQ(serial.charge_C[i], threaded.charge_C[i]) << "row " << i;
  }
}

/// DesignKit on synthetic tables: the Monte Carlo draws variants with
/// N in {9, 12, 15} x q in {-1, 0, +1}; cover all nine (the particle-hole
/// mirror only flips q, which the set spans) so no NEGF generation runs.
void fill_synthetic_tables(explore::DesignKit& kit) {
  for (int n : {9, 12, 15}) {
    for (int q : {-1, 0, 1}) {
      device::DeviceTable t = synthetic::synthetic_table();
      // Make variants distinguishable: width scales current, an impurity
      // skews it, so scheduling mix-ups would change the statistics.
      const double scale = (n / 12.0) * (1.0 + 0.07 * q);
      for (auto& c : t.current_A) c *= scale;
      kit.set_table({n, static_cast<double>(q)}, std::move(t));
    }
  }
}

explore::MonteCarloResult run_tiny_mc() {
  explore::DesignKit kit;
  fill_synthetic_tables(kit);
  explore::MonteCarloOptions opts;
  opts.samples = 6;
  opts.vdd = 0.4;
  opts.vt = 0.13;
  opts.ring.t_stop_s = 0.4e-9;
  opts.ring.dt_s = 1e-12;
  return explore::run_ring_monte_carlo(kit, opts);
}

TEST(ParallelDeterminism, MonteCarloStatisticsInvariantToThreadCount) {
  ThreadCountGuard g1(1);
  const auto serial = run_tiny_mc();
  ThreadCountGuard g4(4);
  const auto threaded = run_tiny_mc();

  ASSERT_EQ(serial.samples.size(), threaded.samples.size());
  for (size_t s = 0; s < serial.samples.size(); ++s) {
    EXPECT_EQ(serial.samples[s].ok, threaded.samples[s].ok) << "sample " << s;
    EXPECT_EQ(serial.samples[s].frequency_Hz, threaded.samples[s].frequency_Hz);
    EXPECT_EQ(serial.samples[s].static_power_W, threaded.samples[s].static_power_W);
    EXPECT_EQ(serial.samples[s].dynamic_power_W, threaded.samples[s].dynamic_power_W);
  }
  EXPECT_EQ(serial.mean_frequency_Hz, threaded.mean_frequency_Hz);
  EXPECT_EQ(serial.mean_static_power_W, threaded.mean_static_power_W);
  EXPECT_EQ(serial.mean_dynamic_power_W, threaded.mean_dynamic_power_W);
}

}  // namespace
