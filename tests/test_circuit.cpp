#include <gtest/gtest.h>

#include <cmath>

#include "circuit/measure.hpp"
#include "circuit/snm.hpp"
#include "synthetic_device.hpp"

namespace {

using namespace gnrfet;
using namespace gnrfet::circuit;
using model::Polarity;

InverterModels synthetic_inverter(double offset = 0.12) {
  const auto par = model::Parasitics::from_per_width(0.05, 40.0);
  InverterModels m;
  m.nfet = model::make_extrinsic(
      model::ArrayFet::uniform(synthetic::synthetic_fet(Polarity::kN, offset), 4), par);
  m.pfet = model::make_extrinsic(
      model::ArrayFet::uniform(synthetic::synthetic_fet(Polarity::kP, offset), 4), par);
  return m;
}

TEST(Dc, ResistorDivider) {
  Circuit ckt;
  const NodeId a = ckt.new_node();
  const NodeId b = ckt.new_node();
  ckt.add(std::make_unique<VoltageSource>(a, kGround, 1.0));
  ckt.add(std::make_unique<Resistor>(a, b, 1000.0));
  ckt.add(std::make_unique<Resistor>(b, kGround, 3000.0));
  const DcResult dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.x[static_cast<size_t>(ckt.unknown_of_node(b))], 0.75, 1e-9);
}

TEST(Dc, VoltageSourceBranchCurrentSign) {
  Circuit ckt;
  const NodeId a = ckt.new_node();
  auto src = std::make_unique<VoltageSource>(a, kGround, 2.0);
  const size_t branch = src->branch();
  ckt.add(std::move(src));
  ckt.add(std::make_unique<Resistor>(a, kGround, 1000.0));
  const DcResult dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  // Load draws 2 mA from the supply: branch current (p->m through the
  // source) is -2 mA, so delivered power is -V*i = +4 mW.
  EXPECT_NEAR(dc.x[ckt.unknown_of_branch(branch)], -2e-3, 1e-9);
}

TEST(Transient, RcStepResponseMatchesAnalytic) {
  Circuit ckt;
  const NodeId in = ckt.new_node();
  const NodeId out = ckt.new_node();
  const double r = 10e3, c = 1e-15;  // tau = 10 ps
  ckt.add(std::make_unique<VoltageSource>(in, kGround, pulse_waveform(0.0, 1.0, 5e-12, 1e-15)));
  ckt.add(std::make_unique<Resistor>(in, out, r));
  ckt.add(std::make_unique<Capacitor>(out, kGround, c));
  TransientOptions opts;
  opts.t_stop = 60e-12;
  opts.dt = 0.05e-12;
  const TransientResult tr = run_transient(ckt, opts);
  ASSERT_TRUE(tr.ok);
  const auto v = tr.waves.node(ckt, out);
  for (size_t i = 0; i < tr.waves.time.size(); i += 100) {
    const double t = tr.waves.time[i] - 5e-12;
    const double expected = t <= 0 ? 0.0 : 1.0 - std::exp(-t / (r * c));
    EXPECT_NEAR(v[i], expected, 0.01) << "t=" << tr.waves.time[i];
  }
}

TEST(Transient, CapacitorBlocksDc) {
  Circuit ckt;
  const NodeId a = ckt.new_node();
  const NodeId b = ckt.new_node();
  ckt.add(std::make_unique<VoltageSource>(a, kGround, 1.0));
  ckt.add(std::make_unique<Resistor>(a, b, 1e3));
  ckt.add(std::make_unique<Capacitor>(b, kGround, 1e-15));
  TransientOptions opts;
  opts.t_stop = 50e-12;
  opts.dt = 0.5e-12;
  const TransientResult tr = run_transient(ckt, opts);
  ASSERT_TRUE(tr.ok);
  // Started from DC: the capacitor is already charged, nothing moves.
  const auto v = tr.waves.node(ckt, b);
  EXPECT_NEAR(v.back(), 1.0, 1e-6);
}

TEST(Vtc, InverterIsMonotoneAndRailToRail) {
  const InverterModels inv = synthetic_inverter();
  const Vtc vtc = compute_vtc(inv, 0.4);
  EXPECT_GT(vtc.vout.front(), 0.9 * 0.4);
  EXPECT_LT(vtc.vout.back(), 0.1 * 0.4);
  for (size_t i = 1; i < vtc.vout.size(); ++i) {
    // Allow a small ambipolar ripple: the off device weakens as vin rises.
    EXPECT_LE(vtc.vout[i], vtc.vout[i - 1] + 2.5e-3);
  }
}

TEST(Vtc, SymmetricInverterSwitchesAtMidRail) {
  const InverterModels inv = synthetic_inverter();
  const Vtc vtc = compute_vtc(inv, 0.4);
  // Find the input where vout crosses VDD/2.
  double v_switch = 0.0;
  for (size_t i = 1; i < vtc.vin.size(); ++i) {
    if (vtc.vout[i - 1] >= 0.2 && vtc.vout[i] < 0.2) {
      v_switch = 0.5 * (vtc.vin[i - 1] + vtc.vin[i]);
      break;
    }
  }
  EXPECT_NEAR(v_switch, 0.2, 0.03);
}

TEST(Snm, SymmetricButterflyLobesAreEqual) {
  const InverterModels inv = synthetic_inverter();
  const Vtc vtc = compute_vtc(inv, 0.4);
  const double l1 = butterfly_lobe(vtc, vtc);
  const Vtc ivt = invert_vtc(vtc);
  const double l2 = butterfly_lobe(ivt, ivt);
  EXPECT_GT(l1, 0.02);
  EXPECT_NEAR(l1, l2, 0.01);
  EXPECT_NEAR(butterfly_snm(vtc, vtc), std::min(l1, l2), 1e-9);
}

TEST(Snm, DegradedInverterReducesSnm) {
  const InverterModels good = synthetic_inverter(0.12);
  // Skewed pair: weak offset mismatches the VTC switching point.
  InverterModels skewed = good;
  const auto par = model::Parasitics::from_per_width(0.05, 40.0);
  skewed.nfet = model::make_extrinsic(
      model::ArrayFet::uniform(synthetic::synthetic_fet(Polarity::kN, 0.3), 4), par);
  const Vtc a = compute_vtc(good, 0.4);
  const Vtc b = compute_vtc(skewed, 0.4);
  EXPECT_LT(butterfly_snm(b, b), butterfly_snm(a, a));
}

TEST(Measure, CrossingTimesAndFrequency) {
  std::vector<double> t, v;
  const double f = 2e9;
  for (int i = 0; i <= 2000; ++i) {
    t.push_back(i * 1e-12);
    v.push_back(0.5 + 0.4 * std::sin(2 * M_PI * f * t.back()));
  }
  const auto rises = crossing_times(t, v, 0.5, true);
  EXPECT_GE(rises.size(), 3u);
  EXPECT_NEAR(oscillation_frequency(t, v, 0.5), f, 0.02 * f);
}

TEST(Measure, InverterMetricsAreSane) {
  const InverterModels inv = synthetic_inverter();
  InverterMeasureOptions opts;
  opts.vdd = 0.4;
  opts.probe_period_s = 120e-12;
  opts.dt_s = 0.1e-12;
  const InverterMetrics m = measure_inverter(inv, inv, opts);
  ASSERT_TRUE(m.ok);
  EXPECT_GT(m.delay_s, 0.1e-12);
  EXPECT_LT(m.delay_s, 40e-12);
  EXPECT_GT(m.dynamic_power_W, 0.0);
  EXPECT_GT(m.static_power_W, 0.0);
  EXPECT_GT(m.snm_V, 0.02);
}

TEST(Measure, RingOscillatorOscillates) {
  const InverterModels inv = synthetic_inverter();
  RingMeasureOptions opts;
  opts.vdd = 0.4;
  opts.t_stop_s = 1.0e-9;
  opts.dt_s = 0.5e-12;
  const RingMetrics m =
      measure_ring_oscillator(std::vector<InverterModels>(15, inv), inv, opts);
  ASSERT_TRUE(m.ok);
  EXPECT_GT(m.frequency_Hz, 0.5e9);
  EXPECT_LT(m.frequency_Hz, 100e9);
  EXPECT_GT(m.total_power_W, m.static_power_W);
  EXPECT_GT(m.edp_Js, 0.0);
}

TEST(Latch, IsBistable) {
  const InverterModels inv = synthetic_inverter();
  Latch latch = build_latch(inv, inv, 0.4);
  // Seed Newton at the two states.
  std::vector<double> seed_a(latch.ckt.num_unknowns(), 0.0);
  seed_a[static_cast<size_t>(latch.ckt.unknown_of_node(latch.vdd_node))] = 0.4;
  std::vector<double> seed_b = seed_a;
  seed_a[static_cast<size_t>(latch.ckt.unknown_of_node(latch.q))] = 0.4;
  seed_b[static_cast<size_t>(latch.ckt.unknown_of_node(latch.qb))] = 0.4;
  const DcResult a = solve_dc(latch.ckt, seed_a);
  const DcResult b = solve_dc(latch.ckt, seed_b);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  // Two distinct stable states near the rails (which seed lands on which
  // state is solver-dependent; bistability is what matters).
  const double qa = a.x[static_cast<size_t>(latch.ckt.unknown_of_node(latch.q))];
  const double qb = b.x[static_cast<size_t>(latch.ckt.unknown_of_node(latch.q))];
  EXPECT_GT(std::abs(qa - qb), 0.25);
  EXPECT_GT(std::max(qa, qb), 0.3);
  EXPECT_LT(std::min(qa, qb), 0.1);
}

TEST(Elements, GateLoadCapacitanceIsPositive) {
  const InverterModels inv = synthetic_inverter();
  Circuit ckt;
  const NodeId n = ckt.new_node();
  InverterGateLoad load(inv.nfet, inv.pfet, n, 0.4);
  for (double v : {0.0, 0.2, 0.4}) {
    EXPECT_GT(load.capacitance(v), 1e-19);
    EXPECT_LT(load.capacitance(v), 1e-15);
  }
}

}  // namespace
