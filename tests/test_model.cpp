#include <gtest/gtest.h>

#include <cmath>

#include "model/array_fet.hpp"
#include "model/extrinsic_fet.hpp"
#include "model/table2d.hpp"
#include "synthetic_device.hpp"

namespace {

using namespace gnrfet;
using model::Polarity;
using model::Table2D;

TEST(Table2D, ReproducesBilinearFunctionExactly) {
  // Catmull-Rom reproduces polynomials up to cubic along each axis.
  std::vector<double> xs, ys, v;
  for (int i = 0; i < 9; ++i) xs.push_back(0.1 * i);
  for (int j = 0; j < 7; ++j) ys.push_back(0.2 * j);
  for (double x : xs) {
    for (double y : ys) v.push_back(2.0 + 3.0 * x - 1.5 * y + 0.7 * x * y);
  }
  const Table2D t(xs, ys, v);
  const auto s = t.sample(0.33, 0.71);
  EXPECT_NEAR(s.value, 2.0 + 3.0 * 0.33 - 1.5 * 0.71 + 0.7 * 0.33 * 0.71, 1e-10);
  EXPECT_NEAR(s.d_dx, 3.0 + 0.7 * 0.71, 1e-8);
  EXPECT_NEAR(s.d_dy, -1.5 + 0.7 * 0.33, 1e-8);
}

TEST(Table2D, DerivativesMatchFiniteDifferences) {
  std::vector<double> xs, ys, v;
  for (int i = 0; i < 11; ++i) xs.push_back(0.1 * i);
  for (int j = 0; j < 11; ++j) ys.push_back(0.1 * j);
  for (double x : xs) {
    for (double y : ys) v.push_back(std::sin(3 * x) * std::cos(2 * y));
  }
  const Table2D t(xs, ys, v);
  const double h = 1e-6;
  for (double x : {0.23, 0.55, 0.81}) {
    for (double y : {0.18, 0.64}) {
      const auto s = t.sample(x, y);
      const double fd_x = (t.value(x + h, y) - t.value(x - h, y)) / (2 * h);
      const double fd_y = (t.value(x, y + h) - t.value(x, y - h)) / (2 * h);
      EXPECT_NEAR(s.d_dx, fd_x, 1e-5);
      EXPECT_NEAR(s.d_dy, fd_y, 1e-5);
    }
  }
}

TEST(Table2D, LinearExtrapolationOutsideDomain) {
  std::vector<double> xs = {0.0, 0.5, 1.0};
  std::vector<double> ys = {0.0, 1.0};
  std::vector<double> v = {0.0, 0.0, 1.0, 1.0, 2.0, 2.0};  // v = 2x
  const Table2D t(xs, ys, v);
  EXPECT_NEAR(t.value(1.5, 0.5), 3.0, 1e-9);
  EXPECT_NEAR(t.value(-0.5, 0.5), -1.0, 1e-9);
}

TEST(Table2D, RejectsNonUniformAxis) {
  EXPECT_THROW(Table2D({0.0, 0.1, 0.5}, {0.0, 1.0}, std::vector<double>(6, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(Table2D({0.0, 0.1}, {0.0, 0.1}, std::vector<double>(3, 0.0)),
               std::invalid_argument);
}

TEST(IntrinsicFet, PTypeIsParticleHoleMirror) {
  const auto n = synthetic::synthetic_fet(Polarity::kN, 0.05);
  const auto p = synthetic::synthetic_fet(Polarity::kP, 0.05);
  for (double vgs : {0.1, 0.3, 0.5}) {
    for (double vds : {0.1, 0.4}) {
      EXPECT_NEAR(p.current(-vgs, -vds).value, -n.current(vgs, vds).value, 1e-18);
      EXPECT_NEAR(p.charge(-vgs, -vds).value, -n.charge(vgs, vds).value, 1e-24);
    }
  }
}

TEST(IntrinsicFet, CurrentContinuousAcrossVdsZero) {
  const auto n = synthetic::synthetic_fet(Polarity::kN);
  for (double vgs : {0.0, 0.2, 0.45}) {
    const double below = n.current(vgs, -1e-6).value;
    const double above = n.current(vgs, 1e-6).value;
    EXPECT_NEAR(below, above, 1e-9);
    EXPECT_NEAR(n.current(vgs, 0.0).value, 0.0, 1e-7);
  }
}

TEST(IntrinsicFet, SwapAntisymmetryForCurrent) {
  const auto n = synthetic::synthetic_fet(Polarity::kN);
  // I(vgs, -v) = -I(vgd, v) with vgd = vgs - vds = vgs + v (device
  // symmetry under source/drain exchange).
  for (double vgs : {0.1, 0.35}) {
    for (double v : {0.2, 0.5}) {
      EXPECT_NEAR(n.current(vgs, -v).value, -n.current(vgs + v, v).value, 1e-18);
    }
  }
}

TEST(IntrinsicFet, OffsetShiftsGateAxis) {
  const auto a = synthetic::synthetic_fet(Polarity::kN, 0.0);
  const auto b = synthetic::synthetic_fet(Polarity::kN, 0.15);
  EXPECT_NEAR(b.current(0.3, 0.4).value, a.current(0.45, 0.4).value, 1e-18);
}

TEST(IntrinsicFet, DerivativesMatchFiniteDifferences) {
  const auto n = synthetic::synthetic_fet(Polarity::kN, 0.1);
  const double h = 1e-6;
  for (double vgs : {0.15, 0.4}) {
    for (double vds : {0.12, 0.33}) {
      const auto s = n.current(vgs, vds);
      const double fd_g = (n.current(vgs + h, vds).value - n.current(vgs - h, vds).value) / (2 * h);
      const double fd_d = (n.current(vgs, vds + h).value - n.current(vgs, vds - h).value) / (2 * h);
      EXPECT_NEAR(s.d_dvgs, fd_g, 1e-7 + 1e-4 * std::abs(fd_g));
      EXPECT_NEAR(s.d_dvds, fd_d, 1e-7 + 1e-4 * std::abs(fd_d));
    }
  }
}

TEST(ArrayFet, UniformArrayScalesCurrent) {
  const auto one = synthetic::synthetic_fet(Polarity::kN);
  const auto four = model::ArrayFet::uniform(one, 4);
  EXPECT_NEAR(four.current(0.4, 0.4).value, 4.0 * one.current(0.4, 0.4).value, 1e-18);
  EXPECT_NEAR(four.charge(0.4, 0.4).value, 4.0 * one.charge(0.4, 0.4).value, 1e-24);
}

TEST(ArrayFet, VariantMixing) {
  const auto nom = synthetic::synthetic_fet(Polarity::kN, 0.0);
  const auto var = synthetic::synthetic_fet(Polarity::kN, 0.2);  // stronger device
  const auto mixed = model::ArrayFet::with_variants(nom, var, 4, 1);
  const double expected = 3.0 * nom.current(0.4, 0.4).value + var.current(0.4, 0.4).value;
  EXPECT_NEAR(mixed.current(0.4, 0.4).value, expected, 1e-18);
  EXPECT_THROW(model::ArrayFet::with_variants(nom, var, 4, 5), std::invalid_argument);
}

TEST(ArrayFet, RejectsMixedPolarity) {
  std::vector<model::IntrinsicFet> chans = {synthetic::synthetic_fet(Polarity::kN),
                                            synthetic::synthetic_fet(Polarity::kP)};
  EXPECT_THROW(model::ArrayFet a(std::move(chans)), std::invalid_argument);
}

TEST(Parasitics, FromPerWidth) {
  const auto p = model::Parasitics::from_per_width(0.1, 40.0);
  EXPECT_NEAR(p.cgs_e_F, 4e-18, 1e-24);
  EXPECT_NEAR(p.cgd_e_F, 4e-18, 1e-24);
}

}  // namespace
