#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/env.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "poisson/assembly.hpp"
#include "poisson/grid.hpp"
#include "poisson/nonlinear.hpp"
#include "poisson/solver.hpp"

namespace {

using namespace gnrfet;
using linalg::PreconditionerKind;

/// FNV-1a over the raw double bytes: any single-bit difference anywhere in
/// the field changes the hash, which is exactly the bit-compat contract.
uint64_t fnv1a(const std::vector<double>& v) {
  uint64_t h = 1469598103934665603ull;
  for (const double d : v) {
    unsigned char b[sizeof(double)];
    std::memcpy(b, &d, sizeof(double));
    for (const unsigned char c : b) {
      h ^= c;
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// Scoped GNRFET_POISSON_PC override that restores the prior state, so the
/// single-process `ctest -L fast` run sees no cross-test pollution.
class PcEnvGuard {
 public:
  explicit PcEnvGuard(const char* value) : was_set_(common::env_set("GNRFET_POISSON_PC")) {
    if (was_set_) previous_ = common::env_or("GNRFET_POISSON_PC", "");
    if (value) {
      ::setenv("GNRFET_POISSON_PC", value, 1);
    } else {
      ::unsetenv("GNRFET_POISSON_PC");
    }
  }
  ~PcEnvGuard() {
    if (was_set_) {
      ::setenv("GNRFET_POISSON_PC", previous_.c_str(), 1);
    } else {
      ::unsetenv("GNRFET_POISSON_PC");
    }
  }

 private:
  bool was_set_;
  std::string previous_;
};

/// The golden nonlinear problem: a 7^3 grid with one grounded/biased
/// electrode plane, a deposited fixed charge, and point electron/hole
/// populations. Identical to the pre-PR capture run that produced the
/// hashes in the Golden tests below.
struct GoldenProblem {
  poisson::GridSpec g;
  poisson::Domain domain;
  poisson::Assembly assembly;
  std::vector<double> zero, fixed, n0, p0;

  GoldenProblem() : g(make_grid()), domain(g), assembly((setup(domain), domain)) {
    zero.assign(g.num_nodes(), 0.0);
    fixed.assign(g.num_nodes(), 0.0);
    domain.deposit_charge(g.x(3), g.y(3), g.z(3), 2.0, fixed);
    n0.assign(g.num_nodes(), 0.0);
    n0[g.index(3, 3, 3)] = 1.0;
    n0[g.index(2, 3, 4)] = 0.25;
    p0.assign(g.num_nodes(), 0.0);
    p0[g.index(4, 4, 2)] = 0.5;
  }

  static poisson::GridSpec make_grid() {
    poisson::GridSpec g;
    g.nx = g.ny = g.nz = 7;
    g.dx = g.dy = g.dz = 0.3;
    return g;
  }
  static void setup(poisson::Domain& d) { d.add_electrode({-1, 10, -1, 10, -0.001, 0.001}); }
};

TEST(PoissonSolverGolden, JacobiModeBitIdenticalToPrePreconditionerSolver) {
  // Regression pin: with GNRFET_POISSON_PC=jacobi the refactored solver
  // (persistent Jacobian, reused workspace, hoisted rhs) must reproduce
  // the historical solve_nonlinear_poisson output bit-for-bit. The hashes
  // and hexfloat samples below were captured from the pre-PR solver.
  PcEnvGuard guard("jacobi");
  GoldenProblem p;

  const auto r1 =
      poisson::solve_nonlinear_poisson(p.assembly, {0.0}, p.n0, p.p0, p.fixed, p.zero, p.zero);
  ASSERT_TRUE(r1.converged);
  EXPECT_EQ(r1.iterations, 8);
  EXPECT_EQ(fnv1a(r1.phi_full), 0x69dec6d0d6ca8097ull);
  EXPECT_EQ(r1.phi_full[0], 0x0p+0);
  EXPECT_EQ(r1.phi_full[171], 0x1.2533f9f746e84p-6);
  EXPECT_EQ(r1.phi_full[342], 0x1.16d44cb7c59fp-9);
  EXPECT_EQ(r1.last_update_V, 0x1.3b1f38b489b31p-23);

  const auto r2 = poisson::solve_nonlinear_poisson(p.assembly, {0.3}, p.n0, p.p0, p.fixed,
                                                   r1.phi_full, r1.phi_full);
  ASSERT_TRUE(r2.converged);
  EXPECT_EQ(r2.iterations, 9);
  EXPECT_EQ(fnv1a(r2.phi_full), 0xf0b51fccb8090bcdull);
  EXPECT_EQ(r2.phi_full[0], 0x1.3333333333333p-2);
  EXPECT_EQ(r2.phi_full[171], 0x1.2664ae1096da9p-5);
  EXPECT_EQ(r2.phi_full[342], 0x1.71efa03f355f7p-3);
  EXPECT_EQ(r2.last_update_V, 0x1.23b544c5ff0aap-26);
}

TEST(PoissonSolver, EnvKnobSelectsPreconditioner) {
  GoldenProblem p;
  {
    PcEnvGuard guard(nullptr);  // unset -> default
    EXPECT_EQ(poisson::preconditioner_kind_from_env(), PreconditionerKind::kIc0);
  }
  {
    PcEnvGuard guard("jacobi");
    EXPECT_EQ(poisson::PoissonSolver(p.assembly).kind(), PreconditionerKind::kJacobi);
  }
  {
    PcEnvGuard guard("ssor");
    EXPECT_EQ(poisson::PoissonSolver(p.assembly).kind(), PreconditionerKind::kSsor);
  }
  {
    PcEnvGuard guard("lucky-guess");
    EXPECT_THROW(poisson::preconditioner_kind_from_env(), std::invalid_argument);
  }
}

TEST(PoissonSolver, PreconditionersAgreeOnNonlinearFixedPoint) {
  // Different preconditioners change the inner-PCG iteration path, not the
  // Newton fixed point: all three must land on the same potential far
  // below the 1e-5 V Newton tolerance.
  GoldenProblem p;
  std::vector<std::vector<double>> phis;
  for (const auto kind :
       {PreconditionerKind::kJacobi, PreconditionerKind::kSsor, PreconditionerKind::kIc0}) {
    poisson::PoissonSolver solver(p.assembly, kind);
    auto res = solver.solve_nonlinear({0.0}, p.n0, p.p0, p.fixed, p.zero, p.zero);
    ASSERT_TRUE(res.converged);
    phis.push_back(std::move(res.phi_full));
  }
  for (size_t i = 0; i < phis[0].size(); ++i) {
    EXPECT_NEAR(phis[1][i], phis[0][i], 1e-9);
    EXPECT_NEAR(phis[2][i], phis[0][i], 1e-9);
  }
}

TEST(PoissonSolver, ReusedSolverSequenceIsDeterministic) {
  // One PoissonSolver carries state between solves (warm-started delta,
  // refactored preconditioner, reused workspace); two instances fed the
  // same solve sequence must stay bit-identical at every step, and the
  // first solve must match the transient free-function path.
  GoldenProblem p;
  poisson::PoissonSolver a(p.assembly, PreconditionerKind::kIc0);
  poisson::PoissonSolver b(p.assembly, PreconditionerKind::kIc0);

  const auto a1 = a.solve_nonlinear({0.0}, p.n0, p.p0, p.fixed, p.zero, p.zero);
  const auto b1 = b.solve_nonlinear({0.0}, p.n0, p.p0, p.fixed, p.zero, p.zero);
  ASSERT_TRUE(a1.converged);
  EXPECT_EQ(fnv1a(a1.phi_full), fnv1a(b1.phi_full));
  {
    PcEnvGuard guard("ic0");
    const auto free1 =
        poisson::solve_nonlinear_poisson(p.assembly, {0.0}, p.n0, p.p0, p.fixed, p.zero, p.zero);
    EXPECT_EQ(fnv1a(free1.phi_full), fnv1a(a1.phi_full));
  }

  const auto a2 =
      a.solve_nonlinear({0.3}, p.n0, p.p0, p.fixed, a1.phi_full, a1.phi_full);
  const auto b2 =
      b.solve_nonlinear({0.3}, p.n0, p.p0, p.fixed, b1.phi_full, b1.phi_full);
  ASSERT_TRUE(a2.converged);
  EXPECT_EQ(fnv1a(a2.phi_full), fnv1a(b2.phi_full));
}

TEST(PoissonSolver, SolveRecordsPreconditionerMetrics) {
  GoldenProblem p;
  const auto before = metrics::snapshot();
  poisson::PoissonSolver solver(p.assembly, PreconditionerKind::kIc0);
  const auto res = solver.solve_nonlinear({0.0}, p.n0, p.p0, p.fixed, p.zero, p.zero);
  ASSERT_TRUE(res.converged);
  const auto after = metrics::snapshot();
  EXPECT_GT(after.counters[static_cast<size_t>(metrics::Counter::kPcgPrecondSetups)],
            before.counters[static_cast<size_t>(metrics::Counter::kPcgPrecondSetups)]);
  EXPECT_GT(after.histograms[static_cast<size_t>(metrics::Histogram::kPcgIterationsIc0)].count,
            before.histograms[static_cast<size_t>(metrics::Histogram::kPcgIterationsIc0)].count);
}

TEST(PoissonSolverParallel, ConcurrentSolversMatchSerialBitForBit) {
  // The thread-pool parallelism is across solves: each worker owns its own
  // PoissonSolver. Concurrent solves over distinct bias points must be
  // bit-identical to the serial run (also the TSan target for this layer).
  GoldenProblem p;
  constexpr size_t kCases = 6;
  std::vector<uint64_t> serial(kCases);
  for (size_t i = 0; i < kCases; ++i) {
    poisson::PoissonSolver solver(p.assembly, PreconditionerKind::kIc0);
    const auto res = solver.solve_nonlinear({0.05 * static_cast<double>(i)}, p.n0, p.p0, p.fixed,
                                            p.zero, p.zero);
    ASSERT_TRUE(res.converged);
    serial[i] = fnv1a(res.phi_full);
  }

  const int prev_threads = par::thread_count();
  par::set_thread_count(4);
  std::vector<uint64_t> parallel(kCases, 0);
  par::parallel_for(kCases, [&](size_t i) {
    poisson::PoissonSolver solver(p.assembly, PreconditionerKind::kIc0);
    const auto res = solver.solve_nonlinear({0.05 * static_cast<double>(i)}, p.n0, p.p0, p.fixed,
                                            p.zero, p.zero);
    parallel[i] = res.converged ? fnv1a(res.phi_full) : 0;
  });
  par::set_thread_count(prev_threads);

  for (size_t i = 0; i < kCases; ++i) EXPECT_EQ(parallel[i], serial[i]) << "case " << i;
}

}  // namespace
