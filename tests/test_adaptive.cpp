#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "device/tablegen.hpp"
#include "gnr/modespace.hpp"
#include "negf/adaptive.hpp"
#include "negf/scalar_rgf.hpp"
#include "negf/transport.hpp"

namespace {

using namespace gnrfet;

uint64_t fnv1a(const std::vector<double>& v) {
  uint64_t h = 1469598103934665603ull;
  for (const double d : v) {
    unsigned char b[sizeof(double)];
    std::memcpy(b, &d, sizeof(double));
    for (const unsigned char c : b) {
      h ^= c;
      h *= 1099511628211ull;
    }
  }
  return h;
}

std::vector<double> flatten(const std::vector<std::vector<double>>& m) {
  std::vector<double> f;
  for (const auto& row : m) f.insert(f.end(), row.begin(), row.end());
  return f;
}

/// Scoped GNRFET_NEGF_GRID override that restores the prior state, so the
/// single-process `ctest -L fast` run sees no cross-test pollution.
class GridEnvGuard {
 public:
  explicit GridEnvGuard(const char* value) : was_set_(common::env_set("GNRFET_NEGF_GRID")) {
    if (was_set_) previous_ = common::env_or("GNRFET_NEGF_GRID", "");
    if (value) {
      ::setenv("GNRFET_NEGF_GRID", value, 1);
    } else {
      ::unsetenv("GNRFET_NEGF_GRID");
    }
  }
  ~GridEnvGuard() {
    if (was_set_) {
      ::setenv("GNRFET_NEGF_GRID", previous_.c_str(), 1);
    } else {
      ::unsetenv("GNRFET_NEGF_GRID");
    }
  }

 private:
  bool was_set_;
  std::string previous_;
};

/// The fixed mode-space problem behind the uniform golden pin: a 12-line
/// ribbon with a source-drain ramp plus a line-direction ripple.
struct GoldenProblem {
  gnr::ModeSet modes = gnr::build_mode_set(12, {2.7, 0.12}, 3);
  std::vector<std::vector<double>> u;
  negf::TransportOptions opts;

  GoldenProblem() {
    const size_t ncol = 32;
    u.assign(ncol, std::vector<double>(12, 0.0));
    for (size_t c = 0; c < ncol; ++c) {
      const double x = static_cast<double>(c) / static_cast<double>(ncol - 1);
      for (size_t j = 0; j < 12; ++j) {
        u[c][j] = -0.3 - 0.4 * x + 0.02 * std::cos(0.7 * static_cast<double>(j));
      }
    }
    opts.mu_drain_eV = -0.4;
    opts.energy_step_eV = 2e-3;
  }
};

uint64_t rgf_solves() {
  return metrics::snapshot().counters[static_cast<size_t>(metrics::Counter::kRgfSolves)];
}

TEST(AdaptiveGolden, UniformModeSpaceBitIdenticalToPreAdaptiveSolver) {
  // Regression pin: with GNRFET_NEGF_GRID=uniform the refactored solver
  // (hoisted skip window, workspace RGF kernels) must reproduce the
  // pre-adaptive transport output bit-for-bit. Hashes and hexfloats below
  // were captured from the pre-PR solver.
  GridEnvGuard guard("uniform");
  GoldenProblem p;
  const auto sol = negf::solve_mode_space(p.modes, p.u, p.opts);
  EXPECT_EQ(sol.current_A, 0x1.12e6388bc3c3cp-17);
  EXPECT_EQ(sol.current_drain_A, 0x1.12e6388bc3c3bp-17);
  EXPECT_EQ(sol.total_net_electrons, 0x1.44d1522dd0c06p+1);
  EXPECT_EQ(sol.energies_eV.size(), 613u);
  EXPECT_EQ(fnv1a(sol.energies_eV), 0x6b11046d548574f5ull);
  EXPECT_EQ(fnv1a(sol.transmission), 0x71b5bb6f38984168ull);
  EXPECT_EQ(fnv1a(flatten(sol.electrons)), 0xc8e0b403a2f0723eull);
  EXPECT_EQ(fnv1a(flatten(sol.holes)), 0xc3839b255526531eull);
}

TEST(AdaptiveGolden, UniformDeviceTableBitIdenticalToPreAdaptiveSolver) {
  // End-to-end pin through the self-consistent device stack (Gummel loop,
  // stencil-hoisted gather/deposit, tablegen): uniform-grid tables must
  // match the pre-PR solver bit-for-bit.
  GridEnvGuard guard("uniform");
  device::DeviceSpec spec;
  spec.channel_length_nm = 8.0;
  device::TableGenOptions opts;
  opts.vg_min = 0.0;
  opts.vg_max = 0.4;
  opts.vg_points = 3;
  opts.vd_min = 0.05;
  opts.vd_max = 0.35;
  opts.vd_points = 2;
  opts.use_cache = false;
  const auto t = device::generate_device_table(spec, opts);
  EXPECT_EQ(fnv1a(t.current_A), 0x5e466317ca8aae43ull);
  EXPECT_EQ(fnv1a(t.charge_C), 0xadcc7b5ce2e3c7bbull);
  ASSERT_EQ(t.current_A.size(), 6u);
  EXPECT_EQ(t.current_A[0], 0x1.596231e6a8431p-23);
  EXPECT_EQ(t.current_A[5], 0x1.25844c0ef1327p-21);
}

TEST(AdaptiveAccuracy, MatchesFineUniformReferenceWithFewerSolves) {
  GoldenProblem p;
  // Reference: 4x finer uniform grid.
  negf::TransportOptions fine = p.opts;
  fine.energy_step_eV = p.opts.energy_step_eV / 4.0;
  uint64_t solves_uniform = 0;
  negf::TransportSolution ref;
  {
    GridEnvGuard guard("uniform");
    metrics::reset();
    const auto coarse = negf::solve_mode_space(p.modes, p.u, p.opts);
    solves_uniform = rgf_solves();
    (void)coarse;
    ref = negf::solve_mode_space(p.modes, p.u, fine);
  }
  GridEnvGuard guard("adaptive");
  metrics::reset();
  const auto sol = negf::solve_mode_space(p.modes, p.u, p.opts);
  const uint64_t solves_adaptive = rgf_solves();
  const uint64_t saved =
      metrics::snapshot().counters[static_cast<size_t>(metrics::Counter::kNegfEnergyPointsSaved)];

  // Accuracy contract: <= 1e-4 relative on current against the 4x-finer
  // uniform reference (measured ~4e-10 on this problem).
  EXPECT_LE(std::abs(sol.current_A - ref.current_A), 1e-4 * std::abs(ref.current_A));
  EXPECT_LE(std::abs(sol.total_net_electrons - ref.total_net_electrons),
            5e-4 * std::abs(ref.total_net_electrons));
  // Perf contract: at most half the uniform solve count (measured ~2.7x
  // fewer), and the saved-points counter reflects the reduction.
  EXPECT_LE(2 * solves_adaptive, solves_uniform);
  EXPECT_GT(saved, 0u);
}

TEST(AdaptiveDeterminism, BitIdenticalAcrossThreadCounts) {
  GridEnvGuard guard("adaptive");
  GoldenProblem p;
  const int before = par::thread_count();
  par::set_thread_count(1);
  const auto s1 = negf::solve_mode_space(p.modes, p.u, p.opts);
  par::set_thread_count(4);
  const auto s4 = negf::solve_mode_space(p.modes, p.u, p.opts);
  par::set_thread_count(before);
  EXPECT_EQ(s1.current_A, s4.current_A);
  EXPECT_EQ(s1.current_drain_A, s4.current_drain_A);
  EXPECT_EQ(s1.total_net_electrons, s4.total_net_electrons);
  EXPECT_EQ(fnv1a(s1.energies_eV), fnv1a(s4.energies_eV));
  EXPECT_EQ(fnv1a(s1.transmission), fnv1a(s4.transmission));
  EXPECT_EQ(fnv1a(flatten(s1.electrons)), fnv1a(flatten(s4.electrons)));
  EXPECT_EQ(fnv1a(flatten(s1.holes)), fnv1a(flatten(s4.holes)));
}

TEST(AdaptiveContext, WarmStartReusesConvergedEdges) {
  GridEnvGuard guard("adaptive");
  GoldenProblem p;
  negf::TransportContext ctx;
  const auto cold = negf::solve_mode_space(p.modes, p.u, p.opts, ctx);
  ASSERT_EQ(ctx.mode_edges.size(), p.modes.modes.size());
  size_t with_edges = 0;
  for (const auto& e : ctx.mode_edges) with_edges += !e.empty() ? 1 : 0;
  EXPECT_GT(with_edges, 0u);
  // Warm solve of the same potential starts from the converged panels and
  // lands on the same integrals (within tolerance; identical here because
  // the converged structure re-accepts immediately).
  const auto warm = negf::solve_mode_space(p.modes, p.u, p.opts, ctx);
  EXPECT_NEAR(warm.current_A, cold.current_A, 1e-6 * std::abs(cold.current_A));
  EXPECT_NEAR(warm.total_net_electrons, cold.total_net_electrons,
              1e-6 * std::abs(cold.total_net_electrons));
  ctx.reset();
  EXPECT_TRUE(ctx.mode_edges.empty());
}

TEST(AdaptiveWindow, ModeOutsideWindowContributesNothingAndSolvesNothing) {
  // Window override far above every mode's support: the skip branch must
  // produce a zero solution without a single RGF solve, and account the
  // skipped work as saved points.
  GridEnvGuard guard("adaptive");
  GoldenProblem p;
  negf::TransportOptions opts = p.opts;
  opts.window_lo_eV = 30.0;
  opts.window_hi_eV = 31.0;
  metrics::reset();
  const auto sol = negf::solve_mode_space(p.modes, p.u, opts);
  EXPECT_EQ(rgf_solves(), 0u);
  EXPECT_EQ(sol.current_A, 0.0);
  EXPECT_EQ(sol.total_net_electrons, 0.0);
  for (const auto& col : sol.electrons) {
    for (const double v : col) EXPECT_EQ(v, 0.0);
  }
}

TEST(AdaptiveIntegrate, RecoversPolynomialExactlyAndRefinesKink) {
  // Simpson's fine rule is exact for cubics; the kink component forces
  // refinement near x = 0.37 while the cubic shares the grid for free.
  const negf::BatchEval eval = [](const std::vector<double>& xs,
                                  std::vector<std::vector<double>>& values) {
    for (size_t k = 0; k < xs.size(); ++k) {
      const double x = xs[k];
      values[k] = {x * x * x - 0.5 * x, std::abs(x - 0.37)};
    }
  };
  std::vector<negf::ErrorGroup> groups(1);
  groups[0] = {0, 2, 1e-14};
  negf::AdaptiveOptions opts;
  opts.rel_tol = 1e-8;
  const auto res = negf::adaptive_integrate(0.0, 1.0, 2, {}, groups, opts, eval);
  EXPECT_NEAR(res.integrals[0], 0.25 - 0.25, 1e-12);
  const double kink_exact = (0.37 * 0.37 + 0.63 * 0.63) / 2.0;
  EXPECT_NEAR(res.integrals[1], kink_exact, 1e-8);
  EXPECT_GT(res.max_depth_reached, 0);
  // Edges ascend and span the window.
  ASSERT_GE(res.edges.size(), 2u);
  EXPECT_EQ(res.edges.front(), 0.0);
  EXPECT_EQ(res.edges.back(), 1.0);
  for (size_t i = 1; i < res.edges.size(); ++i) EXPECT_LT(res.edges[i - 1], res.edges[i]);
}

TEST(AdaptiveIntegrate, PanelSinkSeesEveryPanelInAscendingOrder) {
  const negf::BatchEval eval = [](const std::vector<double>& xs,
                                  std::vector<std::vector<double>>& values) {
    for (size_t k = 0; k < xs.size(); ++k) values[k] = {std::exp(xs[k])};
  };
  std::vector<negf::ErrorGroup> groups(1);
  groups[0] = {0, 1, 1e-14};
  double sum = 0.0, last_b = -1.0;
  bool ordered = true;
  const negf::PanelSink sink = [&](double a, double b, const std::vector<double>& contrib) {
    ordered = ordered && a >= last_b - 1e-15;
    last_b = b;
    sum += contrib[0];
  };
  negf::AdaptiveOptions aopts;
  aopts.rel_tol = 1e-9;
  const auto res = negf::adaptive_integrate(0.0, 1.0, 1, {0.3}, groups, aopts, eval, sink);
  EXPECT_TRUE(ordered);
  // The sink contributions add up to exactly the reported integral (same
  // summation order), which matches exp(1) - 1.
  EXPECT_EQ(sum, res.integrals[0]);
  EXPECT_NEAR(res.integrals[0], std::exp(1.0) - 1.0, 1e-8);
}

/// Scoped thread-count override restoring the previous value on exit.
struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) : old_(par::thread_count()) { par::set_thread_count(n); }
  ~ThreadCountGuard() { par::set_thread_count(old_); }
  int old_;
};

device::DeviceSpec warmbias_spec() {
  device::DeviceSpec spec;
  spec.channel_length_nm = 6.0;
  spec.grid_step_nm = 0.35;
  spec.lateral_margin_nm = 2.0;
  spec.num_modes = 2;
  return spec;
}

device::TableGenOptions warmbias_opts(bool warm) {
  device::TableGenOptions opts;
  opts.vg_points = 3;
  opts.vg_max = 0.4;
  opts.vd_min = 0.05;
  opts.vd_max = 0.35;
  opts.vd_points = 2;
  opts.solve.energy_step_eV = 5e-3;
  opts.solve.gummel_tolerance_V = 3e-3;
  opts.use_cache = false;
  opts.warm_bias_context = warm;
  return opts;
}

TEST(TablegenWarmBias, UniformTableBitIdenticalToColdStart) {
  // The uniform energy grid ignores the TransportContext entirely, so
  // cross-bias chaining must leave the pinned uniform tables bit-identical
  // to a cold start, and must not fork their cache key.
  GridEnvGuard guard("uniform");
  const auto spec = warmbias_spec();
  const auto warm = device::generate_device_table(spec, warmbias_opts(true));
  const auto cold = device::generate_device_table(spec, warmbias_opts(false));
  ASSERT_EQ(warm.current_A.size(), cold.current_A.size());
  for (size_t i = 0; i < warm.current_A.size(); ++i) {
    EXPECT_EQ(warm.current_A[i], cold.current_A[i]) << "row " << i;
    EXPECT_EQ(warm.charge_C[i], cold.charge_C[i]) << "row " << i;
  }
  EXPECT_EQ(device::table_cache_payload(spec, warmbias_opts(true)),
            device::table_cache_payload(spec, warmbias_opts(false)));
}

TEST(TablegenWarmBias, AdaptiveCachePayloadKeyedByContextChaining) {
  // Chained panel seeding moves adaptive table values within tolerance, so
  // warm and cold tables must live under different cache keys.
  GridEnvGuard guard("adaptive");
  const auto spec = warmbias_spec();
  const std::string warm_key = device::table_cache_payload(spec, warmbias_opts(true));
  const std::string cold_key = device::table_cache_payload(spec, warmbias_opts(false));
  EXPECT_NE(warm_key, cold_key);
  EXPECT_NE(warm_key.find(";ctx=bias"), std::string::npos);
  EXPECT_EQ(cold_key.find(";ctx=bias"), std::string::npos);
}

TEST(TablegenWarmBias, AdaptiveWarmTableAgreesWithColdStart) {
  // Seeding each bias point's panels from its warm-start neighbour changes
  // the refinement structure, so warm and cold tables are not bit-equal;
  // they must agree within the adaptive tolerance as amplified by the
  // Gummel stopping window.
  GridEnvGuard guard("adaptive");
  const auto spec = warmbias_spec();
  const auto warm = device::generate_device_table(spec, warmbias_opts(true));
  const auto cold = device::generate_device_table(spec, warmbias_opts(false));
  ASSERT_EQ(warm.current_A.size(), cold.current_A.size());
  for (size_t i = 0; i < warm.current_A.size(); ++i) {
    EXPECT_NEAR(warm.current_A[i], cold.current_A[i], 0.05 * std::abs(cold.current_A[i]) + 1e-15)
        << "row " << i;
    EXPECT_NEAR(warm.charge_C[i], cold.charge_C[i], 0.05 * std::abs(cold.charge_C[i]) + 1e-24)
        << "row " << i;
  }
}

TEST(TablegenWarmBiasParallel, AdaptiveWarmTableBitIdentical1v4Threads) {
  // The context chain follows the warm-start graph (serial head row, then
  // per-column copies), so chained tables must stay bit-identical for any
  // thread count. Also the TSan target for the chaining code.
  GridEnvGuard guard("adaptive");
  const auto spec = warmbias_spec();
  ThreadCountGuard g1(1);
  const auto serial = device::generate_device_table(spec, warmbias_opts(true));
  ThreadCountGuard g4(4);
  const auto threaded = device::generate_device_table(spec, warmbias_opts(true));
  ASSERT_EQ(serial.current_A.size(), threaded.current_A.size());
  for (size_t i = 0; i < serial.current_A.size(); ++i) {
    ASSERT_EQ(serial.current_A[i], threaded.current_A[i]) << "row " << i;
    ASSERT_EQ(serial.charge_C[i], threaded.charge_C[i]) << "row " << i;
  }
}

TEST(ScalarRgfWorkspace, ReuseAcrossSolvesMatchesFreshWorkspace) {
  // A warm workspace carried across chains and energies must be stateless:
  // every solve equals a fresh-workspace solve bit-for-bit.
  negf::ScalarChain chain;
  const size_t n = 24;
  chain.onsite.resize(n);
  chain.hopping.assign(n - 1, -2.7);
  chain.gamma_left = 1.0;
  chain.gamma_right = 1.0;
  negf::ScalarRgfWorkspace warm;
  negf::ScalarRgfResult r_warm, r_fresh;
  for (int trial = 0; trial < 3; ++trial) {
    for (size_t c = 0; c < n; ++c) {
      chain.onsite[c] = -0.2 * trial + 0.05 * std::sin(0.3 * static_cast<double>(c));
    }
    for (const double e : {-0.4, 0.1, 0.35}) {
      negf::scalar_rgf_solve(chain, e, 1e-3, warm, r_warm);
      negf::ScalarRgfWorkspace fresh;
      negf::scalar_rgf_solve(chain, e, 1e-3, fresh, r_fresh);
      EXPECT_EQ(r_warm.transmission, r_fresh.transmission);
      EXPECT_EQ(r_warm.transmission_reverse, r_fresh.transmission_reverse);
      ASSERT_EQ(r_warm.spectral_left.size(), r_fresh.spectral_left.size());
      for (size_t c = 0; c < r_warm.spectral_left.size(); ++c) {
        EXPECT_EQ(r_warm.spectral_left[c], r_fresh.spectral_left[c]);
        EXPECT_EQ(r_warm.spectral_right[c], r_fresh.spectral_right[c]);
      }
    }
  }
}

}  // namespace
