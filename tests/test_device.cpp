#include <gtest/gtest.h>

#include <sys/resource.h>

#include <cmath>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>

#include "common/contracts.hpp"
#include "common/env.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "device/geometry.hpp"
#include "device/selfconsistent.hpp"
#include "device/sweeps.hpp"
#include "device/tablegen.hpp"

namespace {

using namespace gnrfet;
using namespace gnrfet::device;

/// Small, coarse device for fast tests (short channel, coarse mesh and
/// energy grid) — still a real self-consistent NEGF-Poisson solve.
DeviceSpec tiny_spec(int n_index = 12) {
  DeviceSpec s;
  s.n_index = n_index;
  s.channel_length_nm = 6.0;
  s.grid_step_nm = 0.35;
  s.lateral_margin_nm = 2.0;
  s.num_modes = 2;
  return s;
}

SolveOptions fast_opts() {
  SolveOptions o;
  o.energy_step_eV = 5e-3;
  o.gummel_tolerance_V = 3e-3;
  return o;
}

TEST(DeviceGeometry, GridAndLatticeAreConsistent) {
  const DeviceGeometry geo(tiny_spec());
  const auto& g = geo.domain().spec();
  // GNR plane z = 0 must be a grid plane.
  bool has_zero = false;
  for (size_t k = 0; k < g.nz; ++k) {
    if (std::abs(g.z(k)) < 1e-9) has_zero = true;
  }
  EXPECT_TRUE(has_zero);
  // Columns must lie strictly inside the Poisson domain.
  for (size_t c = 0; c < geo.lattice().column_x_nm().size(); ++c) {
    EXPECT_GT(geo.column_x(c), 0.0);
    EXPECT_LT(geo.column_x(c), g.x_max());
  }
  // Four electrodes: source, drain, bottom gate, top gate.
  EXPECT_EQ(geo.domain().num_electrodes(), 4);
  EXPECT_EQ(geo.electrode_voltages(0.0, 0.5, 0.3), (std::vector<double>{0.0, 0.5, 0.3, 0.3}));
}

TEST(DeviceGeometry, ImpurityChargeIsDeposited) {
  DeviceSpec s = tiny_spec();
  s.impurities.push_back({-2.0, 1.0, 0.0, 0.4});
  const DeviceGeometry geo(s);
  double total = 0.0;
  for (const double v : geo.impurity_charge()) total += v;
  EXPECT_NEAR(total, -2.0, 1e-9);
}

TEST(DeviceSpec, CacheKeyDistinguishesConfigs) {
  DeviceSpec a = tiny_spec();
  DeviceSpec b = tiny_spec();
  EXPECT_EQ(a.cache_key(), b.cache_key());
  b.impurities.push_back({1.0, 1.0, 0.0, 0.4});
  EXPECT_NE(a.cache_key(), b.cache_key());
  DeviceSpec c = tiny_spec(15);
  EXPECT_NE(a.cache_key(), c.cache_key());
}

TEST(SelfConsistent, ConvergesAndIsAmbipolar) {
  const DeviceGeometry geo(tiny_spec());
  const SelfConsistentSolver solver(geo, fast_opts());
  const DeviceSolution on = solver.solve({0.5, 0.5});
  ASSERT_TRUE(on.converged);
  EXPECT_GT(on.current_A, 1e-8);
  const DeviceSolution mid = solver.solve({0.25, 0.5}, &on);
  ASSERT_TRUE(mid.converged);
  const DeviceSolution low = solver.solve({0.0, 0.5}, &mid);
  ASSERT_TRUE(low.converged);
  // Ambipolar: minimum leakage near VG = VD/2, hole branch rises again.
  EXPECT_LT(mid.current_A, on.current_A);
  EXPECT_GT(low.current_A, mid.current_A);
}

TEST(SelfConsistent, ZeroDrainBiasZeroCurrent) {
  const DeviceGeometry geo(tiny_spec());
  const SelfConsistentSolver solver(geo, fast_opts());
  const DeviceSolution sol = solver.solve({0.4, 0.0});
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.current_A, 0.0, 1e-12);
}

TEST(SelfConsistent, WarmStartReducesIterations) {
  const DeviceGeometry geo(tiny_spec());
  const SelfConsistentSolver solver(geo, fast_opts());
  const DeviceSolution cold = solver.solve({0.4, 0.4});
  const DeviceSolution warm = solver.solve({0.45, 0.4}, &cold);
  EXPECT_LT(warm.iterations, cold.iterations);
}

#if GNRFET_CHECKS_ENABLED
TEST(SelfConsistent, WarmStartGridMismatchIsContractViolation) {
  // A warm start from a solution on a different grid used to be copied in
  // silently and crash (or worse, converge to garbage) deep inside the
  // Gummel loop; it must be rejected at the boundary with both sizes named.
  const DeviceGeometry geo(tiny_spec());
  const SelfConsistentSolver solver(geo, fast_opts());
  DeviceSolution wrong;
  wrong.converged = true;
  wrong.phi_full.assign(17, 0.0);  // not this geometry's node count
  try {
    solver.solve({0.4, 0.4}, &wrong);
    FAIL() << "expected a ContractViolation for mismatched warm-start grid";
  } catch (const contracts::ContractViolation& v) {
    const std::string what = v.what();
    EXPECT_NE(what.find("warm-start-grid-match"), std::string::npos) << what;
    EXPECT_NE(what.find("17"), std::string::npos) << what;
  }
}
#endif

TEST(SelfConsistent, BandProfilePinnedAtContacts) {
  const DeviceGeometry geo(tiny_spec());
  const SelfConsistentSolver solver(geo, fast_opts());
  const DeviceSolution sol = solver.solve({0.5, 0.5});
  // Mid-gap near the source contact approaches the source Fermi level (0);
  // near the drain it approaches -VD. The gate pushes the interior down.
  EXPECT_NEAR(sol.midgap_profile_eV.front(), 0.0, 0.15);
  EXPECT_NEAR(sol.midgap_profile_eV.back(), -0.5, 0.2);
  double interior_min = 1e9;
  for (const double u : sol.midgap_profile_eV) interior_min = std::min(interior_min, u);
  EXPECT_LT(interior_min, -0.3);
}

TEST(SelfConsistent, ImpurityPolarityShiftsSchottkyBarrier) {
  DeviceSpec sm = tiny_spec();
  sm.impurities.push_back({-2.0, 1.0, 0.0, 0.4});
  DeviceSpec sp = tiny_spec();
  sp.impurities.push_back({2.0, 1.0, 0.0, 0.4});
  const SolveOptions opts = fast_opts();
  const DeviceSolution ideal = SelfConsistentSolver(DeviceGeometry(tiny_spec()), opts).solve({0.5, 0.5});
  const DeviceSolution neg = SelfConsistentSolver(DeviceGeometry(sm), opts).solve({0.5, 0.5});
  const DeviceSolution pos = SelfConsistentSolver(DeviceGeometry(sp), opts).solve({0.5, 0.5});
  // The negative impurity raises the source Schottky barrier and cuts the
  // n-branch on-current; the positive one lowers/thins the barrier.
  EXPECT_LT(neg.current_A, 0.9 * ideal.current_A);
  EXPECT_GT(neg.current_A, 0.0);
  EXPECT_GT(pos.current_A, ideal.current_A);
}

TEST(Sweeps, ThresholdExtractionOnKnownCurve) {
  // Piecewise-linear "transistor": I = gm * (vg - 0.3) above threshold.
  std::vector<double> vg, id;
  for (int i = 0; i <= 20; ++i) {
    const double v = 0.05 * i;
    vg.push_back(v);
    id.push_back(v < 0.3 ? 1e-9 : 2e-5 * (v - 0.3));
  }
  EXPECT_NEAR(device::extract_threshold_voltage(vg, id), 0.3, 0.06);
}

TEST(Sweeps, VoltageAxis) {
  const auto v = voltage_axis(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_DOUBLE_EQ(v[4], 1.0);
  EXPECT_THROW(voltage_axis(0, 1, 1), std::invalid_argument);
}

TEST(TableGen, SaveLoadRoundTrip) {
  DeviceTable t;
  t.vg = {0.0, 0.1, 0.2};
  t.vd = {0.0, 0.5};
  t.band_gap_eV = 0.61;
  for (size_t i = 0; i < 6; ++i) {
    t.current_A.push_back(1e-6 * static_cast<double>(i));
    t.charge_C.push_back(-1e-19 * static_cast<double>(i));
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "gnrfet_table_test.csv").string();
  save_table(t, path, "test-key");
  const DeviceTable r = load_table(path);
  EXPECT_EQ(r.vg.size(), 3u);
  EXPECT_EQ(r.vd.size(), 2u);
  EXPECT_NEAR(r.band_gap_eV, 0.61, 1e-9);
  EXPECT_DOUBLE_EQ(r.at_current(2, 1), t.at_current(2, 1));
  EXPECT_DOUBLE_EQ(r.at_charge(1, 0), t.at_charge(1, 0));
  std::filesystem::remove(path);
}

TEST(TableGen, LoadRejectsMissingSizeMetadata) {
  // A cache file truncated before its metadata block must produce a clear
  // error naming the missing field, not std::stoul's bare invalid_argument.
  const std::string path =
      (std::filesystem::temp_directory_path() / "gnrfet_table_missing_meta.csv").string();
  {
    std::ofstream out(path);
    out << "# band_gap_eV = 0.6\n";
    out << "vg,vd,current_A,charge_C\n";
    out << "0,0,1e-6,-1e-19\n";
  }
  try {
    load_table(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("nvg"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
  std::filesystem::remove(path);
}

TEST(TableGen, LoadRejectsMalformedSizeMetadata) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gnrfet_table_bad_meta.csv").string();
  {
    std::ofstream out(path);
    out << "# nvg = banana\n";
    out << "# nvd = 2\n";
    out << "vg,vd,current_A,charge_C\n";
    out << "0,0,1e-6,-1e-19\n";
    out << "0,0.5,2e-6,-2e-19\n";
  }
  try {
    load_table(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("malformed"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("banana"), std::string::npos) << e.what();
  }
  std::filesystem::remove(path);
}

TEST(TableGen, LoadRejectsRowCountMismatch) {
  // A writer killed mid-stream leaves fewer rows than nvg*nvd promises;
  // with the atomic-rename save this can only happen to hand-edited files,
  // but the loader must still refuse them loudly.
  const std::string path =
      (std::filesystem::temp_directory_path() / "gnrfet_table_torn.csv").string();
  {
    std::ofstream out(path);
    out << "# nvg = 3\n# nvd = 2\n";
    out << "vg,vd,current_A,charge_C\n";
    out << "0,0,1e-6,-1e-19\n";
  }
  EXPECT_THROW(load_table(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TableGen, SaveLeavesNoTempFileBehind) {
  const auto dir = std::filesystem::temp_directory_path() / "gnrfet_atomic_save_test";
  std::filesystem::create_directories(dir);
  DeviceTable t;
  t.vg = {0.0, 0.1};
  t.vd = {0.0};
  t.current_A = {0.0, 1e-6};
  t.charge_C = {0.0, -1e-19};
  save_table(t, (dir / "table.csv").string(), "key");
  size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(e.path().filename().string(), "table.csv");
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(dir);
}

/// FNV-1a fingerprint of the raw bits of a double vector: two vectors hash
/// equal iff they are bit-for-bit identical (1e-16-close is not enough).
std::string bits_hash(const std::vector<double>& v) {
  return strings::hash_hex(
      std::string(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(double)));
}

/// Scoped GNRFET_CACHE_DIR override restoring the previous value on exit.
struct CacheDirGuard {
  explicit CacheDirGuard(const std::string& dir)
      : had_(common::env_set("GNRFET_CACHE_DIR")),
        previous_(common::env_or("GNRFET_CACHE_DIR", "")) {
    ::setenv("GNRFET_CACHE_DIR", dir.c_str(), 1);
  }
  ~CacheDirGuard() {
    if (had_) {
      ::setenv("GNRFET_CACHE_DIR", previous_.c_str(), 1);
    } else {
      ::unsetenv("GNRFET_CACHE_DIR");
    }
  }
  bool had_;
  std::string previous_;
};

TEST(TableGen, CsvRoundTripIsBitExact) {
  // Values with no finite decimal expansion: at the old precision(12) the
  // save/load round trip flipped low-order mantissa bits, so a table served
  // from the disk cache differed bitwise from the freshly generated one.
  DeviceTable t;
  t.vg = {0.0, 1.0 / 3.0, std::sqrt(2.0) / 2.0};
  t.vd = {0.1 / 3.0, std::exp(1.0) / 4.0};
  t.band_gap_eV = 0.61234567890123456;
  for (size_t i = 0; i < 6; ++i) {
    const double x = static_cast<double>(i) + 1.0;
    t.current_A.push_back(1e-6 / (3.0 * x));
    t.charge_C.push_back(-1e-19 * std::sqrt(x));
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "gnrfet_table_bitexact.csv").string();
  save_table(t, path, "bitexact-key");
  const DeviceTable r = load_table(path);
  EXPECT_EQ(bits_hash(r.vg), bits_hash(t.vg));
  EXPECT_EQ(bits_hash(r.vd), bits_hash(t.vd));
  EXPECT_EQ(bits_hash(r.current_A), bits_hash(t.current_A));
  EXPECT_EQ(bits_hash(r.charge_C), bits_hash(t.charge_C));
  EXPECT_EQ(bits_hash({r.band_gap_eV}), bits_hash({t.band_gap_eV}));
  std::filesystem::remove(path);
}

TEST(TableGen, CacheHitMatchesMissBitExact) {
  // The full pipeline promise: generating cold and re-loading the result
  // through the cache must produce the same table down to the last bit.
  const auto dir = std::filesystem::temp_directory_path() / "gnrfet_cache_bitexact";
  std::filesystem::remove_all(dir);
  CacheDirGuard guard(dir.string());
  TableGenOptions opts;
  opts.vg_points = 2;
  opts.vd_points = 2;
  opts.vg_max = 0.5;
  opts.vd_max = 0.5;
  opts.solve = fast_opts();
  const DeviceSpec spec = tiny_spec();
  const auto hits_of = [] {
    return metrics::snapshot().counters[static_cast<size_t>(metrics::Counter::kTableCacheHits)];
  };
  const uint64_t hits_before = hits_of();
  const DeviceTable cold = generate_device_table(spec, opts);
  EXPECT_EQ(hits_of(), hits_before);  // first generation was a miss
  const DeviceTable warm = generate_device_table(spec, opts);
  EXPECT_EQ(hits_of(), hits_before + 1);  // second came from the disk cache
  EXPECT_EQ(bits_hash(warm.vg), bits_hash(cold.vg));
  EXPECT_EQ(bits_hash(warm.vd), bits_hash(cold.vd));
  EXPECT_EQ(bits_hash(warm.current_A), bits_hash(cold.current_A));
  EXPECT_EQ(bits_hash(warm.charge_C), bits_hash(cold.charge_C));
  EXPECT_EQ(bits_hash({warm.band_gap_eV}), bits_hash({cold.band_gap_eV}));
  std::filesystem::remove_all(dir);
}

TEST(TableGen, LoadRejectsSignedOrPaddedSizeMetadata) {
  // std::stoul accepts leading whitespace and a sign — "-3" wraps to ~2^64,
  // which then drove resize() toward a multi-exabyte allocation. The parser
  // must reject anything but plain digits. (Outer whitespace is trimmed by
  // the CSV metadata parser before it gets here; inner whitespace is not.)
  for (const char* bad : {"-3", "+3", "3 3", "0"}) {
    const std::string path =
        (std::filesystem::temp_directory_path() / "gnrfet_table_signed_meta.csv").string();
    {
      std::ofstream out(path);
      out << "# nvg = " << bad << "\n";
      out << "# nvd = 2\n";
      out << "vg,vd,current_A,charge_C\n";
      out << "0,0,1e-6,-1e-19\n";
      out << "0,0.5,2e-6,-2e-19\n";
    }
    try {
      load_table(path);
      FAIL() << "expected std::runtime_error for nvg = '" << bad << "'";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("malformed"), std::string::npos) << e.what();
      EXPECT_NE(std::string(e.what()).find("nvg"), std::string::npos) << e.what();
    }
    std::filesystem::remove(path);
  }
}

TEST(TableGen, LoadRejectsOverflowingSizeProduct) {
  // nvg*nvd wrapping size_t could alias the actual row count; the product
  // must be bounded before it feeds the row-count check and resize().
  const std::string path =
      (std::filesystem::temp_directory_path() / "gnrfet_table_overflow_meta.csv").string();
  {
    std::ofstream out(path);
    out << "# nvg = 9223372036854775809\n";  // 2^63 + 1
    out << "# nvd = 4\n";
    out << "vg,vd,current_A,charge_C\n";
    out << "0,0,1e-6,-1e-19\n";
  }
  try {
    load_table(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("overflows"), std::string::npos) << e.what();
  }
  std::filesystem::remove(path);
}

TEST(TableGen, LoadRejectsInconsistentAxisRows) {
  // Every row restates its axis coordinates; a disagreeing row means the
  // file body is scrambled and must not silently overwrite the axis.
  const std::string path =
      (std::filesystem::temp_directory_path() / "gnrfet_table_bad_axis.csv").string();
  {
    std::ofstream out(path);
    out << "# nvg = 2\n# nvd = 2\n";
    out << "vg,vd,current_A,charge_C\n";
    out << "0,0,1e-6,-1e-19\n";
    out << "0,0.5,2e-6,-2e-19\n";
    out << "0.1,0,3e-6,-3e-19\n";
    out << "0.1,0.25,4e-6,-4e-19\n";  // vd disagrees with row 1's axis entry
  }
  try {
    load_table(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("disagrees"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("vd"), std::string::npos) << e.what();
  }
  std::filesystem::remove(path);
}

TEST(TableGen, PayloadDistinguishesNearbyBiasValues) {
  // Two option sets whose vg_max differs by one ulp must key distinct cache
  // entries; at the old precision(10) they collided onto one key and the
  // second configuration silently got the first one's table.
  const DeviceSpec spec = tiny_spec();
  TableGenOptions a;
  TableGenOptions b = a;
  b.vg_max = std::nextafter(a.vg_max, 1.0);
  EXPECT_NE(table_cache_payload(spec, a), table_cache_payload(spec, b));
  // Sanity: identical options still agree.
  EXPECT_EQ(table_cache_payload(spec, a), table_cache_payload(spec, TableGenOptions{}));
}

TEST(TableGen, SaveFailureLeavesNoTempLitter) {
  // Inject a mid-stream write failure with a file-size rlimit (running as
  // root, permission tricks do not fail writes): the save must remove its
  // temp file and rethrow naming the final path.
  const auto dir = std::filesystem::temp_directory_path() / "gnrfet_save_fail_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  DeviceTable t;
  t.vg.resize(200);
  t.vd.resize(50);
  for (size_t i = 0; i < t.vg.size(); ++i) t.vg[i] = 1e-3 * static_cast<double>(i);
  for (size_t i = 0; i < t.vd.size(); ++i) t.vd[i] = 1e-3 * static_cast<double>(i);
  t.current_A.assign(t.vg.size() * t.vd.size(), 1.0 / 3.0);
  t.charge_C.assign(t.vg.size() * t.vd.size(), -1e-19);
  struct rlimit old_limit {};
  ASSERT_EQ(getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  struct rlimit tiny_limit = old_limit;
  tiny_limit.rlim_cur = 4096;  // far below the ~700 kB this table needs
  void (*old_handler)(int) = std::signal(SIGXFSZ, SIG_IGN);  // EFBIG, not a kill
  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &tiny_limit), 0);
  const std::string path = (dir / "table.csv").string();
  try {
    save_table(t, path, "litter-key");
    ADD_FAILURE() << "expected save_table to fail under RLIMIT_FSIZE";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
  setrlimit(RLIMIT_FSIZE, &old_limit);
  std::signal(SIGXFSZ, old_handler);
  // No final file and, crucially, no .tmp.* litter.
  size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    ++entries;
    ADD_FAILURE() << "unexpected file left behind: " << e.path();
  }
  EXPECT_EQ(entries, 0u);
  std::filesystem::remove_all(dir);
}

TEST(TableGen, TinyEndToEndGeneration) {
  // Full pipeline on a 2x2 bias grid with the tiny device; exercises the
  // warm-started grid walk and the charge sign convention.
  TableGenOptions opts;
  opts.vg_points = 2;
  opts.vd_points = 2;
  opts.vg_max = 0.5;
  opts.vd_max = 0.5;
  opts.solve = fast_opts();
  opts.use_cache = false;
  DeviceSpec spec = tiny_spec();
  const DeviceTable t = generate_device_table(spec, opts);
  EXPECT_EQ(t.current_A.size(), 4u);
  // I(VD=0) = 0; I grows with VD at fixed VG.
  EXPECT_NEAR(t.at_current(1, 0), 0.0, 1e-12);
  EXPECT_GT(t.at_current(1, 1), 0.0);
  // On state holds electrons: negative channel charge at high VG.
  EXPECT_LT(t.at_charge(1, 1), 0.0);
}

}  // namespace
