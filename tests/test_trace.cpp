#include <gtest/gtest.h>

#include <sys/resource.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cache.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "device/tablegen.hpp"

namespace {

using namespace gnrfet;

/// Scoped thread-count override restoring the previous value on exit.
struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) : old_(par::thread_count()) { par::set_thread_count(n); }
  ~ThreadCountGuard() { par::set_thread_count(old_); }
  int old_;
};

/// Scoped trace configuration: clears recorded events, points the trace at
/// `path` (default: enabled with a sink path that is never flushed), and
/// restores the previous configuration + empty buffers on exit.
struct TraceGuard {
  explicit TraceGuard(const std::string& path = "unused-trace-sink.json")
      : old_path_(trace::output_path()) {
    trace::clear();
    trace::set_output_path(path);
  }
  ~TraceGuard() {
    trace::clear();
    trace::set_output_path(old_path_);
  }
  std::string old_path_;
};

/// Minimal structural JSON check: every brace/bracket balanced, quotes
/// paired, no trailing garbage. Good enough to catch emitter typos; the
/// full parse is exercised by gnrfet_trace_report in CI.
bool json_balanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return stack.empty() && !in_string;
}

TEST(Trace, DisabledSpansRecordNothing) {
  TraceGuard guard("");  // disabled
  ASSERT_FALSE(trace::enabled());
  const size_t before = trace::event_count();
  {
    trace::Span outer("test", "outer");
    trace::Span inner("test", "inner");
  }
  trace::emit_complete("test", "dynamic", 0.0, 1.0);
  EXPECT_EQ(trace::event_count(), before);
}

TEST(Trace, EnableDisableRoundTrip) {
  TraceGuard guard("");
  EXPECT_FALSE(trace::enabled());
  EXPECT_EQ(trace::output_path(), "");
  trace::set_output_path("somewhere.json");
  EXPECT_TRUE(trace::enabled());
  EXPECT_EQ(trace::output_path(), "somewhere.json");
  trace::set_output_path("");
  EXPECT_FALSE(trace::enabled());
}

TEST(Trace, SpansNestOnOneThread) {
  TraceGuard guard;
  {
    trace::Span outer("test", "outer");
    { trace::Span inner("test", "inner"); }
  }
  const auto events = trace::snapshot_events();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded at destruction: inner first.
  const auto& inner = events[0];
  const auto& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.tid, outer.tid);
  // Containment: inner's [ts, ts+dur] lies within outer's.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 1e-6);
}

TEST(TraceParallel, EventsMergeAcrossPoolThreads) {
  TraceGuard guard;
  ThreadCountGuard threads(4);
  const size_t n = 64;
  std::mutex mu;
  std::set<std::thread::id> os_threads;
  par::parallel_for(n, [&](size_t) {
    trace::Span span("test", "item");
    const std::lock_guard<std::mutex> lk(mu);
    os_threads.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(trace::event_count(), n);
  const auto events = trace::snapshot_events();
  ASSERT_EQ(events.size(), n);
  std::set<uint32_t> tids;
  for (const auto& e : events) {
    EXPECT_EQ(e.category, "test");
    EXPECT_EQ(e.name, "item");
    EXPECT_GE(e.dur_us, 0.0);
    tids.insert(e.tid);
  }
  // Per-thread attribution survives the merge: one trace tid per OS
  // thread that actually ran items (how many run is scheduling-dependent).
  EXPECT_EQ(tids.size(), os_threads.size());
}

TEST(Trace, JsonOutputIsWellFormed) {
  TraceGuard guard;
  metrics::reset();
  {
    trace::Span span("negf", "unit_test_span");
  }
  metrics::add(metrics::Counter::kRgfSolves, 7);
  metrics::observe(metrics::Histogram::kPcgIterationsPerSolve, 12.0);
  const std::string json = trace::to_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"unit_test_span\""), std::string::npos);
  EXPECT_NE(json.find("\"gnrfetCounters\""), std::string::npos);
  EXPECT_NE(json.find("\"rgf_solves\":7"), std::string::npos);
  EXPECT_NE(json.find("\"gnrfetHistograms\""), std::string::npos);
  EXPECT_NE(json.find("\"pcg_iterations_per_solve\""), std::string::npos);
  metrics::reset();
}

TEST(Trace, FlushWritesFileAndClears) {
  const auto dir = std::filesystem::temp_directory_path() / "gnrfet_trace_flush_test";
  std::filesystem::remove_all(dir);
  const std::string path = (dir / "nested" / "trace.json").string();
  TraceGuard guard(path);
  {
    trace::Span span("test", "flushed_span");
  }
  ASSERT_GE(trace::event_count(), 1u);
  trace::flush();
  EXPECT_EQ(trace::event_count(), 0u);
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_TRUE(json_balanced(ss.str()));
  EXPECT_NE(ss.str().find("flushed_span"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Metrics, CounterAndHistogramNamesAreStable) {
  EXPECT_STREQ(metrics::counter_name(metrics::Counter::kGummelIterations),
               "gummel_iterations");
  EXPECT_STREQ(metrics::counter_name(metrics::Counter::kTableCacheHits),
               "table_cache_hits");
  EXPECT_STREQ(metrics::histogram_name(metrics::Histogram::kEnergyPointsPerTransport),
               "energy_points_per_transport");
  EXPECT_EQ(metrics::bucket_lower_bound(0), 0.0);
  EXPECT_EQ(metrics::bucket_lower_bound(1), 1.0);
  EXPECT_EQ(metrics::bucket_lower_bound(4), 8.0);
}

TEST(Metrics, ObserveFillsLog2Buckets) {
  metrics::reset();
  metrics::observe(metrics::Histogram::kGummelIterationsPerBias, 0.5);   // bucket 0
  metrics::observe(metrics::Histogram::kGummelIterationsPerBias, 1.0);   // bucket 1
  metrics::observe(metrics::Histogram::kGummelIterationsPerBias, 5.0);   // bucket 3
  metrics::observe(metrics::Histogram::kGummelIterationsPerBias, 5.5);   // bucket 3
  const auto snap = metrics::snapshot();
  const auto& h =
      snap.histograms[static_cast<size_t>(metrics::Histogram::kGummelIterationsPerBias)];
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 12.0);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 5.5);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[3], 2u);
  metrics::reset();
  EXPECT_EQ(metrics::snapshot().counters[0], 0u);
}

TEST(MetricsParallel, CountersMergeAcrossPoolThreads) {
  metrics::reset();
  ThreadCountGuard threads(4);
  const size_t n = 1000;
  par::parallel_for(n, [&](size_t) {
    metrics::add(metrics::Counter::kRgfSolves);
    metrics::observe(metrics::Histogram::kPcgIterationsPerSolve, 2.0);
  });
  const auto snap = metrics::snapshot();
  EXPECT_EQ(snap.counters[static_cast<size_t>(metrics::Counter::kRgfSolves)], n);
  const auto& h =
      snap.histograms[static_cast<size_t>(metrics::Histogram::kPcgIterationsPerSolve)];
  EXPECT_EQ(h.count, n);
  EXPECT_DOUBLE_EQ(h.sum, 2.0 * static_cast<double>(n));
  metrics::reset();
}

/// A minimal but well-formed device table for serialization tests.
device::DeviceTable tiny_table() {
  device::DeviceTable t;
  t.vg = {0.0, 0.5};
  t.vd = {0.0, 0.25};
  t.current_A = {0.0, 1e-6, 0.0, 2e-6};
  t.charge_C = {1e-19, 2e-19, 3e-19, 4e-19};
  t.band_gap_eV = 0.6;
  return t;
}

TEST(TableWriterParallel, ConcurrentSavesToOnePathLeaveNoTempFiles) {
  const auto dir = std::filesystem::temp_directory_path() / "gnrfet_save_race_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "table.csv").string();
  const device::DeviceTable t = tiny_table();

  ThreadCountGuard threads(8);
  // Many concurrent writers to the same final path: each must stage under
  // a unique temp name (pid + thread id + counter), so every writer's
  // rename lands a complete file and no .tmp.* litter survives.
  par::parallel_for(32, [&](size_t) { device::save_table(t, path, "race-key"); });

  const device::DeviceTable r = device::load_table(path);
  EXPECT_EQ(r.vg, t.vg);
  EXPECT_EQ(r.current_A, t.current_A);
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++files;
    EXPECT_EQ(entry.path().filename().string().find(".tmp."), std::string::npos)
        << "leftover temp file: " << entry.path();
  }
  EXPECT_EQ(files, 1u);
  std::filesystem::remove_all(dir);
}

TEST(TableWriterParallel, ConcurrentFailingSavesLeaveNoTempFiles) {
  // Same race, but every writer's stream write fails mid-file (injected via
  // RLIMIT_FSIZE — chmod tricks do not fail writes for root): each save
  // must clean up its own temp file on the error path, concurrently.
  const auto dir = std::filesystem::temp_directory_path() / "gnrfet_save_fail_race_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "table.csv").string();
  device::DeviceTable t;
  t.vg.resize(100);
  t.vd.resize(40);
  for (size_t i = 0; i < t.vg.size(); ++i) t.vg[i] = 1e-3 * static_cast<double>(i);
  for (size_t i = 0; i < t.vd.size(); ++i) t.vd[i] = 1e-3 * static_cast<double>(i);
  t.current_A.assign(t.vg.size() * t.vd.size(), 1.0 / 3.0);
  t.charge_C.assign(t.vg.size() * t.vd.size(), -1e-19);

  struct rlimit old_limit {};
  ASSERT_EQ(getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  struct rlimit tiny_limit = old_limit;
  tiny_limit.rlim_cur = 4096;  // the table body needs ~280 kB
  void (*old_handler)(int) = std::signal(SIGXFSZ, SIG_IGN);
  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &tiny_limit), 0);

  ThreadCountGuard threads(8);
  std::atomic<int> failures{0};
  par::parallel_for(32, [&](size_t) {
    try {
      device::save_table(t, path, "fail-race-key");
    } catch (const std::runtime_error&) {
      failures.fetch_add(1, std::memory_order_relaxed);
    }
  });
  setrlimit(RLIMIT_FSIZE, &old_limit);
  std::signal(SIGXFSZ, old_handler);

  EXPECT_EQ(failures.load(), 32);
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++files;
    ADD_FAILURE() << "leftover file after failed saves: " << entry.path();
  }
  EXPECT_EQ(files, 0u);
  std::filesystem::remove_all(dir);
}

TEST(CacheDirParallel, DirectoryIsStableUnderConcurrentCalls) {
  const auto dir = std::filesystem::temp_directory_path() / "gnrfet_cache_dir_test";
  std::filesystem::remove_all(dir);
  ::setenv("GNRFET_CACHE_DIR", dir.string().c_str(), 1);
  ThreadCountGuard threads(8);
  std::vector<std::string> results(64);
  par::parallel_for(results.size(), [&](size_t i) { results[i] = cache::directory(); });
  ::unsetenv("GNRFET_CACHE_DIR");
  for (const auto& r : results) EXPECT_EQ(r, dir.string());
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  std::filesystem::remove_all(dir);
  // Default resolution (no override) is memoized: repeated calls agree.
  EXPECT_EQ(cache::directory(), cache::directory());
}

}  // namespace
