#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/constants.hpp"
#include "common/contracts.hpp"
#include "common/env.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "gnr/hamiltonian.hpp"
#include "gnr/lattice.hpp"
#include "gnr/modespace.hpp"
#include "negf/batch_rgf.hpp"
#include "negf/rgf.hpp"
#include "negf/scalar_rgf.hpp"
#include "negf/selfenergy.hpp"
#include "negf/transport.hpp"

namespace {

using namespace gnrfet;

uint64_t fnv1a(const std::vector<double>& v) {
  uint64_t h = 1469598103934665603ull;
  for (const double d : v) {
    unsigned char b[sizeof(double)];
    std::memcpy(b, &d, sizeof(double));
    for (const unsigned char c : b) {
      h ^= c;
      h *= 1099511628211ull;
    }
  }
  return h;
}

std::vector<double> flatten(const std::vector<std::vector<double>>& m) {
  std::vector<double> f;
  for (const auto& row : m) f.insert(f.end(), row.begin(), row.end());
  return f;
}

/// Bitwise double equality: EXPECT_EQ on doubles treats +0.0 == -0.0, but
/// the batch determinism contract is bit-for-bit, signs of zero included.
::testing::AssertionResult bits_eq(const char* a_expr, const char* b_expr, double a, double b) {
  if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a_expr << " = " << a << " (0x" << std::hex << std::bit_cast<uint64_t>(a) << ") vs "
         << b_expr << " = " << b << " (0x" << std::bit_cast<uint64_t>(b) << ")";
}
#define EXPECT_BITS_EQ(a, b) EXPECT_PRED_FORMAT2(bits_eq, a, b)

/// Scoped env override restoring the prior state (mirrors the adaptive
/// suite's GridEnvGuard), parameterized on the variable name.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name), was_set_(common::env_set(name)) {
    if (was_set_) previous_ = common::env_or(name, "");
    if (value) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (was_set_) {
      ::setenv(name_.c_str(), previous_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool was_set_;
  std::string previous_;
};

struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) : old_(par::thread_count()) { par::set_thread_count(n); }
  ~ThreadCountGuard() { par::set_thread_count(old_); }
  int old_;
};

/// Deterministic chain family: alternating SSH-like hoppings with an
/// incommensurate onsite modulation, asymmetric contacts.
negf::ScalarChain make_chain(size_t n, unsigned seed) {
  negf::ScalarChain chain;
  chain.onsite.resize(n);
  chain.hopping.resize(n - 1);
  for (size_t i = 0; i < n; ++i) {
    chain.onsite[i] =
        0.15 * std::sin(0.73 * static_cast<double>(i) + 0.31 * static_cast<double>(seed));
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    chain.hopping[i] = (i % 2 == 0) ? -2.7 : -1.4 - 0.05 * static_cast<double>(seed);
  }
  chain.gamma_left = 0.9 + 0.07 * static_cast<double>(seed);
  chain.gamma_right = 0.6;
  return chain;
}

std::vector<double> make_energies(size_t count, unsigned seed) {
  std::vector<double> e(count);
  for (size_t k = 0; k < count; ++k) {
    e[k] = -1.2 + 2.9 * static_cast<double>(k) / static_cast<double>(count) +
           1e-3 * static_cast<double>(seed);
  }
  return e;
}

/// The fixed mode-space problem behind the PR-5 uniform golden pin
/// (mirrors test_adaptive.cpp's GoldenProblem).
struct GoldenProblem {
  gnr::ModeSet modes = gnr::build_mode_set(12, {2.7, 0.12}, 3);
  std::vector<std::vector<double>> u;
  negf::TransportOptions opts;

  GoldenProblem() {
    const size_t ncol = 32;
    u.assign(ncol, std::vector<double>(12, 0.0));
    for (size_t c = 0; c < ncol; ++c) {
      const double x = static_cast<double>(c) / static_cast<double>(ncol - 1);
      for (size_t j = 0; j < 12; ++j) {
        u[c][j] = -0.3 - 0.4 * x + 0.02 * std::cos(0.7 * static_cast<double>(j));
      }
    }
    opts.mu_drain_eV = -0.4;
    opts.energy_step_eV = 2e-3;
  }
};

TEST(BatchRgf, BitExactVsScalarAcrossChainAndBatchSizes) {
  // The core determinism contract: every lane of the batched kernel is
  // bit-identical to the per-energy scalar solve — all widths 1..9 (one
  // full 8-lane group plus every ragged remainder), chains from the 2-site
  // minimum up past typical device lengths.
  negf::ScalarRgfBatchWorkspace ws;
  negf::ScalarRgfBatchResult out;
  for (const size_t n : {size_t{2}, size_t{3}, size_t{5}, size_t{12}, size_t{33}}) {
    const auto chain = make_chain(n, static_cast<unsigned>(n));
    for (size_t count = 1; count <= 9; ++count) {
      const auto e = make_energies(count, static_cast<unsigned>(count));
      negf::scalar_rgf_solve_batch(chain, e.data(), count, 1e-4, ws, out);
      ASSERT_EQ(out.lanes(), count);
      ASSERT_EQ(out.spectral_left.size(), n * count);
      for (size_t k = 0; k < count; ++k) {
        const auto ref = negf::scalar_rgf_solve(chain, e[k], 1e-4);
        EXPECT_BITS_EQ(out.transmission[k], ref.transmission);
        EXPECT_BITS_EQ(out.transmission_reverse[k], ref.transmission_reverse);
        for (size_t c = 0; c < n; ++c) {
          EXPECT_BITS_EQ(out.spectral_left_row(c)[k], ref.spectral_left[c]);
          EXPECT_BITS_EQ(out.spectral_right_row(c)[k], ref.spectral_right[c]);
        }
      }
    }
  }
}

TEST(BatchRgf, ReverseTransmissionContract) {
  // With contract checks compiled in, transmission_reverse comes from an
  // independent right-connected sweep: reciprocity holds to roundoff but
  // the bits generically differ from the forward value somewhere in a
  // sweep. With checks compiled out both kernels must alias it to
  // `transmission` bit-for-bit.
  const auto chain = make_chain(21, 3);
  const auto e = make_energies(64, 0);
  negf::ScalarRgfBatchWorkspace ws;
  negf::ScalarRgfBatchResult out;
  negf::scalar_rgf_solve_batch(chain, e.data(), e.size(), 1e-4, ws, out);
  size_t bitwise_diffs = 0;
  for (size_t k = 0; k < e.size(); ++k) {
    const auto ref = negf::scalar_rgf_solve(chain, e[k], 1e-4);
    EXPECT_BITS_EQ(out.transmission_reverse[k], ref.transmission_reverse);
#if GNRFET_CHECKS_ENABLED
    const double t = out.transmission[k];
    const double trev = out.transmission_reverse[k];
    EXPECT_LE(std::abs(t - trev), 1e-6 * (t + trev + 1e-9));
    if (std::bit_cast<uint64_t>(t) != std::bit_cast<uint64_t>(trev)) ++bitwise_diffs;
#else
    EXPECT_BITS_EQ(out.transmission_reverse[k], out.transmission[k]);
#endif
  }
#if GNRFET_CHECKS_ENABLED
  // Independently computed, not copied: at least one energy in the sweep
  // must land on different bits.
  EXPECT_GT(bitwise_diffs, 0u);
#endif
}

TEST(BatchRgf, EnvKnobDefaultsOnAndValidates) {
  {
    EnvGuard guard("GNRFET_RGF_BATCH", nullptr);
    EXPECT_TRUE(negf::rgf_batch_enabled());
  }
  {
    EnvGuard guard("GNRFET_RGF_BATCH", "on");
    EXPECT_TRUE(negf::rgf_batch_enabled());
  }
  {
    EnvGuard guard("GNRFET_RGF_BATCH", "off");
    EXPECT_FALSE(negf::rgf_batch_enabled());
  }
  {
    EnvGuard guard("GNRFET_RGF_BATCH", "vectorize-harder");
    EXPECT_THROW(negf::rgf_batch_enabled(), std::invalid_argument);
  }
}

TEST(BatchRgf, RejectsDegenerateInputs) {
  negf::ScalarRgfBatchWorkspace ws;
  negf::ScalarRgfBatchResult out;
  const auto chain = make_chain(4, 1);
  const double e = 0.1;
  EXPECT_THROW(negf::scalar_rgf_solve_batch(chain, &e, 0, 1e-4, ws, out), std::invalid_argument);
  negf::ScalarChain one;
  one.onsite.assign(1, 0.0);
  EXPECT_THROW(negf::scalar_rgf_solve_batch(one, &e, 1, 1e-4, ws, out), std::invalid_argument);
  negf::ScalarChain bad = chain;
  bad.hopping.pop_back();
  EXPECT_THROW(negf::scalar_rgf_solve_batch(bad, &e, 1, 1e-4, ws, out), std::invalid_argument);
}

TEST(BatchRgf, FermiFactorsMatchPerEnergyCalls) {
  const auto e = make_energies(37, 5);
  std::vector<double> f(e.size());
  negf::fermi_factors(e.data(), e.size(), -0.23, constants::kThermalVoltage300K, f.data());
  for (size_t k = 0; k < e.size(); ++k) {
    EXPECT_BITS_EQ(f[k], constants::fermi(e[k] - (-0.23), constants::kThermalVoltage300K));
  }
}

TEST(BatchRgf, RecordsBatchMetrics) {
  const auto chain = make_chain(8, 2);
  const auto e = make_energies(5, 1);
  negf::ScalarRgfBatchWorkspace ws;
  negf::ScalarRgfBatchResult out;
  const auto before = metrics::snapshot();
  negf::scalar_rgf_solve_batch(chain, e.data(), e.size(), 1e-4, ws, out);
  const auto after = metrics::snapshot();
  const auto solves = static_cast<size_t>(metrics::Counter::kRgfBatchSolves);
  const auto width = static_cast<size_t>(metrics::Histogram::kRgfBatchWidth);
  EXPECT_EQ(after.counters[solves] - before.counters[solves], 1u);
  EXPECT_EQ(after.histograms[width].count - before.histograms[width].count, 1u);
  EXPECT_EQ(after.histograms[width].sum - before.histograms[width].sum, 5.0);
}

TEST(BatchRgfRealSpace, BitExactVsPerEnergySolve) {
  // Dense-block variant: rgf_solve_batch must be bit-identical to
  // rgf_solve lane by lane, every width through one ragged group.
  const gnr::Lattice lat = gnr::Lattice::armchair(9, 8, 0.12);
  std::vector<double> onsite(lat.atoms().size());
  for (size_t i = 0; i < onsite.size(); ++i) {
    onsite[i] = 0.05 * std::sin(0.37 * static_cast<double>(i));
  }
  const auto h = gnr::build_hamiltonian(lat, {2.7, 0.12}, onsite);
  const auto sl = negf::wide_band_self_energy(h.diag.front().rows(), 0.9);
  const auto sr = negf::wide_band_self_energy(h.diag.back().rows(), 1.1);
  negf::RgfBatchWorkspace ws;
  std::vector<negf::RgfResult> out;
  for (size_t count = 1; count <= 5; ++count) {
    const auto e = make_energies(count, static_cast<unsigned>(count));
    negf::rgf_solve_batch(h, e.data(), count, 1e-4, sl, sr, ws, out);
    ASSERT_EQ(out.size(), count);
    for (size_t k = 0; k < count; ++k) {
      const auto ref = negf::rgf_solve(h, e[k], 1e-4, sl, sr);
      EXPECT_BITS_EQ(out[k].transmission, ref.transmission);
      ASSERT_EQ(out[k].spectral_left.size(), ref.spectral_left.size());
      for (size_t i = 0; i < ref.spectral_left.size(); ++i) {
        EXPECT_BITS_EQ(out[k].spectral_left[i], ref.spectral_left[i]);
        EXPECT_BITS_EQ(out[k].spectral_right[i], ref.spectral_right[i]);
      }
    }
  }
  EXPECT_THROW(negf::rgf_solve_batch(h, nullptr, 0, 1e-4, sl, sr, ws, out),
               std::invalid_argument);
}

TEST(BatchRgfRealSpace, BlockedMultiplyBitIdenticalToTemplate) {
  // The cache-blocked CMatrix overloads must reproduce the template
  // kernels bit-for-bit, zero-skip rows included.
  for (const size_t n : {size_t{1}, size_t{7}, size_t{18}, size_t{36}, size_t{50}}) {
    linalg::CMatrix a(n, n), b(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if ((i + j) % 5 == 0) continue;  // leave exact zeros for the skip path
        a(i, j) = linalg::cplx(std::sin(0.3 * static_cast<double>(i * n + j)),
                               std::cos(0.7 * static_cast<double>(i + 2 * j)));
        b(i, j) = linalg::cplx(std::cos(0.11 * static_cast<double>(i * n + j)),
                               std::sin(0.51 * static_cast<double>(3 * i + j)));
      }
    }
    linalg::CMatrix blocked, adj;
    linalg::multiply_into(blocked, a, b);  // non-template overload
    linalg::adjoint_into(adj, a);
    const linalg::CMatrix ref = a * b;
    const linalg::CMatrix refadj = a.adjoint();
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        EXPECT_BITS_EQ(blocked(i, j).real(), ref(i, j).real());
        EXPECT_BITS_EQ(blocked(i, j).imag(), ref(i, j).imag());
        EXPECT_BITS_EQ(adj(i, j).real(), refadj(i, j).real());
        EXPECT_BITS_EQ(adj(i, j).imag(), refadj(i, j).imag());
      }
    }
  }
}

TEST(BatchGolden, UniformGoldenPinsHoldWithBatchOnAndOff) {
  // The PR-5 uniform golden pins must hold on both sides of the knob:
  // GNRFET_RGF_BATCH=off is the legacy path by construction, and the
  // batched default must match it bit-for-bit.
  for (const char* knob : {"off", "on"}) {
    EnvGuard batch("GNRFET_RGF_BATCH", knob);
    EnvGuard grid("GNRFET_NEGF_GRID", "uniform");
    GoldenProblem p;
    const auto sol = negf::solve_mode_space(p.modes, p.u, p.opts);
    EXPECT_EQ(sol.current_A, 0x1.12e6388bc3c3cp-17) << "knob=" << knob;
    EXPECT_EQ(sol.current_drain_A, 0x1.12e6388bc3c3bp-17) << "knob=" << knob;
    EXPECT_EQ(sol.total_net_electrons, 0x1.44d1522dd0c06p+1) << "knob=" << knob;
    EXPECT_EQ(sol.energies_eV.size(), 613u) << "knob=" << knob;
    EXPECT_EQ(fnv1a(sol.energies_eV), 0x6b11046d548574f5ull) << "knob=" << knob;
    EXPECT_EQ(fnv1a(sol.transmission), 0x71b5bb6f38984168ull) << "knob=" << knob;
    EXPECT_EQ(fnv1a(flatten(sol.electrons)), 0xc8e0b403a2f0723eull) << "knob=" << knob;
    EXPECT_EQ(fnv1a(flatten(sol.holes)), 0xc3839b255526531eull) << "knob=" << knob;
  }
}

TEST(BatchGolden, AdaptiveSolutionInvariantUnderBatchKnob) {
  // The adaptive integrator batches the Simpson stencil evaluations per
  // refinement round; the knob must not move a single bit of the result.
  GoldenProblem p;
  EnvGuard grid("GNRFET_NEGF_GRID", "adaptive");
  std::vector<uint64_t> hashes;
  std::vector<double> currents;
  for (const char* knob : {"off", "on"}) {
    EnvGuard batch("GNRFET_RGF_BATCH", knob);
    const auto sol = negf::solve_mode_space(p.modes, p.u, p.opts);
    hashes.push_back(fnv1a(sol.transmission));
    hashes.push_back(fnv1a(sol.energies_eV));
    hashes.push_back(fnv1a(flatten(sol.electrons)));
    currents.push_back(sol.current_A);
    currents.push_back(sol.current_drain_A);
  }
  EXPECT_EQ(hashes[0], hashes[3]);
  EXPECT_EQ(hashes[1], hashes[4]);
  EXPECT_EQ(hashes[2], hashes[5]);
  EXPECT_BITS_EQ(currents[0], currents[2]);
  EXPECT_BITS_EQ(currents[1], currents[3]);
}

TEST(BatchRgfParallel, AdaptiveBatchedBitIdenticalAcrossThreadCounts) {
  // Thread-determinism contract for the batched adaptive path (also the
  // TSan coverage of the batched hot loop via the CI -R 'Parallel' run):
  // GNRFET_THREADS=1/4/16 must produce identical bits.
  GoldenProblem p;
  EnvGuard batch("GNRFET_RGF_BATCH", "on");
  EnvGuard grid("GNRFET_NEGF_GRID", "adaptive");
  std::vector<double> currents;
  std::vector<uint64_t> hashes;
  for (const int threads : {1, 4, 16}) {
    ThreadCountGuard tg(threads);
    const auto sol = negf::solve_mode_space(p.modes, p.u, p.opts);
    currents.push_back(sol.current_A);
    hashes.push_back(fnv1a(sol.transmission));
    hashes.push_back(fnv1a(flatten(sol.electrons)));
  }
  EXPECT_BITS_EQ(currents[0], currents[1]);
  EXPECT_BITS_EQ(currents[0], currents[2]);
  EXPECT_EQ(hashes[0], hashes[2]);
  EXPECT_EQ(hashes[0], hashes[4]);
  EXPECT_EQ(hashes[1], hashes[3]);
  EXPECT_EQ(hashes[1], hashes[5]);
}

TEST(BatchRgfParallel, UniformBatchedBitIdenticalAcrossThreadCounts) {
  GoldenProblem p;
  EnvGuard batch("GNRFET_RGF_BATCH", "on");
  EnvGuard grid("GNRFET_NEGF_GRID", "uniform");
  std::vector<double> currents;
  std::vector<uint64_t> hashes;
  for (const int threads : {1, 4}) {
    ThreadCountGuard tg(threads);
    const auto sol = negf::solve_mode_space(p.modes, p.u, p.opts);
    currents.push_back(sol.current_A);
    hashes.push_back(fnv1a(sol.transmission));
  }
  EXPECT_BITS_EQ(currents[0], currents[1]);
  EXPECT_EQ(hashes[0], hashes[1]);
}

}  // namespace
