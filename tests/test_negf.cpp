#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "gnr/bandstructure.hpp"
#include "gnr/hamiltonian.hpp"
#include "gnr/lattice.hpp"
#include "gnr/modespace.hpp"
#include "negf/energygrid.hpp"
#include "negf/rgf.hpp"
#include "negf/scalar_rgf.hpp"
#include "negf/selfenergy.hpp"
#include "negf/transport.hpp"

namespace {

using namespace gnrfet;
using gnr::Lattice;
using gnr::TightBindingParams;

TEST(EnergyGrid, TrapezoidIntegratesLinear) {
  const auto g = negf::make_energy_grid(0.0, 1.0, 0.01);
  double integral = 0.0;
  for (size_t i = 0; i < g.points.size(); ++i) integral += g.weights[i] * (2.0 * g.points[i]);
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(SelfEnergy, WideBandBroadeningIsGammaIdentity) {
  const auto sig = negf::wide_band_self_energy(4, 0.8);
  const auto gam = negf::broadening(sig);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(gam(i, j).real(), i == j ? 0.8 : 0.0, 1e-14);
      EXPECT_NEAR(gam(i, j).imag(), 0.0, 1e-14);
    }
  }
}

TEST(SelfEnergy, SanchoRubioMatchesAnalytic1DChain) {
  // Semi-infinite 1D chain, onsite 0, hopping -t: surface GF
  // g(E) = (E - sqrt(E^2 - 4t^2)) / (2 t^2) (retarded branch).
  const double t = 1.0;
  linalg::CMatrix h00(1, 1), h01(1, 1);
  h01(0, 0) = -t;
  for (double e : {-1.5, -0.5, 0.0, 0.7, 1.9}) {
    const auto g = negf::sancho_rubio_surface_gf(linalg::cplx(e, 1e-9), h00, h01);
    const linalg::cplx z(e, 1e-9);
    const linalg::cplx root = std::sqrt(z * z - 4.0 * t * t);
    // Retarded branch: Im g < 0 inside the band.
    linalg::cplx expected = (z - root) / (2.0 * t * t);
    if (expected.imag() > 1e-6) expected = (z + root) / (2.0 * t * t);
    EXPECT_NEAR(std::abs(g(0, 0) - expected), 0.0, 1e-4) << "E=" << e;  // 1e-6 Im(E) floor
  }
}

TEST(Rgf, MatchesDenseReference) {
  const Lattice lat = Lattice::armchair(9, 8, 0.12);
  std::vector<double> onsite(lat.atoms().size());
  for (size_t i = 0; i < onsite.size(); ++i) {
    onsite[i] = 0.05 * std::sin(0.37 * static_cast<double>(i));
  }
  const auto h = gnr::build_hamiltonian(lat, {2.7, 0.12}, onsite);
  const auto sl = negf::wide_band_self_energy(h.diag.front().rows(), 0.9);
  const auto sr = negf::wide_band_self_energy(h.diag.back().rows(), 1.1);
  for (double e : {-0.6, -0.1, 0.4, 1.2}) {
    const auto fast = negf::rgf_solve(h, e, 1e-4, sl, sr);
    const auto ref = negf::dense_reference_solve(h, e, 1e-4, sl, sr);
    EXPECT_NEAR(fast.transmission, ref.transmission, 1e-8 * std::max(1.0, ref.transmission));
    ASSERT_EQ(fast.spectral_left.size(), ref.spectral_left.size());
    for (size_t k = 0; k < fast.spectral_left.size(); ++k) {
      EXPECT_NEAR(fast.spectral_left[k], ref.spectral_left[k], 1e-7);
      EXPECT_NEAR(fast.spectral_right[k], ref.spectral_right[k], 1e-7);
    }
  }
}

TEST(Rgf, TransmissionSymmetricUnderContactSwap) {
  const Lattice lat = Lattice::armchair(12, 6, 0.12);
  const auto h = gnr::build_hamiltonian(lat, {2.7, 0.12});
  const auto s1 = negf::wide_band_self_energy(h.diag.front().rows(), 1.0);
  const auto s2 = negf::wide_band_self_energy(h.diag.back().rows(), 1.0);
  const auto r = negf::rgf_solve(h, 0.45, 1e-4, s1, s2);
  // Reverse the device: same ribbon mirrored; T must be identical.
  gnr::BlockTridiagonal hr;
  for (size_t i = h.diag.size(); i-- > 0;) hr.diag.push_back(h.diag[i]);
  for (size_t i = h.upper.size(); i-- > 0;) hr.upper.push_back(h.upper[i].adjoint());
  const auto rr = negf::rgf_solve(hr, 0.45, 1e-4, s2, s1);
  EXPECT_NEAR(r.transmission, rr.transmission, 1e-9);
}

TEST(ScalarRgf, MatchesBlockRgfOnUniformChain) {
  // A 1-orbital chain as a BlockTridiagonal with 1x1 blocks must agree
  // with the scalar fast path exactly.
  const size_t n = 30;
  negf::ScalarChain chain;
  chain.onsite.assign(n, 0.0);
  chain.hopping.assign(n - 1, 0.0);
  for (size_t i = 0; i < n; ++i) chain.onsite[i] = 0.1 * std::cos(0.3 * static_cast<double>(i));
  for (size_t i = 0; i + 1 < n; ++i) chain.hopping[i] = (i % 2 == 0) ? -2.7 : -1.4;
  chain.gamma_left = 1.0;
  chain.gamma_right = 0.7;

  gnr::BlockTridiagonal h;
  for (size_t i = 0; i < n; ++i) {
    linalg::CMatrix d(1, 1);
    d(0, 0) = chain.onsite[i];
    h.diag.push_back(d);
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    linalg::CMatrix u(1, 1);
    u(0, 0) = chain.hopping[i];
    h.upper.push_back(u);
  }
  const auto sl = negf::wide_band_self_energy(1, chain.gamma_left);
  const auto sr = negf::wide_band_self_energy(1, chain.gamma_right);
  for (double e : {-1.0, 0.0, 0.9, 2.2}) {
    const auto a = negf::scalar_rgf_solve(chain, e, 1e-4);
    const auto b = negf::rgf_solve(h, e, 1e-4, sl, sr);
    EXPECT_NEAR(a.transmission, b.transmission, 1e-10);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(a.spectral_left[i], b.spectral_left[i], 1e-9);
      EXPECT_NEAR(a.spectral_right[i], b.spectral_right[i], 1e-9);
    }
  }
}

TEST(ScalarRgf, TransmissionBoundedByOne) {
  // A single scalar channel cannot transmit more than one quantum.
  negf::ScalarChain chain;
  chain.onsite.assign(40, 0.0);
  chain.hopping.assign(39, -2.0);
  chain.gamma_left = chain.gamma_right = 1.5;
  for (double e = -3.0; e <= 3.0; e += 0.1) {
    const auto r = negf::scalar_rgf_solve(chain, e, 1e-6);
    EXPECT_LE(r.transmission, 1.0 + 1e-9);
    EXPECT_GE(r.transmission, -1e-12);
  }
}

TEST(Transport, ZeroBiasZeroCurrent) {
  const auto modes = gnr::build_mode_set(12, {2.7, 0.12}, 2);
  const size_t ncol = 24;
  std::vector<std::vector<double>> u(ncol, std::vector<double>(12, 0.0));
  negf::TransportOptions opt;
  opt.mu_source_eV = 0.0;
  opt.mu_drain_eV = 0.0;
  opt.energy_step_eV = 5e-3;
  const auto sol = negf::solve_mode_space(modes, u, opt);
  EXPECT_NEAR(sol.current_A, 0.0, 1e-15);
}

TEST(Transport, ChargeNeutralAtMidgapAlignment) {
  // With both contacts at the mid-gap of a flat ribbon, electron and hole
  // populations cancel by particle-hole symmetry.
  const auto modes = gnr::build_mode_set(12, {2.7, 0.0}, 3);
  const size_t ncol = 30;
  std::vector<std::vector<double>> u(ncol, std::vector<double>(12, 0.0));
  negf::TransportOptions opt;
  opt.energy_step_eV = 2e-3;
  const auto sol = negf::solve_mode_space(modes, u, opt);
  EXPECT_NEAR(sol.total_net_electrons, 0.0, 0.05);
}

TEST(Transport, GatePotentialInducesElectrons) {
  // Pushing the bands down (negative U) fills the conduction band.
  const auto modes = gnr::build_mode_set(12, {2.7, 0.12}, 3);
  const size_t ncol = 30;
  std::vector<std::vector<double>> u(ncol, std::vector<double>(12, -0.5));
  // Keep contact ends near zero like a real SBFET.
  for (size_t j = 0; j < 12; ++j) {
    u[0][j] = u[ncol - 1][j] = 0.0;
    u[1][j] = u[ncol - 2][j] = -0.25;
  }
  negf::TransportOptions opt;
  opt.energy_step_eV = 2e-3;
  const auto sol = negf::solve_mode_space(modes, u, opt);
  EXPECT_GT(sol.total_net_electrons, 0.5);
}

TEST(Transport, CurrentIncreasesWithDrainBias) {
  const auto modes = gnr::build_mode_set(12, {2.7, 0.12}, 3);
  const size_t ncol = 30;
  std::vector<std::vector<double>> u(ncol, std::vector<double>(12, -0.3));
  negf::TransportOptions opt;
  opt.energy_step_eV = 2e-3;
  double prev = 0.0;
  for (double vd : {0.1, 0.3, 0.5}) {
    opt.mu_drain_eV = -vd;
    // Linear potential drop along the channel, like the real device.
    for (size_t c = 0; c < ncol; ++c) {
      const double x = static_cast<double>(c) / static_cast<double>(ncol - 1);
      for (size_t j = 0; j < 12; ++j) u[c][j] = -0.3 - vd * x;
    }
    const auto sol = negf::solve_mode_space(modes, u, opt);
    EXPECT_GT(sol.current_A, prev);
    prev = sol.current_A;
  }
  // On-state current should be in the micro-ampere range (paper Fig. 2).
  EXPECT_GT(prev, 1e-7);
  EXPECT_LT(prev, 1e-4);
}

TEST(Transport, ModeSpaceMatchesRealSpaceIV) {
  // Integration-level check: flat-potential ribbon, same contacts, both
  // solvers should give close currents (uncoupled mode space is exact for
  // transverse-uniform potentials up to the edge-relaxation coupling).
  const TightBindingParams p{2.7, 0.12};
  const int n = 9;
  const int slices = 12;
  const Lattice lat = Lattice::armchair(n, slices, p.edge_delta);
  std::vector<double> onsite(lat.atoms().size(), -0.45);
  negf::TransportOptions opt;
  opt.mu_drain_eV = -0.3;
  opt.energy_step_eV = 2e-3;
  const auto real = negf::solve_real_space(lat, p, onsite, opt);

  const auto modes = gnr::build_mode_set(n, p, n);
  std::vector<std::vector<double>> u(static_cast<size_t>(2 * slices),
                                     std::vector<double>(static_cast<size_t>(n), -0.45));
  const auto mode = negf::solve_mode_space(modes, u, opt);
  EXPECT_NEAR(mode.current_A, real.current_A,
              0.15 * std::abs(real.current_A) + 1e-9);
  EXPECT_NEAR(mode.total_net_electrons, real.total_net_electrons,
              0.15 * std::abs(real.total_net_electrons) + 0.05);
}

TEST(Transport, IdealRibbonTransmissionStaircase) {
  // With semi-infinite ideal-ribbon leads (Sancho-Rubio), T(E) equals the
  // number of subbands at E. Check plateau values at a few energies for
  // N=9 without edge relaxation (clean analytic subband edges).
  const TightBindingParams p{2.7, 0.0};
  const int n = 9;
  const Lattice lat = Lattice::armchair(n, 8, p.edge_delta);
  const auto h = gnr::build_hamiltonian(lat, p);
  const auto cell = gnr::unit_cell_hamiltonian(n, p);

  const auto modes = gnr::build_mode_set(n, p, n);
  // Subband edges sorted ascending.
  std::vector<double> edges;
  for (const auto& m : modes.modes) edges.push_back(m.band_edge_eV());
  std::sort(edges.begin(), edges.end());

  for (double e : {edges[0] + 0.05, edges[1] + 0.05}) {
    // Count expected propagating subbands at energy e.
    int expected = 0;
    for (const auto& m : modes.modes) {
      if (e > m.band_edge_eV() && e < m.band_top_eV()) ++expected;
    }
    const auto gs_r = negf::sancho_rubio_surface_gf(linalg::cplx(e, 1e-7), cell.h00, cell.h01);
    const auto gs_l =
        negf::sancho_rubio_surface_gf(linalg::cplx(e, 1e-7), cell.h00, cell.h01.adjoint());
    // Device made of whole unit cells so lead self-energies attach cleanly.
    gnr::BlockTridiagonal hsup;
    const size_t nc = h.num_blocks() / 2;
    for (size_t c = 0; c < nc; ++c) {
      hsup.diag.push_back(cell.h00);
      if (c + 1 < nc) hsup.upper.push_back(cell.h01);
    }
    const linalg::CMatrix sig_r = cell.h01 * (gs_r * cell.h01.adjoint());
    const linalg::CMatrix sig_l = cell.h01.adjoint() * (gs_l * cell.h01);
    const auto r = negf::rgf_solve(hsup, e, 1e-7, sig_l, sig_r);
    EXPECT_NEAR(r.transmission, expected, 0.02) << "E=" << e;
  }
}

}  // namespace
