#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/cache.hpp"
#include "common/constants.hpp"
#include "common/csv.hpp"
#include "common/env.hpp"
#include "common/strings.hpp"

namespace {

using namespace gnrfet;

TEST(Constants, FermiLimits) {
  EXPECT_NEAR(constants::fermi(0.0), 0.5, 1e-12);
  EXPECT_NEAR(constants::fermi(1.0), 0.0, 1e-15);
  EXPECT_NEAR(constants::fermi(-1.0), 1.0, 1e-15);
  // f(x) + f(-x) = 1.
  for (double x : {0.01, 0.05, 0.2}) {
    EXPECT_NEAR(constants::fermi(x) + constants::fermi(-x), 1.0, 1e-12);
  }
}

TEST(Constants, FermiDerivativeIsNegativeAndPeaked) {
  EXPECT_LT(constants::fermi_derivative(0.0), 0.0);
  EXPECT_GT(std::abs(constants::fermi_derivative(0.0)),
            std::abs(constants::fermi_derivative(0.1)));
}

TEST(Constants, CurrentPrefactorIsConductanceQuantum) {
  // 2e^2/h = 77.48 uS.
  EXPECT_NEAR(constants::kCurrentPrefactor, 77.48e-6, 0.05e-6);
}

TEST(Strings, SplitAndTrim) {
  const auto parts = strings::split("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(strings::trim(parts[1]), "b");
  EXPECT_EQ(strings::trim("  \t x \n"), "x");
  EXPECT_EQ(strings::trim("   "), "");
}

TEST(Strings, HashIsStableAndDistinguishes) {
  EXPECT_EQ(strings::hash_hex("abc"), strings::hash_hex("abc"));
  EXPECT_NE(strings::hash_hex("abc"), strings::hash_hex("abd"));
  EXPECT_EQ(strings::hash_hex("abc").size(), 16u);
}

TEST(Strings, Format) {
  EXPECT_EQ(strings::format("%d-%s", 42, "x"), "42-x");
}

TEST(Csv, RoundTrip) {
  csv::Table t({"a", "b"});
  t.set_meta("key", "value with = sign");
  t.add_row({1.5, -2.0});
  t.add_row({3.25, 1e-19});
  const std::string path = std::filesystem::temp_directory_path() / "gnrfet_csv_test.csv";
  t.save(path);
  const csv::Table r = csv::Table::load(path);
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(r.at(0, "a"), 1.5);
  EXPECT_DOUBLE_EQ(r.at(1, "b"), 1e-19);
  EXPECT_EQ(r.meta("key"), "value with = sign");
  std::filesystem::remove(path);
}

TEST(Csv, RejectsBadRows) {
  csv::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), std::invalid_argument);
  EXPECT_THROW(t.at(0, "nope"), std::out_of_range);
}

TEST(Cache, PathIsDeterministic) {
  const std::string p1 = cache::path_for("x", "payload");
  const std::string p2 = cache::path_for("x", "payload");
  const std::string p3 = cache::path_for("x", "payload2");
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, p3);
}

/// Scoped set/unset of one environment variable, restoring on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value)
      : name_(name), was_set_(common::env_set(name)) {
    if (was_set_) previous_ = common::env_or(name, "");
    if (value) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (was_set_) {
      ::setenv(name_, previous_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool was_set_;
  std::string previous_;
};

constexpr const char* kEnvName = "GNRFET_TEST_POSITIVE_INT";

TEST(Env, GetPositiveIntParsesWellFormedValues) {
  {
    EnvGuard g(kEnvName, "4");
    EXPECT_EQ(common::env::get_positive_int(kEnvName, 7), 4);
  }
  {
    EnvGuard g(kEnvName, "2147483647");  // INT_MAX is still representable
    EXPECT_EQ(common::env::get_positive_int(kEnvName, 7), 2147483647);
  }
}

TEST(Env, GetPositiveIntFallsBackWhenUnsetOrEmpty) {
  {
    EnvGuard g(kEnvName, nullptr);
    EXPECT_EQ(common::env::get_positive_int(kEnvName, 7), 7);
  }
  {
    EnvGuard g(kEnvName, "");
    EXPECT_EQ(common::env::get_positive_int(kEnvName, 7), 7);
  }
}

TEST(Env, GetPositiveIntRejectsMalformedValues) {
  // Unlike the lenient env_int (which silently falls back), a set-but-bad
  // value is a typed error naming the variable and value.
  for (const char* bad : {"0", "-3", "+3", "3 ", " 3", "3x", "abc", "1e3", "0x10",
                          "2147483648", "99999999999999999999"}) {
    EnvGuard g(kEnvName, bad);
    try {
      common::env::get_positive_int(kEnvName, 7);
      FAIL() << "accepted malformed value '" << bad << "'";
    } catch (const common::env::EnvError& e) {
      EXPECT_EQ(e.name(), kEnvName);
      EXPECT_EQ(e.value(), bad);
      EXPECT_NE(std::string(e.what()).find(kEnvName), std::string::npos);
    }
  }
}

TEST(Env, ClearRemovesVariable) {
  EnvGuard g(kEnvName, "42");
  EXPECT_TRUE(common::env_set(kEnvName));
  common::env_clear(kEnvName);
  EXPECT_FALSE(common::env_set(kEnvName));
}

}  // namespace
