#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numbers>

#include "common/constants.hpp"
#include "gnr/bandstructure.hpp"
#include "gnr/hamiltonian.hpp"
#include "gnr/lattice.hpp"
#include "gnr/modespace.hpp"
#include "linalg/eig.hpp"

namespace {

using namespace gnrfet;
using gnr::Lattice;
using gnr::TightBindingParams;

TEST(Lattice, AtomCountMatchesUnitCell) {
  // 2N atoms per 2-slice period.
  for (int n : {9, 12, 15, 18}) {
    const Lattice lat = Lattice::armchair(n, 10, 0.0);
    EXPECT_EQ(lat.atoms().size(), static_cast<size_t>(5 * 2 * n));
  }
}

TEST(Lattice, WidthMatchesPaperValues) {
  // N=9 -> ~1 nm (paper quotes 1.1 nm including edge extent), steps of
  // 3.7 Angstrom per +3 in N.
  const Lattice l9 = Lattice::armchair(9, 4, 0.0);
  EXPECT_NEAR(l9.width_nm(), 0.984, 0.01);
  const Lattice l12 = Lattice::armchair(12, 4, 0.0);
  EXPECT_NEAR(l12.width_nm() - l9.width_nm(), 0.369, 0.005);
}

TEST(Lattice, CoordinationNumbers) {
  const Lattice lat = Lattice::armchair(12, 12, 0.0);
  std::vector<int> coord(lat.atoms().size(), 0);
  for (const auto& b : lat.bonds()) {
    coord[b.a]++;
    coord[b.b]++;
  }
  // Interior atoms have 3 neighbours, edge/end atoms fewer, none more.
  int n3 = 0;
  for (size_t i = 0; i < coord.size(); ++i) {
    EXPECT_LE(coord[i], 3);
    EXPECT_GE(coord[i], 1);
    if (coord[i] == 3) ++n3;
  }
  EXPECT_GT(n3, static_cast<int>(coord.size()) / 2);
}

TEST(Lattice, EdgeBondsGetRelaxationScale) {
  const double delta = 0.12;
  const Lattice lat = Lattice::armchair(9, 8, delta);
  int scaled = 0;
  for (const auto& b : lat.bonds()) {
    if (b.scale != 1.0) {
      EXPECT_NEAR(b.scale, 1.0 + delta, 1e-12);
      const auto& atoms = lat.atoms();
      const bool edge0 = atoms[b.a].dimer_line == 0 && atoms[b.b].dimer_line == 0;
      const bool edgeN = atoms[b.a].dimer_line == 8 && atoms[b.b].dimer_line == 8;
      EXPECT_TRUE(edge0 || edgeN);
      ++scaled;
    }
  }
  // One edge dimer per edge line per period on each edge.
  EXPECT_GT(scaled, 0);
}

TEST(Lattice, SlicesForLength) {
  const int ns = Lattice::slices_for_length(15.0);
  EXPECT_GE(ns * 1.5 * constants::kCarbonBond_nm, 15.0 - 1e-9);
  EXPECT_LT((ns - 1) * 1.5 * constants::kCarbonBond_nm, 15.0);
}

TEST(Hamiltonian, IsHermitianAndTracelessWithoutPotential) {
  const Lattice lat = Lattice::armchair(12, 8, 0.12);
  const auto h = gnr::build_hamiltonian(lat, {2.7, 0.12});
  const auto dense = h.to_dense();
  const auto herm = linalg::hermitian_part(dense);
  linalg::CMatrix diff = dense;
  diff -= herm;
  EXPECT_LT(linalg::frobenius_norm(diff), 1e-12);
  EXPECT_NEAR(std::abs(dense.trace()), 0.0, 1e-12);
}

TEST(Hamiltonian, OnsitePotentialAppearsOnDiagonal) {
  const Lattice lat = Lattice::armchair(9, 6, 0.0);
  std::vector<double> onsite(lat.atoms().size());
  for (size_t i = 0; i < onsite.size(); ++i) onsite[i] = 0.01 * static_cast<double>(i);
  const auto h = gnr::build_hamiltonian(lat, {2.7, 0.0}, onsite);
  double trace = 0.0;
  for (const auto& d : h.diag) trace += d.trace().real();
  double expect = 0.0;
  for (const double u : onsite) expect += u;
  EXPECT_NEAR(trace, expect, 1e-9);
}

TEST(BandStructure, MetallicFamilyWithoutEdgeRelaxation) {
  // N = 3q+2 ribbons are gapless in the bare pz model.
  EXPECT_LT(gnr::band_gap(11, {2.7, 0.0}), 0.02);
  EXPECT_LT(gnr::band_gap(14, {2.7, 0.0}), 0.02);
}

TEST(BandStructure, EdgeRelaxationOpensSmallGapIn3qPlus2) {
  const double g = gnr::band_gap(11, {2.7, 0.12});
  EXPECT_GT(g, 0.02);
  EXPECT_LT(g, 0.4);
}

TEST(BandStructure, GapDecreasesWithWidthForPaperFamilies) {
  const TightBindingParams p{2.7, 0.12};
  const double g9 = gnr::band_gap(9, p);
  const double g12 = gnr::band_gap(12, p);
  const double g15 = gnr::band_gap(15, p);
  const double g18 = gnr::band_gap(18, p);
  EXPECT_GT(g9, g12);
  EXPECT_GT(g12, g15);
  EXPECT_GT(g15, g18);
  // N=12 gap ~0.6 eV so that VT ~ Eg/2 ~ 0.3 V as extracted in Fig. 2(b).
  EXPECT_NEAR(g12, 0.6, 0.1);
  // N=9: large enough for Ion/Ioff ~ 1000x (Fig. 4).
  EXPECT_GT(g9, 0.7);
  // N=18: small gap -> leaky device (Fig. 4).
  EXPECT_LT(g18, 0.45);
}

TEST(BandStructure, ParticleHoleSymmetry) {
  const auto bs = gnr::compute_bands(12, {2.7, 0.12}, 16);
  for (const auto& bands : bs.bands) {
    const size_t n = bands.size();
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(bands[i], -bands[n - 1 - i], 1e-8);
    }
  }
}

TEST(ModeSpace, MatchesAnalyticSshDispersionWithoutEdgeRelaxation) {
  // Without edge relaxation the mode decomposition is exact: the positive
  // real-space bands at each reduced-zone k equal the set
  // { sqrt(t^2 + b_p^2 + 2 t b_p cos(1.5 aCC k)), p = 1..N } with
  // b_p = 2 t cos(p pi / (N+1)) (signed).
  const double t = 2.7;
  const int n = 12;
  const auto bs = gnr::compute_bands(n, {t, 0.0}, 9);
  for (size_t ik = 0; ik < bs.k.size(); ++ik) {
    std::vector<double> analytic;
    for (int p = 1; p <= n; ++p) {
      const double b = 2.0 * t * std::cos(p * std::numbers::pi / (n + 1));
      const double c = std::cos(bs.k[ik] * 1.5 * constants::kCarbonBond_nm);
      const double e = std::sqrt(std::max(0.0, t * t + b * b + 2.0 * t * b * c));
      analytic.push_back(e);
      analytic.push_back(-e);
    }
    std::sort(analytic.begin(), analytic.end());
    ASSERT_EQ(analytic.size(), bs.bands[ik].size());
    for (size_t i = 0; i < analytic.size(); ++i) {
      EXPECT_NEAR(analytic[i], bs.bands[ik][i], 1e-8) << "k index " << ik << " band " << i;
    }
  }
}

TEST(ModeSpace, DegeneracySumMatchesAtomCount) {
  // The reduced mode set must carry N/2 states per atomic column, the same
  // as the real lattice (each column holds ~N/2 atoms).
  for (int n : {9, 12, 15, 18}) {
    const auto modes = gnr::build_mode_set(n, {2.7, 0.12}, n);
    double s = 0.0;
    for (const auto& m : modes.modes) s += m.degeneracy;
    EXPECT_NEAR(s, n / 2.0, 1e-12) << "N=" << n;
  }
}

TEST(ModeSpace, EdgeCorrectedGapCloseToRealSpace) {
  // With edge relaxation the uncoupled mode space is approximate; the gap
  // should still track the real-space gap within ~10%.
  const TightBindingParams p{2.7, 0.12};
  for (int n : {9, 12, 15, 18}) {
    const auto modes = gnr::build_mode_set(n, p, 2);
    const double g_mode = modes.band_gap_eV();
    const double g_real = gnr::band_gap(n, p);
    EXPECT_NEAR(g_mode, g_real, 0.1 * g_real + 0.02) << "N=" << n;
  }
}

TEST(ModeSpace, WeightsAreNormalized) {
  const auto modes = gnr::build_mode_set(15, {2.7, 0.12}, 4);
  for (const auto& m : modes.modes) {
    double s = 0.0;
    for (const double w : m.weight) s += w;
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(ModeSpace, ModesSortedByBandEdge) {
  const auto modes = gnr::build_mode_set(12, {2.7, 0.12}, 6);
  for (size_t i = 1; i < modes.modes.size(); ++i) {
    EXPECT_GE(modes.modes[i].band_edge_eV(), modes.modes[i - 1].band_edge_eV());
  }
}

}  // namespace
