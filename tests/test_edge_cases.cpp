#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "circuit/measure.hpp"
#include "common/cache.hpp"
#include "explore/contours.hpp"
#include "negf/energygrid.hpp"
#include "synthetic_device.hpp"

namespace {

using namespace gnrfet;

TEST(EnergyGridEdge, DegenerateWindowClampsToMinimalGrid) {
  // lo >= hi no longer throws: the degenerate-window contract clamps to a
  // minimal 3-point grid one step wide around the window midpoint.
  const auto g = negf::make_energy_grid(1.0, 1.0, 0.01);
  ASSERT_EQ(g.points.size(), 3u);
  EXPECT_NEAR(g.points.front(), 1.0 - 0.005, 1e-12);
  EXPECT_NEAR(g.points.back(), 1.0 + 0.005, 1e-12);
  // Inverted windows clamp around their midpoint the same way.
  const auto gi = negf::make_energy_grid(2.0, 1.0, 0.01);
  ASSERT_EQ(gi.points.size(), 3u);
  EXPECT_NEAR(gi.points.front(), 1.5 - 0.005, 1e-12);
  EXPECT_NEAR(gi.points.back(), 1.5 + 0.005, 1e-12);
}

TEST(EnergyGridEdge, StepLargerThanWindowStillYieldsThreePoints) {
  // A window narrower than one step widens to exactly one step; total
  // trapezoid weight equals the (widened) window width.
  const auto g = negf::make_energy_grid(0.0, 1e-3, 0.01);
  ASSERT_EQ(g.points.size(), 3u);
  EXPECT_LT(g.points.front(), g.points.back());
  double total_w = 0.0;
  for (const double w : g.weights) total_w += w;
  EXPECT_NEAR(total_w, g.points.back() - g.points.front(), 1e-15);
}

TEST(EnergyGridEdge, NearEmptyWindowIntegratesToNearZero) {
  // Near-empty windows are valid grids whose integrals are ~window-sized.
  const auto g = negf::make_energy_grid(0.5, 0.5 + 1e-9, 1e-10);
  ASSERT_GE(g.points.size(), 3u);
  double integral = 0.0;
  for (size_t i = 0; i < g.points.size(); ++i) integral += g.weights[i] * 1.0;
  EXPECT_NEAR(integral, g.points.back() - g.points.front(), 1e-18);
}

TEST(EnergyGridEdge, RejectsNonPositiveOrNonFiniteStep) {
  EXPECT_THROW(negf::make_energy_grid(0.0, 1.0, -0.1), std::invalid_argument);
  EXPECT_THROW(negf::make_energy_grid(0.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(negf::make_energy_grid(0.0, std::nan(""), 0.01), std::invalid_argument);
}

TEST(EnergyGridEdge, WindowCoversFullyOccupiedStatesUnderGateOverdrive) {
  // Deep gate overdrive pulls the local mid-gap below both chemical
  // potentials; the window must still include those fully occupied
  // conduction states (they carry net charge).
  const auto w = negf::charge_window(/*min_midgap=*/-0.9, /*max_midgap=*/0.0,
                                     /*mu_s=*/0.0, /*mu_d=*/-0.25, 0.0259, 8.1);
  EXPECT_LT(w.lo, -0.9);
  EXPECT_GT(w.hi, 0.25);
}

TEST(ContoursEdge, SaddleCellEmitsTwoSegments) {
  // Checkerboard cell: values 0,1 / 1,0 with level 0.5 is the classic
  // marching-squares saddle.
  const std::vector<double> xs = {0.0, 1.0}, ys = {0.0, 1.0};
  const std::vector<double> f = {0.0, 1.0, 1.0, 0.0};
  const auto segs = explore::contour_segments(xs, ys, f, 0.5);
  EXPECT_EQ(segs.size(), 2u);
}

TEST(MeasureEdge, CrossingTimesEmptyForFlatWave) {
  const std::vector<double> t = {0.0, 1.0, 2.0};
  const std::vector<double> v = {0.2, 0.2, 0.2};
  EXPECT_TRUE(circuit::crossing_times(t, v, 0.5, true).empty());
  EXPECT_EQ(circuit::oscillation_frequency(t, v, 0.5), 0.0);
}

TEST(MeasureEdge, AverageAfterRespectsWindow) {
  const std::vector<double> t = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> v = {0.0, 0.0, 4.0, 4.0};
  // From t=2 the waveform is flat at 4.
  EXPECT_NEAR(circuit::average_after(t, v, 2.0), 4.0, 1e-12);
}

TEST(CacheEdge, EnvironmentOverrideWins) {
  setenv("GNRFET_CACHE_DIR", "/tmp/gnrfet-cache-test", 1);
  const std::string dir = cache::directory();
  EXPECT_EQ(dir, "/tmp/gnrfet-cache-test");
  unsetenv("GNRFET_CACHE_DIR");
}

TEST(SyntheticModel, ChargeDerivativesGiveSaneCapacitances) {
  // The capacitance-extraction convention of Sec. 3 must produce positive
  // CGD,i and CGS,i in the on-state.
  const auto n = synthetic::synthetic_fet(model::Polarity::kN, 0.1);
  const auto q = n.charge(0.4, 0.3);
  const double cgd = std::abs(q.d_dvds);
  const double cgs = std::abs(q.d_dvgs) - cgd;
  EXPECT_GT(cgs, 0.0);
  EXPECT_LT(cgs, 1e-15);
  EXPECT_GE(cgd, 0.0);
}

TEST(PulseWaveform, RampIsPiecewiseLinear) {
  const auto w = circuit::pulse_waveform(0.0, 1.0, 10e-12, 4e-12);
  EXPECT_DOUBLE_EQ(w(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w(10e-12), 0.0);
  EXPECT_NEAR(w(12e-12), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(w(20e-12), 1.0);
}

}  // namespace
