#pragma once

#include <cmath>
#include <memory>

#include "device/tablegen.hpp"
#include "model/intrinsic_fet.hpp"

/// Synthetic, analytically smooth ambipolar device table used by the model
/// and circuit tests: hermetic (no dependency on the NEGF table cache) and
/// fast, while reproducing the structural properties the models rely on —
/// ambipolarity with minimum near VG = VD/2, I = 0 at VD = 0, and the
/// source/drain swap symmetry of the physical device.
namespace gnrfet::synthetic {

inline double synthetic_current(double vg, double vd) {
  const auto branch = [](double x) {
    const double s = 0.06;
    const double v = s * std::log1p(std::exp(x / s));
    return v * v;
  };
  const double sat = std::tanh(vd / 0.12);
  // Electron branch rises with vg, hole branch with (vd - vg): symmetric
  // under vg -> vd - vg like the ambipolar SBFET.
  return 4e-5 * sat * (branch(vg - 0.3) + branch(vd - vg - 0.3) + 1e-4);
}

inline double synthetic_charge(double vg, double vd) {
  // Smooth channel charge, negative (electrons) at high vg.
  return -2e-18 * (vg - 0.5 * vd);
}

inline device::DeviceTable synthetic_table() {
  device::DeviceTable t;
  const size_t ng = 41, nd = 31;
  for (size_t i = 0; i < ng; ++i) t.vg.push_back(-0.25 + 1.25 * double(i) / (ng - 1));
  for (size_t i = 0; i < nd; ++i) t.vd.push_back(0.75 * double(i) / (nd - 1));
  t.band_gap_eV = 0.6;
  for (size_t ig = 0; ig < ng; ++ig) {
    for (size_t id = 0; id < nd; ++id) {
      t.current_A.push_back(synthetic_current(t.vg[ig], t.vd[id]));
      t.charge_C.push_back(synthetic_charge(t.vg[ig], t.vd[id]));
    }
  }
  return t;
}

inline model::IntrinsicFet synthetic_fet(model::Polarity pol, double offset = 0.0) {
  static const model::FetTables tables = model::make_fet_tables(synthetic_table());
  return model::IntrinsicFet(tables.current_A, tables.charge_C, pol, offset);
}

}  // namespace gnrfet::synthetic
