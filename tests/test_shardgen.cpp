#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "device/tablegen.hpp"
#include "service/shardgen.hpp"
#include "service/tableservice.hpp"

namespace {

using namespace gnrfet;

uint64_t counter_total(metrics::Counter c) {
  return metrics::snapshot().counters[static_cast<size_t>(c)];
}

struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) : old_(par::thread_count()) { par::set_thread_count(n); }
  ~ThreadCountGuard() { par::set_thread_count(old_); }
  int old_;
};

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value)
      : name_(name), was_set_(common::env_set(name)) {
    if (was_set_) previous_ = common::env_or(name, "");
    if (value) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (was_set_) {
      ::setenv(name_, previous_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool was_set_;
  std::string previous_;
};

/// Tiny real device: full NEGF-Poisson generation in well under a second.
device::DeviceSpec tiny_spec() {
  device::DeviceSpec spec;
  spec.n_index = 12;
  spec.channel_length_nm = 6.0;
  spec.grid_step_nm = 0.35;
  spec.lateral_margin_nm = 2.0;
  spec.num_modes = 2;
  return spec;
}

device::TableGenOptions tiny_opts(size_t vg_points = 2, size_t vd_points = 2) {
  device::TableGenOptions opts;
  opts.vg_points = vg_points;
  opts.vd_points = vd_points;
  opts.vg_max = 0.5;
  opts.vd_max = 0.5;
  opts.solve.energy_step_eV = 5e-3;
  opts.solve.gummel_tolerance_V = 3e-3;
  opts.use_cache = false;  // every call generates; no disk interplay
  return opts;
}

void expect_tables_bit_identical(const device::DeviceTable& a, const device::DeviceTable& b) {
  ASSERT_EQ(a.vg, b.vg);
  ASSERT_EQ(a.vd, b.vd);
  ASSERT_EQ(a.current_A, b.current_A);  // operator== on doubles: bit-level intent
  ASSERT_EQ(a.charge_C, b.charge_C);
  ASSERT_EQ(a.band_gap_eV, b.band_gap_eV);
}

TEST(TableShard, ShardedMatchesUnshardedBitForBit) {
  const device::DeviceSpec spec = tiny_spec();
  const device::TableGenOptions opts = tiny_opts();
  const device::DeviceTable reference = device::generate_device_table(spec, opts);

  service::ShardOptions shard;
  shard.workers = 2;
  service::ShardScheduler scheduler(shard);
  const device::DeviceTable sharded = scheduler.generate(spec, opts);
  expect_tables_bit_identical(reference, sharded);

  // The pool is reused across generations: a second table through the same
  // scheduler (different spec) must also match its unsharded twin.
  device::DeviceSpec spec2 = tiny_spec();
  spec2.n_index = 9;
  expect_tables_bit_identical(device::generate_device_table(spec2, opts),
                              scheduler.generate(spec2, opts));
}

TEST(TableShard, ExecWorkerModeMatchesInProcessBitForBit) {
  // The gen_tables binary's `--worker` entry (dup2'd stdin/stdout, execv
  // via /proc/self/exe) must serve shards bit-identically to the
  // fork-entry path. Locate the tool relative to this test binary.
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  ASSERT_GT(n, 0);
  buf[n] = '\0';
  const std::filesystem::path gen_tables =
      std::filesystem::path(buf).parent_path().parent_path() / "tools" / "gen_tables";
  if (!std::filesystem::exists(gen_tables)) {
    GTEST_SKIP() << "gen_tables not built at " << gen_tables;
  }

  const device::DeviceSpec spec = tiny_spec();
  const device::TableGenOptions opts = tiny_opts();
  service::ShardOptions shard;
  shard.workers = 2;
  shard.worker_argv = {gen_tables.string(), "--worker"};
  service::ShardScheduler scheduler(shard);
  expect_tables_bit_identical(device::generate_device_table(spec, opts),
                              scheduler.generate(spec, opts));
}

TEST(TableShard, WorkerCrashMidShardRetriesBitIdentically) {
  const device::DeviceSpec spec = tiny_spec();
  const device::TableGenOptions opts = tiny_opts(3, 2);
  const device::DeviceTable reference = device::generate_device_table(spec, opts);

  // SIGKILL the first dispatched worker the instant its shard lands: the
  // scheduler must requeue the column onto a surviving/respawned worker
  // and still assemble the exact reference bits.
  std::atomic<bool> killed{false};
  service::ShardOptions shard;
  shard.workers = 2;
  shard.on_dispatch = [&killed](pid_t pid, size_t) {
    bool expected = false;
    if (killed.compare_exchange_strong(expected, true)) ::kill(pid, SIGKILL);
  };
  service::ShardScheduler scheduler(shard);

  const uint64_t retries_before = counter_total(metrics::Counter::kTableShardRetries);
  const device::DeviceTable sharded = scheduler.generate(spec, opts);
  const uint64_t retries = counter_total(metrics::Counter::kTableShardRetries) - retries_before;

  EXPECT_TRUE(killed.load());
  EXPECT_GE(retries, 1u);
  expect_tables_bit_identical(reference, sharded);
}

TEST(TableShard, WorkersEnvResolvesAndValidates) {
  {
    EnvGuard workers("GNRFET_TABLE_WORKERS", "3");
    service::ShardScheduler scheduler;
    EXPECT_EQ(scheduler.workers(), 3);
  }
  {
    EnvGuard workers("GNRFET_TABLE_WORKERS", nullptr);
    service::ShardScheduler scheduler;
    EXPECT_EQ(scheduler.workers(), 4);  // documented default
  }
  {
    EnvGuard workers("GNRFET_TABLE_WORKERS", "2cores");
    EXPECT_THROW(service::ShardScheduler{}, common::env::EnvError);
  }
  {
    // An explicit option wins over the environment.
    EnvGuard workers("GNRFET_TABLE_WORKERS", "7");
    service::ShardOptions opts;
    opts.workers = 2;
    service::ShardScheduler scheduler(opts);
    EXPECT_EQ(scheduler.workers(), 2);
  }
}

TEST(TableShard, TableServiceShardSwitchIsByteIdentical) {
  const service::TableRequest req{tiny_spec(), tiny_opts()};

  EnvGuard workers("GNRFET_TABLE_WORKERS", "2");
  std::shared_ptr<const device::DeviceTable> off_table, on_table;
  {
    EnvGuard shard("GNRFET_TABLE_SHARD", "off");
    service::TableService svc;
    off_table = svc.query(req);
  }
  {
    EnvGuard shard("GNRFET_TABLE_SHARD", "on");
    service::TableService svc;
    on_table = svc.query(req);
  }
  ASSERT_TRUE(off_table && on_table);
  expect_tables_bit_identical(*off_table, *on_table);
}

TEST(TableShard, TableServiceRejectsMalformedShardSwitch) {
  EnvGuard shard("GNRFET_TABLE_SHARD", "sometimes");
  EXPECT_THROW(service::TableService{}, common::env::EnvError);
}

TEST(TableShardParallel, ConcurrentColdCallersCoalesceOntoOneShardedGeneration) {
  // Four threads hitting the same cold key through a sharded service must
  // coalesce onto a single worker-pool generation (single-flight), and
  // every caller gets the shared entry.
  ThreadCountGuard guard(4);
  EnvGuard shard("GNRFET_TABLE_SHARD", "on");
  EnvGuard workers("GNRFET_TABLE_WORKERS", "2");
  service::TableService svc;
  const service::TableRequest req{tiny_spec(), tiny_opts()};

  std::vector<std::shared_ptr<const device::DeviceTable>> results(4);
  par::parallel_for(4, [&](size_t i) { results[i] = svc.query(req); });

  const service::TableService::Stats st = svc.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.coalesced + st.hits, 3u);
  for (const auto& r : results) {
    ASSERT_TRUE(r);
    EXPECT_EQ(r.get(), results[0].get());  // one shared immutable entry
  }
}

}  // namespace
