// Tests for the static-analysis tooling shared by gnrfet_lint and
// gnrfet_analyze: the comment/string stripper edge cases, and a rejecting
// fixture for every analyzer pass — proving each rule actually fires, since
// the analyzer running clean on the repo is indistinguishable from the
// analyzer not looking.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/analysis_passes.hpp"
#include "tools/source_scan.hpp"

namespace {

using gnrfet::analysis::Allowlist;
using gnrfet::analysis::check_against_baseline;
using gnrfet::analysis::check_determinism;
using gnrfet::analysis::check_layering;
using gnrfet::analysis::CoverageReport;
using gnrfet::analysis::extract_functions;
using gnrfet::analysis::Finding;
using gnrfet::analysis::LayerConfig;
using gnrfet::analysis::measure_contract_coverage;
using gnrfet::analysis::parse_allowlist;
using gnrfet::analysis::parse_baseline_json;
using gnrfet::analysis::parse_layer_config;
using gnrfet::analysis::SourceFile;
using gnrfet::analysis::SubsystemCoverage;
using gnrfet::scan::strip_comments_and_strings;

size_t count_lines(const std::string& s) {
  return static_cast<size_t>(std::count(s.begin(), s.end(), '\n'));
}

// ---------------------------------------------------------------------------
// Stripper
// ---------------------------------------------------------------------------

TEST(AnalyzeStrip, RawStringContentIsBlanked) {
  const std::string in = "auto s = R\"(int hidden = 1; // not a comment)\"; int kept = 2;";
  const std::string out = strip_comments_and_strings(in);
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("kept"), std::string::npos);
  EXPECT_EQ(out.size(), in.size());
}

TEST(AnalyzeStrip, RawStringDelimiterGuardsEmbeddedQuoteParen) {
  // The )" inside must not close a d-char-sequence raw string.
  const std::string in = "auto s = R\"ab(x )\" still_inside)ab\"; int after = 1;";
  const std::string out = strip_comments_and_strings(in);
  EXPECT_EQ(out.find("still_inside"), std::string::npos);
  EXPECT_NE(out.find("after"), std::string::npos);
}

TEST(AnalyzeStrip, RawStringEncodingPrefixes) {
  for (const char* prefix : {"u8", "u", "U", "L"}) {
    const std::string in = std::string("auto s = ") + prefix + "R\"(hidden)\"; int kept;";
    const std::string out = strip_comments_and_strings(in);
    EXPECT_EQ(out.find("hidden"), std::string::npos) << prefix;
    EXPECT_NE(out.find("kept"), std::string::npos) << prefix;
  }
}

TEST(AnalyzeStrip, IdentifierEndingInRIsNotARawStringPrefix) {
  // FooR"(x)" is a macro/identifier followed by an ordinary string "(x)".
  const std::string in = "FooR\"(x)\" tail;";
  const std::string out = strip_comments_and_strings(in);
  EXPECT_NE(out.find("FooR"), std::string::npos);
  EXPECT_NE(out.find("tail"), std::string::npos);
  EXPECT_EQ(out.find('x'), std::string::npos);
}

TEST(AnalyzeStrip, RawStringPreservesLineStructure) {
  const std::string in = "one R\"(a\nb\nc)\" two;\nint three;\n";
  const std::string out = strip_comments_and_strings(in);
  EXPECT_EQ(count_lines(out), count_lines(in));
  EXPECT_NE(out.find("three"), std::string::npos);
}

TEST(AnalyzeStrip, EscapedQuotesStayInsideLiterals) {
  const std::string in = "auto s = \"a\\\"b\"; int kept; auto c = '\\''; int also;";
  const std::string out = strip_comments_and_strings(in);
  EXPECT_NE(out.find("kept"), std::string::npos);
  EXPECT_NE(out.find("also"), std::string::npos);
  EXPECT_EQ(out.find('a'), out.find("auto"));  // only the `auto`s survive
}

TEST(AnalyzeStrip, LineCommentContinuationSwallowsNextLine) {
  const std::string in = "int a; // comment \\\nstill_comment\nint b;\n";
  const std::string out = strip_comments_and_strings(in);
  EXPECT_EQ(out.find("still_comment"), std::string::npos);
  EXPECT_NE(out.find("int b"), std::string::npos);
  EXPECT_EQ(count_lines(out), count_lines(in));
}

TEST(AnalyzeStrip, EscapedNewlineInStringKeepsLineCount) {
  const std::string in = "auto s = \"abc\\\ndef\"; int kept;\n";
  const std::string out = strip_comments_and_strings(in);
  EXPECT_EQ(count_lines(out), count_lines(in));
  EXPECT_EQ(out.find("def"), std::string::npos);
  EXPECT_NE(out.find("kept"), std::string::npos);
}

TEST(AnalyzeStrip, BlockCommentsAndPlainStringsStillBlank) {
  const std::string in = "int a; /* hidden\nhidden */ int b = f(\"hidden\");";
  const std::string out = strip_comments_and_strings(in);
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("int b"), std::string::npos);
  EXPECT_EQ(count_lines(out), count_lines(in));
}

// ---------------------------------------------------------------------------
// Pass 1: layering
// ---------------------------------------------------------------------------

LayerConfig layers_ab() {
  LayerConfig cfg;
  std::string error;
  EXPECT_TRUE(parse_layer_config("a:\nb: a\n", cfg, error)) << error;
  return cfg;
}

TEST(AnalyzeLayering, UpwardIncludeIsRejected) {
  const std::vector<SourceFile> files = {
      {"src/a/one.hpp", "#include \"b/two.hpp\"\n"},
      {"src/b/two.hpp", "int y;\n"},
      {"src/b/three.hpp", "#include \"a/one.hpp\"\n"},  // downward: legal
  };
  const std::vector<Finding> findings = check_layering(files, layers_ab());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/a/one.hpp");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_NE(findings[0].message.find("a -> b"), std::string::npos);
}

TEST(AnalyzeLayering, IncludeCycleIsRejectedWithChain) {
  const std::vector<SourceFile> files = {
      {"src/a/x.hpp", "#include \"a/y.hpp\"\n"},
      {"src/a/y.hpp", "#include \"a/z.hpp\"\n"},
      {"src/a/z.hpp", "#include \"a/x.hpp\"\n"},
  };
  LayerConfig cfg;
  std::string error;
  ASSERT_TRUE(parse_layer_config("a:\n", cfg, error)) << error;
  const std::vector<Finding> findings = check_layering(files, cfg);
  ASSERT_EQ(findings.size(), 1u);  // one cycle, reported once
  EXPECT_NE(findings[0].message.find("include cycle"), std::string::npos);
  EXPECT_NE(findings[0].message.find("a/x.hpp"), std::string::npos);
  EXPECT_NE(findings[0].message.find("a/y.hpp"), std::string::npos);
  EXPECT_NE(findings[0].message.find("a/z.hpp"), std::string::npos);
}

TEST(AnalyzeLayering, UndeclaredModuleIsRejected) {
  const std::vector<SourceFile> files = {{"src/zz/f.hpp", "int x;\n"}};
  const std::vector<Finding> findings = check_layering(files, layers_ab());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("not declared"), std::string::npos);
}

TEST(AnalyzeLayering, CommentedIncludeDoesNotCountAsEdge) {
  const std::vector<SourceFile> files = {
      {"src/a/one.hpp", "// #include \"b/two.hpp\"\nint x;\n"},
      {"src/b/two.hpp", "int y;\n"},
  };
  EXPECT_TRUE(check_layering(files, layers_ab()).empty());
}

TEST(AnalyzeLayering, ConfigRejectsUnknownDepAndCycles) {
  LayerConfig cfg;
  std::string error;
  EXPECT_FALSE(parse_layer_config("a: ghost\n", cfg, error));
  EXPECT_NE(error.find("ghost"), std::string::npos);
  EXPECT_FALSE(parse_layer_config("a: b\nb: a\n", cfg, error));
  EXPECT_NE(error.find("cyclic"), std::string::npos);
  EXPECT_FALSE(parse_layer_config("a:\na: \n", cfg, error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pass 2: determinism
// ---------------------------------------------------------------------------

std::vector<Finding> run_determinism(const std::string& path, const std::string& content,
                                     const std::string& allowlist_text = "") {
  Allowlist allowlist;
  std::string error;
  EXPECT_TRUE(parse_allowlist(allowlist_text, allowlist, error)) << error;
  return check_determinism({{path, content}}, allowlist);
}

TEST(AnalyzeDeterminism, UnorderedContainerIsRejected) {
  const auto findings =
      run_determinism("src/model/x.cpp", "#include <unordered_map>\nstd::unordered_map<int, int> m;\n");
  ASSERT_EQ(findings.size(), 2u);  // the include line and the use
  EXPECT_EQ(findings[0].rule, "unordered-container");
  EXPECT_EQ(findings[1].line, 2u);
}

TEST(AnalyzeDeterminism, ParallelStlIsRejected) {
  const auto findings = run_determinism(
      "src/linalg/x.cpp", "#include <execution>\ndouble r = std::reduce(v.begin(), v.end());\n");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "parallel-stl");
  EXPECT_EQ(findings[1].rule, "parallel-stl");
}

TEST(AnalyzeDeterminism, WallClockIsRejectedOutsideCommon) {
  const std::string content = "long t = clock();\n";
  const auto findings = run_determinism("src/model/x.cpp", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "wall-clock");
  // The same call inside src/common/ (the trace/metrics home) is fine.
  EXPECT_TRUE(run_determinism("src/common/x.cpp", content).empty());
}

TEST(AnalyzeDeterminism, SteadyClockTypeIsRejectedOutsideCommon) {
  const auto findings = run_determinism(
      "src/negf/x.cpp", "auto t0 = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "wall-clock");
}

TEST(AnalyzeDeterminism, LoopFpAccumulationIsRejected) {
  const std::string content =
      "double total(const double* w, int n) {\n"
      "  double acc = 0.0;\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    acc += w[i];\n"
      "  }\n"
      "  return acc;\n"
      "}\n";
  const auto findings = run_determinism("src/negf/x.cpp", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "fp-accumulation");
  EXPECT_EQ(findings[0].line, 4u);
  EXPECT_NE(findings[0].message.find("'acc'"), std::string::npos);
  // The finding's suggested allowlist entry silences exactly this site.
  EXPECT_TRUE(
      run_determinism("src/negf/x.cpp", content, "src/negf/x.cpp fp-accumulation acc # ok\n")
          .empty());
  // Outside negf/linalg the rule does not apply.
  EXPECT_TRUE(run_determinism("src/device/x.cpp", content).empty());
}

TEST(AnalyzeDeterminism, BracelessLoopAccumulationIsRejected) {
  const auto findings = run_determinism(
      "src/linalg/x.cpp",
      "double s = 0.0;\nvoid f(int n) {\n  for (int i = 0; i < n; ++i) s += 1.0;\n}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "fp-accumulation");
}

TEST(AnalyzeDeterminism, NonScalarAndNonLoopAccumulationAreFine) {
  // Element updates, member updates, int accumulators, and straight-line
  // `+=` are all outside the rule.
  const std::string content =
      "void f(std::vector<double>& v, int n) {\n"
      "  double x = 1.0;\n"
      "  x += 2.0;\n"
      "  int count = 0;\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    v[i] += 1.0;\n"
      "    count += 1;\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(run_determinism("src/linalg/x.cpp", content).empty());
}

TEST(AnalyzeDeterminism, AllowlistParserRejectsMalformedLines) {
  Allowlist allowlist;
  std::string error;
  EXPECT_FALSE(parse_allowlist("just-a-path fp-accumulation\n", allowlist, error));
  EXPECT_FALSE(parse_allowlist("a b c d e\n", allowlist, error));
  EXPECT_TRUE(parse_allowlist("# comment only\n\np r t # why\n", allowlist, error)) << error;
  EXPECT_TRUE(allowlist.contains("p", "r", "t"));
  EXPECT_FALSE(allowlist.contains("p", "r", "other"));
}

// ---------------------------------------------------------------------------
// Pass 4: contract coverage
// ---------------------------------------------------------------------------

TEST(AnalyzeContracts, FunctionExtractionHandlesCommonShapes) {
  const std::string content =
      "namespace x {\n"
      "int add(int a, int b) {\n"
      "  if (a > b) { return a; }\n"
      "  for (int i = 0; i < b; ++i) { a += 1; }\n"
      "  return a + b;\n"
      "}\n"
      "struct S {\n"
      "  S(int v) : v_(v), w_{v} {}\n"
      "  int get() const { return v_; }\n"
      "  void locked() GNRFET_REQUIRES(mu_) { v_ = 0; }\n"
      "  int v_, w_;\n"
      "};\n"
      "}  // namespace x\n";
  const auto fns = extract_functions(content);
  std::vector<std::string> names;
  for (const auto& fn : fns) names.push_back(fn.name);
  std::sort(names.begin(), names.end());
  const std::vector<std::string> expected = {"S", "add", "get", "locked"};
  EXPECT_EQ(names, expected);
}

TEST(AnalyzeContracts, CoverageCountsContractsPerFunction) {
  const std::string content =
      "double checked(double x) {\n"
      "  GNRFET_REQUIRE(\"negf\", \"finite\", x > 0, \"bad\");\n"
      "  return x;\n"
      "}\n"
      "double bare(double x) { return x; }\n";
  const CoverageReport report = measure_contract_coverage({{"src/negf/a.cpp", content}});
  ASSERT_EQ(report.subsystems.count("negf"), 1u);
  const SubsystemCoverage& sub = report.subsystems.at("negf");
  EXPECT_EQ(sub.files, 1u);
  EXPECT_EQ(sub.contracts, 1u);
  EXPECT_EQ(sub.functions, 2u);
  EXPECT_EQ(sub.functions_with_contracts, 1u);
  ASSERT_EQ(report.uncovered.at("negf").size(), 1u);
  EXPECT_NE(report.uncovered.at("negf")[0].find("bare"), std::string::npos);
}

TEST(AnalyzeContracts, JsonRoundTrips) {
  const CoverageReport report = measure_contract_coverage(
      {{"src/negf/a.cpp", "void f() { GNRFET_ENSURE(\"negf\", \"x\", true, \"m\"); }\n"},
       {"src/linalg/b.cpp", "int g() { return 1; }\n"}});
  const std::string json = gnrfet::analysis::coverage_to_json(report, false);
  std::map<std::string, SubsystemCoverage> parsed;
  std::string error;
  ASSERT_TRUE(parse_baseline_json(json, parsed, error)) << error;
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.at("negf").contracts, 1u);
  EXPECT_EQ(parsed.at("negf").functions_with_contracts, 1u);
  EXPECT_EQ(parsed.at("linalg").functions, 1u);
  EXPECT_EQ(parsed.at("linalg").contracts, 0u);
}

TEST(AnalyzeContracts, BaselineRegressionIsRejected) {
  const CoverageReport report = measure_contract_coverage(
      {{"src/negf/a.cpp", "void f() { GNRFET_REQUIRE(\"negf\", \"x\", true, \"m\"); }\n"}});
  // Baseline remembers two contracts and two covered functions: regression.
  std::map<std::string, SubsystemCoverage> baseline;
  baseline["negf"] = {1, 1, 2, 2, 2};
  const std::vector<Finding> findings = check_against_baseline(report, baseline);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "contract-coverage");
  EXPECT_NE(findings[0].message.find("lost contracts"), std::string::npos);
  EXPECT_NE(findings[1].message.find("fewer functions"), std::string::npos);
}

TEST(AnalyzeContracts, NewAndVanishedSubsystemsRequireBaselineUpdate) {
  const CoverageReport report =
      measure_contract_coverage({{"src/negf/a.cpp", "void f() {}\n"}});
  std::map<std::string, SubsystemCoverage> baseline;
  baseline["poisson"] = {1, 1, 0, 1, 0};
  const std::vector<Finding> findings = check_against_baseline(report, baseline);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].message.find("no longer under src/"), std::string::npos);
  EXPECT_NE(findings[1].message.find("not in the baseline"), std::string::npos);
}

TEST(AnalyzeContracts, MatchingBaselineIsClean) {
  const std::vector<SourceFile> files = {
      {"src/negf/a.cpp", "void f() { GNRFET_CHECK_FINITE(\"negf\", \"x\", 1.0); }\n"}};
  const CoverageReport report = measure_contract_coverage(files);
  std::map<std::string, SubsystemCoverage> baseline;
  std::string error;
  ASSERT_TRUE(parse_baseline_json(gnrfet::analysis::coverage_to_json(report, false), baseline,
                                  error))
      << error;
  EXPECT_TRUE(check_against_baseline(report, baseline).empty());
}

}  // namespace
