#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/subprocess.hpp"

namespace {

using namespace gnrfet;
namespace sp = common::subprocess;

struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) : old_(par::thread_count()) { par::set_thread_count(n); }
  ~ThreadCountGuard() { par::set_thread_count(old_); }
  int old_;
};

TEST(Subprocess, FrameWriterReaderRoundTrip) {
  sp::FrameWriter w;
  w.u8(7);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.f64(-1.5e-300);
  w.vec_f64({0.0, 1.0 / 3.0, -2.5, 6.02214076e23});
  w.str("hello, shard");

  sp::FrameReader r(w.frame());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.f64(), -1.5e-300);  // bit-exact by construction
  const std::vector<double> v = r.vec_f64();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[1], 1.0 / 3.0);
  EXPECT_EQ(r.str(), "hello, shard");
  EXPECT_TRUE(r.done());
}

TEST(Subprocess, FrameReaderThrowsOnUnderrun) {
  sp::FrameWriter w;
  w.u32(5);
  sp::FrameReader r(w.frame());
  r.u32();
  EXPECT_THROW(r.u64(), std::runtime_error);   // past the end
  sp::FrameReader r2(w.frame());
  EXPECT_THROW(r2.str(), std::runtime_error);  // length 5 but no bytes follow
}

TEST(Subprocess, FrameReaderRejectsHugeEmbeddedLength) {
  // A corrupt count must fail the bounds check, not wrap the n*8 multiply
  // into a passing one.
  sp::FrameWriter w;
  w.u64(uint64_t{1} << 61);
  sp::FrameReader r(w.frame());
  EXPECT_THROW(r.vec_f64(), std::runtime_error);
}

TEST(Subprocess, FrameIoOverPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  sp::FrameWriter w;
  w.str("ping");
  w.vec_f64({1.25, -2.5});
  ASSERT_TRUE(sp::write_frame(fds[1], w.frame()));
  sp::Frame got;
  ASSERT_TRUE(sp::read_frame(fds[0], got));
  sp::FrameReader r(got);
  EXPECT_EQ(r.str(), "ping");
  EXPECT_EQ(r.vec_f64(), (std::vector<double>{1.25, -2.5}));
  ::close(fds[1]);
  // Clean EOF at a frame boundary reads as false, not an exception.
  EXPECT_FALSE(sp::read_frame(fds[0], got));
  ::close(fds[0]);
}

TEST(Subprocess, ForkEntryEchoWorker) {
  sp::Worker w = sp::Worker::spawn([](int request_fd, int response_fd) {
    sp::Frame frame;
    while (sp::read_frame(request_fd, frame)) {
      if (!sp::write_frame(response_fd, frame)) return 1;
    }
    return 0;
  });
  ASSERT_TRUE(w.valid());
  EXPECT_TRUE(w.running());
  for (int i = 0; i < 3; ++i) {
    sp::FrameWriter req;
    req.i32(i * 100);
    req.str("echo");
    ASSERT_TRUE(w.send(req.frame()));
    sp::Frame resp;
    ASSERT_TRUE(w.recv(resp));
    sp::FrameReader r(resp);
    EXPECT_EQ(r.i32(), i * 100);
    EXPECT_EQ(r.str(), "echo");
  }
  w.close_request();  // EOF: the loop exits cleanly
  const int status = w.wait();
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_FALSE(w.running());
}

TEST(Subprocess, ExecWorkerServesStdinStdout) {
  // /bin/cat copies stdin to stdout verbatim, so a frame round-trips
  // through a genuinely exec'd process.
  sp::Worker w = sp::Worker::spawn_exec({"/bin/cat"});
  ASSERT_TRUE(w.valid());
  sp::FrameWriter req;
  req.str("through exec");
  ASSERT_TRUE(w.send(req.frame()));
  sp::Frame resp;
  ASSERT_TRUE(w.recv(resp));
  sp::FrameReader r(resp);
  EXPECT_EQ(r.str(), "through exec");
  w.close_request();
  const int status = w.wait();
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(Subprocess, CrashIsDetectedAndSendRecvFail) {
  sp::Worker w = sp::Worker::spawn([](int request_fd, int) {
    sp::Frame frame;
    while (sp::read_frame(request_fd, frame)) {
    }  // never responds
    return 0;
  });
  ASSERT_TRUE(w.running());
  w.kill_now();
  const int status = w.wait();
  EXPECT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  EXPECT_FALSE(w.running());
  // A dead peer is an errno-level condition, never a SIGPIPE: send
  // reports false and recv sees EOF.
  sp::FrameWriter req;
  req.u8(1);
  EXPECT_FALSE(w.send(req.frame()));
  sp::Frame resp;
  EXPECT_FALSE(w.recv(resp));
}

TEST(Subprocess, PoolRespawnsDeadWorkers) {
  std::atomic<int> spawned{0};
  sp::WorkerPool pool(2, [&spawned] {
    ++spawned;
    return sp::Worker::spawn([](int request_fd, int response_fd) {
      sp::Frame frame;
      while (sp::read_frame(request_fd, frame)) {
        if (!sp::write_frame(response_fd, frame)) return 1;
      }
      return 0;
    });
  });
  EXPECT_EQ(pool.size(), 2u);
  pool.ensure_full();
  EXPECT_EQ(spawned.load(), 2);
  pool.ensure_full();  // everyone alive: no new spawns
  EXPECT_EQ(spawned.load(), 2);

  pool.at(0).kill_now();
  pool.at(0).wait();
  pool.ensure_full();
  EXPECT_EQ(spawned.load(), 3);
  EXPECT_TRUE(pool.at(0).running());
  EXPECT_TRUE(pool.at(1).running());

  pool.respawn(1);
  EXPECT_EQ(spawned.load(), 4);
  EXPECT_TRUE(pool.at(1).running());
}

TEST(SubprocessParallel, WorkersServeConcurrentThreads) {
  // Four threads, each owning a fork-entry echo worker spawned while the
  // parent's thread pool is live: exercises the fork-in-threaded-process
  // path under TSan and proves channel isolation between workers.
  ThreadCountGuard guard(4);
  std::atomic<int> failures{0};
  par::parallel_for(4, [&](size_t t) {
    sp::Worker w = sp::Worker::spawn([](int request_fd, int response_fd) {
      par::pin_inline();  // a forked child must never touch the parent pool
      sp::Frame frame;
      while (sp::read_frame(request_fd, frame)) {
        sp::FrameReader r(frame);
        sp::FrameWriter out;
        out.u64(r.u64() * 2);
        if (!sp::write_frame(response_fd, out.frame())) return 1;
      }
      return 0;
    });
    for (uint64_t i = 0; i < 16; ++i) {
      sp::FrameWriter req;
      req.u64(t * 1000 + i);
      if (!w.send(req.frame())) {
        ++failures;
        return;
      }
      sp::Frame resp;
      if (!w.recv(resp)) {
        ++failures;
        return;
      }
      sp::FrameReader r(resp);
      if (r.u64() != (t * 1000 + i) * 2) ++failures;
    }
    w.close_request();
    w.wait();
  });
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
