#include <gtest/gtest.h>

#include <random>

#include "linalg/dense.hpp"
#include "linalg/eig.hpp"
#include "linalg/lu.hpp"
#include "linalg/pcg.hpp"
#include "linalg/sparse.hpp"

namespace {

using gnrfet::linalg::CMatrix;
using gnrfet::linalg::cplx;
using gnrfet::linalg::DMatrix;

CMatrix random_matrix(size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  CMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) m(i, j) = cplx(d(rng), d(rng));
  }
  return m;
}

CMatrix random_hermitian(size_t n, unsigned seed) {
  CMatrix a = random_matrix(n, seed);
  return gnrfet::linalg::hermitian_part(a);
}

TEST(Dense, MultiplyIdentity) {
  const CMatrix a = random_matrix(7, 1);
  const CMatrix i = CMatrix::identity(7);
  const CMatrix ai = a * i;
  for (size_t r = 0; r < 7; ++r) {
    for (size_t c = 0; c < 7; ++c) {
      EXPECT_NEAR(std::abs(ai(r, c) - a(r, c)), 0.0, 1e-14);
    }
  }
}

TEST(Dense, AdjointIsConjugateTranspose) {
  const CMatrix a = random_matrix(5, 2);
  const CMatrix ad = a.adjoint();
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      EXPECT_EQ(ad(r, c), std::conj(a(c, r)));
    }
  }
}

TEST(Dense, ShapeMismatchThrows) {
  CMatrix a(3, 3), b(4, 4);
  EXPECT_THROW(a += b, std::invalid_argument);
  CMatrix c(3, 4), d(3, 4);
  EXPECT_THROW(c * d, std::invalid_argument);
}

TEST(LU, SolveRecoversKnownSolution) {
  const size_t n = 12;
  const CMatrix a = random_matrix(n, 3);
  std::vector<cplx> x_true(n);
  for (size_t i = 0; i < n; ++i) x_true[i] = cplx(double(i) + 0.5, -double(i));
  std::vector<cplx> b(n);
  for (size_t i = 0; i < n; ++i) {
    cplx s = 0.0;
    for (size_t j = 0; j < n; ++j) s += a(i, j) * x_true[j];
    b[i] = s;
  }
  const auto x = gnrfet::linalg::LU(a).solve(b);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-9);
}

TEST(LU, InverseTimesMatrixIsIdentity) {
  const CMatrix a = random_matrix(10, 4);
  const CMatrix ainv = gnrfet::linalg::inverse(a);
  const CMatrix prod = a * ainv;
  const CMatrix eye = CMatrix::identity(10);
  CMatrix diff = prod;
  diff -= eye;
  EXPECT_LT(gnrfet::linalg::frobenius_norm(diff), 1e-9);
}

TEST(LU, SingularThrows) {
  CMatrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;  // row/col 2 all zero
  EXPECT_THROW(gnrfet::linalg::LU lu(a), std::runtime_error);
}

TEST(LU, RealSolve) {
  DMatrix a(3, 3);
  a(0, 0) = 4;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  a(2, 2) = 2;
  const std::vector<double> b = {1.0, 2.0, 4.0};
  const auto x = gnrfet::linalg::LUReal(a).solve(b);
  EXPECT_NEAR(4 * x[0] + x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[0] + 3 * x[1], 2.0, 1e-12);
  EXPECT_NEAR(2 * x[2], 4.0, 1e-12);
}

TEST(Eigh, DiagonalizesHermitian) {
  const size_t n = 9;
  const CMatrix a = random_hermitian(n, 5);
  const auto eig = gnrfet::linalg::eigh(a);
  // A V = V diag(lambda)
  const CMatrix av = a * eig.vectors;
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(av(i, j) - eig.values[j] * eig.vectors(i, j)), 0.0, 1e-8);
    }
  }
  // Eigenvalues ascending.
  for (size_t j = 1; j < n; ++j) EXPECT_GE(eig.values[j], eig.values[j - 1] - 1e-12);
}

TEST(Eigh, UnitaryEigenvectors) {
  const CMatrix a = random_hermitian(8, 6);
  const auto eig = gnrfet::linalg::eigh(a);
  const CMatrix vtv = eig.vectors.adjoint() * eig.vectors;
  CMatrix diff = vtv;
  diff -= CMatrix::identity(8);
  EXPECT_LT(gnrfet::linalg::frobenius_norm(diff), 1e-8);
}

TEST(Eigh, RejectsNonHermitian) {
  CMatrix a(2, 2);
  a(0, 1) = cplx(1.0, 0.0);
  a(1, 0) = cplx(5.0, 0.0);
  EXPECT_THROW(gnrfet::linalg::eigh(a), std::invalid_argument);
}

TEST(Eigh, KnownTwoByTwo) {
  CMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  a(0, 1) = cplx(0.0, 2.0);
  a(1, 0) = cplx(0.0, -2.0);
  const auto eig = gnrfet::linalg::eigh(a);
  const double r = std::sqrt(5.0);
  EXPECT_NEAR(eig.values[0], -r, 1e-10);
  EXPECT_NEAR(eig.values[1], r, 1e-10);
}

TEST(Sparse, CsrAccumulatesDuplicates) {
  gnrfet::linalg::SparseBuilder b(3);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.0);
  b.add(1, 2, -1.0);
  b.add(2, 2, 4.0);
  const gnrfet::linalg::SparseMatrix m(b);
  std::vector<double> y;
  m.multiply({1.0, 1.0, 1.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], 4.0);
}

TEST(Sparse, AddToDiagonal) {
  gnrfet::linalg::SparseBuilder b(2);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  gnrfet::linalg::SparseMatrix m(b);
  m.add_to_diagonal(0, 5.0);
  std::vector<double> y;
  m.multiply({1.0, 0.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
}

TEST(Pcg, SolvesLaplacian1D) {
  const size_t n = 50;
  gnrfet::linalg::SparseBuilder b(n);
  for (size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
  }
  const gnrfet::linalg::SparseMatrix a(b);
  std::vector<double> rhs(n, 1.0);
  std::vector<double> x(n, 0.0);
  const auto res = gnrfet::linalg::pcg_solve(a, rhs, x);
  ASSERT_TRUE(res.converged);
  std::vector<double> ax;
  a.multiply(x, ax);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], 1.0, 1e-7);
}

TEST(Pcg, WarmStartConvergesInstantly) {
  const size_t n = 20;
  gnrfet::linalg::SparseBuilder b(n);
  for (size_t i = 0; i < n; ++i) b.add(i, i, 3.0);
  const gnrfet::linalg::SparseMatrix a(b);
  std::vector<double> rhs(n, 6.0);
  std::vector<double> x(n, 2.0);  // exact solution
  const auto res = gnrfet::linalg::pcg_solve(a, rhs, x);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 1u);
}

}  // namespace
