#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "linalg/dense.hpp"
#include "linalg/eig.hpp"
#include "linalg/kernels.hpp"
#include "linalg/lu.hpp"
#include "linalg/pcg.hpp"
#include "linalg/preconditioner.hpp"
#include "linalg/sparse.hpp"

namespace {

using gnrfet::linalg::CMatrix;
using gnrfet::linalg::cplx;
using gnrfet::linalg::DMatrix;

CMatrix random_matrix(size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  CMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) m(i, j) = cplx(d(rng), d(rng));
  }
  return m;
}

CMatrix random_hermitian(size_t n, unsigned seed) {
  CMatrix a = random_matrix(n, seed);
  return gnrfet::linalg::hermitian_part(a);
}

TEST(Dense, MultiplyIdentity) {
  const CMatrix a = random_matrix(7, 1);
  const CMatrix i = CMatrix::identity(7);
  const CMatrix ai = a * i;
  for (size_t r = 0; r < 7; ++r) {
    for (size_t c = 0; c < 7; ++c) {
      EXPECT_NEAR(std::abs(ai(r, c) - a(r, c)), 0.0, 1e-14);
    }
  }
}

TEST(Dense, AdjointIsConjugateTranspose) {
  const CMatrix a = random_matrix(5, 2);
  const CMatrix ad = a.adjoint();
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      EXPECT_EQ(ad(r, c), std::conj(a(c, r)));
    }
  }
}

TEST(Dense, ShapeMismatchThrows) {
  CMatrix a(3, 3), b(4, 4);
  EXPECT_THROW(a += b, std::invalid_argument);
  CMatrix c(3, 4), d(3, 4);
  EXPECT_THROW(c * d, std::invalid_argument);
}

TEST(LU, SolveRecoversKnownSolution) {
  const size_t n = 12;
  const CMatrix a = random_matrix(n, 3);
  std::vector<cplx> x_true(n);
  for (size_t i = 0; i < n; ++i) x_true[i] = cplx(double(i) + 0.5, -double(i));
  std::vector<cplx> b(n);
  for (size_t i = 0; i < n; ++i) {
    cplx s = 0.0;
    for (size_t j = 0; j < n; ++j) s += a(i, j) * x_true[j];
    b[i] = s;
  }
  const auto x = gnrfet::linalg::LU(a).solve(b);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-9);
}

TEST(LU, InverseTimesMatrixIsIdentity) {
  const CMatrix a = random_matrix(10, 4);
  const CMatrix ainv = gnrfet::linalg::inverse(a);
  const CMatrix prod = a * ainv;
  const CMatrix eye = CMatrix::identity(10);
  CMatrix diff = prod;
  diff -= eye;
  EXPECT_LT(gnrfet::linalg::frobenius_norm(diff), 1e-9);
}

TEST(LU, SingularThrows) {
  CMatrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;  // row/col 2 all zero
  EXPECT_THROW(gnrfet::linalg::LU lu(a), std::runtime_error);
}

TEST(LU, RealSolve) {
  DMatrix a(3, 3);
  a(0, 0) = 4;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  a(2, 2) = 2;
  const std::vector<double> b = {1.0, 2.0, 4.0};
  const auto x = gnrfet::linalg::LUReal(a).solve(b);
  EXPECT_NEAR(4 * x[0] + x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[0] + 3 * x[1], 2.0, 1e-12);
  EXPECT_NEAR(2 * x[2], 4.0, 1e-12);
}

TEST(Eigh, DiagonalizesHermitian) {
  const size_t n = 9;
  const CMatrix a = random_hermitian(n, 5);
  const auto eig = gnrfet::linalg::eigh(a);
  // A V = V diag(lambda)
  const CMatrix av = a * eig.vectors;
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(av(i, j) - eig.values[j] * eig.vectors(i, j)), 0.0, 1e-8);
    }
  }
  // Eigenvalues ascending.
  for (size_t j = 1; j < n; ++j) EXPECT_GE(eig.values[j], eig.values[j - 1] - 1e-12);
}

TEST(Eigh, UnitaryEigenvectors) {
  const CMatrix a = random_hermitian(8, 6);
  const auto eig = gnrfet::linalg::eigh(a);
  const CMatrix vtv = eig.vectors.adjoint() * eig.vectors;
  CMatrix diff = vtv;
  diff -= CMatrix::identity(8);
  EXPECT_LT(gnrfet::linalg::frobenius_norm(diff), 1e-8);
}

TEST(Eigh, RejectsNonHermitian) {
  CMatrix a(2, 2);
  a(0, 1) = cplx(1.0, 0.0);
  a(1, 0) = cplx(5.0, 0.0);
  EXPECT_THROW(gnrfet::linalg::eigh(a), std::invalid_argument);
}

TEST(Eigh, KnownTwoByTwo) {
  CMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  a(0, 1) = cplx(0.0, 2.0);
  a(1, 0) = cplx(0.0, -2.0);
  const auto eig = gnrfet::linalg::eigh(a);
  const double r = std::sqrt(5.0);
  EXPECT_NEAR(eig.values[0], -r, 1e-10);
  EXPECT_NEAR(eig.values[1], r, 1e-10);
}

TEST(Sparse, CsrAccumulatesDuplicates) {
  gnrfet::linalg::SparseBuilder b(3);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.0);
  b.add(1, 2, -1.0);
  b.add(2, 2, 4.0);
  const gnrfet::linalg::SparseMatrix m(b);
  std::vector<double> y;
  m.multiply({1.0, 1.0, 1.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], 4.0);
}

TEST(Sparse, AddToDiagonal) {
  gnrfet::linalg::SparseBuilder b(2);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  gnrfet::linalg::SparseMatrix m(b);
  m.add_to_diagonal(0, 5.0);
  std::vector<double> y;
  m.multiply({1.0, 0.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
}

TEST(Pcg, SolvesLaplacian1D) {
  const size_t n = 50;
  gnrfet::linalg::SparseBuilder b(n);
  for (size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
  }
  const gnrfet::linalg::SparseMatrix a(b);
  std::vector<double> rhs(n, 1.0);
  std::vector<double> x(n, 0.0);
  const auto res = gnrfet::linalg::pcg_solve(a, rhs, x);
  ASSERT_TRUE(res.converged);
  std::vector<double> ax;
  a.multiply(x, ax);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], 1.0, 1e-7);
}

TEST(Pcg, WarmStartConvergesInstantly) {
  const size_t n = 20;
  gnrfet::linalg::SparseBuilder b(n);
  for (size_t i = 0; i < n; ++i) b.add(i, i, 3.0);
  const gnrfet::linalg::SparseMatrix a(b);
  std::vector<double> rhs(n, 6.0);
  std::vector<double> x(n, 2.0);  // exact solution
  const auto res = gnrfet::linalg::pcg_solve(a, rhs, x);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 1u);
}

// --- Summation kernels -----------------------------------------------------

namespace kernels = gnrfet::linalg::kernels;

std::vector<double> random_vector(size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = d(rng);
  return v;
}

TEST(Kernels, SequentialDotIsLeftToRight) {
  const auto a = random_vector(101, 11);
  const auto b = random_vector(101, 12);
  double ref = 0.0;
  for (size_t i = 0; i < a.size(); ++i) ref += a[i] * b[i];
  EXPECT_EQ(kernels::dot(a, b, kernels::SumOrder::kSequential), ref);
}

TEST(Kernels, PairwiseDotMatchesSequentialToRounding) {
  // Sizes straddling the 32-element block boundary and the recursion split.
  for (const size_t n : {1u, 31u, 32u, 33u, 64u, 100u, 257u, 1000u}) {
    const auto a = random_vector(n, 21);
    const auto b = random_vector(n, 22);
    const double seq = kernels::dot(a, b, kernels::SumOrder::kSequential);
    const double pw = kernels::dot(a, b, kernels::SumOrder::kPairwise);
    EXPECT_NEAR(pw, seq, 1e-12 * (1.0 + std::abs(seq))) << "n=" << n;
    // Determinism: the tree shape depends only on n, so a repeat call is
    // bit-identical.
    EXPECT_EQ(kernels::dot(a, b, kernels::SumOrder::kPairwise), pw);
  }
}

TEST(Kernels, AxpyAndXpby) {
  std::vector<double> y = {1.0, 2.0, 3.0};
  kernels::axpy(2.0, {10.0, 20.0, 30.0}, y);
  EXPECT_EQ(y, (std::vector<double>{21.0, 42.0, 63.0}));
  std::vector<double> p = {1.0, 1.0, 1.0};
  kernels::xpby({5.0, 6.0, 7.0}, 0.5, p);
  EXPECT_EQ(p, (std::vector<double>{5.5, 6.5, 7.5}));
}

TEST(Kernels, GatherDotAccumulatesRowSegment) {
  const double values[] = {2.0, -1.0, 3.0};
  const size_t col[] = {0, 2, 3};
  const double x[] = {1.0, 100.0, 10.0, 0.5};
  EXPECT_DOUBLE_EQ(kernels::gather_dot(values, col, 0, 3, x), 2.0 - 10.0 + 1.5);
  EXPECT_DOUBLE_EQ(kernels::gather_dot(values, col, 1, 1, x), 0.0);
}

// --- Sparse diagonal-retarget API ------------------------------------------

TEST(Sparse, SetDiagonalMatchesCopyPlusAddToDiagonal) {
  // The Newton loop uses set_diagonal(base - dq) on a persistent Jacobian;
  // the legacy path copied A and called add_to_diagonal(-dq). Both must
  // land on the same bits.
  gnrfet::linalg::SparseBuilder b(3);
  b.add(0, 0, 2.0);
  b.add(0, 1, -1.0);
  b.add(1, 0, -1.0);
  b.add(1, 1, 2.0);
  b.add(2, 2, 1.5);
  const gnrfet::linalg::SparseMatrix a(b);
  gnrfet::linalg::SparseMatrix legacy = a;
  gnrfet::linalg::SparseMatrix persistent = a;
  const double dq[] = {0.37, -1.25e-3, 7.5};
  for (size_t i = 0; i < 3; ++i) legacy.add_to_diagonal(i, dq[i]);
  const double base[] = {2.0, 2.0, 1.5};
  for (size_t i = 0; i < 3; ++i) persistent.set_diagonal(i, base[i] + dq[i]);
  ASSERT_EQ(legacy.values().size(), persistent.values().size());
  for (size_t k = 0; k < legacy.values().size(); ++k) {
    EXPECT_EQ(legacy.values()[k], persistent.values()[k]);
  }
  EXPECT_DOUBLE_EQ(persistent.diagonal_at(1), 2.0 - 1.25e-3);
}

TEST(Sparse, RestoreValuesRoundTripAndMismatchThrows) {
  gnrfet::linalg::SparseBuilder b(2);
  b.add(0, 0, 4.0);
  b.add(1, 1, 9.0);
  gnrfet::linalg::SparseMatrix m(b);
  const std::vector<double> pristine = m.values();
  m.set_diagonal(0, -100.0);
  m.restore_values(pristine);
  EXPECT_EQ(m.values(), pristine);
  EXPECT_THROW(m.restore_values({1.0}), std::invalid_argument);
}

// --- Preconditioners --------------------------------------------------------

// 2D 5-point Laplacian on an nx-by-ny grid: SPD, the Poisson stencil shape.
gnrfet::linalg::SparseMatrix laplacian2d(size_t nx, size_t ny) {
  gnrfet::linalg::SparseBuilder b(nx * ny);
  auto id = [&](size_t i, size_t j) { return i * ny + j; };
  for (size_t i = 0; i < nx; ++i) {
    for (size_t j = 0; j < ny; ++j) {
      b.add(id(i, j), id(i, j), 4.0);
      if (i > 0) b.add(id(i, j), id(i - 1, j), -1.0);
      if (i + 1 < nx) b.add(id(i, j), id(i + 1, j), -1.0);
      if (j > 0) b.add(id(i, j), id(i, j - 1), -1.0);
      if (j + 1 < ny) b.add(id(i, j), id(i, j + 1), -1.0);
    }
  }
  return gnrfet::linalg::SparseMatrix(b);
}

TEST(Preconditioner, IcZeroIsExactCholeskyOnTridiagonal) {
  // A tridiagonal SPD matrix has no fill, so IC(0) equals the exact
  // Cholesky factorization (and the MIC drop compensation never engages):
  // apply() must return the exact A^{-1} r.
  const size_t n = 8;
  gnrfet::linalg::SparseBuilder b(n);
  for (size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
  }
  const gnrfet::linalg::SparseMatrix a(b);
  gnrfet::linalg::IncompleteCholesky ic;
  ic.factor(a);
  EXPECT_EQ(ic.diagonal_shift(), 0.0);
  const auto r = random_vector(n, 31);
  std::vector<double> z;
  ic.apply(r, z);
  std::vector<double> az;
  a.multiply(z, az);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(az[i], r[i], 1e-12);
}

TEST(Preconditioner, SsorApplyMatchesDenseReference) {
  // With omega = 1, M = (D + L) D^{-1} (D + U). Verify M z == r against a
  // dense reconstruction of M.
  const gnrfet::linalg::SparseMatrix a = laplacian2d(3, 4);
  const size_t n = a.dim();
  gnrfet::linalg::SsorPreconditioner ssor;
  ssor.factor(a);
  const auto r = random_vector(n, 41);
  std::vector<double> z;
  ssor.apply(r, z);

  // Dense M z via the factored form: t = (D + U) z, then M z = (D + L) D^{-1} t.
  gnrfet::linalg::DMatrix dense(n, n);
  std::vector<double> unit(n, 0.0), col;
  for (size_t j = 0; j < n; ++j) {
    unit[j] = 1.0;
    a.multiply(unit, col);
    for (size_t i = 0; i < n; ++i) dense(i, j) = col[i];
    unit[j] = 0.0;
  }
  std::vector<double> t(n, 0.0), mz(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) t[i] += dense(i, j) * z[j];  // (D + U) z
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) mz[i] += dense(i, j) * t[j] / dense(j, j);
    mz[i] += t[i];  // (D + L) D^{-1} t, diagonal term: D * t_i / d_i = t_i
  }
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(mz[i], r[i], 1e-12);
}

TEST(Preconditioner, BreakdownFallsBackToDiagonalShift) {
  // Symmetric but indefinite: the (1,1) pivot goes negative, which must
  // trigger the Manteuffel shift escalation instead of producing NaNs.
  gnrfet::linalg::SparseBuilder b(2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 2.0);
  b.add(1, 0, 2.0);
  b.add(1, 1, 1.0);
  const gnrfet::linalg::SparseMatrix a(b);
  gnrfet::linalg::IncompleteCholesky ic;
  ic.factor(a);
  EXPECT_GT(ic.diagonal_shift(), 0.0);
  std::vector<double> z;
  ic.apply({1.0, -1.0}, z);
  EXPECT_TRUE(std::isfinite(z[0]));
  EXPECT_TRUE(std::isfinite(z[1]));
}

TEST(Preconditioner, RefactorAfterDiagonalUpdateMatchesFreshFactor) {
  // The Newton loop only moves the Jacobian diagonal, then calls
  // refactor(); the result must match a from-scratch factorization of the
  // updated matrix bit-for-bit (same pattern, same numeric loop).
  gnrfet::linalg::SparseMatrix a = laplacian2d(4, 4);
  gnrfet::linalg::IncompleteCholesky reused;
  reused.factor(a);
  for (size_t i = 0; i < a.dim(); ++i) {
    a.set_diagonal(i, 4.0 + 0.01 * static_cast<double>(i));
  }
  reused.refactor(a);
  gnrfet::linalg::IncompleteCholesky fresh;
  fresh.factor(a);
  const auto r = random_vector(a.dim(), 51);
  std::vector<double> z_reused, z_fresh;
  reused.apply(r, z_reused);
  fresh.apply(r, z_fresh);
  for (size_t i = 0; i < a.dim(); ++i) EXPECT_EQ(z_reused[i], z_fresh[i]);
}

TEST(Preconditioner, FactoryParsesKnownNamesAndRejectsUnknown) {
  using gnrfet::linalg::PreconditionerKind;
  EXPECT_EQ(gnrfet::linalg::preconditioner_kind_from_string("jacobi"),
            PreconditionerKind::kJacobi);
  EXPECT_EQ(gnrfet::linalg::preconditioner_kind_from_string("ssor"), PreconditionerKind::kSsor);
  EXPECT_EQ(gnrfet::linalg::preconditioner_kind_from_string("ic0"), PreconditionerKind::kIc0);
  EXPECT_THROW(gnrfet::linalg::preconditioner_kind_from_string("cholmod"), std::invalid_argument);
  for (const auto kind :
       {PreconditionerKind::kJacobi, PreconditionerKind::kSsor, PreconditionerKind::kIc0}) {
    const auto pc = gnrfet::linalg::make_preconditioner(kind);
    EXPECT_STREQ(pc->name(), gnrfet::linalg::to_string(kind));
  }
}

TEST(Pcg, AllPreconditionersReachTheSameSolution) {
  const gnrfet::linalg::SparseMatrix a = laplacian2d(16, 16);
  const auto rhs = random_vector(a.dim(), 61);
  std::vector<std::vector<double>> solutions;
  std::vector<size_t> iterations;
  for (const auto kind :
       {gnrfet::linalg::PreconditionerKind::kJacobi, gnrfet::linalg::PreconditionerKind::kSsor,
        gnrfet::linalg::PreconditionerKind::kIc0}) {
    const auto pc = gnrfet::linalg::make_preconditioner(kind);
    pc->factor(a);
    gnrfet::linalg::PcgOptions opts;
    opts.preconditioner = pc.get();
    std::vector<double> x(a.dim(), 0.0);
    const auto res = gnrfet::linalg::pcg_solve(a, rhs, x, opts);
    ASSERT_TRUE(res.converged) << gnrfet::linalg::to_string(kind);
    solutions.push_back(std::move(x));
    iterations.push_back(res.iterations);
  }
  for (size_t i = 0; i < a.dim(); ++i) {
    EXPECT_NEAR(solutions[1][i], solutions[0][i], 1e-7);
    EXPECT_NEAR(solutions[2][i], solutions[0][i], 1e-7);
  }
  // The stronger preconditioners must actually pay off on the Laplacian.
  EXPECT_LT(iterations[1], iterations[0]);  // ssor < jacobi
  EXPECT_LT(iterations[2], iterations[0]);  // ic0 < jacobi
}

TEST(Pcg, WorkspaceReuseIsBitIdenticalToFreshVectors) {
  const gnrfet::linalg::SparseMatrix a = laplacian2d(10, 10);
  gnrfet::linalg::IncompleteCholesky ic;
  ic.factor(a);
  gnrfet::linalg::PcgOptions reuse_opts;
  reuse_opts.preconditioner = &ic;
  gnrfet::linalg::PcgWorkspace ws;
  reuse_opts.workspace = &ws;
  gnrfet::linalg::PcgOptions fresh_opts = reuse_opts;
  fresh_opts.workspace = nullptr;
  for (const unsigned seed : {71u, 72u, 73u}) {
    const auto rhs = random_vector(a.dim(), seed);
    std::vector<double> x_reuse(a.dim(), 0.0), x_fresh(a.dim(), 0.0);
    const auto r1 = gnrfet::linalg::pcg_solve(a, rhs, x_reuse, reuse_opts);
    const auto r2 = gnrfet::linalg::pcg_solve(a, rhs, x_fresh, fresh_opts);
    EXPECT_EQ(r1.iterations, r2.iterations);
    for (size_t i = 0; i < a.dim(); ++i) EXPECT_EQ(x_reuse[i], x_fresh[i]);
  }
}

}  // namespace
