#include <gtest/gtest.h>

#include <cmath>

#include "gnr/bandstructure.hpp"
#include "gnr/lattice.hpp"
#include "gnr/modespace.hpp"
#include "negf/scalar_rgf.hpp"
#include "negf/selfenergy.hpp"
#include "synthetic_device.hpp"

namespace {

using namespace gnrfet;

// ---------------------------------------------------------------------
// Parameterized property sweeps across the GNR index family.
// ---------------------------------------------------------------------

class GnrIndexProperties : public ::testing::TestWithParam<int> {};

TEST_P(GnrIndexProperties, LatticeInvariants) {
  const int n = GetParam();
  const gnr::Lattice lat = gnr::Lattice::armchair(n, 10, 0.12);
  // 2N atoms per unit cell (2 slices).
  EXPECT_EQ(lat.atoms().size(), static_cast<size_t>(10 * n));
  // Width formula.
  EXPECT_NEAR(lat.width_nm(), (n - 1) * std::sqrt(3.0) / 2.0 * 0.142, 1e-9);
  // Every atom belongs to exactly one slice.
  size_t total = 0;
  for (const auto& s : lat.slice_atoms()) total += s.size();
  EXPECT_EQ(total, lat.atoms().size());
  // Two columns per slice.
  EXPECT_EQ(lat.column_x_nm().size(), 2u * static_cast<size_t>(lat.num_slices()));
}

TEST_P(GnrIndexProperties, BandStructureInvariants) {
  const int n = GetParam();
  const gnr::TightBindingParams p{2.7, 0.12};
  const auto bs = gnr::compute_bands(n, p, 24);
  // Particle-hole symmetry at every k.
  for (const auto& bands : bs.bands) {
    for (size_t i = 0; i < bands.size(); ++i) {
      EXPECT_NEAR(bands[i], -bands[bands.size() - 1 - i], 1e-8);
    }
  }
  // All paper-family ribbons are semiconducting with edge relaxation.
  EXPECT_GT(bs.band_gap(), 0.02);
  // Bands bounded by 3t(1+delta).
  for (const auto& bands : bs.bands) {
    EXPECT_LT(std::abs(bands.back()), 3.0 * 2.7 * 1.12 + 1e-6);
  }
}

TEST_P(GnrIndexProperties, ModeSpaceGapTracksRealSpace) {
  const int n = GetParam();
  const gnr::TightBindingParams p{2.7, 0.12};
  const auto modes = gnr::build_mode_set(n, p, 3);
  const double g_real = gnr::band_gap(n, p);
  EXPECT_NEAR(modes.band_gap_eV(), g_real, 0.1 * g_real + 0.02);
}

INSTANTIATE_TEST_SUITE_P(PaperFamilies, GnrIndexProperties,
                         ::testing::Values(9, 12, 15, 18, 21, 24));

// ---------------------------------------------------------------------
// Scalar-RGF sum rules swept across contact strengths.
// ---------------------------------------------------------------------

class ContactStrengthProperties : public ::testing::TestWithParam<double> {};

TEST_P(ContactStrengthProperties, SpectralFunctionsNonNegativeAndBounded) {
  const double gamma = GetParam();
  negf::ScalarChain chain;
  chain.onsite.assign(25, 0.0);
  for (size_t i = 0; i < chain.onsite.size(); ++i) {
    chain.onsite[i] = 0.2 * std::sin(0.5 * static_cast<double>(i));
  }
  chain.hopping.assign(24, 0.0);
  for (size_t i = 0; i < chain.hopping.size(); ++i) {
    chain.hopping[i] = (i % 2 == 0) ? -2.7 : -1.2;
  }
  chain.gamma_left = gamma;
  chain.gamma_right = 0.5 * gamma;
  for (double e = -4.5; e <= 4.5; e += 0.3) {
    const auto r = negf::scalar_rgf_solve(chain, e, 1e-4);
    EXPECT_GE(r.transmission, -1e-12);
    EXPECT_LE(r.transmission, 1.0 + 1e-9);
    for (size_t c = 0; c < chain.onsite.size(); ++c) {
      EXPECT_GE(r.spectral_left[c], -1e-12);
      EXPECT_GE(r.spectral_right[c], -1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Gammas, ContactStrengthProperties,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0));

// ---------------------------------------------------------------------
// Device-model invariants swept across bias.
// ---------------------------------------------------------------------

struct BiasPoint {
  double vgs;
  double vds;
};

class ModelBiasProperties : public ::testing::TestWithParam<BiasPoint> {};

TEST_P(ModelBiasProperties, ComplementaryPairIsConsistent) {
  const auto [vgs, vds] = GetParam();
  const auto n = synthetic::synthetic_fet(model::Polarity::kN, 0.1);
  const auto p = synthetic::synthetic_fet(model::Polarity::kP, 0.1);
  // Current sign follows vds for the n device...
  EXPECT_GE(n.current(vgs, vds).value * vds, -1e-18);
  // ...and the p device mirrors it exactly.
  EXPECT_NEAR(p.current(-vgs, -vds).value, -n.current(vgs, vds).value, 1e-18);
  // Derivative consistency under the mirror.
  EXPECT_NEAR(p.current(-vgs, -vds).d_dvgs, n.current(vgs, vds).d_dvgs, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(BiasGrid, ModelBiasProperties,
                         ::testing::Values(BiasPoint{0.0, 0.2}, BiasPoint{0.2, 0.4},
                                           BiasPoint{0.4, 0.1}, BiasPoint{0.5, 0.5},
                                           BiasPoint{0.3, -0.3}, BiasPoint{0.1, -0.5}));

}  // namespace
