#include <gtest/gtest.h>

#include "gnr/hamiltonian.hpp"
#include "gnr/lattice.hpp"
#include "negf/selfenergy.hpp"
#include "negf/rgf.hpp"
#include "negf/transport.hpp"

namespace {

using namespace gnrfet;
using gnr::Lattice;
using gnr::TightBindingParams;

TEST(Vacancy, RemovesOneAtomAndItsBonds) {
  const Lattice lat = Lattice::armchair(9, 8, 0.12);
  const size_t victim = lat.atoms().size() / 2;
  int victim_bonds = 0;
  for (const auto& b : lat.bonds()) {
    if (b.a == victim || b.b == victim) ++victim_bonds;
  }
  const Lattice def = lat.with_vacancy(victim);
  EXPECT_EQ(def.atoms().size(), lat.atoms().size() - 1);
  EXPECT_EQ(def.bonds().size(), lat.bonds().size() - static_cast<size_t>(victim_bonds));
  // Slice partition still covers all atoms.
  size_t total = 0;
  for (const auto& s : def.slice_atoms()) total += s.size();
  EXPECT_EQ(total, def.atoms().size());
  EXPECT_THROW(lat.with_vacancy(lat.atoms().size()), std::invalid_argument);
}

TEST(Vacancy, HamiltonianStaysHermitianBlockTridiagonal) {
  const Lattice def = Lattice::armchair(12, 10, 0.12).with_vacancy(60);
  const auto h = gnr::build_hamiltonian(def, {2.7, 0.12});
  const auto dense = h.to_dense();
  linalg::CMatrix diff = dense;
  diff -= linalg::hermitian_part(dense);
  EXPECT_LT(linalg::frobenius_norm(diff), 1e-12);
}

TEST(Vacancy, ScattersAndReducesOnCurrent) {
  // A mid-channel vacancy must reduce the ballistic current of the
  // real-space solver (paper Sec. 4: vacancies are a performance-relevant
  // defect class).
  const TightBindingParams p{2.7, 0.12};
  const Lattice ideal = Lattice::armchair(9, 14, p.edge_delta);
  // Pick a mid-channel atom.
  size_t victim = 0;
  double best = 1e9;
  for (size_t i = 0; i < ideal.atoms().size(); ++i) {
    const double d = std::abs(ideal.atoms()[i].x_nm - 0.5 * ideal.length_nm()) +
                     std::abs(ideal.atoms()[i].y_nm - 0.5 * ideal.width_nm());
    if (d < best) {
      best = d;
      victim = i;
    }
  }
  const Lattice defect = ideal.with_vacancy(victim);

  negf::TransportOptions opt;
  opt.mu_drain_eV = -0.4;
  opt.energy_step_eV = 4e-3;
  const std::vector<double> onsite_ideal(ideal.atoms().size(), -0.5);
  const std::vector<double> onsite_defect(defect.atoms().size(), -0.5);
  const auto i_ideal = negf::solve_real_space(ideal, p, onsite_ideal, opt);
  const auto i_defect = negf::solve_real_space(defect, p, onsite_defect, opt);
  EXPECT_GT(i_ideal.current_A, 0.0);
  EXPECT_LT(i_defect.current_A, 0.97 * i_ideal.current_A);
}

TEST(EdgeRoughness, RemovesOnlyEdgeAtomsReproducibly) {
  const Lattice lat = Lattice::armchair(12, 16, 0.12);
  const Lattice r1 = lat.with_edge_roughness(0.3, 42);
  const Lattice r2 = lat.with_edge_roughness(0.3, 42);
  EXPECT_EQ(r1.atoms().size(), r2.atoms().size());  // reproducible
  EXPECT_LT(r1.atoms().size(), lat.atoms().size());
  // Removed atoms were all on the edges: interior count is unchanged.
  size_t interior_before = 0, interior_after = 0;
  for (const auto& a : lat.atoms()) {
    if (a.dimer_line != 0 && a.dimer_line != 11) ++interior_before;
  }
  for (const auto& a : r1.atoms()) {
    if (a.dimer_line != 0 && a.dimer_line != 11) ++interior_after;
  }
  EXPECT_EQ(interior_before, interior_after);
  EXPECT_THROW(lat.with_edge_roughness(1.0, 1), std::invalid_argument);
}

TEST(EdgeRoughness, DegradesBallisticCurrent) {
  // Ref. [17] of the paper: edge roughness scatters carriers and lowers
  // the on-current of the ballistic device.
  const TightBindingParams p{2.7, 0.12};
  const Lattice ideal = Lattice::armchair(9, 14, p.edge_delta);
  const Lattice rough = ideal.with_edge_roughness(0.25, 7);
  negf::TransportOptions opt;
  opt.mu_drain_eV = -0.4;
  opt.energy_step_eV = 4e-3;
  const auto i_ideal =
      negf::solve_real_space(ideal, p, std::vector<double>(ideal.atoms().size(), -0.5), opt);
  const auto i_rough =
      negf::solve_real_space(rough, p, std::vector<double>(rough.atoms().size(), -0.5), opt);
  EXPECT_LT(i_rough.current_A, 0.9 * i_ideal.current_A);
  EXPECT_GT(i_rough.current_A, 0.0);
}

}  // namespace
