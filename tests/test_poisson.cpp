#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "poisson/assembly.hpp"
#include "poisson/grid.hpp"
#include "poisson/nonlinear.hpp"

namespace {

using namespace gnrfet;
using poisson::Box;
using poisson::Domain;
using poisson::GridSpec;

GridSpec small_grid(size_t nx, size_t ny, size_t nz, double h) {
  GridSpec g;
  g.nx = nx;
  g.ny = ny;
  g.nz = nz;
  g.dx = g.dy = g.dz = h;
  return g;
}

TEST(PoissonGrid, IndexingRoundTrip) {
  const GridSpec g = small_grid(4, 5, 6, 0.5);
  EXPECT_EQ(g.num_nodes(), 120u);
  EXPECT_EQ(g.index(3, 4, 5), 119u);
  EXPECT_DOUBLE_EQ(g.x(2), 1.0);
}

TEST(PoissonGrid, DepositConservesCharge) {
  const GridSpec g = small_grid(6, 6, 6, 0.3);
  Domain d(g);
  std::vector<double> rho(g.num_nodes(), 0.0);
  d.deposit_charge(0.71, 0.77, 0.55, -2.5, rho);
  double total = 0.0;
  for (const double v : rho) total += v;
  EXPECT_NEAR(total, -2.5, 1e-12);
}

TEST(PoissonGrid, InterpolateRecoversLinearField) {
  const GridSpec g = small_grid(5, 5, 5, 0.4);
  Domain d(g);
  std::vector<double> f(g.num_nodes());
  for (size_t i = 0; i < g.nx; ++i) {
    for (size_t j = 0; j < g.ny; ++j) {
      for (size_t k = 0; k < g.nz; ++k) {
        f[g.index(i, j, k)] = 2.0 * g.x(i) - g.y(j) + 0.5 * g.z(k);
      }
    }
  }
  EXPECT_NEAR(d.interpolate(f, 0.63, 0.91, 1.17),
              2.0 * 0.63 - 0.91 + 0.5 * 1.17, 1e-12);
}

TEST(Poisson, ParallelPlateCapacitor) {
  // Two Dirichlet planes at z extremes, uniform dielectric: linear ramp.
  const GridSpec g = small_grid(5, 5, 9, 0.25);
  Domain d(g);
  d.paint_permittivity({-1, 10, -1, 10, -1, 10}, 3.9);
  const int bot = d.add_electrode({-1, 10, -1, 10, -0.001, 0.001});
  const int top = d.add_electrode({-1, 10, -1, 10, g.z_max() - 0.001, g.z_max() + 0.001});
  ASSERT_EQ(bot, 0);
  ASSERT_EQ(top, 1);
  const poisson::Assembly assembly(d);
  std::vector<double> rho(g.num_nodes(), 0.0);
  const auto phi = poisson::solve_linear_poisson(assembly, {0.0, 1.0}, rho);
  for (size_t k = 0; k < g.nz; ++k) {
    const double expected = g.z(k) / g.z_max();
    EXPECT_NEAR(phi[g.index(2, 2, k)], expected, 1e-8) << "k=" << k;
  }
}

TEST(Poisson, PointChargePotentialIsPositiveAndDecays) {
  const GridSpec g = small_grid(17, 17, 17, 0.25);
  Domain d(g);
  // Grounded box boundary.
  d.paint_permittivity({-1, 10, -1, 10, -1, 10}, 1.0);
  const int walls = d.add_electrode({-0.001, 0.001, -1, 10, -1, 10});
  (void)walls;
  d.add_electrode({g.x_max() - 0.001, g.x_max() + 0.001, -1, 10, -1, 10});
  const poisson::Assembly assembly(d);
  std::vector<double> rho(g.num_nodes(), 0.0);
  const double cx = g.x(8), cy = g.y(8), cz = g.z(8);
  d.deposit_charge(cx, cy, cz, 1.0, rho);
  const auto phi = poisson::solve_linear_poisson(assembly, {0.0, 0.0}, rho);
  const double p_center = phi[g.index(8, 8, 8)];
  const double p_far = phi[g.index(12, 8, 8)];
  EXPECT_GT(p_center, p_far);
  EXPECT_GT(p_far, 0.0);
  // Coulomb scale sanity: phi(r) = q/(4 pi eps0 r) = 1.44 V nm / r for
  // r = 1 nm (4 cells) in vacuum; grid/boundary effects allow ~40%.
  EXPECT_NEAR(p_far, 1.44, 0.6);
}

TEST(Poisson, DielectricInterfaceFluxContinuity) {
  // Two-layer capacitor: eps1 for lower half, eps2 for upper half; the
  // interface potential follows the series-capacitor divider.
  const GridSpec g = small_grid(3, 3, 9, 0.25);
  Domain d(g);
  d.paint_permittivity({-1, 10, -1, 10, -1.0, 10.0}, 2.0);
  d.paint_permittivity({-1, 10, -1, 10, g.z(4) + 0.01, 10.0}, 8.0);
  d.add_electrode({-1, 10, -1, 10, -0.001, 0.001});
  d.add_electrode({-1, 10, -1, 10, g.z_max() - 0.001, g.z_max() + 0.001});
  const poisson::Assembly assembly(d);
  std::vector<double> rho(g.num_nodes(), 0.0);
  const auto phi = poisson::solve_linear_poisson(assembly, {0.0, 1.0}, rho);
  // Discrete series divider with harmonic face permittivities: four faces
  // at eps 2, the interface face at 2*2*8/10 = 3.2, three faces at eps 8:
  // V(node 4) = (4/2) / (4/2 + 1/3.2 + 3/8) = 0.7442.
  EXPECT_NEAR(phi[g.index(1, 1, 4)], 0.7442, 0.01);
}

TEST(PoissonNonlinear, ScreensChargeAgainstLinearSolve) {
  // With mobile electrons present the potential rise is screened compared
  // to the fixed-charge linear solution.
  const GridSpec g = small_grid(7, 7, 7, 0.3);
  Domain d(g);
  d.add_electrode({-1, 10, -1, 10, -0.001, 0.001});
  const poisson::Assembly assembly(d);
  std::vector<double> zero(g.num_nodes(), 0.0);
  std::vector<double> fixed(g.num_nodes(), 0.0);
  d.deposit_charge(g.x(3), g.y(3), g.z(3), 2.0, fixed);

  const auto phi_lin = poisson::solve_linear_poisson(assembly, {0.0}, fixed);

  std::vector<double> n0(g.num_nodes(), 0.0);
  n0[g.index(3, 3, 3)] = 1.0;  // electrons that multiply with exp(phi/Vt)
  // Newton starts from zero: starting on the high side of the exponential
  // is the classic divergence mode the Gummel loop never produces.
  const auto res = poisson::solve_nonlinear_poisson(assembly, {0.0}, n0, zero, fixed,
                                                    zero /*phi_ref*/, zero);
  ASSERT_TRUE(res.converged);
  EXPECT_LT(res.phi_full[g.index(3, 3, 3)], phi_lin[g.index(3, 3, 3)]);
}

TEST(PoissonNonlinear, ReducesToLinearWithoutMobileCharge) {
  const GridSpec g = small_grid(5, 5, 5, 0.3);
  Domain d(g);
  d.add_electrode({-1, 10, -1, 10, -0.001, 0.001});
  const poisson::Assembly assembly(d);
  std::vector<double> zero(g.num_nodes(), 0.0);
  std::vector<double> fixed(g.num_nodes(), 0.0);
  d.deposit_charge(g.x(2), g.y(2), g.z(3), -1.0, fixed);
  const auto lin = poisson::solve_linear_poisson(assembly, {0.3}, fixed);
  const auto nl =
      poisson::solve_nonlinear_poisson(assembly, {0.3}, zero, zero, fixed, zero, zero);
  ASSERT_TRUE(nl.converged);
  for (size_t i = 0; i < lin.size(); ++i) EXPECT_NEAR(nl.phi_full[i], lin[i], 1e-6);
}

TEST(PoissonAssembly, RhsValidatesSizes) {
  const GridSpec g = small_grid(4, 4, 4, 0.3);
  Domain d(g);
  d.add_electrode({-1, 10, -1, 10, -0.001, 0.001});
  const poisson::Assembly assembly(d);
  std::vector<double> rho(g.num_nodes(), 0.0);
  EXPECT_THROW(assembly.rhs({}, rho), std::invalid_argument);
  EXPECT_THROW(assembly.rhs({0.0}, std::vector<double>(3, 0.0)), std::invalid_argument);
}

}  // namespace
