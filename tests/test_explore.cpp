#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

#include "explore/contours.hpp"
#include "explore/montecarlo.hpp"
#include "explore/tech_explore.hpp"
#include "synthetic_device.hpp"

namespace {

using namespace gnrfet;

TEST(DesignKit, SetTableRejectsOverwrite) {
  // table() hands out references backed by map entries; replacing an entry
  // would invalidate them, so a second injection for the same variant must
  // be refused.
  explore::DesignKit kit;
  kit.set_table({12, 0.0}, synthetic::synthetic_table());
  EXPECT_THROW(kit.set_table({12, 0.0}, synthetic::synthetic_table()), std::logic_error);
}

TEST(Contours, CircleLevelSet) {
  // f(x,y) = x^2 + y^2 over [-1,1]^2; the 0.25 level is a circle of
  // radius 0.5: all segment endpoints must sit near that radius.
  std::vector<double> xs, ys;
  for (int i = 0; i <= 40; ++i) xs.push_back(-1.0 + 0.05 * i);
  ys = xs;
  std::vector<double> f(xs.size() * ys.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t j = 0; j < ys.size(); ++j) {
      f[i * ys.size() + j] = xs[i] * xs[i] + ys[j] * ys[j];
    }
  }
  const auto segs = explore::contour_segments(xs, ys, f, 0.25);
  EXPECT_GT(segs.size(), 20u);
  for (const auto& s : segs) {
    EXPECT_NEAR(std::hypot(s.x1, s.y1), 0.5, 0.03);
    EXPECT_NEAR(std::hypot(s.x2, s.y2), 0.5, 0.03);
  }
}

TEST(Contours, NoSegmentsWhenLevelOutsideRange) {
  std::vector<double> xs = {0, 1}, ys = {0, 1};
  std::vector<double> f = {0, 0, 0, 0};
  EXPECT_TRUE(explore::contour_segments(xs, ys, f, 5.0).empty());
}

TEST(MonteCarlo, DiscretizedNormalProbabilities) {
  explore::DiscretizedNormal dist;
  std::mt19937 rng(7);
  int counts[3] = {0, 0, 0};
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[dist.draw(rng) + 1]++;
  EXPECT_NEAR(counts[0] / double(n), 0.3085, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.3829, 0.01);
  EXPECT_NEAR(counts[2] / double(n), 0.3085, 0.01);
}

TEST(MonteCarlo, HistogramCountsAllValues) {
  const std::vector<double> v = {0.0, 0.1, 0.2, 0.5, 0.9, 1.0, 1.0};
  const auto h = explore::histogram(v, 4);
  int total = 0;
  for (const int c : h.counts) total += c;
  EXPECT_EQ(total, 7);
  ASSERT_EQ(h.bin_centers.size(), 4u);
  EXPECT_LT(h.bin_centers.front(), h.bin_centers.back());
}

TEST(OperatingPoints, SelectionLogicOnSyntheticGrid) {
  // Synthetic plane: EDP grows with vdd, frequency with vdd, SNM with vdd
  // and (weakly) with vt.
  std::vector<explore::ExplorePoint> grid;
  for (double vdd = 0.2; vdd <= 0.61; vdd += 0.1) {
    for (double vt = 0.05; vt <= 0.26; vt += 0.05) {
      explore::ExplorePoint p;
      p.ok = true;
      p.vdd = vdd;
      p.vt = vt;
      p.frequency_Hz = 12e9 * vdd * (1.0 - vt);
      p.edp_Js = 1e-27 * (vdd * vdd) * (1.0 + vt);
      p.snm_V = 0.4 * vdd * (0.5 + vt);
      grid.push_back(p);
    }
  }
  const auto pts = explore::find_operating_points(grid, 3e9, 0.08);
  ASSERT_TRUE(pts.a.ok);
  ASSERT_TRUE(pts.b.ok);
  EXPECT_GE(pts.a.frequency_Hz, 3e9);
  EXPECT_GE(pts.b.frequency_Hz, 3e9);
  EXPECT_GE(pts.b.snm_V, 0.08);
  // A ignores the SNM constraint, so its EDP can only be <= B's.
  EXPECT_LE(pts.a.edp_Js, pts.b.edp_Js + 1e-40);
  // C never decreases VT relative to B.
  EXPECT_GE(pts.c.vt, pts.b.vt);
}

TEST(StandardTableOptions, MatchesCacheContract) {
  const auto opts = explore::standard_table_options();
  EXPECT_EQ(opts.vg_points, 21u);
  EXPECT_EQ(opts.vd_points, 16u);
  EXPECT_DOUBLE_EQ(opts.vg_max, 1.0);
  EXPECT_DOUBLE_EQ(opts.vd_max, 0.75);
}

}  // namespace
