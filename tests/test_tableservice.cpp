#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cache.hpp"
#include "common/env.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "service/tableservice.hpp"

namespace {

using namespace gnrfet;
using service::TableRequest;
using service::TableService;

/// Scoped thread-count override restoring the previous value on exit.
struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) : old_(par::thread_count()) { par::set_thread_count(n); }
  ~ThreadCountGuard() { par::set_thread_count(old_); }
  int old_;
};

/// Scoped environment override restoring the previous value on exit.
struct EnvGuard {
  EnvGuard(const char* name, const std::string& value)
      : name_(name), had_(common::env_set(name)), previous_(common::env_or(name, "")) {
    ::setenv(name, value.c_str(), 1);
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, previous_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  const char* name_;
  bool had_;
  std::string previous_;
};

/// A request whose cache key is a pure function of `n` (uncached: the
/// synthetic-generator tests must not touch the disk cache or lockfile).
TableRequest synth_request(int n) {
  TableRequest req;
  req.spec.n_index = n;
  req.opts.use_cache = false;
  return req;
}

/// Fixed-footprint synthetic table: 8 + 8 axis values and 2 * 64 entries,
/// ~1.3 kB in the service's accounting. Values encode n for identity checks.
device::DeviceTable synth_table(int n) {
  device::DeviceTable t;
  for (int i = 0; i < 8; ++i) {
    t.vg.push_back(0.1 * i);
    t.vd.push_back(0.05 * i);
  }
  t.band_gap_eV = 0.01 * n;
  t.current_A.assign(64, 1e-6 * n);
  t.charge_C.assign(64, -1e-19 * n);
  return t;
}

/// A TableService over a counting synthetic generator.
struct SyntheticService {
  explicit SyntheticService(size_t capacity_bytes) {
    TableService::Options opts;
    opts.capacity_bytes = capacity_bytes;
    opts.generator = [this](const device::DeviceSpec& spec, const device::TableGenOptions&) {
      calls.fetch_add(1, std::memory_order_relaxed);
      return synth_table(spec.n_index);
    };
    svc = std::make_unique<TableService>(std::move(opts));
  }
  std::atomic<int> calls{0};
  std::unique_ptr<TableService> svc;
};

uint64_t counter_total(metrics::Counter c) {
  return metrics::snapshot().counters[static_cast<size_t>(c)];
}

TEST(TableService, LruEvictsLeastRecentlyUsed) {
  // Capacity fits two synthetic tables (~1.3 kB each) but not three.
  SyntheticService s(2700);
  s.svc->query(synth_request(9));    // pool: [9]
  s.svc->query(synth_request(12));   // pool: [12, 9]
  EXPECT_EQ(s.calls.load(), 2);
  s.svc->query(synth_request(9));    // hit; 9 becomes most recent: [9, 12]
  EXPECT_EQ(s.calls.load(), 2);
  s.svc->query(synth_request(15));   // evicts the cold end: 12
  EXPECT_EQ(s.calls.load(), 3);
  TableService::Stats st = s.svc->stats();
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.evictions, 1u);
  // 12 was evicted (cold miss again); 9 survived the eviction.
  s.svc->query(synth_request(12));
  EXPECT_EQ(s.calls.load(), 4);
  s.svc->query(synth_request(15));   // still resident after 12's re-insert
  EXPECT_EQ(s.calls.load(), 4);
  st = s.svc->stats();
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.evictions, 2u);  // 9 went when 12 came back
  EXPECT_EQ(st.hits, 2u);
  EXPECT_EQ(st.misses, 4u);
}

TEST(TableService, ResidentBytesStayWithinBudgetUnderReplayLoad) {
  // Zipf-ish replay over far more variants than fit: the pool must churn
  // (evictions) while the resident high-water gauge never crosses the
  // configured budget — the bench's LRU contract, in miniature.
  const size_t capacity = 8 * 1024;  // ~6 synthetic tables
  SyntheticService s(capacity);
  uint64_t lcg = 0x9e3779b97f4a7c15ull;
  for (int q = 0; q < 5000; ++q) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    // Skewed variant choice: low ids dominate, tail ids churn the LRU.
    const int variant = static_cast<int>((lcg >> 33) % 64) / ((q % 3) + 1);
    s.svc->query(synth_request(variant));
    const TableService::Stats st = s.svc->stats();
    ASSERT_LE(st.bytes, capacity) << "resident bytes exceeded the budget at query " << q;
  }
  const TableService::Stats st = s.svc->stats();
  EXPECT_GT(st.evictions, 0u);
  EXPECT_GT(st.hits, 0u);
  EXPECT_LE(st.peak_bytes, capacity);
  EXPECT_GE(st.peak_bytes, st.bytes);  // the gauge is a high-water mark
}

TEST(TableService, PeakBytesTracksHighWaterAcrossClear) {
  SyntheticService s(1 << 20);
  s.svc->query(synth_request(9));
  s.svc->query(synth_request(12));
  const size_t resident = s.svc->stats().bytes;
  EXPECT_EQ(s.svc->stats().peak_bytes, resident);
  s.svc->clear();
  const TableService::Stats st = s.svc->stats();
  EXPECT_EQ(st.bytes, 0u);
  EXPECT_EQ(st.peak_bytes, resident);  // clear() drops residency, not history
}

TEST(TableService, OversizedEntryIsStillPooled) {
  // A single table above the budget must not evict itself: the newest
  // entry is always retained, so repeated queries still hit.
  SyntheticService s(64);  // far below one table's footprint
  const auto first = s.svc->query(synth_request(12));
  const auto second = s.svc->query(synth_request(12));
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(s.calls.load(), 1);
  EXPECT_EQ(s.svc->stats().entries, 1u);
}

TEST(TableService, CapacityComesFromEnvKnob) {
  EnvGuard mb("GNRFET_TABLE_LRU_MB", "3");
  TableService svc;  // capacity_bytes = 0 -> env
  EXPECT_EQ(svc.capacity_bytes(), 3u * 1024 * 1024);
}

TEST(TableService, QueryPoolsAndSharesEntries) {
  SyntheticService s(1 << 20);
  const auto a = s.svc->query(synth_request(9));
  const auto b = s.svc->query(synth_request(9));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(s.calls.load(), 1);
  const TableService::Stats st = s.svc->stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.coalesced, 0u);
}

TEST(TableService, ClearKeepsOutstandingHandlesValid) {
  SyntheticService s(1 << 20);
  const auto held = s.svc->query(synth_request(9));
  s.svc->clear();
  EXPECT_EQ(s.svc->stats().entries, 0u);
  EXPECT_DOUBLE_EQ(held->band_gap_eV, 0.09);  // eviction never frees held entries
  s.svc->query(synth_request(9));             // cold again after clear
  EXPECT_EQ(s.calls.load(), 2);
}

TEST(TableService, BatchDeduplicatesWithinTheBatch) {
  SyntheticService s(1 << 20);
  const std::vector<TableRequest> batch = {synth_request(9), synth_request(12),
                                           synth_request(9), synth_request(12),
                                           synth_request(9)};
  const auto replies = s.svc->query_batch(batch);
  ASSERT_EQ(replies.size(), 5u);
  EXPECT_EQ(s.calls.load(), 2);  // two distinct variants, one generation each
  EXPECT_EQ(replies[0].table.get(), replies[2].table.get());
  EXPECT_EQ(replies[0].table.get(), replies[4].table.get());
  EXPECT_EQ(replies[1].table.get(), replies[3].table.get());
  EXPECT_NE(replies[0].table.get(), replies[1].table.get());
  EXPECT_EQ(replies[0].key, replies[2].key);
  for (const auto& r : replies) EXPECT_FALSE(r.warm);
  EXPECT_EQ(s.svc->stats().misses, 2u);
}

TEST(TableService, BatchAnswersWarmEntriesWithoutGeneration) {
  SyntheticService s(1 << 20);
  const std::vector<TableRequest> batch = {synth_request(9), synth_request(12),
                                           synth_request(9)};
  s.svc->query_batch(batch);
  const int calls_after_first = s.calls.load();
  const auto replies = s.svc->query_batch(batch);
  EXPECT_EQ(s.calls.load(), calls_after_first);  // fully warm batch
  for (const auto& r : replies) EXPECT_TRUE(r.warm);
  EXPECT_EQ(s.svc->stats().hits, 3u);
}

TEST(TableService, GenerationErrorPropagatesAndSlotIsReleased) {
  TableService::Options opts;
  opts.capacity_bytes = 1 << 20;
  std::atomic<int> calls{0};
  opts.generator = [&](const device::DeviceSpec&,
                       const device::TableGenOptions&) -> device::DeviceTable {
    calls.fetch_add(1, std::memory_order_relaxed);
    throw std::runtime_error("generator boom");
  };
  TableService svc(std::move(opts));
  EXPECT_THROW(svc.query(synth_request(9)), std::runtime_error);
  // The failed flight must not wedge the key: a retry leads a new one.
  EXPECT_THROW(svc.query(synth_request(9)), std::runtime_error);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(svc.stats().entries, 0u);
}

TEST(TableServiceParallel, ConcurrentMixedQueriesCoalesceAndShare) {
  SyntheticService s(1 << 20);
  ThreadCountGuard threads(8);
  std::vector<std::shared_ptr<const device::DeviceTable>> got(64);
  par::parallel_for(got.size(), [&](size_t i) {
    got[i] = s.svc->query(synth_request(9 + 3 * static_cast<int>(i % 4)));
  });
  EXPECT_EQ(s.calls.load(), 4);  // one generation per distinct variant
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i]);
    EXPECT_EQ(got[i].get(), got[i % 4].get());  // everyone shares the pool entry
  }
  const TableService::Stats st = s.svc->stats();
  EXPECT_EQ(st.misses, 4u);
  EXPECT_EQ(st.hits + st.coalesced, 60u);
}

TEST(TableServiceParallel, SingleFlightStampedeGeneratesOnce) {
  // Eight threads hit one cold variant of the *real* pipeline (tiny device,
  // 2x2 bias grid): exactly one NEGF generation may run — asserted via the
  // device-layer cache-miss counter — and everyone shares its result.
  const auto dir = std::filesystem::temp_directory_path() / "gnrfet_service_stampede";
  std::filesystem::remove_all(dir);
  EnvGuard cache_dir("GNRFET_CACHE_DIR", dir.string());
  TableService::Options opts;
  opts.capacity_bytes = 1 << 20;
  TableService svc(std::move(opts));  // default generator: generate_device_table
  TableRequest req;
  req.spec.n_index = 12;
  req.spec.channel_length_nm = 6.0;
  req.spec.grid_step_nm = 0.35;
  req.spec.lateral_margin_nm = 2.0;
  req.spec.num_modes = 2;
  req.opts.vg_points = 2;
  req.opts.vd_points = 2;
  req.opts.vg_max = 0.5;
  req.opts.vd_max = 0.5;
  req.opts.solve.energy_step_eV = 5e-3;
  req.opts.solve.gummel_tolerance_V = 3e-3;
  const uint64_t misses_before = counter_total(metrics::Counter::kTableCacheMisses);
  ThreadCountGuard threads(8);
  std::vector<std::shared_ptr<const device::DeviceTable>> got(8);
  par::parallel_for(got.size(), [&](size_t i) { got[i] = svc.query(req); });
  EXPECT_EQ(counter_total(metrics::Counter::kTableCacheMisses), misses_before + 1);
  for (const auto& t : got) {
    ASSERT_TRUE(t);
    EXPECT_EQ(t.get(), got[0].get());
  }
  const TableService::Stats st = svc.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits + st.coalesced, 7u);
  std::filesystem::remove_all(dir);
}

TEST(TableServiceParallel, LockfileSerializesTwoServices) {
  // Two service instances over one cache directory stand in for two
  // processes: the generation lockfile must let exactly one generate while
  // the other, once through the lock, loads the finished table from disk.
  const auto dir = std::filesystem::temp_directory_path() / "gnrfet_service_lockfile";
  std::filesystem::remove_all(dir);
  EnvGuard cache_dir("GNRFET_CACHE_DIR", dir.string());
  std::atomic<int> generations{0};
  const auto make_service = [&] {
    TableService::Options opts;
    opts.capacity_bytes = 1 << 20;
    opts.generator = [&](const device::DeviceSpec& spec, const device::TableGenOptions& o) {
      generations.fetch_add(1, std::memory_order_relaxed);
      // Hold the lock long enough for the other service to pile up on it.
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      device::DeviceTable t = synth_table(spec.n_index);
      const std::string key = device::table_cache_payload(spec, o);
      device::save_table(t, cache::path_for("device-table", key), key);
      return t;
    };
    return std::make_unique<TableService>(std::move(opts));
  };
  auto service_a = make_service();
  auto service_b = make_service();
  TableRequest req = synth_request(12);
  req.opts.use_cache = true;  // the lockfile only guards cached requests
  std::shared_ptr<const device::DeviceTable> from_a, from_b;
  std::thread ta([&] { from_a = service_a->query(req); });
  std::thread tb([&] { from_b = service_b->query(req); });
  ta.join();
  tb.join();
  EXPECT_EQ(generations.load(), 1);  // the loser loaded the winner's file
  ASSERT_TRUE(from_a);
  ASSERT_TRUE(from_b);
  EXPECT_EQ(from_a->current_A, from_b->current_A);
  EXPECT_EQ(from_a->charge_C, from_b->charge_C);
  EXPECT_EQ(from_a->band_gap_eV, from_b->band_gap_eV);
  // The lockfile itself must not linger beside the cache entry.
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    EXPECT_NE(e.path().extension().string(), ".lock") << "leftover lockfile: " << e.path();
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
