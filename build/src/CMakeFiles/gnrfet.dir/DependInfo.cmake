
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/dc.cpp" "src/CMakeFiles/gnrfet.dir/circuit/dc.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/circuit/dc.cpp.o.d"
  "/root/repo/src/circuit/elements.cpp" "src/CMakeFiles/gnrfet.dir/circuit/elements.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/circuit/elements.cpp.o.d"
  "/root/repo/src/circuit/measure.cpp" "src/CMakeFiles/gnrfet.dir/circuit/measure.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/circuit/measure.cpp.o.d"
  "/root/repo/src/circuit/mna.cpp" "src/CMakeFiles/gnrfet.dir/circuit/mna.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/circuit/mna.cpp.o.d"
  "/root/repo/src/circuit/netlists.cpp" "src/CMakeFiles/gnrfet.dir/circuit/netlists.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/circuit/netlists.cpp.o.d"
  "/root/repo/src/circuit/snm.cpp" "src/CMakeFiles/gnrfet.dir/circuit/snm.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/circuit/snm.cpp.o.d"
  "/root/repo/src/circuit/transient.cpp" "src/CMakeFiles/gnrfet.dir/circuit/transient.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/circuit/transient.cpp.o.d"
  "/root/repo/src/cmos/compact_model.cpp" "src/CMakeFiles/gnrfet.dir/cmos/compact_model.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/cmos/compact_model.cpp.o.d"
  "/root/repo/src/cmos/nodes.cpp" "src/CMakeFiles/gnrfet.dir/cmos/nodes.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/cmos/nodes.cpp.o.d"
  "/root/repo/src/common/cache.cpp" "src/CMakeFiles/gnrfet.dir/common/cache.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/common/cache.cpp.o.d"
  "/root/repo/src/common/constants.cpp" "src/CMakeFiles/gnrfet.dir/common/constants.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/common/constants.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/CMakeFiles/gnrfet.dir/common/csv.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/common/csv.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/CMakeFiles/gnrfet.dir/common/strings.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/common/strings.cpp.o.d"
  "/root/repo/src/device/geometry.cpp" "src/CMakeFiles/gnrfet.dir/device/geometry.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/device/geometry.cpp.o.d"
  "/root/repo/src/device/selfconsistent.cpp" "src/CMakeFiles/gnrfet.dir/device/selfconsistent.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/device/selfconsistent.cpp.o.d"
  "/root/repo/src/device/sweeps.cpp" "src/CMakeFiles/gnrfet.dir/device/sweeps.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/device/sweeps.cpp.o.d"
  "/root/repo/src/device/tablegen.cpp" "src/CMakeFiles/gnrfet.dir/device/tablegen.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/device/tablegen.cpp.o.d"
  "/root/repo/src/explore/contours.cpp" "src/CMakeFiles/gnrfet.dir/explore/contours.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/explore/contours.cpp.o.d"
  "/root/repo/src/explore/latch_study.cpp" "src/CMakeFiles/gnrfet.dir/explore/latch_study.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/explore/latch_study.cpp.o.d"
  "/root/repo/src/explore/montecarlo.cpp" "src/CMakeFiles/gnrfet.dir/explore/montecarlo.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/explore/montecarlo.cpp.o.d"
  "/root/repo/src/explore/tech_explore.cpp" "src/CMakeFiles/gnrfet.dir/explore/tech_explore.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/explore/tech_explore.cpp.o.d"
  "/root/repo/src/explore/variants.cpp" "src/CMakeFiles/gnrfet.dir/explore/variants.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/explore/variants.cpp.o.d"
  "/root/repo/src/gnr/bandstructure.cpp" "src/CMakeFiles/gnrfet.dir/gnr/bandstructure.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/gnr/bandstructure.cpp.o.d"
  "/root/repo/src/gnr/hamiltonian.cpp" "src/CMakeFiles/gnrfet.dir/gnr/hamiltonian.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/gnr/hamiltonian.cpp.o.d"
  "/root/repo/src/gnr/lattice.cpp" "src/CMakeFiles/gnrfet.dir/gnr/lattice.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/gnr/lattice.cpp.o.d"
  "/root/repo/src/gnr/modespace.cpp" "src/CMakeFiles/gnrfet.dir/gnr/modespace.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/gnr/modespace.cpp.o.d"
  "/root/repo/src/linalg/dense.cpp" "src/CMakeFiles/gnrfet.dir/linalg/dense.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/linalg/dense.cpp.o.d"
  "/root/repo/src/linalg/eig.cpp" "src/CMakeFiles/gnrfet.dir/linalg/eig.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/linalg/eig.cpp.o.d"
  "/root/repo/src/linalg/lu.cpp" "src/CMakeFiles/gnrfet.dir/linalg/lu.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/linalg/lu.cpp.o.d"
  "/root/repo/src/linalg/pcg.cpp" "src/CMakeFiles/gnrfet.dir/linalg/pcg.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/linalg/pcg.cpp.o.d"
  "/root/repo/src/linalg/sparse.cpp" "src/CMakeFiles/gnrfet.dir/linalg/sparse.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/linalg/sparse.cpp.o.d"
  "/root/repo/src/model/array_fet.cpp" "src/CMakeFiles/gnrfet.dir/model/array_fet.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/model/array_fet.cpp.o.d"
  "/root/repo/src/model/extrinsic_fet.cpp" "src/CMakeFiles/gnrfet.dir/model/extrinsic_fet.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/model/extrinsic_fet.cpp.o.d"
  "/root/repo/src/model/intrinsic_fet.cpp" "src/CMakeFiles/gnrfet.dir/model/intrinsic_fet.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/model/intrinsic_fet.cpp.o.d"
  "/root/repo/src/model/table2d.cpp" "src/CMakeFiles/gnrfet.dir/model/table2d.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/model/table2d.cpp.o.d"
  "/root/repo/src/negf/energygrid.cpp" "src/CMakeFiles/gnrfet.dir/negf/energygrid.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/negf/energygrid.cpp.o.d"
  "/root/repo/src/negf/rgf.cpp" "src/CMakeFiles/gnrfet.dir/negf/rgf.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/negf/rgf.cpp.o.d"
  "/root/repo/src/negf/scalar_rgf.cpp" "src/CMakeFiles/gnrfet.dir/negf/scalar_rgf.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/negf/scalar_rgf.cpp.o.d"
  "/root/repo/src/negf/selfenergy.cpp" "src/CMakeFiles/gnrfet.dir/negf/selfenergy.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/negf/selfenergy.cpp.o.d"
  "/root/repo/src/negf/transport.cpp" "src/CMakeFiles/gnrfet.dir/negf/transport.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/negf/transport.cpp.o.d"
  "/root/repo/src/poisson/assembly.cpp" "src/CMakeFiles/gnrfet.dir/poisson/assembly.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/poisson/assembly.cpp.o.d"
  "/root/repo/src/poisson/grid.cpp" "src/CMakeFiles/gnrfet.dir/poisson/grid.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/poisson/grid.cpp.o.d"
  "/root/repo/src/poisson/nonlinear.cpp" "src/CMakeFiles/gnrfet.dir/poisson/nonlinear.cpp.o" "gcc" "src/CMakeFiles/gnrfet.dir/poisson/nonlinear.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
