# Empty dependencies file for gnrfet.
# This may be replaced when dependencies are built.
