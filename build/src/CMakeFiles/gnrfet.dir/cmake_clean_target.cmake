file(REMOVE_RECURSE
  "libgnrfet.a"
)
