# Empty compiler generated dependencies file for bench_fig7_latch_snm.
# This may be replaced when dependencies are built.
