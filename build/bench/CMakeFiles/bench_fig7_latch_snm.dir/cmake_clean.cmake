file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_latch_snm.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig7_latch_snm.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig7_latch_snm.dir/bench_fig7_latch_snm.cpp.o"
  "CMakeFiles/bench_fig7_latch_snm.dir/bench_fig7_latch_snm.cpp.o.d"
  "bench_fig7_latch_snm"
  "bench_fig7_latch_snm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_latch_snm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
