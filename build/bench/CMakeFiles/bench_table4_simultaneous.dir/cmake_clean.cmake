file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_simultaneous.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table4_simultaneous.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table4_simultaneous.dir/bench_table4_simultaneous.cpp.o"
  "CMakeFiles/bench_table4_simultaneous.dir/bench_table4_simultaneous.cpp.o.d"
  "bench_table4_simultaneous"
  "bench_table4_simultaneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_simultaneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
