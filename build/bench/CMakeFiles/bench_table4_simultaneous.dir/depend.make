# Empty dependencies file for bench_table4_simultaneous.
# This may be replaced when dependencies are built.
