file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_contours.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig3_contours.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig3_contours.dir/bench_fig3_contours.cpp.o"
  "CMakeFiles/bench_fig3_contours.dir/bench_fig3_contours.cpp.o.d"
  "bench_fig3_contours"
  "bench_fig3_contours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_contours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
