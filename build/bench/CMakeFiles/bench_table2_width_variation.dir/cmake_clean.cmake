file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_width_variation.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table2_width_variation.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table2_width_variation.dir/bench_table2_width_variation.cpp.o"
  "CMakeFiles/bench_table2_width_variation.dir/bench_table2_width_variation.cpp.o.d"
  "bench_table2_width_variation"
  "bench_table2_width_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_width_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
