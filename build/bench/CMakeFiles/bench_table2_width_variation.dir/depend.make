# Empty dependencies file for bench_table2_width_variation.
# This may be replaced when dependencies are built.
