# Empty dependencies file for bench_fig4_width_iv.
# This may be replaced when dependencies are built.
