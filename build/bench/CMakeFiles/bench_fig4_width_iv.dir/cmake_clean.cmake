file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_width_iv.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig4_width_iv.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig4_width_iv.dir/bench_fig4_width_iv.cpp.o"
  "CMakeFiles/bench_fig4_width_iv.dir/bench_fig4_width_iv.cpp.o.d"
  "bench_fig4_width_iv"
  "bench_fig4_width_iv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_width_iv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
