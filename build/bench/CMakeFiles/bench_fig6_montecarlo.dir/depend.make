# Empty dependencies file for bench_fig6_montecarlo.
# This may be replaced when dependencies are built.
