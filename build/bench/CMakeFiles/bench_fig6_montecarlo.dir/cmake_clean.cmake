file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_montecarlo.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig6_montecarlo.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig6_montecarlo.dir/bench_fig6_montecarlo.cpp.o"
  "CMakeFiles/bench_fig6_montecarlo.dir/bench_fig6_montecarlo.cpp.o.d"
  "bench_fig6_montecarlo"
  "bench_fig6_montecarlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_montecarlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
