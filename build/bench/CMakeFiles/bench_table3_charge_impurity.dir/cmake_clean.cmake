file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_charge_impurity.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table3_charge_impurity.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table3_charge_impurity.dir/bench_table3_charge_impurity.cpp.o"
  "CMakeFiles/bench_table3_charge_impurity.dir/bench_table3_charge_impurity.cpp.o.d"
  "bench_table3_charge_impurity"
  "bench_table3_charge_impurity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_charge_impurity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
