# Empty compiler generated dependencies file for bench_table3_charge_impurity.
# This may be replaced when dependencies are built.
