# Empty compiler generated dependencies file for bench_ext_edge_roughness.
# This may be replaced when dependencies are built.
