file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_edge_roughness.dir/bench_common.cpp.o"
  "CMakeFiles/bench_ext_edge_roughness.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_ext_edge_roughness.dir/bench_ext_edge_roughness.cpp.o"
  "CMakeFiles/bench_ext_edge_roughness.dir/bench_ext_edge_roughness.cpp.o.d"
  "bench_ext_edge_roughness"
  "bench_ext_edge_roughness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_edge_roughness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
