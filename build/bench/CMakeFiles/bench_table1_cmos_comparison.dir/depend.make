# Empty dependencies file for bench_table1_cmos_comparison.
# This may be replaced when dependencies are built.
