file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_impurity.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig5_impurity.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig5_impurity.dir/bench_fig5_impurity.cpp.o"
  "CMakeFiles/bench_fig5_impurity.dir/bench_fig5_impurity.cpp.o.d"
  "bench_fig5_impurity"
  "bench_fig5_impurity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_impurity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
