# Empty dependencies file for bench_fig5_impurity.
# This may be replaced when dependencies are built.
