# Empty dependencies file for gen_tables.
# This may be replaced when dependencies are built.
