file(REMOVE_RECURSE
  "CMakeFiles/gen_tables.dir/gen_tables.cpp.o"
  "CMakeFiles/gen_tables.dir/gen_tables.cpp.o.d"
  "gen_tables"
  "gen_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
