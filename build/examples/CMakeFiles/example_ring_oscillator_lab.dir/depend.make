# Empty dependencies file for example_ring_oscillator_lab.
# This may be replaced when dependencies are built.
