file(REMOVE_RECURSE
  "CMakeFiles/example_ring_oscillator_lab.dir/ring_oscillator_lab.cpp.o"
  "CMakeFiles/example_ring_oscillator_lab.dir/ring_oscillator_lab.cpp.o.d"
  "example_ring_oscillator_lab"
  "example_ring_oscillator_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ring_oscillator_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
