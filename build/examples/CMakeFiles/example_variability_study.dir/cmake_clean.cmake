file(REMOVE_RECURSE
  "CMakeFiles/example_variability_study.dir/variability_study.cpp.o"
  "CMakeFiles/example_variability_study.dir/variability_study.cpp.o.d"
  "example_variability_study"
  "example_variability_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_variability_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
