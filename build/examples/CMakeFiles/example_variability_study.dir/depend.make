# Empty dependencies file for example_variability_study.
# This may be replaced when dependencies are built.
