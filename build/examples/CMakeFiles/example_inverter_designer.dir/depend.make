# Empty dependencies file for example_inverter_designer.
# This may be replaced when dependencies are built.
