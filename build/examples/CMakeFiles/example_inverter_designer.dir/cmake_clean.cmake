file(REMOVE_RECURSE
  "CMakeFiles/example_inverter_designer.dir/inverter_designer.cpp.o"
  "CMakeFiles/example_inverter_designer.dir/inverter_designer.cpp.o.d"
  "example_inverter_designer"
  "example_inverter_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_inverter_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
