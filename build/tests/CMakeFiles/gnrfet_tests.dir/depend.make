# Empty dependencies file for gnrfet_tests.
# This may be replaced when dependencies are built.
