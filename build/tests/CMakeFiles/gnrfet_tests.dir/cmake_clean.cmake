file(REMOVE_RECURSE
  "CMakeFiles/gnrfet_tests.dir/test_circuit.cpp.o"
  "CMakeFiles/gnrfet_tests.dir/test_circuit.cpp.o.d"
  "CMakeFiles/gnrfet_tests.dir/test_cmos.cpp.o"
  "CMakeFiles/gnrfet_tests.dir/test_cmos.cpp.o.d"
  "CMakeFiles/gnrfet_tests.dir/test_common.cpp.o"
  "CMakeFiles/gnrfet_tests.dir/test_common.cpp.o.d"
  "CMakeFiles/gnrfet_tests.dir/test_device.cpp.o"
  "CMakeFiles/gnrfet_tests.dir/test_device.cpp.o.d"
  "CMakeFiles/gnrfet_tests.dir/test_edge_cases.cpp.o"
  "CMakeFiles/gnrfet_tests.dir/test_edge_cases.cpp.o.d"
  "CMakeFiles/gnrfet_tests.dir/test_explore.cpp.o"
  "CMakeFiles/gnrfet_tests.dir/test_explore.cpp.o.d"
  "CMakeFiles/gnrfet_tests.dir/test_gnr.cpp.o"
  "CMakeFiles/gnrfet_tests.dir/test_gnr.cpp.o.d"
  "CMakeFiles/gnrfet_tests.dir/test_linalg.cpp.o"
  "CMakeFiles/gnrfet_tests.dir/test_linalg.cpp.o.d"
  "CMakeFiles/gnrfet_tests.dir/test_model.cpp.o"
  "CMakeFiles/gnrfet_tests.dir/test_model.cpp.o.d"
  "CMakeFiles/gnrfet_tests.dir/test_negf.cpp.o"
  "CMakeFiles/gnrfet_tests.dir/test_negf.cpp.o.d"
  "CMakeFiles/gnrfet_tests.dir/test_poisson.cpp.o"
  "CMakeFiles/gnrfet_tests.dir/test_poisson.cpp.o.d"
  "CMakeFiles/gnrfet_tests.dir/test_properties.cpp.o"
  "CMakeFiles/gnrfet_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/gnrfet_tests.dir/test_vacancy.cpp.o"
  "CMakeFiles/gnrfet_tests.dir/test_vacancy.cpp.o.d"
  "gnrfet_tests"
  "gnrfet_tests.pdb"
  "gnrfet_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnrfet_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
