
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_circuit.cpp" "tests/CMakeFiles/gnrfet_tests.dir/test_circuit.cpp.o" "gcc" "tests/CMakeFiles/gnrfet_tests.dir/test_circuit.cpp.o.d"
  "/root/repo/tests/test_cmos.cpp" "tests/CMakeFiles/gnrfet_tests.dir/test_cmos.cpp.o" "gcc" "tests/CMakeFiles/gnrfet_tests.dir/test_cmos.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/gnrfet_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/gnrfet_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_device.cpp" "tests/CMakeFiles/gnrfet_tests.dir/test_device.cpp.o" "gcc" "tests/CMakeFiles/gnrfet_tests.dir/test_device.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/gnrfet_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/gnrfet_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_explore.cpp" "tests/CMakeFiles/gnrfet_tests.dir/test_explore.cpp.o" "gcc" "tests/CMakeFiles/gnrfet_tests.dir/test_explore.cpp.o.d"
  "/root/repo/tests/test_gnr.cpp" "tests/CMakeFiles/gnrfet_tests.dir/test_gnr.cpp.o" "gcc" "tests/CMakeFiles/gnrfet_tests.dir/test_gnr.cpp.o.d"
  "/root/repo/tests/test_linalg.cpp" "tests/CMakeFiles/gnrfet_tests.dir/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/gnrfet_tests.dir/test_linalg.cpp.o.d"
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/gnrfet_tests.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/gnrfet_tests.dir/test_model.cpp.o.d"
  "/root/repo/tests/test_negf.cpp" "tests/CMakeFiles/gnrfet_tests.dir/test_negf.cpp.o" "gcc" "tests/CMakeFiles/gnrfet_tests.dir/test_negf.cpp.o.d"
  "/root/repo/tests/test_poisson.cpp" "tests/CMakeFiles/gnrfet_tests.dir/test_poisson.cpp.o" "gcc" "tests/CMakeFiles/gnrfet_tests.dir/test_poisson.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/gnrfet_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/gnrfet_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_vacancy.cpp" "tests/CMakeFiles/gnrfet_tests.dir/test_vacancy.cpp.o" "gcc" "tests/CMakeFiles/gnrfet_tests.dir/test_vacancy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gnrfet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
