// Repo-specific lint for the GNRFET codebase. Scans src/, tests/, bench/
// and tools/ for project-rule violations that generic compilers and
// clang-tidy don't enforce:
//
//   no-rand                 src/ libraries must not call rand()/srand()
//                           (the Monte Carlo layer is seeded <random> only,
//                           for thread-count-invariant reproducibility)
//   no-stdio                src/ libraries must not print (printf/std::cout):
//                           all user-facing output belongs to tools/bench
//   using-namespace-header  headers must not inject namespaces into every
//                           includer
//   pragma-once             every header carries #pragma once
//   raw-new-delete          no raw new/delete outside src/common/ (owning
//                           code uses containers and smart pointers)
//   unchecked-getenv        std::getenv only via common/env.hpp helpers
//                           (null/empty/parse handling in one place)
//
// Comments and string literals are stripped before matching (via the shared
// scanner in tools/source_scan.hpp), so rule names in documentation (or in
// this file) do not trip the rules themselves.
// Usage: gnrfet_lint [repo_root]   (exit 0 = clean, 1 = violations)

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/source_scan.hpp"

namespace {

namespace fs = std::filesystem;
using gnrfet::scan::find_token;
using gnrfet::scan::has_call;
using gnrfet::scan::strip_comments_and_strings;

struct Violation {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

/// `delete` used as an operator (raw deallocation) rather than `= delete`.
bool has_raw_delete(const std::string& line) {
  size_t pos = find_token(line, "delete");
  while (pos != std::string::npos) {
    size_t i = pos;
    while (i > 0 && line[i - 1] == ' ') --i;
    if (i == 0 || line[i - 1] != '=') return true;
    pos = find_token(line, "delete", pos + 1);
  }
  return false;
}

struct FileReport {
  std::vector<Violation> violations;
};

void scan_file(const fs::path& path, const std::string& display, bool in_src, bool in_common,
               std::vector<Violation>& out) {
  std::ifstream f(path, std::ios::binary);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string raw = ss.str();
  const std::string stripped = strip_comments_and_strings(raw);
  const bool is_header = path.extension() == ".hpp";

  if (is_header && raw.find("#pragma once") == std::string::npos) {
    out.push_back({display, 1, "pragma-once", "header is missing #pragma once"});
  }

  std::istringstream lines(stripped);
  std::string line;
  size_t lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (in_src) {
      if (has_call(line, "rand") || has_call(line, "srand")) {
        out.push_back({display, lineno, "no-rand",
                       "rand()/srand() in a library: use seeded <random> engines"});
      }
      if (has_call(line, "printf") || find_token(line, "cout") != std::string::npos) {
        out.push_back({display, lineno, "no-stdio",
                       "library code must not print; return data to the caller"});
      }
    }
    if (is_header && find_token(line, "using") != std::string::npos) {
      const size_t u = find_token(line, "using");
      const size_t n = find_token(line, "namespace", u);
      if (n != std::string::npos && line.find_first_not_of(' ', u + 5) == n) {
        out.push_back({display, lineno, "using-namespace-header",
                       "headers must not inject namespaces into every includer"});
      }
    }
    if (!in_common) {
      if (find_token(line, "new") != std::string::npos) {
        // Raw `new` is an expression: `new T(...)`. Exclude identifiers via
        // the token check; anything left in code context is a violation.
        out.push_back({display, lineno, "raw-new-delete",
                       "raw new outside src/common/: use containers/smart pointers"});
      }
      if (has_raw_delete(line)) {
        out.push_back({display, lineno, "raw-new-delete",
                       "raw delete outside src/common/: use containers/smart pointers"});
      }
      if (find_token(line, "getenv") != std::string::npos) {
        out.push_back({display, lineno, "unchecked-getenv",
                       "use the checked helpers in common/env.hpp instead of std::getenv"});
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::path(".");
  const std::vector<std::string> scan_dirs = {"src", "tests", "bench", "tools"};

  std::vector<Violation> violations;
  size_t files = 0;
  for (const auto& dirname : scan_dirs) {
    const fs::path dir = root / dirname;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      if (p.extension() != ".cpp" && p.extension() != ".hpp") continue;
      const std::string display = fs::relative(p, root).generic_string();
      const bool in_src = dirname == "src";
      const bool in_common = display.rfind("src/common/", 0) == 0;
      ++files;
      scan_file(p, display, in_src, in_common, violations);
    }
  }

  for (const auto& v : violations) {
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message << "\n";
  }
  if (violations.empty()) {
    std::cout << "gnrfet_lint: " << files << " files clean\n";
    return 0;
  }
  std::cout << "gnrfet_lint: " << violations.size() << " violation(s) in " << files
            << " files\n";
  return 1;
}
