#pragma once

// Shared lexical scanning helpers for the repo's source-analysis tools
// (gnrfet_lint, gnrfet_analyze) and their tests. Everything operates on
// whole-file strings; nothing here touches the filesystem.

#include <cctype>
#include <string>

namespace gnrfet::scan {

inline bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

namespace detail {

/// True when the '"' at `pos` opens a raw string literal: it is directly
/// preceded by `R` with an optional `u8`/`u`/`U`/`L` encoding prefix, and
/// that prefix is not the tail of a longer identifier (`FooR"..."` is a
/// macro call followed by a string, not a raw literal).
inline bool is_raw_string_quote(const std::string& in, size_t pos) {
  if (pos == 0 || in[pos - 1] != 'R') return false;
  size_t start = pos - 1;  // index of 'R'
  if (start >= 2 && in[start - 2] == 'u' && in[start - 1] == '8') {
    start -= 2;
  } else if (start >= 1 &&
             (in[start - 1] == 'u' || in[start - 1] == 'U' || in[start - 1] == 'L')) {
    start -= 1;
  }
  return start == 0 || !ident_char(in[start - 1]);
}

}  // namespace detail

/// Blank out comments and string/char literals, preserving newlines so line
/// numbers survive. Handles //, /* */, "..." and '...' with escapes, raw
/// string literals (R"delim(...)delim" with u8/u/U/L prefixes), escaped
/// newlines inside ordinary literals, and backslash-continued // comments.
/// Newlines inside literals and comments are kept, so the output has exactly
/// the input's line structure.
inline std::string strip_comments_and_strings(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State st = State::kCode;
  std::string raw_close;  // ")delim\"" terminator while in kRawString
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && next == '/') {
          st = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          st = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"' && detail::is_raw_string_quote(in, i)) {
          // R"delim( ... )delim" — the delimiter (up to 16 chars) ends at the
          // first '('; no escape processing happens until )delim" closes it.
          const size_t paren = in.find('(', i + 1);
          if (paren == std::string::npos || paren - (i + 1) > 16) {
            st = State::kString;  // malformed; degrade to an ordinary literal
            out += ' ';
            break;
          }
          raw_close = ")" + in.substr(i + 1, paren - (i + 1)) + "\"";
          for (size_t k = i; k <= paren; ++k) out += in[k] == '\n' ? '\n' : ' ';
          i = paren;
          st = State::kRawString;
        } else if (c == '"') {
          st = State::kString;
          out += ' ';
        } else if (c == '\'') {
          st = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kRawString:
        if (in.compare(i, raw_close.size(), raw_close) == 0) {
          out.append(raw_close.size(), ' ');
          i += raw_close.size() - 1;
          st = State::kCode;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\\' && next == '\n') {
          // Line continuation: the comment swallows the next line too.
          out += " \n";
          ++i;
        } else if (c == '\n') {
          st = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          st = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          out += ' ';
          out += next == '\n' ? '\n' : ' ';  // keep escaped newlines as lines
          ++i;
        } else if ((st == State::kString && c == '"') ||
                   (st == State::kChar && c == '\'')) {
          st = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

/// Position of `token` in `line` as a whole identifier (not a substring of
/// a longer identifier), or npos.
inline size_t find_token(const std::string& line, const std::string& token, size_t from = 0) {
  size_t pos = line.find(token, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) return pos;
    pos = line.find(token, pos + 1);
  }
  return std::string::npos;
}

/// `token` occurs as an identifier and the next non-space character is '('.
inline bool has_call(const std::string& line, const std::string& token) {
  size_t pos = find_token(line, token);
  while (pos != std::string::npos) {
    size_t i = pos + token.size();
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size() && line[i] == '(') return true;
    pos = find_token(line, token, pos + 1);
  }
  return false;
}

}  // namespace gnrfet::scan
