// Summarizes a Chrome trace-event JSON file emitted by the GNRFET trace
// layer (common/trace.hpp, enabled via GNRFET_TRACE=<path>). Prints, per
// (subsystem, span): call count, total and self wall time (self = total
// minus enclosed child spans on the same thread), and per-call stats;
// then a per-subsystem rollup of self time, the metrics counters, and the
// metrics histograms embedded in the file.
//
// Usage: gnrfet_trace_report [--json] <trace.json>
//        (exit 0 = ok, 1 = bad input)
//
// --json replaces the human tables with one machine-readable JSON object
// on stdout — {spans, subsystem_self_ms, counters, histograms} — so CI
// stages assert on fields instead of grepping formatted text.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

/// Minimal JSON value: enough for the subset the trace writer emits
/// (objects, arrays, strings, numbers, bools, null). Objects keep
/// insertion order as key/value pairs.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool parse(Value& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

  size_t error_pos() const { return pos_; }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // The writer never emits \u escapes; accept and skip them.
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;
            out += '?';
            break;
          default:
            return false;
        }
      } else {
        out += c;
      }
    }
    return false;
  }

  bool parse_number(double& out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    // strtod instead of stod: stod throws on subnormal magnitudes, which a
    // histogram sum can legitimately contain.
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out = std::strtod(token.c_str(), &end);
    return end == token.c_str() + token.size();
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = Value::Kind::kObject;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':') return false;
        ++pos_;
        Value v;
        if (!parse_value(v)) return false;
        out.object.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = Value::Kind::kArray;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        Value v;
        if (!parse_value(v)) return false;
        out.array.push_back(std::move(v));
        skip_ws();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      out.kind = Value::Kind::kString;
      return parse_string(out.str);
    }
    if (c == 't') {
      out.kind = Value::Kind::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = Value::Kind::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.kind = Value::Kind::kNull;
      return literal("null");
    }
    out.kind = Value::Kind::kNumber;
    return parse_number(out.number);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

struct SpanEvent {
  std::string cat;
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
  double self = 0.0;  // dur minus children, filled by compute_self_times
  int64_t tid = 0;
};

/// Attribute each span's duration minus its same-thread children: spans
/// nest by construction (RAII), so on every thread the events form a
/// forest ordered by (ts, -dur).
void compute_self_times(std::vector<SpanEvent>& events) {
  std::map<int64_t, std::vector<SpanEvent*>> by_tid;
  for (auto& e : events) {
    e.self = e.dur;
    by_tid[e.tid].push_back(&e);
  }
  for (auto& [tid, list] : by_tid) {
    std::sort(list.begin(), list.end(), [](const SpanEvent* a, const SpanEvent* b) {
      if (a->ts != b->ts) return a->ts < b->ts;
      return a->dur > b->dur;
    });
    std::vector<SpanEvent*> stack;
    for (SpanEvent* e : list) {
      while (!stack.empty() && stack.back()->ts + stack.back()->dur <= e->ts + 1e-9) {
        stack.pop_back();
      }
      if (!stack.empty()) stack.back()->self -= e->dur;
      stack.push_back(e);
    }
  }
}

struct SpanStats {
  uint64_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;
  double min_us = 1e300;
  double max_us = 0.0;
};

std::string fmt_ms(double us) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << us / 1000.0;
  return os.str();
}

/// JSON string escaping for the names we re-emit (subsystem/span/counter
/// identifiers; quotes and backslashes are the only realistic hazards).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_json = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      emit_json = true;
    } else if (!path) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (!path) {
    std::cerr << "usage: gnrfet_trace_report [--json] <trace.json>\n";
    return 1;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "gnrfet_trace_report: cannot open " << path << "\n";
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  Value root;
  Parser parser(text);
  if (!parser.parse(root) || root.kind != Value::Kind::kObject) {
    std::cerr << "gnrfet_trace_report: " << path << ": JSON parse error near byte "
              << parser.error_pos() << "\n";
    return 1;
  }
  const Value* trace_events = root.find("traceEvents");
  if (!trace_events || trace_events->kind != Value::Kind::kArray) {
    std::cerr << "gnrfet_trace_report: missing traceEvents array\n";
    return 1;
  }

  std::vector<SpanEvent> events;
  for (const Value& ev : trace_events->array) {
    if (ev.kind != Value::Kind::kObject) continue;
    const Value* ph = ev.find("ph");
    if (!ph || ph->str != "X") continue;
    SpanEvent e;
    if (const Value* v = ev.find("cat")) e.cat = v->str;
    if (const Value* v = ev.find("name")) e.name = v->str;
    if (const Value* v = ev.find("ts")) e.ts = v->number;
    if (const Value* v = ev.find("dur")) e.dur = v->number;
    if (const Value* v = ev.find("tid")) e.tid = static_cast<int64_t>(v->number);
    events.push_back(std::move(e));
  }
  compute_self_times(events);

  std::map<std::pair<std::string, std::string>, SpanStats> spans;
  std::map<std::string, double> subsystem_self_us;
  for (const SpanEvent& e : events) {
    SpanStats& s = spans[{e.cat, e.name}];
    ++s.count;
    s.total_us += e.dur;
    s.self_us += e.self;
    s.min_us = std::min(s.min_us, e.dur);
    s.max_us = std::max(s.max_us, e.dur);
    subsystem_self_us[e.cat] += e.self;
  }

  if (emit_json) {
    std::ostringstream os;
    os.precision(17);
    os << "{\"trace\":\"" << json_escape(path) << "\",\"span_count\":" << events.size();
    os << ",\"spans\":[";
    bool first = true;
    for (const auto& [key, s] : spans) {
      if (!first) os << ",";
      first = false;
      os << "{\"subsystem\":\"" << json_escape(key.first) << "\",\"span\":\""
         << json_escape(key.second) << "\",\"count\":" << s.count
         << ",\"total_ms\":" << s.total_us / 1000.0 << ",\"self_ms\":" << s.self_us / 1000.0
         << ",\"mean_us\":" << s.total_us / static_cast<double>(s.count)
         << ",\"max_us\":" << s.max_us << "}";
    }
    os << "],\"subsystem_self_ms\":{";
    first = true;
    for (const auto& [cat, self_us] : subsystem_self_us) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(cat) << "\":" << self_us / 1000.0;
    }
    os << "},\"counters\":{";
    first = true;
    if (const Value* counters = root.find("gnrfetCounters");
        counters && counters->kind == Value::Kind::kObject) {
      for (const auto& [name, v] : counters->object) {
        if (!first) os << ",";
        first = false;
        os << "\"" << json_escape(name) << "\":" << static_cast<uint64_t>(v.number);
      }
    }
    os << "},\"histograms\":{";
    first = true;
    if (const Value* hists = root.find("gnrfetHistograms");
        hists && hists->kind == Value::Kind::kObject) {
      for (const auto& [name, h] : hists->object) {
        const Value* count = h.find("count");
        if (!count) continue;
        const Value* sum = h.find("sum");
        const Value* min = h.find("min");
        const Value* max = h.find("max");
        if (!first) os << ",";
        first = false;
        os << "\"" << json_escape(name) << "\":{\"count\":"
           << static_cast<uint64_t>(count->number) << ",\"sum\":" << (sum ? sum->number : 0.0)
           << ",\"min\":" << (min ? min->number : 0.0)
           << ",\"max\":" << (max ? max->number : 0.0) << "}";
      }
    }
    os << "}}";
    std::cout << os.str() << "\n";
    return 0;
  }

  // Column widths follow the data: std::setw is a minimum, so a span,
  // counter, or histogram name longer than a hard-coded width would shove
  // its row out of alignment (new metrics land here without this file
  // changing). Each table is sized to its longest name instead.
  int cat_w = static_cast<int>(std::string("subsystem").size());
  int span_w = static_cast<int>(std::string("span").size());
  for (const auto& [key, s] : spans) {
    (void)s;
    cat_w = std::max(cat_w, static_cast<int>(key.first.size()));
    span_w = std::max(span_w, static_cast<int>(key.second.size()));
  }
  cat_w += 2;
  span_w += 2;

  std::cout << "trace: " << argv[1] << " (" << events.size() << " spans)\n\n";
  std::cout << std::left << std::setw(cat_w) << "subsystem" << std::setw(span_w) << "span"
            << std::right << std::setw(10) << "count" << std::setw(14) << "total_ms"
            << std::setw(14) << "self_ms" << std::setw(12) << "mean_us" << std::setw(12)
            << "max_us" << "\n";
  for (const auto& [key, s] : spans) {
    std::cout << std::left << std::setw(cat_w) << key.first << std::setw(span_w) << key.second
              << std::right << std::setw(10) << s.count << std::setw(14)
              << fmt_ms(s.total_us) << std::setw(14) << fmt_ms(s.self_us) << std::setw(12)
              << std::fixed << std::setprecision(1)
              << s.total_us / static_cast<double>(s.count) << std::setw(12) << s.max_us
              << "\n";
  }

  std::cout << "\nper-subsystem self time:\n";
  std::vector<std::pair<std::string, double>> subsystems(subsystem_self_us.begin(),
                                                         subsystem_self_us.end());
  std::sort(subsystems.begin(), subsystems.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [cat, self_us] : subsystems) {
    std::cout << "  " << std::left << std::setw(cat_w) << cat << std::right << std::setw(14)
              << fmt_ms(self_us) << " ms\n";
  }

  if (const Value* counters = root.find("gnrfetCounters");
      counters && counters->kind == Value::Kind::kObject) {
    int name_w = 0;
    for (const auto& [name, v] : counters->object) {
      (void)v;
      name_w = std::max(name_w, static_cast<int>(name.size()));
    }
    std::cout << "\ncounters:\n";
    for (const auto& [name, v] : counters->object) {
      std::cout << "  " << std::left << std::setw(name_w + 2) << name << std::right
                << std::setw(14) << static_cast<uint64_t>(v.number) << "\n";
    }
  }

  if (const Value* hists = root.find("gnrfetHistograms");
      hists && hists->kind == Value::Kind::kObject) {
    int name_w = 0;
    for (const auto& [name, h] : hists->object) {
      (void)h;
      name_w = std::max(name_w, static_cast<int>(name.size()));
    }
    std::cout << "\nhistograms (per-call distributions):\n";
    for (const auto& [name, h] : hists->object) {
      const Value* count = h.find("count");
      if (!count || count->number <= 0) continue;
      const Value* sum = h.find("sum");
      const Value* min = h.find("min");
      const Value* max = h.find("max");
      std::cout << "  " << std::left << std::setw(name_w + 2) << name << std::right
                << " count=" << static_cast<uint64_t>(count->number)
                << " mean=" << std::setprecision(2)
                << (sum ? sum->number / count->number : 0.0)
                << " min=" << (min ? min->number : 0.0) << " max=" << (max ? max->number : 0.0)
                << "\n";
      if (const Value* buckets = h.find("buckets");
          buckets && buckets->kind == Value::Kind::kArray) {
        for (const Value& b : buckets->array) {
          if (b.array.size() != 2) continue;
          std::cout << "      >= " << std::setw(10) << b.array[0].number << " : "
                    << static_cast<uint64_t>(b.array[1].number) << "\n";
        }
      }
    }
  }
  return 0;
}
