// Multi-pass static analyzer for the GNRFET codebase. Enforces properties
// the compiler can't see but the physics results depend on:
//
//   layering      the module include graph must respect the layer DAG in
//                 tools/analysis_layers.txt (common -> linalg -> {gnr,
//                 poisson} -> negf -> {model, device} -> {circuit, cmos} ->
//                 explore), and no file-level include cycles
//   determinism   no unordered-container iteration, parallel STL policies,
//                 or wall-clock calls in library code; scalar FP
//                 accumulation loops in negf/linalg must route through the
//                 pinned summation orders of linalg/kernels.hpp (audited
//                 exceptions: tools/analysis_allowlist.txt)
//   contracts     GNRFET_REQUIRE/ENSURE/CHECK_FINITE density per subsystem
//                 must not regress vs tools/analysis_baseline.json
//
// (The thread-safety pass is the clang -Wthread-safety build over
// src/common/annotations.hpp; CI's `thread-safety` stage runs it.)
//
// Usage:
//   gnrfet_analyze [repo_root]
//       [--layers file] [--allowlist file] [--baseline file]
//       [--pass layering|determinism|contracts]   (repeatable; default all)
//       [--report file]          write the full coverage JSON, with the
//                                per-subsystem uncovered-function lists
//       [--write-baseline]       regenerate the baseline instead of
//                                checking against it
//
// Exit codes: 0 clean, 1 findings, 2 bad usage/config.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/analysis_passes.hpp"

namespace {

namespace fs = std::filesystem;
using namespace gnrfet::analysis;

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::stringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

/// Every .hpp/.cpp under root/src, sorted by repo-relative path.
std::vector<SourceFile> load_sources(const fs::path& root) {
  std::vector<SourceFile> files;
  const fs::path src = root / "src";
  if (!fs::exists(src)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() != ".cpp" && p.extension() != ".hpp") continue;
    SourceFile file;
    file.path = fs::relative(p, root).generic_string();
    if (!read_file(p, file.content)) {
      std::cerr << "gnrfet_analyze: cannot read " << p << "\n";
      continue;
    }
    files.push_back(std::move(file));
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.path < b.path; });
  return files;
}

int usage() {
  std::cerr << "usage: gnrfet_analyze [repo_root] [--layers f] [--allowlist f] "
               "[--baseline f] [--report f] [--write-baseline] "
               "[--pass layering|determinism|contracts]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path layers_path, allowlist_path, baseline_path, report_path;
  bool write_baseline = false;
  std::set<std::string> passes;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--layers") {
      if (const char* v = value()) layers_path = v; else return usage();
    } else if (arg == "--allowlist") {
      if (const char* v = value()) allowlist_path = v; else return usage();
    } else if (arg == "--baseline") {
      if (const char* v = value()) baseline_path = v; else return usage();
    } else if (arg == "--report") {
      if (const char* v = value()) report_path = v; else return usage();
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--pass") {
      const char* v = value();
      if (!v || (std::string(v) != "layering" && std::string(v) != "determinism" &&
                 std::string(v) != "contracts")) {
        return usage();
      }
      passes.insert(v);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      root = arg;
    }
  }
  if (passes.empty()) passes = {"layering", "determinism", "contracts"};
  if (layers_path.empty()) layers_path = root / "tools" / "analysis_layers.txt";
  if (allowlist_path.empty()) allowlist_path = root / "tools" / "analysis_allowlist.txt";
  if (baseline_path.empty()) baseline_path = root / "tools" / "analysis_baseline.json";

  const std::vector<SourceFile> files = load_sources(root);
  if (files.empty()) {
    std::cerr << "gnrfet_analyze: no sources under " << (root / "src") << "\n";
    return 2;
  }

  std::vector<Finding> findings;
  std::vector<std::string> summaries;
  std::string error;

  if (passes.count("layering") != 0) {
    std::string text;
    if (!read_file(layers_path, text)) {
      std::cerr << "gnrfet_analyze: cannot read layer config " << layers_path << "\n";
      return 2;
    }
    LayerConfig cfg;
    if (!parse_layer_config(text, cfg, error)) {
      std::cerr << "gnrfet_analyze: " << layers_path.generic_string() << ": " << error << "\n";
      return 2;
    }
    size_t edges = 0;
    for (const auto& file : files) edges += project_includes(file).size();
    const std::vector<Finding> f = check_layering(files, cfg);
    findings.insert(findings.end(), f.begin(), f.end());
    summaries.push_back("layering:    " + std::to_string(f.size()) + " finding(s) over " +
                        std::to_string(files.size()) + " files, " + std::to_string(edges) +
                        " include edges, " + std::to_string(cfg.allowed.size()) + " modules");
  }

  if (passes.count("determinism") != 0) {
    Allowlist allowlist;
    std::string text;
    if (read_file(allowlist_path, text)) {
      if (!parse_allowlist(text, allowlist, error)) {
        std::cerr << "gnrfet_analyze: " << allowlist_path.generic_string() << ": " << error
                  << "\n";
        return 2;
      }
    }
    const std::vector<Finding> f = check_determinism(files, allowlist);
    findings.insert(findings.end(), f.begin(), f.end());
    summaries.push_back("determinism: " + std::to_string(f.size()) + " finding(s), " +
                        std::to_string(allowlist.entries.size()) + " allowlisted site(s)");
  }

  if (passes.count("contracts") != 0) {
    const CoverageReport report = measure_contract_coverage(files);
    if (!report_path.empty()) {
      std::ofstream out(report_path, std::ios::binary);
      out << coverage_to_json(report, /*include_uncovered=*/true);
    }
    if (write_baseline) {
      std::ofstream out(baseline_path, std::ios::binary);
      if (!out) {
        std::cerr << "gnrfet_analyze: cannot write " << baseline_path << "\n";
        return 2;
      }
      out << coverage_to_json(report, /*include_uncovered=*/false);
      summaries.push_back("contracts:   baseline written to " +
                          baseline_path.generic_string());
    } else {
      std::string text;
      if (!read_file(baseline_path, text)) {
        std::cerr << "gnrfet_analyze: cannot read baseline " << baseline_path
                  << " (generate it with --write-baseline)\n";
        return 2;
      }
      std::map<std::string, SubsystemCoverage> baseline;
      if (!parse_baseline_json(text, baseline, error)) {
        std::cerr << "gnrfet_analyze: " << baseline_path.generic_string() << ": " << error
                  << "\n";
        return 2;
      }
      const std::vector<Finding> f = check_against_baseline(report, baseline);
      findings.insert(findings.end(), f.begin(), f.end());
      summaries.push_back(
          "contracts:   " + std::to_string(f.size()) + " finding(s); " +
          std::to_string(report.total.contracts) + " contracts cover " +
          std::to_string(report.total.functions_with_contracts) + "/" +
          std::to_string(report.total.functions) + " functions in " +
          std::to_string(report.subsystems.size()) + " subsystems");
    }
  }

  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  for (const auto& s : summaries) std::cout << "gnrfet_analyze: " << s << "\n";
  return findings.empty() ? 0 : 1;
}
