#pragma once

// Pass logic for gnrfet_analyze (see gnrfet_analyze.cpp for the CLI).
//
// Everything here operates on in-memory SourceFile lists so the tests can
// feed synthetic fixtures through the exact code CI runs:
//
//   Pass 1  check_layering       module include graph vs tools/analysis_layers.txt
//                                + file-level include cycle detection
//   Pass 2  check_determinism    unordered containers, parallel STL, wall-clock
//                                calls, loop FP accumulation outside kernels.hpp
//   Pass 3  (thread-safety)      lives in the compiler: clang -Wthread-safety
//                                over src/common/annotations.hpp, wired up by
//                                the CI `thread-safety` stage, not replicated here
//   Pass 4  contract_coverage    GNRFET_REQUIRE/ENSURE/CHECK_FINITE density per
//                                subsystem vs tools/analysis_baseline.json

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/source_scan.hpp"

namespace gnrfet::analysis {

/// A source file as the passes see it: repo-relative generic path (e.g.
/// "src/negf/rgf.cpp") plus the raw file content.
struct SourceFile {
  std::string path;
  std::string content;
};

struct Finding {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

/// "src/<module>/..." -> "<module>"; empty for anything else.
inline std::string module_of(const std::string& path) {
  if (path.rfind("src/", 0) != 0) return "";
  const size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

inline std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

inline size_t line_of_pos(const std::string& text, size_t pos) {
  return 1 + static_cast<size_t>(std::count(text.begin(), text.begin() + static_cast<long>(std::min(pos, text.size())), '\n'));
}

inline std::string trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// ---------------------------------------------------------------------------
// Pass 1: architecture layering
// ---------------------------------------------------------------------------

/// Parsed tools/analysis_layers.txt: for each module under src/, the set of
/// other modules it may include. Format, one module per line:
///
///   module: dep dep dep      # comment
///
/// A module may always include itself; every dep must itself be declared,
/// and the allowed-dependency relation must be acyclic (it is the transitive
/// closure of the layer DAG, written out explicitly so a reviewer can see
/// exactly what each module may reach).
struct LayerConfig {
  std::map<std::string, std::set<std::string>> allowed;
};

inline bool parse_layer_config(const std::string& text, LayerConfig& cfg, std::string& error) {
  cfg.allowed.clear();
  size_t lineno = 0;
  for (std::string line : split_lines(text)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      error = "line " + std::to_string(lineno) + ": expected 'module: deps...'";
      return false;
    }
    const std::string module = trim(line.substr(0, colon));
    if (module.empty()) {
      error = "line " + std::to_string(lineno) + ": empty module name";
      return false;
    }
    if (cfg.allowed.count(module) != 0) {
      error = "line " + std::to_string(lineno) + ": duplicate module '" + module + "'";
      return false;
    }
    std::set<std::string>& deps = cfg.allowed[module];
    std::istringstream rest(line.substr(colon + 1));
    std::string dep;
    while (rest >> dep) deps.insert(dep);
    deps.erase(module);  // self is implied
  }
  for (const auto& [module, deps] : cfg.allowed) {
    for (const auto& dep : deps) {
      if (cfg.allowed.count(dep) == 0) {
        error = "module '" + module + "' depends on undeclared module '" + dep + "'";
        return false;
      }
    }
  }
  // The relation must be a DAG: a cycle would make "lower layer" meaningless.
  std::map<std::string, int> color;  // 0 unvisited, 1 on stack, 2 done
  struct Dfs {
    const LayerConfig& cfg;
    std::map<std::string, int>& color;
    std::string cycle;
    bool visit(const std::string& m) {
      color[m] = 1;
      for (const auto& dep : cfg.allowed.at(m)) {
        if (color[dep] == 1) {
          cycle = m + " -> " + dep;
          return false;
        }
        if (color[dep] == 0 && !visit(dep)) {
          cycle = m + " -> " + cycle;
          return false;
        }
      }
      color[m] = 2;
      return true;
    }
  } dfs{cfg, color, ""};
  for (const auto& [module, deps] : cfg.allowed) {
    if (color[module] == 0 && !dfs.visit(module)) {
      error = "allowed-dependency relation is cyclic: " + dfs.cycle;
      return false;
    }
  }
  return true;
}

/// All project includes of a file: quoted `#include "..."` paths, extracted
/// from the raw line (the stripper blanks string literals) at lines the
/// stripped content confirms are real directives, not comment examples.
inline std::vector<std::pair<size_t, std::string>> project_includes(const SourceFile& file) {
  std::vector<std::pair<size_t, std::string>> out;
  const std::vector<std::string> raw = split_lines(file.content);
  const std::vector<std::string> stripped =
      split_lines(scan::strip_comments_and_strings(file.content));
  for (size_t i = 0; i < stripped.size() && i < raw.size(); ++i) {
    const std::string& s = stripped[i];
    const size_t hash = s.find('#');
    if (hash == std::string::npos || s.find_first_not_of(" \t") != hash) continue;
    const size_t kw = s.find_first_not_of(" \t", hash + 1);
    if (kw == std::string::npos || s.compare(kw, 7, "include") != 0) continue;
    const size_t open = raw[i].find('"', kw + 7);
    if (open == std::string::npos) continue;  // <system> include
    const size_t close = raw[i].find('"', open + 1);
    if (close == std::string::npos) continue;
    out.emplace_back(i + 1, raw[i].substr(open + 1, close - open - 1));
  }
  return out;
}

/// Pass 1. `files` should be every .hpp/.cpp under src/, sorted by path.
inline std::vector<Finding> check_layering(const std::vector<SourceFile>& files,
                                           const LayerConfig& cfg) {
  std::vector<Finding> findings;
  // File-level include graph keyed by include-path form ("common/env.hpp").
  std::map<std::string, std::vector<std::string>> graph;
  std::map<std::string, std::string> display;  // include key -> repo path
  for (const auto& file : files) {
    if (!module_of(file.path).empty()) graph[file.path.substr(4)];  // ensure node
  }
  for (const auto& file : files) {
    const std::string module = module_of(file.path);
    if (module.empty()) continue;
    if (cfg.allowed.count(module) == 0) {
      findings.push_back({file.path, 1, "layering",
                          "module '" + module +
                              "' is not declared in tools/analysis_layers.txt; add it to the "
                              "layer DAG before introducing a subsystem"});
      continue;
    }
    const std::string key = file.path.substr(4);
    display[key] = file.path;
    for (const auto& [line, inc] : project_includes(file)) {
      const size_t slash = inc.find('/');
      if (slash == std::string::npos) continue;
      const std::string target = inc.substr(0, slash);
      if (cfg.allowed.count(target) == 0) continue;  // not a src/ module path
      if (graph.count(inc) != 0) graph[key].push_back(inc);
      if (target == module) continue;
      if (cfg.allowed.at(module).count(target) == 0) {
        std::string allowed_list;
        for (const auto& a : cfg.allowed.at(module)) {
          if (!allowed_list.empty()) allowed_list += ", ";
          allowed_list += a;
        }
        findings.push_back(
            {file.path, line, "layering",
             "illegal dependency edge " + module + " -> " + target + " (include \"" + inc +
                 "\"); '" + module + "' may only reach [" +
                 (allowed_list.empty() ? "nothing" : allowed_list) +
                 "] per tools/analysis_layers.txt"});
      }
    }
  }
  // File-level cycles (a <-> b through headers) are illegal even inside one
  // module: report the offending chain.
  std::map<std::string, int> color;  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::set<std::string> reported;
  struct Dfs {
    const std::map<std::string, std::vector<std::string>>& graph;
    std::map<std::string, int>& color;
    std::vector<std::string>& stack;
    std::set<std::string>& reported;
    std::vector<Finding>& findings;
    const std::map<std::string, std::string>& display;
    void visit(const std::string& n) {
      color[n] = 1;
      stack.push_back(n);
      auto it = graph.find(n);
      if (it != graph.end()) {
        for (const auto& dep : it->second) {
          if (color[dep] == 1) {
            // Found a back edge: the cycle is stack[first(dep)..end] + dep.
            std::string chain;
            std::set<std::string> members;
            bool in_cycle = false;
            for (const auto& s : stack) {
              if (s == dep) in_cycle = true;
              if (!in_cycle) continue;
              chain += s + " -> ";
              members.insert(s);
            }
            chain += dep;
            // Report each distinct cycle once, keyed by its member set.
            std::string sig;
            for (const auto& m : members) sig += m + ";";
            if (reported.insert(sig).second) {
              auto disp = display.find(dep);
              findings.push_back({disp != display.end() ? disp->second : "src/" + dep, 1,
                                  "layering", "include cycle: " + chain});
            }
          } else if (color[dep] == 0) {
            visit(dep);
          }
        }
      }
      stack.pop_back();
      color[n] = 2;
    }
  } dfs{graph, color, stack, reported, findings, display};
  for (const auto& [node, deps] : graph) {
    if (color[node] == 0) dfs.visit(node);
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Pass 2: determinism lint
// ---------------------------------------------------------------------------

/// Parsed tools/analysis_allowlist.txt: audited exceptions to determinism
/// rules. Format, one entry per line:
///
///   path rule token    # justification (required by convention)
///
/// `token` is the flagged identifier ('*' matches any token of that rule in
/// that file). Every entry names one audited site; the analyzer prints the
/// exact entry to add when it flags something.
struct Allowlist {
  std::set<std::string> entries;  // "path|rule|token"

  bool contains(const std::string& path, const std::string& rule,
                const std::string& token) const {
    return entries.count(path + "|" + rule + "|" + token) != 0 ||
           entries.count(path + "|" + rule + "|*") != 0;
  }
};

inline bool parse_allowlist(const std::string& text, Allowlist& out, std::string& error) {
  out.entries.clear();
  size_t lineno = 0;
  for (std::string line : split_lines(text)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string path, rule, token, extra;
    if (!(fields >> path >> rule >> token) || (fields >> extra)) {
      error = "line " + std::to_string(lineno) + ": expected 'path rule token  # why'";
      return false;
    }
    out.entries.insert(path + "|" + rule + "|" + token);
  }
  return true;
}

namespace detail {

/// `qualified` ("std::reduce") occurs in `line` with identifier boundaries on
/// both ends.
inline bool has_qualified(const std::string& line, const std::string& qualified) {
  size_t pos = line.find(qualified);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !scan::ident_char(line[pos - 1]);
    const size_t end = pos + qualified.size();
    const bool right_ok = end >= line.size() || !scan::ident_char(line[end]);
    if (left_ok && right_ok) return true;
    pos = line.find(qualified, pos + 1);
  }
  return false;
}

/// Identifiers declared in `stripped` as scalar doubles (`double name` being
/// introduced, not a function returning double or an array).
inline std::set<std::string> double_scalar_decls(const std::string& stripped) {
  std::set<std::string> names;
  size_t pos = scan::find_token(stripped, "double");
  while (pos != std::string::npos) {
    size_t i = pos + 6;
    while (i < stripped.size() && (stripped[i] == ' ' || stripped[i] == '\t' ||
                                   stripped[i] == '\n'))
      ++i;
    size_t b = i;
    while (i < stripped.size() && scan::ident_char(stripped[i])) ++i;
    if (i > b) {
      size_t j = i;
      while (j < stripped.size() && (stripped[j] == ' ' || stripped[j] == '\t')) ++j;
      const char after = j < stripped.size() ? stripped[j] : ';';
      if (after == '=' || after == ';' || after == ',' || after == '{' || after == ')') {
        names.insert(stripped.substr(b, i - b));
      }
    }
    pos = scan::find_token(stripped, "double", pos + 6);
  }
  return names;
}

/// [open, close] ranges of loop bodies ({...} after for/while/do) in
/// `stripped`, via a brace-matching scan.
inline std::vector<std::pair<size_t, size_t>> loop_body_ranges(const std::string& stripped) {
  std::vector<std::pair<size_t, size_t>> loops;
  std::vector<std::pair<size_t, bool>> stack;  // (open pos, is loop body)
  for (size_t i = 0; i < stripped.size(); ++i) {
    const char c = stripped[i];
    if (c == '{') {
      long p = static_cast<long>(i) - 1;
      auto skipws = [&] {
        while (p >= 0 && (stripped[static_cast<size_t>(p)] == ' ' ||
                          stripped[static_cast<size_t>(p)] == '\t' ||
                          stripped[static_cast<size_t>(p)] == '\n'))
          --p;
      };
      skipws();
      bool is_loop = false;
      if (p >= 0 && stripped[static_cast<size_t>(p)] == ')') {
        int depth = 1;
        --p;
        while (p >= 0 && depth > 0) {
          if (stripped[static_cast<size_t>(p)] == ')') ++depth;
          if (stripped[static_cast<size_t>(p)] == '(') --depth;
          --p;
        }
        skipws();
        long e = p;
        while (p >= 0 && scan::ident_char(stripped[static_cast<size_t>(p)])) --p;
        const std::string word = stripped.substr(static_cast<size_t>(p + 1),
                                                 static_cast<size_t>(e - p));
        is_loop = word == "for" || word == "while";
      } else if (p >= 1 && stripped[static_cast<size_t>(p)] == 'o' &&
                 stripped[static_cast<size_t>(p) - 1] == 'd' &&
                 (p < 2 || !scan::ident_char(stripped[static_cast<size_t>(p) - 2]))) {
        is_loop = true;  // do { ... } while
      }
      stack.emplace_back(i, is_loop);
    } else if (c == '}' && !stack.empty()) {
      if (stack.back().second) loops.emplace_back(stack.back().first, i);
      stack.pop_back();
    }
  }
  return loops;
}

}  // namespace detail

/// Pass 2. `files` should be every .hpp/.cpp under src/, sorted by path.
inline std::vector<Finding> check_determinism(const std::vector<SourceFile>& files,
                                              const Allowlist& allowlist) {
  std::vector<Finding> findings;
  auto flag = [&](const SourceFile& f, size_t line, const std::string& rule,
                  const std::string& token, const std::string& why) {
    if (allowlist.contains(f.path, rule, token)) return;
    findings.push_back({f.path, line, rule,
                        why + " [audited exceptions go in tools/analysis_allowlist.txt as '" +
                            f.path + " " + rule + " " + token + "']"});
  };
  for (const auto& file : files) {
    const std::string module = module_of(file.path);
    if (module.empty()) continue;
    const std::string stripped = scan::strip_comments_and_strings(file.content);
    const std::vector<std::string> lines = split_lines(stripped);
    for (size_t i = 0; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      const size_t lineno = i + 1;
      for (const char* container : {"unordered_map", "unordered_set"}) {
        if (scan::find_token(line, container) != std::string::npos) {
          flag(file, lineno, "unordered-container", container,
               std::string("std::") + container +
                   " has runtime-random iteration order; results must be independent of "
                   "hash seeds — use std::map/std::set or a sorted vector");
        }
      }
      for (const char* par : {"std::reduce", "std::transform_reduce", "std::execution"}) {
        if (detail::has_qualified(line, par)) {
          flag(file, lineno, "parallel-stl", par + 5,
               std::string(par) +
                   " reassociates floating-point reductions nondeterministically; use the "
                   "fixed summation orders in linalg/kernels.hpp");
        }
      }
      if (line.find("<execution>") != std::string::npos &&
          line.find("include") != std::string::npos) {
        flag(file, lineno, "parallel-stl", "execution",
             "the <execution> header (parallel STL policies) is banned; use the "
             "deterministic thread pool in common/parallel.hpp");
      }
      if (module != "common") {
        for (const char* fn : {"time", "clock", "gettimeofday", "clock_gettime"}) {
          if (scan::has_call(line, fn)) {
            flag(file, lineno, "wall-clock", fn,
                 std::string(fn) +
                     "() makes library results time-dependent; timing belongs to "
                     "common/trace.hpp spans and the metrics registry");
          }
        }
        for (const char* clk : {"system_clock", "steady_clock", "high_resolution_clock"}) {
          if (scan::find_token(line, clk) != std::string::npos) {
            flag(file, lineno, "wall-clock", clk,
                 std::string("std::chrono::") + clk +
                     " outside src/common/: timing belongs to common/trace.hpp spans");
          }
        }
      }
    }
    // FP accumulation: scalar double `x += ...` / `x -= ...` inside a loop in
    // the numerical kernels' home modules must go through kernels.hpp (or be
    // an audited allowlist entry) so summation order stays pinned.
    if (module == "negf" || module == "linalg") {
      const std::set<std::string> doubles = detail::double_scalar_decls(stripped);
      const std::vector<std::pair<size_t, size_t>> loops =
          detail::loop_body_ranges(stripped);
      for (const char* op : {"+=", "-="}) {
        size_t pos = stripped.find(op);
        while (pos != std::string::npos) {
          long p = static_cast<long>(pos) - 1;
          while (p >= 0 && (stripped[static_cast<size_t>(p)] == ' ' ||
                            stripped[static_cast<size_t>(p)] == '\t'))
            --p;
          long e = p;
          while (p >= 0 && scan::ident_char(stripped[static_cast<size_t>(p)])) --p;
          const std::string name =
              e > p ? stripped.substr(static_cast<size_t>(p + 1), static_cast<size_t>(e - p))
                    : "";
          // Only bare scalars: `v[i] +=`, `s.x +=`, `p->x +=` update elements
          // or members, which the rule does not cover.
          const char before = p >= 0 ? stripped[static_cast<size_t>(p)] : ' ';
          if (!name.empty() && before != '.' && before != ']' && before != '>' &&
              doubles.count(name) != 0) {
            bool in_loop = false;
            for (const auto& [b, en] : loops) {
              if (pos > b && pos < en) {
                in_loop = true;
                break;
              }
            }
            if (!in_loop) {
              // Braceless loop body on the same line: `for (...) s += x;`
              const size_t bol = stripped.rfind('\n', pos);
              const std::string head = stripped.substr(
                  bol == std::string::npos ? 0 : bol + 1,
                  pos - (bol == std::string::npos ? 0 : bol + 1));
              in_loop = scan::find_token(head, "for") != std::string::npos ||
                        scan::find_token(head, "while") != std::string::npos;
            }
            if (in_loop) {
              flag(file, line_of_pos(stripped, pos), "fp-accumulation", name,
                   "scalar double '" + name +
                       "' accumulated in a loop bypasses the pinned summation orders in "
                       "linalg/kernels.hpp; use kernels::sum/dot or audit the site");
            }
          }
          pos = stripped.find(op, pos + 2);
        }
      }
    }
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Pass 4: contract coverage
// ---------------------------------------------------------------------------

struct FunctionInfo {
  std::string name;
  size_t line = 0;
  size_t body_begin = 0;  // position of '{' in the stripped content
  size_t body_end = 0;    // position of matching '}'
  bool has_contract = false;
};

namespace detail {

inline bool macro_like(const std::string& name) {
  if (name.size() < 2) return false;
  bool has_alpha = false;
  for (char c : name) {
    if (c >= 'a' && c <= 'z') return false;
    if ((c >= 'A' && c <= 'Z')) has_alpha = true;
    if (!(scan::ident_char(c))) return false;
  }
  return has_alpha;
}

/// Heuristic classification of the '{' at `brace`: does it open a function
/// body, and if so what is the function's (possibly qualified) name? Walks
/// backwards over specifiers (const/noexcept/override/...), attribute-style
/// macros with arguments (GNRFET_REQUIRES(mu_)), and constructor
/// initializer lists (`: a_(x), b_{y}`), then recognizes `name(params)`.
inline bool classify_function_open(const std::string& s, size_t brace, std::string& name_out) {
  long p = static_cast<long>(brace) - 1;
  auto at = [&](long i) { return s[static_cast<size_t>(i)]; };
  auto skipws = [&] {
    while (p >= 0 && (at(p) == ' ' || at(p) == '\t' || at(p) == '\n')) --p;
  };
  auto match_back = [&](char open, char close) {
    int depth = 1;
    --p;
    while (p >= 0 && depth > 0) {
      if (at(p) == close) ++depth;
      if (at(p) == open) --depth;
      --p;
    }
    return depth == 0;
  };
  auto read_ident_back = [&] {
    long e = p;
    while (p >= 0 && (scan::ident_char(at(p)) || at(p) == ':' || at(p) == '~')) --p;
    return s.substr(static_cast<size_t>(p + 1), static_cast<size_t>(e - p));
  };
  static const std::set<std::string> kSpecifiers = {"const",    "noexcept", "override",
                                                    "final",    "mutable",  "try",
                                                    "constexpr"};
  static const std::set<std::string> kControl = {"if",     "for",    "while",   "switch",
                                                 "catch",  "return", "sizeof",  "alignof",
                                                 "decltype"};
  for (int guard = 0; guard < 64; ++guard) {
    skipws();
    if (p < 0) return false;
    const char c = at(p);
    if (c == ')') {
      if (!match_back('(', ')')) return false;
      skipws();
      if (p >= 0 && at(p) == ')') {
        // operator()(args): match the empty pair, expect `operator` before it.
        if (!match_back('(', ')')) return false;
        skipws();
        const std::string word = read_ident_back();
        if (word == "operator") {
          name_out = "operator()";
          return true;
        }
        return false;
      }
      std::string name = read_ident_back();
      if (name.empty()) {
        // operator+ / operator== / ... : a run of operator symbols.
        long e = p;
        while (p >= 0 && std::string("+-*/%^&|~!=<>").find(at(p)) != std::string::npos) --p;
        const std::string sym =
            s.substr(static_cast<size_t>(p + 1), static_cast<size_t>(e - p));
        if (sym.empty()) return false;
        skipws();
        const std::string word = read_ident_back();
        if (word == "operator") {
          name_out = "operator" + sym;
          return true;
        }
        return false;
      }
      std::string base = name;
      const size_t sep = base.rfind("::");
      if (sep != std::string::npos) base = base.substr(sep + 2);
      if (kControl.count(base) != 0 || base == "do") return false;
      if (base == "noexcept" || macro_like(base)) continue;  // specifier with args
      skipws();
      if (p >= 0 && (at(p) == ',' || (at(p) == ':' && (p == 0 || at(p - 1) != ':')))) {
        --p;  // constructor initializer-list element; keep walking back
        continue;
      }
      name_out = name;
      return true;
    }
    if (c == '}') {
      // Brace member-init `b_{y}` in an initializer list.
      if (!match_back('{', '}')) return false;
      skipws();
      if (read_ident_back().empty()) return false;
      skipws();
      if (p >= 0 && (at(p) == ',' || (at(p) == ':' && (p == 0 || at(p - 1) != ':')))) {
        --p;
        continue;
      }
      return false;
    }
    if (scan::ident_char(c)) {
      long e = p;
      while (p >= 0 && scan::ident_char(at(p))) --p;
      const std::string word =
          s.substr(static_cast<size_t>(p + 1), static_cast<size_t>(e - p));
      if (kSpecifiers.count(word) != 0) continue;
      return false;  // struct/namespace/enum/else/do/brace-init/...
    }
    return false;
  }
  return false;
}

}  // namespace detail

/// Function definitions in stripped content, with body ranges for contract
/// attribution. Heuristic (see classify_function_open); lambdas and trailing
/// return types are deliberately not counted as functions.
inline std::vector<FunctionInfo> extract_functions(const std::string& stripped) {
  std::vector<FunctionInfo> fns;
  std::vector<long> stack;  // index into fns, or -1 for non-function braces
  size_t line = 1;
  for (size_t i = 0; i < stripped.size(); ++i) {
    const char c = stripped[i];
    if (c == '\n') {
      ++line;
    } else if (c == '{') {
      std::string name;
      if (detail::classify_function_open(stripped, i, name)) {
        fns.push_back({name, line, i, 0, false});
        stack.push_back(static_cast<long>(fns.size()) - 1);
      } else {
        stack.push_back(-1);
      }
    } else if (c == '}' && !stack.empty()) {
      if (stack.back() >= 0) fns[static_cast<size_t>(stack.back())].body_end = i;
      stack.pop_back();
    }
  }
  return fns;
}

struct SubsystemCoverage {
  size_t files = 0;
  size_t code_lines = 0;
  size_t contracts = 0;
  size_t functions = 0;
  size_t functions_with_contracts = 0;
};

struct CoverageReport {
  std::map<std::string, SubsystemCoverage> subsystems;
  SubsystemCoverage total;
  /// Per subsystem: "path:line name" of functions without any contract.
  std::map<std::string, std::vector<std::string>> uncovered;
};

/// Pass 4 measurement. `files` should be every .hpp/.cpp under src/.
inline CoverageReport measure_contract_coverage(const std::vector<SourceFile>& files) {
  static const std::vector<std::string> kContractMacros = {
      "GNRFET_REQUIRE", "GNRFET_ENSURE", "GNRFET_CHECK_FINITE"};
  CoverageReport report;
  for (const auto& file : files) {
    const std::string module = module_of(file.path);
    if (module.empty()) continue;
    // The contract layer itself defines the macros; counting the definitions
    // would credit common with phantom contracts.
    if (file.path == "src/common/contracts.hpp") continue;
    const std::string stripped = scan::strip_comments_and_strings(file.content);
    SubsystemCoverage& sub = report.subsystems[module];
    ++sub.files;
    for (const auto& line : split_lines(stripped)) {
      if (line.find_first_not_of(" \t\r") != std::string::npos) ++sub.code_lines;
    }
    std::vector<FunctionInfo> fns = extract_functions(stripped);
    for (const std::string& macro : kContractMacros) {
      size_t pos = scan::find_token(stripped, macro);
      while (pos != std::string::npos) {
        ++sub.contracts;
        // Attribute to the innermost enclosing function definition.
        long best = -1;
        for (size_t f = 0; f < fns.size(); ++f) {
          if (fns[f].body_begin < pos && pos < fns[f].body_end &&
              (best < 0 || fns[f].body_begin > fns[static_cast<size_t>(best)].body_begin)) {
            best = static_cast<long>(f);
          }
        }
        if (best >= 0) fns[static_cast<size_t>(best)].has_contract = true;
        pos = scan::find_token(stripped, macro, pos + macro.size());
      }
    }
    for (const auto& fn : fns) {
      ++sub.functions;
      if (fn.has_contract) {
        ++sub.functions_with_contracts;
      } else {
        report.uncovered[module].push_back(file.path + ":" + std::to_string(fn.line) + " " +
                                           fn.name);
      }
    }
  }
  for (const auto& [module, sub] : report.subsystems) {
    report.total.files += sub.files;
    report.total.code_lines += sub.code_lines;
    report.total.contracts += sub.contracts;
    report.total.functions += sub.functions;
    report.total.functions_with_contracts += sub.functions_with_contracts;
  }
  return report;
}

inline void append_coverage_fields(std::string& out, const SubsystemCoverage& sub,
                                   const std::string& indent) {
  out += indent + "\"files\": " + std::to_string(sub.files) + ",\n";
  out += indent + "\"code_lines\": " + std::to_string(sub.code_lines) + ",\n";
  out += indent + "\"contracts\": " + std::to_string(sub.contracts) + ",\n";
  out += indent + "\"functions\": " + std::to_string(sub.functions) + ",\n";
  out += indent + "\"functions_with_contracts\": " +
         std::to_string(sub.functions_with_contracts) + "\n";
}

/// Serialize a coverage report. The baseline file is this JSON with
/// `include_uncovered = false`; --report adds the uncovered function lists.
inline std::string coverage_to_json(const CoverageReport& report, bool include_uncovered) {
  std::string out = "{\n  \"subsystems\": {\n";
  size_t i = 0;
  for (const auto& [module, sub] : report.subsystems) {
    out += "    \"" + module + "\": {\n";
    append_coverage_fields(out, sub, "      ");
    out += ++i < report.subsystems.size() ? "    },\n" : "    }\n";
  }
  out += "  },\n  \"total\": {\n";
  append_coverage_fields(out, report.total, "    ");
  out += "  }";
  if (include_uncovered) {
    out += ",\n  \"uncovered\": {\n";
    size_t m = 0;
    for (const auto& [module, fns] : report.uncovered) {
      out += "    \"" + module + "\": [\n";
      for (size_t f = 0; f < fns.size(); ++f) {
        out += "      \"" + fns[f] + (f + 1 < fns.size() ? "\",\n" : "\"\n");
      }
      out += ++m < report.uncovered.size() ? "    ],\n" : "    ]\n";
    }
    out += "  }";
  }
  out += "\n}\n";
  return out;
}

/// Minimal parser for the baseline JSON this tool writes: an object whose
/// "subsystems" member maps names to objects of integer fields. Anything
/// else ("total") is skipped structurally.
inline bool parse_baseline_json(const std::string& text,
                                std::map<std::string, SubsystemCoverage>& out,
                                std::string& error) {
  out.clear();
  size_t i = 0;
  auto fail = [&](const std::string& what) {
    error = what + " near offset " + std::to_string(i);
    return false;
  };
  auto skipws = [&] {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' ||
                               text[i] == '\r'))
      ++i;
  };
  auto expect = [&](char c) {
    skipws();
    if (i < text.size() && text[i] == c) {
      ++i;
      return true;
    }
    return false;
  };
  auto parse_string = [&](std::string& s) {
    skipws();
    if (i >= text.size() || text[i] != '"') return false;
    const size_t close = text.find('"', i + 1);
    if (close == std::string::npos) return false;
    s = text.substr(i + 1, close - i - 1);
    i = close + 1;
    return true;
  };
  auto parse_uint = [&](size_t& v) {
    skipws();
    size_t b = i;
    v = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      v = v * 10 + static_cast<size_t>(text[i] - '0');
      ++i;
    }
    return i > b;
  };
  // Parses one {...} of integer fields into `sub`.
  auto parse_fields = [&](SubsystemCoverage& sub) {
    if (!expect('{')) return false;
    skipws();
    if (i < text.size() && text[i] == '}') {
      ++i;
      return true;
    }
    while (true) {
      std::string key;
      size_t value = 0;
      if (!parse_string(key) || !expect(':') || !parse_uint(value)) return false;
      if (key == "files") sub.files = value;
      if (key == "code_lines") sub.code_lines = value;
      if (key == "contracts") sub.contracts = value;
      if (key == "functions") sub.functions = value;
      if (key == "functions_with_contracts") sub.functions_with_contracts = value;
      skipws();
      if (i < text.size() && text[i] == ',') {
        ++i;
        continue;
      }
      return expect('}');
    }
  };
  if (!expect('{')) return fail("expected top-level object");
  while (true) {
    std::string key;
    if (!parse_string(key) || !expect(':')) return fail("expected member name");
    if (key == "subsystems") {
      if (!expect('{')) return fail("expected subsystems object");
      skipws();
      if (i < text.size() && text[i] == '}') {
        ++i;
      } else {
        while (true) {
          std::string module;
          SubsystemCoverage sub;
          if (!parse_string(module) || !expect(':') || !parse_fields(sub)) {
            return fail("bad subsystem entry");
          }
          out[module] = sub;
          skipws();
          if (i < text.size() && text[i] == ',') {
            ++i;
            continue;
          }
          if (!expect('}')) return fail("unterminated subsystems object");
          break;
        }
      }
    } else {
      SubsystemCoverage ignored;
      if (!parse_fields(ignored)) return fail("bad member value");
    }
    skipws();
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    if (!expect('}')) return fail("unterminated top-level object");
    return true;
  }
}

/// Pass 4 enforcement: coverage must not regress against the checked-in
/// baseline. Regression = fewer contracts, fewer covered functions, or the
/// covered-function ratio dropping more than 2 percentage points; brand-new
/// subsystems must be added to the baseline deliberately.
inline std::vector<Finding> check_against_baseline(
    const CoverageReport& report, const std::map<std::string, SubsystemCoverage>& baseline) {
  std::vector<Finding> findings;
  const std::string file = "tools/analysis_baseline.json";
  auto ratio = [](const SubsystemCoverage& s) {
    return s.functions == 0
               ? 1.0
               : static_cast<double>(s.functions_with_contracts) /
                     static_cast<double>(s.functions);
  };
  for (const auto& [module, base] : baseline) {
    const auto it = report.subsystems.find(module);
    if (it == report.subsystems.end()) {
      findings.push_back({file, 1, "contract-coverage",
                          "subsystem '" + module +
                              "' is in the baseline but no longer under src/; regenerate "
                              "the baseline with gnrfet_analyze --write-baseline"});
      continue;
    }
    const SubsystemCoverage& now = it->second;
    if (now.contracts < base.contracts) {
      findings.push_back({file, 1, "contract-coverage",
                          "subsystem '" + module + "' lost contracts: " +
                              std::to_string(now.contracts) + " < baseline " +
                              std::to_string(base.contracts) +
                              " (restore the checks or regenerate the baseline with "
                              "justification)"});
    }
    if (now.functions_with_contracts < base.functions_with_contracts) {
      findings.push_back({file, 1, "contract-coverage",
                          "subsystem '" + module + "' covers fewer functions: " +
                              std::to_string(now.functions_with_contracts) + " < baseline " +
                              std::to_string(base.functions_with_contracts)});
    } else if (ratio(now) + 0.02 < ratio(base)) {
      findings.push_back(
          {file, 1, "contract-coverage",
           "subsystem '" + module + "' coverage ratio regressed: " +
               std::to_string(now.functions_with_contracts) + "/" +
               std::to_string(now.functions) + " vs baseline " +
               std::to_string(base.functions_with_contracts) + "/" +
               std::to_string(base.functions) +
               " (new functions need contracts, or regenerate the baseline)"});
    }
  }
  for (const auto& [module, sub] : report.subsystems) {
    if (baseline.count(module) == 0) {
      findings.push_back({file, 1, "contract-coverage",
                          "subsystem '" + module +
                              "' is not in the baseline; run gnrfet_analyze "
                              "--write-baseline and commit the result"});
    }
  }
  return findings;
}

}  // namespace gnrfet::analysis
