#!/usr/bin/env bash
# CI matrix for the GNRFET repo. Runs every gate the project defines:
#
#   werror    -Wall -Wextra -Werror build + full test suite + lint label
#   asan-ubsan  AddressSanitizer + UndefinedBehaviorSanitizer test run
#   tsan      ThreadSanitizer run of the parallel determinism suites
#   checks-off  Release build with GNRFET_CHECKS=OFF (contracts compiled out):
#               the tier-1 suite must still pass without the contract layer
#   trace     fast suite under GNRFET_TRACE: the emitted Chrome trace JSON
#             must parse and summarize through gnrfet_trace_report
#   tidy      clang-tidy over all translation units (skipped when clang-tidy
#             is not installed)
#
# Usage:
#   tools/ci_checks.sh               # run the full matrix
#   tools/ci_checks.sh werror tsan   # run selected stages
#
# Each stage configures its own build tree under build-ci-<stage> so stages
# never contaminate each other's flags. Exits non-zero on the first failure.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=(werror asan-ubsan tsan checks-off trace tidy)
fi

banner() { printf '\n=== ci_checks: %s ===\n' "$1"; }

configure_and_build() {
  local dir="$1"
  shift
  cmake -B "$dir" -S "$ROOT" "$@" >"$dir.configure.log" 2>&1 ||
    { cat "$dir.configure.log"; return 1; }
  cmake --build "$dir" -j "$JOBS"
}

for stage in "${STAGES[@]}"; do
  case "$stage" in
    werror)
      banner "warnings-as-errors build + full suite + lint"
      configure_and_build "$ROOT/build-ci-werror" -DGNRFET_WERROR=ON
      ctest --test-dir "$ROOT/build-ci-werror" -j "$JOBS" --output-on-failure
      ctest --test-dir "$ROOT/build-ci-werror" -L lint --output-on-failure
      ;;
    asan-ubsan)
      banner "address,undefined sanitizers"
      configure_and_build "$ROOT/build-ci-asan" \
        -DGNRFET_SANITIZE=address,undefined -DGNRFET_WERROR=ON
      ctest --test-dir "$ROOT/build-ci-asan" -j "$JOBS" --output-on-failure
      ;;
    tsan)
      banner "thread sanitizer on the parallel suites"
      configure_and_build "$ROOT/build-ci-tsan" -DGNRFET_SANITIZE=thread
      ctest --test-dir "$ROOT/build-ci-tsan" -R 'Parallel' -j "$JOBS" --output-on-failure
      ;;
    checks-off)
      banner "Release with GNRFET_CHECKS=OFF (contracts compiled out)"
      configure_and_build "$ROOT/build-ci-nochecks" \
        -DGNRFET_CHECKS=OFF -DCMAKE_BUILD_TYPE=Release -DGNRFET_WERROR=ON
      ctest --test-dir "$ROOT/build-ci-nochecks" -j "$JOBS" --output-on-failure
      ;;
    trace)
      banner "tracing enabled end-to-end: emit, parse, report"
      configure_and_build "$ROOT/build-ci-trace"
      TRACE_JSON="$ROOT/build-ci-trace/ci_trace.json"
      rm -f "$TRACE_JSON"
      # Real self-consistent and circuit solves (device -> poisson -> negf
      # -> linalg, plus circuit DC/transient) traced end-to-end; skips the
      # trace unit tests themselves, which reset the global buffers.
      GNRFET_TRACE="$TRACE_JSON" "$ROOT/build-ci-trace/tests/gnrfet_tests" \
        --gtest_filter='SelfConsistent.*:Dc.*:Transient.*'
      test -s "$TRACE_JSON" || { echo "trace stage: no trace written" >&2; exit 1; }
      for cat in negf poisson device circuit linalg; do
        grep -q "\"cat\":\"$cat\"" "$TRACE_JSON" ||
          { echo "trace stage: no spans from subsystem '$cat'" >&2; exit 1; }
      done
      "$ROOT/build-ci-trace/tools/gnrfet_trace_report" "$TRACE_JSON"
      ;;
    tidy)
      if ! command -v clang-tidy >/dev/null 2>&1; then
        banner "clang-tidy not installed; skipping tidy stage"
        continue
      fi
      banner "clang-tidy"
      configure_and_build "$ROOT/build-ci-tidy" -DGNRFET_CLANG_TIDY=ON
      ;;
    *)
      echo "ci_checks: unknown stage '$stage'" >&2
      echo "known stages: werror asan-ubsan tsan checks-off trace tidy" >&2
      exit 2
      ;;
  esac
done

banner "all requested stages passed"
