#!/usr/bin/env bash
# CI matrix for the GNRFET repo. Runs every gate the project defines:
#
#   werror    -Wall -Wextra -Werror build + full test suite + lint label
#   asan-ubsan  AddressSanitizer + UndefinedBehaviorSanitizer test run
#   tsan      ThreadSanitizer run of the parallel determinism suites
#   checks-off  Release build with GNRFET_CHECKS=OFF (contracts compiled out):
#               the tier-1 suite must still pass without the contract layer
#   trace     fast suite under GNRFET_TRACE: the emitted Chrome trace JSON
#             must parse and summarize through gnrfet_trace_report
#   perf-smoke  Poisson PCG microbench on a reduced grid under every
#               preconditioner; asserts IC(0) needs fewer total iterations
#               than Jacobi (the point of the fast-solver work). Then the
#               NEGF grid bench: the adaptive energy grid must do at most
#               half the uniform RGF solves at <= 1e-4 relative current
#               error, and the uniform grid must be bit-identical across
#               GNRFET_THREADS=1 and 4.
#   tidy      clang-tidy over all translation units (skipped when clang-tidy
#             is not installed)
#
# Usage:
#   tools/ci_checks.sh               # run the full matrix
#   tools/ci_checks.sh werror tsan   # run selected stages
#
# Each stage configures its own build tree under build-ci-<stage> so stages
# never contaminate each other's flags. Exits non-zero on the first failure.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=(werror asan-ubsan tsan checks-off trace perf-smoke tidy)
fi

banner() { printf '\n=== ci_checks: %s ===\n' "$1"; }

configure_and_build() {
  local dir="$1"
  shift
  cmake -B "$dir" -S "$ROOT" "$@" >"$dir.configure.log" 2>&1 ||
    { cat "$dir.configure.log"; return 1; }
  cmake --build "$dir" -j "$JOBS"
}

for stage in "${STAGES[@]}"; do
  case "$stage" in
    werror)
      banner "warnings-as-errors build + full suite + lint"
      configure_and_build "$ROOT/build-ci-werror" -DGNRFET_WERROR=ON
      ctest --test-dir "$ROOT/build-ci-werror" -j "$JOBS" --output-on-failure
      ctest --test-dir "$ROOT/build-ci-werror" -L lint --output-on-failure
      ;;
    asan-ubsan)
      banner "address,undefined sanitizers"
      configure_and_build "$ROOT/build-ci-asan" \
        -DGNRFET_SANITIZE=address,undefined -DGNRFET_WERROR=ON
      ctest --test-dir "$ROOT/build-ci-asan" -j "$JOBS" --output-on-failure
      ;;
    tsan)
      banner "thread sanitizer on the parallel suites"
      configure_and_build "$ROOT/build-ci-tsan" -DGNRFET_SANITIZE=thread
      ctest --test-dir "$ROOT/build-ci-tsan" -R 'Parallel' -j "$JOBS" --output-on-failure
      ;;
    checks-off)
      banner "Release with GNRFET_CHECKS=OFF (contracts compiled out)"
      configure_and_build "$ROOT/build-ci-nochecks" \
        -DGNRFET_CHECKS=OFF -DCMAKE_BUILD_TYPE=Release -DGNRFET_WERROR=ON
      ctest --test-dir "$ROOT/build-ci-nochecks" -j "$JOBS" --output-on-failure
      ;;
    trace)
      banner "tracing enabled end-to-end: emit, parse, report"
      configure_and_build "$ROOT/build-ci-trace"
      TRACE_JSON="$ROOT/build-ci-trace/ci_trace.json"
      rm -f "$TRACE_JSON"
      # Real self-consistent and circuit solves (device -> poisson -> negf
      # -> linalg, plus circuit DC/transient) traced end-to-end; skips the
      # trace unit tests themselves, which reset the global buffers.
      GNRFET_TRACE="$TRACE_JSON" "$ROOT/build-ci-trace/tests/gnrfet_tests" \
        --gtest_filter='SelfConsistent.*:Dc.*:Transient.*'
      test -s "$TRACE_JSON" || { echo "trace stage: no trace written" >&2; exit 1; }
      for cat in negf poisson device circuit linalg; do
        grep -q "\"cat\":\"$cat\"" "$TRACE_JSON" ||
          { echo "trace stage: no spans from subsystem '$cat'" >&2; exit 1; }
      done
      "$ROOT/build-ci-trace/tools/gnrfet_trace_report" "$TRACE_JSON"
      ;;
    perf-smoke)
      banner "Poisson preconditioner perf smoke (ic0 must beat jacobi)"
      # Reduced grid so the three preconditioner sweeps stay in CI budget;
      # the full-scale numbers live in EXPERIMENTS.md. The TSan coverage of
      # the concurrent PoissonSolver path rides in the tsan stage above
      # (its -R 'Parallel' filter picks up PoissonSolverParallel.*).
      DIR="$ROOT/build-ci-perf"
      cmake -B "$DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >"$DIR.configure.log" 2>&1 ||
        { cat "$DIR.configure.log"; exit 1; }
      cmake --build "$DIR" -j "$JOBS" --target bench_poisson_solver
      (cd "$DIR" &&
        GNRFET_BENCH_POISSON_NX=24 GNRFET_BENCH_POISSON_NY=16 GNRFET_BENCH_POISSON_NZ=16 \
        GNRFET_BENCH_POISSON_REPEATS=1 ./bench/bench_poisson_solver)
      PERF_JSON="$DIR/bench_out/BENCH_poisson.json"
      test -s "$PERF_JSON" || { echo "perf-smoke: no BENCH_poisson.json written" >&2; exit 1; }
      # One {"preconditioner":...,"iterations":...,"seconds":...} per line.
      iters() {
        sed -n "s/.*\"preconditioner\":\"$1\",\"iterations\":\([0-9]*\).*/\1/p" "$PERF_JSON"
      }
      JAC="$(iters jacobi)"; IC0="$(iters ic0)"
      [ -n "$JAC" ] && [ -n "$IC0" ] ||
        { echo "perf-smoke: missing jacobi/ic0 records in $PERF_JSON" >&2; exit 1; }
      echo "perf-smoke: jacobi=$JAC ic0=$IC0 total PCG iterations"
      [ "$IC0" -lt "$JAC" ] ||
        { echo "perf-smoke: ic0 ($IC0) not below jacobi ($JAC)" >&2; exit 1; }

      # NEGF energy-grid smoke: adaptive must halve the uniform RGF solve
      # count while holding <= 1e-4 relative current error against the
      # 4x-finer uniform reference (reduced sweep to stay in CI budget).
      cmake --build "$DIR" -j "$JOBS" --target bench_negf_grid
      (cd "$DIR" && GNRFET_BENCH_NEGF_NCOL=32 GNRFET_BENCH_NEGF_NVD=3 ./bench/bench_negf_grid)
      NEGF_JSON="$DIR/bench_out/BENCH_negf.json"
      test -s "$NEGF_JSON" || { echo "perf-smoke: no BENCH_negf.json written" >&2; exit 1; }
      # One {"grid":...,"rgf_solves":...,...,"max_rel_current_err":...} per line.
      solves() {
        sed -n "s/.*\"grid\":\"$1\",\"rgf_solves\":\([0-9]*\).*/\1/p" "$NEGF_JSON"
      }
      relerr() {
        sed -n "s/.*\"grid\":\"$1\".*\"max_rel_current_err\":\([0-9.e+-]*\),.*/\1/p" "$NEGF_JSON"
      }
      UNI="$(solves uniform)"; ADA="$(solves adaptive)"; ERR="$(relerr adaptive)"
      [ -n "$UNI" ] && [ -n "$ADA" ] && [ -n "$ERR" ] ||
        { echo "perf-smoke: missing uniform/adaptive records in $NEGF_JSON" >&2; exit 1; }
      echo "perf-smoke: uniform=$UNI adaptive=$ADA RGF solves, adaptive max |dI/I| = $ERR"
      [ $((2 * ADA)) -le "$UNI" ] ||
        { echo "perf-smoke: adaptive ($ADA) not <= half of uniform ($UNI)" >&2; exit 1; }
      awk -v e="$ERR" 'BEGIN { exit (e <= 1e-4) ? 0 : 1 }' ||
        { echo "perf-smoke: adaptive current error $ERR above 1e-4" >&2; exit 1; }

      # Uniform grid thread-count determinism: the pinned pre-adaptive
      # behavior must not depend on GNRFET_THREADS. The bench emits an
      # FNV-1a hash over the raw sweep currents; equal hashes mean
      # bit-identical doubles.
      for t in 1 4; do
        (cd "$DIR" && rm -rf "bench_out_t$t" && mkdir -p "bench_out_t$t" &&
          cd "bench_out_t$t" && GNRFET_THREADS=$t GNRFET_BENCH_NEGF_NCOL=32 \
          GNRFET_BENCH_NEGF_NVD=3 ../bench/bench_negf_grid >/dev/null)
      done
      t_hash() {
        sed -n "s/.*\"grid\":\"$2\".*\"current_hash\":\"\([0-9a-f]*\)\".*/\1/p" \
          "$DIR/bench_out_t$1/bench_out/BENCH_negf.json"
      }
      H1="$(t_hash 1 uniform)"; H4="$(t_hash 4 uniform)"
      A1="$(t_hash 1 adaptive)"; A4="$(t_hash 4 adaptive)"
      [ -n "$H1" ] && [ -n "$H4" ] && [ -n "$A1" ] && [ -n "$A4" ] ||
        { echo "perf-smoke: missing thread-sweep current hashes" >&2; exit 1; }
      [ "$H1" = "$H4" ] ||
        { echo "perf-smoke: uniform grid not thread-deterministic ($H1 vs $H4)" >&2; exit 1; }
      [ "$A1" = "$A4" ] ||
        { echo "perf-smoke: adaptive grid not thread-deterministic ($A1 vs $A4)" >&2; exit 1; }
      echo "perf-smoke: uniform and adaptive currents bit-identical across GNRFET_THREADS=1/4"
      ;;
    tidy)
      if ! command -v clang-tidy >/dev/null 2>&1; then
        banner "clang-tidy not installed; skipping tidy stage"
        continue
      fi
      banner "clang-tidy"
      configure_and_build "$ROOT/build-ci-tidy" -DGNRFET_CLANG_TIDY=ON
      ;;
    *)
      echo "ci_checks: unknown stage '$stage'" >&2
      echo "known stages: werror asan-ubsan tsan checks-off trace perf-smoke tidy" >&2
      exit 2
      ;;
  esac
done

banner "all requested stages passed"
