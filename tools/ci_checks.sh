#!/usr/bin/env bash
# CI matrix for the GNRFET repo. Runs every gate the project defines:
#
#   werror    -Wall -Wextra -Werror build + full test suite + lint label
#   asan-ubsan  AddressSanitizer + UndefinedBehaviorSanitizer test run
#   tsan      ThreadSanitizer run of the parallel determinism suites
#   checks-off  Release build with GNRFET_CHECKS=OFF (contracts compiled out):
#               the tier-1 suite must still pass without the contract layer
#   trace     fast suite under GNRFET_TRACE: the emitted Chrome trace JSON
#             must parse and summarize through gnrfet_trace_report, and the
#             --json rollup must report spans from every core subsystem
#   perf-smoke  Poisson PCG microbench on a reduced grid (and its 2x
#               refinement) under every preconditioner; asserts IC(0) needs
#               fewer total iterations than Jacobi, multigrid fewer than
#               IC(0) with a relative gap that widens on the refined grid,
#               and that the mg device stack reproduces the ic0 terminal
#               current to 1e-10 with the same Gummel count. Then the
#               NEGF grid bench: the adaptive energy grid must do at most
#               half the uniform RGF solves at <= 1e-4 relative current
#               error, and the uniform grid must be bit-identical across
#               GNRFET_THREADS=1 and 4. Finally the sharded table-generation
#               bench: bit-identical tables across {workers 1,4} x
#               {GNRFET_THREADS 1,4}, >= 1.5x sharded speedup at 4 workers
#               (multi-core hosts only), and the Zipf replay's warm rate
#               >= 100x its cold generation rate inside the LRU byte budget.
#   analyze   gnrfet_lint repo rules + the gnrfet_analyze passes: layering
#             DAG, determinism rules, contract-coverage baseline
#   thread-safety  clang -Wthread-safety -Werror=thread-safety build over the
#             capability annotations in src/common/annotations.hpp (skipped
#             when clang++ is not installed; gcc ignores the annotations)
#   tidy      clang-tidy over all translation units (skipped when clang-tidy
#             is not installed)
#
# Usage:
#   tools/ci_checks.sh               # run the full matrix
#   tools/ci_checks.sh werror tsan   # run selected stages
#
# Each stage configures its own build tree under build-ci-<stage> so stages
# never contaminate each other's flags; configure output goes to
# build-ci-<stage>/configure.log inside the tree. Exits non-zero on the
# first failure.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=(werror asan-ubsan tsan checks-off trace perf-smoke analyze thread-safety tidy)
fi

banner() { printf '\n=== ci_checks: %s ===\n' "$1"; }

configure_and_build() {
  local dir="$1"
  shift
  # The log lives inside the build tree: nothing to litter the repo root
  # with, and `rm -rf build-ci-*` removes stage and log together.
  mkdir -p "$dir"
  cmake -B "$dir" -S "$ROOT" "$@" >"$dir/configure.log" 2>&1 ||
    { cat "$dir/configure.log"; return 1; }
  cmake --build "$dir" -j "$JOBS"
}

for stage in "${STAGES[@]}"; do
  case "$stage" in
    werror)
      banner "warnings-as-errors build + full suite + lint"
      configure_and_build "$ROOT/build-ci-werror" -DGNRFET_WERROR=ON
      ctest --test-dir "$ROOT/build-ci-werror" -j "$JOBS" --output-on-failure
      ctest --test-dir "$ROOT/build-ci-werror" -L lint --output-on-failure
      ;;
    asan-ubsan)
      banner "address,undefined sanitizers"
      configure_and_build "$ROOT/build-ci-asan" \
        -DGNRFET_SANITIZE=address,undefined -DGNRFET_WERROR=ON
      ctest --test-dir "$ROOT/build-ci-asan" -j "$JOBS" --output-on-failure
      ;;
    tsan)
      banner "thread sanitizer on the parallel suites"
      configure_and_build "$ROOT/build-ci-tsan" -DGNRFET_SANITIZE=thread
      ctest --test-dir "$ROOT/build-ci-tsan" -R 'Parallel' -j "$JOBS" --output-on-failure
      ;;
    checks-off)
      banner "Release with GNRFET_CHECKS=OFF (contracts compiled out)"
      configure_and_build "$ROOT/build-ci-nochecks" \
        -DGNRFET_CHECKS=OFF -DCMAKE_BUILD_TYPE=Release -DGNRFET_WERROR=ON
      ctest --test-dir "$ROOT/build-ci-nochecks" -j "$JOBS" --output-on-failure
      ;;
    trace)
      banner "tracing enabled end-to-end: emit, parse, report"
      configure_and_build "$ROOT/build-ci-trace"
      TRACE_JSON="$ROOT/build-ci-trace/ci_trace.json"
      rm -f "$TRACE_JSON"
      # Real self-consistent and circuit solves (device -> poisson -> negf
      # -> linalg, plus circuit DC/transient) traced end-to-end; skips the
      # trace unit tests themselves, which reset the global buffers.
      GNRFET_TRACE="$TRACE_JSON" "$ROOT/build-ci-trace/tests/gnrfet_tests" \
        --gtest_filter='SelfConsistent.*:Dc.*:Transient.*'
      test -s "$TRACE_JSON" || { echo "trace stage: no trace written" >&2; exit 1; }
      # Subsystem coverage is asserted against the report tool's --json
      # rollup (one machine-readable object) instead of grepping the raw
      # Chrome trace: the gate now also proves the aggregation pipeline.
      REPORT_JSON="$ROOT/build-ci-trace/ci_trace_report.json"
      "$ROOT/build-ci-trace/tools/gnrfet_trace_report" --json "$TRACE_JSON" >"$REPORT_JSON"
      test -s "$REPORT_JSON" || { echo "trace stage: --json produced no output" >&2; exit 1; }
      for cat in negf poisson device circuit linalg; do
        grep -q "\"subsystem\":\"$cat\"" "$REPORT_JSON" ||
          { echo "trace stage: no spans from subsystem '$cat' in --json rollup" >&2; exit 1; }
      done
      "$ROOT/build-ci-trace/tools/gnrfet_trace_report" "$TRACE_JSON"
      ;;
    perf-smoke)
      banner "Poisson preconditioner perf smoke (ic0 beats jacobi, mg beats ic0)"
      # Reduced grid so the preconditioner sweeps stay in CI budget; the
      # full-scale numbers live in EXPERIMENTS.md. The TSan coverage of
      # the concurrent PoissonSolver and multigrid paths rides in the tsan
      # stage above (its -R 'Parallel' filter picks up
      # PoissonSolverParallel.*, MultigridParallel.*,
      # TablegenWarmBiasParallel.*, SubprocessParallel.*, and
      # TableShardParallel.*).
      DIR="$ROOT/build-ci-perf"
      mkdir -p "$DIR"
      cmake -B "$DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >"$DIR/configure.log" 2>&1 ||
        { cat "$DIR/configure.log"; exit 1; }
      cmake --build "$DIR" -j "$JOBS" --target bench_poisson_solver
      (cd "$DIR" &&
        GNRFET_BENCH_POISSON_NX=24 GNRFET_BENCH_POISSON_NY=16 GNRFET_BENCH_POISSON_NZ=16 \
        GNRFET_BENCH_POISSON_REPEATS=1 ./bench/bench_poisson_solver)
      PERF_JSON="$DIR/bench_out/BENCH_poisson.json"
      test -s "$PERF_JSON" || { echo "perf-smoke: no BENCH_poisson.json written" >&2; exit 1; }
      # One {"preconditioner":...,"grid_scale":...,"iterations":...} per
      # line, plus two {"device_pc":...} rows.
      iters() {
        sed -n "s/.*\"preconditioner\":\"$1\",\"grid_scale\":$2,\"iterations\":\([0-9]*\).*/\1/p" \
          "$PERF_JSON"
      }
      JAC="$(iters jacobi 1)"; IC0="$(iters ic0 1)"; MG="$(iters mg 1)"
      IC0_2="$(iters ic0 2)"; MG_2="$(iters mg 2)"
      [ -n "$JAC" ] && [ -n "$IC0" ] && [ -n "$MG" ] && [ -n "$IC0_2" ] && [ -n "$MG_2" ] ||
        { echo "perf-smoke: missing preconditioner records in $PERF_JSON" >&2; exit 1; }
      echo "perf-smoke: jacobi=$JAC ic0=$IC0 mg=$MG PCG iterations (scale 1)"
      echo "perf-smoke: ic0=$IC0_2 mg=$MG_2 PCG iterations (scale 2)"
      [ "$IC0" -lt "$JAC" ] ||
        { echo "perf-smoke: ic0 ($IC0) not below jacobi ($JAC)" >&2; exit 1; }
      [ "$MG" -lt "$IC0" ] ||
        { echo "perf-smoke: mg ($MG) not below ic0 ($IC0) at scale 1" >&2; exit 1; }
      [ "$MG_2" -lt "$IC0_2" ] ||
        { echo "perf-smoke: mg ($MG_2) not below ic0 ($IC0_2) at scale 2" >&2; exit 1; }
      # The multigrid advantage must widen under refinement:
      # mg_2/ic0_2 < mg_1/ic0_1, cross-multiplied to stay in integers.
      [ $((MG_2 * IC0)) -lt $((MG * IC0_2)) ] ||
        { echo "perf-smoke: mg/ic0 gap did not widen on the refined grid" \
               "($MG/$IC0 -> $MG_2/$IC0_2)" >&2; exit 1; }

      # fig2 proxy: switching the self-consistent device stack from ic0 to
      # mg must not move the physics — same Gummel count, terminal current
      # equal to 1e-10 relative.
      dev_current() {
        sed -n "s/.*\"device_pc\":\"$1\",\"current_A\":\([0-9.e+-]*\),.*/\1/p" "$PERF_JSON"
      }
      dev_gummel() {
        sed -n "s/.*\"device_pc\":\"$1\".*\"gummel_iterations\":\([0-9]*\).*/\1/p" "$PERF_JSON"
      }
      I_IC0="$(dev_current ic0)"; I_MG="$(dev_current mg)"
      G_IC0="$(dev_gummel ic0)"; G_MG="$(dev_gummel mg)"
      [ -n "$I_IC0" ] && [ -n "$I_MG" ] && [ -n "$G_IC0" ] && [ -n "$G_MG" ] ||
        { echo "perf-smoke: missing device_pc records in $PERF_JSON" >&2; exit 1; }
      echo "perf-smoke: device current ic0=$I_IC0 A ($G_IC0 Gummel)," \
           "mg=$I_MG A ($G_MG Gummel)"
      [ "$G_IC0" = "$G_MG" ] ||
        { echo "perf-smoke: Gummel count changed under mg ($G_IC0 vs $G_MG)" >&2; exit 1; }
      awk -v a="$I_IC0" -v b="$I_MG" 'BEGIN {
        d = a - b; if (d < 0) d = -d; m = a; if (m < 0) m = -m;
        exit (d <= 1e-10 * m) ? 0 : 1 }' ||
        { echo "perf-smoke: device current moved under mg ($I_IC0 vs $I_MG)" >&2; exit 1; }

      # NEGF energy-grid smoke: adaptive must halve the uniform RGF solve
      # count while holding <= 1e-4 relative current error against the
      # 4x-finer uniform reference (reduced sweep to stay in CI budget).
      cmake --build "$DIR" -j "$JOBS" --target bench_negf_grid
      (cd "$DIR" && GNRFET_BENCH_NEGF_NCOL=32 GNRFET_BENCH_NEGF_NVD=3 ./bench/bench_negf_grid)
      NEGF_JSON="$DIR/bench_out/BENCH_negf.json"
      test -s "$NEGF_JSON" || { echo "perf-smoke: no BENCH_negf.json written" >&2; exit 1; }
      # One {"grid":...,"rgf_solves":...,...,"max_rel_current_err":...} per line.
      solves() {
        sed -n "s/.*\"grid\":\"$1\",\"rgf_solves\":\([0-9]*\).*/\1/p" "$NEGF_JSON"
      }
      relerr() {
        sed -n "s/.*\"grid\":\"$1\".*\"max_rel_current_err\":\([0-9.e+-]*\),.*/\1/p" "$NEGF_JSON"
      }
      UNI="$(solves uniform)"; ADA="$(solves adaptive)"; ERR="$(relerr adaptive)"
      [ -n "$UNI" ] && [ -n "$ADA" ] && [ -n "$ERR" ] ||
        { echo "perf-smoke: missing uniform/adaptive records in $NEGF_JSON" >&2; exit 1; }
      echo "perf-smoke: uniform=$UNI adaptive=$ADA RGF solves, adaptive max |dI/I| = $ERR"
      [ $((2 * ADA)) -le "$UNI" ] ||
        { echo "perf-smoke: adaptive ($ADA) not <= half of uniform ($UNI)" >&2; exit 1; }
      awk -v e="$ERR" 'BEGIN { exit (e <= 1e-4) ? 0 : 1 }' ||
        { echo "perf-smoke: adaptive current error $ERR above 1e-4" >&2; exit 1; }

      # Uniform grid thread-count determinism: the pinned pre-adaptive
      # behavior must not depend on GNRFET_THREADS. The bench emits an
      # FNV-1a hash over the raw sweep currents; equal hashes mean
      # bit-identical doubles.
      for t in 1 4; do
        (cd "$DIR" && rm -rf "bench_out_t$t" && mkdir -p "bench_out_t$t" &&
          cd "bench_out_t$t" && GNRFET_THREADS=$t GNRFET_BENCH_NEGF_NCOL=32 \
          GNRFET_BENCH_NEGF_NVD=3 ../bench/bench_negf_grid >/dev/null)
      done
      t_hash() {
        sed -n "s/.*\"grid\":\"$2\".*\"current_hash\":\"\([0-9a-f]*\)\".*/\1/p" \
          "$DIR/bench_out_t$1/bench_out/BENCH_negf.json"
      }
      H1="$(t_hash 1 uniform)"; H4="$(t_hash 4 uniform)"
      A1="$(t_hash 1 adaptive)"; A4="$(t_hash 4 adaptive)"
      [ -n "$H1" ] && [ -n "$H4" ] && [ -n "$A1" ] && [ -n "$A4" ] ||
        { echo "perf-smoke: missing thread-sweep current hashes" >&2; exit 1; }
      [ "$H1" = "$H4" ] ||
        { echo "perf-smoke: uniform grid not thread-deterministic ($H1 vs $H4)" >&2; exit 1; }
      [ "$A1" = "$A4" ] ||
        { echo "perf-smoke: adaptive grid not thread-deterministic ($A1 vs $A4)" >&2; exit 1; }
      echo "perf-smoke: uniform and adaptive currents bit-identical across GNRFET_THREADS=1/4"

      # Table-service smoke: the warm-batch replay must serve lookups at
      # >= 100x the cold generation rate, and the 8-caller cold stampede
      # must coalesce onto exactly one generation with a wall time near a
      # single cold generation (3x headroom for scheduling noise).
      cmake --build "$DIR" -j "$JOBS" --target bench_table_service
      (cd "$DIR" && GNRFET_BENCH_TS_LOOKUPS=100000 ./bench/bench_table_service)
      TS_JSON="$DIR/bench_out/BENCH_tableservice.json"
      test -s "$TS_JSON" || { echo "perf-smoke: no BENCH_tableservice.json written" >&2; exit 1; }
      ts_field() {
        sed -n "s/.*\"phase\":\"$1\".*\"$2\":\([0-9.e+-]*\).*/\1/p" "$TS_JSON"
      }
      COLD_VARIANTS="$(ts_field cold variants)"
      COLD_GENS="$(ts_field cold generations)"
      COLD_SECS="$(ts_field cold seconds)"
      WARM_GENS="$(ts_field warm_batch generations)"
      WARM_RATE="$(ts_field warm_batch rate_per_s)"
      STAMPEDE_GENS="$(ts_field stampede generations)"
      STAMPEDE_SECS="$(ts_field stampede seconds)"
      [ -n "$COLD_VARIANTS" ] && [ -n "$COLD_SECS" ] && [ -n "$WARM_RATE" ] &&
        [ -n "$STAMPEDE_GENS" ] && [ -n "$STAMPEDE_SECS" ] ||
        { echo "perf-smoke: missing phase records in $TS_JSON" >&2; exit 1; }
      echo "perf-smoke: table service cold=$COLD_SECS s/$COLD_VARIANTS variants," \
           "warm rate=$WARM_RATE /s, stampede=$STAMPEDE_SECS s ($STAMPEDE_GENS gen)"
      [ "$COLD_GENS" = "$COLD_VARIANTS" ] ||
        { echo "perf-smoke: cold phase ran $COLD_GENS generations for $COLD_VARIANTS variants" \
               >&2; exit 1; }
      [ "$WARM_GENS" = "0" ] ||
        { echo "perf-smoke: warm batch replay triggered $WARM_GENS generations" >&2; exit 1; }
      awk -v r="$WARM_RATE" -v v="$COLD_VARIANTS" -v s="$COLD_SECS" \
        'BEGIN { exit (r >= 100 * v / s) ? 0 : 1 }' ||
        { echo "perf-smoke: warm-batch rate $WARM_RATE not >= 100x cold rate" >&2; exit 1; }
      [ "$STAMPEDE_GENS" = "1" ] ||
        { echo "perf-smoke: stampede ran $STAMPEDE_GENS generations, expected 1" >&2; exit 1; }
      awk -v t="$STAMPEDE_SECS" -v v="$COLD_VARIANTS" -v s="$COLD_SECS" \
        'BEGIN { exit (t <= 3 * s / v) ? 0 : 1 }' ||
        { echo "perf-smoke: coalesced stampede ($STAMPEDE_SECS s) not within 3x one cold" \
               "generation ($COLD_SECS s / $COLD_VARIANTS)" >&2; exit 1; }

      # Batched-RGF smoke: the SoA energy-batch kernel must hold >= 1.5x
      # the scalar solve rate with a bit-identical transmission stream,
      # and the batched transport sweep must reproduce the legacy path's
      # current hash — at every thread count.
      cmake --build "$DIR" -j "$JOBS" --target bench_rgf_batch
      for t in 1 4; do
        (cd "$DIR" && rm -rf "bench_rgf_t$t" && mkdir -p "bench_rgf_t$t" &&
          cd "bench_rgf_t$t" && GNRFET_THREADS=$t GNRFET_BENCH_RGF_NCOL=32 \
          GNRFET_BENCH_RGF_NVD=3 GNRFET_BENCH_RGF_NE=304 GNRFET_BENCH_RGF_REPEATS=2 \
          ../bench/bench_rgf_batch >/dev/null)
      done
      RGF_JSON="$DIR/bench_rgf_t1/bench_out/BENCH_rgf.json"
      test -s "$RGF_JSON" || { echo "perf-smoke: no BENCH_rgf.json written" >&2; exit 1; }
      rgf_khash() {  # kernel transmission hash: $1 = threads, $2 = path
        sed -n "s/.*\"kind\":\"kernel\",\"path\":\"$2\".*\"transmission_hash\":\"\([0-9a-f]*\)\".*/\1/p" \
          "$DIR/bench_rgf_t$1/bench_out/BENCH_rgf.json"
      }
      rgf_thash() {  # transport current hash: $1 = threads, $2 = knob
        sed -n "s/.*\"kind\":\"transport\",\"knob\":\"$2\".*\"current_hash\":\"\([0-9a-f]*\)\".*/\1/p" \
          "$DIR/bench_rgf_t$1/bench_out/BENCH_rgf.json"
      }
      RGF_SPEED="$(sed -n 's/.*\"kind\":\"kernel\",\"path\":\"batch\".*\"speedup\":\([0-9.e+-]*\).*/\1/p' \
        "$RGF_JSON")"
      KH_S="$(rgf_khash 1 scalar)"; KH_B="$(rgf_khash 1 batch)"
      TH_OFF="$(rgf_thash 1 off)"; TH_ON="$(rgf_thash 1 on)"; TH_ON4="$(rgf_thash 4 on)"
      [ -n "$RGF_SPEED" ] && [ -n "$KH_S" ] && [ -n "$KH_B" ] && [ -n "$TH_OFF" ] &&
        [ -n "$TH_ON" ] && [ -n "$TH_ON4" ] ||
        { echo "perf-smoke: missing batched-RGF records in $RGF_JSON" >&2; exit 1; }
      echo "perf-smoke: batched RGF ${RGF_SPEED}x scalar solve rate," \
           "kernel hash $KH_B, transport hash $TH_ON"
      [ "$KH_S" = "$KH_B" ] ||
        { echo "perf-smoke: batched kernel not bit-identical ($KH_S vs $KH_B)" >&2; exit 1; }
      [ "$TH_OFF" = "$TH_ON" ] ||
        { echo "perf-smoke: batched transport current moved ($TH_OFF vs $TH_ON)" >&2; exit 1; }
      [ "$TH_ON" = "$TH_ON4" ] ||
        { echo "perf-smoke: batched transport not thread-deterministic" \
               "($TH_ON vs $TH_ON4)" >&2; exit 1; }
      awk -v s="$RGF_SPEED" 'BEGIN { exit (s >= 1.5) ? 0 : 1 }' ||
        { echo "perf-smoke: batched RGF speedup $RGF_SPEED below 1.5x" >&2; exit 1; }

      # Sharded table-generation smoke. Hash matrix: the cross-process
      # scheduler must assemble the exact bits of the in-process path for
      # every {workers 1,4} x {GNRFET_THREADS 1,4} combination (8 hashes,
      # all equal). The >= 1.5x speedup gate only runs where parallel
      # hardware exists; the bit-identity gates always run.
      cmake --build "$DIR" -j "$JOBS" --target bench_table_load
      load_field() {  # $1 = dir suffix, $2 = field name (quoted-string value)
        sed -n "s/.*\"$2\":\"\([0-9a-f]*\)\".*/\1/p" \
          "$DIR/bench_load_$1/bench_out/BENCH_tableload.json"
      }
      LOAD_HASHES=""
      for w in 1 4; do
        for t in 1 4; do
          (cd "$DIR" && rm -rf "bench_load_w${w}_t${t}" && mkdir -p "bench_load_w${w}_t${t}" &&
            cd "bench_load_w${w}_t${t}" && GNRFET_THREADS=$t GNRFET_BENCH_LOAD_WORKERS=$w \
            GNRFET_BENCH_LOAD_QUERIES=0 ../bench/bench_table_load >/dev/null)
          HU="$(load_field "w${w}_t${t}" unsharded_hash)"
          HS="$(load_field "w${w}_t${t}" sharded_hash)"
          [ -n "$HU" ] && [ -n "$HS" ] ||
            { echo "perf-smoke: missing table hashes for workers=$w threads=$t" >&2; exit 1; }
          LOAD_HASHES="$LOAD_HASHES $HU $HS"
        done
      done
      LOAD_REF=""
      for h in $LOAD_HASHES; do
        [ -n "$LOAD_REF" ] || LOAD_REF="$h"
        [ "$h" = "$LOAD_REF" ] ||
          { echo "perf-smoke: table hash matrix mismatch:$LOAD_HASHES" >&2; exit 1; }
      done
      echo "perf-smoke: table bits identical across workers {1,4} x threads {1,4} ($LOAD_REF)"
      if [ "$(nproc 2>/dev/null || echo 1)" -ge 4 ]; then
        LOAD_SPEED="$(sed -n 's/.*"speedup":\([0-9.e+-]*\).*/\1/p' \
          "$DIR/bench_load_w4_t1/bench_out/BENCH_tableload.json")"
        echo "perf-smoke: sharded table generation ${LOAD_SPEED}x at 4 workers"
        awk -v s="$LOAD_SPEED" 'BEGIN { exit (s >= 1.5) ? 0 : 1 }' ||
          { echo "perf-smoke: sharded speedup $LOAD_SPEED below 1.5x at 4 workers" >&2; exit 1; }
      else
        echo "perf-smoke: fewer than 4 cores; skipping the sharded >=1.5x speedup gate"
      fi

      # Replay gate: the Zipf warm/cold mix must serve warm lookups at
      # >= 100x the cold generation rate and the LRU must stay inside its
      # byte budget (peak_bytes gauge; reduced query count for CI).
      (cd "$DIR" && rm -rf bench_load_replay && mkdir -p bench_load_replay &&
        cd bench_load_replay && GNRFET_BENCH_LOAD_QUERIES=200000 ../bench/bench_table_load)
      LOAD_JSON="$DIR/bench_load_replay/bench_out/BENCH_tableload.json"
      replay_field() {
        sed -n "s/.*\"phase\":\"replay\".*\"$1\":\([0-9.e+-]*\).*/\1/p" "$LOAD_JSON"
      }
      LOAD_WARM="$(replay_field warm_rate_per_s)"
      LOAD_COLD="$(replay_field cold_gen_per_s)"
      LOAD_LRU_OK="$(replay_field lru_ok)"
      [ -n "$LOAD_WARM" ] && [ -n "$LOAD_COLD" ] && [ -n "$LOAD_LRU_OK" ] ||
        { echo "perf-smoke: missing replay record in $LOAD_JSON" >&2; exit 1; }
      echo "perf-smoke: replay warm rate $LOAD_WARM /s, cold gen rate $LOAD_COLD /s"
      awk -v w="$LOAD_WARM" -v c="$LOAD_COLD" 'BEGIN { exit (w >= 100 * c) ? 0 : 1 }' ||
        { echo "perf-smoke: warm rate $LOAD_WARM not >= 100x cold rate $LOAD_COLD" >&2; exit 1; }
      [ "$LOAD_LRU_OK" = "1" ] ||
        { echo "perf-smoke: replay LRU exceeded its byte budget" >&2; exit 1; }
      ;;
    analyze)
      banner "static analysis: repo lint + layering/determinism/contract passes"
      configure_and_build "$ROOT/build-ci-analyze"
      cmake --build "$ROOT/build-ci-analyze" -j "$JOBS" \
        --target gnrfet_lint gnrfet_analyze
      "$ROOT/build-ci-analyze/tools/gnrfet_lint" "$ROOT"
      "$ROOT/build-ci-analyze/tools/gnrfet_analyze" "$ROOT"
      ;;
    thread-safety)
      if ! command -v clang++ >/dev/null 2>&1; then
        banner "clang++ not installed; skipping thread-safety stage"
        continue
      fi
      banner "clang -Wthread-safety over the capability annotations"
      # The build is the check: -Werror=thread-safety fails it on any
      # GNRFET_GUARDED_BY/GNRFET_REQUIRES violation.
      configure_and_build "$ROOT/build-ci-tsafety" \
        -DCMAKE_CXX_COMPILER=clang++ -DGNRFET_THREAD_SAFETY=ON
      ;;
    tidy)
      if ! command -v clang-tidy >/dev/null 2>&1; then
        banner "clang-tidy not installed; skipping tidy stage"
        continue
      fi
      banner "clang-tidy"
      configure_and_build "$ROOT/build-ci-tidy" -DGNRFET_CLANG_TIDY=ON
      ;;
    *)
      echo "ci_checks: unknown stage '$stage'" >&2
      echo "known stages: werror asan-ubsan tsan checks-off trace perf-smoke" \
           "analyze thread-safety tidy" >&2
      exit 2
      ;;
  esac
done

banner "all requested stages passed"
