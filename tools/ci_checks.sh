#!/usr/bin/env bash
# CI matrix for the GNRFET repo. Runs every gate the project defines:
#
#   werror    -Wall -Wextra -Werror build + full test suite + lint label
#   asan-ubsan  AddressSanitizer + UndefinedBehaviorSanitizer test run
#   tsan      ThreadSanitizer run of the parallel determinism suites
#   checks-off  Release build with GNRFET_CHECKS=OFF (contracts compiled out):
#               the tier-1 suite must still pass without the contract layer
#   trace     fast suite under GNRFET_TRACE: the emitted Chrome trace JSON
#             must parse and summarize through gnrfet_trace_report
#   perf-smoke  Poisson PCG microbench on a reduced grid under every
#               preconditioner; asserts IC(0) needs fewer total iterations
#               than Jacobi (the point of the fast-solver work)
#   tidy      clang-tidy over all translation units (skipped when clang-tidy
#             is not installed)
#
# Usage:
#   tools/ci_checks.sh               # run the full matrix
#   tools/ci_checks.sh werror tsan   # run selected stages
#
# Each stage configures its own build tree under build-ci-<stage> so stages
# never contaminate each other's flags. Exits non-zero on the first failure.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=(werror asan-ubsan tsan checks-off trace perf-smoke tidy)
fi

banner() { printf '\n=== ci_checks: %s ===\n' "$1"; }

configure_and_build() {
  local dir="$1"
  shift
  cmake -B "$dir" -S "$ROOT" "$@" >"$dir.configure.log" 2>&1 ||
    { cat "$dir.configure.log"; return 1; }
  cmake --build "$dir" -j "$JOBS"
}

for stage in "${STAGES[@]}"; do
  case "$stage" in
    werror)
      banner "warnings-as-errors build + full suite + lint"
      configure_and_build "$ROOT/build-ci-werror" -DGNRFET_WERROR=ON
      ctest --test-dir "$ROOT/build-ci-werror" -j "$JOBS" --output-on-failure
      ctest --test-dir "$ROOT/build-ci-werror" -L lint --output-on-failure
      ;;
    asan-ubsan)
      banner "address,undefined sanitizers"
      configure_and_build "$ROOT/build-ci-asan" \
        -DGNRFET_SANITIZE=address,undefined -DGNRFET_WERROR=ON
      ctest --test-dir "$ROOT/build-ci-asan" -j "$JOBS" --output-on-failure
      ;;
    tsan)
      banner "thread sanitizer on the parallel suites"
      configure_and_build "$ROOT/build-ci-tsan" -DGNRFET_SANITIZE=thread
      ctest --test-dir "$ROOT/build-ci-tsan" -R 'Parallel' -j "$JOBS" --output-on-failure
      ;;
    checks-off)
      banner "Release with GNRFET_CHECKS=OFF (contracts compiled out)"
      configure_and_build "$ROOT/build-ci-nochecks" \
        -DGNRFET_CHECKS=OFF -DCMAKE_BUILD_TYPE=Release -DGNRFET_WERROR=ON
      ctest --test-dir "$ROOT/build-ci-nochecks" -j "$JOBS" --output-on-failure
      ;;
    trace)
      banner "tracing enabled end-to-end: emit, parse, report"
      configure_and_build "$ROOT/build-ci-trace"
      TRACE_JSON="$ROOT/build-ci-trace/ci_trace.json"
      rm -f "$TRACE_JSON"
      # Real self-consistent and circuit solves (device -> poisson -> negf
      # -> linalg, plus circuit DC/transient) traced end-to-end; skips the
      # trace unit tests themselves, which reset the global buffers.
      GNRFET_TRACE="$TRACE_JSON" "$ROOT/build-ci-trace/tests/gnrfet_tests" \
        --gtest_filter='SelfConsistent.*:Dc.*:Transient.*'
      test -s "$TRACE_JSON" || { echo "trace stage: no trace written" >&2; exit 1; }
      for cat in negf poisson device circuit linalg; do
        grep -q "\"cat\":\"$cat\"" "$TRACE_JSON" ||
          { echo "trace stage: no spans from subsystem '$cat'" >&2; exit 1; }
      done
      "$ROOT/build-ci-trace/tools/gnrfet_trace_report" "$TRACE_JSON"
      ;;
    perf-smoke)
      banner "Poisson preconditioner perf smoke (ic0 must beat jacobi)"
      # Reduced grid so the three preconditioner sweeps stay in CI budget;
      # the full-scale numbers live in EXPERIMENTS.md. The TSan coverage of
      # the concurrent PoissonSolver path rides in the tsan stage above
      # (its -R 'Parallel' filter picks up PoissonSolverParallel.*).
      DIR="$ROOT/build-ci-perf"
      cmake -B "$DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >"$DIR.configure.log" 2>&1 ||
        { cat "$DIR.configure.log"; exit 1; }
      cmake --build "$DIR" -j "$JOBS" --target bench_poisson_solver
      (cd "$DIR" &&
        GNRFET_BENCH_POISSON_NX=24 GNRFET_BENCH_POISSON_NY=16 GNRFET_BENCH_POISSON_NZ=16 \
        GNRFET_BENCH_POISSON_REPEATS=1 ./bench/bench_poisson_solver)
      PERF_JSON="$DIR/bench_out/BENCH_poisson.json"
      test -s "$PERF_JSON" || { echo "perf-smoke: no BENCH_poisson.json written" >&2; exit 1; }
      # One {"preconditioner":...,"iterations":...,"seconds":...} per line.
      iters() {
        sed -n "s/.*\"preconditioner\":\"$1\",\"iterations\":\([0-9]*\).*/\1/p" "$PERF_JSON"
      }
      JAC="$(iters jacobi)"; IC0="$(iters ic0)"
      [ -n "$JAC" ] && [ -n "$IC0" ] ||
        { echo "perf-smoke: missing jacobi/ic0 records in $PERF_JSON" >&2; exit 1; }
      echo "perf-smoke: jacobi=$JAC ic0=$IC0 total PCG iterations"
      [ "$IC0" -lt "$JAC" ] ||
        { echo "perf-smoke: ic0 ($IC0) not below jacobi ($JAC)" >&2; exit 1; }
      ;;
    tidy)
      if ! command -v clang-tidy >/dev/null 2>&1; then
        banner "clang-tidy not installed; skipping tidy stage"
        continue
      fi
      banner "clang-tidy"
      configure_and_build "$ROOT/build-ci-tidy" -DGNRFET_CLANG_TIDY=ON
      ;;
    *)
      echo "ci_checks: unknown stage '$stage'" >&2
      echo "known stages: werror asan-ubsan tsan checks-off trace perf-smoke tidy" >&2
      exit 2
      ;;
  esac
done

banner "all requested stages passed"
