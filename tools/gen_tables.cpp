/// Pre-generates every intrinsic-device lookup table the benches need into
/// the on-disk cache (data/cache). Idempotent: cached tables are skipped.
///
/// The set covers the paper's variability study: ideal devices with
/// N = 9/12/15/18 (Table 2, Fig. 4), N = 12 with oxide charge impurities
/// -2q..+2q (Table 3, Fig. 5), and N = 9/18 with -q/+q (Table 4, Figs. 6-7).
///
/// Modes:
///   gen_tables                 generate in-process (threads per GNRFET_THREADS)
///   gen_tables --workers N     shard cold generation across N worker
///                              processes (this binary re-exec'd as workers);
///                              tables are byte-identical to in-process mode
///   gen_tables --worker        worker entry: serve the shard protocol on
///                              stdin/stdout (spawned by --workers, not users)
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "device/tablegen.hpp"
#include "service/shardgen.hpp"

using namespace gnrfet;

namespace {

device::DeviceSpec make_spec(int n_index, double impurity_q) {
  device::DeviceSpec spec;
  spec.n_index = n_index;
  if (impurity_q != 0.0) {
    spec.impurities.push_back({impurity_q, 1.0, 0.0, 0.4});
  }
  return spec;
}

/// Path of this executable, for re-exec'ing it as `--worker` children.
/// /proc/self/exe survives cwd changes and $PATH-less invocation.
std::string self_exe(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return std::string(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  int workers = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--worker") == 0) {
      return service::shard_worker_main(0, 1);
    }
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
      if (workers < 1) {
        std::fprintf(stderr, "gen_tables: --workers wants a positive integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
      continue;
    }
    std::fprintf(stderr, "usage: gen_tables [--workers N | --worker]\n");
    return 2;
  }

  std::unique_ptr<service::ShardScheduler> scheduler;
  if (workers > 0) {
    service::ShardOptions shard;
    shard.workers = workers;
    shard.worker_argv = {self_exe(argv[0]), "--worker"};
    scheduler = std::make_unique<service::ShardScheduler>(std::move(shard));
    std::printf("sharding cold generation across %d worker processes\n", workers);
  }

  std::vector<std::pair<int, double>> configs = {
      {12, 0.0}, {9, 0.0},  {15, 0.0}, {18, 0.0},  {12, -1.0}, {12, 1.0}, {12, -2.0},
      {12, 2.0}, {9, -1.0}, {9, 1.0},  {18, -1.0}, {18, 1.0},
  };
  device::TableGenOptions opts;
  opts.vg_max = 1.0;
  opts.vg_points = 21;  // 0.05 V steps over [0, 1.0]
  for (const auto& [n, q] : configs) {
    const auto spec = make_spec(n, q);
    const auto t0 = std::chrono::steady_clock::now();
    const auto table =
        scheduler ? scheduler->generate(spec, opts) : device::generate_device_table(spec, opts);
    const double dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::printf("table N=%d q=%+.0f: %zux%zu points, Eg=%.3f eV (%.1f s)\n", n, q,
                table.vg.size(), table.vd.size(), table.band_gap_eV, dt);
    std::fflush(stdout);
  }
  std::printf("all tables ready\n");
  return 0;
}
