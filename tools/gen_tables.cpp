/// Pre-generates every intrinsic-device lookup table the benches need into
/// the on-disk cache (data/cache). Idempotent: cached tables are skipped.
///
/// The set covers the paper's variability study: ideal devices with
/// N = 9/12/15/18 (Table 2, Fig. 4), N = 12 with oxide charge impurities
/// -2q..+2q (Table 3, Fig. 5), and N = 9/18 with -q/+q (Table 4, Figs. 6-7).
#include <chrono>
#include <cstdio>
#include <vector>

#include "device/tablegen.hpp"

using namespace gnrfet;

namespace {

device::DeviceSpec make_spec(int n_index, double impurity_q) {
  device::DeviceSpec spec;
  spec.n_index = n_index;
  if (impurity_q != 0.0) {
    spec.impurities.push_back({impurity_q, 1.0, 0.0, 0.4});
  }
  return spec;
}

}  // namespace

int main() {
  std::vector<std::pair<int, double>> configs = {
      {12, 0.0}, {9, 0.0},  {15, 0.0}, {18, 0.0},  {12, -1.0}, {12, 1.0}, {12, -2.0},
      {12, 2.0}, {9, -1.0}, {9, 1.0},  {18, -1.0}, {18, 1.0},
  };
  device::TableGenOptions opts;
  opts.vg_max = 1.0;
  opts.vg_points = 21;  // 0.05 V steps over [0, 1.0]
  for (const auto& [n, q] : configs) {
    const auto spec = make_spec(n, q);
    const auto t0 = std::chrono::steady_clock::now();
    const auto table = device::generate_device_table(spec, opts);
    const double dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::printf("table N=%d q=%+.0f: %zux%zu points, Eg=%.3f eV (%.1f s)\n", n, q,
                table.vg.size(), table.vd.size(), table.band_gap_eV, dt);
    std::fflush(stdout);
  }
  std::printf("all tables ready\n");
  return 0;
}
