#include "gnr/bandstructure.hpp"

#include <cmath>
#include <numbers>

#include "linalg/eig.hpp"

namespace gnrfet::gnr {

double BandStructure::conduction_minimum() const {
  double cb = 1e300;
  for (const auto& bs : bands) {
    for (const double e : bs) {
      if (e > 0.0) cb = std::min(cb, e);
    }
  }
  return cb;
}

double BandStructure::valence_maximum() const {
  double vb = -1e300;
  for (const auto& bs : bands) {
    for (const double e : bs) {
      if (e <= 0.0) vb = std::max(vb, e);
    }
  }
  return vb;
}

BandStructure compute_bands(int n_index, const TightBindingParams& params, int num_k) {
  const UnitCell cell = unit_cell_hamiltonian(n_index, params);
  const size_t dim = cell.h00.rows();
  BandStructure bs;
  bs.k.reserve(static_cast<size_t>(num_k));
  bs.bands.reserve(static_cast<size_t>(num_k));
  for (int ik = 0; ik < num_k; ++ik) {
    const double k = std::numbers::pi / cell.period_nm * ik / (num_k - 1);
    const linalg::cplx phase = std::exp(linalg::cplx(0.0, k * cell.period_nm));
    linalg::CMatrix hk = cell.h00;
    for (size_t i = 0; i < dim; ++i) {
      for (size_t j = 0; j < dim; ++j) {
        hk(i, j) += cell.h01(i, j) * phase + std::conj(cell.h01(j, i)) * std::conj(phase);
      }
    }
    bs.k.push_back(k);
    bs.bands.push_back(linalg::eigh(hk).values);
  }
  return bs;
}

double band_gap(int n_index, const TightBindingParams& params) {
  return compute_bands(n_index, params, 96).band_gap();
}

bool is_small_gap_family(int n_index) { return n_index % 3 == 2; }

}  // namespace gnrfet::gnr
