#pragma once

#include <vector>

#include "gnr/lattice.hpp"
#include "linalg/dense.hpp"

/// pz-orbital tight-binding Hamiltonians for A-GNRs in the block-tridiagonal
/// layout consumed by the recursive Green's function solver.
namespace gnrfet::gnr {

/// Block-tridiagonal Hermitian matrix: diagonal blocks H[i][i] and
/// super-diagonal coupling blocks H[i][i+1] (sub-diagonal = adjoint).
/// Blocks may have different sizes (slice sizes alternate for odd N).
struct BlockTridiagonal {
  std::vector<linalg::CMatrix> diag;
  std::vector<linalg::CMatrix> upper;  ///< upper[i] couples slice i -> i+1

  size_t num_blocks() const { return diag.size(); }
  size_t total_dim() const;

  /// Assemble into one dense matrix (tests and small reference solves).
  linalg::CMatrix to_dense() const;
};

/// Largest |H_ij - conj(H_ji)| over the diagonal blocks (the off-diagonal
/// blocks are Hermitian by the storage convention), or infinity when any
/// entry is non-finite. The NEGF layer requires this to be ~0 on entry:
/// a non-Hermitian Hamiltonian silently breaks the spectral sum rule.
double hermiticity_error(const BlockTridiagonal& h);

/// Parameters of the pz model.
struct TightBindingParams {
  double hopping_eV = 2.7;   ///< paper value
  double edge_delta = 0.12;  ///< Son-Cohen-Louie edge relaxation
};

/// Build the device Hamiltonian for `lat` with the given per-atom onsite
/// energies (eV); onsite.size() must equal lat.atoms().size(). The sign
/// convention is H_ij = -t for bonded neighbours, so the pz bands are
/// symmetric about zero and the local charge-neutrality level of slice i
/// equals the local electrostatic mid-gap energy.
BlockTridiagonal build_hamiltonian(const Lattice& lat, const TightBindingParams& params,
                                   const std::vector<double>& onsite_eV);

/// Same with zero onsite energies.
BlockTridiagonal build_hamiltonian(const Lattice& lat, const TightBindingParams& params);

/// Bulk unit-cell Hamiltonian of the infinite ribbon: H00 is the 2N x 2N
/// Hamiltonian of two adjacent slices, H01 couples a cell to the next one.
struct UnitCell {
  linalg::CMatrix h00;
  linalg::CMatrix h01;
  double period_nm = 0.0;
};

UnitCell unit_cell_hamiltonian(int n_index, const TightBindingParams& params);

}  // namespace gnrfet::gnr
