#include "gnr/modespace.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/constants.hpp"
#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace gnrfet::gnr {

double Mode::band_edge_eV() const {
  return std::min(std::abs(t_dimer + t_stair), std::abs(t_dimer - t_stair));
}

double Mode::band_top_eV() const {
  return std::max(std::abs(t_dimer + t_stair), std::abs(t_dimer - t_stair));
}

double ModeSet::band_gap_eV() const {
  return modes.empty() ? 0.0 : 2.0 * modes.front().band_edge_eV();
}

ModeSet build_mode_set(int n_index, const TightBindingParams& params, int num_modes) {
  if (n_index < 3) throw std::invalid_argument("build_mode_set: GNR index must be >= 3");
  if (num_modes < 1) throw std::invalid_argument("build_mode_set: need >= 1 mode");
  const int n = n_index;
  ModeSet set;
  set.n_index = n;
  set.params = params;
  const double t = params.hopping_eV;
  // Keep one representative per gauge-equivalent pair (p, N+1-p): the
  // cos(theta) > 0 side, plus the self-paired middle mode (odd N) at half
  // weight. This makes the mode-space density of states equal the
  // real-space one (N/2 states per atomic column).
  for (int p = 1; 2 * p <= n + 1; ++p) {
    Mode m;
    m.p = p;
    m.degeneracy = (2 * p == n + 1) ? 0.5 : 1.0;
    const double theta = p * std::numbers::pi / (n + 1);
    m.weight.resize(static_cast<size_t>(n));
    double edge_w = 0.0;
    for (int j = 0; j < n; ++j) {
      const double phi = std::sqrt(2.0 / (n + 1)) * std::sin(theta * (j + 1));
      m.weight[static_cast<size_t>(j)] = phi * phi;
    }
    edge_w = m.weight.front() + m.weight.back();
    m.t_dimer = t * (1.0 + params.edge_delta * edge_w);
    m.t_stair = 2.0 * t * std::cos(theta);
    set.modes.push_back(std::move(m));
  }
  std::sort(set.modes.begin(), set.modes.end(),
            [](const Mode& a, const Mode& b) { return a.band_edge_eV() < b.band_edge_eV(); });
  if (set.modes.size() > static_cast<size_t>(num_modes)) {
    set.modes.resize(static_cast<size_t>(num_modes));
  }
  // Each transverse mode profile is normalized: its dimer-line weights are
  // |phi_p(j)|^2 and must sum to 1, or the mode-space charge would not
  // conserve the real-space density of states.
  for (const auto& m : set.modes) {
    double wsum = 0.0;
    for (const double w : m.weight) wsum += w;
    GNRFET_ENSURE("gnr", "normalized-mode-weights", std::abs(wsum - 1.0) <= 1e-12 * n,
                  strings::format("mode p = %d: sum of weights = %.15g", m.p, wsum));
  }
  GNRFET_ENSURE("gnr", "physical-band-gap",
                std::isfinite(set.band_gap_eV()) && set.band_gap_eV() >= 0.0,
                strings::format("band gap = %g eV", set.band_gap_eV()));
  return set;
}

double mode_dispersion(const Mode& m, double k_per_nm) {
  const double period = 1.5 * constants::kCarbonBond_nm;
  const double c = std::cos(k_per_nm * period);
  return std::sqrt(std::max(
      0.0, m.t_dimer * m.t_dimer + m.t_stair * m.t_stair + 2.0 * m.t_dimer * m.t_stair * c));
}

}  // namespace gnrfet::gnr
