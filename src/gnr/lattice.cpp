#include "gnr/lattice.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "common/constants.hpp"

namespace gnrfet::gnr {

namespace {
constexpr double kA = constants::kCarbonBond_nm;       // C-C bond aCC
const double kRowPitch = std::sqrt(3.0) / 2.0 * kA;    // dimer-line spacing
}  // namespace

int Lattice::slices_for_length(double length_nm) {
  if (length_nm <= 0.0) throw std::invalid_argument("Lattice: length must be positive");
  return static_cast<int>(std::ceil(length_nm / (1.5 * kA)));
}

Lattice Lattice::armchair(int n_index, int num_slices, double edge_delta) {
  if (n_index < 3) throw std::invalid_argument("Lattice: GNR index must be >= 3");
  if (num_slices < 2) throw std::invalid_argument("Lattice: need at least 2 slices");
  Lattice lat;
  lat.n_ = n_index;
  lat.num_slices_ = num_slices;
  lat.edge_delta_ = edge_delta;
  lat.slice_atoms_.resize(static_cast<size_t>(num_slices));

  // Slice m holds two atomic columns: A-column at x = 1.5*aCC*m and
  // B-column at x = 1.5*aCC*m + aCC, populated on dimer lines j with
  // j = m (mod 2).
  for (int m = 0; m < num_slices; ++m) {
    const double xa = 1.5 * kA * m;
    const double xb = xa + kA;
    for (int j = (m % 2); j < n_index; j += 2) {
      const double y = j * kRowPitch;
      lat.slice_atoms_[static_cast<size_t>(m)].push_back(lat.atoms_.size());
      lat.atoms_.push_back({xa, y, j, m});
      lat.slice_atoms_[static_cast<size_t>(m)].push_back(lat.atoms_.size());
      lat.atoms_.push_back({xb, y, j, m});
    }
    lat.column_x_.push_back(xa);
    lat.column_x_.push_back(xb);
  }

  // Distance-based neighbor search (cutoff a little over one bond length).
  // The lattice is small enough (~2500 atoms max) for the O(n^2) scan
  // restricted to nearby slices.
  const double cutoff2 = std::pow(1.1 * kA, 2);
  for (size_t i = 0; i < lat.atoms_.size(); ++i) {
    for (size_t j = i + 1; j < lat.atoms_.size(); ++j) {
      const Atom& a = lat.atoms_[i];
      const Atom& b = lat.atoms_[j];
      if (std::abs(a.slice - b.slice) > 1) continue;
      const double dx = a.x_nm - b.x_nm;
      const double dy = a.y_nm - b.y_nm;
      if (dx * dx + dy * dy > cutoff2) continue;
      double scale = 1.0;
      const bool edge_line = (a.dimer_line == 0 && b.dimer_line == 0) ||
                             (a.dimer_line == n_index - 1 && b.dimer_line == n_index - 1);
      // Edge relaxation applies to the dimer bonds along the armchair
      // edge, i.e. intra-line bonds on the outermost dimer lines.
      if (edge_line && std::abs(dy) < 1e-9) scale = 1.0 + edge_delta;
      lat.bonds_.push_back({i, j, scale});
    }
  }
  return lat;
}

Lattice Lattice::with_vacancy(size_t atom_index) const {
  if (atom_index >= atoms_.size()) {
    throw std::invalid_argument("with_vacancy: atom index out of range");
  }
  Lattice out;
  out.n_ = n_;
  out.num_slices_ = num_slices_;
  out.edge_delta_ = edge_delta_;
  out.column_x_ = column_x_;
  out.slice_atoms_.resize(slice_atoms_.size());

  std::vector<size_t> remap(atoms_.size(), SIZE_MAX);
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i == atom_index) continue;
    remap[i] = out.atoms_.size();
    out.atoms_.push_back(atoms_[i]);
    out.slice_atoms_[static_cast<size_t>(atoms_[i].slice)].push_back(remap[i]);
  }
  for (const auto& s : out.slice_atoms_) {
    if (s.empty()) throw std::invalid_argument("with_vacancy: slice would become empty");
  }
  for (const auto& b : bonds_) {
    if (b.a == atom_index || b.b == atom_index) continue;
    out.bonds_.push_back({remap[b.a], remap[b.b], b.scale});
  }
  return out;
}

Lattice Lattice::with_edge_roughness(double removal_probability, unsigned seed) const {
  if (removal_probability < 0.0 || removal_probability >= 1.0) {
    throw std::invalid_argument("with_edge_roughness: probability must be in [0, 1)");
  }
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  // Collect removals first (indices shift after each removal), highest
  // index first so earlier indices stay valid.
  std::vector<size_t> removals;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    const bool edge = atoms_[i].dimer_line == 0 || atoms_[i].dimer_line == n_ - 1;
    if (edge && u(rng) < removal_probability) removals.push_back(i);
  }
  Lattice out = *this;
  for (auto it = removals.rbegin(); it != removals.rend(); ++it) {
    out = out.with_vacancy(*it);
  }
  return out;
}

double Lattice::width_nm() const { return (n_ - 1) * kRowPitch; }

double Lattice::length_nm() const {
  double lo = 1e300, hi = -1e300;
  for (const auto& a : atoms_) {
    lo = std::min(lo, a.x_nm);
    hi = std::max(hi, a.x_nm);
  }
  return hi - lo;
}

double Lattice::dimer_line_y_nm(int j) const { return j * kRowPitch; }

}  // namespace gnrfet::gnr
