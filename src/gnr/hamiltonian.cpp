#include "gnr/hamiltonian.hpp"

#include <limits>
#include <map>
#include <stdexcept>

#include "common/constants.hpp"
#include "common/contracts.hpp"

namespace gnrfet::gnr {

double hermiticity_error(const BlockTridiagonal& h) {
  double err = 0.0;
  for (const auto& d : h.diag) {
    for (size_t i = 0; i < d.rows(); ++i) {
      for (size_t j = 0; j <= i; ++j) {
        const auto delta = d(i, j) - std::conj(d(j, i));
        if (!std::isfinite(delta.real()) || !std::isfinite(delta.imag())) {
          return std::numeric_limits<double>::infinity();
        }
        err = std::max(err, std::abs(delta));
      }
    }
  }
  for (const auto& u : h.upper) {
    for (size_t i = 0; i < u.rows(); ++i) {
      for (size_t j = 0; j < u.cols(); ++j) {
        const auto v = u(i, j);
        if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) {
          return std::numeric_limits<double>::infinity();
        }
      }
    }
  }
  return err;
}

size_t BlockTridiagonal::total_dim() const {
  size_t n = 0;
  for (const auto& d : diag) n += d.rows();
  return n;
}

linalg::CMatrix BlockTridiagonal::to_dense() const {
  const size_t n = total_dim();
  linalg::CMatrix h(n, n);
  size_t off = 0;
  for (size_t b = 0; b < diag.size(); ++b) {
    const auto& d = diag[b];
    for (size_t i = 0; i < d.rows(); ++i) {
      for (size_t j = 0; j < d.cols(); ++j) h(off + i, off + j) = d(i, j);
    }
    if (b + 1 < diag.size()) {
      const auto& u = upper[b];
      const size_t off2 = off + d.rows();
      for (size_t i = 0; i < u.rows(); ++i) {
        for (size_t j = 0; j < u.cols(); ++j) {
          h(off + i, off2 + j) = u(i, j);
          h(off2 + j, off + i) = std::conj(u(i, j));
        }
      }
    }
    off += d.rows();
  }
  return h;
}

BlockTridiagonal build_hamiltonian(const Lattice& lat, const TightBindingParams& params,
                                   const std::vector<double>& onsite_eV) {
  if (onsite_eV.size() != lat.atoms().size()) {
    throw std::invalid_argument("build_hamiltonian: onsite size mismatch");
  }
  GNRFET_REQUIRE("gnr", "finite-onsite", contracts::all_finite(onsite_eV),
                 "onsite energy array contains NaN/inf (poisoned potential?)");
  GNRFET_REQUIRE("gnr", "finite-hopping",
                 std::isfinite(params.hopping_eV) && std::isfinite(params.edge_delta),
                 "tight-binding parameters contain NaN/inf");
  const auto& slices = lat.slice_atoms();
  const size_t ns = slices.size();

  // Map global atom index -> (slice, position within slice).
  std::vector<std::pair<size_t, size_t>> where(lat.atoms().size());
  for (size_t s = 0; s < ns; ++s) {
    for (size_t k = 0; k < slices[s].size(); ++k) where[slices[s][k]] = {s, k};
  }

  BlockTridiagonal h;
  h.diag.reserve(ns);
  h.upper.reserve(ns - 1);
  for (size_t s = 0; s < ns; ++s) {
    linalg::CMatrix d(slices[s].size(), slices[s].size());
    for (size_t k = 0; k < slices[s].size(); ++k) d(k, k) = onsite_eV[slices[s][k]];
    h.diag.push_back(std::move(d));
  }
  for (size_t s = 0; s + 1 < ns; ++s) {
    h.upper.emplace_back(slices[s].size(), slices[s + 1].size());
  }

  const double t = params.hopping_eV;
  for (const auto& bond : lat.bonds()) {
    const auto [sa, ka] = where[bond.a];
    const auto [sb, kb] = where[bond.b];
    const linalg::cplx v = -t * bond.scale;
    if (sa == sb) {
      h.diag[sa](ka, kb) += v;
      h.diag[sa](kb, ka) += std::conj(v);
    } else if (sb == sa + 1) {
      h.upper[sa](ka, kb) += v;
    } else if (sa == sb + 1) {
      h.upper[sb](kb, ka) += std::conj(v);
    } else {
      throw std::logic_error("build_hamiltonian: bond spans more than one slice");
    }
  }
  return h;
}

BlockTridiagonal build_hamiltonian(const Lattice& lat, const TightBindingParams& params) {
  return build_hamiltonian(lat, params, std::vector<double>(lat.atoms().size(), 0.0));
}

UnitCell unit_cell_hamiltonian(int n_index, const TightBindingParams& params) {
  // Build 4 slices (2 unit cells); extract H00 from slices (0,1) and the
  // coupling H01 from slice 1 -> slice 2 embedded in a 2N x 2N frame.
  const Lattice lat = Lattice::armchair(n_index, 4, params.edge_delta);
  // Re-derive onsite zeros; interior bonds of a 4-slice ribbon reproduce
  // all bulk couplings for the middle cell boundary.
  const BlockTridiagonal h = build_hamiltonian(lat, params);
  const size_t n0 = h.diag[0].rows();
  const size_t n1 = h.diag[1].rows();
  const size_t dim = n0 + n1;  // = 2N
  UnitCell cell;
  cell.period_nm = 3.0 * constants::kCarbonBond_nm;
  cell.h00 = linalg::CMatrix(dim, dim);
  for (size_t i = 0; i < n0; ++i) {
    for (size_t j = 0; j < n0; ++j) cell.h00(i, j) = h.diag[0](i, j);
  }
  for (size_t i = 0; i < n1; ++i) {
    for (size_t j = 0; j < n1; ++j) cell.h00(n0 + i, n0 + j) = h.diag[1](i, j);
  }
  for (size_t i = 0; i < n0; ++i) {
    for (size_t j = 0; j < n1; ++j) {
      cell.h00(i, n0 + j) = h.upper[0](i, j);
      cell.h00(n0 + j, i) = std::conj(h.upper[0](i, j));
    }
  }
  // Coupling to the next cell: slice 1 -> slice 2. Slice 2 has the same
  // size/ordering as slice 0 (parity repeats with period 2).
  cell.h01 = linalg::CMatrix(dim, dim);
  for (size_t i = 0; i < n1; ++i) {
    for (size_t j = 0; j < h.diag[2].rows(); ++j) {
      cell.h01(n0 + i, j) = h.upper[1](i, j);
    }
  }
  return cell;
}

}  // namespace gnrfet::gnr
