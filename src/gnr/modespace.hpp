#pragma once

#include <vector>

#include "gnr/hamiltonian.hpp"

/// Uncoupled mode-space reduction of the A-GNR pz Hamiltonian.
///
/// With a transverse-uniform potential the N-index armchair ribbon
/// decouples under the hard-wall sine transform
///     phi_p(j) = sqrt(2/(N+1)) sin(p*pi*(j+1)/(N+1)),  j = 0..N-1
/// into N one-dimensional SSH-like chains with alternating hoppings
///     t_p = t * (1 + delta*(phi_p(0)^2 + phi_p(N-1)^2))   (dimer bonds,
///           including the first-order edge-relaxation correction)
///     b_p = 2 t cos(p*pi/(N+1))                           (staircase bonds).
/// Chain site c maps to atomic column c of the lattice (two sites per RGF
/// slice); the mode potential is the transverse average of the slice
/// potential with weights w_p(j) = phi_p(j)^2.
///
/// Edge relaxation couples modes at second order; the uncoupled
/// approximation keeps only the diagonal correction and is validated
/// against the real-space solver in tests (band gaps and I-V agreement).
namespace gnrfet::gnr {

struct Mode {
  int p = 0;              ///< transverse quantum number, 1..N
  double t_dimer = 0.0;   ///< intra-dimer hopping incl. edge correction (eV)
  double t_stair = 0.0;   ///< staircase hopping 2t cos(theta_p) (eV, signed)
  /// Chains p and N+1-p are gauge-equivalent (b -> -b) and describe the
  /// same physical subband pair, so only one representative per pair is
  /// kept; the self-paired middle mode of odd N carries degeneracy 0.5.
  double degeneracy = 1.0;
  std::vector<double> weight;  ///< w_p(j) over dimer lines, sums to 1

  /// Bulk band-edge energy |E| of this subband: min over k of |E_p(k)|.
  double band_edge_eV() const;
  /// Bulk band top (max |E|) of this subband.
  double band_top_eV() const;
};

struct ModeSet {
  int n_index = 0;
  TightBindingParams params;
  std::vector<Mode> modes;  ///< sorted by ascending band edge

  /// Band gap implied by the lowest mode (2 * its band edge).
  double band_gap_eV() const;
};

/// Build the `num_modes` lowest subbands of the N-index ribbon.
ModeSet build_mode_set(int n_index, const TightBindingParams& params, int num_modes);

/// Dispersion of one mode at wavevector k. The mode chain's period is
/// 1.5*aCC (two column sites per period):
/// E = +- sqrt(t_p^2 + b_p^2 + 2 t_p b_p cos(k*1.5*aCC)). Returns the
/// positive branch. Evaluated over the ribbon Brillouin zone
/// [0, pi/(3 aCC)], the set {E_p(k), p=1..N} reproduces the positive
/// real-space bands exactly for delta = 0.
double mode_dispersion(const Mode& m, double k_per_nm);

}  // namespace gnrfet::gnr
