#pragma once

#include <cstddef>
#include <vector>

/// Atomistic geometry of armchair-edge graphene nanoribbons (A-GNRs).
///
/// Conventions (matching the paper and Nakada et al. [12]):
///  - transport direction x, width direction y, lengths in nm;
///  - N = GNR index = number of dimer lines across the width; dimer lines
///    run along x and are spaced sqrt(3)/2 * aCC apart;
///  - width W = (N-1) * sqrt(3)/2 * aCC;
///  - the translational period along x is 3*aCC and contains 2N atoms.
///
/// The ribbon is partitioned into "slices" normal to x for the recursive
/// Green's function: slice m groups the two atomic columns at
/// x = 1.5*aCC*m and x = 1.5*aCC*m + aCC. Slices alternate between
/// even-index and odd-index dimer lines, so for odd N their sizes
/// alternate between N+1 and N-1 (exactly N for even N).
namespace gnrfet::gnr {

struct Atom {
  double x_nm = 0.0;
  double y_nm = 0.0;
  int dimer_line = 0;  ///< 0 .. N-1 across the width
  int slice = 0;       ///< RGF slice index along transport
};

struct Bond {
  size_t a = 0;
  size_t b = 0;
  /// Hopping scale factor: 1.0 for bulk bonds, (1 + delta) for the
  /// edge dimer bonds (Son-Cohen-Louie edge relaxation).
  double scale = 1.0;
};

class Lattice {
 public:
  /// Build an A-GNR with index `n_index` spanning `num_slices` slices
  /// (channel length = num_slices * 1.5 * aCC, plus the trailing bond).
  /// `edge_delta` is the edge-bond relaxation factor delta.
  static Lattice armchair(int n_index, int num_slices, double edge_delta);

  /// Number of slices required to cover at least `length_nm` of channel.
  static int slices_for_length(double length_nm);

  /// Copy of this lattice with one atom removed (a lattice vacancy — the
  /// defect mechanism Sec. 4 of the paper defers to future work). Bonds to
  /// the vacancy disappear; slice membership and column positions are
  /// preserved, so the real-space transport path handles the defect
  /// directly. Throws if the index is invalid or the slice would empty.
  Lattice with_vacancy(size_t atom_index) const;

  /// Copy with edge roughness (Sec. 4 / ref. [17], Yoon & Guo): every atom
  /// on the outermost dimer lines is removed independently with the given
  /// probability. `seed` makes the disorder realization reproducible.
  /// Interior slices are never emptied (N >= 3 edge removal keeps them).
  Lattice with_edge_roughness(double removal_probability, unsigned seed) const;

  int n_index() const { return n_; }
  int num_slices() const { return num_slices_; }
  double edge_delta() const { return edge_delta_; }

  /// Physical ribbon width W = (N-1)*sqrt(3)/2*aCC [nm].
  double width_nm() const;

  /// Total extent along x [nm] (last atom minus first atom).
  double length_nm() const;

  const std::vector<Atom>& atoms() const { return atoms_; }
  const std::vector<Bond>& bonds() const { return bonds_; }

  /// Atom indices of each slice, ordered by (dimer_line, x).
  const std::vector<std::vector<size_t>>& slice_atoms() const { return slice_atoms_; }

  /// x coordinate of the geometric center of each atomic column; column c
  /// corresponds to mode-space chain site c (2 columns per slice).
  const std::vector<double>& column_x_nm() const { return column_x_; }

  /// y coordinate of dimer line j.
  double dimer_line_y_nm(int j) const;

 private:
  int n_ = 0;
  int num_slices_ = 0;
  double edge_delta_ = 0.0;
  std::vector<Atom> atoms_;
  std::vector<Bond> bonds_;
  std::vector<std::vector<size_t>> slice_atoms_;
  std::vector<double> column_x_;
};

}  // namespace gnrfet::gnr
