#pragma once

#include <vector>

#include "gnr/hamiltonian.hpp"

/// 1D band structure of infinite A-GNRs, used to validate the Hamiltonian,
/// pick mode-space subbands, and report band gaps per GNR index.
namespace gnrfet::gnr {

struct BandStructure {
  /// Wavevectors [1/nm] in [0, pi/period].
  std::vector<double> k;
  /// bands[ik] = all 2N eigenvalues (eV), ascending.
  std::vector<std::vector<double>> bands;

  /// Conduction-band minimum (smallest eigenvalue > mid) and valence-band
  /// maximum over the sampled k points; mid = 0 for the pz model.
  double conduction_minimum() const;
  double valence_maximum() const;
  double band_gap() const { return conduction_minimum() - valence_maximum(); }
};

/// Sample the ribbon band structure with `num_k` points.
BandStructure compute_bands(int n_index, const TightBindingParams& params, int num_k = 64);

/// Band gap (eV) of the N-index A-GNR under `params`.
double band_gap(int n_index, const TightBindingParams& params);

/// True if N belongs to the 3q+2 family (semi-metallic in the bare pz
/// model; small-gap with edge relaxation). The paper excludes this family.
bool is_small_gap_family(int n_index);

}  // namespace gnrfet::gnr
