#include "negf/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace gnrfet::negf {

namespace {

/// One active panel [a, b] with cached integrand values at the ends and
/// the midpoint. Vectors are moved down the refinement tree where
/// possible; only the midpoint is duplicated on a split.
struct Panel {
  double a = 0.0;
  double b = 0.0;
  int depth = 0;
  std::vector<double> fa, fm, fb;
};

/// A retired panel: its fine-rule (two-half-panel Simpson) contribution
/// and enough bookkeeping to reassemble edges and depth statistics.
struct Retired {
  double a = 0.0;
  double b = 0.0;
  int depth = 0;
  std::vector<double> contrib;
};

}  // namespace

AdaptiveResult adaptive_integrate(double lo_eV, double hi_eV, size_t ncomp,
                                  const std::vector<double>& seed_edges,
                                  const std::vector<ErrorGroup>& groups,
                                  const AdaptiveOptions& opts, const BatchEval& eval,
                                  const PanelSink& sink) {
  if (!(hi_eV > lo_eV)) throw std::invalid_argument("adaptive_integrate: empty window");
  if (ncomp == 0) throw std::invalid_argument("adaptive_integrate: ncomp must be > 0");
  for (const ErrorGroup& g : groups) {
    if (g.begin >= g.end || g.end > ncomp) {
      throw std::invalid_argument("adaptive_integrate: error group out of range");
    }
  }
  const double width = hi_eV - lo_eV;
  const double min_sep = std::max(opts.min_panel_eV, 1e-12 * std::max(1.0, std::abs(hi_eV)));

  // Initial edges: window ends plus deduplicated interior seeds.
  std::vector<double> edges;
  edges.reserve(seed_edges.size() + 2);
  edges.push_back(lo_eV);
  {
    std::vector<double> interior(seed_edges);
    std::sort(interior.begin(), interior.end());
    for (const double e : interior) {
      if (!(e > lo_eV) || !(e < hi_eV)) continue;
      if (e - edges.back() < min_sep || hi_eV - e < min_sep) continue;
      edges.push_back(e);
    }
  }
  edges.push_back(hi_eV);
  const size_t ne = edges.size();

  // Evaluate edges then panel midpoints in one deterministic batch.
  std::vector<double> batch;
  batch.reserve(2 * ne - 1);
  for (const double e : edges) batch.push_back(e);
  for (size_t i = 0; i + 1 < ne; ++i) batch.push_back(0.5 * (edges[i] + edges[i + 1]));

  AdaptiveResult out;
  out.integrals.assign(ncomp, 0.0);

  std::vector<std::vector<double>> values(batch.size());
  eval(batch, values);
  out.evaluations += batch.size();
  for (size_t k = 0; k < batch.size(); ++k) {
    GNRFET_REQUIRE("negf", "adaptive-eval-shape", values[k].size() == ncomp,
                   strings::format("integrand returned %zu components, expected %zu",
                                   values[k].size(), ncomp));
    out.points.push_back(batch[k]);
    out.first_component.push_back(values[k][0]);
  }

  std::vector<Panel> active(ne - 1);
  for (size_t i = 0; i + 1 < ne; ++i) {
    active[i].a = edges[i];
    active[i].b = edges[i + 1];
    active[i].fm = std::move(values[ne + i]);
    active[i].fb = values[i + 1];  // shared edge: copy
    active[i].fa = std::move(values[i]);
  }

  // Group references from the coarse-rule integrals of the initial
  // panels: the error budget is relative to these magnitudes for the
  // whole refinement, so the acceptance threshold itself is
  // refinement-order independent.
  std::vector<double> ref(groups.size(), 0.0);
  std::vector<double> s1(ncomp), s2(ncomp);
  for (const Panel& p : active) {
    const double h6 = (p.b - p.a) / 6.0;
    for (size_t g = 0; g < groups.size(); ++g) {
      for (size_t c = groups[g].begin; c < groups[g].end; ++c) {
        ref[g] += std::abs(h6 * (p.fa[c] + 4.0 * p.fm[c] + p.fb[c]));
      }
    }
  }

  std::vector<Retired> retired;
  retired.reserve(2 * active.size());
  while (!active.empty()) {
    // Quarter points of every active panel, evaluated as one batch.
    batch.clear();
    batch.reserve(2 * active.size());
    for (const Panel& p : active) {
      const double m = 0.5 * (p.a + p.b);
      batch.push_back(0.5 * (p.a + m));
      batch.push_back(0.5 * (m + p.b));
    }
    values.assign(batch.size(), {});
    eval(batch, values);
    out.evaluations += batch.size();
    for (size_t k = 0; k < batch.size(); ++k) {
      GNRFET_REQUIRE("negf", "adaptive-eval-shape", values[k].size() == ncomp,
                     strings::format("integrand returned %zu components, expected %zu",
                                     values[k].size(), ncomp));
      out.points.push_back(batch[k]);
      out.first_component.push_back(values[k][0]);
    }

    std::vector<Panel> next;
    for (size_t i = 0; i < active.size(); ++i) {
      Panel& p = active[i];
      std::vector<double>& fl = values[2 * i];
      std::vector<double>& fr = values[2 * i + 1];
      const double w = p.b - p.a;
      const double h6 = w / 6.0;
      const double h12 = w / 12.0;
      for (size_t c = 0; c < ncomp; ++c) {
        s1[c] = h6 * (p.fa[c] + 4.0 * p.fm[c] + p.fb[c]);
        s2[c] = h12 * (p.fa[c] + 4.0 * fl[c] + 2.0 * p.fm[c] + 4.0 * fr[c] + p.fb[c]);
      }
      bool accept = true;
      const double share = w / width;
      for (size_t g = 0; g < groups.size() && accept; ++g) {
        double err = 0.0;
        for (size_t c = groups[g].begin; c < groups[g].end; ++c) err += std::abs(s2[c] - s1[c]);
        accept = err <= share * (opts.rel_tol * ref[g] + groups[g].abs_floor);
      }
      if (accept || p.depth >= opts.max_depth || w < 2.0 * opts.min_panel_eV) {
        Retired r;
        r.a = p.a;
        r.b = p.b;
        r.depth = p.depth;
        r.contrib.assign(s2.begin(), s2.end());
        retired.push_back(std::move(r));
        continue;
      }
      const double m = 0.5 * (p.a + p.b);
      Panel left, right;
      left.a = p.a;
      left.b = m;
      left.depth = p.depth + 1;
      left.fa = std::move(p.fa);
      left.fm = std::move(fl);
      left.fb = p.fm;  // midpoint shared by both children: copy
      right.a = m;
      right.b = p.b;
      right.depth = p.depth + 1;
      right.fa = std::move(p.fm);
      right.fm = std::move(fr);
      right.fb = std::move(p.fb);
      next.push_back(std::move(left));
      next.push_back(std::move(right));
    }
    active = std::move(next);
  }

  // Ascending-energy reduction of the retired contributions: panel order
  // (not retirement round) defines the summation sequence.
  std::sort(retired.begin(), retired.end(),
            [](const Retired& x, const Retired& y) { return x.a < y.a; });
  out.edges.reserve(retired.size() + 1);
  for (const Retired& r : retired) {
    out.edges.push_back(r.a);
    if (sink) sink(r.a, r.b, r.contrib);
    for (size_t c = 0; c < ncomp; ++c) out.integrals[c] += r.contrib[c];
    out.max_depth_reached = std::max(out.max_depth_reached, r.depth);
    if (out.depth_counts.size() <= static_cast<size_t>(r.depth)) {
      out.depth_counts.resize(static_cast<size_t>(r.depth) + 1, 0);
    }
    ++out.depth_counts[static_cast<size_t>(r.depth)];
  }
  out.edges.push_back(hi_eV);

  // Points arrive batch by batch; present them in energy order.
  std::vector<size_t> order(out.points.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return out.points[x] < out.points[y]; });
  std::vector<double> pts(out.points.size()), fc(out.points.size());
  for (size_t k = 0; k < order.size(); ++k) {
    pts[k] = out.points[order[k]];
    fc[k] = out.first_component[order[k]];
  }
  out.points = std::move(pts);
  out.first_component = std::move(fc);

  GNRFET_ENSURE("negf", "adaptive-finite-integrals", contracts::all_finite(out.integrals),
                "adaptive integration produced NaN/inf integrals");
  return out;
}

}  // namespace gnrfet::negf
