#pragma once

#include <vector>

#include "gnr/hamiltonian.hpp"
#include "linalg/dense.hpp"
#include "linalg/lu.hpp"

/// Recursive Green's function (RGF) solver for block-tridiagonal
/// Hamiltonians with self-energies on the first and last block.
///
/// For each energy it returns the quantities the transport layer needs:
/// transmission T(E) and the orbital-resolved contact spectral functions
/// A_L,ii and A_R,ii (diagonals), from which bipolar charge is assembled.
namespace gnrfet::negf {

struct RgfResult {
  double transmission = 0.0;
  /// Diagonal of the source-injected spectral function per orbital,
  /// concatenated slice by slice.
  std::vector<double> spectral_left;
  /// Diagonal of the drain-injected spectral function per orbital.
  std::vector<double> spectral_right;
};

/// Caller-owned scratch for rgf_solve: sweep buffers, block scratch, and a
/// reusable LU factorization (à la linalg::PcgWorkspace). One workspace per
/// thread; reuse across the energy loop makes the per-energy block solve
/// allocation-free once every buffer has warmed to the device block sizes.
struct RgfWorkspace {
  std::vector<linalg::CMatrix> gl;     ///< left-connected Green's functions
  std::vector<linalg::CMatrix> gdiag;  ///< full-G diagonal blocks
  std::vector<linalg::CMatrix> gcol;   ///< last-column blocks G_{i,last}
  linalg::CMatrix a;                   ///< (E + i eta) - H block under solve
  linalg::CMatrix eye;                 ///< identity right-hand side
  linalg::CMatrix v_dn;                ///< adjoint coupling scratch
  linalg::CMatrix t1, t2;              ///< multiply-chain scratch
  linalg::CMatrix gamma_l, gamma_r;    ///< contact broadenings
  linalg::LU lu;                       ///< refactored per block
};

/// Solve at complex energy E + i*eta. `sigma_left` acts on block 0,
/// `sigma_right` on the last block. Throws on shape mismatches.
RgfResult rgf_solve(const gnr::BlockTridiagonal& h, double energy_eV, double eta_eV,
                    const linalg::CMatrix& sigma_left, const linalg::CMatrix& sigma_right);

/// Workspace variant: identical arithmetic (bit-for-bit equal results),
/// zero heap allocation once `ws` and `out` have warmed to the block
/// layout of `h`.
void rgf_solve(const gnr::BlockTridiagonal& h, double energy_eV, double eta_eV,
               const linalg::CMatrix& sigma_left, const linalg::CMatrix& sigma_right,
               RgfWorkspace& ws, RgfResult& out);

/// Caller-owned scratch for rgf_solve_batch: one RgfWorkspace per energy
/// lane plus the buffers the batch shares across lanes (identity RHS,
/// coupling adjoints, contact broadenings — all energy-independent).
struct RgfBatchWorkspace {
  std::vector<RgfWorkspace> lane;    ///< per-lane sweep state and LU
  linalg::CMatrix eye;               ///< shared identity RHS per block
  linalg::CMatrix v_dn;              ///< shared coupling adjoint per block
  linalg::CMatrix gamma_l, gamma_r;  ///< contact broadenings (per batch)
  linalg::CMatrix adj_scratch;       ///< adjoint scratch for broadening
};

/// Small-B energy batch over the per-block LU solves: solve `h` at
/// `energies_eV[0..count)` in one call, blocks outer and lanes inner, with
/// the energy-independent work — Hermiticity check, per-block coupling
/// adjoint and identity RHS, contact broadenings — hoisted out of the lane
/// loop. Each lane's outputs are bit-identical to rgf_solve at that
/// energy; `out` is resized to `count`.
void rgf_solve_batch(const gnr::BlockTridiagonal& h, const double* energies_eV, size_t count,
                     double eta_eV, const linalg::CMatrix& sigma_left,
                     const linalg::CMatrix& sigma_right, RgfBatchWorkspace& ws,
                     std::vector<RgfResult>& out);

/// Reference implementation via one dense inversion of the full matrix;
/// O(dim^3) per energy, used only by tests to validate rgf_solve.
RgfResult dense_reference_solve(const gnr::BlockTridiagonal& h, double energy_eV, double eta_eV,
                                const linalg::CMatrix& sigma_left,
                                const linalg::CMatrix& sigma_right);

}  // namespace gnrfet::negf
