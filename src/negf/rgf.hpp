#pragma once

#include <vector>

#include "gnr/hamiltonian.hpp"
#include "linalg/dense.hpp"
#include "linalg/lu.hpp"

/// Recursive Green's function (RGF) solver for block-tridiagonal
/// Hamiltonians with self-energies on the first and last block.
///
/// For each energy it returns the quantities the transport layer needs:
/// transmission T(E) and the orbital-resolved contact spectral functions
/// A_L,ii and A_R,ii (diagonals), from which bipolar charge is assembled.
namespace gnrfet::negf {

struct RgfResult {
  double transmission = 0.0;
  /// Diagonal of the source-injected spectral function per orbital,
  /// concatenated slice by slice.
  std::vector<double> spectral_left;
  /// Diagonal of the drain-injected spectral function per orbital.
  std::vector<double> spectral_right;
};

/// Caller-owned scratch for rgf_solve: sweep buffers, block scratch, and a
/// reusable LU factorization (à la linalg::PcgWorkspace). One workspace per
/// thread; reuse across the energy loop makes the per-energy block solve
/// allocation-free once every buffer has warmed to the device block sizes.
struct RgfWorkspace {
  std::vector<linalg::CMatrix> gl;     ///< left-connected Green's functions
  std::vector<linalg::CMatrix> gdiag;  ///< full-G diagonal blocks
  std::vector<linalg::CMatrix> gcol;   ///< last-column blocks G_{i,last}
  linalg::CMatrix a;                   ///< (E + i eta) - H block under solve
  linalg::CMatrix eye;                 ///< identity right-hand side
  linalg::CMatrix v_dn;                ///< adjoint coupling scratch
  linalg::CMatrix t1, t2;              ///< multiply-chain scratch
  linalg::CMatrix gamma_l, gamma_r;    ///< contact broadenings
  linalg::LU lu;                       ///< refactored per block
};

/// Solve at complex energy E + i*eta. `sigma_left` acts on block 0,
/// `sigma_right` on the last block. Throws on shape mismatches.
RgfResult rgf_solve(const gnr::BlockTridiagonal& h, double energy_eV, double eta_eV,
                    const linalg::CMatrix& sigma_left, const linalg::CMatrix& sigma_right);

/// Workspace variant: identical arithmetic (bit-for-bit equal results),
/// zero heap allocation once `ws` and `out` have warmed to the block
/// layout of `h`.
void rgf_solve(const gnr::BlockTridiagonal& h, double energy_eV, double eta_eV,
               const linalg::CMatrix& sigma_left, const linalg::CMatrix& sigma_right,
               RgfWorkspace& ws, RgfResult& out);

/// Reference implementation via one dense inversion of the full matrix;
/// O(dim^3) per energy, used only by tests to validate rgf_solve.
RgfResult dense_reference_solve(const gnr::BlockTridiagonal& h, double energy_eV, double eta_eV,
                                const linalg::CMatrix& sigma_left,
                                const linalg::CMatrix& sigma_right);

}  // namespace gnrfet::negf
