#pragma once

#include <vector>

#include "gnr/hamiltonian.hpp"
#include "linalg/dense.hpp"

/// Recursive Green's function (RGF) solver for block-tridiagonal
/// Hamiltonians with self-energies on the first and last block.
///
/// For each energy it returns the quantities the transport layer needs:
/// transmission T(E) and the orbital-resolved contact spectral functions
/// A_L,ii and A_R,ii (diagonals), from which bipolar charge is assembled.
namespace gnrfet::negf {

struct RgfResult {
  double transmission = 0.0;
  /// Diagonal of the source-injected spectral function per orbital,
  /// concatenated slice by slice.
  std::vector<double> spectral_left;
  /// Diagonal of the drain-injected spectral function per orbital.
  std::vector<double> spectral_right;
};

/// Solve at complex energy E + i*eta. `sigma_left` acts on block 0,
/// `sigma_right` on the last block. Throws on shape mismatches.
RgfResult rgf_solve(const gnr::BlockTridiagonal& h, double energy_eV, double eta_eV,
                    const linalg::CMatrix& sigma_left, const linalg::CMatrix& sigma_right);

/// Reference implementation via one dense inversion of the full matrix;
/// O(dim^3) per energy, used only by tests to validate rgf_solve.
RgfResult dense_reference_solve(const gnr::BlockTridiagonal& h, double energy_eV, double eta_eV,
                                const linalg::CMatrix& sigma_left,
                                const linalg::CMatrix& sigma_right);

}  // namespace gnrfet::negf
