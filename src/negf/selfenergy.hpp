#pragma once

#include "linalg/dense.hpp"

/// Contact self-energies for the NEGF solver.
///
/// The paper's devices are Schottky-barrier FETs: the metal source/drain
/// enter (i) electrostatically, by pinning the channel mid-gap to the metal
/// Fermi level at the contact plane (Phi_Bn = Phi_Bp = Eg/2), and (ii)
/// quantum-mechanically through a broadening self-energy on the first/last
/// device slice. We use the wide-band limit for the metal (energy-
/// independent Gamma); the Sancho-Rubio surface Green's function of the
/// semi-infinite ideal ribbon is provided for validation of the transport
/// kernels (transmission staircase of the perfect ribbon).
namespace gnrfet::negf {

/// Wide-band-limit metal self-energy: Sigma = -i * gamma/2 * I (dim x dim).
linalg::CMatrix wide_band_self_energy(size_t dim, double gamma_eV);

/// Sancho-Rubio decimation for the surface Green's function of a
/// semi-infinite periodic lead with onsite block h00 and inter-cell
/// coupling h01 (cell i -> cell i+1 toward the device).
/// For a right lead (interior toward +x) pass h01 and use
/// Sigma_R = h01 * g_s * h01^dagger; for a left lead (interior toward -x)
/// pass h01^dagger and use Sigma_L = h01^dagger * g_s * h01.
linalg::CMatrix sancho_rubio_surface_gf(linalg::cplx energy, const linalg::CMatrix& h00,
                                        const linalg::CMatrix& h01, double tol = 1e-12,
                                        int max_iter = 200);

/// Broadening matrix Gamma = i (Sigma - Sigma^dagger).
linalg::CMatrix broadening(const linalg::CMatrix& sigma);

}  // namespace gnrfet::negf
