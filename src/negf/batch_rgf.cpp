#include "negf/batch_rgf.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <complex>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/constants.hpp"
#include "common/contracts.hpp"
#include "common/env.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"

namespace gnrfet::negf {

namespace {

using cplx = std::complex<double>;

constexpr size_t kW = kRgfBatchLanes;

/// Input domain inside which the branchless Smith reciprocal below provably
/// follows the same arithmetic path as libgcc's __divdc3 (no operand
/// rescaling, no subnormal-ratio recovery branch): both component
/// magnitudes well clear of overflow, the larger one well clear of the
/// subnormal range, and the magnitude ratio far from producing a subnormal
/// quotient. Everything the physical kernel feeds in — real part O(eV),
/// imaginary part >= eta > 0 — sits deep inside these bounds; lanes outside
/// them (exactly zero real part, denormals from adversarial inputs) are
/// recomputed with std::complex division, which is bit-correct by
/// definition.
constexpr double kFastMagLo = 0x1p-500;
constexpr double kFastMagHi = 0x1p+1000;
constexpr double kFastRatioScale = 0x1p+1000;

inline bool lane_in_fast_domain(double c, double d) {
  const double ac = std::fabs(c);
  const double ad = std::fabs(d);
  const double mx = ac > ad ? ac : ad;
  const double mn = ac > ad ? ad : ac;
  // mn * 2^1000 saturating to inf means mn is huge, where the ratio test
  // is trivially satisfied; NaN operands fail the first comparison.
  return mx <= kFastMagHi && mx >= kFastMagLo && mn * kFastRatioScale >= mx;
}

/// x = 1 / (c + i d) through std::complex — one __divdc3 call, the exact
/// arithmetic of the scalar kernel's `1.0 / a`.
inline void reciprocal_lane_std(double c, double d, double& xr, double& xi) {
  const cplx g = 1.0 / cplx(c, d);
  xr = g.real();
  xi = g.imag();
}

/// Branchless Smith reciprocal: the formulas __divdc3 reduces to for
/// numerator 1 + 0i when no scaling branch fires. Selects compile to
/// vector blends, so the 8-lane loop below auto-vectorizes.
inline void reciprocal_lane_fast(double c, double d, double& xr, double& xi) {
  const double ac = std::fabs(c);
  const double ad = std::fabs(d);
  const bool swap_cd = ac < ad;
  const double num = swap_cd ? c : d;
  const double den0 = swap_cd ? d : c;
  const double r = num / den0;
  const double den = swap_cd ? (c * r + d) : (c + d * r);
  const double xnum = swap_cd ? r : 1.0;
  const double ynum = swap_cd ? 1.0 : r;
  xr = xnum / den;
  xi = -(ynum / den);
}

/// One-time self-check: the fast reciprocal must match 1.0/std::complex
/// bit-for-bit over a deterministic probe grid spanning the guarded fast
/// domain — both Smith branches, both signs, magnitudes from 2^-499 to
/// near 2^1000, and non-trivial mantissas. A single mismatch (a future
/// toolchain changing its __divdc3 lowering) disables the fast path for
/// the whole process; the kernel then uses per-lane std::complex division
/// and stays bit-correct, just slower.
bool fast_reciprocal_matches_std() {
  static constexpr double kMags[] = {0x1p-499, 1e-130, 1e-30,  1e-9,  1e-6,
                                     1e-3,     0.025,  0.125,  1.0,   2.718281828459045,
                                     3.0,      97.0,   1e6,    1e30,  1e130,
                                     0x1.3p+999};
  static constexpr double kScales[] = {1.0, 1.2345678901234567, 0.9182736455463728};
  for (const double m1 : kMags) {
    for (int s1 = -1; s1 <= 1; s1 += 2) {
      for (const double m2 : kMags) {
        for (int s2 = -1; s2 <= 1; s2 += 2) {
          for (const double sc : kScales) {
            const double c = s1 * m1 * sc;
            const double d = s2 * m2 * (2.0 - sc);
            if (!lane_in_fast_domain(c, d)) continue;
            double xr = 0.0, xi = 0.0;
            reciprocal_lane_fast(c, d, xr, xi);
            const cplx ref = 1.0 / cplx(c, d);
            if (std::bit_cast<uint64_t>(xr) != std::bit_cast<uint64_t>(ref.real()) ||
                std::bit_cast<uint64_t>(xi) != std::bit_cast<uint64_t>(ref.imag())) {
              return false;
            }
          }
        }
      }
    }
  }
  return true;
}

bool fast_reciprocal_ok() {
  static const bool ok = fast_reciprocal_matches_std();
  return ok;
}

/// 8-lane reciprocal: x[l] = 1 / (c[l] + i d[l]). The fast pass is
/// branch-free and vectorizes; a second pass recomputes any lane whose
/// input left the verified fast domain (never taken for physical inputs).
inline void reciprocal_lanes(bool fast, const double* cr, const double* ci, double* xr,
                             double* xi) {
  if (fast) {
    for (size_t l = 0; l < kW; ++l) reciprocal_lane_fast(cr[l], ci[l], xr[l], xi[l]);
    for (size_t l = 0; l < kW; ++l) {
      if (!lane_in_fast_domain(cr[l], ci[l])) reciprocal_lane_std(cr[l], ci[l], xr[l], xi[l]);
    }
  } else {
    for (size_t l = 0; l < kW; ++l) reciprocal_lane_std(cr[l], ci[l], xr[l], xi[l]);
  }
}

/// Solve one padded group of kW lanes; lanes [0, w) are live and scatter
/// into `out` at [lane0, lane0 + w) with spectral stride `stride`. Every
/// statement mirrors one statement of scalar_rgf_solve with std::complex
/// operations expanded to the component arithmetic the compiler emits for
/// them, in the same order — see that kernel for the physics commentary.
void solve_group(const ScalarChain& chain, const double* e, size_t w, size_t lane0,
                 size_t stride, double eta_eV, bool fast, ScalarRgfBatchWorkspace& ws,
                 ScalarRgfBatchResult& out) {
  const size_t n = chain.onsite.size();
  const double sig_l_im = -0.5 * chain.gamma_left;
  const double sig_r_im = -0.5 * chain.gamma_right;
  const size_t last = (n - 1) * kW;

  double* glr = ws.gl_re.data();
  double* gli = ws.gl_im.data();
  double ar[kW];
  double ai[kW];

  // Forward: left-connected g. gl[0] = 1 / (e - onsite[0] - sig_l); the
  // self-energies are purely imaginary, so only the imaginary base moves.
  {
    const double base_im = eta_eV - sig_l_im;
    for (size_t l = 0; l < kW; ++l) ar[l] = e[l] - chain.onsite[0];
    for (size_t l = 0; l < kW; ++l) ai[l] = base_im;
    reciprocal_lanes(fast, ar, ai, glr, gli);
  }
  for (size_t c = 1; c < n; ++c) {
    const double base_im = c == n - 1 ? eta_eV - sig_r_im : eta_eV;
    const double v = chain.hopping[c - 1];
    const double vv = v * v;
    const double* pr = glr + (c - 1) * kW;
    const double* pi = gli + (c - 1) * kW;
    for (size_t l = 0; l < kW; ++l) ar[l] = (e[l] - chain.onsite[c]) - vv * pr[l];
    for (size_t l = 0; l < kW; ++l) ai[l] = base_im - vv * pi[l];
    reciprocal_lanes(fast, ar, ai, glr + c * kW, gli + c * kW);
  }

  // Backward: full diagonal plus last-column elements.
  double* gdr = ws.gd_re.data();
  double* gdi = ws.gd_im.data();
  double* gcr = ws.gcol_re.data();
  double* gci = ws.gcol_im.data();
  for (size_t l = 0; l < kW; ++l) {
    gdr[last + l] = glr[last + l];
    gdi[last + l] = gli[last + l];
    gcr[last + l] = glr[last + l];
    gci[last + l] = gli[last + l];
  }
  double t1r[kW];
  double t1i[kW];
  for (size_t c = n - 1; c-- > 0;) {
    const double v = chain.hopping[c];
    const double* lr = glr + c * kW;
    const double* li = gli + c * kW;
    const double* dr = gdr + (c + 1) * kW;
    const double* di = gdi + (c + 1) * kW;
    const double* qr = gcr + (c + 1) * kW;
    const double* qi = gci + (c + 1) * kW;
    for (size_t l = 0; l < kW; ++l) {
      // gd[c] = gl[c] + gl[c]*v * gd[c+1] * v * gl[c], left-associated:
      // t1 = gl[c]*v (componentwise), t2 = t1 * gd[c+1], then (t2*v) * gl[c].
      t1r[l] = lr[l] * v;
      t1i[l] = li[l] * v;
      const double t2r = t1r[l] * dr[l] - t1i[l] * di[l];
      const double t2i = t1r[l] * di[l] + t1i[l] * dr[l];
      const double sr = t2r * v;
      const double si = t2i * v;
      gdr[c * kW + l] = lr[l] + (sr * lr[l] - si * li[l]);
      gdi[c * kW + l] = li[l] + (sr * li[l] + si * lr[l]);
    }
    for (size_t l = 0; l < kW; ++l) {
      // gcol[c] = (gl[c]*v) * gcol[c+1]; the scalar kernel recomputes
      // gl[c]*v here with identical bits, so t1 is shared.
      gcr[c * kW + l] = t1r[l] * qr[l] - t1i[l] * qi[l];
      gci[c * kW + l] = t1r[l] * qi[l] + t1i[l] * qr[l];
    }
  }

  const double gg = chain.gamma_left * chain.gamma_right;
  for (size_t l = 0; l < w; ++l) {
    const double t = gg * (gcr[l] * gcr[l] + gci[l] * gci[l]);
    out.transmission[lane0 + l] = t;
    out.transmission_reverse[lane0 + l] = t;
    GNRFET_ENSURE("negf", "transmission-positive",
                  std::isfinite(t) && t >= -1e-9 && t <= 1.0 + 1e-6,
                  strings::format("scalar T(E=%g) = %g outside [0, 1]", e[l], t));
  }
  for (size_t c = 0; c < n; ++c) {
    const double* pr = gcr + c * kW;
    const double* pi = gci + c * kW;
    const double* di = gdi + c * kW;
    double* sl = out.spectral_left.data() + c * stride + lane0;
    double* sr = out.spectral_right.data() + c * stride + lane0;
    for (size_t l = 0; l < w; ++l) {
      const double a_tot = -2.0 * di[l];
      const double a_r = chain.gamma_right * (pr[l] * pr[l] + pi[l] * pi[l]);
      GNRFET_ENSURE("negf", "spectral-sum-rule",
                    std::isfinite(a_tot) &&
                        a_tot - a_r >= -1e-9 * (1.0 + std::abs(a_tot) + a_r),
                    strings::format("site %zu: A_tot = %g, A_R = %g at E = %g", c, a_tot, a_r,
                                    e[l]));
      sr[l] = a_r;
      sl[l] = std::max(0.0, a_tot - a_r);
    }
  }

#if GNRFET_CHECKS_ENABLED
  // Independent drain-side solve, batched the same way: right-connected
  // sweep, then the mirrored column G_{n-1,0} lane by lane.
  {
    double* grr = ws.gr_re.data();
    double* gri = ws.gr_im.data();
    {
      const double base_im = eta_eV - sig_r_im;
      for (size_t l = 0; l < kW; ++l) ar[l] = e[l] - chain.onsite[n - 1];
      for (size_t l = 0; l < kW; ++l) ai[l] = base_im;
      reciprocal_lanes(fast, ar, ai, grr + last, gri + last);
    }
    for (size_t c = n - 1; c-- > 0;) {
      const double base_im = c == 0 ? eta_eV - sig_l_im : eta_eV;
      const double v = chain.hopping[c];
      const double vv = v * v;
      const double* pr = grr + (c + 1) * kW;
      const double* pi = gri + (c + 1) * kW;
      for (size_t l = 0; l < kW; ++l) ar[l] = (e[l] - chain.onsite[c]) - vv * pr[l];
      for (size_t l = 0; l < kW; ++l) ai[l] = base_im - vv * pi[l];
      reciprocal_lanes(fast, ar, ai, grr + c * kW, gri + c * kW);
    }
    double growr[kW];
    double growi[kW];
    for (size_t l = 0; l < kW; ++l) {
      growr[l] = grr[l];
      growi[l] = gri[l];
    }
    for (size_t c = 1; c < n; ++c) {
      const double hh = chain.hopping[c - 1];
      const double* pr = grr + c * kW;
      const double* pi = gri + c * kW;
      for (size_t l = 0; l < kW; ++l) {
        // grow = (gr[c] * hopping[c-1]) * grow
        const double tr = pr[l] * hh;
        const double ti = pi[l] * hh;
        const double nr = tr * growr[l] - ti * growi[l];
        const double ni = tr * growi[l] + ti * growr[l];
        growr[l] = nr;
        growi[l] = ni;
      }
    }
    for (size_t l = 0; l < w; ++l) {
      const double trev = gg * (growr[l] * growr[l] + growi[l] * growi[l]);
      out.transmission_reverse[lane0 + l] = trev;
      const double t = out.transmission[lane0 + l];
      const double mismatch = std::abs(t - trev);
      GNRFET_ENSURE("negf", "reciprocal-transmission",
                    mismatch <= 1e-6 * (t + trev + 1e-9),
                    strings::format("T_forward = %.12g vs T_reverse = %.12g at E = %g", t, trev,
                                    e[l]));
    }
  }
#endif
}

}  // namespace

bool rgf_batch_enabled() {
  const std::string s = common::env_or("GNRFET_RGF_BATCH", "on");
  if (s == "on") return true;
  if (s == "off") return false;
  throw std::invalid_argument("GNRFET_RGF_BATCH must be 'on' or 'off', got '" + s + "'");
}

bool rgf_batch_uses_fast_reciprocal() { return fast_reciprocal_ok(); }

void scalar_rgf_solve_batch(const ScalarChain& chain, const double* energies_eV, size_t count,
                            double eta_eV, ScalarRgfBatchWorkspace& ws,
                            ScalarRgfBatchResult& out) {
  const size_t n = chain.onsite.size();
  if (n < 2) throw std::invalid_argument("scalar_rgf: need >= 2 sites");
  if (chain.hopping.size() != n - 1) {
    throw std::invalid_argument("scalar_rgf: hopping size mismatch");
  }
  if (count == 0) throw std::invalid_argument("scalar_rgf_batch: need >= 1 energy");
  GNRFET_REQUIRE("negf", "finite-chain",
                 contracts::all_finite(chain.onsite) && contracts::all_finite(chain.hopping) &&
                     std::isfinite(chain.gamma_left) && std::isfinite(chain.gamma_right),
                 "scalar chain contains NaN/inf onsite or hopping energies");
  GNRFET_REQUIRE("negf", "positive-broadening", eta_eV > 0.0 && std::isfinite(eta_eV),
                 strings::format("eta_eV = %g must be finite and > 0", eta_eV));

  ws.gl_re.resize(n * kW);
  ws.gl_im.resize(n * kW);
  ws.gd_re.resize(n * kW);
  ws.gd_im.resize(n * kW);
  ws.gcol_re.resize(n * kW);
  ws.gcol_im.resize(n * kW);
#if GNRFET_CHECKS_ENABLED
  ws.gr_re.resize(n * kW);
  ws.gr_im.resize(n * kW);
#endif
  out.transmission.assign(count, 0.0);
  out.transmission_reverse.assign(count, 0.0);
  out.spectral_left.resize(n * count);
  out.spectral_right.resize(n * count);

  metrics::add(metrics::Counter::kRgfBatchSolves);
  metrics::observe(metrics::Histogram::kRgfBatchWidth, static_cast<double>(count));

  const bool fast = fast_reciprocal_ok();
  double e_pad[kW];
  for (size_t lane0 = 0; lane0 < count; lane0 += kW) {
    const size_t w = std::min(kW, count - lane0);
    for (size_t l = 0; l < w; ++l) e_pad[l] = energies_eV[lane0 + l];
    for (size_t l = w; l < kW; ++l) e_pad[l] = e_pad[0];
    solve_group(chain, e_pad, w, lane0, count, eta_eV, fast, ws, out);
  }
}

void fermi_factors(const double* energies_eV, size_t count, double mu_eV, double kT_eV,
                   double* out) {
  for (size_t k = 0; k < count; ++k) {
    out[k] = constants::fermi(energies_eV[k] - mu_eV, kT_eV);
  }
}

}  // namespace gnrfet::negf
