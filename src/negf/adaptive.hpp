#pragma once

#include <cstdint>
#include <functional>
#include <vector>

/// Deterministic adaptive Simpson quadrature over a vector-valued
/// integrand, used by the transport layer to concentrate RGF solves where
/// the combined current/charge integrand actually varies (subband edges,
/// the Fermi window) instead of stepping uniformly through the whole
/// charge window.
///
/// Determinism contract: refinement decisions depend only on integrand
/// values, panels are processed in fixed (ascending-energy) round order,
/// and retired contributions are summed in ascending energy order. The
/// batch evaluator receives value-determined energy lists and writes each
/// result into its own slot, so the caller may parallelize a batch freely
/// (e.g. par::parallel_for_chunks) without changing any bit of the result
/// for any thread count.
namespace gnrfet::negf {

/// Component half-open range [begin, end) sharing one error budget.
/// Components outside every group (e.g. pure diagnostics) never influence
/// refinement.
struct ErrorGroup {
  size_t begin = 0;
  size_t end = 0;
  /// Absolute error floor (integral units): a panel whose group error is
  /// below `abs_floor * panel_width / total_width` is accepted even when
  /// the relative reference is zero (identically-zero integrands at
  /// equilibrium would otherwise refine to max depth chasing roundoff).
  double abs_floor = 1e-12;
};

struct AdaptiveOptions {
  /// Per-group relative tolerance on the total integral (error budget is
  /// distributed over panels proportionally to width).
  double rel_tol = 1e-4;
  /// Maximum halvings of an initial panel; panels at this depth retire
  /// regardless of their error estimate.
  int max_depth = 14;
  /// Panels narrower than twice this never split.
  double min_panel_eV = 1e-6;
};

struct AdaptiveResult {
  /// Integral per component, summed over retired panels in ascending
  /// energy order.
  std::vector<double> integrals;
  /// Retired panel boundaries, ascending (first == lo, last == hi); feed
  /// back as `seed_edges` to warm-start the next solve of a nearby
  /// integrand (e.g. the next Gummel iteration at the same bias).
  std::vector<double> edges;
  /// Every evaluated energy, ascending, and the component-0 value at it
  /// (the transport layer stores degeneracy-weighted transmission there
  /// as a sampling diagnostic).
  std::vector<double> points;
  std::vector<double> first_component;
  size_t evaluations = 0;
  int max_depth_reached = 0;
  /// Retired-panel count per depth (index = depth, 0 = never split).
  std::vector<uint32_t> depth_counts;
};

/// Fill `values[k]` (resized to `ncomp` by the callee) with the integrand
/// components at `energies[k]`. `values` arrives sized to the batch.
using BatchEval =
    std::function<void(const std::vector<double>& energies, std::vector<std::vector<double>>& values)>;

/// Per-retired-panel consumer: called once per panel in ascending energy
/// order after refinement finishes, with the panel bounds and its
/// fine-rule contribution per component. Lets callers post-process
/// integrals whose definition depends on the panel's position — e.g. the
/// bipolar electron/hole split, which assigns a panel's smooth spectral
/// charge to electrons or holes depending on which side of the local
/// mid-gap it lies — without feeding a discontinuous component into the
/// smooth-integrand refinement machinery.
using PanelSink = std::function<void(double a_eV, double b_eV, const std::vector<double>& contrib)>;

/// Integrate `ncomp` components over [lo_eV, hi_eV]. `seed_edges` are
/// extra initial panel boundaries (physics breakpoints, warm-start edges);
/// values outside (lo, hi) are discarded, near-duplicates merged.
AdaptiveResult adaptive_integrate(double lo_eV, double hi_eV, size_t ncomp,
                                  const std::vector<double>& seed_edges,
                                  const std::vector<ErrorGroup>& groups,
                                  const AdaptiveOptions& opts, const BatchEval& eval,
                                  const PanelSink& sink = {});

}  // namespace gnrfet::negf
