#pragma once

#include <limits>
#include <vector>

#include "gnr/lattice.hpp"
#include "gnr/modespace.hpp"
#include "negf/energygrid.hpp"

/// Ballistic transport drivers: integrate the RGF spectral quantities over
/// energy to produce terminal current and the spatially resolved net mobile
/// charge that feeds back into the Poisson equation.
///
/// Bipolar convention: the pz model is particle-hole symmetric, so the
/// local charge-neutrality level equals the local mid-gap energy (the
/// electrostatic potential energy U). States above it count as electrons
/// weighted by f, states below as holes weighted by (1 - f); both injected
/// from the two contacts with their own Fermi levels. Spin degeneracy 2 is
/// included.
namespace gnrfet::negf {

/// Energy-integration strategy, selected by GNRFET_NEGF_GRID.
enum class NegfGridKind {
  kUniform,   ///< fixed-step trapezoid grid (pre-adaptive behavior, bit-identical)
  kAdaptive,  ///< deterministic adaptive Simpson refinement (default)
};

/// Resolve GNRFET_NEGF_GRID ("uniform" | "adaptive"; default "adaptive").
/// Throws std::invalid_argument on any other value.
NegfGridKind negf_grid_from_env();

/// Common transport settings.
struct TransportOptions {
  double gamma_contact_eV = 1.0;  ///< wide-band metal broadening
  double mu_source_eV = 0.0;
  double mu_drain_eV = 0.0;
  double kT_eV = 0.02585;
  double eta_eV = 1e-3;          ///< Green's-function broadening
  double energy_step_eV = 2e-3;  ///< charge/current grid spacing
  /// Explicit integration window override: when both are finite they
  /// replace the automatic charge_window(). Modes (and uniform-grid
  /// energies) outside the override are simply not solved — used by tests
  /// to exercise the window-skip paths, and by callers that already know
  /// the support of their integrand.
  double window_lo_eV = std::numeric_limits<double>::quiet_NaN();
  double window_hi_eV = std::numeric_limits<double>::quiet_NaN();
  /// Adaptive-grid controls (ignored in uniform mode). Coarse initial
  /// panel width; 0 means max(80 meV, 8 * energy_step_eV).
  double adaptive_coarse_step_eV = 0.0;
  /// Relative tolerance per error group (current, spectral charge) on the
  /// adaptively integrated totals.
  double adaptive_rel_tol = 1e-4;
};

/// Reusable state for repeated transport solves: the converged adaptive
/// panel edges of each mode warm-start the next solve, so later solves
/// skip re-discovering the refinement structure. Shared across the Gummel
/// iterations of one bias point, and — when the caller chains it through
/// SelfConsistentSolver::solve along a warm-start chain — across
/// neighbouring bias points too (tablegen's column walks). reset() when
/// jumping to an unrelated operating point. The
/// uniform path ignores it. Note the Simpson refinement identity: total
/// evaluations are 4 * retired_panels + 1 whatever the starting grid, so
/// warm-starting trades refinement rounds (latency, batch sizes) for none
/// of the evaluation count — its value is keeping the panel structure
/// stable across Gummel iterations, not fewer RGF solves. Warm-starting
/// changes which panels the next solve begins from — results stay within
/// the adaptive tolerance but are not bit-identical to a cold solve
/// (determinism across thread counts is unaffected).
struct TransportContext {
  std::vector<std::vector<double>> mode_edges;  ///< per-mode panel edges
  void reset() { mode_edges.clear(); }
};

/// Solution of one bias point.
struct TransportSolution {
  double current_A = 0.0;
  /// Source/drain continuity witness: the same Landauer integral assembled
  /// from the independently computed drain-side transmissions (mode-space
  /// path only; aliases current_A in the real-space path and when contract
  /// checks are compiled out). The device layer contracts
  /// |current_A - current_drain_A| to be below tolerance in the ballistic
  /// limit.
  double current_drain_A = 0.0;
  /// Electron and hole populations (both >= 0), spin included, resolved on
  /// (column, dimer line); net charge is -e*(electrons - holes).
  /// Dimensions: [num_columns][N].
  std::vector<std::vector<double>> electrons;
  std::vector<std::vector<double>> holes;
  /// Total net electrons in the device: sum(electrons - holes).
  double total_net_electrons = 0.0;
  /// Transmission sampled on the integration grid. Uniform mode: the full
  /// grid, with per-mode contributions summed at every point. Adaptive
  /// mode: the union of the energies each mode actually visited; a point
  /// only carries the modes that sampled it (a sampling diagnostic, not a
  /// complete T(E) curve).
  std::vector<double> energies_eV;
  std::vector<double> transmission;
};

/// Mode-space solve: `potential_eV[c][j]` is the electron potential energy
/// (local mid-gap, eV) at column c and dimer line j; dimensions must be
/// [num_columns][N]. This is the production path for table generation.
TransportSolution solve_mode_space(const gnr::ModeSet& modes,
                                   const std::vector<std::vector<double>>& potential_eV,
                                   const TransportOptions& opts);

/// Same, with caller-owned warm-start state shared across the Gummel
/// iterations of one bias point.
TransportSolution solve_mode_space(const gnr::ModeSet& modes,
                                   const std::vector<std::vector<double>>& potential_eV,
                                   const TransportOptions& opts, TransportContext& ctx);

/// Real-space solve on the atomistic lattice with per-atom onsite energies
/// (eV). Reference path; used for validation and the band-profile figures.
TransportSolution solve_real_space(const gnr::Lattice& lat,
                                   const gnr::TightBindingParams& params,
                                   const std::vector<double>& onsite_eV,
                                   const TransportOptions& opts);

}  // namespace gnrfet::negf
