#pragma once

#include <vector>

#include "gnr/lattice.hpp"
#include "gnr/modespace.hpp"
#include "negf/energygrid.hpp"

/// Ballistic transport drivers: integrate the RGF spectral quantities over
/// energy to produce terminal current and the spatially resolved net mobile
/// charge that feeds back into the Poisson equation.
///
/// Bipolar convention: the pz model is particle-hole symmetric, so the
/// local charge-neutrality level equals the local mid-gap energy (the
/// electrostatic potential energy U). States above it count as electrons
/// weighted by f, states below as holes weighted by (1 - f); both injected
/// from the two contacts with their own Fermi levels. Spin degeneracy 2 is
/// included.
namespace gnrfet::negf {

/// Common transport settings.
struct TransportOptions {
  double gamma_contact_eV = 1.0;  ///< wide-band metal broadening
  double mu_source_eV = 0.0;
  double mu_drain_eV = 0.0;
  double kT_eV = 0.02585;
  double eta_eV = 1e-3;          ///< Green's-function broadening
  double energy_step_eV = 2e-3;  ///< charge/current grid spacing
};

/// Solution of one bias point.
struct TransportSolution {
  double current_A = 0.0;
  /// Source/drain continuity witness: the same Landauer integral assembled
  /// from the independently computed drain-side transmissions (mode-space
  /// path only; aliases current_A in the real-space path and when contract
  /// checks are compiled out). The device layer contracts
  /// |current_A - current_drain_A| to be below tolerance in the ballistic
  /// limit.
  double current_drain_A = 0.0;
  /// Electron and hole populations (both >= 0), spin included, resolved on
  /// (column, dimer line); net charge is -e*(electrons - holes).
  /// Dimensions: [num_columns][N].
  std::vector<std::vector<double>> electrons;
  std::vector<std::vector<double>> holes;
  /// Total net electrons in the device: sum(electrons - holes).
  double total_net_electrons = 0.0;
  /// Transmission sampled on the integration grid.
  std::vector<double> energies_eV;
  std::vector<double> transmission;
};

/// Mode-space solve: `potential_eV[c][j]` is the electron potential energy
/// (local mid-gap, eV) at column c and dimer line j; dimensions must be
/// [num_columns][N]. This is the production path for table generation.
TransportSolution solve_mode_space(const gnr::ModeSet& modes,
                                   const std::vector<std::vector<double>>& potential_eV,
                                   const TransportOptions& opts);

/// Real-space solve on the atomistic lattice with per-atom onsite energies
/// (eV). Reference path; used for validation and the band-profile figures.
TransportSolution solve_real_space(const gnr::Lattice& lat,
                                   const gnr::TightBindingParams& params,
                                   const std::vector<double>& onsite_eV,
                                   const TransportOptions& opts);

}  // namespace gnrfet::negf
