#pragma once

#include <vector>

/// Energy-grid construction for the charge/current integrals.
namespace gnrfet::negf {

struct EnergyGrid {
  std::vector<double> points;   ///< uniform grid (eV)
  std::vector<double> weights;  ///< trapezoid weights (eV)
};

/// Uniform grid on [e_lo, e_hi] with approximately `step` spacing.
EnergyGrid make_energy_grid(double e_lo_eV, double e_hi_eV, double step_eV);

/// Integration window for bipolar ballistic charge/current:
/// the electron integrand lives below mu_max + tail and above the lowest
/// local mid-gap; the hole integrand lives above mu_min - tail and below
/// the highest local mid-gap; both are bounded by the band tops.
struct EnergyWindow {
  double lo = 0.0;
  double hi = 0.0;
};

EnergyWindow charge_window(double min_midgap_eV, double max_midgap_eV, double mu_source_eV,
                           double mu_drain_eV, double kT_eV, double band_top_eV);

}  // namespace gnrfet::negf
