#include "negf/selfenergy.hpp"

#include <stdexcept>

#include "linalg/lu.hpp"

namespace gnrfet::negf {

using linalg::CMatrix;
using linalg::cplx;

CMatrix wide_band_self_energy(size_t dim, double gamma_eV) {
  CMatrix s(dim, dim);
  const cplx v(0.0, -0.5 * gamma_eV);
  for (size_t i = 0; i < dim; ++i) s(i, i) = v;
  return s;
}

CMatrix sancho_rubio_surface_gf(cplx energy, const CMatrix& h00, const CMatrix& h01,
                                double tol, int max_iter) {
  const size_t n = h00.rows();
  if (h00.cols() != n || h01.rows() != n || h01.cols() != n) {
    throw std::invalid_argument("sancho_rubio: blocks must be square and same size");
  }
  // The decimation stagnates at band centers for vanishing broadening;
  // enforce a floor on Im(E) (well below any physical energy scale here).
  if (energy.imag() < 1e-6) energy = cplx(energy.real(), 1e-6);
  CMatrix eye = CMatrix::identity(n);
  // eps_s: surface block; eps: bulk block; alpha/beta: renormalized couplings.
  CMatrix eps_s = h00;
  CMatrix eps = h00;
  CMatrix alpha = h01;
  CMatrix beta = h01.adjoint();
  for (int it = 0; it < max_iter; ++it) {
    CMatrix e_minus = eye * energy - eps;
    const linalg::LU lu(e_minus);
    const CMatrix g = lu.solve(eye);
    const CMatrix ga = g * alpha;
    const CMatrix gb = g * beta;
    const CMatrix a_gb = alpha * gb;
    const CMatrix b_ga = beta * ga;
    eps_s += alpha * gb;
    eps += a_gb + b_ga;
    alpha = alpha * ga;
    beta = beta * gb;
    if (alpha.max_abs() < tol && beta.max_abs() < tol) break;
  }
  CMatrix e_minus_s = eye * energy - eps_s;
  const linalg::LU lu(e_minus_s);
  return lu.solve(eye);
}

CMatrix broadening(const CMatrix& sigma) {
  CMatrix g = sigma;
  const CMatrix sd = sigma.adjoint();
  for (size_t i = 0; i < g.rows(); ++i) {
    for (size_t j = 0; j < g.cols(); ++j) {
      g(i, j) = cplx(0.0, 1.0) * (sigma(i, j) - sd(i, j));
    }
  }
  return g;
}

}  // namespace gnrfet::negf
