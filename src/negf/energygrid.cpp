#include "negf/energygrid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace gnrfet::negf {

EnergyGrid make_energy_grid(double e_lo_eV, double e_hi_eV, double step_eV) {
  if (!std::isfinite(e_lo_eV) || !std::isfinite(e_hi_eV) || !(step_eV > 0.0) ||
      !std::isfinite(step_eV)) {
    throw std::invalid_argument("make_energy_grid: invalid window or step");
  }
  // Degenerate-window contract: a window that collapsed to (or below) one
  // step — e.g. an aggressively clamped charge window on a flat-potential
  // device — yields the minimal 3-point grid spanning one step around the
  // window midpoint instead of throwing. Integrals over it are well
  // defined and near zero, which is the physically right answer for an
  // (almost) empty window.
  if (!(e_hi_eV - e_lo_eV >= step_eV)) {
    const double mid = 0.5 * (e_lo_eV + e_hi_eV);
    e_lo_eV = mid - 0.5 * step_eV;
    e_hi_eV = mid + 0.5 * step_eV;
  }
  const size_t n = std::max<size_t>(3, static_cast<size_t>(std::ceil((e_hi_eV - e_lo_eV) / step_eV)) + 1);
  const double h = (e_hi_eV - e_lo_eV) / static_cast<double>(n - 1);
  EnergyGrid g;
  g.points.resize(n);
  g.weights.assign(n, h);
  for (size_t i = 0; i < n; ++i) g.points[i] = e_lo_eV + h * static_cast<double>(i);
  g.weights.front() = 0.5 * h;
  g.weights.back() = 0.5 * h;
  GNRFET_ENSURE("negf", "energy-grid-valid",
                g.points.size() >= 3 && g.points.front() < g.points.back() && h > 0.0,
                strings::format("grid [%g, %g] step %g produced %zu points", e_lo_eV, e_hi_eV,
                                step_eV, g.points.size()));
  return g;
}

EnergyWindow charge_window(double min_midgap_eV, double max_midgap_eV, double mu_source_eV,
                           double mu_drain_eV, double kT_eV, double band_top_eV) {
  const double tail = 14.0 * kT_eV;
  const double mu_lo = std::min(mu_source_eV, mu_drain_eV);
  const double mu_hi = std::max(mu_source_eV, mu_drain_eV);
  EnergyWindow w;
  // Electrons: fully occupied states extend down to the lowest mid-gap;
  // holes: (1 - f) cuts off below mu_lo - tail. Add a small safety margin.
  w.lo = std::min(min_midgap_eV, mu_lo - tail) - 0.05;
  w.hi = std::max(max_midgap_eV, mu_hi + tail) + 0.05;
  // Never integrate past the band tops (no states beyond them).
  w.lo = std::max(w.lo, min_midgap_eV - band_top_eV - 0.1);
  w.hi = std::min(w.hi, max_midgap_eV + band_top_eV + 0.1);
  // Window contract: the band-top clamps keep lo below every mid-gap and
  // hi above (min_midgap <= max_midgap, band_top >= 0), so the window
  // can never invert.
  GNRFET_ENSURE("negf", "charge-window-ordered",
                w.lo < w.hi && w.lo <= min_midgap_eV && w.hi >= max_midgap_eV,
                strings::format("window [%g, %g] for mid-gaps [%g, %g]", w.lo, w.hi,
                                min_midgap_eV, max_midgap_eV));
  return w;
}

}  // namespace gnrfet::negf
