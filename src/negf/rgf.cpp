#include "negf/rgf.hpp"

#include <stdexcept>

#include "common/contracts.hpp"
#include "common/strings.hpp"
#include "linalg/lu.hpp"
#include "negf/selfenergy.hpp"

namespace gnrfet::negf {

using linalg::CMatrix;
using linalg::cplx;

namespace {

/// (E + i eta) I - Hd - extra self-energy terms on this block.
CMatrix block_a(const CMatrix& hd, cplx e) {
  CMatrix a(hd.rows(), hd.cols());
  for (size_t i = 0; i < hd.rows(); ++i) {
    for (size_t j = 0; j < hd.cols(); ++j) a(i, j) = -hd(i, j);
    a(i, i) += e;
  }
  return a;
}

/// Tolerance for |H - H^dagger| (eV); hopping energies are O(1) eV and the
/// Hamiltonian is assembled, not accumulated, so exact symmetry is expected.
constexpr double kHermitianTol_eV = 1e-9;

void check_contact_shapes(const gnr::BlockTridiagonal& h, const CMatrix& sl, const CMatrix& sr) {
  if (h.num_blocks() < 2) throw std::invalid_argument("rgf: need >= 2 blocks");
  if (sl.rows() != h.diag.front().rows() || sl.cols() != h.diag.front().cols()) {
    throw std::invalid_argument("rgf: sigma_left shape mismatch");
  }
  if (sr.rows() != h.diag.back().rows() || sr.cols() != h.diag.back().cols()) {
    throw std::invalid_argument("rgf: sigma_right shape mismatch");
  }
}

}  // namespace

RgfResult rgf_solve(const gnr::BlockTridiagonal& h, double energy_eV, double eta_eV,
                    const CMatrix& sigma_left, const CMatrix& sigma_right) {
  check_contact_shapes(h, sigma_left, sigma_right);
  GNRFET_REQUIRE("negf", "positive-broadening", eta_eV > 0.0 && std::isfinite(eta_eV),
                 strings::format("eta_eV = %g must be finite and > 0", eta_eV));
  GNRFET_CHECK_FINITE("negf", "finite-energy", energy_eV);
#if GNRFET_CHECKS_ENABLED
  {
    const double herm = gnr::hermiticity_error(h);
    GNRFET_REQUIRE("negf", "hermitian-hamiltonian", herm <= kHermitianTol_eV,
                   strings::format("max |H - H^dagger| = %g eV exceeds %g", herm,
                                   kHermitianTol_eV));
  }
#endif
  const size_t nb = h.num_blocks();
  const cplx e(energy_eV, eta_eV);

  // Forward sweep: left-connected Green's functions gL_i.
  std::vector<CMatrix> gl(nb);
  {
    CMatrix a0 = block_a(h.diag[0], e);
    a0 -= sigma_left;
    gl[0] = linalg::LU(a0).solve(CMatrix::identity(a0.rows()));
  }
  for (size_t i = 1; i < nb; ++i) {
    CMatrix a = block_a(h.diag[i], e);
    if (i == nb - 1) a -= sigma_right;
    // a -= V_{i,i-1} gL_{i-1} V_{i-1,i}, with V_{i-1,i} = upper[i-1].
    const CMatrix& v_up = h.upper[i - 1];
    const CMatrix v_dn = v_up.adjoint();
    a -= v_dn * (gl[i - 1] * v_up);
    gl[i] = linalg::LU(a).solve(CMatrix::identity(a.rows()));
  }

  // Backward sweep for the diagonal blocks of the full G, plus the last
  // column blocks via G_{i,last} = -gL_i A_{i,i+1} G_{i+1,last}
  // (valid for row index below the column index with left-connected g;
  // A_{i,i+1} = -H_{i,i+1} so the signs fold into a plus).
  std::vector<CMatrix> gdiag(nb);
  std::vector<CMatrix> gcol(nb);  // G_{i,last}
  gdiag[nb - 1] = gl[nb - 1];
  gcol[nb - 1] = gl[nb - 1];
  for (size_t ii = nb - 1; ii-- > 0;) {
    const CMatrix& v_up = h.upper[ii];  // H_{ii, ii+1}
    const CMatrix v_dn = v_up.adjoint();
    gdiag[ii] = gl[ii] + gl[ii] * (v_up * (gdiag[ii + 1] * (v_dn * gl[ii])));
    gcol[ii] = gl[ii] * (v_up * gcol[ii + 1]);
  }

  const CMatrix gamma_l = broadening(sigma_left);
  const CMatrix gamma_r = broadening(sigma_right);

  RgfResult r;
  // Transmission: Tr[Gamma_L G_{0,last} Gamma_R G_{0,last}^dagger].
  {
    const CMatrix& g_0n = gcol[0];
    const CMatrix m = gamma_l * (g_0n * (gamma_r * g_0n.adjoint()));
    r.transmission = m.trace().real();
  }
  // Transmission is Tr of a positive-semidefinite product: finite and
  // nonnegative up to roundoff, bounded by the contact channel count.
  GNRFET_ENSURE("negf", "transmission-positive",
                std::isfinite(r.transmission) && r.transmission >= -1e-9,
                strings::format("T(E=%g) = %g", energy_eV, r.transmission));
  // Contact spectral functions: A_R,ii from the last-column blocks,
  // A_L,ii = A_ii - A_R,ii with A = i (G - G^dagger).
  r.spectral_left.reserve(h.total_dim());
  r.spectral_right.reserve(h.total_dim());
  for (size_t i = 0; i < nb; ++i) {
    const CMatrix ar = gcol[i] * (gamma_r * gcol[i].adjoint());
    const size_t n = gdiag[i].rows();
    for (size_t k = 0; k < n; ++k) {
      const double a_tot = -2.0 * gdiag[i](k, k).imag();
      const double a_r = ar(k, k).real();
      // Spectral sum rule A = G (Gamma_L + Gamma_R + 2 eta) G^dagger on the
      // diagonal: A_ii >= (A_R)_ii >= 0 up to roundoff. A violation means
      // the drain-injected density exceeds the total density of states —
      // exactly the failure mode of a corrupted H or self-energy.
      GNRFET_ENSURE("negf", "spectral-sum-rule",
                    std::isfinite(a_tot) && a_r >= -1e-9 &&
                        a_tot - a_r >= -1e-9 * (1.0 + std::abs(a_tot) + std::abs(a_r)),
                    strings::format("block %zu orbital %zu: A_tot = %g, A_R = %g at E = %g",
                                    i, k, a_tot, a_r, energy_eV));
      r.spectral_right.push_back(a_r);
      r.spectral_left.push_back(std::max(0.0, a_tot - a_r));
    }
  }
  return r;
}

RgfResult dense_reference_solve(const gnr::BlockTridiagonal& h, double energy_eV, double eta_eV,
                                const CMatrix& sigma_left, const CMatrix& sigma_right) {
  check_contact_shapes(h, sigma_left, sigma_right);
  const size_t n = h.total_dim();
  CMatrix a(n, n);
  const CMatrix hd = h.to_dense();
  const cplx e(energy_eV, eta_eV);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = -hd(i, j);
    a(i, i) += e;
  }
  const size_t n0 = h.diag.front().rows();
  const size_t nl = h.diag.back().rows();
  for (size_t i = 0; i < n0; ++i) {
    for (size_t j = 0; j < n0; ++j) a(i, j) -= sigma_left(i, j);
  }
  for (size_t i = 0; i < nl; ++i) {
    for (size_t j = 0; j < nl; ++j) a(n - nl + i, n - nl + j) -= sigma_right(i, j);
  }
  const CMatrix g = linalg::LU(a).solve(CMatrix::identity(n));

  // Embed the contact broadenings in full-dimension frames.
  CMatrix gamma_l(n, n), gamma_r(n, n);
  const CMatrix gl_small = broadening(sigma_left);
  const CMatrix gr_small = broadening(sigma_right);
  for (size_t i = 0; i < n0; ++i) {
    for (size_t j = 0; j < n0; ++j) gamma_l(i, j) = gl_small(i, j);
  }
  for (size_t i = 0; i < nl; ++i) {
    for (size_t j = 0; j < nl; ++j) gamma_r(n - nl + i, n - nl + j) = gr_small(i, j);
  }
  const CMatrix ar = g * (gamma_r * g.adjoint());
  const CMatrix t = gamma_r * (g * (gamma_l * g.adjoint()));

  RgfResult r;
  r.transmission = t.trace().real();
#if GNRFET_CHECKS_ENABLED
  // Full spectral identity A = G (Gamma_L + Gamma_R) G^dagger + 2 eta G
  // G^dagger, checked entry-wise on the diagonal. Only affordable here (one
  // dense solve per energy already); the RGF path checks the diagonal sum
  // rule instead.
  {
    const CMatrix al = g * (gamma_l * g.adjoint());
    const CMatrix gg = g * g.adjoint();
    for (size_t k = 0; k < n; ++k) {
      const double a_tot = -2.0 * g(k, k).imag();
      const double rhs = al(k, k).real() + ar(k, k).real() + 2.0 * eta_eV * gg(k, k).real();
      const double scale = std::abs(a_tot) + std::abs(rhs) + 1.0;
      GNRFET_ENSURE("negf", "spectral-identity", std::abs(a_tot - rhs) <= 1e-8 * scale,
                    strings::format("orbital %zu: i(G - G^dagger) = %g vs G Gamma G^dagger = %g",
                                    k, a_tot, rhs));
    }
  }
#endif
  r.spectral_left.resize(n);
  r.spectral_right.resize(n);
  // Same convention as rgf_solve: A_R exact from Gamma_R, A_L as the
  // remainder of the total spectral function (which also absorbs the small
  // eta-broadening background).
  for (size_t k = 0; k < n; ++k) {
    const double a_tot = -2.0 * g(k, k).imag();
    r.spectral_right[k] = ar(k, k).real();
    r.spectral_left[k] = std::max(0.0, a_tot - ar(k, k).real());
  }
  return r;
}

}  // namespace gnrfet::negf
