#include "negf/rgf.hpp"

#include <stdexcept>

#include "common/contracts.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "linalg/lu.hpp"
#include "negf/selfenergy.hpp"

namespace gnrfet::negf {

using linalg::CMatrix;
using linalg::cplx;

namespace {

/// (E + i eta) I - Hd into caller storage (same arithmetic as the former
/// value-returning helper: negate every entry, then add e on the diagonal).
void block_a_into(CMatrix& a, const CMatrix& hd, cplx e) {
  a.resize_zero(hd.rows(), hd.cols());
  for (size_t i = 0; i < hd.rows(); ++i) {
    for (size_t j = 0; j < hd.cols(); ++j) a(i, j) = -hd(i, j);
    a(i, i) += e;
  }
}

/// Identity right-hand side into caller storage.
void identity_into(CMatrix& eye, size_t n) {
  eye.resize_zero(n, n);
  for (size_t i = 0; i < n; ++i) eye(i, i) = cplx{1.0};
}

/// Gamma = i (Sigma - Sigma^dagger) into caller storage, the same
/// entry-wise arithmetic as selfenergy.cpp's broadening().
void broadening_into(CMatrix& gamma, CMatrix& adj_scratch, const CMatrix& sigma) {
  linalg::adjoint_into(adj_scratch, sigma);
  gamma.resize_zero(sigma.rows(), sigma.cols());
  for (size_t i = 0; i < gamma.rows(); ++i) {
    for (size_t j = 0; j < gamma.cols(); ++j) {
      gamma(i, j) = cplx(0.0, 1.0) * (sigma(i, j) - adj_scratch(i, j));
    }
  }
}

/// Tolerance for |H - H^dagger| (eV); hopping energies are O(1) eV and the
/// Hamiltonian is assembled, not accumulated, so exact symmetry is expected.
constexpr double kHermitianTol_eV = 1e-9;

void check_contact_shapes(const gnr::BlockTridiagonal& h, const CMatrix& sl, const CMatrix& sr) {
  if (h.num_blocks() < 2) throw std::invalid_argument("rgf: need >= 2 blocks");
  if (sl.rows() != h.diag.front().rows() || sl.cols() != h.diag.front().cols()) {
    throw std::invalid_argument("rgf: sigma_left shape mismatch");
  }
  if (sr.rows() != h.diag.back().rows() || sr.cols() != h.diag.back().cols()) {
    throw std::invalid_argument("rgf: sigma_right shape mismatch");
  }
}

}  // namespace

RgfResult rgf_solve(const gnr::BlockTridiagonal& h, double energy_eV, double eta_eV,
                    const CMatrix& sigma_left, const CMatrix& sigma_right) {
  RgfWorkspace ws;
  RgfResult out;
  rgf_solve(h, energy_eV, eta_eV, sigma_left, sigma_right, ws, out);
  return out;
}

void rgf_solve(const gnr::BlockTridiagonal& h, double energy_eV, double eta_eV,
               const CMatrix& sigma_left, const CMatrix& sigma_right, RgfWorkspace& ws,
               RgfResult& out) {
  check_contact_shapes(h, sigma_left, sigma_right);
  GNRFET_REQUIRE("negf", "positive-broadening", eta_eV > 0.0 && std::isfinite(eta_eV),
                 strings::format("eta_eV = %g must be finite and > 0", eta_eV));
  GNRFET_CHECK_FINITE("negf", "finite-energy", energy_eV);
#if GNRFET_CHECKS_ENABLED
  {
    const double herm = gnr::hermiticity_error(h);
    GNRFET_REQUIRE("negf", "hermitian-hamiltonian", herm <= kHermitianTol_eV,
                   strings::format("max |H - H^dagger| = %g eV exceeds %g", herm,
                                   kHermitianTol_eV));
  }
#endif
  const size_t nb = h.num_blocks();
  const cplx e(energy_eV, eta_eV);

  // Forward sweep: left-connected Green's functions gL_i. Every block
  // solve refactors into the workspace LU and writes into long-lived
  // buffers: no allocation once the block shapes have been seen.
  std::vector<CMatrix>& gl = ws.gl;
  gl.resize(nb);
  {
    block_a_into(ws.a, h.diag[0], e);
    ws.a -= sigma_left;
    identity_into(ws.eye, ws.a.rows());
    ws.lu.factor(ws.a);
    ws.lu.solve_into(ws.eye, gl[0]);
  }
  for (size_t i = 1; i < nb; ++i) {
    block_a_into(ws.a, h.diag[i], e);
    if (i == nb - 1) ws.a -= sigma_right;
    // a -= V_{i,i-1} gL_{i-1} V_{i-1,i}, with V_{i-1,i} = upper[i-1].
    const CMatrix& v_up = h.upper[i - 1];
    linalg::adjoint_into(ws.v_dn, v_up);
    linalg::multiply_into(ws.t1, gl[i - 1], v_up);
    linalg::multiply_into(ws.t2, ws.v_dn, ws.t1);
    ws.a -= ws.t2;
    identity_into(ws.eye, ws.a.rows());
    ws.lu.factor(ws.a);
    ws.lu.solve_into(ws.eye, gl[i]);
  }

  // Backward sweep for the diagonal blocks of the full G, plus the last
  // column blocks via G_{i,last} = -gL_i A_{i,i+1} G_{i+1,last}
  // (valid for row index below the column index with left-connected g;
  // A_{i,i+1} = -H_{i,i+1} so the signs fold into a plus).
  std::vector<CMatrix>& gdiag = ws.gdiag;
  std::vector<CMatrix>& gcol = ws.gcol;
  gdiag.resize(nb);
  gcol.resize(nb);
  gdiag[nb - 1] = gl[nb - 1];
  gcol[nb - 1] = gl[nb - 1];
  for (size_t ii = nb - 1; ii-- > 0;) {
    const CMatrix& v_up = h.upper[ii];  // H_{ii, ii+1}
    linalg::adjoint_into(ws.v_dn, v_up);
    linalg::multiply_into(ws.t1, ws.v_dn, gl[ii]);
    linalg::multiply_into(ws.t2, gdiag[ii + 1], ws.t1);
    linalg::multiply_into(ws.t1, v_up, ws.t2);
    linalg::multiply_into(ws.t2, gl[ii], ws.t1);
    gdiag[ii] = gl[ii];
    gdiag[ii] += ws.t2;
    linalg::multiply_into(ws.t1, v_up, gcol[ii + 1]);
    linalg::multiply_into(gcol[ii], gl[ii], ws.t1);
  }

  broadening_into(ws.gamma_l, ws.t1, sigma_left);
  broadening_into(ws.gamma_r, ws.t1, sigma_right);

  // Transmission: Tr[Gamma_L G_{0,last} Gamma_R G_{0,last}^dagger].
  {
    const CMatrix& g_0n = gcol[0];
    linalg::adjoint_into(ws.t1, g_0n);
    linalg::multiply_into(ws.t2, ws.gamma_r, ws.t1);
    linalg::multiply_into(ws.t1, g_0n, ws.t2);
    linalg::multiply_into(ws.t2, ws.gamma_l, ws.t1);
    out.transmission = ws.t2.trace().real();
  }
  // Transmission is Tr of a positive-semidefinite product: finite and
  // nonnegative up to roundoff, bounded by the contact channel count.
  GNRFET_ENSURE("negf", "transmission-positive",
                std::isfinite(out.transmission) && out.transmission >= -1e-9,
                strings::format("T(E=%g) = %g", energy_eV, out.transmission));
  // Contact spectral functions: A_R,ii from the last-column blocks,
  // A_L,ii = A_ii - A_R,ii with A = i (G - G^dagger).
  out.spectral_left.clear();
  out.spectral_right.clear();
  out.spectral_left.reserve(h.total_dim());
  out.spectral_right.reserve(h.total_dim());
  for (size_t i = 0; i < nb; ++i) {
    linalg::adjoint_into(ws.t1, gcol[i]);
    linalg::multiply_into(ws.t2, ws.gamma_r, ws.t1);
    linalg::multiply_into(ws.t1, gcol[i], ws.t2);
    const CMatrix& ar = ws.t1;
    const size_t n = gdiag[i].rows();
    for (size_t k = 0; k < n; ++k) {
      const double a_tot = -2.0 * gdiag[i](k, k).imag();
      const double a_r = ar(k, k).real();
      // Spectral sum rule A = G (Gamma_L + Gamma_R + 2 eta) G^dagger on the
      // diagonal: A_ii >= (A_R)_ii >= 0 up to roundoff. A violation means
      // the drain-injected density exceeds the total density of states —
      // exactly the failure mode of a corrupted H or self-energy.
      GNRFET_ENSURE("negf", "spectral-sum-rule",
                    std::isfinite(a_tot) && a_r >= -1e-9 &&
                        a_tot - a_r >= -1e-9 * (1.0 + std::abs(a_tot) + std::abs(a_r)),
                    strings::format("block %zu orbital %zu: A_tot = %g, A_R = %g at E = %g",
                                    i, k, a_tot, a_r, energy_eV));
      out.spectral_right.push_back(a_r);
      out.spectral_left.push_back(std::max(0.0, a_tot - a_r));
    }
  }
}

void rgf_solve_batch(const gnr::BlockTridiagonal& h, const double* energies_eV, size_t count,
                     double eta_eV, const CMatrix& sigma_left, const CMatrix& sigma_right,
                     RgfBatchWorkspace& ws, std::vector<RgfResult>& out) {
  check_contact_shapes(h, sigma_left, sigma_right);
  if (count == 0) throw std::invalid_argument("rgf_batch: need >= 1 energy");
  GNRFET_REQUIRE("negf", "positive-broadening", eta_eV > 0.0 && std::isfinite(eta_eV),
                 strings::format("eta_eV = %g must be finite and > 0", eta_eV));
  for (size_t k = 0; k < count; ++k) {
    GNRFET_CHECK_FINITE("negf", "finite-energy", energies_eV[k]);
  }
#if GNRFET_CHECKS_ENABLED
  // The Hamiltonian is shared by every lane: one Hermiticity scan per
  // batch instead of one per energy.
  {
    const double herm = gnr::hermiticity_error(h);
    GNRFET_REQUIRE("negf", "hermitian-hamiltonian", herm <= kHermitianTol_eV,
                   strings::format("max |H - H^dagger| = %g eV exceeds %g", herm,
                                   kHermitianTol_eV));
  }
#endif
  const size_t nb = h.num_blocks();
  ws.lane.resize(count);
  out.resize(count);
  metrics::add(metrics::Counter::kRgfBatchSolves);
  metrics::observe(metrics::Histogram::kRgfBatchWidth, static_cast<double>(count));

  // Forward sweep, blocks outer / lanes inner: the coupling adjoint and
  // identity RHS of a block are energy-independent and computed once.
  identity_into(ws.eye, h.diag[0].rows());
  for (size_t k = 0; k < count; ++k) {
    RgfWorkspace& w = ws.lane[k];
    w.gl.resize(nb);
    block_a_into(w.a, h.diag[0], cplx(energies_eV[k], eta_eV));
    w.a -= sigma_left;
    w.lu.factor(w.a);
    w.lu.solve_into(ws.eye, w.gl[0]);
  }
  for (size_t i = 1; i < nb; ++i) {
    const CMatrix& v_up = h.upper[i - 1];
    linalg::adjoint_into(ws.v_dn, v_up);
    identity_into(ws.eye, h.diag[i].rows());
    for (size_t k = 0; k < count; ++k) {
      RgfWorkspace& w = ws.lane[k];
      block_a_into(w.a, h.diag[i], cplx(energies_eV[k], eta_eV));
      if (i == nb - 1) w.a -= sigma_right;
      linalg::multiply_into(w.t1, w.gl[i - 1], v_up);
      linalg::multiply_into(w.t2, ws.v_dn, w.t1);
      w.a -= w.t2;
      w.lu.factor(w.a);
      w.lu.solve_into(ws.eye, w.gl[i]);
    }
  }

  // Backward sweep, same hoisting.
  for (size_t k = 0; k < count; ++k) {
    RgfWorkspace& w = ws.lane[k];
    w.gdiag.resize(nb);
    w.gcol.resize(nb);
    w.gdiag[nb - 1] = w.gl[nb - 1];
    w.gcol[nb - 1] = w.gl[nb - 1];
  }
  for (size_t ii = nb - 1; ii-- > 0;) {
    const CMatrix& v_up = h.upper[ii];
    linalg::adjoint_into(ws.v_dn, v_up);
    for (size_t k = 0; k < count; ++k) {
      RgfWorkspace& w = ws.lane[k];
      linalg::multiply_into(w.t1, ws.v_dn, w.gl[ii]);
      linalg::multiply_into(w.t2, w.gdiag[ii + 1], w.t1);
      linalg::multiply_into(w.t1, v_up, w.t2);
      linalg::multiply_into(w.t2, w.gl[ii], w.t1);
      w.gdiag[ii] = w.gl[ii];
      w.gdiag[ii] += w.t2;
      linalg::multiply_into(w.t1, v_up, w.gcol[ii + 1]);
      linalg::multiply_into(w.gcol[ii], w.gl[ii], w.t1);
    }
  }

  // Contact broadenings are energy-independent: once per batch, not per
  // lane (same entry-wise arithmetic as rgf_solve's per-energy calls).
  broadening_into(ws.gamma_l, ws.adj_scratch, sigma_left);
  broadening_into(ws.gamma_r, ws.adj_scratch, sigma_right);

  for (size_t k = 0; k < count; ++k) {
    RgfWorkspace& w = ws.lane[k];
    RgfResult& r = out[k];
    const double energy_eV = energies_eV[k];
    {
      const CMatrix& g_0n = w.gcol[0];
      linalg::adjoint_into(w.t1, g_0n);
      linalg::multiply_into(w.t2, ws.gamma_r, w.t1);
      linalg::multiply_into(w.t1, g_0n, w.t2);
      linalg::multiply_into(w.t2, ws.gamma_l, w.t1);
      r.transmission = w.t2.trace().real();
    }
    GNRFET_ENSURE("negf", "transmission-positive",
                  std::isfinite(r.transmission) && r.transmission >= -1e-9,
                  strings::format("T(E=%g) = %g", energy_eV, r.transmission));
    r.spectral_left.clear();
    r.spectral_right.clear();
    r.spectral_left.reserve(h.total_dim());
    r.spectral_right.reserve(h.total_dim());
    for (size_t i = 0; i < nb; ++i) {
      linalg::adjoint_into(w.t1, w.gcol[i]);
      linalg::multiply_into(w.t2, ws.gamma_r, w.t1);
      linalg::multiply_into(w.t1, w.gcol[i], w.t2);
      const CMatrix& ar = w.t1;
      const size_t n = w.gdiag[i].rows();
      for (size_t kk = 0; kk < n; ++kk) {
        const double a_tot = -2.0 * w.gdiag[i](kk, kk).imag();
        const double a_r = ar(kk, kk).real();
        GNRFET_ENSURE("negf", "spectral-sum-rule",
                      std::isfinite(a_tot) && a_r >= -1e-9 &&
                          a_tot - a_r >= -1e-9 * (1.0 + std::abs(a_tot) + std::abs(a_r)),
                      strings::format("block %zu orbital %zu: A_tot = %g, A_R = %g at E = %g",
                                      i, kk, a_tot, a_r, energy_eV));
        r.spectral_right.push_back(a_r);
        r.spectral_left.push_back(std::max(0.0, a_tot - a_r));
      }
    }
  }
}

RgfResult dense_reference_solve(const gnr::BlockTridiagonal& h, double energy_eV, double eta_eV,
                                const CMatrix& sigma_left, const CMatrix& sigma_right) {
  check_contact_shapes(h, sigma_left, sigma_right);
  const size_t n = h.total_dim();
  CMatrix a(n, n);
  const CMatrix hd = h.to_dense();
  const cplx e(energy_eV, eta_eV);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = -hd(i, j);
    a(i, i) += e;
  }
  const size_t n0 = h.diag.front().rows();
  const size_t nl = h.diag.back().rows();
  for (size_t i = 0; i < n0; ++i) {
    for (size_t j = 0; j < n0; ++j) a(i, j) -= sigma_left(i, j);
  }
  for (size_t i = 0; i < nl; ++i) {
    for (size_t j = 0; j < nl; ++j) a(n - nl + i, n - nl + j) -= sigma_right(i, j);
  }
  const CMatrix g = linalg::LU(a).solve(CMatrix::identity(n));

  // Embed the contact broadenings in full-dimension frames.
  CMatrix gamma_l(n, n), gamma_r(n, n);
  const CMatrix gl_small = broadening(sigma_left);
  const CMatrix gr_small = broadening(sigma_right);
  for (size_t i = 0; i < n0; ++i) {
    for (size_t j = 0; j < n0; ++j) gamma_l(i, j) = gl_small(i, j);
  }
  for (size_t i = 0; i < nl; ++i) {
    for (size_t j = 0; j < nl; ++j) gamma_r(n - nl + i, n - nl + j) = gr_small(i, j);
  }
  const CMatrix ar = g * (gamma_r * g.adjoint());
  const CMatrix t = gamma_r * (g * (gamma_l * g.adjoint()));

  RgfResult r;
  r.transmission = t.trace().real();
#if GNRFET_CHECKS_ENABLED
  // Full spectral identity A = G (Gamma_L + Gamma_R) G^dagger + 2 eta G
  // G^dagger, checked entry-wise on the diagonal. Only affordable here (one
  // dense solve per energy already); the RGF path checks the diagonal sum
  // rule instead.
  {
    const CMatrix al = g * (gamma_l * g.adjoint());
    const CMatrix gg = g * g.adjoint();
    for (size_t k = 0; k < n; ++k) {
      const double a_tot = -2.0 * g(k, k).imag();
      const double rhs = al(k, k).real() + ar(k, k).real() + 2.0 * eta_eV * gg(k, k).real();
      const double scale = std::abs(a_tot) + std::abs(rhs) + 1.0;
      GNRFET_ENSURE("negf", "spectral-identity", std::abs(a_tot - rhs) <= 1e-8 * scale,
                    strings::format("orbital %zu: i(G - G^dagger) = %g vs G Gamma G^dagger = %g",
                                    k, a_tot, rhs));
    }
  }
#endif
  r.spectral_left.resize(n);
  r.spectral_right.resize(n);
  // Same convention as rgf_solve: A_R exact from Gamma_R, A_L as the
  // remainder of the total spectral function (which also absorbs the small
  // eta-broadening background).
  for (size_t k = 0; k < n; ++k) {
    const double a_tot = -2.0 * g(k, k).imag();
    r.spectral_right[k] = ar(k, k).real();
    r.spectral_left[k] = std::max(0.0, a_tot - ar(k, k).real());
  }
  return r;
}

}  // namespace gnrfet::negf
