#include "negf/transport.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/constants.hpp"
#include "common/contracts.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "common/trace.hpp"
#include "gnr/hamiltonian.hpp"
#include "negf/rgf.hpp"
#include "negf/scalar_rgf.hpp"
#include "negf/selfenergy.hpp"

namespace gnrfet::negf {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Energies per parallel chunk. The chunk layout is part of the numerical
/// contract: partial sums are folded in chunk order, so results are
/// bit-identical for any thread count (see common/parallel.hpp).
constexpr size_t kEnergyGrain = 8;

/// Bipolar charge for one orbital at one energy: electron density above
/// the local mid-gap u (weighted by f), hole density below it (weighted by
/// 1 - f), both spin-degenerate and injected from the two contacts.
struct BipolarDensity {
  double electrons = 0.0;
  double holes = 0.0;
};

BipolarDensity bipolar_density(double a_l, double a_r, double energy, double u, double f1,
                               double f2) {
  BipolarDensity d;
  if (energy >= u) {
    d.electrons = 2.0 * (a_l * f1 + a_r * f2) / kTwoPi;
  } else {
    d.holes = 2.0 * (a_l * (1.0 - f1) + a_r * (1.0 - f2)) / kTwoPi;
  }
  return d;
}

}  // namespace

TransportSolution solve_mode_space(const gnr::ModeSet& modes,
                                   const std::vector<std::vector<double>>& potential_eV,
                                   const TransportOptions& opts) {
  trace::Span span("negf", "solve_mode_space");
  const size_t ncol = potential_eV.size();
  const size_t nlines = static_cast<size_t>(modes.n_index);
  if (ncol < 4) throw std::invalid_argument("solve_mode_space: need >= 4 columns");
  for (const auto& col : potential_eV) {
    if (col.size() != nlines) {
      throw std::invalid_argument("solve_mode_space: potential must be [columns][N]");
    }
  }
  GNRFET_REQUIRE("negf", "finite-potential", contracts::all_finite(potential_eV),
                 "mid-gap potential contains NaN/inf (diverged Poisson input?)");

  // Mode-averaged potential per column, and window bounds.
  std::vector<std::vector<double>> u_mode(modes.modes.size(), std::vector<double>(ncol, 0.0));
  double u_min = 1e300, u_max = -1e300, band_top = 0.0;
  for (size_t p = 0; p < modes.modes.size(); ++p) {
    const auto& m = modes.modes[p];
    band_top = std::max(band_top, m.band_top_eV());
    for (size_t c = 0; c < ncol; ++c) {
      double u = 0.0;
      for (size_t j = 0; j < nlines; ++j) u += m.weight[j] * potential_eV[c][j];
      u_mode[p][c] = u;
      u_min = std::min(u_min, u);
      u_max = std::max(u_max, u);
    }
  }

  const EnergyWindow win = charge_window(u_min, u_max, opts.mu_source_eV, opts.mu_drain_eV,
                                         opts.kT_eV, band_top);
  const EnergyGrid grid = make_energy_grid(win.lo, win.hi, opts.energy_step_eV);
  metrics::add(metrics::Counter::kNegfEnergyPoints, grid.points.size());
  metrics::observe(metrics::Histogram::kEnergyPointsPerTransport,
                   static_cast<double>(grid.points.size()));

  TransportSolution sol;
  sol.energies_eV = grid.points;
  sol.transmission.assign(grid.points.size(), 0.0);
  sol.electrons.assign(ncol, std::vector<double>(nlines, 0.0));
  sol.holes.assign(ncol, std::vector<double>(nlines, 0.0));

  // Per-mode chains are static except for onsite; reuse buffers.
  ScalarChain chain;
  chain.onsite.resize(ncol);
  chain.hopping.resize(ncol - 1);
  chain.gamma_left = opts.gamma_contact_eV;
  chain.gamma_right = opts.gamma_contact_eV;

  double current_integral = 0.0;          // Integral T (f1 - f2) dE
  double current_integral_reverse = 0.0;  // Same, from drain-side transmissions

  /// Per-chunk accumulator for one mode's slice of the energy grid.
  struct ModePartial {
    double current = 0.0;
    double current_reverse = 0.0;
    std::vector<double> col_n, col_p;
  };

  for (size_t p = 0; p < modes.modes.size(); ++p) {
    const auto& m = modes.modes[p];
    for (size_t c = 0; c + 1 < ncol; ++c) {
      // Columns pair into dimers within a slice: bond (2m -> 2m+1) is the
      // dimer hopping, (2m+1 -> 2m+2) the staircase hopping.
      chain.hopping[c] = (c % 2 == 0) ? -m.t_dimer : -m.t_stair;
    }
    for (size_t c = 0; c < ncol; ++c) chain.onsite[c] = u_mode[p][c];

    // Parallel over the energy grid: each energy solves an independent RGF
    // chain. Within a mode every ie is touched by exactly one chunk, so
    // sol.transmission writes are disjoint; charge and current partials
    // are reduced in fixed chunk order.
    ModePartial init;
    init.col_n.assign(ncol, 0.0);
    init.col_p.assign(ncol, 0.0);
    const ModePartial mode_sum = par::parallel_reduce_ordered<ModePartial>(
        grid.points.size(), kEnergyGrain, std::move(init),
        [&](size_t begin, size_t end) {
          ModePartial part;
          part.col_n.assign(ncol, 0.0);
          part.col_p.assign(ncol, 0.0);
          uint64_t rgf_solves = 0;
          for (size_t ie = begin; ie < end; ++ie) {
            const double e = grid.points[ie];
            const double w = grid.weights[ie];
            // Skip energies with no propagating/evanescent weight anywhere:
            // outside [u_min - band_top, u_max + band_top] the spectral
            // function of this mode is negligible.
            if (e < u_min - m.band_top_eV() - 0.05 || e > u_max + m.band_top_eV() + 0.05) {
              continue;
            }
            const ScalarRgfResult r = scalar_rgf_solve(chain, e, opts.eta_eV);
            ++rgf_solves;
            sol.transmission[ie] += m.degeneracy * r.transmission;
            const double f1 = constants::fermi(e - opts.mu_source_eV, opts.kT_eV);
            const double f2 = constants::fermi(e - opts.mu_drain_eV, opts.kT_eV);
            part.current += w * m.degeneracy * r.transmission * (f1 - f2);
            part.current_reverse += w * m.degeneracy * r.transmission_reverse * (f1 - f2);
            for (size_t c = 0; c < ncol; ++c) {
              const BipolarDensity d = bipolar_density(r.spectral_left[c], r.spectral_right[c],
                                                       e, u_mode[p][c], f1, f2);
              part.col_n[c] += w * m.degeneracy * d.electrons;
              part.col_p[c] += w * m.degeneracy * d.holes;
            }
          }
          // One counter add per chunk, not per energy: metrics stay off
          // the innermost loop.
          metrics::add(metrics::Counter::kRgfSolves, rgf_solves);
          return part;
        },
        [](ModePartial& acc, ModePartial&& part) {
          acc.current += part.current;
          acc.current_reverse += part.current_reverse;
          for (size_t c = 0; c < acc.col_n.size(); ++c) {
            acc.col_n[c] += part.col_n[c];
            acc.col_p[c] += part.col_p[c];
          }
        });
    current_integral += mode_sum.current;
    current_integral_reverse += mode_sum.current_reverse;

    // Distribute the mode charge across dimer lines with the mode weights.
    for (size_t c = 0; c < ncol; ++c) {
      for (size_t j = 0; j < nlines; ++j) {
        sol.electrons[c][j] += mode_sum.col_n[c] * m.weight[j];
        sol.holes[c][j] += mode_sum.col_p[c] * m.weight[j];
      }
    }
  }

  sol.current_A = constants::kCurrentPrefactor * current_integral;
  sol.current_drain_A = constants::kCurrentPrefactor * current_integral_reverse;
  for (size_t c = 0; c < ncol; ++c) {
    for (size_t j = 0; j < nlines; ++j) {
      sol.total_net_electrons += sol.electrons[c][j] - sol.holes[c][j];
    }
  }
  GNRFET_ENSURE("negf", "finite-current",
                std::isfinite(sol.current_A) && std::isfinite(sol.total_net_electrons),
                strings::format("current_A = %g, net electrons = %g", sol.current_A,
                                sol.total_net_electrons));
  return sol;
}

TransportSolution solve_real_space(const gnr::Lattice& lat,
                                   const gnr::TightBindingParams& params,
                                   const std::vector<double>& onsite_eV,
                                   const TransportOptions& opts) {
  trace::Span span("negf", "solve_real_space");
  const gnr::BlockTridiagonal h = build_hamiltonian(lat, params, onsite_eV);
  const size_t nb = h.num_blocks();
  const auto& slices = lat.slice_atoms();

  double u_min = 1e300, u_max = -1e300;
  for (const double u : onsite_eV) {
    u_min = std::min(u_min, u);
    u_max = std::max(u_max, u);
  }
  const double band_top = 3.0 * params.hopping_eV * (1.0 + params.edge_delta);
  const EnergyWindow win = charge_window(u_min, u_max, opts.mu_source_eV, opts.mu_drain_eV,
                                         opts.kT_eV, band_top);
  const EnergyGrid grid = make_energy_grid(win.lo, win.hi, opts.energy_step_eV);
  metrics::add(metrics::Counter::kNegfEnergyPoints, grid.points.size());
  metrics::observe(metrics::Histogram::kEnergyPointsPerTransport,
                   static_cast<double>(grid.points.size()));

  const linalg::CMatrix sig_l = wide_band_self_energy(h.diag.front().rows(), opts.gamma_contact_eV);
  const linalg::CMatrix sig_r = wide_band_self_energy(h.diag.back().rows(), opts.gamma_contact_eV);

  TransportSolution sol;
  sol.energies_eV = grid.points;
  sol.transmission.assign(grid.points.size(), 0.0);

  /// Per-chunk accumulator over the real-space energy grid.
  struct RealPartial {
    double current = 0.0;
    std::vector<double> n_atom, p_atom;
  };
  const size_t natoms = lat.atoms().size();

  // Parallel over energies (one block-RGF solve each); transmission writes
  // are disjoint per ie and the charge/current partials fold in fixed
  // chunk order — bit-identical for any thread count.
  RealPartial init;
  init.n_atom.assign(natoms, 0.0);
  init.p_atom.assign(natoms, 0.0);
  GNRFET_REQUIRE("negf", "finite-potential", contracts::all_finite(onsite_eV),
                 "onsite energy array contains NaN/inf (diverged Poisson input?)");
  const RealPartial sum = par::parallel_reduce_ordered<RealPartial>(
      grid.points.size(), kEnergyGrain, std::move(init),
      [&](size_t begin, size_t end) {
        RealPartial part;
        part.n_atom.assign(natoms, 0.0);
        part.p_atom.assign(natoms, 0.0);
        for (size_t ie = begin; ie < end; ++ie) {
          const double e = grid.points[ie];
          const double w = grid.weights[ie];
          const RgfResult r = rgf_solve(h, e, opts.eta_eV, sig_l, sig_r);
          sol.transmission[ie] = r.transmission;
          const double f1 = constants::fermi(e - opts.mu_source_eV, opts.kT_eV);
          const double f2 = constants::fermi(e - opts.mu_drain_eV, opts.kT_eV);
          part.current += w * r.transmission * (f1 - f2);
          size_t orb = 0;
          for (size_t b = 0; b < nb; ++b) {
            for (const size_t atom : slices[b]) {
              const BipolarDensity d = bipolar_density(r.spectral_left[orb],
                                                       r.spectral_right[orb], e,
                                                       onsite_eV[atom], f1, f2);
              part.n_atom[atom] += w * d.electrons;
              part.p_atom[atom] += w * d.holes;
              ++orb;
            }
          }
        }
        metrics::add(metrics::Counter::kRgfSolves, static_cast<uint64_t>(end - begin));
        return part;
      },
      [](RealPartial& acc, RealPartial&& part) {
        acc.current += part.current;
        for (size_t a = 0; a < acc.n_atom.size(); ++a) {
          acc.n_atom[a] += part.n_atom[a];
          acc.p_atom[a] += part.p_atom[a];
        }
      });
  const std::vector<double>& n_per_atom = sum.n_atom;
  const std::vector<double>& p_per_atom = sum.p_atom;
  sol.current_A = constants::kCurrentPrefactor * sum.current;
  sol.current_drain_A = sol.current_A;  // block RGF has no independent drain-side solve

  // Resolve per (column, dimer line): each slice holds two columns; the
  // column of an atom follows from its x offset within the slice.
  const size_t ncol = lat.column_x_nm().size();
  sol.electrons.assign(ncol, std::vector<double>(static_cast<size_t>(lat.n_index()), 0.0));
  sol.holes.assign(ncol, std::vector<double>(static_cast<size_t>(lat.n_index()), 0.0));
  for (size_t a = 0; a < lat.atoms().size(); ++a) {
    const auto& atom = lat.atoms()[a];
    const size_t col = static_cast<size_t>(2 * atom.slice) +
                       (std::abs(atom.x_nm - lat.column_x_nm()[static_cast<size_t>(2 * atom.slice)]) < 1e-9 ? 0 : 1);
    sol.electrons[col][static_cast<size_t>(atom.dimer_line)] += n_per_atom[a];
    sol.holes[col][static_cast<size_t>(atom.dimer_line)] += p_per_atom[a];
    sol.total_net_electrons += n_per_atom[a] - p_per_atom[a];
  }
  return sol;
}

}  // namespace gnrfet::negf
