#include "negf/transport.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>
#include <stdexcept>

#include "common/constants.hpp"
#include "common/contracts.hpp"
#include "common/env.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "common/trace.hpp"
#include "gnr/hamiltonian.hpp"
#include "negf/adaptive.hpp"
#include "negf/batch_rgf.hpp"
#include "negf/rgf.hpp"
#include "negf/scalar_rgf.hpp"
#include "negf/selfenergy.hpp"

namespace gnrfet::negf {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Energies per parallel chunk. The chunk layout is part of the numerical
/// contract: partial sums are folded in chunk order, so results are
/// bit-identical for any thread count (see common/parallel.hpp).
constexpr size_t kEnergyGrain = 8;

/// Margin (eV) beyond the band top past which a mode's spectral function
/// is treated as zero — shared by the uniform skip range and the adaptive
/// per-mode windows.
constexpr double kSupportMargin_eV = 0.05;

/// Bipolar charge for one orbital at one energy: electron density above
/// the local mid-gap u (weighted by f), hole density below it (weighted by
/// 1 - f), both spin-degenerate and injected from the two contacts.
struct BipolarDensity {
  double electrons = 0.0;
  double holes = 0.0;
};

BipolarDensity bipolar_density(double a_l, double a_r, double energy, double u, double f1,
                               double f2) {
  BipolarDensity d;
  if (energy >= u) {
    d.electrons = 2.0 * (a_l * f1 + a_r * f2) / kTwoPi;
  } else {
    d.holes = 2.0 * (a_l * (1.0 - f1) + a_r * (1.0 - f2)) / kTwoPi;
  }
  return d;
}

/// Integration window: explicit override when the caller set one, else
/// the automatic bipolar charge window.
EnergyWindow resolve_window(const TransportOptions& opts, double u_min, double u_max,
                            double band_top) {
  if (std::isfinite(opts.window_lo_eV) && std::isfinite(opts.window_hi_eV)) {
    EnergyWindow w;
    w.lo = opts.window_lo_eV;
    w.hi = opts.window_hi_eV;
    return w;
  }
  return charge_window(u_min, u_max, opts.mu_source_eV, opts.mu_drain_eV, opts.kT_eV, band_top);
}

/// Indices of `points` (ascending) inside [lo_cut, hi_cut]: the same set
/// the per-energy predicate `e < lo_cut || e > hi_cut` would keep, hoisted
/// to one binary search per mode.
std::pair<size_t, size_t> index_window(const std::vector<double>& points, double lo_cut,
                                       double hi_cut) {
  const auto lo = std::lower_bound(points.begin(), points.end(), lo_cut);
  const auto hi = std::upper_bound(points.begin(), points.end(), hi_cut);
  return {static_cast<size_t>(lo - points.begin()), static_cast<size_t>(hi - points.begin())};
}

/// Per-chunk accumulator for one mode's slice of the energy grid.
struct ModePartial {
  double current = 0.0;
  double current_reverse = 0.0;
  std::vector<double> col_n, col_p;
};

}  // namespace

NegfGridKind negf_grid_from_env() {
  const std::string s = common::env_or("GNRFET_NEGF_GRID", "adaptive");
  if (s == "uniform") return NegfGridKind::kUniform;
  if (s == "adaptive") return NegfGridKind::kAdaptive;
  throw std::invalid_argument("GNRFET_NEGF_GRID must be 'uniform' or 'adaptive', got '" + s +
                              "'");
}

TransportSolution solve_mode_space(const gnr::ModeSet& modes,
                                   const std::vector<std::vector<double>>& potential_eV,
                                   const TransportOptions& opts) {
  TransportContext ctx;
  return solve_mode_space(modes, potential_eV, opts, ctx);
}

TransportSolution solve_mode_space(const gnr::ModeSet& modes,
                                   const std::vector<std::vector<double>>& potential_eV,
                                   const TransportOptions& opts, TransportContext& ctx) {
  trace::Span span("negf", "solve_mode_space");
  const size_t ncol = potential_eV.size();
  const size_t nlines = static_cast<size_t>(modes.n_index);
  if (ncol < 4) throw std::invalid_argument("solve_mode_space: need >= 4 columns");
  for (const auto& col : potential_eV) {
    if (col.size() != nlines) {
      throw std::invalid_argument("solve_mode_space: potential must be [columns][N]");
    }
  }
  GNRFET_REQUIRE("negf", "finite-potential", contracts::all_finite(potential_eV),
                 "mid-gap potential contains NaN/inf (diverged Poisson input?)");

  // Mode-averaged potential per column, and window bounds.
  std::vector<std::vector<double>> u_mode(modes.modes.size(), std::vector<double>(ncol, 0.0));
  double u_min = 1e300, u_max = -1e300, band_top = 0.0;
  for (size_t p = 0; p < modes.modes.size(); ++p) {
    const auto& m = modes.modes[p];
    band_top = std::max(band_top, m.band_top_eV());
    for (size_t c = 0; c < ncol; ++c) {
      double u = 0.0;
      for (size_t j = 0; j < nlines; ++j) u += m.weight[j] * potential_eV[c][j];
      u_mode[p][c] = u;
      u_min = std::min(u_min, u);
      u_max = std::max(u_max, u);
    }
  }

  const NegfGridKind kind = negf_grid_from_env();
  // Batched SoA kernel vs legacy per-energy solves: read once per solve,
  // shared by every chunk. Either branch is bit-identical (the batch
  // kernel's contract), so this only selects throughput.
  const bool batch = rgf_batch_enabled();
  const EnergyWindow win = resolve_window(opts, u_min, u_max, band_top);
  const EnergyGrid grid = make_energy_grid(win.lo, win.hi, opts.energy_step_eV);

  TransportSolution sol;
  sol.electrons.assign(ncol, std::vector<double>(nlines, 0.0));
  sol.holes.assign(ncol, std::vector<double>(nlines, 0.0));
  if (kind == NegfGridKind::kUniform) {
    sol.energies_eV = grid.points;
    sol.transmission.assign(grid.points.size(), 0.0);
    metrics::add(metrics::Counter::kNegfEnergyPoints, grid.points.size());
    metrics::observe(metrics::Histogram::kEnergyPointsPerTransport,
                     static_cast<double>(grid.points.size()));
  }

  // Per-mode chains are static except for onsite; reuse buffers.
  ScalarChain chain;
  chain.onsite.resize(ncol);
  chain.hopping.resize(ncol - 1);
  chain.gamma_left = opts.gamma_contact_eV;
  chain.gamma_right = opts.gamma_contact_eV;

  double current_integral = 0.0;          // Integral T (f1 - f2) dE
  double current_integral_reverse = 0.0;  // Same, from drain-side transmissions

  // Adaptive bookkeeping: merged (energy -> summed deg * T) diagnostic and
  // total evaluations across modes.
  std::map<double, double> merged_transmission;
  size_t adaptive_points = 0;
  if (kind == NegfGridKind::kAdaptive && ctx.mode_edges.size() != modes.modes.size()) {
    ctx.mode_edges.assign(modes.modes.size(), {});
  }

  for (size_t p = 0; p < modes.modes.size(); ++p) {
    const auto& m = modes.modes[p];
    for (size_t c = 0; c + 1 < ncol; ++c) {
      // Columns pair into dimers within a slice: bond (2m -> 2m+1) is the
      // dimer hopping, (2m+1 -> 2m+2) the staircase hopping.
      chain.hopping[c] = (c % 2 == 0) ? -m.t_dimer : -m.t_stair;
    }
    for (size_t c = 0; c < ncol; ++c) chain.onsite[c] = u_mode[p][c];

    // Energies with no propagating/evanescent weight anywhere in this mode
    // — outside [u_min - band_top, u_max + band_top] plus margin — carry a
    // negligible spectral function and are skipped. The uniform path uses
    // the global u range (the pre-adaptive predicate, kept bit-identical);
    // the adaptive path tightens to the mode's own onsite range.
    const double skip_lo = u_min - m.band_top_eV() - kSupportMargin_eV;
    const double skip_hi = u_max + m.band_top_eV() + kSupportMargin_eV;

    if (kind == NegfGridKind::kUniform) {
      // Hoist the skip predicate to an index range: the set of solved
      // energies — and the chunk layout of the reduction — is exactly the
      // pre-adaptive one, so partial sums fold identically.
      const auto [i_lo, i_hi] = index_window(grid.points, skip_lo, skip_hi);
      ModePartial init;
      init.col_n.assign(ncol, 0.0);
      init.col_p.assign(ncol, 0.0);
      const ModePartial mode_sum = par::parallel_reduce_ordered<ModePartial>(
          grid.points.size(), kEnergyGrain, std::move(init),
          [&, i_lo = i_lo, i_hi = i_hi](size_t begin, size_t end) {
            ModePartial part;
            part.col_n.assign(ncol, 0.0);
            part.col_p.assign(ncol, 0.0);
            const size_t e_begin = std::max(begin, i_lo);
            const size_t e_end = std::min(end, i_hi);
            const size_t nsolve = e_end > e_begin ? e_end - e_begin : 0;
            if (nsolve > 0) {
              // Fermi factors hoisted out of the accumulation loop: the
              // same per-energy constants::fermi calls, precomputed once
              // per chunk and shared by the batched and legacy branches.
              thread_local std::vector<double> f1v, f2v;
              f1v.resize(nsolve);
              f2v.resize(nsolve);
              fermi_factors(grid.points.data() + e_begin, nsolve, opts.mu_source_eV, opts.kT_eV,
                            f1v.data());
              fermi_factors(grid.points.data() + e_begin, nsolve, opts.mu_drain_eV, opts.kT_eV,
                            f2v.data());
              if (batch) {
                // One SoA kernel call for the whole chunk; lane k holds the
                // bit-identical result of the per-energy solve at e_begin+k.
                thread_local ScalarRgfBatchWorkspace bws;
                thread_local ScalarRgfBatchResult br;
                scalar_rgf_solve_batch(chain, grid.points.data() + e_begin, nsolve, opts.eta_eV,
                                       bws, br);
                for (size_t k = 0; k < nsolve; ++k) {
                  const size_t ie = e_begin + k;
                  const double e = grid.points[ie];
                  const double w = grid.weights[ie];
                  sol.transmission[ie] += m.degeneracy * br.transmission[k];
                  const double f1 = f1v[k];
                  const double f2 = f2v[k];
                  part.current += w * m.degeneracy * br.transmission[k] * (f1 - f2);
                  part.current_reverse +=
                      w * m.degeneracy * br.transmission_reverse[k] * (f1 - f2);
                  for (size_t c = 0; c < ncol; ++c) {
                    const BipolarDensity d =
                        bipolar_density(br.spectral_left_row(c)[k], br.spectral_right_row(c)[k],
                                        e, u_mode[p][c], f1, f2);
                    part.col_n[c] += w * m.degeneracy * d.electrons;
                    part.col_p[c] += w * m.degeneracy * d.holes;
                  }
                }
              } else {
                // One workspace per thread, reused across every energy,
                // mode, and solve: the RGF inner loop is allocation-free
                // once warm.
                thread_local ScalarRgfWorkspace ws;
                thread_local ScalarRgfResult r;
                for (size_t ie = e_begin; ie < e_end; ++ie) {
                  const double e = grid.points[ie];
                  const double w = grid.weights[ie];
                  scalar_rgf_solve(chain, e, opts.eta_eV, ws, r);
                  sol.transmission[ie] += m.degeneracy * r.transmission;
                  const double f1 = f1v[ie - e_begin];
                  const double f2 = f2v[ie - e_begin];
                  part.current += w * m.degeneracy * r.transmission * (f1 - f2);
                  part.current_reverse += w * m.degeneracy * r.transmission_reverse * (f1 - f2);
                  for (size_t c = 0; c < ncol; ++c) {
                    const BipolarDensity d = bipolar_density(r.spectral_left[c],
                                                             r.spectral_right[c], e,
                                                             u_mode[p][c], f1, f2);
                    part.col_n[c] += w * m.degeneracy * d.electrons;
                    part.col_p[c] += w * m.degeneracy * d.holes;
                  }
                }
              }
            }
            // One counter add per chunk, not per energy: metrics stay off
            // the innermost loop.
            metrics::add(metrics::Counter::kRgfSolves, static_cast<uint64_t>(nsolve));
            return part;
          },
          [](ModePartial& acc, ModePartial&& part) {
            acc.current += part.current;
            acc.current_reverse += part.current_reverse;
            for (size_t c = 0; c < acc.col_n.size(); ++c) {
              acc.col_n[c] += part.col_n[c];
              acc.col_p[c] += part.col_p[c];
            }
          });
      current_integral += mode_sum.current;
      current_integral_reverse += mode_sum.current_reverse;

      // Distribute the mode charge across dimer lines with the mode weights.
      for (size_t c = 0; c < ncol; ++c) {
        for (size_t j = 0; j < nlines; ++j) {
          sol.electrons[c][j] += mode_sum.col_n[c] * m.weight[j];
          sol.holes[c][j] += mode_sum.col_p[c] * m.weight[j];
        }
      }
      continue;
    }

    // ---- Adaptive path ----
    // Tighten to the mode's own support: its onsite energies span
    // [u_p_min, u_p_max], not the global u range.
    double u_p_min = 1e300, u_p_max = -1e300;
    for (size_t c = 0; c < ncol; ++c) {
      u_p_min = std::min(u_p_min, u_mode[p][c]);
      u_p_max = std::max(u_p_max, u_mode[p][c]);
    }
    const double mode_lo = std::max(win.lo, u_p_min - m.band_top_eV() - kSupportMargin_eV);
    const double mode_hi = std::min(win.hi, u_p_max + m.band_top_eV() + kSupportMargin_eV);
    // What the uniform path would have solved for this mode (its skip
    // range intersected with the uniform grid) — the baseline for the
    // points-saved metric.
    const auto [u_ilo, u_ihi] = index_window(grid.points, skip_lo, skip_hi);
    const size_t uniform_equiv = u_ihi > u_ilo ? u_ihi - u_ilo : 0;
    if (!(mode_hi - mode_lo > opts.energy_step_eV)) {
      // Mode entirely outside the integration window: zero contribution,
      // zero RGF solves.
      metrics::add(metrics::Counter::kNegfEnergyPointsSaved, uniform_equiv);
      continue;
    }

    // Component layout: [0] deg*T (diagnostic), [1] forward and [2]
    // reverse current integrands, [3, 3+2*ncol) smooth per-column spectral
    // charge: occupied (A f) and empty (A (1-f)) states. The bipolar
    // electron/hole split is NOT a component — it jumps at each column's
    // mid-gap u_c, and integrating it directly leaks Simpson error from
    // every panel touching a jump (the two panels meeting at a seeded u_c
    // share the endpoint value, which belongs to only one side). Instead,
    // the panel sink below assigns each retired panel's smooth occupied /
    // empty integrals to electrons or holes by the panel's position
    // relative to u_c; with u_c seeded as panel edges the split is exact.
    const size_t ncomp = 3 + 2 * ncol;
    const size_t i_nraw = 3, i_praw = 3 + ncol;
    std::vector<ErrorGroup> groups(2);
    groups[0] = {1, 3, 1e-12};
    groups[1] = {i_nraw, ncomp, 1e-12};

    // Initial panels: coarse composite-Simpson grid (or the previous
    // Gummel iteration's converged edges) plus physics breakpoints where
    // the integrand kinks — contact Fermi levels and the mode's subband
    // edges at both extremes of its onsite profile.
    std::vector<double> seeds;
    // Default coarse step: 80 meV (~3 kT at room temperature — Fermi-tail
    // and subband features wider than this are caught by the seeded
    // breakpoints, narrower ones by refinement), never finer than 8 fine
    // steps so a deliberately coarse uniform step stays the lower bound.
    const double coarse = opts.adaptive_coarse_step_eV > 0.0
                              ? opts.adaptive_coarse_step_eV
                              : std::max(0.08, 8.0 * opts.energy_step_eV);
    const std::vector<double>& warm = ctx.mode_edges[p];
    if (!warm.empty()) {
      seeds = warm;
    } else {
      const auto n_panels = static_cast<size_t>(std::ceil((mode_hi - mode_lo) / coarse));
      const double h = (mode_hi - mode_lo) / static_cast<double>(std::max<size_t>(2, n_panels));
      for (size_t k = 1; k * h < mode_hi - mode_lo; ++k) {
        seeds.push_back(mode_lo + h * static_cast<double>(k));
      }
    }
    const double breakpoints[] = {opts.mu_source_eV,
                                  opts.mu_drain_eV,
                                  u_p_min - m.band_edge_eV(),
                                  u_p_min + m.band_edge_eV(),
                                  u_p_max - m.band_edge_eV(),
                                  u_p_max + m.band_edge_eV()};
    seeds.insert(seeds.end(), std::begin(breakpoints), std::end(breakpoints));
    // Per-column structure: the spectral function spikes (eta-wide van
    // Hove remnants) at the local subband edges u_c +- band_edge, and the
    // mid-gaps u_c are where the panel sink splits electrons from holes.
    // A coarse panel can alias straight over an eta-wide spike — its
    // error estimate never sees it — so pin all three families to panel
    // edges; the quarter-point probes then land on the structure and
    // refinement takes over. Clustered to a quarter of the coarse step to
    // bound the panel count; mid-gaps that lose their own edge fall back
    // to the sink's linear split over an in-gap panel, where the spectral
    // weight is smallest.
    {
      const double resolution = std::max(opts.energy_step_eV, 0.25 * coarse);
      std::vector<double> marks;
      marks.reserve(3 * ncol);
      for (size_t c = 0; c < ncol; ++c) {
        marks.push_back(u_mode[p][c]);
        marks.push_back(u_mode[p][c] - m.band_edge_eV());
        marks.push_back(u_mode[p][c] + m.band_edge_eV());
      }
      std::sort(marks.begin(), marks.end());
      double last = -1e300;
      for (const double e : marks) {
        if (e - last >= resolution) {
          seeds.push_back(e);
          last = e;
        }
      }
    }

    AdaptiveOptions aopts;
    aopts.rel_tol = opts.adaptive_rel_tol;
    const BatchEval eval = [&](const std::vector<double>& energies,
                               std::vector<std::vector<double>>& values) {
      par::parallel_for_chunks(
          energies.size(), kEnergyGrain, [&](size_t, size_t begin, size_t end) {
            const size_t nsolve = end - begin;
            if (nsolve == 0) return;
            // Hoisted Fermi factors, shared by both branches (see the
            // uniform path).
            thread_local std::vector<double> f1v, f2v;
            f1v.resize(nsolve);
            f2v.resize(nsolve);
            fermi_factors(energies.data() + begin, nsolve, opts.mu_source_eV, opts.kT_eV,
                          f1v.data());
            fermi_factors(energies.data() + begin, nsolve, opts.mu_drain_eV, opts.kT_eV,
                          f2v.data());
            if (batch) {
              // The refinement round's stencil evaluations for this chunk
              // in one SoA kernel call; results scatter back into their
              // own slots in the existing ascending order, so the panel
              // bookkeeping (and thread-count determinism) is untouched.
              thread_local ScalarRgfBatchWorkspace bws;
              thread_local ScalarRgfBatchResult br;
              scalar_rgf_solve_batch(chain, energies.data() + begin, nsolve, opts.eta_eV, bws,
                                     br);
              for (size_t k = 0; k < nsolve; ++k) {
                const double f1 = f1v[k];
                const double f2 = f2v[k];
                std::vector<double>& v = values[begin + k];
                v.assign(ncomp, 0.0);
                v[0] = m.degeneracy * br.transmission[k];
                v[1] = m.degeneracy * br.transmission[k] * (f1 - f2);
                v[2] = m.degeneracy * br.transmission_reverse[k] * (f1 - f2);
                for (size_t c = 0; c < ncol; ++c) {
                  const double a_l = br.spectral_left_row(c)[k];
                  const double a_r = br.spectral_right_row(c)[k];
                  v[i_nraw + c] = m.degeneracy * 2.0 * (a_l * f1 + a_r * f2) / kTwoPi;
                  v[i_praw + c] =
                      m.degeneracy * 2.0 * (a_l * (1.0 - f1) + a_r * (1.0 - f2)) / kTwoPi;
                }
              }
            } else {
              thread_local ScalarRgfWorkspace ws;
              thread_local ScalarRgfResult r;
              for (size_t k = begin; k < end; ++k) {
                const double e = energies[k];
                scalar_rgf_solve(chain, e, opts.eta_eV, ws, r);
                const double f1 = f1v[k - begin];
                const double f2 = f2v[k - begin];
                std::vector<double>& v = values[k];
                v.assign(ncomp, 0.0);
                v[0] = m.degeneracy * r.transmission;
                v[1] = m.degeneracy * r.transmission * (f1 - f2);
                v[2] = m.degeneracy * r.transmission_reverse * (f1 - f2);
                for (size_t c = 0; c < ncol; ++c) {
                  const double a_l = r.spectral_left[c];
                  const double a_r = r.spectral_right[c];
                  v[i_nraw + c] = m.degeneracy * 2.0 * (a_l * f1 + a_r * f2) / kTwoPi;
                  v[i_praw + c] =
                      m.degeneracy * 2.0 * (a_l * (1.0 - f1) + a_r * (1.0 - f2)) / kTwoPi;
                }
              }
            }
            metrics::add(metrics::Counter::kRgfSolves, static_cast<uint64_t>(nsolve));
          });
    };
    // Panel-aligned bipolar split: a retired panel entirely above column
    // c's mid-gap contributes its occupied-state integral to electrons,
    // one entirely below contributes its empty-state integral to holes.
    // u_c is seeded as a panel edge (splits only add edges, so it stays
    // one), making the split exact for every un-clustered column; a panel
    // straddling a clustered-away u_c (within one energy_step of a kept
    // seed) is split linearly — an O(step * A) remainder.
    std::vector<double> mode_el(ncol, 0.0), mode_hl(ncol, 0.0);
    const PanelSink sink = [&](double a, double b, const std::vector<double>& contrib) {
      for (size_t c = 0; c < ncol; ++c) {
        const double u_c = u_mode[p][c];
        if (a >= u_c) {
          mode_el[c] += contrib[i_nraw + c];
        } else if (b <= u_c) {
          mode_hl[c] += contrib[i_praw + c];
        } else {
          const double frac = (b - u_c) / (b - a);
          mode_el[c] += frac * contrib[i_nraw + c];
          mode_hl[c] += (1.0 - frac) * contrib[i_praw + c];
        }
      }
    };
    const AdaptiveResult res =
        adaptive_integrate(mode_lo, mode_hi, ncomp, seeds, groups, aopts, eval, sink);
    ctx.mode_edges[p] = res.edges;

    current_integral += res.integrals[1];
    current_integral_reverse += res.integrals[2];
    for (size_t c = 0; c < ncol; ++c) {
      for (size_t j = 0; j < nlines; ++j) {
        sol.electrons[c][j] += mode_el[c] * m.weight[j];
        sol.holes[c][j] += mode_hl[c] * m.weight[j];
      }
    }
    for (size_t k = 0; k < res.points.size(); ++k) {
      merged_transmission[res.points[k]] += res.first_component[k];
    }
    adaptive_points += res.evaluations;
    metrics::add(metrics::Counter::kNegfEnergyPoints, res.evaluations);
    if (res.evaluations < uniform_equiv) {
      metrics::add(metrics::Counter::kNegfEnergyPointsSaved, uniform_equiv - res.evaluations);
    }
    for (size_t d = 0; d < res.depth_counts.size(); ++d) {
      for (uint32_t k = 0; k < res.depth_counts[d]; ++k) {
        metrics::observe(metrics::Histogram::kAdaptiveRefinementDepth,
                         static_cast<double>(d));
      }
    }
  }

  if (kind == NegfGridKind::kAdaptive) {
    sol.energies_eV.reserve(merged_transmission.size());
    sol.transmission.reserve(merged_transmission.size());
    for (const auto& [e, t] : merged_transmission) {
      sol.energies_eV.push_back(e);
      sol.transmission.push_back(t);
    }
    metrics::observe(metrics::Histogram::kEnergyPointsPerTransport,
                     static_cast<double>(adaptive_points));
  }

  sol.current_A = constants::kCurrentPrefactor * current_integral;
  sol.current_drain_A = constants::kCurrentPrefactor * current_integral_reverse;
  for (size_t c = 0; c < ncol; ++c) {
    for (size_t j = 0; j < nlines; ++j) {
      sol.total_net_electrons += sol.electrons[c][j] - sol.holes[c][j];
    }
  }
  GNRFET_ENSURE("negf", "finite-current",
                std::isfinite(sol.current_A) && std::isfinite(sol.total_net_electrons),
                strings::format("current_A = %g, net electrons = %g", sol.current_A,
                                sol.total_net_electrons));
  return sol;
}

TransportSolution solve_real_space(const gnr::Lattice& lat,
                                   const gnr::TightBindingParams& params,
                                   const std::vector<double>& onsite_eV,
                                   const TransportOptions& opts) {
  trace::Span span("negf", "solve_real_space");
  const gnr::BlockTridiagonal h = build_hamiltonian(lat, params, onsite_eV);
  const size_t nb = h.num_blocks();
  const auto& slices = lat.slice_atoms();

  double u_min = 1e300, u_max = -1e300;
  for (const double u : onsite_eV) {
    u_min = std::min(u_min, u);
    u_max = std::max(u_max, u);
  }
  const double band_top = 3.0 * params.hopping_eV * (1.0 + params.edge_delta);
  // The real-space path is the validation/reference solver: it always
  // integrates on the uniform grid regardless of GNRFET_NEGF_GRID (the
  // adaptive layer serves the mode-space production path).
  const EnergyWindow win = resolve_window(opts, u_min, u_max, band_top);
  const EnergyGrid grid = make_energy_grid(win.lo, win.hi, opts.energy_step_eV);
  metrics::add(metrics::Counter::kNegfEnergyPoints, grid.points.size());
  metrics::observe(metrics::Histogram::kEnergyPointsPerTransport,
                   static_cast<double>(grid.points.size()));

  const linalg::CMatrix sig_l = wide_band_self_energy(h.diag.front().rows(), opts.gamma_contact_eV);
  const linalg::CMatrix sig_r = wide_band_self_energy(h.diag.back().rows(), opts.gamma_contact_eV);
  const bool batch = rgf_batch_enabled();

  TransportSolution sol;
  sol.energies_eV = grid.points;
  sol.transmission.assign(grid.points.size(), 0.0);

  /// Per-chunk accumulator over the real-space energy grid.
  struct RealPartial {
    double current = 0.0;
    std::vector<double> n_atom, p_atom;
  };
  const size_t natoms = lat.atoms().size();

  // Parallel over energies (one block-RGF solve each); transmission writes
  // are disjoint per ie and the charge/current partials fold in fixed
  // chunk order — bit-identical for any thread count.
  RealPartial init;
  init.n_atom.assign(natoms, 0.0);
  init.p_atom.assign(natoms, 0.0);
  GNRFET_REQUIRE("negf", "finite-potential", contracts::all_finite(onsite_eV),
                 "onsite energy array contains NaN/inf (diverged Poisson input?)");
  const RealPartial sum = par::parallel_reduce_ordered<RealPartial>(
      grid.points.size(), kEnergyGrain, std::move(init),
      [&](size_t begin, size_t end) {
        RealPartial part;
        part.n_atom.assign(natoms, 0.0);
        part.p_atom.assign(natoms, 0.0);
        const size_t nsolve = end - begin;
        if (nsolve > 0) {
          // Fermi factors hoisted per chunk, shared by both branches (see
          // solve_mode_space).
          thread_local std::vector<double> f1v, f2v;
          f1v.resize(nsolve);
          f2v.resize(nsolve);
          fermi_factors(grid.points.data() + begin, nsolve, opts.mu_source_eV, opts.kT_eV,
                        f1v.data());
          fermi_factors(grid.points.data() + begin, nsolve, opts.mu_drain_eV, opts.kT_eV,
                        f2v.data());
          // One accumulation pass over per-energy results, fed either by
          // the batched kernel (one call per chunk, energy-independent
          // block work hoisted) or by the legacy per-energy solves.
          thread_local RgfBatchWorkspace bws;
          thread_local std::vector<RgfResult> rs;
          thread_local RgfWorkspace ws;
          if (batch) {
            rgf_solve_batch(h, grid.points.data() + begin, nsolve, opts.eta_eV, sig_l, sig_r,
                            bws, rs);
          } else {
            rs.resize(nsolve);
            for (size_t k = 0; k < nsolve; ++k) {
              rgf_solve(h, grid.points[begin + k], opts.eta_eV, sig_l, sig_r, ws, rs[k]);
            }
          }
          for (size_t k = 0; k < nsolve; ++k) {
            const size_t ie = begin + k;
            const double e = grid.points[ie];
            const double w = grid.weights[ie];
            const RgfResult& r = rs[k];
            sol.transmission[ie] = r.transmission;
            const double f1 = f1v[k];
            const double f2 = f2v[k];
            part.current += w * r.transmission * (f1 - f2);
            size_t orb = 0;
            for (size_t b = 0; b < nb; ++b) {
              for (const size_t atom : slices[b]) {
                const BipolarDensity d = bipolar_density(r.spectral_left[orb],
                                                         r.spectral_right[orb], e,
                                                         onsite_eV[atom], f1, f2);
                part.n_atom[atom] += w * d.electrons;
                part.p_atom[atom] += w * d.holes;
                ++orb;
              }
            }
          }
        }
        metrics::add(metrics::Counter::kRgfSolves, static_cast<uint64_t>(nsolve));
        return part;
      },
      [](RealPartial& acc, RealPartial&& part) {
        acc.current += part.current;
        for (size_t a = 0; a < acc.n_atom.size(); ++a) {
          acc.n_atom[a] += part.n_atom[a];
          acc.p_atom[a] += part.p_atom[a];
        }
      });
  const std::vector<double>& n_per_atom = sum.n_atom;
  const std::vector<double>& p_per_atom = sum.p_atom;
  sol.current_A = constants::kCurrentPrefactor * sum.current;
  sol.current_drain_A = sol.current_A;  // block RGF has no independent drain-side solve

  // Resolve per (column, dimer line): each slice holds two columns; the
  // column of an atom follows from its x offset within the slice.
  const size_t ncol = lat.column_x_nm().size();
  sol.electrons.assign(ncol, std::vector<double>(static_cast<size_t>(lat.n_index()), 0.0));
  sol.holes.assign(ncol, std::vector<double>(static_cast<size_t>(lat.n_index()), 0.0));
  for (size_t a = 0; a < lat.atoms().size(); ++a) {
    const auto& atom = lat.atoms()[a];
    const size_t col = static_cast<size_t>(2 * atom.slice) +
                       (std::abs(atom.x_nm - lat.column_x_nm()[static_cast<size_t>(2 * atom.slice)]) < 1e-9 ? 0 : 1);
    sol.electrons[col][static_cast<size_t>(atom.dimer_line)] += n_per_atom[a];
    sol.holes[col][static_cast<size_t>(atom.dimer_line)] += p_per_atom[a];
    sol.total_net_electrons += n_per_atom[a] - p_per_atom[a];
  }
  return sol;
}

}  // namespace gnrfet::negf
