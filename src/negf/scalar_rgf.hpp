#pragma once

#include <complex>
#include <vector>

/// Scalar recursive Green's function for 1D chains — the fast path used by
/// the uncoupled mode-space solver. Each transverse subband of the A-GNR is
/// an SSH-like chain (alternating real hoppings) with one orbital per
/// atomic column, so all RGF blocks are 1x1.
namespace gnrfet::negf {

struct ScalarChain {
  /// Onsite energies per site (eV); size L.
  std::vector<double> onsite;
  /// Hoppings between site c and c+1 (eV); size L-1.
  std::vector<double> hopping;
  /// Contact broadenings (eV) on the first and last site (wide-band).
  double gamma_left = 0.0;
  double gamma_right = 0.0;
};

struct ScalarRgfResult {
  double transmission = 0.0;
  /// Transmission computed independently from the drain side (right-
  /// connected sweep). Equal to `transmission` up to roundoff in the
  /// ballistic limit; the contract layer uses the mismatch as the
  /// source/drain current-continuity check. When contract checks are
  /// compiled out (GNRFET_CHECKS=OFF) the extra sweep is skipped and this
  /// aliases `transmission`.
  double transmission_reverse = 0.0;
  std::vector<double> spectral_left;   ///< A_L,cc per site
  std::vector<double> spectral_right;  ///< A_R,cc per site
};

/// Caller-owned scratch for scalar_rgf_solve (à la linalg::PcgWorkspace):
/// the left/right-connected sweeps and full-Green buffers. Reusing one
/// workspace across the energy loop makes the per-energy solve
/// allocation-free after the first call; contents carry no state between
/// solves, so reuse cannot change results.
struct ScalarRgfWorkspace {
  std::vector<std::complex<double>> gl;    ///< left-connected g
  std::vector<std::complex<double>> gd;    ///< full-G diagonal
  std::vector<std::complex<double>> gcol;  ///< last-column G elements
  std::vector<std::complex<double>> gr;    ///< right-connected sweep (checks)
};

/// Solve the chain at E + i*eta.
ScalarRgfResult scalar_rgf_solve(const ScalarChain& chain, double energy_eV, double eta_eV);

/// Workspace variant: identical arithmetic (bit-for-bit equal results),
/// zero heap allocation once `ws` and `out` have warmed to the chain
/// length. `out`'s spectral vectors are resized, scalars overwritten.
void scalar_rgf_solve(const ScalarChain& chain, double energy_eV, double eta_eV,
                      ScalarRgfWorkspace& ws, ScalarRgfResult& out);

}  // namespace gnrfet::negf
