#include "negf/scalar_rgf.hpp"

#include <stdexcept>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace gnrfet::negf {

using cplx = std::complex<double>;

ScalarRgfResult scalar_rgf_solve(const ScalarChain& chain, double energy_eV, double eta_eV) {
  ScalarRgfWorkspace ws;
  ScalarRgfResult out;
  scalar_rgf_solve(chain, energy_eV, eta_eV, ws, out);
  return out;
}

void scalar_rgf_solve(const ScalarChain& chain, double energy_eV, double eta_eV,
                      ScalarRgfWorkspace& ws, ScalarRgfResult& out) {
  const size_t n = chain.onsite.size();
  if (n < 2) throw std::invalid_argument("scalar_rgf: need >= 2 sites");
  if (chain.hopping.size() != n - 1) {
    throw std::invalid_argument("scalar_rgf: hopping size mismatch");
  }
  GNRFET_REQUIRE("negf", "finite-chain",
                 contracts::all_finite(chain.onsite) && contracts::all_finite(chain.hopping) &&
                     std::isfinite(chain.gamma_left) && std::isfinite(chain.gamma_right),
                 "scalar chain contains NaN/inf onsite or hopping energies");
  GNRFET_REQUIRE("negf", "positive-broadening", eta_eV > 0.0 && std::isfinite(eta_eV),
                 strings::format("eta_eV = %g must be finite and > 0", eta_eV));
  const cplx e(energy_eV, eta_eV);
  const cplx sig_l(0.0, -0.5 * chain.gamma_left);
  const cplx sig_r(0.0, -0.5 * chain.gamma_right);

  // Forward: left-connected g.
  std::vector<cplx>& gl = ws.gl;
  gl.resize(n);
  gl[0] = 1.0 / (e - chain.onsite[0] - sig_l);
  for (size_t c = 1; c < n; ++c) {
    cplx a = e - chain.onsite[c];
    if (c == n - 1) a -= sig_r;
    const double v = chain.hopping[c - 1];
    a -= v * v * gl[c - 1];
    gl[c] = 1.0 / a;
  }

  // Backward: full diagonal plus the last-column elements
  // G_{c,last} = -gL_c A_{c,c+1} G_{c+1,last} with A = -H.
  std::vector<cplx>& gd = ws.gd;
  std::vector<cplx>& gcol = ws.gcol;
  gd.resize(n);
  gcol.resize(n);
  gd[n - 1] = gl[n - 1];
  gcol[n - 1] = gl[n - 1];
  for (size_t c = n - 1; c-- > 0;) {
    const double v = chain.hopping[c];
    gd[c] = gl[c] + gl[c] * v * gd[c + 1] * v * gl[c];
    gcol[c] = gl[c] * v * gcol[c + 1];
  }

  out.transmission = chain.gamma_left * chain.gamma_right * std::norm(gcol[0]);
  out.transmission_reverse = out.transmission;
  // One transverse subband carries at most one conductance quantum:
  // 0 <= T(E) <= 1 for any chain with these wide-band contacts.
  GNRFET_ENSURE("negf", "transmission-positive",
                std::isfinite(out.transmission) && out.transmission >= -1e-9 &&
                    out.transmission <= 1.0 + 1e-6,
                strings::format("scalar T(E=%g) = %g outside [0, 1]", energy_eV,
                                out.transmission));
  out.spectral_left.resize(n);
  out.spectral_right.resize(n);
  for (size_t c = 0; c < n; ++c) {
    const double a_tot = -2.0 * gd[c].imag();
    const double a_r = chain.gamma_right * std::norm(gcol[c]);
    // Diagonal spectral sum rule: A_cc >= (A_R)_cc >= 0 up to roundoff.
    GNRFET_ENSURE("negf", "spectral-sum-rule",
                  std::isfinite(a_tot) &&
                      a_tot - a_r >= -1e-9 * (1.0 + std::abs(a_tot) + a_r),
                  strings::format("site %zu: A_tot = %g, A_R = %g at E = %g", c, a_tot, a_r,
                                  energy_eV));
    out.spectral_right[c] = a_r;
    out.spectral_left[c] = std::max(0.0, a_tot - a_r);
  }
#if GNRFET_CHECKS_ENABLED
  // Independent drain-side solve: right-connected sweep, then the mirrored
  // column G_{n-1,0}. In exact arithmetic G_{0,n-1} = G_{n-1,0} (the chain
  // Hamiltonian is complex-symmetric), so the two transmissions agree; the
  // mismatch is the per-energy source/drain current-continuity contract.
  {
    std::vector<cplx>& gr = ws.gr;
    gr.resize(n);
    gr[n - 1] = 1.0 / (e - chain.onsite[n - 1] - sig_r);
    for (size_t c = n - 1; c-- > 0;) {
      cplx a = e - chain.onsite[c];
      if (c == 0) a -= sig_l;
      const double v = chain.hopping[c];
      a -= v * v * gr[c + 1];
      gr[c] = 1.0 / a;
    }
    cplx grow = gr[0];  // G_{0,0} of the right-connected chain... accumulate G_{c,0}
    for (size_t c = 1; c < n; ++c) grow = gr[c] * chain.hopping[c - 1] * grow;
    out.transmission_reverse = chain.gamma_left * chain.gamma_right * std::norm(grow);
    const double mismatch = std::abs(out.transmission - out.transmission_reverse);
    GNRFET_ENSURE("negf", "reciprocal-transmission",
                  mismatch <= 1e-6 * (out.transmission + out.transmission_reverse + 1e-9),
                  strings::format("T_forward = %.12g vs T_reverse = %.12g at E = %g",
                                  out.transmission, out.transmission_reverse, energy_eV));
  }
#endif
}

}  // namespace gnrfet::negf
