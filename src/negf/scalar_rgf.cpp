#include "negf/scalar_rgf.hpp"

#include <stdexcept>

namespace gnrfet::negf {

using cplx = std::complex<double>;

ScalarRgfResult scalar_rgf_solve(const ScalarChain& chain, double energy_eV, double eta_eV) {
  const size_t n = chain.onsite.size();
  if (n < 2) throw std::invalid_argument("scalar_rgf: need >= 2 sites");
  if (chain.hopping.size() != n - 1) {
    throw std::invalid_argument("scalar_rgf: hopping size mismatch");
  }
  const cplx e(energy_eV, eta_eV);
  const cplx sig_l(0.0, -0.5 * chain.gamma_left);
  const cplx sig_r(0.0, -0.5 * chain.gamma_right);

  // Forward: left-connected g.
  std::vector<cplx> gl(n);
  gl[0] = 1.0 / (e - chain.onsite[0] - sig_l);
  for (size_t c = 1; c < n; ++c) {
    cplx a = e - chain.onsite[c];
    if (c == n - 1) a -= sig_r;
    const double v = chain.hopping[c - 1];
    a -= v * v * gl[c - 1];
    gl[c] = 1.0 / a;
  }

  // Backward: full diagonal plus the last-column elements
  // G_{c,last} = -gL_c A_{c,c+1} G_{c+1,last} with A = -H.
  std::vector<cplx> gd(n), gcol(n);
  gd[n - 1] = gl[n - 1];
  gcol[n - 1] = gl[n - 1];
  for (size_t c = n - 1; c-- > 0;) {
    const double v = chain.hopping[c];
    gd[c] = gl[c] + gl[c] * v * gd[c + 1] * v * gl[c];
    gcol[c] = gl[c] * v * gcol[c + 1];
  }

  ScalarRgfResult r;
  r.transmission = chain.gamma_left * chain.gamma_right * std::norm(gcol[0]);
  r.spectral_left.resize(n);
  r.spectral_right.resize(n);
  for (size_t c = 0; c < n; ++c) {
    const double a_tot = -2.0 * gd[c].imag();
    const double a_r = chain.gamma_right * std::norm(gcol[c]);
    r.spectral_right[c] = a_r;
    r.spectral_left[c] = std::max(0.0, a_tot - a_r);
  }
  return r;
}

}  // namespace gnrfet::negf
