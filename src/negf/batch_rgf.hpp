#pragma once

#include <cstddef>
#include <vector>

#include "negf/scalar_rgf.hpp"

/// SIMD-batched scalar RGF: solve one ScalarChain at B energies in a single
/// kernel call. All sweep state is laid out structure-of-arrays over an
/// energy "lane" dimension — `gl/gd/gcol` become [site][lane] planes of
/// split real/imaginary arrays — so the site recurrence, which is
/// sequential over sites but embarrassingly independent across energies,
/// auto-vectorizes across lanes.
///
/// Determinism contract: every lane performs arithmetic identical to
/// scalar_rgf_solve at that energy — the same operations in the same order,
/// with complex multiplies expanded to the naive (ac - bd, ad + bc) form
/// the compiler emits for finite std::complex products, and complex
/// reciprocals through a branchless Smith kernel that reproduces libgcc's
/// __divdc3 bit-for-bit for in-range operands (verified once per process
/// against std::complex division over a probe grid spanning both Smith
/// branches and extreme magnitudes; on any mismatch the kernel drops to
/// per-lane std::complex division, which is bit-identical by construction).
/// Results are therefore bit-equal to the per-energy scalar path for any
/// batch width, including ragged remainders — locked by tests.
namespace gnrfet::negf {

/// SoA lane width of one kernel group. Batches wider than this are
/// processed in groups of kRgfBatchLanes; ragged groups are padded by
/// replicating the group's first energy (padding lanes are computed but
/// never read back, and never contract-checked).
inline constexpr size_t kRgfBatchLanes = 8;

/// True unless GNRFET_RGF_BATCH=off. `off` pins the legacy per-energy
/// scalar path (bit-for-bit the PR-5 behavior); `on` (default) routes the
/// transport hot loops through the batch kernels. Throws
/// std::invalid_argument on any other value.
bool rgf_batch_enabled();

/// True when the branchless Smith reciprocal passed the one-time
/// self-check against std::complex division and the batch kernel runs
/// fully vectorized; false means it fell back to per-lane std::complex
/// division (bit-correct on any toolchain, slower). Exposed for the
/// bench/CI perf gates.
bool rgf_batch_uses_fast_reciprocal();

/// Results of one batched solve. Per-lane scalars are indexed [lane];
/// spectral planes are [site * lanes() + lane] (lane-major within a site)
/// so the transport accumulation loop reads one site across the batch as
/// a contiguous stripe.
struct ScalarRgfBatchResult {
  std::vector<double> transmission;          ///< [lane]
  std::vector<double> transmission_reverse;  ///< [lane]; aliases transmission
                                             ///< bit-for-bit when contract
                                             ///< checks are compiled out
  std::vector<double> spectral_left;         ///< [site * lanes + lane]
  std::vector<double> spectral_right;        ///< [site * lanes + lane]

  size_t lanes() const { return transmission.size(); }

  const double* spectral_left_row(size_t site) const {
    return spectral_left.data() + site * lanes();
  }
  const double* spectral_right_row(size_t site) const {
    return spectral_right.data() + site * lanes();
  }
};

/// Caller-owned scratch (à la ScalarRgfWorkspace): the SoA sweep planes of
/// one kernel group. Contents carry no state between solves; reuse across
/// the energy loop makes batched solves allocation-free once warm.
struct ScalarRgfBatchWorkspace {
  std::vector<double> gl_re, gl_im;      ///< left-connected g planes
  std::vector<double> gd_re, gd_im;      ///< full-G diagonal planes
  std::vector<double> gcol_re, gcol_im;  ///< last-column G planes
  std::vector<double> gr_re, gr_im;      ///< right-connected planes (checks)
};

/// Solve `chain` at `energies_eV[0..count)` + i*eta in one call. Each
/// lane's outputs are bit-identical to scalar_rgf_solve at that energy;
/// `out` is resized and overwritten. `count` may be any size >= 1
/// (processed in groups of kRgfBatchLanes).
void scalar_rgf_solve_batch(const ScalarChain& chain, const double* energies_eV, size_t count,
                            double eta_eV, ScalarRgfBatchWorkspace& ws,
                            ScalarRgfBatchResult& out);

/// Fermi factors for a batch of energies: out[k] = fermi(e[k] - mu, kT),
/// the exact per-energy calls of the transport accumulation loops hoisted
/// into one precomputed array (bit-identical by construction). Shared by
/// the uniform, adaptive, and real-space paths.
void fermi_factors(const double* energies_eV, size_t count, double mu_eV, double kT_eV,
                   double* out);

}  // namespace gnrfet::negf
