#include "model/extrinsic_fet.hpp"

namespace gnrfet::model {

Parasitics Parasitics::from_per_width(double c_aF_per_nm, double contact_width_nm,
                                      double rs_ohm, double rd_ohm) {
  Parasitics p;
  p.rs_ohm = rs_ohm;
  p.rd_ohm = rd_ohm;
  p.cgs_e_F = c_aF_per_nm * 1e-18 * contact_width_nm;
  p.cgd_e_F = p.cgs_e_F;
  return p;
}

ExtrinsicFet make_extrinsic(ArrayFet array, const Parasitics& parasitics) {
  return {std::make_shared<ArrayFet>(std::move(array)), parasitics};
}

ExtrinsicFet make_extrinsic(std::shared_ptr<const ChannelModel> channel,
                            const Parasitics& parasitics) {
  return {std::move(channel), parasitics};
}

}  // namespace gnrfet::model
