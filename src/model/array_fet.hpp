#pragma once

#include <vector>

#include "model/intrinsic_fet.hpp"

/// The paper's extrinsic GNRFET channel is an array of 4 equidistant GNRs
/// at 10 nm pitch sharing one gate and 40 nm-wide contacts. Currents and
/// charges add across the array; the variability study (Secs. 4-5) mixes
/// nominal and affected GNRs in the same array (1-of-4 vs 4-of-4).
namespace gnrfet::model {

class ArrayFet final : public ChannelModel {
 public:
  /// All channels must share polarity and offset (one gate metal).
  explicit ArrayFet(std::vector<IntrinsicFet> channels);

  /// Uniform array of `count` identical channels.
  static ArrayFet uniform(const IntrinsicFet& channel, int count);

  /// Array with `count - affected` copies of `nominal` and `affected`
  /// copies of `variant` (the paper's 1-of-4 / 4-of-4 scenarios).
  static ArrayFet with_variants(const IntrinsicFet& nominal, const IntrinsicFet& variant,
                                int count, int affected);

  FetSample current(double vgs, double vds) const override;
  FetSample charge(double vgs, double vds) const override;
  Polarity polarity() const override;
  size_t size() const { return channels_.size(); }

 private:
  std::vector<IntrinsicFet> channels_;
};

}  // namespace gnrfet::model
