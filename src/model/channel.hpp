#pragma once

/// Abstract channel model consumed by the circuit simulator's FET element.
/// Implementations: the table-based GNR ArrayFet (model/array_fet.hpp) and
/// the calibrated CMOS compact model (cmos/compact_model.hpp), so GNRFET
/// and scaled-CMOS circuits run through the identical simulator (Table 1).
namespace gnrfet::model {

enum class Polarity { kN, kP };

struct FetSample {
  double value = 0.0;
  double d_dvgs = 0.0;
  double d_dvds = 0.0;
};

class ChannelModel {
 public:
  virtual ~ChannelModel() = default;
  /// Drain-source current [A] (positive drain->source), with partials.
  virtual FetSample current(double vgs, double vds) const = 0;
  /// Gate/channel charge [C], with partials (capacitance extraction).
  virtual FetSample charge(double vgs, double vds) const = 0;
  virtual Polarity polarity() const = 0;
};

}  // namespace gnrfet::model
