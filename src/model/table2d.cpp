#include "model/table2d.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "common/contracts.hpp"

namespace gnrfet::model {

namespace {

/// Catmull-Rom cubic through p0..p3 at parameter t in [0,1] between p1,p2,
/// plus its derivative with respect to t.
struct Cubic {
  double value;
  double deriv;
};

Cubic catmull_rom(double p0, double p1, double p2, double p3, double t) {
  const double a = -0.5 * p0 + 1.5 * p1 - 1.5 * p2 + 0.5 * p3;
  const double b = p0 - 2.5 * p1 + 2.0 * p2 - 0.5 * p3;
  const double c = -0.5 * p0 + 0.5 * p2;
  const double d = p1;
  return {((a * t + b) * t + c) * t + d, (3.0 * a * t + 2.0 * b) * t + c};
}

void check_axis(const std::vector<double>& axis, const char* name) {
  if (axis.size() < 2) throw std::invalid_argument(std::string("Table2D: axis too short: ") + name);
  const double h = axis[1] - axis[0];
  if (h <= 0.0) throw std::invalid_argument(std::string("Table2D: axis not ascending: ") + name);
  for (size_t i = 1; i < axis.size(); ++i) {
    if (std::abs((axis[i] - axis[i - 1]) - h) > 1e-9 * std::max(1.0, std::abs(h))) {
      throw std::invalid_argument(std::string("Table2D: axis not uniform: ") + name);
    }
  }
}

}  // namespace

Table2D::Table2D(std::vector<double> xs, std::vector<double> ys, std::vector<double> values)
    : xs_(std::move(xs)), ys_(std::move(ys)), v_(std::move(values)) {
  check_axis(xs_, "x");
  check_axis(ys_, "y");
  if (v_.size() != xs_.size() * ys_.size()) {
    throw std::invalid_argument("Table2D: value count mismatch");
  }
  GNRFET_REQUIRE("model", "finite-table", contracts::all_finite(v_),
                 "interpolation table contains NaN/inf values");
  dx_ = xs_[1] - xs_[0];
  dy_ = ys_[1] - ys_[0];
}

double Table2D::at(ptrdiff_t ix, ptrdiff_t iy) const {
  // Linearly extended ghost points preserve the boundary slope of the
  // Catmull-Rom patches (clamped ghosts would halve the edge gradient,
  // distorting the FET-table extrapolation region).
  const ptrdiff_t nx = static_cast<ptrdiff_t>(xs_.size());
  const ptrdiff_t ny = static_cast<ptrdiff_t>(ys_.size());
  // v(-1) = 2 v(0) - v(1) and v(n) = 2 v(n-1) - v(n-2), per axis.
  const std::function<double(ptrdiff_t, ptrdiff_t)> sample = [&](ptrdiff_t i,
                                                                 ptrdiff_t j) -> double {
    if (i < 0) return 2.0 * sample(0, j) - sample(-i, j);
    if (i >= nx) return 2.0 * sample(nx - 1, j) - sample(2 * (nx - 1) - i, j);
    if (j < 0) return 2.0 * sample(i, 0) - sample(i, -j);
    if (j >= ny) return 2.0 * sample(i, ny - 1) - sample(i, 2 * (ny - 1) - j);
    return v_[static_cast<size_t>(i) * ys_.size() + static_cast<size_t>(j)];
  };
  return sample(ix, iy);
}

TableSample Table2D::sample(double x, double y) const {
  // Clamp to the domain; outside it the value continues linearly with the
  // boundary gradient (computed by sampling at the clamped point).
  const double xc = std::clamp(x, xs_.front(), xs_.back());
  const double yc = std::clamp(y, ys_.front(), ys_.back());

  const double gx = (xc - xs_.front()) / dx_;
  const double gy = (yc - ys_.front()) / dy_;
  ptrdiff_t ix = std::min<ptrdiff_t>(static_cast<ptrdiff_t>(gx),
                                     static_cast<ptrdiff_t>(xs_.size()) - 2);
  ptrdiff_t iy = std::min<ptrdiff_t>(static_cast<ptrdiff_t>(gy),
                                     static_cast<ptrdiff_t>(ys_.size()) - 2);
  const double tx = gx - static_cast<double>(ix);
  const double ty = gy - static_cast<double>(iy);

  // Interpolate along y for the 4 x-rows, tracking d/dy.
  double row_v[4], row_dy[4];
  for (int r = 0; r < 4; ++r) {
    const ptrdiff_t rx = ix - 1 + r;
    const Cubic c = catmull_rom(at(rx, iy - 1), at(rx, iy), at(rx, iy + 1), at(rx, iy + 2), ty);
    row_v[r] = c.value;
    row_dy[r] = c.deriv / dy_;
  }
  const Cubic cx = catmull_rom(row_v[0], row_v[1], row_v[2], row_v[3], tx);
  const Cubic cdy = catmull_rom(row_dy[0], row_dy[1], row_dy[2], row_dy[3], tx);

  TableSample s;
  s.value = cx.value;
  s.d_dx = cx.deriv / dx_;
  s.d_dy = cdy.value;

  // Linear extension outside the domain.
  if (x != xc) s.value += s.d_dx * (x - xc);
  if (y != yc) s.value += s.d_dy * (y - yc);
  return s;
}

}  // namespace gnrfet::model
