#include "model/array_fet.hpp"

#include <stdexcept>

namespace gnrfet::model {

ArrayFet::ArrayFet(std::vector<IntrinsicFet> channels) : channels_(std::move(channels)) {
  if (channels_.empty()) throw std::invalid_argument("ArrayFet: need >= 1 channel");
  for (const auto& c : channels_) {
    if (c.polarity() != channels_.front().polarity()) {
      throw std::invalid_argument("ArrayFet: mixed polarities in one array");
    }
  }
}

ArrayFet ArrayFet::uniform(const IntrinsicFet& channel, int count) {
  return ArrayFet(std::vector<IntrinsicFet>(static_cast<size_t>(count), channel));
}

ArrayFet ArrayFet::with_variants(const IntrinsicFet& nominal, const IntrinsicFet& variant,
                                 int count, int affected) {
  if (affected < 0 || affected > count) {
    throw std::invalid_argument("ArrayFet: affected count out of range");
  }
  std::vector<IntrinsicFet> channels;
  channels.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count - affected; ++i) channels.push_back(nominal);
  for (int i = 0; i < affected; ++i) channels.push_back(variant);
  return ArrayFet(std::move(channels));
}

namespace {
FetSample sum(const std::vector<IntrinsicFet>& channels, bool want_current, double vgs,
              double vds) {
  FetSample total;
  for (const auto& c : channels) {
    const FetSample s = want_current ? c.current(vgs, vds) : c.charge(vgs, vds);
    total.value += s.value;
    total.d_dvgs += s.d_dvgs;
    total.d_dvds += s.d_dvds;
  }
  return total;
}
}  // namespace

FetSample ArrayFet::current(double vgs, double vds) const {
  return sum(channels_, true, vgs, vds);
}

FetSample ArrayFet::charge(double vgs, double vds) const {
  return sum(channels_, false, vgs, vds);
}

Polarity ArrayFet::polarity() const { return channels_.front().polarity(); }

}  // namespace gnrfet::model
