#include "model/intrinsic_fet.hpp"

namespace gnrfet::model {

FetTables make_fet_tables(const device::DeviceTable& table) {
  FetTables t;
  t.current_A = std::make_shared<Table2D>(table.vg, table.vd, table.current_A);
  t.charge_C = std::make_shared<Table2D>(table.vg, table.vd, table.charge_C);
  return t;
}

IntrinsicFet::IntrinsicFet(std::shared_ptr<const Table2D> current_A,
                           std::shared_ptr<const Table2D> charge_C, Polarity polarity,
                           double offset_V)
    : current_(std::move(current_A)),
      charge_(std::move(charge_C)),
      polarity_(polarity),
      offset_(offset_V) {}

IntrinsicFet IntrinsicFet::from_device_table(const device::DeviceTable& table,
                                             Polarity polarity, double offset_V) {
  const FetTables t = make_fet_tables(table);
  return IntrinsicFet(t.current_A, t.charge_C, polarity, offset_V);
}

FetSample IntrinsicFet::eval(const Table2D& t, double vgs, double vds,
                             bool antisymmetric_value) const {
  // Fold p-type through the particle-hole mirror of the ambipolar device.
  double sign_outer = 1.0, sign_args = 1.0;
  if (polarity_ == Polarity::kP) {
    sign_outer = -1.0;
    sign_args = -1.0;
    vgs = -vgs;
    vds = -vds;
  }
  FetSample s;
  if (vds >= 0.0) {
    const TableSample ts = t.sample(vgs + offset_, vds);
    s.value = ts.value;
    s.d_dvgs = ts.d_dx;
    s.d_dvds = ts.d_dy;
  } else {
    // Source/drain swap of the symmetric device.
    const TableSample ts = t.sample(vgs - vds + offset_, -vds);
    if (antisymmetric_value) {
      s.value = -ts.value;
      s.d_dvgs = -ts.d_dx;
      s.d_dvds = ts.d_dx + ts.d_dy;
    } else {
      s.value = ts.value;
      s.d_dvgs = ts.d_dx;
      s.d_dvds = -ts.d_dx - ts.d_dy;
    }
  }
  // Chain rule through the mirror: d/dvgs_ext = sign_args * d/dvgs_int, and
  // the odd quantities also flip sign.
  s.value *= sign_outer;
  s.d_dvgs *= sign_outer * sign_args;
  s.d_dvds *= sign_outer * sign_args;
  return s;
}

FetSample IntrinsicFet::current(double vgs, double vds) const {
  return eval(*current_, vgs, vds, /*antisymmetric_value=*/true);
}

FetSample IntrinsicFet::charge(double vgs, double vds) const {
  return eval(*charge_, vgs, vds, /*antisymmetric_value=*/false);
}

}  // namespace gnrfet::model
