#pragma once

#include <memory>

#include "model/array_fet.hpp"

/// Extrinsic GNRFET = intrinsic 4-GNR array + the parasitics of Fig. 3(a):
/// contact resistances RS/RD (1-100 kOhm, nominal 10 kOhm) and junction
/// capacitances CGS,e = CGD,e = (0.01-0.1 aF/nm) x 40 nm contact width.
/// Substrate capacitances are negligible for a thick substrate.
namespace gnrfet::model {

struct Parasitics {
  double rs_ohm = 10e3;
  double rd_ohm = 10e3;
  double cgs_e_F = 1.0e-18;  ///< nominal 0.025 aF/nm * 40 nm
  double cgd_e_F = 1.0e-18;

  /// Paper parametrization: capacitance per unit contact width.
  static Parasitics from_per_width(double c_aF_per_nm, double contact_width_nm,
                                   double rs_ohm = 10e3, double rd_ohm = 10e3);
};

/// Value object handed to the circuit netlist builders.
struct ExtrinsicFet {
  std::shared_ptr<const ChannelModel> intrinsic;
  Parasitics parasitics;
};

ExtrinsicFet make_extrinsic(ArrayFet array, const Parasitics& parasitics);

/// Wrap any channel model (e.g. the CMOS compact model).
ExtrinsicFet make_extrinsic(std::shared_ptr<const ChannelModel> channel,
                            const Parasitics& parasitics);

}  // namespace gnrfet::model
