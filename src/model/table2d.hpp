#pragma once

#include <cstddef>
#include <vector>

/// Smooth 2D lookup table (Catmull-Rom bicubic) for the circuit-level
/// device models. Smooth first derivatives are required by the circuit
/// simulator's Newton iterations and by the capacitance extraction
/// C = |dQ/dV| of Sec. 3.
namespace gnrfet::model {

struct TableSample {
  double value = 0.0;
  double d_dx = 0.0;
  double d_dy = 0.0;
};

class Table2D {
 public:
  /// `values` is row-major over (x, y): values[ix * ys.size() + iy].
  /// Axes must be strictly ascending and uniformly spaced.
  Table2D(std::vector<double> xs, std::vector<double> ys, std::vector<double> values);

  double value(double x, double y) const { return sample(x, y).value; }
  TableSample sample(double x, double y) const;

  double x_min() const { return xs_.front(); }
  double x_max() const { return xs_.back(); }
  double y_min() const { return ys_.front(); }
  double y_max() const { return ys_.back(); }

 private:
  std::vector<double> xs_, ys_, v_;
  double dx_ = 0.0, dy_ = 0.0;
  double at(ptrdiff_t ix, ptrdiff_t iy) const;  // clamped access
};

}  // namespace gnrfet::model
