#pragma once

#include <memory>

#include "device/tablegen.hpp"
#include "model/channel.hpp"
#include "model/table2d.hpp"

/// Circuit-level model of one intrinsic GNR channel, built on the
/// I_D(V_G, V_D) / Q(V_G, V_D) lookup tables of Sec. 3.
///
/// - The gate work-function offset `offset_V` shifts the ambipolar I-V
///   along the V_G axis (Fig. 2(b)); it is the paper's VT-tuning knob.
/// - p-type devices use the particle-hole mirror of the same ambipolar
///   table: I_p(vgs, vds) = -I_n(-vgs, -vds) (Sec. 2, demonstrated for
///   CNTs in ref. [15]).
/// - Negative drain bias is mapped through the source/drain swap symmetry
///   of the geometrically symmetric device:
///   I(vgs, -v) = -I(vgs - v, v), Q(vgs, -v) = Q(vgs - v, v).
namespace gnrfet::model {

class IntrinsicFet {
 public:
  /// `offset_V` shifts the underlying table gate axis: the device is
  /// evaluated at V_G = vgs + offset.
  IntrinsicFet(std::shared_ptr<const Table2D> current_A,
               std::shared_ptr<const Table2D> charge_C, Polarity polarity, double offset_V);

  /// Convenience: build the two tables from a generated device table.
  static IntrinsicFet from_device_table(const device::DeviceTable& table, Polarity polarity,
                                        double offset_V);

  /// Drain current [A] with partial derivatives (drain -> source positive).
  FetSample current(double vgs, double vds) const;

  /// Channel charge [C] with partial derivatives; the intrinsic gate
  /// capacitances of Sec. 3 are CGD_i = |dQ/dVDS| and
  /// CGS_i = |dQ/dVGS| - |dQ/dVDS|.
  FetSample charge(double vgs, double vds) const;

  Polarity polarity() const { return polarity_; }
  double offset_V() const { return offset_; }

 private:
  FetSample eval(const Table2D& t, double vgs, double vds, bool antisymmetric_value) const;

  std::shared_ptr<const Table2D> current_;
  std::shared_ptr<const Table2D> charge_;
  Polarity polarity_;
  double offset_;
};

/// Shared-table helper: build (current, charge) Table2D pair once per
/// generated device table so the 4-GNR arrays can share them.
struct FetTables {
  std::shared_ptr<const Table2D> current_A;
  std::shared_ptr<const Table2D> charge_C;
};

FetTables make_fet_tables(const device::DeviceTable& table);

}  // namespace gnrfet::model
