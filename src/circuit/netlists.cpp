#include "circuit/netlists.hpp"

#include "circuit/dc.hpp"

namespace gnrfet::circuit {

void add_inverter(Circuit& ckt, const InverterModels& models, NodeId in, NodeId out,
                  NodeId vdd) {
  const NodeId nd = ckt.new_node();  // n-FET internal drain
  const NodeId ns = ckt.new_node();  // n-FET internal source
  const NodeId pd = ckt.new_node();
  const NodeId ps = ckt.new_node();
  ckt.add(std::make_unique<Fet>(models.nfet, out, in, kGround, nd, ns));
  ckt.add(std::make_unique<Fet>(models.pfet, out, in, vdd, pd, ps));
}

void add_gate_loads(Circuit& ckt, const InverterModels& load_models, NodeId node, double vdd,
                    int count) {
  for (int i = 0; i < count; ++i) {
    ckt.add(std::make_unique<InverterGateLoad>(load_models.nfet, load_models.pfet, node, vdd));
  }
}

Fo4Testbench build_fo4_inverter(const InverterModels& driver, const InverterModels& load,
                                double vdd, VoltageSource::Waveform input) {
  Fo4Testbench tb;
  tb.vdd = vdd;
  tb.vdd_node = tb.ckt.new_node("vdd");
  tb.in = tb.ckt.new_node("in");
  tb.out = tb.ckt.new_node("out");
  auto vdd_src = std::make_unique<VoltageSource>(tb.vdd_node, kGround, vdd);
  tb.vdd_branch = vdd_src->branch();
  tb.ckt.add(std::move(vdd_src));
  tb.ckt.add(std::make_unique<VoltageSource>(tb.in, kGround, std::move(input)));
  add_inverter(tb.ckt, driver, tb.in, tb.out, tb.vdd_node);
  add_gate_loads(tb.ckt, load, tb.out, vdd, 4);
  return tb;
}

RingOscillator build_ring_oscillator(const std::vector<InverterModels>& stages,
                                     const InverterModels& load, double vdd) {
  RingOscillator ro;
  ro.vdd = vdd;
  ro.vdd_node = ro.ckt.new_node("vdd");
  auto vdd_src = std::make_unique<VoltageSource>(ro.vdd_node, kGround, vdd);
  ro.vdd_branch = vdd_src->branch();
  ro.ckt.add(std::move(vdd_src));
  const size_t n = stages.size();
  ro.stage_out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ro.stage_out.push_back(ro.ckt.new_node("s" + std::to_string(i)));
  }
  for (size_t i = 0; i < n; ++i) {
    const NodeId in = ro.stage_out[(i + n - 1) % n];
    add_inverter(ro.ckt, stages[i], in, ro.stage_out[i], ro.vdd_node);
    add_gate_loads(ro.ckt, load, ro.stage_out[i], vdd, 3);
  }
  return ro;
}

std::vector<double> RingOscillator::kick_state() const {
  // Start from the ring's DC point (all stages near the metastable
  // switching threshold) and alternate a small perturbation around it;
  // the loop gain amplifies it into steady oscillation within a couple of
  // periods. A rail-to-rail initial guess would be too inconsistent for
  // the charge elements' quasi-Newton scheme.
  const DcResult dc = solve_dc(ckt);
  std::vector<double> x = dc.converged ? dc.x : std::vector<double>(ckt.num_unknowns(), 0.0);
  const auto bump_node = [&](NodeId n, double dv) {
    const ptrdiff_t u = ckt.unknown_of_node(n);
    if (u >= 0) x[static_cast<size_t>(u)] += dv;
  };
  for (size_t i = 0; i < stage_out.size(); ++i) {
    bump_node(stage_out[i], (i % 2 == 0) ? 0.05 * vdd : -0.05 * vdd);
  }
  return x;
}

Latch build_latch(const InverterModels& fwd, const InverterModels& bwd, double vdd) {
  Latch l;
  l.vdd = vdd;
  l.vdd_node = l.ckt.new_node("vdd");
  auto vdd_src = std::make_unique<VoltageSource>(l.vdd_node, kGround, vdd);
  l.vdd_branch = vdd_src->branch();
  l.ckt.add(std::move(vdd_src));
  l.q = l.ckt.new_node("q");
  l.qb = l.ckt.new_node("qb");
  add_inverter(l.ckt, fwd, l.q, l.qb, l.vdd_node);
  add_inverter(l.ckt, bwd, l.qb, l.q, l.vdd_node);
  return l;
}

}  // namespace gnrfet::circuit
