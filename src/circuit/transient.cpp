#include "circuit/transient.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "common/trace.hpp"
#include "linalg/lu.hpp"

namespace gnrfet::circuit {

std::vector<double> Waveforms::node(const Circuit& ckt, NodeId n) const {
  const ptrdiff_t u = ckt.unknown_of_node(n);
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(u < 0 ? 0.0 : s[static_cast<size_t>(u)]);
  return out;
}

std::vector<double> Waveforms::branch(const Circuit& ckt, size_t branch_index) const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s[ckt.unknown_of_branch(branch_index)]);
  return out;
}

TransientResult run_transient(const Circuit& ckt, const TransientOptions& opts) {
  trace::Span span("circuit", "run_transient");
  GNRFET_REQUIRE("circuit", "positive-timestep", opts.dt > 0.0 && std::isfinite(opts.dt),
                 strings::format("dt = %g must be finite and > 0", opts.dt));
  GNRFET_REQUIRE("circuit", "finite-horizon",
                 opts.t_stop >= 0.0 && std::isfinite(opts.t_stop),
                 strings::format("t_stop = %g must be finite and >= 0", opts.t_stop));
  TransientResult result;
  const size_t n = ckt.num_unknowns();

  std::vector<double> x;
  if (!opts.initial_x.empty()) {
    if (opts.initial_x.size() != n) {
      throw std::invalid_argument("run_transient: initial_x size mismatch");
    }
    x = opts.initial_x;
  } else {
    const DcResult dc = solve_dc(ckt);
    if (!dc.converged) return result;
    x = dc.x;
  }

  std::vector<double> state(ckt.state_size(), 0.0);
  for (const auto& e : ckt.elements()) e->init_state(ckt, x, state);

  const size_t steps = static_cast<size_t>(std::ceil(opts.t_stop / opts.dt));
  result.waves.time.reserve(steps + 1);
  result.waves.samples.reserve(steps + 1);
  result.waves.time.push_back(0.0);
  result.waves.samples.push_back(x);

  std::vector<double> state_next(state.size(), 0.0);
  for (size_t step = 1; step <= steps; ++step) {
    const double t = static_cast<double>(step) * opts.dt;
    TransientContext ctx;
    ctx.time = t;
    ctx.dt = opts.dt;
    ctx.state_prev = &state;
    ctx.state_next = &state_next;

    bool converged = false;
    double clamp_v = 0.3;  // annealed if Newton cycles
    for (int it = 0; it < opts.max_newton_iterations; ++it) {
      if (it > 0 && it % 12 == 0) clamp_v *= 0.5;
      linalg::DMatrix jac(n, n);
      std::vector<double> res(n, 0.0);
      std::fill(state_next.begin(), state_next.end(), 0.0);
      Stamper st(ckt, x, jac, res);
      for (const auto& e : ckt.elements()) e->stamp(st, ctx);
      check_mna_stamp(ckt, jac, res);
      double res_norm = 0.0;
      for (const double r : res) res_norm = std::max(res_norm, std::abs(r));
      for (size_t i = 0; i + ckt.num_branches() < n; ++i) jac(i, i) += 1e-12;
      std::vector<double> rhs(n);
      for (size_t i = 0; i < n; ++i) rhs[i] = -res[i];
      metrics::add(metrics::Counter::kMnaFactorizations);
      const std::vector<double> dx = linalg::LUReal(jac).solve(rhs);
      double max_dx = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double d =
            (i + ckt.num_branches() < n) ? std::clamp(dx[i], -clamp_v, clamp_v) : dx[i];
        x[i] += d;
        if (i + ckt.num_branches() < n) max_dx = std::max(max_dx, std::abs(d));
      }
      if (max_dx < opts.update_tolerance_V && res_norm < opts.residual_tolerance_A) {
        converged = true;
        break;
      }
    }
    if (!converged) return result;
    // One final stamp to refresh state_next consistently with accepted x.
    {
      linalg::DMatrix jac(n, n);
      std::vector<double> res(n, 0.0);
      std::fill(state_next.begin(), state_next.end(), 0.0);
      Stamper st(ckt, x, jac, res);
      for (const auto& e : ckt.elements()) e->stamp(st, ctx);
    }
    state.swap(state_next);
    metrics::add(metrics::Counter::kTransientSteps);
    result.waves.time.push_back(t);
    result.waves.samples.push_back(x);
  }
  result.ok = true;
  return result;
}

}  // namespace gnrfet::circuit
