#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linalg/dense.hpp"

/// Modified nodal analysis core for the lookup-table circuit simulator of
/// Sec. 3. Unknowns are the non-ground node voltages followed by the
/// branch currents of voltage sources. The circuits of the paper are small
/// (tens of nodes), so the Jacobian is dense.
namespace gnrfet::circuit {

/// Node handle; 0 is ground.
using NodeId = int;
inline constexpr NodeId kGround = 0;

class Element;

class Circuit {
 public:
  Circuit();

  NodeId new_node(const std::string& name = "");
  size_t num_nodes() const { return node_names_.size(); }  ///< includes ground
  const std::string& node_name(NodeId n) const { return node_names_.at(static_cast<size_t>(n)); }

  /// Adds an element; the circuit assigns branch and state offsets.
  /// Returns a stable element index.
  size_t add(std::unique_ptr<Element> element);

  const std::vector<std::unique_ptr<Element>>& elements() const { return elements_; }
  Element& element(size_t idx) { return *elements_.at(idx); }

  /// Unknown vector layout: [v_1 .. v_{N-1}, i_branch_0 ..].
  size_t num_unknowns() const;
  size_t num_branches() const { return num_branches_; }
  size_t state_size() const { return state_size_; }

  /// Index of node voltage in the unknown vector (-1 for ground).
  ptrdiff_t unknown_of_node(NodeId n) const { return n == kGround ? -1 : n - 1; }
  size_t unknown_of_branch(size_t branch) const { return num_nodes() - 1 + branch; }

 private:
  std::vector<std::string> node_names_;
  std::vector<std::unique_ptr<Element>> elements_;
  size_t num_branches_ = 0;
  size_t state_size_ = 0;
};

/// Assembly facade passed to elements. Residuals follow the convention
/// res[node] = sum of currents LEAVING the node (KCL: res = 0).
class Stamper {
 public:
  Stamper(const Circuit& ckt, const std::vector<double>& x, linalg::DMatrix& jac,
          std::vector<double>& res)
      : ckt_(ckt), x_(x), jac_(jac), res_(res) {}

  double v(NodeId n) const {
    const ptrdiff_t u = ckt_.unknown_of_node(n);
    return u < 0 ? 0.0 : x_[static_cast<size_t>(u)];
  }
  double branch_current(size_t branch) const { return x_[ckt_.unknown_of_branch(branch)]; }

  void add_residual(NodeId n, double current_out) {
    const ptrdiff_t u = ckt_.unknown_of_node(n);
    if (u >= 0) res_[static_cast<size_t>(u)] += current_out;
  }
  void add_branch_residual(size_t branch, double value) {
    res_[ckt_.unknown_of_branch(branch)] += value;
  }
  /// d(res[n]) / d(v[m]).
  void add_jacobian(NodeId n, NodeId m, double g) {
    const ptrdiff_t r = ckt_.unknown_of_node(n);
    const ptrdiff_t c = ckt_.unknown_of_node(m);
    if (r >= 0 && c >= 0) jac_(static_cast<size_t>(r), static_cast<size_t>(c)) += g;
  }
  void add_jacobian_node_branch(NodeId n, size_t branch, double g) {
    const ptrdiff_t r = ckt_.unknown_of_node(n);
    if (r >= 0) jac_(static_cast<size_t>(r), ckt_.unknown_of_branch(branch)) += g;
  }
  void add_jacobian_branch_node(size_t branch, NodeId m, double g) {
    const ptrdiff_t c = ckt_.unknown_of_node(m);
    if (c >= 0) jac_(ckt_.unknown_of_branch(branch), static_cast<size_t>(c)) += g;
  }
  void add_jacobian_branch_branch(size_t branch_r, size_t branch_c, double g) {
    jac_(ckt_.unknown_of_branch(branch_r), ckt_.unknown_of_branch(branch_c)) += g;
  }

 private:
  const Circuit& ckt_;
  const std::vector<double>& x_;
  linalg::DMatrix& jac_;
  std::vector<double>& res_;
};

/// Contract check of one assembled MNA system (subsystem "circuit"):
/// every Jacobian and residual entry must be finite ("finite-stamp" — an
/// inf/NaN stamp means a degenerate element, e.g. a zero-ohm resistor),
/// and every voltage-source branch row must have at least one structural
/// entry ("structural-rank" — an all-zero branch row is a source shorted
/// to itself, which makes the matrix singular no matter the gmin). Node
/// rows may float: the solvers regularize them with gmin by design.
/// Compiled out under GNRFET_CHECKS=OFF.
void check_mna_stamp(const Circuit& ckt, const linalg::DMatrix& jac,
                     const std::vector<double>& res);

/// Per-step context for charge-storage elements. dt <= 0 means DC (charge
/// branches are open). `state_prev` holds each element's committed state
/// from the previous accepted step; `state_next` is written during
/// stamping and committed when the step is accepted.
struct TransientContext {
  double time = 0.0;
  double dt = 0.0;
  double source_scale = 1.0;  ///< source stepping homotopy in DC
  const std::vector<double>* state_prev = nullptr;
  std::vector<double>* state_next = nullptr;
};

class Element {
 public:
  virtual ~Element() = default;

  /// Number of extra branch-current unknowns (voltage sources).
  virtual size_t num_branches() const { return 0; }
  /// Number of state doubles (charges, previous voltages/currents).
  virtual size_t state_size() const { return 0; }

  /// Called once by Circuit::add.
  void assign_slots(size_t branch_offset, size_t state_offset) {
    branch_offset_ = branch_offset;
    state_offset_ = state_offset;
  }

  /// Stamp residual + Jacobian at iterate x (through `st`).
  virtual void stamp(Stamper& st, const TransientContext& ctx) const = 0;

  /// Initialize state from a converged DC solution (start of transient).
  virtual void init_state(const Circuit& ckt, const std::vector<double>& x,
                          std::vector<double>& state) const {
    (void)ckt;
    (void)x;
    (void)state;
  }

 protected:
  size_t branch_offset_ = 0;
  size_t state_offset_ = 0;
};

}  // namespace gnrfet::circuit
