#include "circuit/mna.hpp"

namespace gnrfet::circuit {

Circuit::Circuit() { node_names_.push_back("gnd"); }

NodeId Circuit::new_node(const std::string& name) {
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name.empty() ? "n" + std::to_string(id) : name);
  return id;
}

size_t Circuit::add(std::unique_ptr<Element> element) {
  element->assign_slots(num_branches_, state_size_);
  num_branches_ += element->num_branches();
  state_size_ += element->state_size();
  elements_.push_back(std::move(element));
  return elements_.size() - 1;
}

size_t Circuit::num_unknowns() const { return num_nodes() - 1 + num_branches_; }

}  // namespace gnrfet::circuit
