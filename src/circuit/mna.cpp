#include "circuit/mna.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace gnrfet::circuit {

void check_mna_stamp(const Circuit& ckt, const linalg::DMatrix& jac,
                     const std::vector<double>& res) {
#if GNRFET_CHECKS_ENABLED
  const size_t n = ckt.num_unknowns();
  for (size_t i = 0; i < n; ++i) {
    GNRFET_CHECK_FINITE("circuit", "finite-stamp", res[i]);
    for (size_t j = 0; j < n; ++j) {
      GNRFET_REQUIRE("circuit", "finite-stamp", std::isfinite(jac(i, j)),
                     strings::format("Jacobian(%zu, %zu) = %g (degenerate element stamp?)", i,
                                     j, jac(i, j)));
    }
  }
  for (size_t b = 0; b < ckt.num_branches(); ++b) {
    const size_t row = ckt.unknown_of_branch(b);
    bool structural = false;
    for (size_t j = 0; j < n && !structural; ++j) structural = jac(row, j) != 0.0;
    GNRFET_REQUIRE("circuit", "structural-rank", structural,
                   strings::format("branch row %zu is all-zero: voltage source shorted to "
                                   "itself or stamped between identical nodes",
                                   b));
  }
#else
  (void)ckt;
  (void)jac;
  (void)res;
#endif
}

Circuit::Circuit() { node_names_.push_back("gnd"); }

NodeId Circuit::new_node(const std::string& name) {
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name.empty() ? "n" + std::to_string(id) : name);
  return id;
}

size_t Circuit::add(std::unique_ptr<Element> element) {
  element->assign_slots(num_branches_, state_size_);
  num_branches_ += element->num_branches();
  state_size_ += element->state_size();
  elements_.push_back(std::move(element));
  return elements_.size() - 1;
}

size_t Circuit::num_unknowns() const { return num_nodes() - 1 + num_branches_; }

}  // namespace gnrfet::circuit
