#include "circuit/elements.hpp"

#include <algorithm>
#include <cmath>

namespace gnrfet::circuit {

namespace {

/// Trapezoidal companion stamp of a charge branch between nodes a and b
/// with (possibly bias-dependent) capacitance evaluated at the voltage
/// midpoint. State triplet at `s0`: [q_prev, i_prev, v_prev].
void stamp_charge_branch(Stamper& st, const TransientContext& ctx, NodeId a, NodeId b,
                         double c_mid, size_t s0) {
  if (ctx.dt <= 0.0) return;  // open in DC
  const auto& prev = *ctx.state_prev;
  auto& next = *ctx.state_next;
  const double v = st.v(a) - st.v(b);
  const double q_prev = prev[s0];
  const double i_prev = prev[s0 + 1];
  const double v_prev = prev[s0 + 2];
  const double q_new = q_prev + c_mid * (v - v_prev);
  const double i = 2.0 / ctx.dt * (q_new - q_prev) - i_prev;
  st.add_residual(a, i);
  st.add_residual(b, -i);
  const double g = 2.0 * c_mid / ctx.dt;
  st.add_jacobian(a, a, g);
  st.add_jacobian(a, b, -g);
  st.add_jacobian(b, a, -g);
  st.add_jacobian(b, b, g);
  next[s0] = q_new;
  next[s0 + 1] = i;
  next[s0 + 2] = v;
}

void init_charge_state(double v_now, size_t s0, std::vector<double>& state) {
  state[s0] = 0.0;      // charge is tracked incrementally
  state[s0 + 1] = 0.0;  // steady state: no displacement current
  state[s0 + 2] = v_now;
}

double node_voltage(const Circuit& ckt, const std::vector<double>& x, NodeId n) {
  const ptrdiff_t u = ckt.unknown_of_node(n);
  return u < 0 ? 0.0 : x[static_cast<size_t>(u)];
}

}  // namespace

Resistor::Resistor(NodeId a, NodeId b, double ohms) : a_(a), b_(b), g_(1.0 / ohms) {}

void Resistor::stamp(Stamper& st, const TransientContext&) const {
  const double i = g_ * (st.v(a_) - st.v(b_));
  st.add_residual(a_, i);
  st.add_residual(b_, -i);
  st.add_jacobian(a_, a_, g_);
  st.add_jacobian(a_, b_, -g_);
  st.add_jacobian(b_, a_, -g_);
  st.add_jacobian(b_, b_, g_);
}

Capacitor::Capacitor(NodeId a, NodeId b, double farads) : a_(a), b_(b), c_(farads) {}

void Capacitor::stamp(Stamper& st, const TransientContext& ctx) const {
  stamp_charge_branch(st, ctx, a_, b_, c_, state_offset_);
}

void Capacitor::init_state(const Circuit& ckt, const std::vector<double>& x,
                           std::vector<double>& state) const {
  init_charge_state(node_voltage(ckt, x, a_) - node_voltage(ckt, x, b_), state_offset_, state);
}

VoltageSource::VoltageSource(NodeId plus, NodeId minus, double dc_volts)
    : p_(plus), m_(minus), dc_(dc_volts) {}

VoltageSource::VoltageSource(NodeId plus, NodeId minus, Waveform waveform)
    : p_(plus), m_(minus), waveform_(std::move(waveform)) {}

void VoltageSource::stamp(Stamper& st, const TransientContext& ctx) const {
  const double target = (waveform_ ? waveform_(ctx.time) : dc_) * ctx.source_scale;
  const double i = st.branch_current(branch_offset_);
  st.add_residual(p_, i);
  st.add_residual(m_, -i);
  st.add_jacobian_node_branch(p_, branch_offset_, 1.0);
  st.add_jacobian_node_branch(m_, branch_offset_, -1.0);
  st.add_branch_residual(branch_offset_, st.v(p_) - st.v(m_) - target);
  st.add_jacobian_branch_node(branch_offset_, p_, 1.0);
  st.add_jacobian_branch_node(branch_offset_, m_, -1.0);
}

VoltageSource::Waveform pulse_waveform(double v0, double v1, double t_start, double t_rise) {
  return [=](double t) {
    if (t <= t_start) return v0;
    if (t >= t_start + t_rise) return v1;
    return v0 + (v1 - v0) * (t - t_start) / t_rise;
  };
}

Fet::Fet(model::ExtrinsicFet fet, NodeId d, NodeId g, NodeId s, NodeId d_int, NodeId s_int)
    : fet_(std::move(fet)), d_(d), g_(g), s_(s), di_(d_int), si_(s_int) {}

void Fet::stamp(Stamper& st, const TransientContext& ctx) const {
  const auto& par = fet_.parasitics;
  // Contact resistances.
  {
    const double grd = 1.0 / par.rd_ohm;
    const double i = grd * (st.v(d_) - st.v(di_));
    st.add_residual(d_, i);
    st.add_residual(di_, -i);
    st.add_jacobian(d_, d_, grd);
    st.add_jacobian(d_, di_, -grd);
    st.add_jacobian(di_, d_, -grd);
    st.add_jacobian(di_, di_, grd);
    const double grs = 1.0 / par.rs_ohm;
    const double is = grs * (st.v(s_) - st.v(si_));
    st.add_residual(s_, is);
    st.add_residual(si_, -is);
    st.add_jacobian(s_, s_, grs);
    st.add_jacobian(s_, si_, -grs);
    st.add_jacobian(si_, s_, -grs);
    st.add_jacobian(si_, si_, grs);
  }

  const double vgs = st.v(g_) - st.v(si_);
  const double vds = st.v(di_) - st.v(si_);

  // Channel current between the internal drain/source nodes.
  {
    const model::FetSample cur = fet_.intrinsic->current(vgs, vds);
    st.add_residual(di_, cur.value);
    st.add_residual(si_, -cur.value);
    st.add_jacobian(di_, di_, cur.d_dvds);
    st.add_jacobian(di_, g_, cur.d_dvgs);
    st.add_jacobian(di_, si_, -cur.d_dvds - cur.d_dvgs);
    st.add_jacobian(si_, di_, -cur.d_dvds);
    st.add_jacobian(si_, g_, -cur.d_dvgs);
    st.add_jacobian(si_, si_, cur.d_dvds + cur.d_dvgs);
  }

  // Intrinsic gate capacitances from the Q tables at the voltage midpoint
  // of the step (Sec. 3: CGD_i = |dQ/dVDS|, CGS_i = |dQ/dVGS| - CGD_i).
  if (ctx.dt > 0.0) {
    const auto& prev = *ctx.state_prev;
    const double vgs_prev = prev[state_offset_ + 2];
    const double vgd_prev = prev[state_offset_ + 5];
    const double vgs_mid = 0.5 * (vgs + vgs_prev);
    const double vds_now = vds;
    const double vds_prev = vgs_prev - vgd_prev;
    const double vds_mid = 0.5 * (vds_now + vds_prev);
    const model::FetSample q = fet_.intrinsic->charge(vgs_mid, vds_mid);
    const double cgd_i = std::abs(q.d_dvds);
    const double cgs_i = std::max(0.0, std::abs(q.d_dvgs) - cgd_i);
    stamp_charge_branch(st, ctx, g_, si_, cgs_i, state_offset_);
    stamp_charge_branch(st, ctx, g_, di_, cgd_i, state_offset_ + 3);
  }
  // Extrinsic junction capacitances at the external terminals.
  stamp_charge_branch(st, ctx, g_, s_, par.cgs_e_F, state_offset_ + 6);
  stamp_charge_branch(st, ctx, g_, d_, par.cgd_e_F, state_offset_ + 9);
}

void Fet::init_state(const Circuit& ckt, const std::vector<double>& x,
                     std::vector<double>& state) const {
  const double vg = node_voltage(ckt, x, g_);
  init_charge_state(vg - node_voltage(ckt, x, si_), state_offset_, state);
  init_charge_state(vg - node_voltage(ckt, x, di_), state_offset_ + 3, state);
  init_charge_state(vg - node_voltage(ckt, x, s_), state_offset_ + 6, state);
  init_charge_state(vg - node_voltage(ckt, x, d_), state_offset_ + 9, state);
}

InverterGateLoad::InverterGateLoad(model::ExtrinsicFet nfet, model::ExtrinsicFet pfet,
                                   NodeId node, double vdd)
    : n_(std::move(nfet)), p_(std::move(pfet)), node_(node), vdd_(vdd) {}

double InverterGateLoad::capacitance(double v) const {
  const model::FetSample qn = n_.intrinsic->charge(v, vdd_ - v);
  const model::FetSample qp = p_.intrinsic->charge(v - vdd_, -v);
  const double cg_n = std::abs(qn.d_dvgs);
  const double cg_p = std::abs(qp.d_dvgs);
  return cg_n + cg_p + n_.parasitics.cgs_e_F + n_.parasitics.cgd_e_F + p_.parasitics.cgs_e_F +
         p_.parasitics.cgd_e_F;
}

void InverterGateLoad::stamp(Stamper& st, const TransientContext& ctx) const {
  if (ctx.dt <= 0.0) return;
  const double v_prev = (*ctx.state_prev)[state_offset_ + 2];
  const double c = capacitance(0.5 * (st.v(node_) + v_prev));
  stamp_charge_branch(st, ctx, node_, kGround, c, state_offset_);
}

void InverterGateLoad::init_state(const Circuit& ckt, const std::vector<double>& x,
                                  std::vector<double>& state) const {
  init_charge_state(node_voltage(ckt, x, node_), state_offset_, state);
}

}  // namespace gnrfet::circuit
