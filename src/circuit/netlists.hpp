#pragma once

#include <vector>

#include "circuit/elements.hpp"
#include "circuit/transient.hpp"

/// Netlist builders for the paper's representative circuits: inverter with
/// fanout-of-4 load, 15-stage FO4 ring oscillator, and latch.
namespace gnrfet::circuit {

/// Complementary device pair of one inverter.
struct InverterModels {
  model::ExtrinsicFet nfet;
  model::ExtrinsicFet pfet;
};

/// Add one static inverter; creates the 4 internal contact nodes.
void add_inverter(Circuit& ckt, const InverterModels& models, NodeId in, NodeId out,
                  NodeId vdd);

/// Add `count` inverter gate-input loads at a node (fanout loading).
void add_gate_loads(Circuit& ckt, const InverterModels& load_models, NodeId node, double vdd,
                    int count);

/// Inverter driving a fanout-of-4 load, with a pulse input.
struct Fo4Testbench {
  Circuit ckt;
  NodeId in = 0, out = 0, vdd_node = 0;
  size_t vdd_branch = 0;  ///< supply branch index for power probing
  double vdd = 0.0;
};

Fo4Testbench build_fo4_inverter(const InverterModels& driver, const InverterModels& load,
                                double vdd, VoltageSource::Waveform input);

/// 15-stage ring oscillator; every stage output carries 3 extra gate loads
/// so each inverter drives a fanout of 4 (next stage + 3 dummies).
struct RingOscillator {
  Circuit ckt;
  std::vector<NodeId> stage_out;
  NodeId vdd_node = 0;
  size_t vdd_branch = 0;
  double vdd = 0.0;

  /// Alternating-rail initial state that kicks the oscillation.
  std::vector<double> kick_state() const;
};

RingOscillator build_ring_oscillator(const std::vector<InverterModels>& stages,
                                     const InverterModels& load, double vdd);

/// Cross-coupled inverter latch (for DC/static-power checks; the butterfly
/// SNM uses the VTCs directly, see snm.hpp).
struct Latch {
  Circuit ckt;
  NodeId q = 0, qb = 0, vdd_node = 0;
  size_t vdd_branch = 0;
  double vdd = 0.0;
};

Latch build_latch(const InverterModels& fwd, const InverterModels& bwd, double vdd);

}  // namespace gnrfet::circuit
