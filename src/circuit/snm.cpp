#include "circuit/snm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuit/dc.hpp"

namespace gnrfet::circuit {

Vtc compute_vtc(const InverterModels& models, double vdd, int points) {
  Circuit ckt;
  const NodeId vdd_node = ckt.new_node("vdd");
  const NodeId in = ckt.new_node("in");
  const NodeId out = ckt.new_node("out");
  auto vdd_src = std::make_unique<VoltageSource>(vdd_node, kGround, vdd);
  const size_t vdd_branch = vdd_src->branch();
  ckt.add(std::move(vdd_src));
  auto in_src = std::make_unique<VoltageSource>(in, kGround, 0.0);
  auto* in_ptr = in_src.get();
  ckt.add(std::move(in_src));
  add_inverter(ckt, models, in, out, vdd_node);

  Vtc vtc;
  std::vector<double> x;
  for (int i = 0; i < points; ++i) {
    const double v = vdd * static_cast<double>(i) / static_cast<double>(points - 1);
    in_ptr->set_dc(v);
    const DcResult dc = solve_dc(ckt, x);
    if (!dc.converged) throw std::runtime_error("compute_vtc: DC did not converge");
    x = dc.x;
    vtc.vin.push_back(v);
    vtc.vout.push_back(x[static_cast<size_t>(ckt.unknown_of_node(out))]);
    vtc.supply_current_A.push_back(x[ckt.unknown_of_branch(vdd_branch)]);
  }
  return vtc;
}

namespace {

/// Linear interpolation of a tabulated monotone-x function.
double interp(const std::vector<double>& xs, const std::vector<double>& ys, double x) {
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const size_t i = static_cast<size_t>(it - xs.begin());
  const double t = (x - xs[i - 1]) / (xs[i] - xs[i - 1]);
  return ys[i - 1] + t * (ys[i] - ys[i - 1]);
}

/// Inverse of a monotone-decreasing VTC: given output level y, the input x
/// with f(x) = y.
std::pair<std::vector<double>, std::vector<double>> inverted(const Vtc& v) {
  std::vector<double> ys(v.vout.rbegin(), v.vout.rend());
  std::vector<double> xs(v.vin.rbegin(), v.vin.rend());
  // Enforce strict monotonicity for interpolation robustness.
  for (size_t i = 1; i < ys.size(); ++i) ys[i] = std::max(ys[i], ys[i - 1] + 1e-12);
  return {ys, xs};
}

}  // namespace

double butterfly_lobe(const Vtc& a, const Vtc& b) {
  // Upper-left lobe in the (V1, V2) plane: upper boundary yA(x) = fA(x),
  // lower boundary yB(x) = fB^{-1}(x). A square of side s with lower-left
  // corner at x fits iff yA(x + s) - yB(x) >= s (both curves decreasing).
  const auto [binv_x, binv_y] = inverted(b);
  const double v_max = a.vin.back();
  const int nx = 241;
  double best = 0.0;
  for (int i = 0; i < nx; ++i) {
    const double x = v_max * static_cast<double>(i) / (nx - 1);
    const double yb = interp(binv_x, binv_y, x);
    // Binary search the largest feasible side at this x.
    double lo = 0.0, hi = v_max - x;
    for (int it = 0; it < 40 && hi - lo > 1e-7; ++it) {
      const double s = 0.5 * (lo + hi);
      const double ya = interp(a.vin, a.vout, x + s);
      if (ya - yb >= s) {
        lo = s;
      } else {
        hi = s;
      }
    }
    best = std::max(best, lo);
  }
  return best;
}

Vtc invert_vtc(const Vtc& v) {
  // Swap the axes of the (monotone-decreasing) curve and re-sort ascending.
  Vtc out;
  out.vin.assign(v.vout.rbegin(), v.vout.rend());
  out.vout.assign(v.vin.rbegin(), v.vin.rend());
  for (size_t i = 1; i < out.vin.size(); ++i) {
    out.vin[i] = std::max(out.vin[i], out.vin[i - 1] + 1e-12);
  }
  return out;
}

double butterfly_snm(const Vtc& a, const Vtc& b) {
  // Upper-left lobe: bounded above by fA, below by fB^-1. Lower-right
  // lobe: the mirror image through the diagonal, i.e. the upper-left lobe
  // of the inverted curves with roles swapped.
  const double lobe_ul = butterfly_lobe(a, b);
  const double lobe_lr = butterfly_lobe(invert_vtc(b), invert_vtc(a));
  return std::min(lobe_ul, lobe_lr);
}

double inverter_static_power(const InverterModels& models, double vdd) {
  const Vtc vtc = compute_vtc(models, vdd, 5);
  // States: input at ground and at VDD; P = -vdd * i_branch.
  const double p0 = -vdd * vtc.supply_current_A.front();
  const double p1 = -vdd * vtc.supply_current_A.back();
  return 0.5 * (p0 + p1);
}

}  // namespace gnrfet::circuit
