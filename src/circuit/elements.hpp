#pragma once

#include <functional>

#include "circuit/mna.hpp"
#include "model/extrinsic_fet.hpp"

/// Concrete circuit elements: R, C, V source (DC / pulse), the table-model
/// GNRFET core, and the gate-input load used for fanout-of-4 loading.
namespace gnrfet::circuit {

class Resistor final : public Element {
 public:
  Resistor(NodeId a, NodeId b, double ohms);
  void stamp(Stamper& st, const TransientContext& ctx) const override;

 private:
  NodeId a_, b_;
  double g_;
};

/// Linear capacitor, trapezoidal companion. State: [q_prev, i_prev, v_prev].
class Capacitor final : public Element {
 public:
  Capacitor(NodeId a, NodeId b, double farads);
  size_t state_size() const override { return 3; }
  void stamp(Stamper& st, const TransientContext& ctx) const override;
  void init_state(const Circuit& ckt, const std::vector<double>& x,
                  std::vector<double>& state) const override;

 private:
  NodeId a_, b_;
  double c_;
};

/// Voltage source with optional waveform; one branch unknown.
class VoltageSource final : public Element {
 public:
  using Waveform = std::function<double(double /*time*/)>;
  VoltageSource(NodeId plus, NodeId minus, double dc_volts);
  VoltageSource(NodeId plus, NodeId minus, Waveform waveform);
  size_t num_branches() const override { return 1; }
  void stamp(Stamper& st, const TransientContext& ctx) const override;

  /// The branch index (for current probing).
  size_t branch() const { return branch_offset_; }
  void set_dc(double volts) { dc_ = volts; }

 private:
  NodeId p_, m_;
  double dc_ = 0.0;
  Waveform waveform_;
};

/// Rising/falling step with linear ramp, for delay measurements.
VoltageSource::Waveform pulse_waveform(double v0, double v1, double t_start, double t_rise);

/// The extrinsic GNRFET of Fig. 3(a). External nodes (d, g, s); internal
/// nodes d'/s' must be created by the caller (netlist builder) so they can
/// be probed. Stamps:
///   RD (d-d'), RS (s-s'), channel current I(vg-vs', vd'-vs'),
///   intrinsic gate charges via CGS,i / CGD,i from the Q tables,
///   extrinsic constant capacitances CGS,e (g-s), CGD,e (g-d).
/// State: [qgs, igs, vgs', qgd, igd, vgd', qgse, igse, vgs, qgde, igde, vgd].
class Fet final : public Element {
 public:
  Fet(model::ExtrinsicFet fet, NodeId d, NodeId g, NodeId s, NodeId d_int, NodeId s_int);
  size_t state_size() const override { return 12; }
  void stamp(Stamper& st, const TransientContext& ctx) const override;
  void init_state(const Circuit& ckt, const std::vector<double>& x,
                  std::vector<double>& state) const override;

 private:
  model::ExtrinsicFet fet_;
  NodeId d_, g_, s_, di_, si_;
};

/// Gate-input loading of one inverter (its n- and p-FET gates), used to
/// build fanout-of-4 loads without simulating dangling inverters. The
/// element is a nonlinear grounded capacitor at the driven node:
///   C(v) = Cg_n(v, VDD - v) + Cg_p(v - VDD, -v) + 2 (CGS,e + CGD,e),
/// i.e. the intrinsic gate capacitances |dQ/dVGS| of both devices with the
/// load-inverter output at its quasi-static (inverted) value, plus the
/// extrinsic junction capacitances. State: [q, i, v].
class InverterGateLoad final : public Element {
 public:
  InverterGateLoad(model::ExtrinsicFet nfet, model::ExtrinsicFet pfet, NodeId node, double vdd);
  size_t state_size() const override { return 3; }
  void stamp(Stamper& st, const TransientContext& ctx) const override;
  void init_state(const Circuit& ckt, const std::vector<double>& x,
                  std::vector<double>& state) const override;

  /// Input capacitance at gate voltage v (exposed for calibration checks).
  double capacitance(double v) const;

 private:
  model::ExtrinsicFet n_, p_;
  NodeId node_;
  double vdd_;
};

}  // namespace gnrfet::circuit
