#pragma once

#include "circuit/mna.hpp"

/// Newton DC operating-point solver with source-stepping homotopy.
namespace gnrfet::circuit {

struct DcOptions {
  int max_iterations = 200;
  double residual_tolerance_A = 1e-12;
  double update_tolerance_V = 1e-10;
  double max_step_V = 0.3;  ///< Newton damping clamp
};

struct DcResult {
  bool converged = false;
  int iterations = 0;
  std::vector<double> x;  ///< node voltages + branch currents
};

/// Solve at full sources. `initial` (may be empty) seeds Newton; if direct
/// Newton fails, sources are ramped from 0 in steps (each step warm-started
/// from the last).
DcResult solve_dc(const Circuit& ckt, const std::vector<double>& initial = {},
                  const DcOptions& opts = {});

}  // namespace gnrfet::circuit
