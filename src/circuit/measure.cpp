#include "circuit/measure.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuit/snm.hpp"

namespace gnrfet::circuit {

std::vector<double> crossing_times(const std::vector<double>& time,
                                   const std::vector<double>& wave, double level, bool rising) {
  std::vector<double> out;
  for (size_t i = 1; i < wave.size(); ++i) {
    const bool crosses = rising ? (wave[i - 1] < level && wave[i] >= level)
                                : (wave[i - 1] > level && wave[i] <= level);
    if (crosses) {
      const double t = time[i - 1] + (time[i] - time[i - 1]) * (level - wave[i - 1]) /
                                         (wave[i] - wave[i - 1]);
      out.push_back(t);
    }
  }
  return out;
}

double average_after(const std::vector<double>& time, const std::vector<double>& wave,
                     double t_start) {
  double sum = 0.0, span = 0.0;
  for (size_t i = 1; i < wave.size(); ++i) {
    if (time[i - 1] < t_start) continue;
    const double dt = time[i] - time[i - 1];
    sum += 0.5 * (wave[i] + wave[i - 1]) * dt;
    span += dt;
  }
  return span > 0.0 ? sum / span : 0.0;
}

double oscillation_frequency(const std::vector<double>& time, const std::vector<double>& wave,
                             double level) {
  const auto cross = crossing_times(time, wave, level, true);
  if (cross.size() < 3) return 0.0;
  // Mean period over the trailing half of the crossings.
  const size_t start = cross.size() / 2;
  const size_t cycles = cross.size() - 1 - start;
  if (cycles == 0) return 0.0;
  return static_cast<double>(cycles) / (cross.back() - cross[start]);
}

namespace {

/// Energy delivered by the supply over [t_a, t_b]; i_branch is the VDD
/// source branch current (P = -vdd * i).
double supply_energy(const std::vector<double>& time, const std::vector<double>& i_branch,
                     double vdd, double t_a, double t_b) {
  double e = 0.0;
  for (size_t i = 1; i < time.size(); ++i) {
    const double lo = std::max(time[i - 1], t_a);
    const double hi = std::min(time[i], t_b);
    if (hi <= lo) continue;
    const double pm = -vdd * 0.5 * (i_branch[i] + i_branch[i - 1]);
    e += pm * (hi - lo);
  }
  return e;
}

}  // namespace

InverterMetrics measure_inverter(const InverterModels& driver, const InverterModels& load,
                                 const InverterMeasureOptions& opts) {
  InverterMetrics m;
  m.static_power_W = inverter_static_power(driver, opts.vdd);
  {
    const Vtc vtc = compute_vtc(driver, opts.vdd);
    m.snm_V = butterfly_snm(vtc, vtc);
  }

  // One full input cycle: rise at T/4, fall at 3T/4.
  const double period = opts.probe_period_s;
  const double t_rise_in = 0.25 * period;
  const double t_fall_in = 0.75 * period;
  const auto waveform = [=](double t) {
    if (t < t_rise_in) return 0.0;
    if (t < t_rise_in + opts.rise_time_s) return opts.vdd * (t - t_rise_in) / opts.rise_time_s;
    if (t < t_fall_in) return opts.vdd;
    if (t < t_fall_in + opts.rise_time_s) {
      return opts.vdd * (1.0 - (t - t_fall_in) / opts.rise_time_s);
    }
    return 0.0;
  };
  Fo4Testbench tb = build_fo4_inverter(driver, load, opts.vdd, waveform);
  TransientOptions topt;
  topt.t_stop = 1.25 * period;
  topt.dt = opts.dt_s;
  const TransientResult tr = run_transient(tb.ckt, topt);
  if (!tr.ok) return m;

  const auto v_in = tr.waves.node(tb.ckt, tb.in);
  const auto v_out = tr.waves.node(tb.ckt, tb.out);
  const auto i_vdd = tr.waves.branch(tb.ckt, tb.vdd_branch);
  const double mid = 0.5 * opts.vdd;

  const auto in_rise = crossing_times(tr.waves.time, v_in, mid, true);
  const auto in_fall = crossing_times(tr.waves.time, v_in, mid, false);
  const auto out_rise = crossing_times(tr.waves.time, v_out, mid, true);
  const auto out_fall = crossing_times(tr.waves.time, v_out, mid, false);
  if (in_rise.empty() || in_fall.empty() || out_rise.empty() || out_fall.empty()) return m;
  // Output falls after the input rise and rises after the input fall.
  const auto first_after = [](const std::vector<double>& ts, double t0) {
    for (const double t : ts) {
      if (t > t0) return t;
    }
    return -1.0;
  };
  const double t_hl = first_after(out_fall, in_rise.front());
  const double t_lh = first_after(out_rise, in_fall.front());
  if (t_hl < 0.0 || t_lh < 0.0) return m;
  m.delay_s = 0.5 * ((t_hl - in_rise.front()) + (t_lh - in_fall.front()));

  // Dynamic power: supply energy of the full cycle minus leakage.
  const double e_cycle = supply_energy(tr.waves.time, i_vdd, opts.vdd, 0.125 * period,
                                       1.125 * period);
  m.dynamic_power_W = std::max(0.0, e_cycle / period - m.static_power_W);
  m.ok = true;
  return m;
}

RingMetrics measure_ring_oscillator(const std::vector<InverterModels>& stages,
                                    const InverterModels& load, const RingMeasureOptions& opts) {
  RingMetrics m;
  for (const auto& s : stages) m.static_power_W += inverter_static_power(s, opts.vdd);

  RingOscillator ro = build_ring_oscillator(stages, load, opts.vdd);
  TransientOptions topt;
  topt.t_stop = opts.t_stop_s;
  topt.dt = opts.dt_s;
  topt.initial_x = ro.kick_state();
  const TransientResult tr = run_transient(ro.ckt, topt);
  if (!tr.ok) return m;

  const auto v0 = tr.waves.node(ro.ckt, ro.stage_out.front());
  const auto i_vdd = tr.waves.branch(ro.ckt, ro.vdd_branch);
  const auto cross = crossing_times(tr.waves.time, v0, 0.5 * opts.vdd, true);
  if (cross.size() < 3) return m;  // did not oscillate (or too slow)
  // Measure over the trailing crossings (settled oscillation), keeping at
  // least two full periods.
  const size_t first = std::min(cross.size() - 3, static_cast<size_t>(
                                    static_cast<double>(cross.size()) *
                                    (1.0 - opts.measure_fraction)));
  const std::vector<double> tail(cross.begin() + static_cast<ptrdiff_t>(first), cross.end());
  const size_t cycles = tail.size() - 1;
  m.frequency_Hz = static_cast<double>(cycles) / (tail.back() - tail.front());
  const double energy = supply_energy(tr.waves.time, i_vdd, opts.vdd, tail.front(), tail.back());
  m.total_power_W = energy / (tail.back() - tail.front());
  m.dynamic_power_W = std::max(0.0, m.total_power_W - m.static_power_W);
  m.energy_per_cycle_J = m.total_power_W / m.frequency_Hz;
  // EDP convention (matches the fJ-ps magnitudes of Table 1): energy per
  // oscillation cycle times the per-stage FO4 delay T / (2 * N_stages).
  const double stage_delay = 1.0 / (2.0 * static_cast<double>(stages.size()) * m.frequency_Hz);
  m.edp_Js = m.energy_per_cycle_J * stage_delay;
  m.ok = true;
  return m;
}

}  // namespace gnrfet::circuit
