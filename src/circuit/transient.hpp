#pragma once

#include "circuit/dc.hpp"

/// Fixed-step trapezoidal transient analysis.
namespace gnrfet::circuit {

struct TransientOptions {
  double t_stop = 1e-9;
  double dt = 0.25e-12;
  int max_newton_iterations = 60;
  double residual_tolerance_A = 1e-10;
  double update_tolerance_V = 1e-7;
  /// Optional initial node voltages (size = num_unknowns). When set, the
  /// run starts from this state instead of the DC operating point — used
  /// to kick ring oscillators.
  std::vector<double> initial_x;
};

struct Waveforms {
  std::vector<double> time;
  /// samples[step][unknown]: node voltages followed by branch currents.
  std::vector<std::vector<double>> samples;

  std::vector<double> node(const Circuit& ckt, NodeId n) const;
  std::vector<double> branch(const Circuit& ckt, size_t branch_index) const;
};

struct TransientResult {
  bool ok = false;
  Waveforms waves;
};

TransientResult run_transient(const Circuit& ckt, const TransientOptions& opts);

}  // namespace gnrfet::circuit
