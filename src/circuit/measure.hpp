#pragma once

#include "circuit/netlists.hpp"

/// Waveform post-processing: delays, oscillation frequency, powers, and
/// the inverter/ring-oscillator figure-of-merit drivers used by the
/// technology-exploration and variability studies.
namespace gnrfet::circuit {

/// Times at which `wave` crosses `level` in the given direction (linear
/// interpolation between samples).
std::vector<double> crossing_times(const std::vector<double>& time,
                                   const std::vector<double>& wave, double level, bool rising);

/// Average of a waveform over [t_start, end].
double average_after(const std::vector<double>& time, const std::vector<double>& wave,
                     double t_start);

/// Oscillation frequency from the mean period of the last rising
/// crossings; returns 0 if fewer than 3 crossings.
double oscillation_frequency(const std::vector<double>& time, const std::vector<double>& wave,
                             double level);

/// Figures of merit of one inverter design (fixed driver/load models).
struct InverterMetrics {
  double delay_s = 0.0;          ///< FO4 propagation delay (rise/fall average)
  double static_power_W = 0.0;   ///< leakage power, mean of the two states
  double dynamic_power_W = 0.0;  ///< switching power at the probe frequency
  double snm_V = 0.0;            ///< butterfly SNM of the inverter pair
  bool ok = false;
};

struct InverterMeasureOptions {
  double vdd = 0.4;
  double probe_period_s = 200e-12;  ///< full switching cycle for P_dyn
  double rise_time_s = 2e-12;
  double dt_s = 0.1e-12;
};

/// Full inverter characterization: DC leakage, FO4 transient delay,
/// dynamic power over one switching cycle, and butterfly SNM.
InverterMetrics measure_inverter(const InverterModels& driver, const InverterModels& load,
                                 const InverterMeasureOptions& opts);

/// Ring-oscillator figures of merit.
struct RingMetrics {
  double frequency_Hz = 0.0;
  double total_power_W = 0.0;    ///< supply power at oscillation
  double static_power_W = 0.0;   ///< leakage of the 15 inverters (DC)
  double dynamic_power_W = 0.0;  ///< total - static
  double energy_per_cycle_J = 0.0;
  double edp_Js = 0.0;  ///< energy per cycle x period
  bool ok = false;
};

struct RingMeasureOptions {
  double vdd = 0.4;
  double t_stop_s = 3.0e-9;
  double dt_s = 0.25e-12;
  double measure_fraction = 0.5;  ///< analyze the trailing fraction
};

RingMetrics measure_ring_oscillator(const std::vector<InverterModels>& stages,
                                    const InverterModels& load, const RingMeasureOptions& opts);

}  // namespace gnrfet::circuit
