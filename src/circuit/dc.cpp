#include "circuit/dc.hpp"

#include <algorithm>
#include <cmath>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "linalg/lu.hpp"

namespace gnrfet::circuit {

namespace {

/// One Newton solve at fixed source scale. Returns converged flag; x is
/// updated in place.
bool newton(const Circuit& ckt, std::vector<double>& x, double source_scale,
            const DcOptions& opts, int* iterations) {
  const size_t n = ckt.num_unknowns();
  TransientContext ctx;
  ctx.dt = 0.0;
  ctx.source_scale = source_scale;
  for (int it = 0; it < opts.max_iterations; ++it) {
    linalg::DMatrix jac(n, n);
    std::vector<double> res(n, 0.0);
    Stamper st(ckt, x, jac, res);
    for (const auto& e : ckt.elements()) e->stamp(st, ctx);
    check_mna_stamp(ckt, jac, res);
    double res_norm = 0.0;
    for (const double r : res) res_norm = std::max(res_norm, std::abs(r));
    if (iterations) *iterations = it;
    // Tiny diagonal regularization (gmin) keeps floating internal nodes
    // solvable without visibly perturbing operating points.
    for (size_t i = 0; i + ckt.num_branches() < n; ++i) jac(i, i) += 1e-12;
    std::vector<double> rhs(n);
    for (size_t i = 0; i < n; ++i) rhs[i] = -res[i];
    std::vector<double> dx;
    try {
      metrics::add(metrics::Counter::kMnaFactorizations);
      dx = linalg::LUReal(jac).solve(rhs);
    } catch (const std::exception&) {
      return false;
    }
    double max_dx = 0.0;
    for (size_t i = 0; i + ckt.num_branches() < n; ++i) {
      dx[i] = std::clamp(dx[i], -opts.max_step_V, opts.max_step_V);
      max_dx = std::max(max_dx, std::abs(dx[i]));
    }
    for (size_t i = 0; i < n; ++i) x[i] += dx[i];
    if (res_norm < opts.residual_tolerance_A && max_dx < opts.update_tolerance_V) return true;
    if (max_dx < opts.update_tolerance_V && res_norm < 1e-9) return true;
  }
  return false;
}

}  // namespace

DcResult solve_dc(const Circuit& ckt, const std::vector<double>& initial,
                  const DcOptions& opts) {
  trace::Span span("circuit", "solve_dc");
  DcResult result;
  result.x.assign(ckt.num_unknowns(), 0.0);
  if (initial.size() == result.x.size()) result.x = initial;

  int iters = 0;
  if (newton(ckt, result.x, 1.0, opts, &iters)) {
    result.converged = true;
    result.iterations = iters;
    return result;
  }
  // Source stepping from zero.
  std::vector<double> x(ckt.num_unknowns(), 0.0);
  const int steps = 20;
  for (int s = 1; s <= steps; ++s) {
    const double scale = static_cast<double>(s) / steps;
    if (!newton(ckt, x, scale, opts, &iters)) {
      result.converged = false;
      return result;
    }
  }
  result.x = x;
  result.converged = true;
  result.iterations = iters;
  return result;
}

}  // namespace gnrfet::circuit
