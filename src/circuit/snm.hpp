#pragma once

#include "circuit/netlists.hpp"

/// Voltage transfer curves and butterfly static noise margins (Sec. 3.1,
/// Fig. 7): SNM is the side of the largest square inscribed in a butterfly
/// lobe; the reported SNM is the smaller lobe (the paper's latch curves
/// collapse one lobe to near zero under asymmetric variations).
namespace gnrfet::circuit {

struct Vtc {
  std::vector<double> vin;
  std::vector<double> vout;
  std::vector<double> supply_current_A;  ///< branch current of the VDD source
};

/// DC sweep of one inverter (no load; VTCs are load-independent in DC).
Vtc compute_vtc(const InverterModels& models, double vdd, int points = 161);

/// Largest inscribed square of one butterfly lobe, where curve A is the
/// VTC of the forward inverter (V2 = fA(V1)) and curve B of the backward
/// inverter (V1 = fB(V2)).
double butterfly_lobe(const Vtc& a, const Vtc& b);

/// The inverse curve (axes swapped, re-sorted ascending).
Vtc invert_vtc(const Vtc& v);

/// SNM = min of the two lobes of the butterfly built from the two VTCs.
double butterfly_snm(const Vtc& a, const Vtc& b);

/// Inverter leakage power: mean supply power of the two logic states.
double inverter_static_power(const InverterModels& models, double vdd);

}  // namespace gnrfet::circuit
