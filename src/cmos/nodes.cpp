#include "cmos/nodes.hpp"

#include <stdexcept>

namespace gnrfet::cmos {

namespace {
/// Common deck with per-node strength/capacitance scaling. Wider, slower,
/// more capacitive devices at the older nodes reproduce the paper's
/// frequency and EDP ordering.
NodeDeck scaled_deck(double k_n, double cg, double w_n, double vth, double ioff) {
  NodeDeck d;
  d.nfet.polarity = model::Polarity::kN;
  d.nfet.width_um = w_n;
  d.nfet.vth_V = vth;
  d.nfet.k_A_per_um = k_n;
  d.nfet.alpha = 1.3;
  d.nfet.subthreshold_n = 1.5;
  d.nfet.dibl_V_per_V = 0.08;
  d.nfet.lambda_per_V = 0.12;
  d.nfet.cgate_fF_per_um = cg;
  d.nfet.ioff_A_per_um = ioff;
  d.pfet = d.nfet;
  d.pfet.polarity = model::Polarity::kP;
  d.pfet.width_um = 2.0 * w_n;       // mobility-ratio sizing
  d.pfet.k_A_per_um = 0.5 * k_n;
  d.parasitics.rs_ohm = 50.0;        // contact resistance per device
  d.parasitics.rd_ohm = 50.0;
  d.parasitics.cgs_e_F = 0.35e-15 * w_n;  // overlap capacitance
  d.parasitics.cgd_e_F = 0.35e-15 * w_n;
  return d;
}
}  // namespace

NodeDeck node_deck(Node node) {
  switch (node) {
    case Node::k22nm:
      return scaled_deck(1.08e-2, 1.10, 1.1, 0.32, 6e-8);
    case Node::k32nm:
      return scaled_deck(9.2e-3, 1.15, 1.5, 0.33, 4e-8);
    case Node::k45nm:
      return scaled_deck(8.2e-3, 1.20, 2.2, 0.35, 3e-8);
  }
  throw std::invalid_argument("node_deck: unknown node");
}

circuit::InverterModels make_cmos_inverter(Node node) {
  const NodeDeck d = node_deck(node);
  circuit::InverterModels m;
  m.nfet = model::make_extrinsic(make_cmos_fet(d.nfet), d.parasitics);
  m.pfet = model::make_extrinsic(make_cmos_fet(d.pfet), d.parasitics);
  return m;
}

const char* node_name(Node node) {
  switch (node) {
    case Node::k22nm:
      return "22nm";
    case Node::k32nm:
      return "32nm";
    case Node::k45nm:
      return "45nm";
  }
  return "?";
}

}  // namespace gnrfet::cmos
