#include "cmos/compact_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace gnrfet::cmos {

namespace {
constexpr double kVt = 0.02585;  // thermal voltage at 300 K

double softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double raw_current(const CmosParams& p, double vgs, double vds) {
  const double vth_eff = p.vth_V - p.dibl_V_per_V * vds;
  const double veff = p.subthreshold_n * kVt *
                      softplus((vgs - vth_eff) / (p.subthreshold_n * kVt));
  const double vdsat = p.vdsat_per_overdrive * veff + 1e-9;
  const double sat = std::tanh(vds / vdsat);
  const double drive = p.k_A_per_um * p.width_um * std::pow(veff, p.alpha);
  const double leak = p.ioff_A_per_um * p.width_um * (1.0 - std::exp(-vds / kVt));
  return drive * sat * (1.0 + p.lambda_per_V * vds) + leak;
}
}  // namespace

CmosFet::CmosFet(const CmosParams& params) : params_(params) {
  GNRFET_REQUIRE("cmos", "physical-parameters",
                 params.width_um > 0.0 && std::isfinite(params.width_um) &&
                     params.k_A_per_um >= 0.0 && std::isfinite(params.vth_V) &&
                     params.subthreshold_n > 0.0,
                 strings::format("width_um = %g, k_A_per_um = %g, vth_V = %g, n = %g",
                                 params.width_um, params.k_A_per_um, params.vth_V,
                                 params.subthreshold_n));
}

model::FetSample CmosFet::current_fwd(double vgs, double vds) const {
  // Central differences: the model is smooth and cheap, and numerical
  // partials keep the equations in one place.
  const double h = 1e-6;
  model::FetSample s;
  s.value = raw_current(params_, vgs, vds);
  s.d_dvgs = (raw_current(params_, vgs + h, vds) - raw_current(params_, vgs - h, vds)) / (2 * h);
  s.d_dvds = (raw_current(params_, vgs, vds + h) - raw_current(params_, vgs, vds - h)) / (2 * h);
  return s;
}

model::FetSample CmosFet::current(double vgs, double vds) const {
  double sign = 1.0;
  if (params_.polarity == model::Polarity::kP) {
    vgs = -vgs;
    vds = -vds;
    sign = -1.0;
  }
  model::FetSample s;
  if (vds >= 0.0) {
    s = current_fwd(vgs, vds);
  } else {
    const model::FetSample f = current_fwd(vgs - vds, -vds);
    s.value = -f.value;
    s.d_dvgs = -f.d_dvgs;
    s.d_dvds = f.d_dvgs + f.d_dvds;
  }
  s.value *= sign;
  // Mirror chain rule: both derivative arguments flip with the bias signs,
  // so the sign cancels for P devices.
  return s;
}

model::FetSample CmosFet::charge(double vgs, double vds) const {
  (void)vds;
  // Constant gate capacitance; overlap/junction parts live in the circuit
  // element's extrinsic capacitances.
  model::FetSample s;
  const double c = params_.cgate_fF_per_um * 1e-15 * params_.width_um;
  s.value = c * vgs;
  s.d_dvgs = c;
  s.d_dvds = 0.0;
  return s;
}

std::shared_ptr<const CmosFet> make_cmos_fet(const CmosParams& params) {
  return std::make_shared<CmosFet>(params);
}

}  // namespace gnrfet::cmos
