#pragma once

#include "circuit/netlists.hpp"
#include "cmos/compact_model.hpp"

/// Calibrated 22/32/45 nm parameter decks and inverter-model builders for
/// the Table 1 comparison. Calibration targets (from the paper's PTM/HSPICE
/// columns): 15-stage FO4 ring frequency ~5.8/4.5/3.5 GHz at VDD = 0.8 V,
/// EDP ~1.1/2.4/4.6 pJ-ps at the 0.6 V optimum, SNM ~0.3 V at 0.8 V.
namespace gnrfet::cmos {

enum class Node { k22nm, k32nm, k45nm };

struct NodeDeck {
  CmosParams nfet;
  CmosParams pfet;
  /// Extrinsic overlap/junction capacitance and contact resistance used in
  /// the shared circuit FET element.
  model::Parasitics parasitics;
};

NodeDeck node_deck(Node node);

/// Complementary inverter models for one node.
circuit::InverterModels make_cmos_inverter(Node node);

const char* node_name(Node node);

}  // namespace gnrfet::cmos
