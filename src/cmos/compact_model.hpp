#pragma once

#include <memory>

#include "model/channel.hpp"

/// Scaled-CMOS baseline for Table 1.
///
/// The paper simulates 22/32/45 nm CMOS ring oscillators with PTM BSIM
/// cards in HSPICE. We substitute a smooth velocity-saturated alpha-power
/// compact model (subthreshold softplus blend, DIBL, channel-length
/// modulation, constant gate capacitance) calibrated per node to PTM-era
/// behaviour — the comparison needs node-level FO4 delay / EDP / SNM
/// trends, not BSIM-card fidelity (see DESIGN.md, substitutions).
namespace gnrfet::cmos {

struct CmosParams {
  model::Polarity polarity = model::Polarity::kN;
  double width_um = 1.0;
  double vth_V = 0.3;            ///< zero-bias threshold
  double k_A_per_um = 1.0e-3;    ///< drive strength at 1 V overdrive
  double alpha = 1.3;            ///< velocity-saturation exponent
  double subthreshold_n = 1.6;   ///< softplus ideality (sets SS with alpha)
  double dibl_V_per_V = 0.08;
  double lambda_per_V = 0.15;    ///< channel-length modulation
  double vdsat_per_overdrive = 0.8;
  double cgate_fF_per_um = 1.2;  ///< total intrinsic gate capacitance
  double ioff_A_per_um = 0.0;    ///< additional junction/GIDL leakage floor
};

/// Smooth MOSFET model implementing the shared ChannelModel interface.
/// p-type devices evaluate the n-equations at mirrored biases; negative
/// vds uses the source/drain-swap antisymmetry.
class CmosFet final : public model::ChannelModel {
 public:
  explicit CmosFet(const CmosParams& params);
  model::FetSample current(double vgs, double vds) const override;
  model::FetSample charge(double vgs, double vds) const override;
  model::Polarity polarity() const override { return params_.polarity; }
  const CmosParams& params() const { return params_; }

 private:
  model::FetSample current_fwd(double vgs, double vds) const;  ///< vds >= 0, n-type frame
  CmosParams params_;
};

std::shared_ptr<const CmosFet> make_cmos_fet(const CmosParams& params);

}  // namespace gnrfet::cmos
