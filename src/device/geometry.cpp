#include "device/geometry.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/constants.hpp"

namespace gnrfet::device {

namespace {
gnr::Lattice make_lattice(const DeviceSpec& s) {
  const int slices = gnr::Lattice::slices_for_length(s.channel_length_nm);
  return gnr::Lattice::armchair(s.n_index, slices, s.edge_delta);
}

/// Snap a grid so that `span` is covered by an integer number of steps of
/// roughly `target` size; returns (count, step).
std::pair<size_t, double> snap(double span, double target) {
  const size_t cells = std::max<size_t>(2, static_cast<size_t>(std::round(span / target)));
  return {cells + 1, span / static_cast<double>(cells)};
}
}  // namespace

std::string DeviceSpec::cache_key() const {
  std::ostringstream os;
  os.precision(10);
  os << "N=" << n_index << ";L=" << channel_length_nm << ";tox=" << oxide_thickness_nm
     << ";eps=" << oxide_eps_r << ";t=" << hopping_eV << ";delta=" << edge_delta
     << ";gamma=" << contact_gamma_eV << ";modes=" << num_modes
     << ";cm=" << contact_margin_nm << ";lm=" << lateral_margin_nm << ";h=" << grid_step_nm;
  for (const auto& imp : impurities) {
    os << ";imp(" << imp.charge_e << "," << imp.x_nm << "," << imp.offset_y_nm << ","
       << imp.z_nm << ")";
  }
  return os.str();
}

DeviceGeometry::DeviceGeometry(const DeviceSpec& spec)
    : spec_(spec),
      lattice_(make_lattice(spec)),
      modes_(gnr::build_mode_set(spec.n_index, {spec.hopping_eV, spec.edge_delta},
                                 spec.num_modes)) {
  const double lat_len = lattice_.length_nm();
  const double width = lattice_.width_nm();
  x_offset_ = spec.contact_margin_nm;
  y_offset_ = spec.lateral_margin_nm;

  poisson::GridSpec g;
  const double len_x = lat_len + 2.0 * spec.contact_margin_nm;
  const double len_y = width + 2.0 * spec.lateral_margin_nm;
  const double len_z = 2.0 * spec.oxide_thickness_nm;
  const auto [nx, dx] = snap(len_x, spec.grid_step_nm);
  const auto [ny, dy] = snap(len_y, spec.grid_step_nm);
  // Force an even cell count in z so the GNR plane z = 0 is a grid plane.
  size_t nz_cells = std::max<size_t>(2, static_cast<size_t>(std::round(len_z / spec.grid_step_nm)));
  if (nz_cells % 2 == 1) ++nz_cells;
  g.nx = nx;
  g.ny = ny;
  g.nz = nz_cells + 1;
  g.dx = dx;
  g.dy = dy;
  g.dz = len_z / static_cast<double>(nz_cells);
  g.x0 = 0.0;
  g.y0 = 0.0;
  g.z0 = -spec.oxide_thickness_nm;

  domain_ = std::make_unique<poisson::Domain>(g);
  // Whole stack is gate oxide.
  domain_->paint_permittivity({-1.0, len_x + 1.0, -1.0, len_y + 1.0, -len_z, len_z},
                              spec.oxide_eps_r);
  // Double gate: top and bottom planes, one electrode id. Painting a
  // single electrode in two passes requires one id, so use a two-box
  // union via two add_electrode calls would create two ids; instead paint
  // the z extremes with one call each and merge by registering the gate
  // last and reusing the id through a shared box trick is not available,
  // so the gate is registered twice and both ids map to the same voltage
  // via electrode_voltages(). Simpler: source, drain, gate_bottom,
  // gate_top in that order.
  const double eps_len = 1e-6;
  electrodes_.source = domain_->add_electrode(
      {-eps_len, eps_len, -1.0, len_y + 1.0, g.z0 + 0.5 * g.dz, -g.z0 - 0.5 * g.dz});
  electrodes_.drain = domain_->add_electrode(
      {len_x - eps_len, len_x + eps_len, -1.0, len_y + 1.0, g.z0 + 0.5 * g.dz,
       -g.z0 - 0.5 * g.dz});
  electrodes_.gate = domain_->add_electrode(
      {-1.0, len_x + 1.0, -1.0, len_y + 1.0, g.z0 - eps_len, g.z0 + eps_len});
  const int gate_top = domain_->add_electrode(
      {-1.0, len_x + 1.0, -1.0, len_y + 1.0, -g.z0 - eps_len, -g.z0 + eps_len});
  if (gate_top != electrodes_.gate + 1) {
    throw std::logic_error("DeviceGeometry: unexpected electrode id ordering");
  }

  assembly_ = std::make_unique<poisson::Assembly>(*domain_);

  impurity_charge_.assign(g.num_nodes(), 0.0);
  for (const auto& imp : spec.impurities) {
    if (imp.charge_e == 0.0) continue;
    const double x = x_offset_ + imp.x_nm;
    const double y = y_offset_ + 0.5 * width + imp.offset_y_nm;
    domain_->deposit_charge(x, y, imp.z_nm, imp.charge_e, impurity_charge_);
  }
}

double DeviceGeometry::column_x(size_t c) const {
  return x_offset_ + lattice_.column_x_nm().at(c);
}

double DeviceGeometry::line_y(int j) const {
  return y_offset_ + lattice_.dimer_line_y_nm(j);
}

std::vector<double> DeviceGeometry::electrode_voltages(double vs, double vd, double vg) const {
  // Order: source, drain, gate(bottom), gate(top).
  return {vs, vd, vg, vg};
}

}  // namespace gnrfet::device
