#include "device/selfconsistent.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "common/trace.hpp"
#include "poisson/solver.hpp"

namespace gnrfet::device {

SelfConsistentSolver::SelfConsistentSolver(const DeviceGeometry& geometry,
                                           const SolveOptions& opts)
    : geo_(geometry), opts_(opts) {}

DeviceSolution SelfConsistentSolver::solve(const BiasPoint& bias,
                                           const DeviceSolution* warm_start,
                                           negf::TransportContext* transport_ctx) const {
  trace::Span span("device", "solve_bias_point");
  GNRFET_REQUIRE("device", "finite-bias", std::isfinite(bias.vg) && std::isfinite(bias.vd),
                 strings::format("bias point (vg = %g, vd = %g) contains NaN/inf", bias.vg,
                                 bias.vd));
  const auto& dom = geo_.domain();
  const auto& grid = dom.spec();
  const auto& lat = geo_.lattice();
  const size_t ncol = lat.column_x_nm().size();
  const size_t nlines = static_cast<size_t>(lat.n_index());

  const std::vector<double> volts = geo_.electrode_voltages(0.0, bias.vd, bias.vg);

  // One reusable Poisson solver for the whole bias point: the Jacobian
  // copy, preconditioner factorization, and PCG workspace persist across
  // every Newton iteration of every Gummel iteration below. Local to this
  // call because solve() runs concurrently on pool threads.
  poisson::PoissonSolver psolver(geo_.assembly());

  // Initial potential: warm start or the charge-free (Laplace + impurity)
  // solution. A warm start whose potential was solved on a different grid
  // is a caller bug (e.g. mixing solutions across geometries) — reject it
  // instead of silently discarding it and paying the cold-start cost.
  std::vector<double> phi;
  if (warm_start) {
    GNRFET_REQUIRE("device", "warm-start-grid-match",
                   warm_start->phi_full.size() == grid.num_nodes(),
                   strings::format("warm_start->phi_full has %zu nodes, grid has %zu",
                                   warm_start->phi_full.size(), grid.num_nodes()));
    phi = warm_start->phi_full;
  } else {
    phi = psolver.solve_linear(volts, geo_.impurity_charge());
  }

  negf::TransportOptions topt;
  topt.gamma_contact_eV = geo_.spec().contact_gamma_eV;
  topt.mu_source_eV = 0.0;
  topt.mu_drain_eV = -bias.vd;
  topt.kT_eV = opts_.kT_eV;
  topt.eta_eV = opts_.eta_eV;
  topt.energy_step_eV = opts_.energy_step_eV;

  DeviceSolution sol;
  std::vector<std::vector<double>> u(ncol, std::vector<double>(nlines, 0.0));
  std::vector<double> n_nodes(grid.num_nodes(), 0.0), p_nodes(grid.num_nodes(), 0.0);
  negf::TransportSolution transport;

  // The ribbon sample points are fixed for the whole bias point, so the
  // trilinear stencils behind every gather (potential), deposit (charge),
  // and convergence probe below are hoisted out of the Gummel loop.
  std::vector<poisson::Domain::CicStencil> ribbon(ncol * nlines);
  for (size_t c = 0; c < ncol; ++c) {
    for (size_t j = 0; j < nlines; ++j) {
      ribbon[c * nlines + j] =
          dom.stencil(geo_.column_x(c), geo_.line_y(static_cast<int>(j)), 0.0);
    }
  }

  // Adaptive-grid warm start shared by the Gummel iterations of this bias
  // point: each transport solve reuses the previous converged panel edges.
  // A caller-owned context extends the reuse across bias points on the
  // same warm-start chain (table columns).
  negf::TransportContext local_ctx;
  negf::TransportContext& tctx = transport_ctx != nullptr ? *transport_ctx : local_ctx;

  poisson::NonlinearOptions popt;
  popt.thermal_voltage_V = opts_.kT_eV;

  for (int it = 0; it < opts_.max_gummel_iterations; ++it) {
    // Gather the electron potential energy on the ribbon: U = -phi [eV].
    for (size_t c = 0; c < ncol; ++c) {
      for (size_t j = 0; j < nlines; ++j) {
        u[c][j] = -dom.gather(phi, ribbon[c * nlines + j]);
      }
    }
    transport = negf::solve_mode_space(geo_.modes(), u, topt, tctx);

    // Deposit electron/hole populations onto the grid.
    std::fill(n_nodes.begin(), n_nodes.end(), 0.0);
    std::fill(p_nodes.begin(), p_nodes.end(), 0.0);
    for (size_t c = 0; c < ncol; ++c) {
      for (size_t j = 0; j < nlines; ++j) {
        const poisson::Domain::CicStencil& st = ribbon[c * nlines + j];
        if (transport.electrons[c][j] > 0.0) {
          dom.deposit(st, transport.electrons[c][j], n_nodes);
        }
        if (transport.holes[c][j] > 0.0) {
          dom.deposit(st, transport.holes[c][j], p_nodes);
        }
      }
    }

    const auto pres =
        psolver.solve_nonlinear(volts, n_nodes, p_nodes, geo_.impurity_charge(), phi, phi, popt);
    // Convergence metric: potential change on the ribbon plane.
    double max_change = 0.0;
    for (size_t c = 0; c < ncol; ++c) {
      for (size_t j = 0; j < nlines; ++j) {
        const poisson::Domain::CicStencil& st = ribbon[c * nlines + j];
        const double before = dom.gather(phi, st);
        const double after = dom.gather(pres.phi_full, st);
        max_change = std::max(max_change, std::abs(after - before));
      }
    }
    phi = pres.phi_full;
    sol.iterations = it + 1;
    if (max_change < opts_.gummel_tolerance_V) {
      sol.converged = true;
      break;
    }
  }
  metrics::add(metrics::Counter::kGummelIterations, static_cast<uint64_t>(sol.iterations));
  metrics::observe(metrics::Histogram::kGummelIterationsPerBias,
                   static_cast<double>(sol.iterations));

  // Final transport pass on the converged potential.
  for (size_t c = 0; c < ncol; ++c) {
    for (size_t j = 0; j < nlines; ++j) {
      u[c][j] = -dom.gather(phi, ribbon[c * nlines + j]);
    }
  }
  transport = negf::solve_mode_space(geo_.modes(), u, topt, tctx);

  // Ballistic source/drain current continuity: the drain-side Landauer
  // integral (independent right-connected RGF sweeps) must agree with the
  // source-side one. A mismatch means the two contact solutions see
  // different devices — the Zhao-Guo failure mode where edge effects
  // decouple the mode-space from the real-space picture.
  GNRFET_ENSURE("device", "source-drain-current-continuity",
                std::abs(transport.current_A - transport.current_drain_A) <=
                    1e-6 * (std::abs(transport.current_A) +
                            std::abs(transport.current_drain_A)) +
                        1e-15,
                strings::format("I_source = %.12g A vs I_drain = %.12g A at vg = %g, vd = %g",
                                transport.current_A, transport.current_drain_A, bias.vg,
                                bias.vd));
  sol.current_A = transport.current_A;
  sol.net_electrons = transport.total_net_electrons;
  sol.phi_full = std::move(phi);
  sol.midgap_profile_eV.resize(ncol);
  sol.column_x_nm.resize(ncol);
  for (size_t c = 0; c < ncol; ++c) {
    double s = 0.0;
    for (size_t j = 0; j < nlines; ++j) s += u[c][j];
    sol.midgap_profile_eV[c] = s / static_cast<double>(nlines);
    sol.column_x_nm[c] = lat.column_x_nm()[c];
  }
  return sol;
}

}  // namespace gnrfet::device
