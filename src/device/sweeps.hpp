#pragma once

#include <vector>

#include "device/selfconsistent.hpp"

/// Bias sweeps over the self-consistent device and classic MOS parameter
/// extraction (threshold voltage per Fig. 2(b)).
namespace gnrfet::device {

struct IvPoint {
  double vg = 0.0;
  double vd = 0.0;
  double current_A = 0.0;
  double charge_C = 0.0;  ///< channel charge Q = -e * net electrons
  bool converged = false;
};

/// Gate sweep at fixed drain bias; consecutive points are warm-started.
std::vector<IvPoint> sweep_gate(const DeviceGeometry& geometry, const SolveOptions& opts,
                                double vd, const std::vector<double>& vg_values);

/// Uniformly spaced voltage axis [lo, hi] with `count` points.
std::vector<double> voltage_axis(double lo, double hi, size_t count);

/// Threshold voltage by the maximum-transconductance linear-extrapolation
/// method (Fig. 2(b)): the tangent of I_D(V_G) at the max-gm point
/// intersects the V_G axis at VT. Uses only the n-branch
/// (points above the current minimum).
double extract_threshold_voltage(const std::vector<double>& vg,
                                 const std::vector<double>& id_A);

}  // namespace gnrfet::device
