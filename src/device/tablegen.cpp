#include "device/tablegen.hpp"

#include <sstream>

#include "common/cache.hpp"
#include "common/constants.hpp"
#include "common/csv.hpp"
#include "device/sweeps.hpp"
#include "gnr/bandstructure.hpp"

namespace gnrfet::device {

std::string table_cache_payload(const DeviceSpec& spec, const TableGenOptions& opts) {
  std::ostringstream os;
  os.precision(10);
  os << spec.cache_key() << "|vg[" << opts.vg_min << "," << opts.vg_max << ","
     << opts.vg_points << "]vd[" << opts.vd_min << "," << opts.vd_max << "," << opts.vd_points
     << "]de=" << opts.solve.energy_step_eV << ";eta=" << opts.solve.eta_eV
     << ";kT=" << opts.solve.kT_eV << ";gtol=" << opts.solve.gummel_tolerance_V
     << ";gmax=" << opts.solve.max_gummel_iterations;
  return os.str();
}

void save_table(const DeviceTable& table, const std::string& path, const std::string& key) {
  csv::Table t({"vg", "vd", "current_A", "charge_C"});
  t.set_meta("key", key);
  t.set_meta("band_gap_eV", std::to_string(table.band_gap_eV));
  t.set_meta("nvg", std::to_string(table.vg.size()));
  t.set_meta("nvd", std::to_string(table.vd.size()));
  for (size_t ig = 0; ig < table.vg.size(); ++ig) {
    for (size_t id = 0; id < table.vd.size(); ++id) {
      t.add_row({table.vg[ig], table.vd[id], table.at_current(ig, id), table.at_charge(ig, id)});
    }
  }
  t.save(path);
}

DeviceTable load_table(const std::string& path) {
  const csv::Table t = csv::Table::load(path);
  DeviceTable table;
  table.band_gap_eV = std::stod(t.meta("band_gap_eV", "0"));
  const size_t nvg = std::stoul(t.meta("nvg"));
  const size_t nvd = std::stoul(t.meta("nvd"));
  if (t.num_rows() != nvg * nvd) throw std::runtime_error("load_table: row count mismatch");
  table.vg.resize(nvg);
  table.vd.resize(nvd);
  table.current_A.resize(nvg * nvd);
  table.charge_C.resize(nvg * nvd);
  for (size_t ig = 0; ig < nvg; ++ig) {
    for (size_t id = 0; id < nvd; ++id) {
      const size_t row = ig * nvd + id;
      table.vg[ig] = t.at(row, "vg");
      table.vd[id] = t.at(row, "vd");
      table.current_A[row] = t.at(row, "current_A");
      table.charge_C[row] = t.at(row, "charge_C");
    }
  }
  return table;
}

DeviceTable generate_device_table(const DeviceSpec& spec, const TableGenOptions& opts) {
  const std::string payload = table_cache_payload(spec, opts);
  const std::string path = cache::path_for("device-table", payload);
  if (opts.use_cache && cache::exists(path)) {
    return load_table(path);
  }

  const DeviceGeometry geometry(spec);
  const SelfConsistentSolver solver(geometry, opts.solve);

  DeviceTable table;
  table.vg = voltage_axis(opts.vg_min, opts.vg_max, opts.vg_points);
  table.vd = voltage_axis(opts.vd_min, opts.vd_max, opts.vd_points);
  table.current_A.assign(opts.vg_points * opts.vd_points, 0.0);
  table.charge_C.assign(opts.vg_points * opts.vd_points, 0.0);
  table.band_gap_eV = geometry.modes().band_gap_eV();

  // Walk the grid drain-major, warm-starting each point from the previous
  // gate point in the same column, and each column head from the previous
  // column's head solution.
  std::vector<DeviceSolution> column_heads(1);
  DeviceSolution prev_head;
  bool have_head = false;
  for (size_t id = 0; id < table.vd.size(); ++id) {
    DeviceSolution prev;
    bool have_prev = false;
    for (size_t ig = 0; ig < table.vg.size(); ++ig) {
      const DeviceSolution* start = nullptr;
      if (have_prev) {
        start = &prev;
      } else if (have_head) {
        start = &prev_head;
      }
      const DeviceSolution sol = solver.solve({table.vg[ig], table.vd[id]}, start);
      const size_t row = ig * table.vd.size() + id;
      table.current_A[row] = sol.current_A;
      table.charge_C[row] = -constants::kElementaryCharge * sol.net_electrons;
      if (ig == 0) {
        prev_head = sol;
        have_head = true;
      }
      prev = sol;
      have_prev = true;
    }
  }

  if (opts.use_cache) save_table(table, path, payload);
  return table;
}

}  // namespace gnrfet::device
