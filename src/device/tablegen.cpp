#include "device/tablegen.hpp"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/cache.hpp"
#include "common/constants.hpp"
#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "device/sweeps.hpp"
#include "gnr/bandstructure.hpp"
#include "negf/transport.hpp"

namespace gnrfet::device {

std::string table_cache_payload(const DeviceSpec& spec, const TableGenOptions& opts) {
  std::ostringstream os;
  // max_digits10: the key must distinguish every representable bias/option
  // value. At the old precision(10), two specs differing below the 11th
  // significant digit collided onto one cache key and served the wrong
  // table. Keys for non-representable decimal values change with this fix
  // (those cache entries regenerate once).
  os.precision(std::numeric_limits<double>::max_digits10);
  os << spec.cache_key() << "|vg[" << opts.vg_min << "," << opts.vg_max << ","
     << opts.vg_points << "]vd[" << opts.vd_min << "," << opts.vd_max << "," << opts.vd_points
     << "]de=" << opts.solve.energy_step_eV << ";eta=" << opts.solve.eta_eV
     << ";kT=" << opts.solve.kT_eV << ";gtol=" << opts.solve.gummel_tolerance_V
     << ";gmax=" << opts.solve.max_gummel_iterations;
  // The energy-integration strategy changes table values (within the
  // adaptive tolerance), so adaptive tables get their own cache entries.
  // The uniform payload stays byte-identical to the pre-adaptive one: old
  // cached tables remain valid for GNRFET_NEGF_GRID=uniform, which is
  // bit-identical to the pre-adaptive solver.
  if (negf::negf_grid_from_env() == negf::NegfGridKind::kAdaptive) {
    os << ";grid=adaptive";
    // Cross-bias context chaining reseeds the adaptive panels, which moves
    // table values within tolerance — distinct cache entries. Uniform-mode
    // payloads never carry the flag: the context is ignored there.
    if (opts.warm_bias_context) os << ";ctx=bias";
  }
  return os.str();
}

void save_table(const DeviceTable& table, const std::string& path, const std::string& key) {
  trace::Span span("device", "save_table");
  csv::Table t({"vg", "vd", "current_A", "charge_C"});
  t.set_meta("key", key);
  // std::to_string truncates to 6 digits; the metadata must round-trip the
  // gap bit-for-bit just like the table body (cache hit == cache miss).
  std::ostringstream gap;
  gap.precision(std::numeric_limits<double>::max_digits10);
  gap << table.band_gap_eV;
  t.set_meta("band_gap_eV", gap.str());
  t.set_meta("nvg", std::to_string(table.vg.size()));
  t.set_meta("nvd", std::to_string(table.vd.size()));
  for (size_t ig = 0; ig < table.vg.size(); ++ig) {
    for (size_t id = 0; id < table.vd.size(); ++id) {
      t.add_row({table.vg[ig], table.vd[id], table.at_current(ig, id), table.at_charge(ig, id)});
    }
  }
  // Write-to-temp + atomic rename: concurrent benches sharing data/cache
  // (or a crash mid-write) can never leave a torn CSV at the final path.
  // The suffix carries pid + thread id + a process-wide counter: two
  // threads of one process racing on the same cache path must not share a
  // temp file, or one renames the other's half-written table into place.
  static std::atomic<uint64_t> tmp_counter{0};
  std::ostringstream suffix;
  suffix << ::getpid() << "." << std::this_thread::get_id() << "."
         << tmp_counter.fetch_add(1, std::memory_order_relaxed);
  const std::string tmp = path + ".tmp." + suffix.str();
  try {
    t.save(tmp);
  } catch (const std::exception& e) {
    // A failed write (disk full, unwritable directory) must not leave the
    // partial temp file behind; rethrow with the final path named.
    std::error_code cleanup_ec;
    std::filesystem::remove(tmp, cleanup_ec);
    throw std::runtime_error("save_table: cannot write " + path + ": " + e.what());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    const std::string reason = ec.message();
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("save_table: cannot rename into place: " + path + ": " + reason);
  }
}

namespace {

/// Contract check of a finished table, whether freshly generated or loaded
/// from the on-disk cache: bias axes strictly ascending, every current and
/// charge entry finite, band gap physical. `origin` names the producer in
/// the violation detail.
void validate_table(const DeviceTable& table, const std::string& origin) {
  GNRFET_REQUIRE("device/tablegen", "monotone-bias-axes",
                 contracts::strictly_ascending(table.vg) &&
                     contracts::strictly_ascending(table.vd),
                 origin + ": vg/vd axes must be finite and strictly ascending");
  GNRFET_REQUIRE("device/tablegen", "finite-table",
                 contracts::all_finite(table.current_A) && contracts::all_finite(table.charge_C),
                 origin + ": current/charge entries contain NaN/inf");
  GNRFET_REQUIRE("device/tablegen", "physical-band-gap",
                 std::isfinite(table.band_gap_eV) && table.band_gap_eV >= 0.0,
                 origin + ": band_gap_eV = " + std::to_string(table.band_gap_eV));
}

/// Parse a required size_t metadata field of a cached table, with errors
/// that name the file and field instead of std::stoul's bare exceptions.
size_t require_size_meta(const csv::Table& t, const std::string& key, const std::string& path) {
  const std::string raw = t.meta(key);
  if (raw.empty()) {
    throw std::runtime_error("load_table: " + path + ": missing '" + key +
                             "' metadata (corrupt or truncated cache file)");
  }
  // Digits only, up front: std::stoul accepts leading whitespace and a
  // sign, and "-3" wraps to ~2^64 — which passes the pos/nonzero checks and
  // turns a corrupt cache file into an overflow/bad_alloc far from here.
  const bool digits_only = raw.find_first_not_of("0123456789") == std::string::npos;
  size_t pos = 0;
  unsigned long value = 0;
  try {
    if (digits_only) value = std::stoul(raw, &pos);
  } catch (const std::exception&) {
    pos = 0;  // out_of_range on absurdly long digit strings
  }
  if (!digits_only || pos != raw.size() || value == 0) {
    throw std::runtime_error("load_table: " + path + ": malformed '" + key + "' metadata '" +
                             raw + "' (corrupt cache file)");
  }
  return static_cast<size_t>(value);
}

}  // namespace

DeviceTable load_table(const std::string& path) {
  trace::Span span("device", "load_table");
  const csv::Table t = csv::Table::load(path);
  DeviceTable table;
  table.band_gap_eV = std::stod(t.meta("band_gap_eV", "0"));
  const size_t nvg = require_size_meta(t, "nvg", path);
  const size_t nvd = require_size_meta(t, "nvd", path);
  // Bound the product before computing it: corrupt sizes whose product
  // wraps could alias the actual row count and drive resize() into a
  // multi-exabyte allocation instead of the corrupt-cache-file error.
  if (nvg > std::numeric_limits<size_t>::max() / nvd) {
    throw std::runtime_error("load_table: " + path + ": nvg*nvd = " + std::to_string(nvg) +
                             "*" + std::to_string(nvd) +
                             " overflows size_t (corrupt cache file)");
  }
  if (t.num_rows() != nvg * nvd) {
    throw std::runtime_error("load_table: " + path + ": row count " +
                             std::to_string(t.num_rows()) + " != nvg*nvd = " +
                             std::to_string(nvg * nvd) + " (corrupt cache file)");
  }
  table.vg.resize(nvg);
  table.vd.resize(nvd);
  table.current_A.resize(nvg * nvd);
  table.charge_C.resize(nvg * nvd);
  for (size_t ig = 0; ig < nvg; ++ig) {
    for (size_t id = 0; id < nvd; ++id) {
      const size_t row = ig * nvd + id;
      const double vg = t.at(row, "vg");
      const double vd = t.at(row, "vd");
      // Each row restates its axis coordinates; a row disagreeing with the
      // already-recorded entry means scrambled/truncated-and-padded data and
      // must not silently overwrite the axis.
      if (id == 0) {
        table.vg[ig] = vg;
      } else if (vg != table.vg[ig]) {
        throw std::runtime_error("load_table: " + path + ": row " + std::to_string(row) +
                                 " vg disagrees with its axis entry (corrupt cache file)");
      }
      if (ig == 0) {
        table.vd[id] = vd;
      } else if (vd != table.vd[id]) {
        throw std::runtime_error("load_table: " + path + ": row " + std::to_string(row) +
                                 " vd disagrees with its axis entry (corrupt cache file)");
      }
      table.current_A[row] = t.at(row, "current_A");
      table.charge_C[row] = t.at(row, "charge_C");
    }
  }
  validate_table(table, "load_table(" + path + ")");
  return table;
}

bool table_chains_context(const TableGenOptions& opts) {
  return opts.warm_bias_context && negf::negf_grid_from_env() == negf::NegfGridKind::kAdaptive;
}

TableHeadRow solve_table_heads(const SelfConsistentSolver& solver, const std::vector<double>& vg,
                               const std::vector<double>& vd, const TableGenOptions& opts) {
  // Phase 1: the serial chain of column heads (ig = 0 across drain
  // biases), each warm-started from the previous head. The adaptive
  // TransportContext walks the same chain and is snapshotted per column,
  // so each VG chain advances its own copy.
  TableHeadRow row;
  row.chain_ctx = table_chains_context(opts);
  const size_t nvd = vd.size();
  row.heads.resize(nvd);
  if (row.chain_ctx) row.ctx.resize(nvd);
  negf::TransportContext row_ctx;
  for (size_t id = 0; id < nvd; ++id) {
    row.heads[id] = solver.solve({vg[0], vd[id]}, id > 0 ? &row.heads[id - 1] : nullptr,
                                 row.chain_ctx ? &row_ctx : nullptr);
    if (row.chain_ctx) row.ctx[id] = row_ctx;
  }
  return row;
}

TableColumnResult solve_table_column(const SelfConsistentSolver& solver,
                                     const std::vector<double>& vg, double vd,
                                     const DeviceSolution& head, negf::TransportContext* ctx) {
  // Phase 2: one drain column's VG chain, warm-started from its head.
  // Bit-identity across process/thread layouts rests on this function: the
  // in-process path, the shard worker, and the retry after a worker crash
  // all run exactly this code on exactly these inputs.
  TableColumnResult col;
  const size_t nvg = vg.size();
  if (nvg <= 1) return col;
  col.current_A.resize(nvg - 1);
  col.charge_C.resize(nvg - 1);
  DeviceSolution prev = head;
  for (size_t ig = 1; ig < nvg; ++ig) {
    DeviceSolution sol = solver.solve({vg[ig], vd}, &prev, ctx);
    col.current_A[ig - 1] = sol.current_A;
    col.charge_C[ig - 1] = -constants::kElementaryCharge * sol.net_electrons;
    prev = std::move(sol);
  }
  return col;
}

DeviceTable generate_device_table(const DeviceSpec& spec, const TableGenOptions& opts) {
  trace::Span span("device", "generate_device_table");
  const std::string payload = table_cache_payload(spec, opts);
  const std::string path = cache::path_for("device-table", payload);
  if (opts.use_cache && cache::exists(path)) {
    metrics::add(metrics::Counter::kTableCacheHits);
    return load_table(path);
  }
  if (opts.use_cache) metrics::add(metrics::Counter::kTableCacheMisses);

  const DeviceGeometry geometry(spec);
  const SelfConsistentSolver solver(geometry, opts.solve);

  DeviceTable table;
  table.vg = voltage_axis(opts.vg_min, opts.vg_max, opts.vg_points);
  table.vd = voltage_axis(opts.vd_min, opts.vd_max, opts.vd_points);
  table.current_A.assign(opts.vg_points * opts.vd_points, 0.0);
  table.charge_C.assign(opts.vg_points * opts.vd_points, 0.0);
  table.band_gap_eV = geometry.modes().band_gap_eV();

  // Walk the grid drain-major, warm-starting each point from the previous
  // gate point in the same column, and each column head from the previous
  // column's head solution. Phase 1 solves the serial chain of column
  // heads; given its head, each drain column is then independent, so
  // phase 2 fans the intra-column VG chains out across threads (or, in
  // service/shardgen, across worker processes). The warm-start graph is
  // identical to the serial walk, so the table is bit-identical for any
  // thread or worker count.
  const size_t nvd = table.vd.size();
  TableHeadRow row = solve_table_heads(solver, table.vg, table.vd, opts);
  for (size_t id = 0; id < nvd; ++id) {
    table.current_A[id] = row.heads[id].current_A;
    table.charge_C[id] = -constants::kElementaryCharge * row.heads[id].net_electrons;
  }
  par::parallel_for(nvd, [&](size_t id) {
    negf::TransportContext col_ctx;
    if (row.chain_ctx) col_ctx = std::move(row.ctx[id]);
    const TableColumnResult col = solve_table_column(solver, table.vg, table.vd[id],
                                                     row.heads[id],
                                                     row.chain_ctx ? &col_ctx : nullptr);
    for (size_t ig = 1; ig < table.vg.size(); ++ig) {
      const size_t idx = ig * nvd + id;
      table.current_A[idx] = col.current_A[ig - 1];
      table.charge_C[idx] = col.charge_C[ig - 1];
    }
  });

  validate_table(table, "generate_device_table");
  if (opts.use_cache) save_table(table, path, payload);
  return table;
}

}  // namespace gnrfet::device
