#pragma once

#include <string>
#include <vector>

#include "device/geometry.hpp"
#include "device/selfconsistent.hpp"

/// Generation (with on-disk caching) of the intrinsic-device lookup tables
/// I_D(V_G, V_D) and Q(V_G, V_D) that feed the circuit simulator (Sec. 3).
namespace gnrfet::device {

/// Intrinsic single-GNR device table on a rectangular bias grid.
struct DeviceTable {
  std::vector<double> vg;        ///< gate axis [V], ascending
  std::vector<double> vd;        ///< drain axis [V], ascending
  std::vector<double> current_A; ///< row-major [ivg * nvd + ivd]
  std::vector<double> charge_C;  ///< channel charge, same layout
  double band_gap_eV = 0.0;

  double at_current(size_t ivg, size_t ivd) const { return current_A[ivg * vd.size() + ivd]; }
  double at_charge(size_t ivg, size_t ivd) const { return charge_C[ivg * vd.size() + ivd]; }
};

struct TableGenOptions {
  double vg_min = 0.0;
  double vg_max = 0.75;
  double vd_min = 0.0;
  double vd_max = 0.75;
  size_t vg_points = 16;  ///< 0.05 V steps over [0, 0.75]
  size_t vd_points = 16;
  SolveOptions solve;
  bool use_cache = true;
  /// Chain the adaptive energy-grid TransportContext across bias points
  /// along each warm-start chain (column heads serially, then up each VG
  /// column): every solve seeds its panel edges from the previous bias
  /// instead of the coarse grid. Values move within the adaptive
  /// tolerance (cache entries get their own key); the uniform grid is
  /// unaffected. Tables stay bit-identical for any GNRFET_THREADS.
  bool warm_bias_context = true;
};

/// Serializable identity of (spec, options); the cache key.
std::string table_cache_payload(const DeviceSpec& spec, const TableGenOptions& opts);

/// Generate (or load from cache) the device table. Generation walks the
/// bias grid warm-starting each point from its neighbour.
DeviceTable generate_device_table(const DeviceSpec& spec, const TableGenOptions& opts = {});

/// Serialization helpers (exposed for tests).
void save_table(const DeviceTable& table, const std::string& path, const std::string& key);
DeviceTable load_table(const std::string& path);

}  // namespace gnrfet::device
