#pragma once

#include <string>
#include <vector>

#include "device/geometry.hpp"
#include "device/selfconsistent.hpp"
#include "negf/transport.hpp"

/// Generation (with on-disk caching) of the intrinsic-device lookup tables
/// I_D(V_G, V_D) and Q(V_G, V_D) that feed the circuit simulator (Sec. 3).
namespace gnrfet::device {

/// Intrinsic single-GNR device table on a rectangular bias grid.
struct DeviceTable {
  std::vector<double> vg;        ///< gate axis [V], ascending
  std::vector<double> vd;        ///< drain axis [V], ascending
  std::vector<double> current_A; ///< row-major [ivg * nvd + ivd]
  std::vector<double> charge_C;  ///< channel charge, same layout
  double band_gap_eV = 0.0;

  double at_current(size_t ivg, size_t ivd) const { return current_A[ivg * vd.size() + ivd]; }
  double at_charge(size_t ivg, size_t ivd) const { return charge_C[ivg * vd.size() + ivd]; }
};

struct TableGenOptions {
  double vg_min = 0.0;
  double vg_max = 0.75;
  double vd_min = 0.0;
  double vd_max = 0.75;
  size_t vg_points = 16;  ///< 0.05 V steps over [0, 0.75]
  size_t vd_points = 16;
  SolveOptions solve;
  bool use_cache = true;
  /// Chain the adaptive energy-grid TransportContext across bias points
  /// along each warm-start chain (column heads serially, then up each VG
  /// column): every solve seeds its panel edges from the previous bias
  /// instead of the coarse grid. Values move within the adaptive
  /// tolerance (cache entries get their own key); the uniform grid is
  /// unaffected. Tables stay bit-identical for any GNRFET_THREADS.
  bool warm_bias_context = true;
};

/// Serializable identity of (spec, options); the cache key.
std::string table_cache_payload(const DeviceSpec& spec, const TableGenOptions& opts);

/// True when generation chains the adaptive TransportContext across bias
/// points (opts.warm_bias_context under GNRFET_NEGF_GRID=adaptive).
bool table_chains_context(const TableGenOptions& opts);

/// Phase-1 output of table generation: the serial chain of column-head
/// solutions (ig = 0 across drain biases) plus, when the context chains,
/// the TransportContext snapshot each column starts from.
struct TableHeadRow {
  std::vector<DeviceSolution> heads;       ///< one per vd point
  std::vector<negf::TransportContext> ctx; ///< per-column snapshots; empty unless chain_ctx
  bool chain_ctx = false;
};

/// Phase-2 output for one drain column: currents and charges for
/// ig = 1..nvg-1 (the head row is phase 1's).
struct TableColumnResult {
  std::vector<double> current_A;  ///< [ig - 1] for ig in 1..nvg-1
  std::vector<double> charge_C;
};

/// Solve the serial head row (phase 1). Exposed so the shard scheduler
/// (service/shardgen) can run phase 1 in-process and ship each column's
/// head + context to a worker; the warm-start graph — and therefore every
/// bit of the result — is identical to in-process generation.
TableHeadRow solve_table_heads(const SelfConsistentSolver& solver, const std::vector<double>& vg,
                               const std::vector<double>& vd, const TableGenOptions& opts);

/// Solve one drain column's VG chain (phase 2) from its head solution.
/// `ctx` is the column's TransportContext (advanced in place), or nullptr
/// when the context does not chain.
TableColumnResult solve_table_column(const SelfConsistentSolver& solver,
                                     const std::vector<double>& vg, double vd,
                                     const DeviceSolution& head, negf::TransportContext* ctx);

/// Generate (or load from cache) the device table. Generation walks the
/// bias grid warm-starting each point from its neighbour.
DeviceTable generate_device_table(const DeviceSpec& spec, const TableGenOptions& opts = {});

/// Serialization helpers (exposed for tests).
void save_table(const DeviceTable& table, const std::string& path, const std::string& key);
DeviceTable load_table(const std::string& path);

}  // namespace gnrfet::device
