#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gnr/lattice.hpp"
#include "gnr/modespace.hpp"
#include "poisson/assembly.hpp"
#include "poisson/grid.hpp"

/// GNRFET device description and the derived simulation geometry.
///
/// Paper device (Sec. 2): 15 nm armchair GNR channel, double-gate through
/// 1.5 nm SiO2 (eps_r = 3.9), metal Schottky source/drain contacts with
/// barrier Eg/2 (mid-gap pinning). Charge impurities sit in the gate oxide
/// 0.4 nm above the GNR plane near the source.
namespace gnrfet::device {

struct ChargeImpurity {
  double charge_e = 0.0;    ///< +-1, +-2 in units of e (0 = none)
  double x_nm = 1.0;        ///< distance from the source end of the channel
  double offset_y_nm = 0.0; ///< lateral offset from the ribbon centerline
  double z_nm = 0.4;        ///< height above the GNR plane (inside the oxide)
};

struct DeviceSpec {
  int n_index = 12;
  double channel_length_nm = 15.0;
  double oxide_thickness_nm = 1.5;
  double oxide_eps_r = 3.9;
  double hopping_eV = 2.7;
  double edge_delta = 0.12;
  double contact_gamma_eV = 1.0;  ///< wide-band metal broadening
  int num_modes = 3;              ///< transport subbands kept (per spin pair)

  /// Electrostatics margins and mesh.
  double contact_margin_nm = 0.30;  ///< gap between S/D planes and end columns
  double lateral_margin_nm = 3.0;   ///< oxide extent beyond each ribbon edge
  double grid_step_nm = 0.25;       ///< target spacing (snapped per axis)

  std::vector<ChargeImpurity> impurities;

  /// Stable serialization of everything that affects generated tables;
  /// used as the cache key payload.
  std::string cache_key() const;
};

/// Electrode ids within the device domain.
struct Electrodes {
  int source = -1;
  int drain = -1;
  int gate = -1;  ///< top and bottom gate share one id (double gate)
};

/// All geometry-derived state shared across bias points.
class DeviceGeometry {
 public:
  explicit DeviceGeometry(const DeviceSpec& spec);

  const DeviceSpec& spec() const { return spec_; }
  const gnr::Lattice& lattice() const { return lattice_; }
  const gnr::ModeSet& modes() const { return modes_; }
  const poisson::Domain& domain() const { return *domain_; }
  const poisson::Assembly& assembly() const { return *assembly_; }
  const Electrodes& electrodes() const { return electrodes_; }

  /// Fixed impurity charge deposited on the grid (units of e).
  const std::vector<double>& impurity_charge() const { return impurity_charge_; }

  /// Grid coordinates of lattice column c / dimer line j (the GNR plane
  /// sits at z = 0; lattice x is offset by the contact margin).
  double column_x(size_t c) const;
  double line_y(int j) const;

  /// Electrode voltage vector ordered by electrode id.
  std::vector<double> electrode_voltages(double vs, double vd, double vg) const;

 private:
  DeviceSpec spec_;
  gnr::Lattice lattice_;
  gnr::ModeSet modes_;
  std::unique_ptr<poisson::Domain> domain_;
  std::unique_ptr<poisson::Assembly> assembly_;
  Electrodes electrodes_;
  std::vector<double> impurity_charge_;
  double x_offset_ = 0.0;
  double y_offset_ = 0.0;
};

}  // namespace gnrfet::device
