#include "device/sweeps.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/constants.hpp"

namespace gnrfet::device {

std::vector<IvPoint> sweep_gate(const DeviceGeometry& geometry, const SolveOptions& opts,
                                double vd, const std::vector<double>& vg_values) {
  const SelfConsistentSolver solver(geometry, opts);
  std::vector<IvPoint> out;
  out.reserve(vg_values.size());
  DeviceSolution prev;
  bool have_prev = false;
  for (const double vg : vg_values) {
    const DeviceSolution sol = solver.solve({vg, vd}, have_prev ? &prev : nullptr);
    IvPoint p;
    p.vg = vg;
    p.vd = vd;
    p.current_A = sol.current_A;
    p.charge_C = -constants::kElementaryCharge * sol.net_electrons;
    p.converged = sol.converged;
    out.push_back(p);
    prev = sol;
    have_prev = true;
  }
  return out;
}

std::vector<double> voltage_axis(double lo, double hi, size_t count) {
  if (count < 2) throw std::invalid_argument("voltage_axis: need >= 2 points");
  std::vector<double> v(count);
  for (size_t i = 0; i < count; ++i) {
    v[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(count - 1);
  }
  return v;
}

double extract_threshold_voltage(const std::vector<double>& vg,
                                 const std::vector<double>& id_A) {
  if (vg.size() != id_A.size() || vg.size() < 4) {
    throw std::invalid_argument("extract_threshold_voltage: need >= 4 samples");
  }
  // Restrict to the electron branch: from the current minimum upward.
  size_t i_min = 0;
  for (size_t i = 1; i < id_A.size(); ++i) {
    if (id_A[i] < id_A[i_min]) i_min = i;
  }
  // Max transconductance via central differences on the n-branch.
  size_t best = 0;
  double best_gm = -1.0;
  for (size_t i = std::max<size_t>(i_min, 1); i + 1 < vg.size(); ++i) {
    const double gm = (id_A[i + 1] - id_A[i - 1]) / (vg[i + 1] - vg[i - 1]);
    if (gm > best_gm) {
      best_gm = gm;
      best = i;
    }
  }
  if (best_gm <= 0.0) {
    throw std::runtime_error("extract_threshold_voltage: no positive transconductance");
  }
  return vg[best] - id_A[best] / best_gm;
}

}  // namespace gnrfet::device
