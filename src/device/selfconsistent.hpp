#pragma once

#include "device/geometry.hpp"
#include "negf/transport.hpp"

/// Self-consistent NEGF-Poisson solution of one bias point (the Gummel
/// outer loop of Sec. 2 of the paper).
namespace gnrfet::device {

struct BiasPoint {
  double vg = 0.0;  ///< gate voltage [V]
  double vd = 0.0;  ///< drain voltage [V] (source grounded)
};

struct SolveOptions {
  double energy_step_eV = 2.5e-3;
  double eta_eV = 1e-3;
  double kT_eV = 0.02585;
  double gummel_tolerance_V = 1.5e-3;  ///< max potential change on the GNR
  int max_gummel_iterations = 40;
};

struct DeviceSolution {
  bool converged = false;
  int iterations = 0;
  double current_A = 0.0;
  /// Total net mobile electrons in the channel; channel charge is
  /// Q = -e * net. |Q| feeds the circuit-level capacitance extraction.
  double net_electrons = 0.0;
  /// Full-grid electrostatic potential [V].
  std::vector<double> phi_full;
  /// Local mid-gap energy per column, averaged over the ribbon width [eV]
  /// (the conduction band edge is this + Eg/2): the Fig. 5(a) profile.
  std::vector<double> midgap_profile_eV;
  std::vector<double> column_x_nm;
};

class SelfConsistentSolver {
 public:
  explicit SelfConsistentSolver(const DeviceGeometry& geometry, const SolveOptions& opts = {});

  /// Solve one bias point. `warm_start` (may be nullptr) provides the
  /// initial potential, typically the solution of a neighbouring bias.
  /// `transport_ctx` (may be nullptr) is caller-owned adaptive energy-grid
  /// state threaded through every transport solve of this bias point: on
  /// entry it seeds the panel edges (e.g. from the previous bias on the
  /// same warm-start chain), on exit it holds the converged edges for the
  /// next point. Seeding changes results only within the adaptive
  /// tolerance; the uniform grid ignores it entirely.
  DeviceSolution solve(const BiasPoint& bias, const DeviceSolution* warm_start = nullptr,
                       negf::TransportContext* transport_ctx = nullptr) const;

  const SolveOptions& options() const { return opts_; }

 private:
  const DeviceGeometry& geo_;
  SolveOptions opts_;
};

}  // namespace gnrfet::device
