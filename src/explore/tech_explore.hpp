#pragma once

#include <map>
#include <vector>

#include "circuit/measure.hpp"
#include "common/annotations.hpp"
#include "device/tablegen.hpp"
#include "model/intrinsic_fet.hpp"

/// Technology exploration of Sec. 3.1: build GNRFET inverter models at any
/// (VT, VDD) design point from the cached intrinsic-device tables, sweep
/// the design plane, and locate the paper's operating points A/B/C.
namespace gnrfet::explore {

/// Device variant identity within the kit: GNR index and oxide charge.
struct VariantSpec {
  int n_index = 12;
  double impurity_q = 0.0;
  bool operator<(const VariantSpec& o) const {
    return n_index != o.n_index ? n_index < o.n_index : impurity_q < o.impurity_q;
  }
};

/// The bias-grid settings shared by the table cache; tools/gen_tables and
/// all benches must agree on these for cache hits.
device::TableGenOptions standard_table_options();

/// Loads (generating on miss) device tables and builds circuit models.
///
/// Thread safety: all public methods may be called concurrently (the
/// parallel Monte Carlo and plane sweeps do); the internal caches are
/// guarded by a mutex, and a variant's first-use generation happens once
/// while other callers block on it.
class DesignKit {
 public:
  explicit DesignKit(model::Parasitics parasitics = model::Parasitics::from_per_width(0.1, 40.0));

  /// Cached table lookup; generates (minutes) on first use of a variant.
  const device::DeviceTable& table(const VariantSpec& v);

  /// Inject a pre-built table for a variant (tests and synthetic studies:
  /// lets the circuit layers run without the NEGF pipeline). Setup-only:
  /// must happen before the variant's first use — overwriting an existing
  /// entry would invalidate references handed out by table(), so it throws
  /// std::logic_error instead.
  void set_table(const VariantSpec& v, device::DeviceTable table);

  /// Threshold voltage of the nominal (N=12, ideal) device at low VD with
  /// zero work-function offset; VT tuning uses offset = vt0 - VT_target.
  double vt0();

  /// Nominal inverter (all four GNRs N=12 ideal in both devices) at a
  /// target threshold voltage.
  circuit::InverterModels inverter(double vt_target);

  /// Inverter whose n/p arrays carry `affected` (1..4) variant GNRs
  /// (Secs. 4-5). The p-FET variant's impurity sign is folded through the
  /// particle-hole mirror internally: pass the physical p-device impurity.
  circuit::InverterModels inverter_with_variants(const VariantSpec& n_variant,
                                                 const VariantSpec& p_variant, int affected,
                                                 double vt_target);

  const model::Parasitics& parasitics() const { return parasitics_; }

 private:
  model::IntrinsicFet channel(const VariantSpec& v, model::Polarity pol, double offset);
  /// Lock-held internals: the public methods take mu_ once and delegate,
  /// so cache misses never re-enter the lock (no recursive mutex).
  const device::DeviceTable& table_locked(const VariantSpec& v) GNRFET_REQUIRES(mu_);
  double vt0_locked() GNRFET_REQUIRES(mu_);

  model::Parasitics parasitics_;
  /// Guards every cache below. Map entries are stable under insertion, so
  /// the references table() hands out outlive the lock.
  common::Mutex mu_;
  std::map<VariantSpec, device::DeviceTable> tables_ GNRFET_GUARDED_BY(mu_);
  std::map<VariantSpec, model::FetTables> fet_tables_ GNRFET_GUARDED_BY(mu_);
  double vt0_ GNRFET_GUARDED_BY(mu_) = -1.0;
};

/// One point of the (VT, VDD) exploration plane (Fig. 3(b)).
struct ExplorePoint {
  double vt = 0.0;
  double vdd = 0.0;
  double frequency_Hz = 0.0;
  double edp_Js = 0.0;
  double snm_V = 0.0;
  double static_power_W = 0.0;
  double dynamic_power_W = 0.0;
  bool ok = false;
};

struct ExploreOptions {
  circuit::RingMeasureOptions ring;  ///< vdd is overridden per point
};

/// Sweep the plane: a 15-stage FO4 ring oscillator + inverter SNM at every
/// (vt, vdd) combination.
std::vector<ExplorePoint> explore_plane(DesignKit& kit, const std::vector<double>& vt_values,
                                        const std::vector<double>& vdd_values,
                                        const ExploreOptions& opts = {});

/// The paper's operating points: A = min EDP at >= 3 GHz; B = min EDP at
/// >= 3 GHz and SNM >= 0.15 V; C = same EDP/SNM class as B at higher VT
/// (lower frequency).
struct OperatingPoints {
  ExplorePoint a, b, c;
};

OperatingPoints find_operating_points(const std::vector<ExplorePoint>& grid,
                                      double freq_target_Hz = 3e9, double snm_target_V = 0.15);

}  // namespace gnrfet::explore
