#pragma once

#include <map>
#include <memory>
#include <vector>

#include "circuit/measure.hpp"
#include "common/annotations.hpp"
#include "device/tablegen.hpp"
#include "model/intrinsic_fet.hpp"
#include "service/tableservice.hpp"

/// Technology exploration of Sec. 3.1: build GNRFET inverter models at any
/// (VT, VDD) design point from the cached intrinsic-device tables, sweep
/// the design plane, and locate the paper's operating points A/B/C.
namespace gnrfet::explore {

/// Device variant identity within the kit: GNR index and oxide charge.
struct VariantSpec {
  int n_index = 12;
  double impurity_q = 0.0;
  bool operator<(const VariantSpec& o) const {
    return n_index != o.n_index ? n_index < o.n_index : impurity_q < o.impurity_q;
  }
};

/// The bias-grid settings shared by the table cache; tools/gen_tables and
/// all benches must agree on these for cache hits.
device::TableGenOptions standard_table_options();

/// Loads (generating on miss) device tables and builds circuit models.
///
/// Table resolution goes through a service::TableService (the process-wide
/// shared() instance unless one is injected): the kit only keeps shared
/// handles per variant, while the service owns the in-memory LRU, the
/// batch path, and single-flight coalescing with other kits/processes.
///
/// Thread safety: all public methods may be called concurrently (the
/// parallel Monte Carlo and plane sweeps do); the per-kit maps are guarded
/// by a mutex, generation never runs under that lock (distinct variants
/// generate concurrently; identical ones coalesce in the service).
class DesignKit {
 public:
  explicit DesignKit(model::Parasitics parasitics = model::Parasitics::from_per_width(0.1, 40.0),
                     service::TableService* service = nullptr);

  /// Cached table lookup; generates (minutes) on first use of a variant.
  const device::DeviceTable& table(const VariantSpec& v);

  /// Resolve a batch of variants through the service's deduplicating batch
  /// API before fanning a study out: warm variants cost one lock pass, cold
  /// ones generate once each in deterministic order.
  void warm(const std::vector<VariantSpec>& variants);

  /// Inject a pre-built table for a variant (tests and synthetic studies:
  /// lets the circuit layers run without the NEGF pipeline). Setup-only:
  /// must happen before the variant's first use — overwriting an existing
  /// entry would invalidate references handed out by table(), so it throws
  /// std::logic_error instead.
  void set_table(const VariantSpec& v, device::DeviceTable table);

  /// Threshold voltage of the nominal (N=12, ideal) device at low VD with
  /// zero work-function offset; VT tuning uses offset = vt0 - VT_target.
  double vt0();

  /// Nominal inverter (all four GNRs N=12 ideal in both devices) at a
  /// target threshold voltage.
  circuit::InverterModels inverter(double vt_target);

  /// Inverter whose n/p arrays carry `affected` (1..4) variant GNRs
  /// (Secs. 4-5). The p-FET variant's impurity sign is folded through the
  /// particle-hole mirror internally: pass the physical p-device impurity.
  circuit::InverterModels inverter_with_variants(const VariantSpec& n_variant,
                                                 const VariantSpec& p_variant, int affected,
                                                 double vt_target);

  const model::Parasitics& parasitics() const { return parasitics_; }

 private:
  model::IntrinsicFet channel(const VariantSpec& v, model::Polarity pol, double offset);
  /// Adopt a service-resolved table into the per-kit map; on a race the
  /// first insertion wins (the service hands every racer the same entry).
  const device::DeviceTable& adopt_locked(const VariantSpec& v,
                                          std::shared_ptr<const device::DeviceTable> table)
      GNRFET_REQUIRES(mu_);

  model::Parasitics parasitics_;
  service::TableService* service_;  ///< never null; defaults to TableService::shared()
  /// Guards every cache below. The table handles are shared with the
  /// service pool, so references table() hands out stay valid even after
  /// an LRU eviction; map entries are stable under insertion.
  common::Mutex mu_;
  std::map<VariantSpec, std::shared_ptr<const device::DeviceTable>> tables_
      GNRFET_GUARDED_BY(mu_);
  std::map<VariantSpec, model::FetTables> fet_tables_ GNRFET_GUARDED_BY(mu_);
  double vt0_ GNRFET_GUARDED_BY(mu_) = -1.0;
};

/// One point of the (VT, VDD) exploration plane (Fig. 3(b)).
struct ExplorePoint {
  double vt = 0.0;
  double vdd = 0.0;
  double frequency_Hz = 0.0;
  double edp_Js = 0.0;
  double snm_V = 0.0;
  double static_power_W = 0.0;
  double dynamic_power_W = 0.0;
  bool ok = false;
};

struct ExploreOptions {
  circuit::RingMeasureOptions ring;  ///< vdd is overridden per point
};

/// Sweep the plane: a 15-stage FO4 ring oscillator + inverter SNM at every
/// (vt, vdd) combination.
std::vector<ExplorePoint> explore_plane(DesignKit& kit, const std::vector<double>& vt_values,
                                        const std::vector<double>& vdd_values,
                                        const ExploreOptions& opts = {});

/// The paper's operating points: A = min EDP at >= 3 GHz; B = min EDP at
/// >= 3 GHz and SNM >= 0.15 V; C = same EDP/SNM class as B at higher VT
/// (lower frequency).
struct OperatingPoints {
  ExplorePoint a, b, c;
};

OperatingPoints find_operating_points(const std::vector<ExplorePoint>& grid,
                                      double freq_target_Hz = 3e9, double snm_target_V = 0.15);

}  // namespace gnrfet::explore
