#include "explore/variants.hpp"

namespace gnrfet::explore {

namespace {
double pct(double value, double nominal) { return 100.0 * (value / nominal - 1.0); }
}  // namespace

circuit::InverterMetrics nominal_inverter_metrics(DesignKit& kit,
                                                  const VariationStudyOptions& opts) {
  circuit::InverterMeasureOptions mopt = opts.measure;
  mopt.vdd = opts.vdd;
  const circuit::InverterModels nominal = kit.inverter(opts.vt);
  return circuit::measure_inverter(nominal, nominal, mopt);
}

std::vector<VariationEntry> run_variation_study(DesignKit& kit,
                                                const std::vector<VariantSpec>& n_variants,
                                                const std::vector<VariantSpec>& p_variants,
                                                const VariationStudyOptions& opts) {
  circuit::InverterMeasureOptions mopt = opts.measure;
  mopt.vdd = opts.vdd;
  const circuit::InverterModels nominal = kit.inverter(opts.vt);
  const circuit::InverterMetrics base = circuit::measure_inverter(nominal, nominal, mopt);

  std::vector<VariationEntry> out;
  for (const auto& pv : p_variants) {
    for (const auto& nv : n_variants) {
      VariationEntry e;
      e.n_variant = nv;
      e.p_variant = pv;
      const int affected_counts[2] = {1, 4};
      for (int s = 0; s < 2; ++s) {
        const circuit::InverterModels m =
            kit.inverter_with_variants(nv, pv, affected_counts[s], opts.vt);
        // The FO4 load stays nominal; the variation hits the driver.
        e.metrics[s] = circuit::measure_inverter(m, nominal, mopt);
        if (e.metrics[s].ok && base.ok) {
          e.delay_pct[s] = pct(e.metrics[s].delay_s, base.delay_s);
          e.static_power_pct[s] = pct(e.metrics[s].static_power_W, base.static_power_W);
          e.dynamic_power_pct[s] = pct(e.metrics[s].dynamic_power_W, base.dynamic_power_W);
          e.snm_pct[s] = pct(e.metrics[s].snm_V, base.snm_V);
        }
      }
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace gnrfet::explore
