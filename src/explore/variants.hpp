#pragma once

#include "explore/tech_explore.hpp"

/// The variability/defect study engines behind Tables 2, 3, and 4: measure
/// the FO4 inverter under every n/p variant combination in the 1-of-4 and
/// 4-of-4 scenarios and report percent changes against the nominal design.
namespace gnrfet::explore {

struct VariationEntry {
  VariantSpec n_variant;
  VariantSpec p_variant;
  /// [0] = one GNR affected, [1] = all four GNRs affected.
  circuit::InverterMetrics metrics[2];
  double delay_pct[2] = {0.0, 0.0};
  double static_power_pct[2] = {0.0, 0.0};
  double dynamic_power_pct[2] = {0.0, 0.0};
  double snm_pct[2] = {0.0, 0.0};
};

struct VariationStudyOptions {
  double vt = 0.13;   ///< operating point B of Sec. 3.1
  double vdd = 0.4;
  circuit::InverterMeasureOptions measure;
};

/// Nominal metrics at the study operating point.
circuit::InverterMetrics nominal_inverter_metrics(DesignKit& kit,
                                                  const VariationStudyOptions& opts);

/// Full cross-product study: one entry per (n_variant, p_variant) pair.
std::vector<VariationEntry> run_variation_study(DesignKit& kit,
                                                const std::vector<VariantSpec>& n_variants,
                                                const std::vector<VariantSpec>& p_variants,
                                                const VariationStudyOptions& opts);

}  // namespace gnrfet::explore
