#include "explore/contours.hpp"

#include <cmath>
#include <stdexcept>

#include "common/trace.hpp"

namespace gnrfet::explore {

namespace {
/// Linear interpolation of the crossing point between two grid values.
double frac(double a, double b, double level) { return (level - a) / (b - a); }
}  // namespace

std::vector<Segment> contour_segments(const std::vector<double>& xs,
                                      const std::vector<double>& ys,
                                      const std::vector<double>& field, double level) {
  trace::Span span("explore", "contour_segments");
  if (field.size() != xs.size() * ys.size()) {
    throw std::invalid_argument("contour_segments: field size mismatch");
  }
  std::vector<Segment> segs;
  const auto value = [&](size_t ix, size_t iy) { return field[ix * ys.size() + iy]; };

  for (size_t ix = 0; ix + 1 < xs.size(); ++ix) {
    for (size_t iy = 0; iy + 1 < ys.size(); ++iy) {
      const double v00 = value(ix, iy), v10 = value(ix + 1, iy);
      const double v01 = value(ix, iy + 1), v11 = value(ix + 1, iy + 1);
      if (std::isnan(v00) || std::isnan(v10) || std::isnan(v01) || std::isnan(v11)) continue;
      // Crossing points on the 4 cell edges.
      struct Pt {
        double x, y;
      };
      std::vector<Pt> pts;
      const double x0 = xs[ix], x1 = xs[ix + 1], y0 = ys[iy], y1 = ys[iy + 1];
      if ((v00 < level) != (v10 < level)) {
        pts.push_back({x0 + (x1 - x0) * frac(v00, v10, level), y0});
      }
      if ((v01 < level) != (v11 < level)) {
        pts.push_back({x0 + (x1 - x0) * frac(v01, v11, level), y1});
      }
      if ((v00 < level) != (v01 < level)) {
        pts.push_back({x0, y0 + (y1 - y0) * frac(v00, v01, level)});
      }
      if ((v10 < level) != (v11 < level)) {
        pts.push_back({x1, y0 + (y1 - y0) * frac(v10, v11, level)});
      }
      // 2 points: one segment. 4 points (saddle): pair them arbitrarily
      // but deterministically.
      if (pts.size() == 2) {
        segs.push_back({pts[0].x, pts[0].y, pts[1].x, pts[1].y});
      } else if (pts.size() == 4) {
        segs.push_back({pts[0].x, pts[0].y, pts[2].x, pts[2].y});
        segs.push_back({pts[1].x, pts[1].y, pts[3].x, pts[3].y});
      }
    }
  }
  return segs;
}

}  // namespace gnrfet::explore
