#pragma once

#include <random>

#include "explore/tech_explore.hpp"

/// Monte Carlo study of Fig. 6: a 15-stage FO4 ring oscillator whose
/// inverters carry independent width (N in {9,12,15}) and charge-impurity
/// (q in {-1,0,+1}) draws from discretized normal distributions with the
/// off-nominal values at one sigma.
namespace gnrfet::explore {

/// Three-valued discretization of a normal: nearest of {-1, 0, +1} sigma
/// with boundaries at +-sigma/2: P(outer) ~ 0.3085, P(center) ~ 0.3829.
struct DiscretizedNormal {
  double p_low = 0.30854;
  double p_high = 0.30854;

  /// Returns -1, 0 or +1.
  int draw(std::mt19937& rng) const;
};

struct MonteCarloOptions {
  int samples = 200;
  /// Base seed (DAC 2008 conference date). Sample s draws from a fresh
  /// mt19937 seeded via std::seed_seq{seed, s}, so the sample streams are
  /// independent of thread count and scheduling, and distinct (seed, s)
  /// pairs get uncorrelated generator states.
  unsigned seed = 20080608;
  double vt = 0.13;
  double vdd = 0.4;
  circuit::RingMeasureOptions ring;
};

struct MonteCarloSample {
  double frequency_Hz = 0.0;
  double static_power_W = 0.0;
  double dynamic_power_W = 0.0;
  bool ok = false;
};

struct MonteCarloResult {
  std::vector<MonteCarloSample> samples;
  circuit::RingMetrics nominal;
  double mean_frequency_Hz = 0.0;
  double mean_static_power_W = 0.0;
  double mean_dynamic_power_W = 0.0;
};

MonteCarloResult run_ring_monte_carlo(DesignKit& kit, const MonteCarloOptions& opts);

/// Histogram helper for the bench output.
struct Histogram {
  std::vector<double> bin_centers;
  std::vector<int> counts;
};

Histogram histogram(const std::vector<double>& values, int bins);

}  // namespace gnrfet::explore
