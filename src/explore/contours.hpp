#pragma once

#include <vector>

/// Contour extraction (marching squares) for the Fig. 3(b) EDP, frequency,
/// and SNM maps over the (VT, VDD) plane.
namespace gnrfet::explore {

struct Segment {
  double x1 = 0.0, y1 = 0.0;
  double x2 = 0.0, y2 = 0.0;
};

/// `field[ix * ys.size() + iy]` over the grid (xs, ys); NaN cells are
/// skipped. Returns line segments of the iso-level.
std::vector<Segment> contour_segments(const std::vector<double>& xs,
                                      const std::vector<double>& ys,
                                      const std::vector<double>& field, double level);

}  // namespace gnrfet::explore
