#pragma once

#include "circuit/snm.hpp"
#include "explore/tech_explore.hpp"

/// Latch butterfly study of Fig. 7: nominal latch, single-GNR-affected and
/// all-GNRs-affected worst case (n-FET: N=9 with +q, p-FET: N=18 with -q),
/// reporting SNM and latch static power (both inverters of the latch share
/// the same variants, as in the paper).
namespace gnrfet::explore {

struct LatchCase {
  const char* label = "";
  circuit::Vtc vtc;       ///< both latch inverters are identical
  double snm_V = 0.0;     ///< min butterfly lobe
  double lobe1_V = 0.0;
  double lobe2_V = 0.0;
  double static_power_W = 0.0;  ///< worst stable state of the latch
};

struct LatchStudyOptions {
  double vt = 0.13;
  double vdd = 0.4;
  VariantSpec worst_n{9, 1.0};    ///< N=9 with +q in the n-FET
  VariantSpec worst_p{18, -1.0};  ///< N=18 with -q in the p-FET
};

/// Returns {nominal, 1-of-4 affected, 4-of-4 affected}.
std::vector<LatchCase> run_latch_study(DesignKit& kit, const LatchStudyOptions& opts = {});

}  // namespace gnrfet::explore
