#include "explore/montecarlo.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "common/trace.hpp"

namespace gnrfet::explore {

int DiscretizedNormal::draw(std::mt19937& rng) const {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const double x = u(rng);
  if (x < p_low) return -1;
  if (x > 1.0 - p_high) return 1;
  return 0;
}

MonteCarloResult run_ring_monte_carlo(DesignKit& kit, const MonteCarloOptions& opts) {
  trace::Span span("explore", "run_ring_monte_carlo");
  MonteCarloResult result;
  const DiscretizedNormal dist;

  circuit::RingMeasureOptions ropt = opts.ring;
  ropt.vdd = opts.vdd;
  const circuit::InverterModels nominal = kit.inverter(opts.vt);
  result.nominal =
      circuit::measure_ring_oscillator(std::vector<circuit::InverterModels>(15, nominal),
                                       nominal, ropt);

  // Width draws: N = 12 + 3 * z with z in {-1, 0, +1} -> {9, 12, 15};
  // charge draws: q = z in {-1, 0, +1}. Warm every table the draws can
  // reach before fanning out (mirrors explore_plane's vt0() warm-up): a
  // cold-cache miss inside a sample would otherwise stall that sample on
  // a full NEGF table generation. One batch query deduplicates against
  // the service pool and resolves the cold ones in deterministic order.
  std::vector<VariantSpec> reachable;
  for (int n : {9, 12, 15}) {
    for (int q : {-1, 0, 1}) reachable.push_back({n, static_cast<double>(q)});
  }
  kit.warm(reachable);

  // Samples run in parallel; each draws from its own generator seeded by
  // seed_seq-mixing (seed, sample index), so every sample's variant stream
  // is a pure function of its index — statistics are invariant to thread
  // count and scheduling, and adjacent indices get uncorrelated states.
  const size_t nsamples = opts.samples > 0 ? static_cast<size_t>(opts.samples) : 0;
  result.samples.assign(nsamples, MonteCarloSample{});
  par::parallel_for(nsamples, [&](size_t s) {
    trace::Span sample_span("explore", "mc_sample");
    std::seed_seq seq{opts.seed, static_cast<unsigned>(s)};
    std::mt19937 rng(seq);
    std::vector<circuit::InverterModels> stages;
    stages.reserve(15);
    for (int i = 0; i < 15; ++i) {
      const VariantSpec nv{12 + 3 * dist.draw(rng), static_cast<double>(dist.draw(rng))};
      const VariantSpec pv{12 + 3 * dist.draw(rng), static_cast<double>(dist.draw(rng))};
      stages.push_back(kit.inverter_with_variants(nv, pv, 4, opts.vt));
    }
    const circuit::RingMetrics m = circuit::measure_ring_oscillator(stages, nominal, ropt);
    GNRFET_ENSURE("explore", "finite-sample-metrics",
                  !m.ok || (std::isfinite(m.frequency_Hz) && std::isfinite(m.static_power_W) &&
                            std::isfinite(m.dynamic_power_W)),
                  strings::format("sample %zu: f = %g Hz, Pstat = %g W, Pdyn = %g W", s,
                                  m.frequency_Hz, m.static_power_W, m.dynamic_power_W));
    MonteCarloSample sample;
    sample.ok = m.ok;
    sample.frequency_Hz = m.frequency_Hz;
    sample.static_power_W = m.static_power_W;
    sample.dynamic_power_W = m.dynamic_power_W;
    result.samples[s] = sample;
  });

  double n_ok = 0.0;
  for (const auto& s : result.samples) {
    if (!s.ok) continue;
    result.mean_frequency_Hz += s.frequency_Hz;
    result.mean_static_power_W += s.static_power_W;
    result.mean_dynamic_power_W += s.dynamic_power_W;
    n_ok += 1.0;
  }
  if (n_ok > 0.0) {
    result.mean_frequency_Hz /= n_ok;
    result.mean_static_power_W /= n_ok;
    result.mean_dynamic_power_W /= n_ok;
  }
  return result;
}

Histogram histogram(const std::vector<double>& values, int bins) {
  Histogram h;
  if (values.empty() || bins < 1) return h;
  const auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
  double lo = *mn_it, hi = *mx_it;
  if (hi - lo < 1e-30) hi = lo + 1.0;
  const double w = (hi - lo) / bins;
  h.bin_centers.resize(static_cast<size_t>(bins));
  h.counts.assign(static_cast<size_t>(bins), 0);
  for (int b = 0; b < bins; ++b) h.bin_centers[static_cast<size_t>(b)] = lo + (b + 0.5) * w;
  for (const double v : values) {
    const int b = std::min(bins - 1, static_cast<int>((v - lo) / w));
    h.counts[static_cast<size_t>(b)]++;
  }
  return h;
}

}  // namespace gnrfet::explore
