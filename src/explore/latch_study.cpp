#include "explore/latch_study.hpp"

#include <algorithm>

namespace gnrfet::explore {

namespace {
/// Static power of the two-inverter latch: DC power of both inverters in a
/// stable state (one input high, one low), worst of the two states.
double latch_static_power(const circuit::InverterModels& m, double vdd) {
  const circuit::Vtc vtc = circuit::compute_vtc(m, vdd, 5);
  const double p_in_low = -vdd * vtc.supply_current_A.front();
  const double p_in_high = -vdd * vtc.supply_current_A.back();
  // Both latch states dissipate (p_in_low + p_in_high) across the two
  // inverters (one sees each input), so the state powers are equal here;
  // asymmetric variants still differ through the VTC endpoints.
  return p_in_low + p_in_high;
}
}  // namespace

std::vector<LatchCase> run_latch_study(DesignKit& kit, const LatchStudyOptions& opts) {
  std::vector<LatchCase> cases;
  // One deduplicating batch for every table the three cases touch: the
  // nominal device plus the worst-case n-variant and the p-variant's
  // particle-hole mirror (inverter_with_variants negates the p impurity).
  kit.warm({{12, 0.0},
            opts.worst_n,
            {opts.worst_p.n_index, -opts.worst_p.impurity_q}});
  const int affected_counts[3] = {0, 1, 4};
  const char* labels[3] = {"nominal", "single GNR affected", "all GNRs affected"};
  for (int i = 0; i < 3; ++i) {
    LatchCase c;
    c.label = labels[i];
    const circuit::InverterModels m =
        affected_counts[i] == 0
            ? kit.inverter(opts.vt)
            : kit.inverter_with_variants(opts.worst_n, opts.worst_p, affected_counts[i],
                                         opts.vt);
    c.vtc = circuit::compute_vtc(m, opts.vdd);
    const circuit::Vtc inv = circuit::invert_vtc(c.vtc);
    c.lobe1_V = circuit::butterfly_lobe(c.vtc, c.vtc);
    c.lobe2_V = circuit::butterfly_lobe(inv, inv);
    c.snm_V = std::min(c.lobe1_V, c.lobe2_V);
    c.static_power_W = latch_static_power(m, opts.vdd);
    cases.push_back(std::move(c));
  }
  return cases;
}

}  // namespace gnrfet::explore
