#include "explore/tech_explore.hpp"

#include <cmath>
#include <stdexcept>

#include "circuit/snm.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "device/sweeps.hpp"

namespace gnrfet::explore {

namespace {

/// Variant identity -> service request (the kit's one spec convention:
/// a nonzero oxide charge becomes a single impurity at mid-channel).
service::TableRequest request_for(const VariantSpec& v) {
  service::TableRequest req;
  req.spec.n_index = v.n_index;
  if (v.impurity_q != 0.0) req.spec.impurities.push_back({v.impurity_q, 1.0, 0.0, 0.4});
  req.opts = standard_table_options();
  return req;
}

}  // namespace

device::TableGenOptions standard_table_options() {
  device::TableGenOptions opts;
  opts.vg_min = 0.0;
  opts.vg_max = 1.0;
  opts.vg_points = 21;  // 0.05 V steps; headroom for work-function offsets
  opts.vd_min = 0.0;
  opts.vd_max = 0.75;
  opts.vd_points = 16;
  return opts;
}

DesignKit::DesignKit(model::Parasitics parasitics, service::TableService* service)
    : parasitics_(parasitics),
      service_(service != nullptr ? service : &service::TableService::shared()) {}

const device::DeviceTable& DesignKit::table(const VariantSpec& v) {
  {
    common::MutexLock lk(mu_);
    const auto it = tables_.find(v);
    if (it != tables_.end()) return *it->second;
  }
  // Resolve outside the kit lock: distinct variants generate concurrently,
  // identical ones coalesce onto one generation inside the service.
  trace::Span span("explore", "design_kit_table");
  auto table = service_->query(request_for(v));
  common::MutexLock lk(mu_);
  return adopt_locked(v, std::move(table));
}

const device::DeviceTable& DesignKit::adopt_locked(
    const VariantSpec& v, std::shared_ptr<const device::DeviceTable> table) {
  return *tables_.emplace(v, std::move(table)).first->second;
}

void DesignKit::warm(const std::vector<VariantSpec>& variants) {
  trace::Span span("explore", "design_kit_warm");
  // Variants already resident in the kit — including tables injected with
  // set_table, which the service never sees — need no resolution.
  std::vector<VariantSpec> missing;
  {
    common::MutexLock lk(mu_);
    for (const auto& v : variants) {
      if (tables_.find(v) == tables_.end()) missing.push_back(v);
    }
  }
  if (missing.empty()) return;
  std::vector<service::TableRequest> requests;
  requests.reserve(missing.size());
  for (const auto& v : missing) requests.push_back(request_for(v));
  auto replies = service_->query_batch(requests);
  common::MutexLock lk(mu_);
  for (size_t i = 0; i < missing.size(); ++i) {
    adopt_locked(missing[i], std::move(replies[i].table));
  }
}

void DesignKit::set_table(const VariantSpec& v, device::DeviceTable table) {
  common::MutexLock lk(mu_);
  // Refuse to replace an existing entry: table() hands out references whose
  // validity rests on map entries never being reassigned. Injection stays
  // kit-local on purpose — it must not pollute the shared service pool.
  auto shared = std::make_shared<const device::DeviceTable>(std::move(table));
  if (!tables_.emplace(v, std::move(shared)).second) {
    throw std::logic_error(
        "DesignKit::set_table: variant already has a table; inject tables "
        "before the variant's first use");
  }
}

double DesignKit::vt0() {
  {
    common::MutexLock lk(mu_);
    if (vt0_ >= 0.0) return vt0_;
  }
  // May generate: resolve the nominal table without holding mu_. A racing
  // extraction computes the identical value (same table bits), so last
  // write wins harmlessly.
  const device::DeviceTable& t = table({12, 0.0});
  // Extract at the lowest nonzero drain bias on the grid (0.05 V), per the
  // max-gm method of Fig. 2(b).
  const size_t ivd = 1;
  std::vector<double> id(t.vg.size());
  for (size_t ig = 0; ig < t.vg.size(); ++ig) id[ig] = t.at_current(ig, ivd);
  const double vt0 = device::extract_threshold_voltage(t.vg, id);
  common::MutexLock lk(mu_);
  vt0_ = vt0;
  return vt0_;
}

model::IntrinsicFet DesignKit::channel(const VariantSpec& v, model::Polarity pol,
                                       double offset) {
  {
    common::MutexLock lk(mu_);
    const auto it = fet_tables_.find(v);
    if (it != fet_tables_.end()) {
      return model::IntrinsicFet(it->second.current_A, it->second.charge_C, pol, offset);
    }
  }
  // Build the interpolation tables outside the lock (table() may generate).
  // Racing builders produce bit-identical FetTables; the first emplace
  // wins and everyone returns references into that entry.
  const device::DeviceTable& t = table(v);
  model::FetTables ft = model::make_fet_tables(t);
  common::MutexLock lk(mu_);
  const auto it = fet_tables_.emplace(v, std::move(ft)).first;
  return model::IntrinsicFet(it->second.current_A, it->second.charge_C, pol, offset);
}

circuit::InverterModels DesignKit::inverter(double vt_target) {
  return inverter_with_variants({12, 0.0}, {12, 0.0}, 0, vt_target);
}

circuit::InverterModels DesignKit::inverter_with_variants(const VariantSpec& n_variant,
                                                          const VariantSpec& p_variant,
                                                          int affected, double vt_target) {
  const double offset = vt0() - vt_target;
  const VariantSpec nominal{12, 0.0};
  // The p-FET is the particle-hole mirror of an n-device: a physical
  // impurity q in the p-device maps to -q in the mirrored table.
  const VariantSpec p_mirrored{p_variant.n_index, -p_variant.impurity_q};

  circuit::InverterModels m;
  m.nfet = model::make_extrinsic(
      model::ArrayFet::with_variants(channel(nominal, model::Polarity::kN, offset),
                                     channel(n_variant, model::Polarity::kN, offset), 4,
                                     affected),
      parasitics_);
  m.pfet = model::make_extrinsic(
      model::ArrayFet::with_variants(channel(nominal, model::Polarity::kP, offset),
                                     channel(p_mirrored, model::Polarity::kP, offset), 4,
                                     affected),
      parasitics_);
  return m;
}

std::vector<ExplorePoint> explore_plane(DesignKit& kit, const std::vector<double>& vt_values,
                                        const std::vector<double>& vdd_values,
                                        const ExploreOptions& opts) {
  trace::Span span("explore", "explore_plane");
  // Generate the shared nominal table (and vt0) before fanning out so the
  // parallel points only do circuit work under the kit's cache locks.
  kit.vt0();
  const size_t nvt = vt_values.size();
  std::vector<ExplorePoint> grid(nvt * vdd_values.size());
  // Every (vt, vdd) point is an independent ring-oscillator + SNM
  // evaluation writing its own slot; layout matches the serial vdd-major
  // walk, so the result is identical for any thread count.
  par::parallel_for(grid.size(), [&](size_t k) {
    trace::Span point_span("explore", "explore_point");
    const double vdd = vdd_values[k / nvt];
    const double vt = vt_values[k % nvt];
    ExplorePoint p;
    p.vt = vt;
    p.vdd = vdd;
    const circuit::InverterModels inv = kit.inverter(vt);
    circuit::RingMeasureOptions ropt = opts.ring;
    ropt.vdd = vdd;
    const std::vector<circuit::InverterModels> stages(15, inv);
    const circuit::RingMetrics rm = circuit::measure_ring_oscillator(stages, inv, ropt);
    if (rm.ok && rm.frequency_Hz > 0.0) {
      p.frequency_Hz = rm.frequency_Hz;
      p.edp_Js = rm.edp_Js;
      p.static_power_W = rm.static_power_W;
      p.dynamic_power_W = rm.dynamic_power_W;
      const circuit::Vtc vtc = circuit::compute_vtc(inv, vdd);
      p.snm_V = circuit::butterfly_snm(vtc, vtc);
      p.ok = true;
    }
    grid[k] = p;
  });
  return grid;
}

OperatingPoints find_operating_points(const std::vector<ExplorePoint>& grid,
                                      double freq_target_Hz, double snm_target_V) {
  OperatingPoints pts;
  double best_a = 1e300, best_b = 1e300;
  for (const auto& p : grid) {
    if (!p.ok) continue;
    if (p.frequency_Hz >= freq_target_Hz && p.edp_Js < best_a) {
      best_a = p.edp_Js;
      pts.a = p;
    }
    if (p.frequency_Hz >= freq_target_Hz && p.snm_V >= snm_target_V && p.edp_Js < best_b) {
      best_b = p.edp_Js;
      pts.b = p;
    }
  }
  // C: same EDP/SNM class as B at strictly higher VT; among candidates
  // pick the highest VT (the paper's C trades 40% frequency for nothing,
  // illustrating that raising VT does not buy robustness in GNRFETs).
  pts.c = pts.b;
  for (const auto& p : grid) {
    if (!p.ok || p.vt <= pts.b.vt) continue;
    if (p.snm_V >= 0.9 * pts.b.snm_V && p.edp_Js <= 1.6 * pts.b.edp_Js &&
        p.frequency_Hz < pts.b.frequency_Hz && p.vt > pts.c.vt) {
      pts.c = p;
    }
  }
  return pts;
}

}  // namespace gnrfet::explore
