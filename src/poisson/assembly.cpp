#include "poisson/assembly.hpp"

#include <limits>
#include <stdexcept>

#include "common/constants.hpp"

namespace gnrfet::poisson {

namespace {
/// Harmonic mean of node permittivities across a face.
double face_eps(double a, double b) { return 2.0 * a * b / (a + b); }
}  // namespace

Assembly::Assembly(const Domain& domain) : domain_(domain) {
  const GridSpec& s = domain.spec();
  const size_t n = s.num_nodes();
  free_index_.assign(n, std::numeric_limits<size_t>::max());
  for (size_t node = 0; node < n; ++node) {
    if (domain.electrode_at(node) < 0) {
      free_index_[node] = free_nodes_.size();
      free_nodes_.push_back(node);
    }
  }

  linalg::SparseBuilder builder(free_nodes_.size());
  const double e0 = constants::kEpsilon0_e_per_V_nm;
  // Face coupling coefficients: eps * area / distance, per axis.
  const double cx = e0 * (s.dy * s.dz) / s.dx;
  const double cy = e0 * (s.dx * s.dz) / s.dy;
  const double cz = e0 * (s.dx * s.dy) / s.dz;

  auto visit_neighbor = [&](size_t row, size_t node, size_t nbr, double c) {
    const double eps = face_eps(domain.eps_r(node), domain.eps_r(nbr));
    const double w = c * eps;
    builder.add(row, row, w);
    const size_t nbr_free = free_index_[nbr];
    if (nbr_free != std::numeric_limits<size_t>::max()) {
      builder.add(row, nbr_free, -w);
    } else {
      links_.push_back({row, domain.electrode_at(nbr), w});
    }
  };

  for (size_t f = 0; f < free_nodes_.size(); ++f) {
    const size_t node = free_nodes_[f];
    const size_t k = node % s.nz;
    const size_t j = (node / s.nz) % s.ny;
    const size_t i = node / (s.nz * s.ny);
    if (i > 0) visit_neighbor(f, node, s.index(i - 1, j, k), cx);
    if (i + 1 < s.nx) visit_neighbor(f, node, s.index(i + 1, j, k), cx);
    if (j > 0) visit_neighbor(f, node, s.index(i, j - 1, k), cy);
    if (j + 1 < s.ny) visit_neighbor(f, node, s.index(i, j + 1, k), cy);
    if (k > 0) visit_neighbor(f, node, s.index(i, j, k - 1), cz);
    if (k + 1 < s.nz) visit_neighbor(f, node, s.index(i, j, k + 1), cz);
  }
  matrix_ = linalg::SparseMatrix(builder);
}

std::vector<double> Assembly::rhs(const std::vector<double>& electrode_voltages,
                                  const std::vector<double>& rho_e) const {
  if (static_cast<int>(electrode_voltages.size()) != domain_.num_electrodes()) {
    throw std::invalid_argument("Assembly::rhs: electrode voltage count mismatch");
  }
  if (rho_e.size() != domain_.spec().num_nodes()) {
    throw std::invalid_argument("Assembly::rhs: rho size mismatch");
  }
  std::vector<double> b(free_nodes_.size());
  for (size_t f = 0; f < free_nodes_.size(); ++f) b[f] = rho_e[free_nodes_[f]];
  for (const auto& link : links_) {
    b[link.row] += link.coeff * electrode_voltages[static_cast<size_t>(link.electrode)];
  }
  return b;
}

std::vector<double> Assembly::expand(const std::vector<double>& phi_free,
                                     const std::vector<double>& electrode_voltages) const {
  const GridSpec& s = domain_.spec();
  std::vector<double> full(s.num_nodes(), 0.0);
  for (size_t node = 0; node < s.num_nodes(); ++node) {
    const int el = domain_.electrode_at(node);
    if (el >= 0) {
      full[node] = electrode_voltages[static_cast<size_t>(el)];
    } else {
      full[node] = phi_free[free_index_[node]];
    }
  }
  return full;
}

std::vector<double> Assembly::restrict_to_free(const std::vector<double>& full) const {
  std::vector<double> out(free_nodes_.size());
  for (size_t f = 0; f < free_nodes_.size(); ++f) out[f] = full[free_nodes_[f]];
  return out;
}

}  // namespace gnrfet::poisson
