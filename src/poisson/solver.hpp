#pragma once

#include <atomic>
#include <memory>

#include "linalg/pcg.hpp"
#include "linalg/preconditioner.hpp"
#include "poisson/assembly.hpp"
#include "poisson/multigrid.hpp"
#include "poisson/nonlinear.hpp"

/// Reusable linear/nonlinear Poisson solver around one Assembly.
///
/// The self-consistent loop solves the same sparsity pattern at every
/// Newton iteration of every Gummel iteration of every bias point; this
/// object keeps everything that survives between those solves:
///
///  - a persistent Jacobian copy of the Laplacian whose diagonal is
///    retargeted in place each Newton iteration (diag(A) + charge term) —
///    no full SparseMatrix copy per iteration,
///  - the preconditioner factorization, numerically refreshed via
///    Preconditioner::refactor() because only the diagonal moved,
///  - the PCG workspace vectors and every Newton-loop scratch vector,
///  - the previous Newton update, which warm-starts the next inner PCG.
///
/// The preconditioner is chosen by GNRFET_POISSON_PC (jacobi | ssor |
/// ic0 | mg; default ic0). `jacobi` is the pinned pre-preconditioner
/// baseline: it zero-starts every inner PCG and uses the legacy
/// sequential summation order, so its outputs are bit-identical to the
/// historical solver. `mg` builds a persistent geometric multigrid
/// hierarchy from the assembly (rebuilt only when the grid — i.e. the
/// Assembly — changes) and applies one V-cycle per PCG iteration; set
/// GNRFET_POISSON_MG_MODE=standalone to iterate V-cycles directly
/// instead of wrapping them in PCG. One PoissonSolver is used by one
/// thread at a time; create one per concurrent solve (the thread-pool
/// parallelism is across solves). The persistent workspaces are
/// deliberately unlocked — the class is thread-compatible, not
/// thread-safe — so instead of a capability annotation the solve entry
/// points carry a runtime single-owner contract
/// (poisson/solver-single-owner) that fires on concurrent entry.
namespace gnrfet::poisson {

/// GNRFET_POISSON_PC, defaulting to ic0; throws on unknown values.
linalg::PreconditionerKind preconditioner_kind_from_env();

class PoissonSolver {
 public:
  explicit PoissonSolver(const Assembly& assembly);
  PoissonSolver(const Assembly& assembly, linalg::PreconditionerKind kind);

  linalg::PreconditionerKind kind() const { return kind_; }

  /// Nonlinear (exponentially screened) solve; see nonlinear.hpp for the
  /// field conventions.
  NonlinearResult solve_nonlinear(const std::vector<double>& electrode_voltages,
                                  const std::vector<double>& n0_e,
                                  const std::vector<double>& p0_e,
                                  const std::vector<double>& rho_fixed_e,
                                  const std::vector<double>& phi_ref_full,
                                  const std::vector<double>& phi_init_full,
                                  const NonlinearOptions& opts = {});

  /// Plain linear solve (no mobile charge).
  std::vector<double> solve_linear(const std::vector<double>& electrode_voltages,
                                   const std::vector<double>& rho_e);

 private:
  /// Restore the persistent Jacobian to the pristine Laplacian diagonal
  /// and refresh the preconditioner.
  void reset_jacobian();

  const Assembly& assembly_;
  linalg::PreconditionerKind kind_;
  std::unique_ptr<linalg::Preconditioner> precond_;
  /// Non-owning view of precond_ when kind_ == kMg (standalone cycling).
  MultigridPreconditioner* mg_ = nullptr;
  bool mg_standalone_ = false;
  linalg::SparseMatrix jac_;        ///< persistent copy; only its diagonal moves
  std::vector<double> base_diag_;   ///< diag(A) of the pristine operator
  linalg::PcgWorkspace pcg_ws_;
  // Newton-loop scratch, allocated once.
  std::vector<double> delta_, residual_, ax_, rhs_, q_, dq_dphi_;
  /// Single-owner probe backing the solver-single-owner contract: set for
  /// the duration of each solve; a second concurrent entrant trips the
  /// contract instead of silently corrupting the shared workspaces.
  std::atomic<bool> in_use_{false};
};

}  // namespace gnrfet::poisson
