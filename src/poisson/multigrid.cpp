#include "poisson/multigrid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace gnrfet::poisson {

namespace {

/// Per-axis interpolation stencil of a fine index against the coarse
/// axis: one entry when the fine node coincides with a coarse node (even
/// index, weight 1), two half-weight entries between coarse nodes, and a
/// clamp to the last coarse node when an even fine extent leaves the far
/// boundary without a coincident partner.
struct AxisStencil {
  size_t idx[2];
  double w[2];
  int count;
};

AxisStencil axis_stencil(size_t i, size_t nc) {
  if (i % 2 == 0) return {{i / 2, 0}, {1.0, 0.0}, 1};
  const size_t lo = (i - 1) / 2;
  if (lo + 1 >= nc) return {{nc - 1, 0}, {1.0, 0.0}, 1};
  return {{lo, lo + 1}, {0.5, 0.5}, 2};
}

void decompose(size_t node, size_t ny, size_t nz, size_t& i, size_t& j, size_t& k) {
  k = node % nz;
  j = (node / nz) % ny;
  i = node / (nz * ny);
}

}  // namespace

const linalg::SparseMatrix& MultigridHierarchy::matrix_at(size_t level) const {
  return level == 0 ? *fine_ : *levels_[level].op;
}

MultigridHierarchy::MultigridHierarchy(const Assembly& assembly, const MultigridOptions& opts)
    : opts_(opts) {
  trace::Span span("poisson", "mg_build_hierarchy");
  if (opts_.pre_sweeps < 1 || opts_.post_sweeps < 1 || opts_.max_levels < 1) {
    throw std::invalid_argument("MultigridHierarchy: sweeps and levels must be positive");
  }
  const GridSpec& g = assembly.domain().spec();

  // Level 0 mirrors the assembly's free-node numbering exactly.
  Level fine;
  fine.nx = g.nx;
  fine.ny = g.ny;
  fine.nz = g.nz;
  fine.free_index.resize(g.num_nodes());
  for (size_t node = 0; node < g.num_nodes(); ++node) {
    fine.free_index[node] = assembly.free_index(node);
  }
  fine.free_nodes.resize(assembly.num_free());
  for (size_t f = 0; f < assembly.num_free(); ++f) fine.free_nodes[f] = assembly.free_node(f);
  fine.pristine_diag = assembly.matrix().diagonal();
  levels_.push_back(std::move(fine));

  // Coarsen while the level is still large enough to be worth a direct
  // solve and every axis can halve.
  while (static_cast<int>(levels_.size()) < opts_.max_levels &&
         levels_.back().free_nodes.size() > opts_.coarsest_max_unknowns) {
    Level& f = levels_.back();
    const size_t ncx = (f.nx + 1) / 2, ncy = (f.ny + 1) / 2, ncz = (f.nz + 1) / 2;
    if (ncx < 2 || ncy < 2 || ncz < 2) break;

    Level c;
    c.nx = ncx;
    c.ny = ncy;
    c.nz = ncz;
    c.free_index.assign(ncx * ncy * ncz, SIZE_MAX);
    for (size_t ci = 0; ci < ncx; ++ci) {
      for (size_t cj = 0; cj < ncy; ++cj) {
        for (size_t ck = 0; ck < ncz; ++ck) {
          // A coarse node inherits Dirichlet status from its coincident
          // fine node.
          const size_t fnode = ((2 * ci) * f.ny + 2 * cj) * f.nz + 2 * ck;
          if (f.free_index[fnode] == SIZE_MAX) continue;
          const size_t cnode = (ci * ncy + cj) * ncz + ck;
          c.free_index[cnode] = c.free_nodes.size();
          c.free_nodes.push_back(cnode);
        }
      }
    }
    if (c.free_nodes.empty() || c.free_nodes.size() >= f.free_nodes.size()) break;

    // Trilinear prolongation between free-node index spaces, CSR over the
    // fine unknowns. Ascending axis loops keep each row's columns sorted.
    const size_t nf = f.free_nodes.size();
    f.p_ptr.assign(nf + 1, 0);
    for (size_t u = 0; u < nf; ++u) {
      f.p_ptr[u] = f.p_col.size();
      size_t i, j, k;
      decompose(f.free_nodes[u], f.ny, f.nz, i, j, k);
      const AxisStencil sx = axis_stencil(i, ncx);
      const AxisStencil sy = axis_stencil(j, ncy);
      const AxisStencil sz = axis_stencil(k, ncz);
      for (int a = 0; a < sx.count; ++a) {
        for (int b = 0; b < sy.count; ++b) {
          for (int d = 0; d < sz.count; ++d) {
            const size_t cnode = (sx.idx[a] * ncy + sy.idx[b]) * ncz + sz.idx[d];
            const size_t cu = c.free_index[cnode];
            if (cu == SIZE_MAX) continue;  // zero correction on electrodes
            f.p_col.push_back(cu);
            f.p_val.push_back(sx.w[a] * sy.w[b] * sz.w[d]);
          }
        }
      }
    }
    f.p_ptr[nf] = f.p_col.size();

    // Restriction = exact transpose, built with a counting pass so each
    // row's columns come out ascending.
    const size_t nc = c.free_nodes.size();
    f.r_ptr.assign(nc + 1, 0);
    for (const size_t cu : f.p_col) ++f.r_ptr[cu + 1];
    for (size_t I = 0; I < nc; ++I) f.r_ptr[I + 1] += f.r_ptr[I];
    f.r_col.assign(f.p_col.size(), 0);
    f.r_val.assign(f.p_col.size(), 0.0);
    std::vector<size_t> next(f.r_ptr.begin(), f.r_ptr.end() - 1);
    for (size_t u = 0; u < nf; ++u) {
      for (size_t t = f.p_ptr[u]; t < f.p_ptr[u + 1]; ++t) {
        const size_t slot = next[f.p_col[t]]++;
        f.r_col[slot] = u;
        f.r_val[slot] = f.p_val[t];
      }
    }

    // Galerkin coarse operator A_c = P^T A_f P from the pristine fine
    // values, accumulated row-by-row through a marker array. Fixed loop
    // order makes the construction bit-deterministic.
    const linalg::SparseMatrix& af =
        levels_.size() == 1 ? assembly.matrix() : *levels_.back().op;
    linalg::SparseBuilder builder(nc);
    std::vector<double> acc(nc, 0.0);
    std::vector<size_t> mark(nc, SIZE_MAX);
    std::vector<size_t> touched;
    for (size_t I = 0; I < nc; ++I) {
      touched.clear();
      for (size_t t = f.r_ptr[I]; t < f.r_ptr[I + 1]; ++t) {
        const size_t u = f.r_col[t];
        const double w1 = f.r_val[t];
        for (size_t ka = af.row_ptr()[u]; ka < af.row_ptr()[u + 1]; ++ka) {
          const size_t v = af.col_idx()[ka];
          const double w1a = w1 * af.values()[ka];
          for (size_t tp = f.p_ptr[v]; tp < f.p_ptr[v + 1]; ++tp) {
            const size_t J = f.p_col[tp];
            if (mark[J] != I) {
              mark[J] = I;
              acc[J] = 0.0;
              touched.push_back(J);
            }
            acc[J] += w1a * f.p_val[tp];
          }
        }
      }
      std::sort(touched.begin(), touched.end());
      for (const size_t J : touched) builder.add(I, J, acc[J]);
    }
    c.op = std::make_unique<linalg::SparseMatrix>(builder);
    c.pristine_diag = c.op->diagonal();
    levels_.push_back(std::move(c));
  }

  // Red-black orderings by grid-parity of (i+j+k), ascending within each
  // colour; the cycle reverses them exactly for the post-smooth.
  for (Level& lev : levels_) {
    for (size_t u = 0; u < lev.free_nodes.size(); ++u) {
      size_t i, j, k;
      decompose(lev.free_nodes[u], lev.ny, lev.nz, i, j, k);
      ((i + j + k) % 2 == 0 ? lev.red : lev.black).push_back(u);
    }
    const size_t n = lev.free_nodes.size();
    lev.x.resize(n);
    lev.b.resize(n);
    lev.r.resize(n);
    lev.shift.assign(n, 0.0);
  }

  refresh(assembly.matrix());
}

void MultigridHierarchy::refresh(const linalg::SparseMatrix& fine) {
  trace::Span span("poisson", "mg_refresh");
  const size_t n0 = levels_[0].free_nodes.size();
  if (fine.dim() != n0) {
    throw std::invalid_argument("MultigridHierarchy::refresh: operator dimension changed");
  }
  fine_ = &fine;
  if (fine_pristine_diag_.empty()) fine_pristine_diag_ = levels_[0].pristine_diag;

  // Propagate the Newton diagonal shift down the hierarchy by restriction
  // lumping: d_c(I) = sum_f P(f, I)^2 d_f(f). A pure function of the
  // incoming matrix, so refactor-after-updates == fresh factor.
  for (size_t i = 0; i < n0; ++i) {
    levels_[0].shift[i] = fine.diagonal_at(i) - fine_pristine_diag_[i];
  }
  for (size_t l = 0; l + 1 < levels_.size(); ++l) {
    const Level& f = levels_[l];
    Level& c = levels_[l + 1];
    for (size_t I = 0; I < c.free_nodes.size(); ++I) {
      double s = 0.0;
      for (size_t t = f.r_ptr[I]; t < f.r_ptr[I + 1]; ++t) {
        s += f.r_val[t] * f.r_val[t] * f.shift[f.r_col[t]];
      }
      c.shift[I] = s;
      c.op->set_diagonal(I, c.pristine_diag[I] + s);
    }
  }

  // Dense LU on the coarsest level (the fine operator itself when no
  // coarsening was possible).
  const linalg::SparseMatrix& ac = matrix_at(levels_.size() - 1);
  const size_t nc = ac.dim();
  linalg::DMatrix dense(nc, nc, 0.0);
  for (size_t row = 0; row < nc; ++row) {
    for (size_t k = ac.row_ptr()[row]; k < ac.row_ptr()[row + 1]; ++k) {
      dense(row, ac.col_idx()[k]) = ac.values()[k];
    }
  }
  coarse_lu_ = std::make_unique<linalg::LUReal>(std::move(dense));
}

void MultigridHierarchy::gs_sweep(size_t level, const std::vector<double>& b,
                                  std::vector<double>& x, bool reversed) const {
  const linalg::SparseMatrix& a = matrix_at(level);
  const auto& row_ptr = a.row_ptr();
  const auto& col = a.col_idx();
  const double* val = a.values().data();
  const Level& lev = levels_[level];
  const auto relax = [&](size_t i) {
    double s = 0.0;
    for (size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) s += val[k] * x[col[k]];
    x[i] += (b[i] - s) / a.diagonal_at(i);
  };
  if (!reversed) {
    for (const size_t i : lev.red) relax(i);
    for (const size_t i : lev.black) relax(i);
  } else {
    // Exact adjoint of the forward sweep: same nodes, opposite order, so
    // the V-cycle stays a symmetric operator (an SPD PCG preconditioner).
    for (size_t t = lev.black.size(); t-- > 0;) relax(lev.black[t]);
    for (size_t t = lev.red.size(); t-- > 0;) relax(lev.red[t]);
  }
}

void MultigridHierarchy::residual(size_t level, const std::vector<double>& b,
                                  const std::vector<double>& x, std::vector<double>& r) const {
  const linalg::SparseMatrix& a = matrix_at(level);
  const auto& row_ptr = a.row_ptr();
  const auto& col = a.col_idx();
  const double* val = a.values().data();
  r.resize(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    double s = 0.0;
    for (size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) s += val[k] * x[col[k]];
    r[i] = b[i] - s;
  }
}

void MultigridHierarchy::cycle(size_t level) const {
  if (level == 0) metrics::add(metrics::Counter::kMgVcycles);
  const Level& lev = levels_[level];
  if (level + 1 == levels_.size()) {
    lev.x = coarse_lu_->solve(lev.b);
    return;
  }
  std::fill(lev.x.begin(), lev.x.end(), 0.0);
  for (int s = 0; s < opts_.pre_sweeps; ++s) gs_sweep(level, lev.b, lev.x, false);
  residual(level, lev.b, lev.x, lev.r);

  const Level& coarse = levels_[level + 1];
  for (size_t I = 0; I < coarse.free_nodes.size(); ++I) {
    double s = 0.0;
    for (size_t t = lev.r_ptr[I]; t < lev.r_ptr[I + 1]; ++t) {
      s += lev.r_val[t] * lev.r[lev.r_col[t]];
    }
    coarse.b[I] = s;
  }
  cycle(level + 1);
  for (size_t u = 0; u < lev.free_nodes.size(); ++u) {
    double s = 0.0;
    for (size_t t = lev.p_ptr[u]; t < lev.p_ptr[u + 1]; ++t) {
      s += lev.p_val[t] * coarse.x[lev.p_col[t]];
    }
    lev.x[u] += s;
  }
  for (int s = 0; s < opts_.post_sweeps; ++s) gs_sweep(level, lev.b, lev.x, true);
}

void MultigridHierarchy::vcycle_apply(const std::vector<double>& r,
                                      std::vector<double>& z) const {
  const size_t n = levels_[0].free_nodes.size();
  if (r.size() != n) {
    throw std::invalid_argument("MultigridHierarchy::vcycle_apply: size mismatch");
  }
  levels_[0].b = r;
  cycle(0);
  z = levels_[0].x;
}

MultigridSolveResult MultigridHierarchy::solve(const std::vector<double>& b,
                                               std::vector<double>& x, double rel_tolerance,
                                               double abs_tolerance, int max_cycles) const {
  trace::Span span("poisson", "multigrid_solve");
  const size_t n = levels_[0].free_nodes.size();
  if (b.size() != n) throw std::invalid_argument("multigrid_solve: rhs size mismatch");
  if (x.size() != n) x.assign(n, 0.0);

  double b_norm2 = 0.0;
  for (const double v : b) b_norm2 += v * v;
  const double b_norm = std::sqrt(std::max(b_norm2, 1e-300));

  MultigridSolveResult result;
  std::vector<double> res(n);
  for (int it = 0; it <= max_cycles; ++it) {
    residual(0, b, x, res);
    double r_norm2 = 0.0;
    for (const double v : res) r_norm2 += v * v;
    result.residual_norm = std::sqrt(r_norm2);
    result.cycles = it;
    if (result.residual_norm <= rel_tolerance * b_norm ||
        result.residual_norm <= abs_tolerance) {
      result.converged = true;
      GNRFET_ENSURE("poisson", "finite-solution", contracts::all_finite(x),
                    "multigrid converged to a solution containing NaN/inf");
      return result;
    }
    if (it == max_cycles) break;
    levels_[0].b = res;
    cycle(0);
    for (size_t i = 0; i < n; ++i) x[i] += levels_[0].x[i];
  }
  return result;
}

std::vector<double> MultigridHierarchy::prolongate(size_t level,
                                                   const std::vector<double>& coarse) const {
  const Level& lev = levels_.at(level);
  if (level + 1 >= levels_.size() || coarse.size() != levels_[level + 1].free_nodes.size()) {
    throw std::invalid_argument("MultigridHierarchy::prolongate: bad level/size");
  }
  std::vector<double> fine(lev.free_nodes.size(), 0.0);
  for (size_t u = 0; u < fine.size(); ++u) {
    double s = 0.0;
    for (size_t t = lev.p_ptr[u]; t < lev.p_ptr[u + 1]; ++t) {
      s += lev.p_val[t] * coarse[lev.p_col[t]];
    }
    fine[u] = s;
  }
  return fine;
}

std::vector<double> MultigridHierarchy::restrict_residual(size_t level,
                                                          const std::vector<double>& fine) const {
  const Level& lev = levels_.at(level);
  if (level + 1 >= levels_.size() || fine.size() != lev.free_nodes.size()) {
    throw std::invalid_argument("MultigridHierarchy::restrict_residual: bad level/size");
  }
  std::vector<double> coarse(levels_[level + 1].free_nodes.size(), 0.0);
  for (size_t I = 0; I < coarse.size(); ++I) {
    double s = 0.0;
    for (size_t t = lev.r_ptr[I]; t < lev.r_ptr[I + 1]; ++t) {
      s += lev.r_val[t] * fine[lev.r_col[t]];
    }
    coarse[I] = s;
  }
  return coarse;
}

// -------------------------------------------------- preconditioner facade

MultigridPreconditioner::MultigridPreconditioner(const Assembly& assembly,
                                                 const MultigridOptions& opts)
    : hierarchy_(assembly, opts) {}

void MultigridPreconditioner::factor(const linalg::SparseMatrix& a) {
  hierarchy_.refresh(a);
  metrics::add(metrics::Counter::kPcgPrecondSetups);
}

void MultigridPreconditioner::refactor(const linalg::SparseMatrix& a) { factor(a); }

void MultigridPreconditioner::apply(const std::vector<double>& r,
                                    std::vector<double>& z) const {
  hierarchy_.vcycle_apply(r, z);
}

MultigridSolveResult MultigridPreconditioner::solve(const std::vector<double>& b,
                                                    std::vector<double>& x,
                                                    double rel_tolerance, double abs_tolerance,
                                                    int max_cycles) const {
  return hierarchy_.solve(b, x, rel_tolerance, abs_tolerance, max_cycles);
}

MultigridSolveResult multigrid_solve(const Assembly& assembly, const std::vector<double>& b,
                                     std::vector<double>& x, double rel_tolerance,
                                     double abs_tolerance, int max_cycles) {
  const MultigridHierarchy hierarchy(assembly);
  return hierarchy.solve(b, x, rel_tolerance, abs_tolerance, max_cycles);
}

}  // namespace gnrfet::poisson
