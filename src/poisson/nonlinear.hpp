#pragma once

#include "poisson/assembly.hpp"

/// Nonlinear Poisson solve used inside the Gummel loop.
///
/// The NEGF charge at the reference potential phi_ref is split into
/// electron (n0 >= 0) and hole (p0 >= 0) node populations. Within one
/// Gummel iteration the charge responds to the new potential through the
/// standard exponential linearization
///   q(phi) = -n0 exp((phi - phi_ref)/Vt) + p0 exp(-(phi - phi_ref)/Vt)
///            + rho_fixed,
/// which regularizes the fixed-point iteration (Trellakis/Gummel). Newton
/// with an SPD Jacobian (A + diag((n + p)/Vt)) and PCG inner solves,
/// preconditioned per GNRFET_POISSON_PC (jacobi | ssor | ic0; default
/// ic0 — see poisson/solver.hpp for the reusable-solver entry point).
namespace gnrfet::poisson {

struct NonlinearOptions {
  double thermal_voltage_V = 0.02585;
  double tolerance_V = 1e-5;
  int max_newton_iterations = 60;
  double max_step_V = 0.1;  ///< per-iteration potential damping clamp
};

struct NonlinearResult {
  std::vector<double> phi_full;  ///< potential on the full grid [V]
  bool converged = false;
  int iterations = 0;
  double last_update_V = 0.0;
};

/// Solve A phi = rhs(V, q(phi)). `n0_e`/`p0_e`/`rho_fixed_e` are nodal
/// populations/charges on the full grid (units of e); `phi_ref_full` and
/// the initial guess `phi_init_full` are full-grid potentials.
NonlinearResult solve_nonlinear_poisson(const Assembly& assembly,
                                        const std::vector<double>& electrode_voltages,
                                        const std::vector<double>& n0_e,
                                        const std::vector<double>& p0_e,
                                        const std::vector<double>& rho_fixed_e,
                                        const std::vector<double>& phi_ref_full,
                                        const std::vector<double>& phi_init_full,
                                        const NonlinearOptions& opts = {});

/// Plain linear solve (no mobile charge), for tests and initialization.
std::vector<double> solve_linear_poisson(const Assembly& assembly,
                                         const std::vector<double>& electrode_voltages,
                                         const std::vector<double>& rho_e);

}  // namespace gnrfet::poisson
