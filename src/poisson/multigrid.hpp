#pragma once

#include <memory>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/preconditioner.hpp"
#include "linalg/sparse.hpp"
#include "poisson/assembly.hpp"

/// Geometric multigrid for the structured-grid Poisson operator.
///
/// The hierarchy coarsens the rectilinear device grid by a factor of two
/// per axis (coarse node (I, J, K) sits on fine node (2I, 2J, 2K); the
/// far boundary clamps to the nearest coarse node when the fine extent is
/// even). Prolongation is trilinear interpolation between free-node index
/// spaces — contributions from electrode (Dirichlet) coarse nodes are
/// dropped, since the correction there is zero — and restriction is its
/// exact transpose, which on this vertex-centred grid is full weighting
/// up to scale. Coarse operators are Galerkin triple products
/// A_c = P^T A_f P of the pristine assembled Laplacian, so Dirichlet
/// elimination and material interfaces are inherited from the fine
/// stencil without re-discretising coarse Domains.
///
/// The V-cycle smooths with red-black Gauss-Seidel in a fixed sweep order
/// (red ascending then black ascending before coarsening; the reverse
/// after), making one cycle a symmetric linear operator — a valid SPD
/// preconditioner for PCG — and bit-deterministic for any GNRFET_THREADS
/// (every sweep runs on one thread; parallelism in this codebase is
/// across solves). The coarsest level is solved by dense LU.
///
/// Newton's charge linearisation only shifts the fine diagonal;
/// refresh() re-smooths that shift through the hierarchy by restriction
/// lumping (d_c(I) = sum_f P(f,I)^2 d_f(f)) and refactors the coarsest
/// LU. The refresh depends only on the matrix passed in, never on call
/// history, so refactor() after any sequence of updates is bit-identical
/// to a fresh factor() of the same matrix.
namespace gnrfet::poisson {

struct MultigridOptions {
  int pre_sweeps = 1;               ///< red-black GS sweeps before coarsening
  int post_sweeps = 1;              ///< reversed sweeps after prolongation
  size_t coarsest_max_unknowns = 200;  ///< stop coarsening at this size
  int max_levels = 12;
};

struct MultigridSolveResult {
  bool converged = false;
  int cycles = 0;
  double residual_norm = 0.0;
};

class MultigridHierarchy {
 public:
  /// Builds the full hierarchy (transfer operators, Galerkin coarse
  /// matrices, red-black orderings, coarsest LU) from the pristine
  /// assembled operator. The assembly must outlive the hierarchy.
  explicit MultigridHierarchy(const Assembly& assembly, const MultigridOptions& opts = {});

  /// Numeric-only refresh after diagonal edits to the fine operator (the
  /// Newton loop's only mutation). `fine` must share the assembly
  /// matrix's sparsity pattern and must outlive the next refresh: level-0
  /// sweeps read its values in place. Deterministic function of `fine`
  /// alone — repeated refreshes are bit-identical to a fresh build.
  void refresh(const linalg::SparseMatrix& fine);

  /// z = M^{-1} r through one symmetric V-cycle (zero initial guess).
  void vcycle_apply(const std::vector<double>& r, std::vector<double>& z) const;

  /// Standalone solver: iterate V-cycles on A x = b until the residual
  /// 2-norm drops below rel_tolerance * |b| (or abs_tolerance). `x` is
  /// the warm start and holds the solution on return.
  MultigridSolveResult solve(const std::vector<double>& b, std::vector<double>& x,
                             double rel_tolerance = 1e-10, double abs_tolerance = 1e-14,
                             int max_cycles = 200) const;

  size_t num_levels() const { return levels_.size(); }
  size_t unknowns(size_t level) const { return levels_[level].free_nodes.size(); }

  /// Transfer operators for the consistency tests: interpolate a
  /// level+1 vector up to `level`, or restrict a `level` vector down.
  std::vector<double> prolongate(size_t level, const std::vector<double>& coarse) const;
  std::vector<double> restrict_residual(size_t level, const std::vector<double>& fine) const;

 private:
  struct Level {
    size_t nx = 0, ny = 0, nz = 0;
    std::vector<size_t> free_index;  ///< grid node -> unknown (SIZE_MAX = Dirichlet)
    std::vector<size_t> free_nodes;  ///< unknown -> grid node
    /// Owned Galerkin operator (levels >= 1; level 0 reads fine_).
    std::unique_ptr<linalg::SparseMatrix> op;
    std::vector<double> pristine_diag;  ///< diagonal before any Newton shift
    std::vector<size_t> red, black;     ///< unknowns by (i+j+k) parity, ascending
    /// Prolongation from level+1 unknowns into this level's unknowns
    /// (CSR over this level's rows; absent on the coarsest level).
    std::vector<size_t> p_ptr, p_col;
    std::vector<double> p_val;
    /// Transpose (restriction), CSR over level+1 rows.
    std::vector<size_t> r_ptr, r_col;
    std::vector<double> r_val;
    // Cycle scratch, sized once.
    mutable std::vector<double> x, b, r, shift;
  };

  const linalg::SparseMatrix& matrix_at(size_t level) const;
  void gs_sweep(size_t level, const std::vector<double>& b, std::vector<double>& x,
                bool reversed) const;
  void residual(size_t level, const std::vector<double>& b, const std::vector<double>& x,
                std::vector<double>& r) const;
  void cycle(size_t level) const;

  MultigridOptions opts_;
  std::vector<Level> levels_;
  const linalg::SparseMatrix* fine_ = nullptr;  ///< level-0 operator, read in place
  std::vector<double> fine_pristine_diag_;
  std::unique_ptr<linalg::LUReal> coarse_lu_;
};

/// Preconditioner adapter: factor()/refactor() both run the numeric
/// refresh (path-independent by construction), apply() is one V-cycle.
/// Selected in PoissonSolver via GNRFET_POISSON_PC=mg; needs the grid
/// geometry, so linalg::make_preconditioner cannot build it.
class MultigridPreconditioner final : public linalg::Preconditioner {
 public:
  explicit MultigridPreconditioner(const Assembly& assembly, const MultigridOptions& opts = {});

  void factor(const linalg::SparseMatrix& a) override;
  void refactor(const linalg::SparseMatrix& a) override;
  void apply(const std::vector<double>& r, std::vector<double>& z) const override;
  const char* name() const override { return "mg"; }

  const MultigridHierarchy& hierarchy() const { return hierarchy_; }

  /// Standalone multigrid iteration on the last factored operator —
  /// PoissonSolver's GNRFET_POISSON_MG_MODE=standalone path, where PCG
  /// wrapping is unnecessary.
  MultigridSolveResult solve(const std::vector<double>& b, std::vector<double>& x,
                             double rel_tolerance, double abs_tolerance = 1e-14,
                             int max_cycles = 200) const;

 private:
  MultigridHierarchy hierarchy_;
};

/// One-off standalone solve: builds a hierarchy for `assembly`, solves
/// A x = b from the warm start in `x`. For repeated solves hold a
/// MultigridHierarchy (or MultigridPreconditioner) instead.
MultigridSolveResult multigrid_solve(const Assembly& assembly, const std::vector<double>& b,
                                     std::vector<double>& x, double rel_tolerance = 1e-10,
                                     double abs_tolerance = 1e-14, int max_cycles = 200);

}  // namespace gnrfet::poisson
