#include "poisson/nonlinear.hpp"

#include "poisson/solver.hpp"

namespace gnrfet::poisson {

// Thin wrappers: both entry points construct a transient PoissonSolver
// (preconditioner from GNRFET_POISSON_PC). Hot loops that solve the same
// assembly repeatedly should hold a PoissonSolver instead — it keeps the
// Jacobian, preconditioner factorization, and PCG workspace alive across
// solves (see poisson/solver.hpp).

std::vector<double> solve_linear_poisson(const Assembly& assembly,
                                         const std::vector<double>& electrode_voltages,
                                         const std::vector<double>& rho_e) {
  PoissonSolver solver(assembly);
  return solver.solve_linear(electrode_voltages, rho_e);
}

NonlinearResult solve_nonlinear_poisson(const Assembly& assembly,
                                        const std::vector<double>& electrode_voltages,
                                        const std::vector<double>& n0_e,
                                        const std::vector<double>& p0_e,
                                        const std::vector<double>& rho_fixed_e,
                                        const std::vector<double>& phi_ref_full,
                                        const std::vector<double>& phi_init_full,
                                        const NonlinearOptions& opts) {
  PoissonSolver solver(assembly);
  return solver.solve_nonlinear(electrode_voltages, n0_e, p0_e, rho_fixed_e, phi_ref_full,
                                phi_init_full, opts);
}

}  // namespace gnrfet::poisson
