#pragma once

#include "linalg/sparse.hpp"
#include "poisson/grid.hpp"

/// Assembly of the discrete Poisson operator div(eps grad phi) = -rho on
/// the free (non-electrode) nodes.
///
/// The 7-point flux-conservative stencil integrates the flux over each
/// node's control volume with harmonic face permittivities — on this
/// rectilinear grid it coincides with the mass-lumped trilinear-FEM
/// stencil family. Open boundaries get natural zero-flux (Neumann)
/// conditions; Dirichlet neighbours are folded into the right-hand side.
namespace gnrfet::poisson {

class Assembly {
 public:
  explicit Assembly(const Domain& domain);

  /// SPD system matrix over free nodes (units: e/V).
  const linalg::SparseMatrix& matrix() const { return matrix_; }
  size_t num_free() const { return free_nodes_.size(); }

  /// Right-hand side for given electrode voltages [V] and nodal charge
  /// [e]: b = rho_free + (Dirichlet coupling terms).
  std::vector<double> rhs(const std::vector<double>& electrode_voltages,
                          const std::vector<double>& rho_e) const;

  /// Scatter a free-node solution into a full-grid potential (electrode
  /// nodes take their fixed voltages).
  std::vector<double> expand(const std::vector<double>& phi_free,
                             const std::vector<double>& electrode_voltages) const;

  /// Restrict a full-grid field to free nodes.
  std::vector<double> restrict_to_free(const std::vector<double>& full) const;

  /// Free-node index of a grid node, or SIZE_MAX if the node is an
  /// electrode node.
  size_t free_index(size_t node) const { return free_index_[node]; }

  /// Grid node of a free-node index.
  size_t free_node(size_t f) const { return free_nodes_[f]; }

  /// The domain this operator was assembled over (grid geometry for the
  /// multigrid hierarchy).
  const Domain& domain() const { return domain_; }

 private:
  const Domain& domain_;
  std::vector<size_t> free_nodes_;           ///< free -> grid node
  std::vector<size_t> free_index_;           ///< grid node -> free (SIZE_MAX if fixed)
  linalg::SparseMatrix matrix_;
  /// Dirichlet couplings: (free row, electrode id, coefficient).
  struct DirichletLink {
    size_t row;
    int electrode;
    double coeff;
  };
  std::vector<DirichletLink> links_;
};

}  // namespace gnrfet::poisson
