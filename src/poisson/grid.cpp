#include "poisson/grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gnrfet::poisson {

Domain::Domain(const GridSpec& spec) : spec_(spec) {
  if (spec.nx < 3 || spec.ny < 3 || spec.nz < 3) {
    throw std::invalid_argument("poisson::Domain: need at least 3 nodes per axis");
  }
  eps_r_.assign(spec.num_nodes(), 1.0);
  electrode_.assign(spec.num_nodes(), -1);
}

void Domain::paint_permittivity(const Box& box, double eps_r) {
  for (size_t i = 0; i < spec_.nx; ++i) {
    for (size_t j = 0; j < spec_.ny; ++j) {
      for (size_t k = 0; k < spec_.nz; ++k) {
        if (box.contains(spec_.x(i), spec_.y(j), spec_.z(k))) {
          eps_r_[spec_.index(i, j, k)] = eps_r;
        }
      }
    }
  }
}

int Domain::add_electrode(const Box& box) {
  const int id = num_electrodes_++;
  for (size_t i = 0; i < spec_.nx; ++i) {
    for (size_t j = 0; j < spec_.ny; ++j) {
      for (size_t k = 0; k < spec_.nz; ++k) {
        if (box.contains(spec_.x(i), spec_.y(j), spec_.z(k))) {
          electrode_[spec_.index(i, j, k)] = id;
        }
      }
    }
  }
  return id;
}

namespace {
struct CicWeights {
  size_t i0, j0, k0;
  double fx, fy, fz;
};

CicWeights cic(const GridSpec& s, double x, double y, double z) {
  const double gx = std::clamp((x - s.x0) / s.dx, 0.0, static_cast<double>(s.nx - 1) - 1e-9);
  const double gy = std::clamp((y - s.y0) / s.dy, 0.0, static_cast<double>(s.ny - 1) - 1e-9);
  const double gz = std::clamp((z - s.z0) / s.dz, 0.0, static_cast<double>(s.nz - 1) - 1e-9);
  CicWeights w;
  w.i0 = static_cast<size_t>(gx);
  w.j0 = static_cast<size_t>(gy);
  w.k0 = static_cast<size_t>(gz);
  w.fx = gx - static_cast<double>(w.i0);
  w.fy = gy - static_cast<double>(w.j0);
  w.fz = gz - static_cast<double>(w.k0);
  return w;
}
}  // namespace

Domain::CicStencil Domain::stencil(double x, double y, double z) const {
  const CicWeights w = cic(spec_, x, y, z);
  CicStencil st;
  size_t p = 0;
  for (int di = 0; di < 2; ++di) {
    for (int dj = 0; dj < 2; ++dj) {
      for (int dk = 0; dk < 2; ++dk) {
        st.weight[p] = (di ? w.fx : 1.0 - w.fx) * (dj ? w.fy : 1.0 - w.fy) *
                       (dk ? w.fz : 1.0 - w.fz);
        st.node[p] = spec_.index(w.i0 + static_cast<size_t>(di), w.j0 + static_cast<size_t>(dj),
                                 w.k0 + static_cast<size_t>(dk));
        ++p;
      }
    }
  }
  return st;
}

double Domain::gather(const std::vector<double>& field, const CicStencil& st) const {
  double v = 0.0;
  // Ascending p matches the (di, dj, dk) loop order of the coordinate
  // form, so the accumulation is bit-identical to interpolate().
  for (size_t p = 0; p < 8; ++p) v += st.weight[p] * field[st.node[p]];
  return v;
}

void Domain::deposit(const CicStencil& st, double charge_e, std::vector<double>& rho) const {
  for (size_t p = 0; p < 8; ++p) rho[st.node[p]] += st.weight[p] * charge_e;
}

void Domain::deposit_charge(double x, double y, double z, double charge_e,
                            std::vector<double>& rho) const {
  if (rho.size() != spec_.num_nodes()) {
    throw std::invalid_argument("deposit_charge: rho size mismatch");
  }
  deposit(stencil(x, y, z), charge_e, rho);
}

double Domain::interpolate(const std::vector<double>& field, double x, double y,
                           double z) const {
  if (field.size() != spec_.num_nodes()) {
    throw std::invalid_argument("interpolate: field size mismatch");
  }
  return gather(field, stencil(x, y, z));
}

}  // namespace gnrfet::poisson
