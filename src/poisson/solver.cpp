#include "poisson/solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/env.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "common/trace.hpp"

namespace gnrfet::poisson {

namespace {

double clamped_exp(double x) { return std::exp(std::clamp(x, -30.0, 30.0)); }

/// Enforces the solver-single-owner contract for a scope: the persistent
/// Jacobian/preconditioner/PCG workspaces are thread-compatible, not
/// thread-safe, so concurrent entry is a caller bug we trap at the door
/// instead of letting it decay into corrupted warm starts. With
/// GNRFET_CHECKS=OFF the probe is never set and the guard is free.
struct SingleOwnerGuard {
  explicit SingleOwnerGuard(std::atomic<bool>& in_use) : in_use_(in_use) {
    GNRFET_REQUIRE("poisson", "solver-single-owner",
                   !in_use_.exchange(true, std::memory_order_acquire),
                   "PoissonSolver entered concurrently; create one solver per "
                   "concurrent solve (parallelism is across solves)");
  }
  ~SingleOwnerGuard() { in_use_.store(false, std::memory_order_release); }
  SingleOwnerGuard(const SingleOwnerGuard&) = delete;
  SingleOwnerGuard& operator=(const SingleOwnerGuard&) = delete;

 private:
  std::atomic<bool>& in_use_;
};

/// Builds the selected preconditioner: the matrix-only kinds through the
/// linalg factory, multigrid from the assembly geometry (persistent
/// hierarchy, alive for the solver's lifetime).
std::unique_ptr<linalg::Preconditioner> make_poisson_preconditioner(
    const Assembly& assembly, linalg::PreconditionerKind kind) {
  if (kind == linalg::PreconditionerKind::kMg) {
    return std::make_unique<MultigridPreconditioner>(assembly);
  }
  return linalg::make_preconditioner(kind);
}

/// GNRFET_POISSON_MG_MODE: "pcg" (default) wraps V-cycles in PCG;
/// "standalone" iterates V-cycles directly. Only consulted for mg.
bool mg_standalone_from_env() {
  const std::string mode = common::env_or("GNRFET_POISSON_MG_MODE", "pcg");
  if (mode == "pcg") return false;
  if (mode == "standalone") return true;
  throw std::invalid_argument("GNRFET_POISSON_MG_MODE must be pcg or standalone, got '" +
                              mode + "'");
}

}  // namespace

linalg::PreconditionerKind preconditioner_kind_from_env() {
  return linalg::preconditioner_kind_from_string(common::env_or("GNRFET_POISSON_PC", "ic0"));
}

PoissonSolver::PoissonSolver(const Assembly& assembly)
    : PoissonSolver(assembly, preconditioner_kind_from_env()) {}

PoissonSolver::PoissonSolver(const Assembly& assembly, linalg::PreconditionerKind kind)
    : assembly_(assembly),
      kind_(kind),
      precond_(make_poisson_preconditioner(assembly, kind)),
      jac_(assembly.matrix()),
      base_diag_(assembly.matrix().diagonal()) {
  if (kind_ == linalg::PreconditionerKind::kMg) {
    mg_ = static_cast<MultigridPreconditioner*>(precond_.get());
    mg_standalone_ = mg_standalone_from_env();
  }
  const size_t nf = assembly_.num_free();
  delta_.assign(nf, 0.0);
  residual_.resize(nf);
  ax_.resize(nf);
  rhs_.resize(nf);
  q_.resize(nf);
  dq_dphi_.resize(nf);
}

void PoissonSolver::reset_jacobian() {
  for (size_t f = 0; f < assembly_.num_free(); ++f) jac_.set_diagonal(f, base_diag_[f]);
  precond_->refactor(jac_);
}

std::vector<double> PoissonSolver::solve_linear(const std::vector<double>& electrode_voltages,
                                                const std::vector<double>& rho_e) {
  trace::Span span("poisson", "solve_linear_poisson");
  SingleOwnerGuard owner(in_use_);
  GNRFET_REQUIRE("poisson", "finite-charge", contracts::all_finite(rho_e),
                 "charge density contains NaN/inf");
  GNRFET_REQUIRE("poisson", "finite-boundary", contracts::all_finite(electrode_voltages),
                 "electrode voltages contain NaN/inf");
  const std::vector<double> b = assembly_.rhs(electrode_voltages, rho_e);
  reset_jacobian();  // jac_ back to the pristine Laplacian
  std::vector<double> x(assembly_.num_free(), 0.0);
  linalg::PcgOptions opts;
  opts.preconditioner = precond_.get();
  opts.workspace = &pcg_ws_;
  // The jacobi baseline is pinned bit-for-bit to the pre-preconditioner
  // solver, which accumulated dots strictly left-to-right.
  opts.sum_order = kind_ == linalg::PreconditionerKind::kJacobi
                       ? linalg::kernels::SumOrder::kSequential
                       : linalg::kernels::SumOrder::kPairwise;
  const bool converged = mg_standalone_
                             ? mg_->solve(b, x, opts.rel_tolerance, opts.abs_tolerance).converged
                             : linalg::pcg_solve(jac_, b, x, opts).converged;
  if (!converged) {
    throw std::runtime_error("solve_linear_poisson: linear solve did not converge");
  }
  return assembly_.expand(x, electrode_voltages);
}

NonlinearResult PoissonSolver::solve_nonlinear(const std::vector<double>& electrode_voltages,
                                               const std::vector<double>& n0_e,
                                               const std::vector<double>& p0_e,
                                               const std::vector<double>& rho_fixed_e,
                                               const std::vector<double>& phi_ref_full,
                                               const std::vector<double>& phi_init_full,
                                               const NonlinearOptions& opts) {
  trace::Span span("poisson", "solve_nonlinear_poisson");
  SingleOwnerGuard owner(in_use_);
  const size_t n_nodes = phi_ref_full.size();
  if (n0_e.size() != n_nodes || p0_e.size() != n_nodes || rho_fixed_e.size() != n_nodes ||
      phi_init_full.size() != n_nodes) {
    throw std::invalid_argument("solve_nonlinear_poisson: field size mismatch");
  }
  GNRFET_REQUIRE("poisson", "finite-charge",
                 contracts::all_finite(n0_e) && contracts::all_finite(p0_e) &&
                     contracts::all_finite(rho_fixed_e),
                 "nodal charge populations contain NaN/inf (poisoned NEGF output?)");
  GNRFET_REQUIRE("poisson", "finite-potential",
                 contracts::all_finite(phi_ref_full) && contracts::all_finite(phi_init_full) &&
                     contracts::all_finite(electrode_voltages),
                 "reference/initial potential or electrode voltages contain NaN/inf");
  const double vt = opts.thermal_voltage_V;
  const bool baseline = kind_ == linalg::PreconditionerKind::kJacobi;

  // Work on free nodes only.
  std::vector<double> phi = assembly_.restrict_to_free(phi_init_full);
  const std::vector<double> phi_ref = assembly_.restrict_to_free(phi_ref_full);
  const std::vector<double> n0 = assembly_.restrict_to_free(n0_e);
  const std::vector<double> p0 = assembly_.restrict_to_free(p0_e);
  const size_t nf = assembly_.num_free();

  NonlinearResult result;

  // The assembled right-hand side depends only on the boundary voltages
  // and the fixed charge, both invariant across the Newton loop: assemble
  // it once per solve instead of once per iteration.
  const std::vector<double> b_fixed = assembly_.rhs(electrode_voltages, rho_fixed_e);

  // Warm-starting the inner PCG from the previous Newton update pays off
  // because consecutive Newton systems differ only by a shrinking
  // diagonal term; the baseline path keeps the historical zero start.
  std::fill(delta_.begin(), delta_.end(), 0.0);

  linalg::PcgOptions pcg_opts;
  pcg_opts.rel_tolerance = 1e-9;
  pcg_opts.preconditioner = precond_.get();
  pcg_opts.workspace = &pcg_ws_;
  pcg_opts.sum_order = baseline ? linalg::kernels::SumOrder::kSequential
                                : linalg::kernels::SumOrder::kPairwise;

  // Trust-region-like damping: the clamp protects the exponential charge
  // linearization, but grows when Newton keeps pushing monotonically in
  // the same direction (e.g. unscreened far-field potentials), so large
  // linear excursions still converge.
  double clamp = opts.max_step_V;
  int saturated_steps = 0;
#if GNRFET_CHECKS_ENABLED
  double f_min = 0.0;  // smallest residual norm seen so far
#endif

  for (int it = 0; it < opts.max_newton_iterations; ++it) {
    // Residual F = A phi - b(V, q(phi)); b folds Dirichlet links + charge.
    for (size_t f = 0; f < nf; ++f) {
      const double en = clamped_exp((phi[f] - phi_ref[f]) / vt);
      const double ep = clamped_exp(-(phi[f] - phi_ref[f]) / vt);
      q_[f] = -n0[f] * en + p0[f] * ep;
      dq_dphi_[f] = -(n0[f] * en + p0[f] * ep) / vt;  // <= 0
    }
    assembly_.matrix().multiply(phi, ax_);
    double f_norm = 0.0;
    for (size_t f = 0; f < nf; ++f) {
      residual_[f] = ax_[f] - b_fixed[f] - q_[f];
      f_norm = std::max(f_norm, std::abs(residual_[f]));
    }
    // The damped Newton residual must stay finite and must not run away
    // from the best residual seen so far: growth beyond the slack factor
    // means the linearization is diverging, and every later Gummel
    // iteration would silently inherit the junk potential.
    GNRFET_CHECK_FINITE("poisson", "finite-residual", f_norm);
#if GNRFET_CHECKS_ENABLED
    if (it == 0) {
      f_min = f_norm;
    } else {
      GNRFET_REQUIRE("poisson", "residual-bounded", f_norm <= 1e4 * f_min + 1e-12,
                     strings::format("Newton iteration %d: residual %g vs best %g", it, f_norm,
                                     f_min));
      f_min = std::min(f_min, f_norm);
    }
#endif
    // Newton system: (A - diag(dq/dphi)) delta = -F. The persistent
    // Jacobian copy is retargeted diagonal-only (the off-diagonals never
    // change), and the preconditioner refreshes numerically in place.
    for (size_t f = 0; f < nf; ++f) jac_.set_diagonal(f, base_diag_[f] - dq_dphi_[f]);
    precond_->refactor(jac_);
    for (size_t f = 0; f < nf; ++f) rhs_[f] = -residual_[f];
    if (baseline) std::fill(delta_.begin(), delta_.end(), 0.0);
    const bool inner_converged =
        mg_standalone_
            ? mg_->solve(rhs_, delta_, pcg_opts.rel_tolerance, pcg_opts.abs_tolerance).converged
            : linalg::pcg_solve(jac_, rhs_, delta_, pcg_opts).converged;
    if (!inner_converged) {
      throw std::runtime_error("solve_nonlinear_poisson: inner linear solve did not converge");
    }
    double max_update = 0.0;
    double max_raw = 0.0;
    for (size_t f = 0; f < nf; ++f) {
      const double d = std::clamp(delta_[f], -clamp, clamp);
      phi[f] += d;
      max_update = std::max(max_update, std::abs(d));
      max_raw = std::max(max_raw, std::abs(delta_[f]));
    }
    if (max_raw > clamp) {
      if (++saturated_steps >= 2 && clamp < 4.0) {
        clamp *= 2.0;
        saturated_steps = 0;
      }
    } else {
      saturated_steps = 0;
      clamp = opts.max_step_V;
    }
    result.iterations = it + 1;
    result.last_update_V = max_update;
    if (max_update < opts.tolerance_V) {
      result.converged = true;
      break;
    }
  }
  metrics::add(metrics::Counter::kPoissonNewtonIterations,
               static_cast<uint64_t>(result.iterations));
  metrics::observe(metrics::Histogram::kNewtonIterationsPerSolve,
                   static_cast<double>(result.iterations));
  result.phi_full = assembly_.expand(phi, electrode_voltages);
  return result;
}

}  // namespace gnrfet::poisson
