#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// Structured rectilinear grid for the 3D Poisson equation.
///
/// Units: lengths in nm, potential in volts, charge in units of |e|.
/// Node (i, j, k) sits at (x0 + i dx, y0 + j dy, z0 + k dz); the axes are
/// x = transport, y = ribbon width, z = gate stacking direction.
namespace gnrfet::poisson {

struct GridSpec {
  size_t nx = 0, ny = 0, nz = 0;
  double x0 = 0.0, y0 = 0.0, z0 = 0.0;
  double dx = 0.25, dy = 0.25, dz = 0.25;

  size_t num_nodes() const { return nx * ny * nz; }
  size_t index(size_t i, size_t j, size_t k) const { return (i * ny + j) * nz + k; }
  double x(size_t i) const { return x0 + static_cast<double>(i) * dx; }
  double y(size_t j) const { return y0 + static_cast<double>(j) * dy; }
  double z(size_t k) const { return z0 + static_cast<double>(k) * dz; }
  double x_max() const { return x(nx - 1); }
  double y_max() const { return y(ny - 1); }
  double z_max() const { return z(nz - 1); }
};

/// Axis-aligned box used to paint materials and electrodes.
struct Box {
  double x_lo = 0.0, x_hi = 0.0;
  double y_lo = 0.0, y_hi = 0.0;
  double z_lo = 0.0, z_hi = 0.0;
  bool contains(double x, double y, double z) const {
    return x >= x_lo && x <= x_hi && y >= y_lo && y <= y_hi && z >= z_lo && z <= z_hi;
  }
};

/// Node-level description of the electrostatic domain: relative
/// permittivity per node (face values use harmonic averaging) and
/// electrode membership (-1 for free nodes, otherwise an electrode id
/// whose voltage is supplied at solve time).
class Domain {
 public:
  explicit Domain(const GridSpec& spec);

  const GridSpec& spec() const { return spec_; }

  /// Paint relative permittivity inside a box (later paints override).
  void paint_permittivity(const Box& box, double eps_r);

  /// Declare an electrode (Dirichlet region); returns its id.
  int add_electrode(const Box& box);

  double eps_r(size_t node) const { return eps_r_[node]; }
  int electrode_at(size_t node) const { return electrode_[node]; }
  int num_electrodes() const { return num_electrodes_; }

  /// Deposit a point charge (units of e) with trilinear cloud-in-cell
  /// weights onto `rho` (size num_nodes; accumulated).
  void deposit_charge(double x, double y, double z, double charge_e,
                      std::vector<double>& rho) const;

  /// Trilinear interpolation of a node field at an arbitrary point.
  double interpolate(const std::vector<double>& field, double x, double y, double z) const;

  /// Precomputed trilinear cloud-in-cell stencil: the eight surrounding
  /// node indices and weights of one sample point. For fixed point sets
  /// (the ribbon sampling points inside a Gummel loop) build the stencils
  /// once and gather/deposit through them — same arithmetic as
  /// interpolate()/deposit_charge(), minus the per-call coordinate math.
  struct CicStencil {
    size_t node[8];
    double weight[8];
  };

  CicStencil stencil(double x, double y, double z) const;
  double gather(const std::vector<double>& field, const CicStencil& st) const;
  void deposit(const CicStencil& st, double charge_e, std::vector<double>& rho) const;

 private:
  GridSpec spec_;
  std::vector<double> eps_r_;
  std::vector<int> electrode_;
  int num_electrodes_ = 0;
};

}  // namespace gnrfet::poisson
