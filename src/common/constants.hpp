#pragma once

/// Physical constants and the unit conventions used throughout the library.
///
/// Device-physics layers (gnr, negf, poisson, device) work in
///   energy: eV, length: nm, potential: V, charge: units of |e|.
/// Circuit layers (model, circuit, cmos, explore) work in SI
///   (A, V, F, s, W, J).
/// The conversion boundary is src/device/tablegen + src/model, where
/// currents become amperes and charges become coulombs.
namespace gnrfet::constants {

/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;

/// Planck constant [J s].
inline constexpr double kPlanck = 6.62607015e-34;

/// Reduced Planck constant [J s].
inline constexpr double kHbar = 1.054571817e-34;

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

/// Vacuum permittivity [F/m].
inline constexpr double kEpsilon0 = 8.8541878128e-12;

/// Vacuum permittivity in device units [e / (V nm)]:
/// eps0 * 1e-9 m/nm / e. Used by the Poisson solver so that
/// div(eps grad phi) = -rho with rho in e/nm^3 and phi in volts.
inline constexpr double kEpsilon0_e_per_V_nm = kEpsilon0 * 1e-9 / kElementaryCharge;

/// Thermal energy at 300 K [eV].
inline constexpr double kThermalVoltage300K = kBoltzmann * 300.0 / kElementaryCharge;

/// Landauer current prefactor, spin-degenerate, for energies in eV:
/// I [A] = kCurrentPrefactor * Integral T(E) (f1 - f2) dE[eV].
/// This is 2e/h with the eV->J conversion folded in, i.e. 2e^2/h = 77.48 uS.
inline constexpr double kCurrentPrefactor =
    2.0 * kElementaryCharge * kElementaryCharge / kPlanck;

/// Carbon-carbon bond length in graphene [nm].
inline constexpr double kCarbonBond_nm = 0.142;

/// pz-orbital nearest-neighbour hopping energy [eV] (paper value).
inline constexpr double kHoppingT = 2.7;

/// Edge-bond relaxation factor from Son-Cohen-Louie ab initio fits:
/// edge dimer bonds are strengthened to t*(1 + kEdgeRelaxation).
inline constexpr double kEdgeRelaxation = 0.12;

/// Relative permittivity of SiO2 (paper value).
inline constexpr double kEpsSiO2 = 3.9;

/// Fermi-Dirac occupation for energy e relative to chemical potential mu,
/// both in eV, at thermal energy kT (eV).
double fermi(double e_minus_mu_eV, double kT_eV = kThermalVoltage300K);

/// d f / d E (negative), used by linearized charge models.
double fermi_derivative(double e_minus_mu_eV, double kT_eV = kThermalVoltage300K);

}  // namespace gnrfet::constants
