#pragma once

#include <string>

/// Resolution of the on-disk cache used for generated device tables.
///
/// Device-table generation (self-consistent NEGF + Poisson over a bias grid)
/// is by far the most expensive step of the pipeline; circuit-level benches
/// re-use tables across runs through this cache. The location is, in order:
///   1. $GNRFET_CACHE_DIR if set,
///   2. <repo>/data/cache when the source tree is detectable,
///   3. ./data/cache under the current working directory.
namespace gnrfet::cache {

/// Directory for cached artifacts; created on first use.
std::string directory();

/// Full path for a cache entry: <dir>/<name>-<hash>.csv where <hash> keys
/// the configuration payload.
std::string path_for(const std::string& name, const std::string& config_payload);

/// True if the entry exists on disk.
bool exists(const std::string& path);

}  // namespace gnrfet::cache
