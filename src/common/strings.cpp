#include "common/strings.hpp"

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace gnrfet::strings {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), static_cast<size_t>(n) + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string hash_hex(const std::string& payload) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : payload) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace gnrfet::strings
