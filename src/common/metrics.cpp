#include "common/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/annotations.hpp"

namespace gnrfet::metrics {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-thread recording block. Only the owning thread writes; snapshot()
/// reads concurrently with relaxed loads, so every slot is atomic.
struct alignas(64) Block {
  std::array<std::atomic<uint64_t>, kNumCounters> counters{};

  struct Hist {
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{kInf};
    std::atomic<double> max{-kInf};
  };
  std::array<Hist, kNumHistograms> hists{};
};

struct Registry {
  common::Mutex mu;
  std::vector<std::shared_ptr<Block>> blocks GNRFET_GUARDED_BY(mu);
};

Registry& registry() {
  // Intentionally immortal (never destroyed): the trace exporter snapshots
  // the metrics from an at-exit hook in another translation unit, and
  // cross-TU static destruction order is unspecified. Leaking one registry
  // keeps the blocks valid for any late reader.
  static Registry* r = new Registry;
  return *r;
}

/// The calling thread's block, registered on first use. The shared_ptr is
/// held both thread-locally and by the registry, so a thread may exit
/// while its totals stay mergeable.
Block& local_block() {
  thread_local std::shared_ptr<Block> block = [] {
    auto b = std::make_shared<Block>();
    Registry& r = registry();
    common::MutexLock lk(r.mu);
    r.blocks.push_back(b);
    return b;
  }();
  return *block;
}

size_t bucket_of(double value) {
  if (!(value >= 1.0)) return 0;  // also catches NaN and negatives
  const size_t b = 1 + static_cast<size_t>(std::floor(std::log2(value)));
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

const char* kCounterNames[kNumCounters] = {
    "gummel_iterations", "negf_energy_points",  "rgf_solves",
    "rgf_batch_solves",
    "negf_energy_points_saved",
    "poisson_newton_iterations", "pcg_iterations", "pcg_precond_setups",
    "mg_vcycles",
    "table_cache_hits",  "table_cache_misses",
    "table_service_hits", "table_service_misses", "table_service_evictions",
    "table_service_coalesced",
    "table_shard_dispatches", "table_shard_retries",
    "mna_factorizations",
    "transient_steps",
};

const char* kHistogramNames[kNumHistograms] = {
    "gummel_iterations_per_bias",  "newton_iterations_per_solve",
    "pcg_iterations_per_solve",    "pcg_iterations_jacobi",
    "pcg_iterations_ssor",         "pcg_iterations_ic0",
    "pcg_iterations_mg",
    "energy_points_per_transport", "adaptive_refinement_depth",
    "rgf_batch_width",
};

}  // namespace

const char* counter_name(Counter c) { return kCounterNames[static_cast<size_t>(c)]; }

const char* histogram_name(Histogram h) { return kHistogramNames[static_cast<size_t>(h)]; }

double bucket_lower_bound(size_t bucket) {
  return bucket == 0 ? 0.0 : std::exp2(static_cast<double>(bucket - 1));
}

void add(Counter c, uint64_t delta) {
  local_block().counters[static_cast<size_t>(c)].fetch_add(delta, std::memory_order_relaxed);
}

void observe(Histogram h, double value) {
  Block::Hist& hist = local_block().hists[static_cast<size_t>(h)];
  hist.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  hist.count.fetch_add(1, std::memory_order_relaxed);
  // Owner-only writes: plain load-modify-store with relaxed ordering is
  // race-free against the owning thread and readable by snapshot().
  hist.sum.store(hist.sum.load(std::memory_order_relaxed) + value, std::memory_order_relaxed);
  if (value < hist.min.load(std::memory_order_relaxed)) {
    hist.min.store(value, std::memory_order_relaxed);
  }
  if (value > hist.max.load(std::memory_order_relaxed)) {
    hist.max.store(value, std::memory_order_relaxed);
  }
}

Snapshot snapshot() {
  Snapshot s;
  std::array<double, kNumHistograms> mins;
  std::array<double, kNumHistograms> maxs;
  mins.fill(kInf);
  maxs.fill(-kInf);
  Registry& r = registry();
  common::MutexLock lk(r.mu);
  for (const auto& block : r.blocks) {
    for (size_t c = 0; c < kNumCounters; ++c) {
      s.counters[c] += block->counters[c].load(std::memory_order_relaxed);
    }
    for (size_t h = 0; h < kNumHistograms; ++h) {
      const Block::Hist& src = block->hists[h];
      HistogramData& dst = s.histograms[h];
      for (size_t b = 0; b < kHistogramBuckets; ++b) {
        dst.buckets[b] += src.buckets[b].load(std::memory_order_relaxed);
      }
      dst.count += src.count.load(std::memory_order_relaxed);
      dst.sum += src.sum.load(std::memory_order_relaxed);
      mins[h] = std::min(mins[h], src.min.load(std::memory_order_relaxed));
      maxs[h] = std::max(maxs[h], src.max.load(std::memory_order_relaxed));
    }
  }
  for (size_t h = 0; h < kNumHistograms; ++h) {
    if (s.histograms[h].count > 0) {
      s.histograms[h].min = mins[h];
      s.histograms[h].max = maxs[h];
    }
  }
  return s;
}

void reset() {
  Registry& r = registry();
  common::MutexLock lk(r.mu);
  for (const auto& block : r.blocks) {
    for (auto& c : block->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : block->hists) {
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0.0, std::memory_order_relaxed);
      h.min.store(kInf, std::memory_order_relaxed);
      h.max.store(-kInf, std::memory_order_relaxed);
    }
  }
}

}  // namespace gnrfet::metrics
