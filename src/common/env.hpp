#pragma once

#include <string>

/// Checked environment-variable access. Direct std::getenv returns a raw
/// pointer that is easy to dereference unchecked and easy to parse
/// inconsistently; these helpers centralize the null/empty/malformed
/// handling. The repo lint (tools/gnrfet_lint.cpp) bans std::getenv
/// outside src/common/ for that reason.
namespace gnrfet::common {

/// Value of `name`, or `fallback` when unset or empty.
std::string env_or(const char* name, const std::string& fallback);

/// True when `name` is set to a non-empty value.
bool env_set(const char* name);

/// Positive-integer value of `name`; `fallback` when unset, empty, or not
/// parseable as an integer >= 1.
int env_int(const char* name, int fallback);

}  // namespace gnrfet::common
