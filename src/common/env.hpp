#pragma once

#include <stdexcept>
#include <string>

/// Checked environment-variable access. Direct std::getenv returns a raw
/// pointer that is easy to dereference unchecked and easy to parse
/// inconsistently; these helpers centralize the null/empty/malformed
/// handling. The repo lint (tools/gnrfet_lint.cpp) bans std::getenv
/// outside src/common/ for that reason.
namespace gnrfet::common {

/// Value of `name`, or `fallback` when unset or empty.
std::string env_or(const char* name, const std::string& fallback);

/// True when `name` is set to a non-empty value.
bool env_set(const char* name);

/// Positive-integer value of `name`; `fallback` when unset, empty, or not
/// parseable as an integer >= 1. Lenient by design (bench knobs); config
/// that changes results should use env::get_positive_int instead so typos
/// fail loudly.
int env_int(const char* name, int fallback);

/// Remove `name` from this process's environment (wraps unsetenv so code
/// outside src/common/ never touches <cstdlib> environment calls). Worker
/// children use this to drop inherited per-process settings — e.g. a
/// GNRFET_TRACE path that belongs to the parent.
void env_clear(const char* name);

namespace env {

/// A set-but-unusable environment variable. Thrown instead of silently
/// falling back: a malformed GNRFET_THREADS=1O would otherwise run the
/// whole job single-threaded with no hint why.
class EnvError : public std::runtime_error {
 public:
  EnvError(std::string name, std::string value, const std::string& reason);

  const std::string& name() const { return name_; }
  const std::string& value() const { return value_; }

 private:
  std::string name_;
  std::string value_;
};

/// Strictly parsed positive integer: unset or empty yields `fallback`;
/// anything else must be all decimal digits, fit in int, and be >= 1, or
/// an EnvError is thrown. Shared by GNRFET_THREADS, GNRFET_TABLE_LRU_MB,
/// and GNRFET_TABLE_WORKERS so the three knobs reject garbage identically.
int get_positive_int(const char* name, int fallback);

}  // namespace env

}  // namespace gnrfet::common
