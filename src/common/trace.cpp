#include "common/trace.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/annotations.hpp"
#include "common/env.hpp"
#include "common/metrics.hpp"

namespace gnrfet::trace {

namespace {

/// One recorded span. `name` points at a string literal for Span-recorded
/// events; PhaseTimer-style dynamic names live in `dyn_name` instead.
struct Event {
  const char* cat = nullptr;
  const char* name = nullptr;
  std::string dyn_name;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

struct Buffer {
  uint32_t tid = 0;
  std::vector<Event> events;
};

struct Registry {
  Registry()
      : epoch(std::chrono::steady_clock::now()),
        path(common::env_or("GNRFET_TRACE", "")) {
    recording.store(!path.empty(), std::memory_order_relaxed);
  }

  std::chrono::steady_clock::time_point epoch;
  common::Mutex mu;
  std::vector<std::shared_ptr<Buffer>> buffers GNRFET_GUARDED_BY(mu);
  std::string path GNRFET_GUARDED_BY(mu);
  std::atomic<bool> recording{false};
  uint32_t next_tid GNRFET_GUARDED_BY(mu) = 0;
};

Registry& registry() {
  // Intentionally immortal (never destroyed): the at-exit flusher and
  // late-exiting threads may touch the registry during static destruction,
  // whose cross-TU order is unspecified.
  static Registry* r = new Registry;
  return *r;
}

/// Flushes at process exit. Ordered after the registry singleton so its
/// destructor runs first, while the registry is still alive.
struct AtExitFlusher {
  ~AtExitFlusher() { flush(); }
};

void ensure_exit_flush() {
  static AtExitFlusher flusher;
  (void)flusher;
}

/// The calling thread's event buffer, registered once under the registry
/// mutex. Shared ownership keeps a buffer mergeable after its thread
/// exits. The hot path (Span destructor push) touches no lock.
Buffer& local_buffer() {
  thread_local std::shared_ptr<Buffer> buffer = [] {
    auto b = std::make_shared<Buffer>();
    Registry& r = registry();
    common::MutexLock lk(r.mu);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

void escape_json(const std::string& s, std::ostream& os) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

bool enabled() { return registry().recording.load(std::memory_order_relaxed); }

std::string output_path() {
  Registry& r = registry();
  common::MutexLock lk(r.mu);
  return r.path;
}

void set_output_path(const std::string& path) {
  ensure_exit_flush();
  Registry& r = registry();
  common::MutexLock lk(r.mu);
  r.path = path;
  r.recording.store(!path.empty(), std::memory_order_relaxed);
}

double now_us() {
  const auto dt = std::chrono::steady_clock::now() - registry().epoch;
  return std::chrono::duration<double, std::micro>(dt).count();
}

Span::Span(const char* category, const char* name)
    : category_(category), name_(name), begin_us_(0.0), active_(enabled()) {
  if (active_) {
    ensure_exit_flush();
    begin_us_ = now_us();
  }
}

Span::~Span() {
  if (!active_) return;
  const double end_us = now_us();
  local_buffer().events.push_back(Event{category_, name_, {}, begin_us_, end_us - begin_us_});
}

void emit_complete(const char* category, const std::string& name, double begin_us,
                   double dur_us) {
  if (!enabled()) return;
  ensure_exit_flush();
  local_buffer().events.push_back(Event{category, nullptr, name, begin_us, dur_us});
}

size_t event_count() {
  Registry& r = registry();
  common::MutexLock lk(r.mu);
  size_t n = 0;
  for (const auto& b : r.buffers) n += b->events.size();
  return n;
}

std::vector<EventRecord> snapshot_events() {
  Registry& r = registry();
  common::MutexLock lk(r.mu);
  std::vector<EventRecord> out;
  for (const auto& b : r.buffers) {
    for (const Event& e : b->events) {
      EventRecord rec;
      rec.category = e.cat;
      rec.name = e.name ? e.name : e.dyn_name;
      rec.ts_us = e.ts_us;
      rec.dur_us = e.dur_us;
      rec.tid = b->tid;
      out.push_back(std::move(rec));
    }
  }
  return out;
}

void write_json(std::ostream& os) {
  const metrics::Snapshot snap = metrics::snapshot();
  Registry& r = registry();
  common::MutexLock lk(r.mu);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& b : r.buffers) {
    for (const Event& e : b->events) {
      if (!first) os << ",";
      first = false;
      os << "\n{\"name\":\"";
      escape_json(e.name ? std::string(e.name) : e.dyn_name, os);
      os << "\",\"cat\":\"";
      escape_json(e.cat, os);
      os << "\",\"ph\":\"X\",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us
         << ",\"pid\":1,\"tid\":" << b->tid << "}";
    }
  }
  os << "\n],\n\"gnrfetCounters\":{";
  for (size_t c = 0; c < metrics::kNumCounters; ++c) {
    if (c) os << ",";
    os << "\n\"" << metrics::counter_name(static_cast<metrics::Counter>(c))
       << "\":" << snap.counters[c];
  }
  os << "\n},\n\"gnrfetHistograms\":{";
  for (size_t h = 0; h < metrics::kNumHistograms; ++h) {
    const metrics::HistogramData& hd = snap.histograms[h];
    if (h) os << ",";
    os << "\n\"" << metrics::histogram_name(static_cast<metrics::Histogram>(h))
       << "\":{\"count\":" << hd.count << ",\"sum\":" << hd.sum << ",\"min\":" << hd.min
       << ",\"max\":" << hd.max << ",\"buckets\":[";
    bool first_bucket = true;
    for (size_t b = 0; b < metrics::kHistogramBuckets; ++b) {
      if (hd.buckets[b] == 0) continue;
      if (!first_bucket) os << ",";
      first_bucket = false;
      os << "[" << metrics::bucket_lower_bound(b) << "," << hd.buckets[b] << "]";
    }
    os << "]}";
  }
  os << "\n}\n}\n";
}

std::string to_json() {
  std::ostringstream os;
  os.precision(12);
  write_json(os);
  return os.str();
}

void flush() {
  std::string path;
  {
    Registry& r = registry();
    common::MutexLock lk(r.mu);
    path = r.path;
    size_t n = 0;
    for (const auto& b : r.buffers) n += b->events.size();
    if (path.empty() || n == 0) return;
  }
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  std::ofstream out(path);
  if (out) {
    out.precision(12);
    write_json(out);
  }
  clear();
}

void clear() {
  Registry& r = registry();
  common::MutexLock lk(r.mu);
  for (const auto& b : r.buffers) b->events.clear();
}

}  // namespace gnrfet::trace
