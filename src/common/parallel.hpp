#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

/// Deterministic thread-pool parallelism for the embarrassingly parallel
/// loops of the pipeline: the NEGF energy grid, the bias-table columns,
/// Monte Carlo samples, and the (VT, VDD) exploration plane.
///
/// Determinism contract: work is split into fixed chunks whose layout
/// depends only on the problem size and grain — never on the thread count
/// or on scheduling. Reductions combine per-chunk partials in ascending
/// chunk order on the calling thread, so every result is bit-identical
/// whether it ran on 1 thread or 64.
///
/// Thread count comes from GNRFET_THREADS (default: hardware concurrency;
/// 1 = no worker threads, every region runs inline on the caller). Nested
/// regions always run inline — whether entered from a pool worker or from
/// the top-level caller while it executes its share of an enclosing
/// region — which keeps warm-start chains and the pool itself
/// deadlock-free. Only one top-level region is live at a time: if a second
/// thread opens a region while another is running, the newcomer executes
/// its whole region inline on its own thread (correct, just unaccelerated).
namespace gnrfet::par {

/// Resolved thread count (>= 1): GNRFET_THREADS, or hardware concurrency.
int thread_count();

/// Override the thread count at runtime (tests; growing the pool spawns
/// workers on demand). Must not be called from inside a parallel region.
void set_thread_count(int n);

/// True while the calling thread is executing chunks of a region — as a
/// pool worker or as the top-level caller helping its own region.
bool in_parallel_region();

/// Permanently pin the calling thread to inline execution: every parallel
/// region it opens runs serially on it and never touches the process-wide
/// pool. This is mandatory in fork-entry worker children
/// (common/subprocess): the pool's threads did not survive the fork, and
/// its mutex may have been held by a parent thread at fork time, so any
/// pool access in the child could deadlock. Results are unchanged — the
/// chunk layout is thread-count invariant by contract.
void pin_inline();

/// Number of fixed chunks covering [0, n) at the given grain. The layout
/// is a pure function of (n, grain): chunk c covers
/// [c * grain, min(n, (c + 1) * grain)).
size_t num_chunks(size_t n, size_t grain);

/// Run body(chunk_index, begin, end) for every chunk of [0, n); blocks
/// until all chunks completed. The first exception thrown by any chunk is
/// rethrown on the caller after the region drains.
void parallel_for_chunks(size_t n, size_t grain,
                         const std::function<void(size_t, size_t, size_t)>& body);

/// Run body(i) for every i in [0, n) (grain picked automatically).
void parallel_for(size_t n, const std::function<void(size_t)>& body);

/// Map every chunk to a partial result in parallel, then fold the partials
/// into `init` in ascending chunk order: bit-identical for any thread
/// count. `map(begin, end)` returns a partial; `combine(acc, partial)`
/// folds it in.
template <typename T, typename Map, typename Combine>
T parallel_reduce_ordered(size_t n, size_t grain, T init, Map&& map, Combine&& combine) {
  const size_t chunks = num_chunks(n, grain);
  std::vector<T> partials(chunks);
  parallel_for_chunks(n, grain, [&](size_t chunk, size_t begin, size_t end) {
    partials[chunk] = map(begin, end);
  });
  for (size_t c = 0; c < chunks; ++c) combine(init, std::move(partials[c]));
  return init;
}

}  // namespace gnrfet::par
