#include "common/subprocess.hpp"

#include <dirent.h>
#include <errno.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <stdexcept>

#include "common/contracts.hpp"

namespace gnrfet::common::subprocess {

namespace {

constexpr uint32_t kFrameMagic = 0x474e5246;  // "GNRF"

/// Upper bound on one frame's payload. A device-table shard request tops
/// out in the tens of megabytes even for absurd grids; anything larger is
/// a desynchronized stream, and failing here beats a bad_alloc later.
constexpr uint64_t kMaxFramePayload = uint64_t{1} << 32;

/// write(2)/send(2) the whole buffer, restarting on EINTR and short
/// writes. MSG_NOSIGNAL keeps a dead peer an errno, not a SIGPIPE; the
/// ENOTSOCK fallback covers plain pipes (tests exercise both).
bool write_all(int fd, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (n > 0) {
    ssize_t wrote = ::send(fd, p, n, MSG_NOSIGNAL);
    if (wrote < 0 && errno == ENOTSOCK) wrote = ::write(fd, p, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw std::runtime_error(std::string("subprocess: frame write failed: ") +
                               std::strerror(errno));
    }
    p += wrote;
    n -= static_cast<size_t>(wrote);
  }
  return true;
}

/// Read exactly `n` bytes. Returns 1 on success, 0 on EOF before the first
/// byte (clean close), -1 on EOF mid-buffer (torn frame).
int read_all(int fd, void* data, size_t n) {
  uint8_t* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return got == 0 ? 0 : -1;
      throw std::runtime_error(std::string("subprocess: frame read failed: ") +
                               std::strerror(errno));
    }
    if (r == 0) return got == 0 ? 0 : -1;
    got += static_cast<size_t>(r);
  }
  return 1;
}

void close_quiet(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

[[noreturn]] void child_exit(int status) {
  // _Exit: the child is a copy of the parent's address space and must not
  // run the parent's at-exit hooks (trace flush, static destructors) —
  // doing so would, e.g., clobber the parent's GNRFET_TRACE file.
  std::_Exit(status);
}

/// Close every inherited fd except stdio and the child's own channel pair.
/// Without this sweep, worker B holds a copy of worker A's request-channel
/// write end, so A never sees EOF after the parent's close_request() — the
/// shutdown path deadlocks — and a crashed worker's channels are kept
/// artificially alive by its siblings.
void close_other_fds(int keep_a, int keep_b) {
  DIR* dir = ::opendir("/proc/self/fd");
  if (!dir) return;  // exotic environment; CLOEXEC still covers exec workers
  const int dir_fd = ::dirfd(dir);
  std::vector<int> doomed;
  while (struct dirent* e = ::readdir(dir)) {
    if (e->d_name[0] < '0' || e->d_name[0] > '9') continue;
    const int fd = std::atoi(e->d_name);
    if (fd > 2 && fd != keep_a && fd != keep_b && fd != dir_fd) doomed.push_back(fd);
  }
  ::closedir(dir);
  for (const int fd : doomed) ::close(fd);
}

}  // namespace

void FrameWriter::u32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void FrameWriter::u64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void FrameWriter::f64(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void FrameWriter::vec_f64(const std::vector<double>& v) {
  u64(v.size());
  for (const double x : v) f64(x);
}

void FrameWriter::str(const std::string& s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void FrameReader::need(size_t n) const {
  if (buf_.size() - pos_ < n) {
    throw std::runtime_error("subprocess: frame underrun (corrupt or truncated payload)");
  }
}

uint8_t FrameReader::u8() {
  need(1);
  return buf_[pos_++];
}

uint32_t FrameReader::u32() {
  need(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(buf_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

uint64_t FrameReader::u64() {
  need(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buf_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double FrameReader::f64() {
  const uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::vector<double> FrameReader::vec_f64() {
  const uint64_t n = u64();
  need(n);      // cheap pre-bound: keeps n*8 below overflow before the real check
  need(n * 8);  // need() rejects before any allocation can overflow
  std::vector<double> v(n);
  for (uint64_t i = 0; i < n; ++i) v[i] = f64();
  return v;
}

std::string FrameReader::str() {
  const uint64_t n = u64();
  need(n);
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
  pos_ += n;
  return s;
}

bool write_frame(int fd, const Frame& frame) {
  uint8_t header[12];
  const uint32_t magic = kFrameMagic;
  const uint64_t len = frame.size();
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &len, 8);
  if (!write_all(fd, header, sizeof header)) return false;
  if (frame.empty()) return true;
  return write_all(fd, frame.data(), frame.size());
}

bool read_frame(int fd, Frame& frame) {
  uint8_t header[12];
  const int got = read_all(fd, header, sizeof header);
  if (got == 0) return false;  // clean EOF between frames
  if (got < 0) throw std::runtime_error("subprocess: torn frame header (peer died mid-write)");
  uint32_t magic = 0;
  uint64_t len = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&len, header + 4, 8);
  if (magic != kFrameMagic) {
    throw std::runtime_error("subprocess: bad frame magic (stream desynchronized)");
  }
  if (len > kMaxFramePayload) {
    throw std::runtime_error("subprocess: frame length " + std::to_string(len) +
                             " exceeds protocol bound (stream desynchronized)");
  }
  frame.assign(len, 0);
  if (len > 0 && read_all(fd, frame.data(), frame.size()) != 1) {
    throw std::runtime_error("subprocess: torn frame payload (peer died mid-write)");
  }
  return true;
}

Worker::Worker(Worker&& other) noexcept
    : pid_(other.pid_),
      to_child_(other.to_child_),
      from_child_(other.from_child_),
      reaped_(other.reaped_),
      status_(other.status_) {
  other.pid_ = -1;
  other.to_child_ = -1;
  other.from_child_ = -1;
  other.reaped_ = false;
}

Worker& Worker::operator=(Worker&& other) noexcept {
  if (this != &other) {
    reset();
    pid_ = other.pid_;
    to_child_ = other.to_child_;
    from_child_ = other.from_child_;
    reaped_ = other.reaped_;
    status_ = other.status_;
    other.pid_ = -1;
    other.to_child_ = -1;
    other.from_child_ = -1;
    other.reaped_ = false;
  }
  return *this;
}

Worker::~Worker() { reset(); }

void Worker::reset() {
  close_quiet(to_child_);
  close_quiet(from_child_);
  if (pid_ > 0 && !reaped_) {
    // Closing the request channel above asks the worker loop to exit; the
    // SIGKILL covers wedged or mid-computation children so the destructor
    // can never hang on wait().
    ::kill(pid_, SIGKILL);
    int status = 0;
    while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
    }
  }
  pid_ = -1;
  reaped_ = false;
  status_ = 0;
}

Worker Worker::spawn(const ChildMain& child_main) {
  GNRFET_REQUIRE("common/subprocess", "worker-entry-callable", static_cast<bool>(child_main),
                 "spawn() requires a non-empty child main");
  int request[2];   // [0] child reads, [1] parent writes
  int response[2];  // [0] parent reads, [1] child writes
  // SOCK_CLOEXEC: an exec-mode worker must not inherit its siblings'
  // channels across execv (its own pair survives via dup2 to stdio, which
  // clears the flag on the copies).
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, request) != 0) {
    throw std::runtime_error(std::string("subprocess: socketpair failed: ") +
                             std::strerror(errno));
  }
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, response) != 0) {
    const int saved = errno;
    ::close(request[0]);
    ::close(request[1]);
    throw std::runtime_error(std::string("subprocess: socketpair failed: ") +
                             std::strerror(saved));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    const int saved = errno;
    ::close(request[0]);
    ::close(request[1]);
    ::close(response[0]);
    ::close(response[1]);
    throw std::runtime_error(std::string("subprocess: fork failed: ") + std::strerror(saved));
  }
  if (pid == 0) {
    ::close(request[1]);
    ::close(response[0]);
    close_other_fds(request[0], response[1]);
    int status = 1;
    try {
      status = child_main(request[0], response[1]);
    } catch (...) {
      status = 2;  // the protocol reports errors in-band; this is a backstop
    }
    child_exit(status);
  }
  ::close(request[0]);
  ::close(response[1]);
  Worker w;
  w.pid_ = pid;
  w.to_child_ = request[1];
  w.from_child_ = response[0];
  return w;
}

Worker Worker::spawn_exec(const std::vector<std::string>& argv) {
  GNRFET_REQUIRE("common/subprocess", "worker-argv-nonempty", !argv.empty(),
                 "spawn_exec() requires a program to execute");
  return spawn([&argv](int request_fd, int response_fd) {
    // Still inside fork(): wire the channels to stdin/stdout and exec.
    if (::dup2(request_fd, STDIN_FILENO) < 0 || ::dup2(response_fd, STDOUT_FILENO) < 0) {
      return 127;
    }
    ::close(request_fd);
    ::close(response_fd);
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& a : argv) args.push_back(const_cast<char*>(a.c_str()));
    args.push_back(nullptr);
    ::execv(args[0], args.data());
    return 127;  // exec failed; the parent sees immediate EOF
  });
}

bool Worker::send(const Frame& frame) {
  GNRFET_REQUIRE("common/subprocess", "worker-spawned", valid(), "send() on an empty Worker");
  return write_frame(to_child_, frame);
}

bool Worker::recv(Frame& frame) {
  GNRFET_REQUIRE("common/subprocess", "worker-spawned", valid(), "recv() on an empty Worker");
  return read_frame(from_child_, frame);
}

bool Worker::running() {
  if (pid_ <= 0 || reaped_) return false;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == pid_) {
    reaped_ = true;
    status_ = status;
    return false;
  }
  return r == 0;
}

void Worker::kill_now() {
  if (pid_ > 0 && !reaped_) ::kill(pid_, SIGKILL);
}

void Worker::close_request() { close_quiet(to_child_); }

int Worker::wait() {
  if (pid_ <= 0) return 0;
  if (!reaped_) {
    int status = 0;
    while (::waitpid(pid_, &status, 0) < 0) {
      if (errno != EINTR) return 0;
    }
    reaped_ = true;
    status_ = status;
  }
  return status_;
}

WorkerPool::WorkerPool(int size, Spawner spawner) : spawner_(std::move(spawner)) {
  GNRFET_REQUIRE("common/subprocess", "pool-size-positive", size >= 1,
                 "worker pool needs at least one worker, got " + std::to_string(size));
  GNRFET_REQUIRE("common/subprocess", "pool-spawner-callable", static_cast<bool>(spawner_),
                 "worker pool needs a spawner");
  workers_.resize(static_cast<size_t>(size));
}

void WorkerPool::ensure_full() {
  for (Worker& w : workers_) {
    if (!w.valid() || !w.running()) w = spawner_();
  }
}

void WorkerPool::respawn(size_t i) {
  GNRFET_REQUIRE("common/subprocess", "pool-slot-in-range", i < workers_.size(),
                 "respawn(" + std::to_string(i) + ") on a pool of " +
                     std::to_string(workers_.size()));
  workers_[i] = spawner_();
}

}  // namespace gnrfet::common::subprocess
