#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

/// Named counters and histograms for the solver stack.
///
/// Counters answer "how much work did the run do" (RGF solves, Gummel
/// iterations, PCG iterations, cache hits); histograms answer "how is
/// that work distributed per call" (Gummel iterations per bias point,
/// Newton iterations per Poisson solve). Both are recorded into
/// per-thread blocks — an increment is one relaxed atomic add on a block
/// only its own thread writes, so the hot path takes no lock and never
/// contends — and merged on snapshot(). The trace exporter
/// (common/trace.hpp) embeds the snapshot in the emitted JSON, and
/// tools/gnrfet_trace_report prints it.
///
/// The set of names is a fixed enum on purpose: an increment compiles to
/// an indexed add with no string hashing, and the lint/tidy gates see
/// every name at compile time.
namespace gnrfet::metrics {

/// Monotone event counters, one slot per thread block.
enum class Counter {
  kGummelIterations = 0,      ///< device: self-consistent outer iterations
  kNegfEnergyPoints,          ///< negf: energy grid points laid out
  kRgfSolves,                 ///< negf: individual RGF solves (per energy, per mode)
  kRgfBatchSolves,            ///< negf: batched RGF kernel invocations (SoA energy batches)
  kNegfEnergyPointsSaved,     ///< negf: adaptive-grid evaluations avoided vs the uniform grid
  kPoissonNewtonIterations,   ///< poisson: damped-Newton iterations
  kPcgIterations,             ///< linalg: PCG iterations
  kPcgPrecondSetups,          ///< linalg: preconditioner factor/refactor passes
  kMgVcycles,                 ///< poisson: multigrid V-cycles (apply + standalone)
  kTableCacheHits,            ///< device: bias tables served from disk cache
  kTableCacheMisses,          ///< device: bias tables generated cold
  kTableServiceHits,          ///< service: queries answered from the in-memory LRU
  kTableServiceMisses,        ///< service: queries that went cold (disk load or generation)
  kTableServiceEvictions,     ///< service: LRU entries dropped under capacity pressure
  kTableServiceCoalesced,     ///< service: cold queries that joined another caller's generation
  kTableShardDispatches,      ///< service: table-column shards sent to worker processes
  kTableShardRetries,         ///< service: shards re-dispatched after a worker died mid-shard
  kMnaFactorizations,         ///< circuit: dense LU factorizations of the MNA Jacobian
  kTransientSteps,            ///< circuit: accepted transient time steps
  kCount
};
constexpr size_t kNumCounters = static_cast<size_t>(Counter::kCount);

/// Stable snake_case name of a counter (JSON keys, report rows).
const char* counter_name(Counter c);

/// Add `delta` to counter `c` on the calling thread's block.
void add(Counter c, uint64_t delta = 1);

/// Per-call distributions, log2-bucketed.
enum class Histogram {
  kGummelIterationsPerBias = 0,  ///< device: outer iterations per solve()
  kNewtonIterationsPerSolve,     ///< poisson: Newton iterations per nonlinear solve
  kPcgIterationsPerSolve,        ///< linalg: PCG iterations per solve (all preconditioners)
  kPcgIterationsJacobi,          ///< linalg: PCG iterations per Jacobi-preconditioned solve
  kPcgIterationsSsor,            ///< linalg: PCG iterations per SSOR-preconditioned solve
  kPcgIterationsIc0,             ///< linalg: PCG iterations per IC(0)-preconditioned solve
  kPcgIterationsMg,              ///< linalg: PCG iterations per multigrid-preconditioned solve
  kEnergyPointsPerTransport,     ///< negf: energy grid size per transport solve
  kAdaptiveRefinementDepth,      ///< negf: panel depth at retirement in adaptive integration
  kRgfBatchWidth,                ///< negf: energies per batched RGF kernel call
  kCount
};
constexpr size_t kNumHistograms = static_cast<size_t>(Histogram::kCount);

/// Stable snake_case name of a histogram.
const char* histogram_name(Histogram h);

/// Number of log2 buckets: bucket 0 holds values < 1, bucket b >= 1 holds
/// values in [2^(b-1), 2^b), the last bucket catches everything above.
constexpr size_t kHistogramBuckets = 24;

/// Lower bound of a bucket (0 for bucket 0, else 2^(bucket-1)).
double bucket_lower_bound(size_t bucket);

/// Record one observation of `value` (negative values clamp to bucket 0).
void observe(Histogram h, double value);

/// Merged view of one histogram.
struct HistogramData {
  std::array<uint64_t, kHistogramBuckets> buckets{};
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;  ///< 0 when count == 0
};

/// Merged totals across every thread that recorded anything.
struct Snapshot {
  std::array<uint64_t, kNumCounters> counters{};
  std::array<HistogramData, kNumHistograms> histograms{};
};

/// Merge all per-thread blocks. Safe to call concurrently with recording
/// (relaxed reads), exact once recording threads have quiesced.
Snapshot snapshot();

/// Zero every registered block (tests). Call only while no recording
/// region is concurrently active.
void reset();

}  // namespace gnrfet::metrics
