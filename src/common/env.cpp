#include "common/env.hpp"

#include <cstdlib>
#include <limits>

namespace gnrfet::common {

std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::string(v) : fallback;
}

bool env_set(const char* name) {
  const char* v = std::getenv(name);
  return v && *v;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  const int parsed = std::atoi(v);
  return parsed >= 1 ? parsed : fallback;
}

void env_clear(const char* name) { ::unsetenv(name); }

namespace env {

EnvError::EnvError(std::string name, std::string value, const std::string& reason)
    : std::runtime_error(std::string(name) + "=\"" + value + "\": " + reason),
      name_(std::move(name)),
      value_(std::move(value)) {}

int get_positive_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  const std::string value(v);
  long parsed = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') {
      throw EnvError(name, value, "expected a positive decimal integer");
    }
    parsed = parsed * 10 + (c - '0');
    if (parsed > std::numeric_limits<int>::max()) {
      throw EnvError(name, value, "value does not fit in int");
    }
  }
  if (parsed < 1) throw EnvError(name, value, "value must be >= 1");
  return static_cast<int>(parsed);
}

}  // namespace env

}  // namespace gnrfet::common
