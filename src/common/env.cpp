#include "common/env.hpp"

#include <cstdlib>

namespace gnrfet::common {

std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::string(v) : fallback;
}

bool env_set(const char* name) {
  const char* v = std::getenv(name);
  return v && *v;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  const int parsed = std::atoi(v);
  return parsed >= 1 ? parsed : fallback;
}

}  // namespace gnrfet::common
