#include "common/cache.hpp"

#include <filesystem>

#include "common/env.hpp"
#include "common/strings.hpp"

namespace gnrfet::cache {

std::string directory() {
  namespace fs = std::filesystem;
  if (const std::string env = common::env_or("GNRFET_CACHE_DIR", ""); !env.empty()) {
    fs::create_directories(env);
    return env;
  }
  // Walk up from the current directory looking for the repository root
  // (identified by DESIGN.md); fall back to ./data/cache.
  fs::path dir = fs::current_path();
  for (int depth = 0; depth < 6; ++depth) {
    if (fs::exists(dir / "DESIGN.md") && fs::exists(dir / "src")) {
      const fs::path cache = dir / "data" / "cache";
      fs::create_directories(cache);
      return cache.string();
    }
    if (!dir.has_parent_path() || dir.parent_path() == dir) break;
    dir = dir.parent_path();
  }
  const fs::path cache = fs::current_path() / "data" / "cache";
  fs::create_directories(cache);
  return cache.string();
}

std::string path_for(const std::string& name, const std::string& config_payload) {
  return directory() + "/" + name + "-" + strings::hash_hex(config_payload) + ".csv";
}

bool exists(const std::string& path) { return std::filesystem::exists(path); }

}  // namespace gnrfet::cache
