#include "common/cache.hpp"

#include <filesystem>

#include "common/annotations.hpp"
#include "common/env.hpp"
#include "common/strings.hpp"

namespace gnrfet::cache {

namespace {

/// Locate (and create) the default cache directory: walk up from the
/// current directory looking for the repository root (identified by
/// DESIGN.md); fall back to ./data/cache.
std::string resolve_default_directory() {
  namespace fs = std::filesystem;
  fs::path dir = fs::current_path();
  for (int depth = 0; depth < 6; ++depth) {
    if (fs::exists(dir / "DESIGN.md") && fs::exists(dir / "src")) {
      const fs::path cache = dir / "data" / "cache";
      fs::create_directories(cache);
      return cache.string();
    }
    if (!dir.has_parent_path() || dir.parent_path() == dir) break;
    dir = dir.parent_path();
  }
  const fs::path cache = fs::current_path() / "data" / "cache";
  fs::create_directories(cache);
  return cache.string();
}

}  // namespace

std::string directory() {
  // The GNRFET_CACHE_DIR override stays live (re-read every call, so tests
  // can repoint it), but each distinct value only walks the filesystem /
  // creates directories once.
  if (const std::string env = common::env_or("GNRFET_CACHE_DIR", ""); !env.empty()) {
    static common::Mutex mu;
    static std::string created_for GNRFET_GUARDED_BY(mu);
    common::MutexLock lk(mu);
    if (env != created_for) {
      std::filesystem::create_directories(env);
      created_for = env;
    }
    return env;
  }
  // No override: resolve and create exactly once, thread-safely, instead
  // of re-walking the tree on every path_for() call.
  static const std::string resolved = resolve_default_directory();
  return resolved;
}

std::string path_for(const std::string& name, const std::string& config_payload) {
  return directory() + "/" + name + "-" + strings::hash_hex(config_payload) + ".csv";
}

bool exists(const std::string& path) { return std::filesystem::exists(path); }

}  // namespace gnrfet::cache
