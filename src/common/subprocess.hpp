#pragma once

#include <sys/types.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

/// Fork/exec worker processes with a length-prefixed frame protocol.
///
/// The table-shard scheduler (service/shardgen) fans device-table columns
/// out across worker *processes*: unlike the in-process thread pool, worker
/// processes scale past the allocator and GIL-like lock contention of one
/// address space, survive sanitizer/runtime differences, and can be
/// remoted later. This layer owns the process plumbing only — spawning
/// (either a fork-entry child running a callback, or fork+exec of an
/// argv), a deterministic framed message channel, and crash detection —
/// and knows nothing about what the frames mean.
///
/// Framing: every message is  [u32 magic][u64 payload length][payload].
/// The fixed prefix makes request framing deterministic (the same logical
/// request always serializes to the same bytes) and lets a reader detect a
/// torn or desynchronized stream immediately instead of misparsing it.
/// Channels are AF_UNIX socketpairs, so parent-side writes can use
/// MSG_NOSIGNAL instead of ignoring SIGPIPE process-wide; a dead peer
/// surfaces as a clean `false` from send/recv, never a signal.
namespace gnrfet::common::subprocess {

/// One protocol message payload (the length prefix is added on the wire).
using Frame = std::vector<uint8_t>;

/// Append-only binary serializer for frame payloads. Doubles travel as
/// their IEEE-754 bit pattern (memcpy through uint64_t), so a value
/// round-trips bit-exactly — the shard protocol's bit-identity guarantee
/// rests on this.
class FrameWriter {
 public:
  void u8(uint8_t v) { buf_.push_back(v); }
  void u32(uint32_t v);
  void u64(uint64_t v);
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
  void f64(double v);
  void vec_f64(const std::vector<double>& v);
  void str(const std::string& s);

  const Frame& frame() const { return buf_; }
  Frame take() { return std::move(buf_); }

 private:
  Frame buf_;
};

/// Bounds-checked reader over a received frame; throws std::runtime_error
/// on underrun or an oversized embedded length (a desynchronized or
/// corrupt peer must fail loudly, not read garbage).
class FrameReader {
 public:
  explicit FrameReader(const Frame& frame) : buf_(frame) {}

  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  int32_t i32() { return static_cast<int32_t>(u32()); }
  double f64();
  std::vector<double> vec_f64();
  std::string str();

  bool done() const { return pos_ == buf_.size(); }

 private:
  void need(size_t n) const;
  const Frame& buf_;
  size_t pos_ = 0;
};

/// Write one framed message to `fd`, looping over partial writes and EINTR.
/// Returns false when the peer is gone (EPIPE/ECONNRESET — a crashed or
/// exited worker); throws on any other I/O error.
bool write_frame(int fd, const Frame& frame);

/// Read one framed message from `fd`. Returns false on clean EOF at a
/// frame boundary (peer closed its end); throws on a torn frame, a bad
/// magic prefix, or an oversized length (protocol desynchronization).
bool read_frame(int fd, Frame& frame);

/// One worker child process plus its two framed channels (requests down,
/// responses up). Movable, never copyable; the destructor reaps the child
/// (SIGKILL first when it is still alive).
class Worker {
 public:
  /// Body of a fork-entry worker: reads frames from `request_fd`, writes
  /// frames to `response_fd`, returns the child's exit status. Runs in the
  /// child after fork() with no exec — the child must treat the inherited
  /// address space as frozen (in particular, it must not touch the
  /// parent's thread pool: see par::pin_inline()).
  using ChildMain = std::function<int(int request_fd, int response_fd)>;

  Worker() = default;
  Worker(Worker&& other) noexcept;
  Worker& operator=(Worker&& other) noexcept;
  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;
  ~Worker();

  /// Fork a child that runs `child_main` and then _Exit()s (at-exit hooks
  /// — e.g. the trace flush — belong to the parent, not the copy).
  static Worker spawn(const ChildMain& child_main);

  /// Fork + exec `argv` with the request channel on stdin and the response
  /// channel on stdout (so `gen_tables --worker` — or /bin/cat in tests —
  /// can serve the protocol with no fd passing).
  static Worker spawn_exec(const std::vector<std::string>& argv);

  /// Send one request; false when the worker died (caller requeues).
  bool send(const Frame& frame);
  /// Receive one response; false on EOF = worker exited or crashed.
  bool recv(Frame& frame);

  pid_t pid() const { return pid_; }
  bool valid() const { return pid_ > 0; }
  /// Response-channel fd, for poll(2)-based multiplexing across workers.
  int response_fd() const { return from_child_; }

  /// True while the child has not yet exited (waitpid WNOHANG probe).
  bool running();
  /// SIGKILL the child (crash-recovery tests; destructor cleanup).
  void kill_now();
  /// Close the request channel: the child's next read sees EOF, the
  /// orderly-shutdown signal for a worker loop.
  void close_request();
  /// Blocking reap; returns the raw waitpid status (0 if already reaped).
  int wait();

 private:
  void reset();

  pid_t pid_ = -1;
  int to_child_ = -1;    ///< parent writes requests here
  int from_child_ = -1;  ///< parent reads responses here
  bool reaped_ = false;
  int status_ = 0;
};

/// A fixed-size set of workers with respawn-on-demand: the scheduler marks
/// crashed workers dead mid-run and `ensure_full()` replaces them before
/// the next run, so one crash never shrinks the pool permanently.
class WorkerPool {
 public:
  using Spawner = std::function<Worker()>;

  WorkerPool(int size, Spawner spawner);

  /// Respawn every slot whose worker is missing or no longer running.
  /// Only safe while no worker is mid-request: a busy-but-dead worker must
  /// be handled via respawn(i) after its in-flight shard was requeued.
  void ensure_full();

  /// Replace slot `i` with a fresh worker (the old child, if any, is
  /// killed and reaped by Worker's destructor).
  void respawn(size_t i);

  size_t size() const { return workers_.size(); }
  Worker& at(size_t i) { return workers_[i]; }

 private:
  std::vector<Worker> workers_;
  Spawner spawner_;
};

}  // namespace gnrfet::common::subprocess
