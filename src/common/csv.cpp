#include "common/csv.hpp"

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/strings.hpp"

namespace gnrfet::csv {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) index_[columns_[i]] = i;
}

void Table::add_row(const std::vector<double>& row) {
  if (row.size() != columns_.size()) {
    throw std::invalid_argument("csv::Table::add_row: column count mismatch");
  }
  rows_.push_back(row);
}

double Table::at(size_t row, const std::string& column) const {
  const auto it = index_.find(column);
  if (it == index_.end()) {
    throw std::out_of_range("csv::Table: no column named " + column);
  }
  return rows_.at(row).at(it->second);
}

std::vector<double> Table::column(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    throw std::out_of_range("csv::Table: no column named " + name);
  }
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) out.push_back(r[it->second]);
  return out;
}

void Table::set_meta(const std::string& key, const std::string& value) {
  meta_[key] = value;
}

std::string Table::meta(const std::string& key, const std::string& fallback) const {
  const auto it = meta_.find(key);
  return it == meta_.end() ? fallback : it->second;
}

void Table::save(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(path);
  if (!out) throw std::runtime_error("csv: cannot open for write: " + path);
  // max_digits10 (17) makes the decimal text round-trip every finite double
  // bit-for-bit through load(); anything less (the old precision(12)) made a
  // table served from the disk cache differ bitwise from the freshly
  // generated one.
  out.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& [k, v] : meta_) out << "# " << k << " = " << v << "\n";
  for (size_t i = 0; i < columns_.size(); ++i) {
    out << columns_[i] << (i + 1 == columns_.size() ? "\n" : ",");
  }
  for (const auto& r : rows_) {
    for (size_t i = 0; i < r.size(); ++i) {
      out << r[i] << (i + 1 == r.size() ? "\n" : ",");
    }
  }
  if (!out.good()) throw std::runtime_error("csv: write failed: " + path);
}

Table Table::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("csv: cannot open for read: " + path);
  std::string line;
  std::map<std::string, std::string> meta;
  std::vector<std::string> header;
  while (std::getline(in, line)) {
    line = strings::trim(line);
    if (line.empty()) continue;
    if (line[0] == '#') {
      const auto eq = line.find('=');
      if (eq != std::string::npos) {
        meta[strings::trim(line.substr(1, eq - 1))] = strings::trim(line.substr(eq + 1));
      }
      continue;
    }
    for (auto& c : strings::split(line, ',')) header.push_back(strings::trim(c));
    break;
  }
  if (header.empty()) throw std::runtime_error("csv: missing header: " + path);
  Table t(header);
  for (const auto& [k, v] : meta) t.set_meta(k, v);
  while (std::getline(in, line)) {
    line = strings::trim(line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<double> row;
    for (const auto& cell : strings::split(line, ',')) {
      row.push_back(std::stod(cell));
    }
    t.add_row(row);
  }
  return t;
}

}  // namespace gnrfet::csv
