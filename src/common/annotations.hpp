#pragma once

#include <condition_variable>
#include <mutex>

/// Clang thread-safety capability annotations and the annotated sync
/// primitives the codebase locks with.
///
/// Under clang, building with -Wthread-safety (CI: the `thread-safety`
/// stage, -DGNRFET_THREAD_SAFETY=ON, which adds -Werror=thread-safety)
/// statically proves that every GNRFET_GUARDED_BY member is only touched
/// with its mutex held and that every GNRFET_REQUIRES function is only
/// called under the right lock. On other compilers the macros expand to
/// nothing and the wrappers are zero-cost shims over the std primitives.
///
/// The std lock types are not capability-annotated (libstdc++ carries no
/// annotations), so annotated code locks through the wrappers below:
///
///   common::Mutex      annotated std::mutex (lock/unlock/try_lock)
///   common::MutexLock  scoped lock of a Mutex (the std::lock_guard shape)
///   common::CondVar    condition variable waitable on a Mutex; waits are
///                      written as explicit `while (!pred) cv.wait(mu);`
///                      loops so the predicate reads are visibly under the
///                      lock (lambda predicates would be analyzed as
///                      lock-free functions and rejected)
///
/// Deployed on the real shared state of the pipeline: the thread pool's
/// run/registration mutexes (common/parallel.cpp), the DesignKit table
/// cache (explore/tech_explore.hpp), the trace and metrics registries
/// (common/trace.cpp, common/metrics.cpp), and the cache-directory
/// once-init (common/cache.cpp). PoissonSolver's persistent workspaces
/// are intentionally *not* mutex-guarded — the class is thread-compatible
/// (one solver per concurrent solve) and enforces single ownership with a
/// runtime contract instead (poisson/solver.cpp).
#if defined(__clang__)
#define GNRFET_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GNRFET_THREAD_ANNOTATION(x)
#endif

/// A type that is a lockable capability (mutexes).
#define GNRFET_CAPABILITY(x) GNRFET_THREAD_ANNOTATION(capability(x))
/// An RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define GNRFET_SCOPED_CAPABILITY GNRFET_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only with the capability held.
#define GNRFET_GUARDED_BY(x) GNRFET_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose pointee is guarded by the capability.
#define GNRFET_PT_GUARDED_BY(x) GNRFET_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function callable only with the capability already held.
#define GNRFET_REQUIRES(...) GNRFET_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function that acquires the capability (held on return, not on entry).
#define GNRFET_ACQUIRE(...) GNRFET_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function that attempts the acquisition; first argument is the return
/// value meaning success.
#define GNRFET_TRY_ACQUIRE(...) GNRFET_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function that releases the capability (held on entry, not on return).
#define GNRFET_RELEASE(...) GNRFET_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function that must NOT be called with the capability held (deadlock
/// guard for self-locking public entry points).
#define GNRFET_EXCLUDES(...) GNRFET_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Escape hatch for code the analysis cannot model; use sparingly and say
/// why at the use site.
#define GNRFET_NO_THREAD_SAFETY_ANALYSIS GNRFET_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gnrfet::common {

/// std::mutex with capability annotations.
class GNRFET_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GNRFET_ACQUIRE() { m_.lock(); }
  void unlock() GNRFET_RELEASE() { m_.unlock(); }
  bool try_lock() GNRFET_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// Scoped lock of a Mutex (std::lock_guard shape, analysis-visible).
class GNRFET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GNRFET_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() GNRFET_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waitable directly on a Mutex. wait() releases and
/// reacquires the mutex internally (std::condition_variable_any), so from
/// the caller's — and the analysis's — point of view the capability is
/// held across the call. Write waits as explicit loops:
///
///   while (!ready_) cv_.wait(mu_);   // ready_ GNRFET_GUARDED_BY(mu_)
class CondVar {
 public:
  void wait(Mutex& mu) GNRFET_REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace gnrfet::common
