#pragma once

#include <map>
#include <string>
#include <vector>

/// Minimal CSV table type used for (a) the on-disk device-table cache and
/// (b) the data series every bench writes next to its printed output.
namespace gnrfet::csv {

/// An in-memory rectangular table with named columns.
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> columns);

  /// Append one row; must match the column count.
  void add_row(const std::vector<double>& row);

  size_t num_rows() const { return rows_.size(); }
  size_t num_cols() const { return columns_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<double>& row(size_t i) const { return rows_.at(i); }

  /// Value at (row, named column). Throws if the column does not exist.
  double at(size_t row, const std::string& column) const;

  /// Extract a whole named column.
  std::vector<double> column(const std::string& name) const;

  /// Free-form key/value metadata, serialized as "# key = value" comments.
  void set_meta(const std::string& key, const std::string& value);
  std::string meta(const std::string& key, const std::string& fallback = "") const;

  /// Serialize / parse. `save` creates parent directories as needed and
  /// throws std::runtime_error on I/O failure; `load` throws if the file is
  /// missing or malformed.
  void save(const std::string& path) const;
  static Table load(const std::string& path);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
  std::map<std::string, std::string> meta_;
  std::map<std::string, size_t> index_;
};

}  // namespace gnrfet::csv
