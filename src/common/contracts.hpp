#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

/// Machine-checked physics and numerics contracts.
///
/// The paper's claims rest on identities the solvers would otherwise trust
/// silently: Hermiticity of the tight-binding Hamiltonian, the NEGF
/// spectral sum rule, ballistic source/drain current continuity, bounded
/// Poisson residuals, non-singular MNA stamps, NaN-free bias tables.
/// GNRFET_REQUIRE (precondition), GNRFET_ENSURE (postcondition) and
/// GNRFET_CHECK_FINITE guard those invariants with a typed error
/// (ContractViolation) naming the subsystem and the invariant, so a
/// corrupted input is rejected at the layer where it originates instead of
/// surfacing three layers up as a wrong contour plot.
///
/// Checks compile in by default. Configuring with -DGNRFET_CHECKS=OFF
/// defines GNRFET_DISABLE_CHECKS and every macro becomes a dead branch
/// that still type-checks its operands but never evaluates them, so
/// Release builds pay nothing. Blocks of supporting computation that only
/// feed a contract should be guarded with `#if GNRFET_CHECKS_ENABLED`.
namespace gnrfet::contracts {

/// Typed contract failure: which subsystem ("gnr", "negf", "poisson",
/// "device", "device/tablegen", "circuit", "model", ...), which named
/// invariant, and a detail string quoting the offending values.
class ContractViolation : public std::runtime_error {
 public:
  ContractViolation(std::string subsystem, std::string invariant, std::string detail,
                    const char* file, int line);

  const std::string& subsystem() const { return subsystem_; }
  const std::string& invariant() const { return invariant_; }
  const std::string& detail() const { return detail_; }

 private:
  std::string subsystem_;
  std::string invariant_;
  std::string detail_;
};

/// Throws ContractViolation; out-of-line so call sites stay compact.
[[noreturn]] void fail(const char* subsystem, const char* invariant, const std::string& detail,
                       const char* file, int line);

/// True when every element is finite (no NaN, no infinity).
bool all_finite(const double* data, size_t n);
bool all_finite(const std::vector<double>& v);
bool all_finite(const std::vector<std::vector<double>>& v);

/// True when the axis is finite and strictly ascending (bias-table axes).
bool strictly_ascending(const std::vector<double>& axis);

}  // namespace gnrfet::contracts

#if defined(GNRFET_DISABLE_CHECKS)

#define GNRFET_CHECKS_ENABLED 0
// Disabled: operands stay visible to the compiler (so a checks-off build
// cannot rot) but are never evaluated — zero runtime cost.
#define GNRFET_REQUIRE(subsystem, invariant, cond, detail) \
  do {                                                     \
    if (false) {                                           \
      (void)(cond);                                        \
      (void)(detail);                                      \
    }                                                      \
  } while (0)

#else

#define GNRFET_CHECKS_ENABLED 1
#define GNRFET_REQUIRE(subsystem, invariant, cond, detail)                               \
  do {                                                                                   \
    if (!(cond)) {                                                                       \
      ::gnrfet::contracts::fail((subsystem), (invariant), (detail), __FILE__, __LINE__); \
    }                                                                                    \
  } while (0)

#endif

/// Postcondition flavour of GNRFET_REQUIRE: the solver promising something
/// about its own output rather than rejecting a caller's input.
#define GNRFET_ENSURE(subsystem, invariant, cond, detail) \
  GNRFET_REQUIRE(subsystem, invariant, cond, detail)

/// Single-scalar finiteness contract; quotes the offending value.
#define GNRFET_CHECK_FINITE(subsystem, invariant, value)      \
  GNRFET_REQUIRE(subsystem, invariant, std::isfinite(value),  \
                 std::string(#value " is not finite: ") + std::to_string(value))
