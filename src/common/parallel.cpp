#include "common/parallel.hpp"

#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>

#include "common/annotations.hpp"
#include "common/env.hpp"

namespace gnrfet::par {

namespace {

/// One parallel region. Chunks are pre-partitioned into per-participant
/// ranges; a participant first drains its own range, then steals from the
/// tail of the busiest-looking victim. Claiming is lock-free; everything
/// that touches the job's lifetime goes through the pool mutex.
struct Job {
  const std::function<void(size_t, size_t, size_t)>* body = nullptr;
  size_t n = 0;
  size_t grain = 1;
  size_t nchunks = 0;
  size_t participants = 0;

  struct alignas(64) Cursor {
    std::atomic<size_t> next{0};
    size_t end = 0;
  };
  std::vector<Cursor> cursors;  // one per participant

  std::atomic<bool> abort{false};
  common::Mutex error_mu;
  std::exception_ptr error GNRFET_GUARDED_BY(error_mu);

  void init(size_t n_items, size_t grain_items, size_t nparticipants) {
    n = n_items;
    grain = grain_items;
    nchunks = num_chunks(n, grain);
    participants = nparticipants < nchunks ? nparticipants : nchunks;
    if (participants == 0) participants = 1;
    cursors = std::vector<Cursor>(participants);
    for (size_t p = 0; p < participants; ++p) {
      cursors[p].next.store(p * nchunks / participants, std::memory_order_relaxed);
      cursors[p].end = (p + 1) * nchunks / participants;
    }
  }

  /// Claim one chunk, preferring slot `home`; returns nchunks when drained.
  size_t claim(size_t home) {
    for (size_t k = 0; k < participants; ++k) {
      Cursor& c = cursors[(home + k) % participants];
      const size_t got = c.next.fetch_add(1, std::memory_order_relaxed);
      if (got < c.end) return got;
    }
    return nchunks;
  }

  void run_chunk(size_t chunk) {
    if (abort.load(std::memory_order_relaxed)) return;
    try {
      const size_t begin = chunk * grain;
      const size_t end = begin + grain < n ? begin + grain : n;
      (*body)(chunk, begin, end);
    } catch (...) {
      common::MutexLock lk(error_mu);
      if (!error) error = std::current_exception();
      abort.store(true, std::memory_order_relaxed);
    }
  }

  void work(size_t home) {
    for (size_t chunk = claim(home); chunk < nchunks; chunk = claim(home)) {
      run_chunk(chunk);
    }
  }

  /// The first chunk exception, if any. Called after the region drained;
  /// the lock is for the analysis (and late-aborting stragglers).
  std::exception_ptr take_error() {
    common::MutexLock lk(error_mu);
    return error;
  }
};

thread_local bool t_in_worker = false;

/// Marks the current thread as inside a parallel region for a scope, so
/// nested parallel_for calls run inline instead of re-entering the pool.
struct InRegionGuard {
  bool old = t_in_worker;
  InRegionGuard() { t_in_worker = true; }
  ~InRegionGuard() { t_in_worker = old; }
};

class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  int threads() {
    common::MutexLock lk(mu_);
    return target_threads_;
  }

  void set_threads(int n) {
    common::MutexLock lk(mu_);
    if (job_) throw std::logic_error("par::set_thread_count: parallel region active");
    target_threads_ = n < 1 ? 1 : n;
    ensure_workers();
  }

  void run(Job& job) {
    // Only one top-level region may be live at a time: job_/active_ track a
    // single job, so a second concurrent caller must not overwrite them. A
    // loser of the race runs its region inline on its own thread instead of
    // blocking — blocking here could deadlock if the winner's job body
    // waits on a lock the loser holds.
    if (!run_mu_.try_lock()) {
      job.init(job.n, job.grain, 1);
      InRegionGuard in_region;
      job.work(0);
      if (std::exception_ptr err = job.take_error()) std::rethrow_exception(err);
      return;
    }

    {
      common::MutexLock lk(mu_);
      job.init(job.n, job.grain, static_cast<size_t>(target_threads_));
      job_ = &job;
      ++epoch_;
    }
    wake_cv_.notify_all();

    // The caller is participant 0 and helps until the job drains. It is
    // marked in-region for the duration so a nested parallel_for in the job
    // body (e.g. lazy NEGF table generation reached from a sample) runs
    // inline instead of re-entering run() and waiting on workers that may
    // in turn be blocked on a lock this thread holds.
    {
      InRegionGuard in_region;
      job.work(0);
    }

    // Detach the job so late-waking workers skip it, then wait for every
    // worker that did enter to leave before the job goes out of scope.
    {
      common::MutexLock lk(mu_);
      job_ = nullptr;
      while (active_ != 0) done_cv_.wait(mu_);
    }
    run_mu_.unlock();

    if (std::exception_ptr err = job.take_error()) std::rethrow_exception(err);
  }

 private:
  ThreadPool() {
    common::MutexLock lk(mu_);
    target_threads_ = resolve_env_threads();
    ensure_workers();
  }

  ~ThreadPool() {
    {
      common::MutexLock lk(mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  static int resolve_env_threads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return common::env::get_positive_int("GNRFET_THREADS", hw >= 1 ? static_cast<int>(hw) : 1);
  }

  void ensure_workers() GNRFET_REQUIRES(mu_) {
    // Participant 0 is the caller, so the pool carries threads - 1 workers.
    while (static_cast<int>(workers_.size()) < target_threads_ - 1) {
      const size_t slot = workers_.size() + 1;
      workers_.emplace_back([this, slot] { worker_main(slot); });
    }
  }

  void worker_main(size_t slot) {
    t_in_worker = true;
    mu_.lock();
    uint64_t seen = epoch_;
    while (true) {
      while (!(stop_ || epoch_ != seen)) wake_cv_.wait(mu_);
      if (stop_) {
        mu_.unlock();
        return;
      }
      seen = epoch_;
      Job* job = job_;
      if (!job || slot >= job->participants) continue;
      ++active_;
      mu_.unlock();
      job->work(slot);
      mu_.lock();
      if (--active_ == 0) done_cv_.notify_all();
    }
  }

  common::Mutex mu_;
  common::Mutex run_mu_;  ///< serializes top-level regions (see run())
  common::CondVar wake_cv_;
  common::CondVar done_cv_;
  /// Only grown (under mu_, in ensure_workers) and joined by the
  /// destructor after the stop_ handshake; not annotated because the
  /// joining loop intentionally runs unlocked.
  std::vector<std::thread> workers_;
  Job* job_ GNRFET_GUARDED_BY(mu_) = nullptr;
  uint64_t epoch_ GNRFET_GUARDED_BY(mu_) = 0;
  int active_ GNRFET_GUARDED_BY(mu_) = 0;
  int target_threads_ GNRFET_GUARDED_BY(mu_) = 1;
  bool stop_ GNRFET_GUARDED_BY(mu_) = false;
};

}  // namespace

int thread_count() { return ThreadPool::instance().threads(); }

void set_thread_count(int n) { ThreadPool::instance().set_threads(n); }

bool in_parallel_region() { return t_in_worker; }

void pin_inline() { t_in_worker = true; }

size_t num_chunks(size_t n, size_t grain) {
  if (grain == 0) grain = 1;
  return n == 0 ? 0 : (n + grain - 1) / grain;
}

void parallel_for_chunks(size_t n, size_t grain,
                         const std::function<void(size_t, size_t, size_t)>& body) {
  if (grain == 0) grain = 1;
  const size_t chunks = num_chunks(n, grain);
  if (chunks == 0) return;
  // Serial path: one thread, a nested region, or a single chunk. Chunk
  // boundaries are identical to the threaded path, so results match it
  // bit for bit.
  if (chunks == 1 || t_in_worker || thread_count() == 1) {
    for (size_t c = 0; c < chunks; ++c) {
      const size_t begin = c * grain;
      const size_t end = begin + grain < n ? begin + grain : n;
      body(c, begin, end);
    }
    return;
  }
  Job job;
  job.body = &body;
  job.n = n;
  job.grain = grain;
  ThreadPool::instance().run(job);
}

void parallel_for(size_t n, const std::function<void(size_t)>& body) {
  parallel_for_chunks(n, 1, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) body(i);
  });
}

}  // namespace gnrfet::par
