#include "common/constants.hpp"

#include <cmath>

namespace gnrfet::constants {

double fermi(double e_minus_mu_eV, double kT_eV) {
  const double x = e_minus_mu_eV / kT_eV;
  if (x > 40.0) return std::exp(-x);
  if (x < -40.0) return 1.0;
  return 1.0 / (1.0 + std::exp(x));
}

double fermi_derivative(double e_minus_mu_eV, double kT_eV) {
  const double x = e_minus_mu_eV / kT_eV;
  if (std::abs(x) > 40.0) return 0.0;
  const double c = std::cosh(0.5 * x);
  return -1.0 / (4.0 * kT_eV * c * c);
}

}  // namespace gnrfet::constants
