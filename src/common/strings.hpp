#pragma once

#include <string>
#include <vector>

/// Small string utilities shared by the CSV layer and the bench printers.
namespace gnrfet::strings {

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& s, char delim);

/// Strip leading/trailing whitespace.
std::string trim(const std::string& s);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// FNV-1a 64-bit hash, used to key cached device tables by configuration.
std::string hash_hex(const std::string& payload);

}  // namespace gnrfet::strings
