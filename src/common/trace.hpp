#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

/// Scoped-span tracing for the solver stack, exported as Chrome
/// trace-event JSON (viewable at ui.perfetto.dev or chrome://tracing).
///
/// Every solver layer opens a trace::Span for its unit of work (an RGF
/// transport solve, a self-consistent bias point, a nonlinear Poisson
/// solve, a transient run, a Monte Carlo sample). Spans are recorded into
/// per-thread buffers — the hot path takes no lock; the only mutex is the
/// one-time registration of each thread's buffer — and merged when the
/// trace is written. Together with the counters in common/metrics.hpp this
/// answers "where does the bias-table sweep actually spend its time"
/// without guessing.
///
/// Enabling: set GNRFET_TRACE=<path> (read through the checked env
/// helpers) and the process writes <path> at exit; or call
/// set_output_path() + flush() programmatically (tests, tools). When
/// disabled, a Span is one relaxed atomic load and a branch — cheap enough
/// to leave the instrumentation in Release builds.
namespace gnrfet::trace {

/// True when a trace output path is configured (GNRFET_TRACE or
/// set_output_path). Spans record only while enabled.
bool enabled();

/// The configured output path ("" when disabled).
std::string output_path();

/// Override the output path at runtime; "" disables recording. Intended
/// for tests and tools — not thread-safe against concurrently open spans.
void set_output_path(const std::string& path);

/// Microseconds since the process trace epoch (steady clock). All spans,
/// PhaseTimer rows and the exported JSON share this one clock.
double now_us();

/// RAII scoped span: records [construction, destruction) as one complete
/// event under (category, name). Category is the subsystem ("negf",
/// "poisson", "device", "circuit", "linalg", "explore", "bench"); both
/// strings must outlive the span (string literals in practice).
class Span {
 public:
  Span(const char* category, const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* category_;
  const char* name_;
  double begin_us_;
  bool active_;
};

/// Record an already-timed complete event with a dynamic name (the bench
/// PhaseTimer, whose phase names are composed at runtime). No-op while
/// disabled.
void emit_complete(const char* category, const std::string& name, double begin_us,
                   double dur_us);

/// One recorded event, merged across threads (tests and tools).
struct EventRecord {
  std::string category;
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  uint32_t tid = 0;
};

/// Number of recorded events across all threads.
size_t event_count();

/// Merged copy of every recorded event. Call only while no span-recording
/// region is concurrently active.
std::vector<EventRecord> snapshot_events();

/// Serialize all recorded events plus the current metrics snapshot as
/// Chrome trace-event JSON. Does not clear the buffers.
void write_json(std::ostream& os);
std::string to_json();

/// Write the trace to output_path() and clear the buffers. No-op when
/// disabled or when nothing was recorded. Runs automatically at process
/// exit once tracing has been touched.
void flush();

/// Drop all recorded events (tests).
void clear();

}  // namespace gnrfet::trace
