#include "common/contracts.hpp"

namespace gnrfet::contracts {

namespace {

std::string compose(const std::string& subsystem, const std::string& invariant,
                    const std::string& detail, const char* file, int line) {
  std::string msg = "contract violation [" + subsystem + "/" + invariant + "] at " + file + ":" +
                    std::to_string(line);
  if (!detail.empty()) msg += ": " + detail;
  return msg;
}

}  // namespace

ContractViolation::ContractViolation(std::string subsystem, std::string invariant,
                                     std::string detail, const char* file, int line)
    : std::runtime_error(compose(subsystem, invariant, detail, file, line)),
      subsystem_(std::move(subsystem)),
      invariant_(std::move(invariant)),
      detail_(std::move(detail)) {}

void fail(const char* subsystem, const char* invariant, const std::string& detail,
          const char* file, int line) {
  throw ContractViolation(subsystem, invariant, detail, file, line);
}

bool all_finite(const double* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

bool all_finite(const std::vector<double>& v) { return all_finite(v.data(), v.size()); }

bool all_finite(const std::vector<std::vector<double>>& v) {
  for (const auto& row : v) {
    if (!all_finite(row)) return false;
  }
  return true;
}

bool strictly_ascending(const std::vector<double>& axis) {
  if (!all_finite(axis)) return false;
  for (size_t i = 1; i < axis.size(); ++i) {
    if (!(axis[i] > axis[i - 1])) return false;
  }
  return true;
}

}  // namespace gnrfet::contracts
