#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <sys/types.h>

#include "common/annotations.hpp"
#include "common/subprocess.hpp"
#include "device/tablegen.hpp"

/// Sharded cold-table generation across worker processes.
///
/// The in-process generator (device/tablegen) splits a table into a serial
/// head row plus independent per-drain-column VG chains and fans the
/// chains out across threads. The ShardScheduler reuses exactly that
/// decomposition but ships each column to a worker *process*: phase 1 (the
/// serial head row) runs in-process, then each column's head solution and
/// TransportContext snapshot travel to a worker over the framed subprocess
/// protocol, the worker runs device::solve_table_column, and the scheduler
/// assembles the returned columns by id. Because the warm-start graph and
/// the per-column code are identical to the in-process path — and every
/// double crosses the pipe as its IEEE bit pattern — the assembled table
/// is byte-identical to unsharded generation, for any worker count, thread
/// count, or crash/retry history.
///
/// Worker death mid-shard is detected as EOF on the response channel; the
/// column is requeued and recomputed (bit-identically) on a respawned or
/// surviving worker. Concurrent schedulers stay single-flight through the
/// existing table cache flock(2) in service/tableservice.
namespace gnrfet::service {

struct ShardOptions {
  /// Worker-process count; 0 resolves GNRFET_TABLE_WORKERS (default 4).
  int workers = 0;
  /// When non-empty, workers are fork+exec'd with this argv and serve the
  /// protocol on stdin/stdout (`gen_tables --worker`). When empty, workers
  /// are fork-entry children of this process — cheaper, and the default.
  std::vector<std::string> worker_argv;
  /// Test hook, called after each successful shard dispatch with the
  /// worker's pid and the column id (crash-injection tests SIGKILL the
  /// worker here to exercise retry).
  std::function<void(pid_t, size_t)> on_dispatch;
};

class ShardScheduler {
 public:
  explicit ShardScheduler(ShardOptions opts = {});
  ~ShardScheduler();

  ShardScheduler(const ShardScheduler&) = delete;
  ShardScheduler& operator=(const ShardScheduler&) = delete;

  /// Generate (or load from cache) the device table; drop-in replacement
  /// for device::generate_device_table with cold generation sharded across
  /// the worker pool. Concurrent calls serialize on an internal mutex —
  /// the pool runs one table at a time.
  device::DeviceTable generate(const device::DeviceSpec& spec,
                               const device::TableGenOptions& opts);

  int workers() const { return workers_; }

 private:
  device::DeviceTable generate_uncached(const device::DeviceSpec& spec,
                                        const device::TableGenOptions& opts);

  ShardOptions opts_;
  int workers_ = 1;
  common::Mutex mu_;  ///< serializes generate() bodies over the one pool
  std::unique_ptr<common::subprocess::WorkerPool> pool_;
};

/// Worker-side protocol loop: read shard requests from `request_fd`,
/// compute the column, write results (or in-band error frames) to
/// `response_fd`; returns 0 on clean EOF. Pins the calling thread inline
/// (par::pin_inline) before any compute — fork-entry children must never
/// touch the parent's thread pool. `tools/gen_tables --worker` calls this
/// with fds 0/1.
int shard_worker_main(int request_fd, int response_fd);

}  // namespace gnrfet::service
