#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "device/tablegen.hpp"

/// In-process serving layer over the device-table cache (ROADMAP: "device
/// table service"). Every consumer of I_D(V_G,V_D)/Q(V_G,V_D) tables — the
/// DesignKit, the Monte Carlo / contour / latch pipelines, the benches —
/// funnels through one TableService, which fronts the on-disk cache
/// (common/cache.hpp + device/tablegen.hpp) with:
///
///   - a capacity-bounded in-memory LRU keyed on table_cache_payload()
///     (shared, immutable entries; GNRFET_TABLE_LRU_MB sets the budget),
///   - a batch query API that deduplicates requests within the batch and
///     answers warm ones without touching the generation machinery,
///   - single-flight request coalescing: concurrent callers asking for the
///     same cold variant share one generation, and a cross-process lockfile
///     beside the cache path keeps two processes sharing data/cache from
///     duplicating minutes of generation work.
///
/// This is the async/queueing seam a future gnrfet_tabled daemon plugs
/// into: the request/reply structs are already serialization-shaped.
namespace gnrfet::service {

/// One device-table query: which device variant, on which bias grid.
struct TableRequest {
  device::DeviceSpec spec;
  device::TableGenOptions opts;
};

/// The answer to one request. `table` is shared and immutable: entries stay
/// valid after LRU eviction for as long as any caller holds them.
struct TableReply {
  std::shared_ptr<const device::DeviceTable> table;
  std::string key;    ///< cache identity (table_cache_payload of the request)
  bool warm = false;  ///< served straight from the in-memory pool
};

class TableService {
 public:
  /// Generation hook; defaults to device::generate_device_table. Tests and
  /// synthetic studies inject cheap generators here to drive the LRU /
  /// coalescing machinery without the NEGF pipeline.
  using Generator =
      std::function<device::DeviceTable(const device::DeviceSpec&, const device::TableGenOptions&)>;

  struct Options {
    /// In-memory pool budget in bytes; 0 reads GNRFET_TABLE_LRU_MB
    /// (default 256 MB). The pool always retains at least the most
    /// recently inserted entry, even when it alone exceeds the budget.
    size_t capacity_bytes = 0;
    /// Serialize cold generation across processes via a flock(2) lockfile
    /// beside the cache path (only for cached requests).
    bool cross_process_lock = true;
    Generator generator;  ///< empty = device::generate_device_table
  };

  /// Service-local counters (mirrored into the global metrics registry as
  /// table_service_hits / _misses / _evictions / _coalesced).
  struct Stats {
    uint64_t hits = 0;       ///< answered from the in-memory LRU
    uint64_t misses = 0;     ///< led a cold resolution (disk load or generation)
    uint64_t evictions = 0;  ///< entries dropped under capacity pressure
    uint64_t coalesced = 0;  ///< cold queries that joined an in-flight generation
    size_t entries = 0;      ///< current pool size
    size_t bytes = 0;        ///< current pool payload bytes
    /// High-water mark of resident pool bytes, sampled after each insert's
    /// eviction pass: the gauge CI uses to assert the LRU stayed within
    /// GNRFET_TABLE_LRU_MB under load (a single oversized entry is the
    /// only sanctioned excursion).
    size_t peak_bytes = 0;
  };

  TableService();  ///< default Options (a nested-class default argument trips gcc)
  explicit TableService(Options opts);

  /// Resolve one request: LRU hit, join of an in-flight generation, disk
  /// load, or cold generation — in that order. Blocks until the table is
  /// available; rethrows the leader's exception to every coalesced caller.
  std::shared_ptr<const device::DeviceTable> query(const TableRequest& request);

  /// Resolve a batch. Duplicate requests within the batch collapse onto one
  /// resolution; warm entries are answered under a single lock pass without
  /// touching the generation machinery; unique cold keys then resolve in
  /// first-appearance order (deterministic for any caller thread count).
  std::vector<TableReply> query_batch(const std::vector<TableRequest>& requests);

  Stats stats() const;
  size_t capacity_bytes() const { return capacity_bytes_; }

  /// Drop every pool entry (benches/tests; outstanding shared_ptrs stay
  /// valid). In-flight generations are unaffected.
  void clear();

  /// Process-wide default instance shared by every DesignKit: in-process
  /// consumers coalesce onto one pool and one generation per variant.
  static TableService& shared();

 private:
  struct Entry {
    std::shared_ptr<const device::DeviceTable> table;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_pos;  ///< position in lru_
  };

  /// One in-flight cold resolution; coalesced callers block on cv until the
  /// leader publishes the table (or its failure).
  struct Flight {
    common::Mutex mu;
    common::CondVar cv;
    bool done GNRFET_GUARDED_BY(mu) = false;
    std::shared_ptr<const device::DeviceTable> table GNRFET_GUARDED_BY(mu);
    std::exception_ptr error GNRFET_GUARDED_BY(mu);
  };

  /// Full resolution of one keyed request (hit / join / lead).
  std::shared_ptr<const device::DeviceTable> resolve(const std::string& key,
                                                     const TableRequest& request);
  /// The leader's cold path: disk load or generation, under the
  /// cross-process lockfile when the request is cached.
  std::shared_ptr<const device::DeviceTable> resolve_cold(const std::string& key,
                                                          const TableRequest& request);
  std::shared_ptr<const device::DeviceTable> lookup_locked(const std::string& key)
      GNRFET_REQUIRES(mu_);
  void insert_locked(const std::string& key,
                     const std::shared_ptr<const device::DeviceTable>& table)
      GNRFET_REQUIRES(mu_);

  Generator generator_;
  size_t capacity_bytes_ = 0;
  bool cross_process_lock_ = true;

  mutable common::Mutex mu_;
  std::map<std::string, Entry> entries_ GNRFET_GUARDED_BY(mu_);
  /// Recency order, front = most recently used; entries_ holds iterators.
  std::list<std::string> lru_ GNRFET_GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<Flight>> inflight_ GNRFET_GUARDED_BY(mu_);
  size_t bytes_ GNRFET_GUARDED_BY(mu_) = 0;
  Stats stats_ GNRFET_GUARDED_BY(mu_);
};

}  // namespace gnrfet::service
