#include "service/tableservice.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

#include "common/cache.hpp"
#include "common/env.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "service/shardgen.hpp"

namespace gnrfet::service {

namespace {

constexpr size_t kDefaultCapacityMb = 256;

/// Payload footprint of one pooled table (the dominant vectors plus the
/// struct itself); the LRU budget is accounted in these bytes.
size_t table_bytes(const device::DeviceTable& t) {
  const size_t doubles = t.vg.size() + t.vd.size() + t.current_A.size() + t.charge_C.size();
  return doubles * sizeof(double) + sizeof(device::DeviceTable);
}

/// Advisory flock(2) on a sidecar file beside the cache entry, serializing
/// cold generation across *processes* sharing one cache directory (the
/// in-process side is handled by single-flight coalescing).
///
/// The sidecar is unlinked while the lock is still held, so the directory
/// does not accumulate stale .lock files. A waiter that acquired the lock
/// through the now-unlinked inode re-checks the cache entry on disk first
/// (the table file is always written before the unlink), so the worst case
/// of the unlink race is one redundant generation, never a wrong table.
///
/// Lock failures (unwritable directory, exotic filesystems) degrade to
/// uncoordinated generation: both processes write the same bit-exact table
/// through the atomic rename in device::save_table.
class FileLock {
 public:
  explicit FileLock(const std::string& path) : path_(path) {
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) return;
    while (::flock(fd_, LOCK_EX) != 0) {
      if (errno != EINTR) {
        ::close(fd_);
        fd_ = -1;
        return;
      }
    }
  }

  ~FileLock() {
    if (fd_ < 0) return;
    ::unlink(path_.c_str());
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace

TableService::TableService() : TableService(Options{}) {}

TableService::TableService(Options opts) : cross_process_lock_(opts.cross_process_lock) {
  if (opts.generator) {
    generator_ = std::move(opts.generator);
  } else {
    // GNRFET_TABLE_SHARD=on routes cold generation through a worker-process
    // pool (service/shardgen); off — the default — is the unchanged
    // in-process path. The two produce byte-identical tables, so the switch
    // is purely a throughput knob.
    const std::string shard = common::env_or("GNRFET_TABLE_SHARD", "off");
    if (shard == "on") {
      auto scheduler = std::make_shared<ShardScheduler>();
      generator_ = [scheduler](const device::DeviceSpec& spec,
                               const device::TableGenOptions& gen_opts) {
        return scheduler->generate(spec, gen_opts);
      };
    } else if (shard == "off") {
      generator_ = &device::generate_device_table;
    } else {
      throw common::env::EnvError("GNRFET_TABLE_SHARD", shard, "expected on or off");
    }
  }
  if (opts.capacity_bytes > 0) {
    capacity_bytes_ = opts.capacity_bytes;
  } else {
    const int mb = common::env::get_positive_int("GNRFET_TABLE_LRU_MB",
                                                 static_cast<int>(kDefaultCapacityMb));
    capacity_bytes_ = static_cast<size_t>(mb) * 1024 * 1024;
  }
}

TableService& TableService::shared() {
  static TableService instance;
  return instance;
}

std::shared_ptr<const device::DeviceTable> TableService::query(const TableRequest& request) {
  trace::Span span("service", "query");
  return resolve(device::table_cache_payload(request.spec, request.opts), request);
}

std::vector<TableReply> TableService::query_batch(const std::vector<TableRequest>& requests) {
  trace::Span span("service", "query_batch");
  std::vector<TableReply> replies(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    replies[i].key = device::table_cache_payload(requests[i].spec, requests[i].opts);
  }

  // Pass 1, one lock hold: answer every warm request straight from the
  // pool and collect the unique cold keys in first-appearance order.
  std::vector<std::string> cold_order;
  std::map<std::string, size_t> cold_first;
  {
    common::MutexLock lk(mu_);
    for (size_t i = 0; i < requests.size(); ++i) {
      if (auto hit = lookup_locked(replies[i].key)) {
        replies[i].table = std::move(hit);
        replies[i].warm = true;
        ++stats_.hits;
        metrics::add(metrics::Counter::kTableServiceHits);
      } else if (cold_first.emplace(replies[i].key, i).second) {
        cold_order.push_back(replies[i].key);
      }
    }
  }

  // Pass 2: resolve each unique cold key once, in batch order. Sequential
  // on purpose — generation is internally parallel (the NEGF bias grid),
  // and a fixed resolution order keeps the batch deterministic for any
  // GNRFET_THREADS.
  std::map<std::string, std::shared_ptr<const device::DeviceTable>> resolved;
  for (const auto& key : cold_order) {
    resolved[key] = resolve(key, requests[cold_first[key]]);
  }

  // Pass 3: duplicate cold requests share the leader's entry.
  for (auto& reply : replies) {
    if (!reply.table) reply.table = resolved.at(reply.key);
  }
  return replies;
}

std::shared_ptr<const device::DeviceTable> TableService::resolve(const std::string& key,
                                                                 const TableRequest& request) {
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    common::MutexLock lk(mu_);
    if (auto hit = lookup_locked(key)) {
      ++stats_.hits;
      metrics::add(metrics::Counter::kTableServiceHits);
      return hit;
    }
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      flight = it->second;
      ++stats_.coalesced;
      metrics::add(metrics::Counter::kTableServiceCoalesced);
    } else {
      flight = std::make_shared<Flight>();
      inflight_.emplace(key, flight);
      leader = true;
      ++stats_.misses;
      metrics::add(metrics::Counter::kTableServiceMisses);
    }
  }

  if (!leader) {
    trace::Span span("service", "coalesce_wait");
    common::MutexLock lk(flight->mu);
    while (!flight->done) flight->cv.wait(flight->mu);
    if (flight->error) std::rethrow_exception(flight->error);
    return flight->table;
  }

  std::shared_ptr<const device::DeviceTable> table;
  std::exception_ptr error;
  try {
    table = resolve_cold(key, request);
  } catch (...) {
    error = std::current_exception();
  }
  {
    common::MutexLock lk(mu_);
    if (table) insert_locked(key, table);
    inflight_.erase(key);
  }
  {
    common::MutexLock lk(flight->mu);
    flight->done = true;
    flight->table = table;
    flight->error = error;
  }
  flight->cv.notify_all();
  if (error) std::rethrow_exception(error);
  return table;
}

std::shared_ptr<const device::DeviceTable> TableService::resolve_cold(
    const std::string& key, const TableRequest& request) {
  trace::Span span("service", "resolve_cold");
  if (request.opts.use_cache && cross_process_lock_) {
    const std::string path = cache::path_for("device-table", key);
    FileLock lock(path + ".lock");
    // Another process may have finished the same generation while we
    // waited on the lockfile: its table is on disk now, load it directly.
    if (cache::exists(path)) {
      metrics::add(metrics::Counter::kTableCacheHits);
      return std::make_shared<const device::DeviceTable>(device::load_table(path));
    }
    return std::make_shared<const device::DeviceTable>(generator_(request.spec, request.opts));
  }
  return std::make_shared<const device::DeviceTable>(generator_(request.spec, request.opts));
}

std::shared_ptr<const device::DeviceTable> TableService::lookup_locked(const std::string& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);  // bump to most recent
  return it->second.table;
}

void TableService::insert_locked(const std::string& key,
                                 const std::shared_ptr<const device::DeviceTable>& table) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Lost a clear()-vs-leader race or a duplicate injection; keep the
    // resident entry (both are bit-identical by construction).
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  lru_.push_front(key);
  Entry entry;
  entry.table = table;
  entry.bytes = table_bytes(*table);
  entry.lru_pos = lru_.begin();
  bytes_ += entry.bytes;
  entries_.emplace(key, std::move(entry));
  // Evict from the cold end, but always retain the newest entry so a
  // single oversized table still gets pooled.
  while (bytes_ > capacity_bytes_ && entries_.size() > 1) {
    const std::string& victim = lru_.back();
    const auto vit = entries_.find(victim);
    bytes_ -= vit->second.bytes;
    entries_.erase(vit);
    lru_.pop_back();
    ++stats_.evictions;
    metrics::add(metrics::Counter::kTableServiceEvictions);
  }
  // Resident high-water, after eviction: transient pre-eviction overshoot
  // is not residency, so the gauge reflects what the pool actually held.
  if (bytes_ > stats_.peak_bytes) stats_.peak_bytes = bytes_;
}

TableService::Stats TableService::stats() const {
  common::MutexLock lk(mu_);
  Stats s = stats_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  return s;
}

void TableService::clear() {
  common::MutexLock lk(mu_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

}  // namespace gnrfet::service
