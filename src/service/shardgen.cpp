#include "service/shardgen.hpp"

#include <poll.h>

#include <cerrno>
#include <deque>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/cache.hpp"
#include "common/constants.hpp"
#include "common/contracts.hpp"
#include "common/env.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "device/sweeps.hpp"

namespace gnrfet::service {

namespace {

namespace sp = common::subprocess;

/// Frame types of the shard protocol (first payload byte).
constexpr uint8_t kShardRequest = 1;
constexpr uint8_t kShardResult = 2;
constexpr uint8_t kShardError = 3;

/// Give up when this many consecutive scheduler rounds neither dispatch a
/// shard nor have one in flight — freshly spawned workers dying before
/// accepting a single frame means something is systemically wrong (fork
/// failure, OOM killer) and retrying forever would hang the caller.
constexpr int kMaxFutileRounds = 64;

void encode_spec(sp::FrameWriter& w, const device::DeviceSpec& spec) {
  w.i32(spec.n_index);
  w.f64(spec.channel_length_nm);
  w.f64(spec.oxide_thickness_nm);
  w.f64(spec.oxide_eps_r);
  w.f64(spec.hopping_eV);
  w.f64(spec.edge_delta);
  w.f64(spec.contact_gamma_eV);
  w.i32(spec.num_modes);
  w.f64(spec.contact_margin_nm);
  w.f64(spec.lateral_margin_nm);
  w.f64(spec.grid_step_nm);
  w.u64(spec.impurities.size());
  for (const device::ChargeImpurity& imp : spec.impurities) {
    w.f64(imp.charge_e);
    w.f64(imp.x_nm);
    w.f64(imp.offset_y_nm);
    w.f64(imp.z_nm);
  }
}

device::DeviceSpec decode_spec(sp::FrameReader& r) {
  device::DeviceSpec spec;
  spec.n_index = r.i32();
  spec.channel_length_nm = r.f64();
  spec.oxide_thickness_nm = r.f64();
  spec.oxide_eps_r = r.f64();
  spec.hopping_eV = r.f64();
  spec.edge_delta = r.f64();
  spec.contact_gamma_eV = r.f64();
  spec.num_modes = r.i32();
  spec.contact_margin_nm = r.f64();
  spec.lateral_margin_nm = r.f64();
  spec.grid_step_nm = r.f64();
  const uint64_t n_imp = r.u64();
  spec.impurities.resize(n_imp);
  for (uint64_t i = 0; i < n_imp; ++i) {
    spec.impurities[i].charge_e = r.f64();
    spec.impurities[i].x_nm = r.f64();
    spec.impurities[i].offset_y_nm = r.f64();
    spec.impurities[i].z_nm = r.f64();
  }
  return spec;
}

void encode_solve(sp::FrameWriter& w, const device::SolveOptions& s) {
  w.f64(s.energy_step_eV);
  w.f64(s.eta_eV);
  w.f64(s.kT_eV);
  w.f64(s.gummel_tolerance_V);
  w.i32(s.max_gummel_iterations);
}

device::SolveOptions decode_solve(sp::FrameReader& r) {
  device::SolveOptions s;
  s.energy_step_eV = r.f64();
  s.eta_eV = r.f64();
  s.kT_eV = r.f64();
  s.gummel_tolerance_V = r.f64();
  s.max_gummel_iterations = r.i32();
  return s;
}

void encode_ctx(sp::FrameWriter& w, const negf::TransportContext& ctx) {
  w.u64(ctx.mode_edges.size());
  for (const std::vector<double>& edges : ctx.mode_edges) w.vec_f64(edges);
}

negf::TransportContext decode_ctx(sp::FrameReader& r) {
  negf::TransportContext ctx;
  const uint64_t n = r.u64();
  ctx.mode_edges.resize(n);
  for (uint64_t m = 0; m < n; ++m) ctx.mode_edges[m] = r.vec_f64();
  return ctx;
}

/// One shard request: everything a worker needs to run solve_table_column
/// bit-identically — spec, solve options, the column's drain bias and VG
/// axis, the head solution, and (when chaining) the context snapshot.
sp::Frame encode_request(const device::DeviceSpec& spec, const device::SolveOptions& solve,
                         bool chain_ctx, size_t column, double vd,
                         const std::vector<double>& vg, const device::DeviceSolution& head,
                         const negf::TransportContext* ctx) {
  sp::FrameWriter w;
  w.u8(kShardRequest);
  encode_spec(w, spec);
  encode_solve(w, solve);
  w.u8(chain_ctx ? 1 : 0);
  w.u64(column);
  w.f64(vd);
  w.vec_f64(vg);
  w.u8(head.converged ? 1 : 0);
  w.i32(head.iterations);
  w.f64(head.current_A);
  w.f64(head.net_electrons);
  w.vec_f64(head.phi_full);
  w.vec_f64(head.midgap_profile_eV);
  w.vec_f64(head.column_x_nm);
  if (chain_ctx) encode_ctx(w, ctx ? *ctx : negf::TransportContext{});
  return w.take();
}

/// Identity of the worker's cached geometry+solver: a worker serves many
/// columns of one table (and possibly several tables over its lifetime),
/// so it rebuilds the geometry only when the spec or solve options change.
std::string solver_cache_key(const device::DeviceSpec& spec, const device::SolveOptions& s) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << spec.cache_key() << "|de=" << s.energy_step_eV << ";eta=" << s.eta_eV
     << ";kT=" << s.kT_eV << ";gtol=" << s.gummel_tolerance_V
     << ";gmax=" << s.max_gummel_iterations;
  return os.str();
}

}  // namespace

ShardScheduler::ShardScheduler(ShardOptions opts) : opts_(std::move(opts)) {
  workers_ = opts_.workers >= 1
                 ? opts_.workers
                 : common::env::get_positive_int("GNRFET_TABLE_WORKERS", 4);
}

ShardScheduler::~ShardScheduler() = default;

device::DeviceTable ShardScheduler::generate(const device::DeviceSpec& spec,
                                             const device::TableGenOptions& opts) {
  trace::Span span("service", "shard_generate");
  const std::string payload = device::table_cache_payload(spec, opts);
  const std::string path = cache::path_for("device-table", payload);
  if (opts.use_cache && cache::exists(path)) {
    metrics::add(metrics::Counter::kTableCacheHits);
    return device::load_table(path);
  }
  if (opts.use_cache) metrics::add(metrics::Counter::kTableCacheMisses);
  device::DeviceTable table = generate_uncached(spec, opts);
  if (opts.use_cache) device::save_table(table, path, payload);
  return table;
}

device::DeviceTable ShardScheduler::generate_uncached(const device::DeviceSpec& spec,
                                                      const device::TableGenOptions& opts) {
  common::MutexLock lk(mu_);
  if (!pool_) {
    sp::WorkerPool::Spawner spawner;
    if (opts_.worker_argv.empty()) {
      spawner = [] {
        return sp::Worker::spawn(
            [](int request_fd, int response_fd) { return shard_worker_main(request_fd, response_fd); });
      };
    } else {
      const std::vector<std::string> argv = opts_.worker_argv;
      spawner = [argv] { return sp::Worker::spawn_exec(argv); };
    }
    pool_ = std::make_unique<sp::WorkerPool>(workers_, std::move(spawner));
  }
  // Safe here: nothing is in flight between generate() calls.
  pool_->ensure_full();

  const device::DeviceGeometry geometry(spec);
  const device::SelfConsistentSolver solver(geometry, opts.solve);

  device::DeviceTable table;
  table.vg = device::voltage_axis(opts.vg_min, opts.vg_max, opts.vg_points);
  table.vd = device::voltage_axis(opts.vd_min, opts.vd_max, opts.vd_points);
  table.current_A.assign(opts.vg_points * opts.vd_points, 0.0);
  table.charge_C.assign(opts.vg_points * opts.vd_points, 0.0);
  table.band_gap_eV = geometry.modes().band_gap_eV();

  // Phase 1 in-process: the serial head row (identical to the unsharded
  // path). Phase 2 ships each column to a worker.
  const size_t nvd = table.vd.size();
  const size_t nvg = table.vg.size();
  device::TableHeadRow row = device::solve_table_heads(solver, table.vg, table.vd, opts);
  for (size_t id = 0; id < nvd; ++id) {
    table.current_A[id] = row.heads[id].current_A;
    table.charge_C[id] = -constants::kElementaryCharge * row.heads[id].net_electrons;
  }
  if (nvg <= 1) return table;

  try {
    const size_t nw = pool_->size();
    std::deque<size_t> queue;
    for (size_t id = 0; id < nvd; ++id) queue.push_back(id);
    // slot_col[i]: the column slot i is computing, or npos when idle.
    constexpr size_t kIdle = std::numeric_limits<size_t>::max();
    std::vector<size_t> slot_col(nw, kIdle);
    size_t completed = 0;
    int futile_rounds = 0;

    while (completed < nvd) {
      // Assign queued columns to idle slots, respawning dead ones first.
      bool dispatched_this_round = false;
      for (size_t i = 0; i < nw && !queue.empty(); ++i) {
        if (slot_col[i] != kIdle) continue;
        if (!pool_->at(i).valid() || !pool_->at(i).running()) pool_->respawn(i);
        const size_t col = queue.front();
        const sp::Frame req = encode_request(spec, opts.solve, row.chain_ctx, col, table.vd[col],
                                             table.vg, row.heads[col],
                                             row.chain_ctx ? &row.ctx[col] : nullptr);
        // A send failure means the fresh worker already died; leave the
        // column queued — the next round respawns the slot and retries.
        if (!pool_->at(i).send(req)) continue;
        queue.pop_front();
        slot_col[i] = col;
        dispatched_this_round = true;
        metrics::add(metrics::Counter::kTableShardDispatches);
        if (opts_.on_dispatch) opts_.on_dispatch(pool_->at(i).pid(), col);
      }

      // Collect the busy slots; with none, either everything is done or
      // every dispatch attempt failed (count those rounds, then give up).
      std::vector<struct pollfd> fds;
      std::vector<size_t> fd_slot;
      for (size_t i = 0; i < nw; ++i) {
        if (slot_col[i] == kIdle) continue;
        fds.push_back({pool_->at(i).response_fd(), POLLIN, 0});
        fd_slot.push_back(i);
      }
      if (fds.empty()) {
        if (completed >= nvd) break;
        futile_rounds = dispatched_this_round ? 0 : futile_rounds + 1;
        GNRFET_REQUIRE("service/shardgen", "workers-spawnable", futile_rounds < kMaxFutileRounds,
                       "table-shard workers keep dying before accepting work");
        continue;
      }
      futile_rounds = 0;

      int ready = ::poll(fds.data(), fds.size(), -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error("shardgen: poll failed on worker response channels");
      }
      for (size_t k = 0; k < fds.size(); ++k) {
        if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR))) continue;
        const size_t i = fd_slot[k];
        sp::Worker& w = pool_->at(i);
        sp::Frame resp;
        bool ok = false;
        try {
          ok = w.recv(resp);
        } catch (const std::exception&) {
          ok = false;  // torn frame: the worker died mid-write — retry below
        }
        if (!ok) {
          // Crash mid-shard: requeue the column and reap; the assign step
          // respawns the slot next round. Recomputation is bit-identical,
          // so the final table cannot depend on the crash history.
          queue.push_front(slot_col[i]);
          slot_col[i] = kIdle;
          w.wait();
          metrics::add(metrics::Counter::kTableShardRetries);
          continue;
        }
        sp::FrameReader r(resp);
        const uint8_t type = r.u8();
        if (type == kShardError) {
          // In-band worker failure (contract violation, solver exception):
          // deterministic, so a retry would fail identically. Propagate.
          throw std::runtime_error("shardgen: worker failed: " + r.str());
        }
        if (type != kShardResult) {
          throw std::runtime_error("shardgen: unexpected frame type " + std::to_string(type) +
                                   " from worker");
        }
        const size_t col = static_cast<size_t>(r.u64());
        const std::vector<double> current = r.vec_f64();
        const std::vector<double> charge = r.vec_f64();
        GNRFET_ENSURE("service/shardgen", "shard-result-shape",
                      col < nvd && col == slot_col[i] && current.size() == nvg - 1 &&
                          charge.size() == nvg - 1,
                      "worker returned column " + std::to_string(col) + " with " +
                          std::to_string(current.size()) + " entries");
        for (size_t ig = 1; ig < nvg; ++ig) {
          table.current_A[ig * nvd + col] = current[ig - 1];
          table.charge_C[ig * nvd + col] = charge[ig - 1];
        }
        slot_col[i] = kIdle;
        ++completed;
      }
    }
  } catch (...) {
    // A thrown scheduler leaves workers mid-shard; their late responses
    // would desynchronize the next generate(). Tear the pool down — the
    // next call respawns it clean.
    pool_.reset();
    throw;
  }

  return table;
}

int shard_worker_main(int request_fd, int response_fd) {
  // The worker may be a fork-entry child of a threaded parent: the pool's
  // threads did not survive the fork, so all compute must run inline.
  par::pin_inline();
  // Any inherited trace path belongs to the parent; an exec-mode worker
  // flushing it at exit would clobber the parent's trace file.
  common::env_clear("GNRFET_TRACE");

  // Geometry + solver are cached across requests: one worker serves many
  // columns of the same table.
  std::string cached_key;
  std::unique_ptr<device::DeviceGeometry> geometry;
  std::unique_ptr<device::SelfConsistentSolver> solver;

  sp::Frame req;
  while (sp::read_frame(request_fd, req)) {
    sp::FrameWriter out;
    try {
      sp::FrameReader r(req);
      const uint8_t type = r.u8();
      if (type != kShardRequest) {
        throw std::runtime_error("unexpected frame type " + std::to_string(type));
      }
      const device::DeviceSpec spec = decode_spec(r);
      const device::SolveOptions solve = decode_solve(r);
      const bool chain_ctx = r.u8() != 0;
      const size_t column = static_cast<size_t>(r.u64());
      const double vd = r.f64();
      const std::vector<double> vg = r.vec_f64();
      device::DeviceSolution head;
      head.converged = r.u8() != 0;
      head.iterations = r.i32();
      head.current_A = r.f64();
      head.net_electrons = r.f64();
      head.phi_full = r.vec_f64();
      head.midgap_profile_eV = r.vec_f64();
      head.column_x_nm = r.vec_f64();
      negf::TransportContext ctx;
      if (chain_ctx) ctx = decode_ctx(r);

      const std::string key = solver_cache_key(spec, solve);
      if (key != cached_key || !solver) {
        solver.reset();
        geometry = std::make_unique<device::DeviceGeometry>(spec);
        solver = std::make_unique<device::SelfConsistentSolver>(*geometry, solve);
        cached_key = key;
      }
      const device::TableColumnResult col =
          device::solve_table_column(*solver, vg, vd, head, chain_ctx ? &ctx : nullptr);
      out.u8(kShardResult);
      out.u64(column);
      out.vec_f64(col.current_A);
      out.vec_f64(col.charge_C);
    } catch (const std::exception& e) {
      out = sp::FrameWriter();
      out.u8(kShardError);
      out.str(e.what());
    }
    if (!sp::write_frame(response_fd, out.frame())) return 0;  // parent gone
  }
  return 0;
}

}  // namespace gnrfet::service
