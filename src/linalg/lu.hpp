#pragma once

#include "linalg/dense.hpp"

/// LU factorization with partial pivoting for the dense complex blocks used
/// in the recursive Green's function sweeps (matrix inverse and linear
/// solves on blocks of dimension up to ~2N).
namespace gnrfet::linalg {

/// In-place LU decomposition holder. Throws std::runtime_error on a
/// numerically singular pivot (|pivot| below an absolute floor).
class LU {
 public:
  /// Empty factorization; call factor() before solving. Exists so a
  /// long-lived workspace (negf::RgfWorkspace) can refactor block after
  /// block without reallocating the pivot storage.
  LU() = default;
  explicit LU(CMatrix a);

  /// Refactor in place: copies `a` into the internal storage (allocation
  /// reused when shapes repeat) and runs the same elimination as the
  /// constructor — results are bit-identical to a fresh LU(a).
  void factor(const CMatrix& a);

  /// Solve A x = b for a single right-hand side.
  std::vector<cplx> solve(const std::vector<cplx>& b) const;

  /// Solve A X = B column-by-column.
  CMatrix solve(const CMatrix& b) const;

  /// Solve A X = B into caller-owned X (allocation reused). Performs the
  /// identical arithmetic sequence as solve(b), substituting in place on
  /// X's columns, so the two are bit-identical. B must not alias X.
  void solve_into(const CMatrix& b, CMatrix& x) const;

  /// log|det A| (natural log of absolute determinant), for diagnostics.
  double log_abs_det() const;

 private:
  CMatrix lu_;
  std::vector<size_t> perm_;
  int sign_ = 1;
};

/// Convenience: matrix inverse via LU. Throws on singular input.
CMatrix inverse(const CMatrix& a);

/// Real-valued variants (used by the compact CMOS model calibration and the
/// circuit simulator's Newton solves).
class LUReal {
 public:
  explicit LUReal(DMatrix a);
  std::vector<double> solve(const std::vector<double>& b) const;

 private:
  DMatrix lu_;
  std::vector<size_t> perm_;
};

}  // namespace gnrfet::linalg
