#include "linalg/eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace gnrfet::linalg {

namespace {

/// Off-diagonal Frobenius norm squared.
double offdiag_norm2(const CMatrix& a) {
  double s = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      if (i != j) s += std::norm(a(i, j));
    }
  }
  return s;
}

/// One complex Jacobi rotation zeroing a(p,q). Updates A (Hermitian) and
/// accumulates the rotation into V.
void jacobi_rotate(CMatrix& a, CMatrix& v, size_t p, size_t q) {
  const cplx apq = a(p, q);
  if (std::abs(apq) == 0.0) return;
  const double app = a(p, p).real();
  const double aqq = a(q, q).real();
  // Phase so the effective off-diagonal element is real.
  const cplx phase = apq / std::abs(apq);
  const double g = std::abs(apq);
  const double tau = (aqq - app) / (2.0 * g);
  const double t = (tau >= 0.0 ? 1.0 : -1.0) / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  const double s = t * c;
  const cplx sp = s * phase;  // complex sine including phase

  const size_t n = a.rows();
  for (size_t k = 0; k < n; ++k) {
    const cplx akp = a(k, p);
    const cplx akq = a(k, q);
    a(k, p) = c * akp - std::conj(sp) * akq;
    a(k, q) = sp * akp + c * akq;
  }
  for (size_t k = 0; k < n; ++k) {
    const cplx apk = a(p, k);
    const cplx aqk = a(q, k);
    a(p, k) = c * apk - sp * aqk;
    a(q, k) = std::conj(sp) * apk + c * aqk;
  }
  for (size_t k = 0; k < n; ++k) {
    const cplx vkp = v(k, p);
    const cplx vkq = v(k, q);
    v(k, p) = c * vkp - std::conj(sp) * vkq;
    v(k, q) = sp * vkp + c * vkq;
  }
  // Clean up rounding on the zeroed pair.
  a(p, q) = 0.0;
  a(q, p) = 0.0;
}

}  // namespace

EigResult eigh(const CMatrix& input) {
  const size_t n = input.rows();
  if (input.cols() != n) throw std::invalid_argument("eigh: matrix must be square");
  // Verify Hermiticity and symmetrize.
  CMatrix a = hermitian_part(input);
  {
    CMatrix anti = input;
    anti -= a;
    const double scale = std::max(1.0, frobenius_norm(a));
    if (frobenius_norm(anti) > 1e-8 * scale) {
      throw std::invalid_argument("eigh: input is not Hermitian");
    }
  }
  CMatrix v = CMatrix::identity(n);
  const double norm2 = std::max(offdiag_norm2(a), 1e-300);
  const double tol2 = 1e-26 * std::max(1.0, norm2);
  for (int sweep = 0; sweep < 100; ++sweep) {
    if (offdiag_norm2(a) <= tol2) break;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        if (std::norm(a(p, q)) > tol2 / (double(n) * double(n))) {
          jacobi_rotate(a, v, p, q);
        }
      }
    }
  }
  EigResult r;
  r.values.resize(n);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = a(i, i).real();
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) { return diag[x] < diag[y]; });
  r.vectors = CMatrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    r.values[j] = diag[order[j]];
    for (size_t i = 0; i < n; ++i) r.vectors(i, j) = v(i, order[j]);
  }
  return r;
}

std::vector<double> eigvals_symmetric(const DMatrix& a) {
  CMatrix c(a.rows(), a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) c(i, j) = a(i, j);
  }
  return eigh(c).values;
}

}  // namespace gnrfet::linalg
