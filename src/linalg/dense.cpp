#include "linalg/dense.hpp"

#include <cmath>

namespace gnrfet::linalg {

namespace {
template <typename T>
double frob(const Matrix<T>& m) {
  double s = 0.0;
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) s += std::norm(cplx(m(i, j)));
  }
  return std::sqrt(s);
}
}  // namespace

double frobenius_norm(const CMatrix& m) { return frob(m); }
double frobenius_norm(const DMatrix& m) { return frob(m); }

CMatrix hermitian_part(const CMatrix& a) {
  CMatrix h = a;
  const CMatrix ad = a.adjoint();
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      h(i, j) = 0.5 * (a(i, j) + ad(i, j));
    }
  }
  return h;
}

std::vector<double> real_diagonal(const CMatrix& a) {
  std::vector<double> d(std::min(a.rows(), a.cols()));
  for (size_t i = 0; i < d.size(); ++i) d[i] = a(i, i).real();
  return d;
}

}  // namespace gnrfet::linalg
