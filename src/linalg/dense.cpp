#include "linalg/dense.hpp"

#include <algorithm>
#include <cmath>

namespace gnrfet::linalg {

namespace {
template <typename T>
double frob(const Matrix<T>& m) {
  double s = 0.0;
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) s += std::norm(cplx(m(i, j)));
  }
  return std::sqrt(s);
}
}  // namespace

double frobenius_norm(const CMatrix& m) { return frob(m); }
double frobenius_norm(const DMatrix& m) { return frob(m); }

CMatrix hermitian_part(const CMatrix& a) {
  CMatrix h = a;
  const CMatrix ad = a.adjoint();
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      h(i, j) = 0.5 * (a(i, j) + ad(i, j));
    }
  }
  return h;
}

std::vector<double> real_diagonal(const CMatrix& a) {
  std::vector<double> d(std::min(a.rows(), a.cols()));
  for (size_t i = 0; i < d.size(); ++i) d[i] = a(i, i).real();
  return d;
}

void multiply_into(CMatrix& c, const CMatrix& a, const CMatrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("multiply_into: shape mismatch");
  c.resize_zero(a.rows(), b.cols());
  const size_t n = a.rows();
  const size_t kk = a.cols();
  const size_t m = b.cols();
  const double* ad = reinterpret_cast<const double*>(a.data());
  const double* bd = reinterpret_cast<const double*>(b.data());
  double* cd = reinterpret_cast<double*>(c.data());
  // k-tiles keep the touched rows of b resident across i. For a fixed
  // (i, j) the tiles arrive in ascending k — the template's accumulation
  // order exactly, so results stay bit-identical.
  constexpr size_t kTileK = 32;
  for (size_t k0 = 0; k0 < kk; k0 += kTileK) {
    const size_t k1 = std::min(kk, k0 + kTileK);
    for (size_t i = 0; i < n; ++i) {
      const double* arow = ad + 2 * i * kk;
      double* crow = cd + 2 * i * m;
      for (size_t k = k0; k < k1; ++k) {
        const double ar = arow[2 * k];
        const double ai = arow[2 * k + 1];
        if (ar == 0.0 && ai == 0.0) continue;
        const double* brow = bd + 2 * k * m;
        for (size_t j = 0; j < m; ++j) {
          const double br = brow[2 * j];
          const double bi = brow[2 * j + 1];
          crow[2 * j] += ar * br - ai * bi;
          crow[2 * j + 1] += ar * bi + ai * br;
        }
      }
    }
  }
}

void adjoint_into(CMatrix& dst, const CMatrix& src) {
  dst.resize_zero(src.cols(), src.rows());
  const size_t n = src.rows();
  const size_t m = src.cols();
  // Square tiles bound the transpose's strided-write working set to a few
  // cache lines per tile; conjugation is exact, so order is free.
  constexpr size_t kTile = 16;
  for (size_t i0 = 0; i0 < n; i0 += kTile) {
    const size_t i1 = std::min(n, i0 + kTile);
    for (size_t j0 = 0; j0 < m; j0 += kTile) {
      const size_t j1 = std::min(m, j0 + kTile);
      for (size_t i = i0; i < i1; ++i) {
        for (size_t j = j0; j < j1; ++j) dst(j, i) = std::conj(src(i, j));
      }
    }
  }
}

}  // namespace gnrfet::linalg
