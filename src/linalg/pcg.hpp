#pragma once

#include "linalg/sparse.hpp"

/// Preconditioned conjugate gradient for the (symmetric positive definite)
/// Poisson systems. Jacobi preconditioning is sufficient here because the
/// Gummel loop warm-starts each solve from the previous potential.
namespace gnrfet::linalg {

struct PcgOptions {
  double rel_tolerance = 1e-10;
  double abs_tolerance = 1e-14;
  size_t max_iterations = 20000;
};

struct PcgResult {
  bool converged = false;
  size_t iterations = 0;
  double residual_norm = 0.0;
};

/// Solves A x = b in place; `x` provides the initial guess.
PcgResult pcg_solve(const SparseMatrix& a, const std::vector<double>& b,
                    std::vector<double>& x, const PcgOptions& opts = {});

}  // namespace gnrfet::linalg
