#pragma once

#include "linalg/kernels.hpp"
#include "linalg/preconditioner.hpp"
#include "linalg/sparse.hpp"

/// Preconditioned conjugate gradient for the (symmetric positive definite)
/// Poisson systems. The preconditioner is injectable (Jacobi baseline,
/// SSOR, IC(0) — see linalg/preconditioner.hpp); callers on a hot loop
/// pass a PcgWorkspace so the four iteration vectors are allocated once
/// and reused across solves.
namespace gnrfet::linalg {

/// Reusable iteration vectors. Contents are scratch: every solve fully
/// overwrites them, and reusing one workspace across solves is
/// bit-identical to using a fresh one.
struct PcgWorkspace {
  std::vector<double> r, z, p, ap;
};

struct PcgOptions {
  double rel_tolerance = 1e-10;
  double abs_tolerance = 1e-14;
  size_t max_iterations = 20000;
  /// Preconditioner to apply (must be factored for the system matrix).
  /// Null selects an internal per-call Jacobi, the pre-preconditioner
  /// behavior.
  const Preconditioner* preconditioner = nullptr;
  /// Reduction order for the dot products (see linalg/kernels.hpp).
  /// kSequential reproduces the pre-preconditioner solver bit-for-bit;
  /// kPairwise is the accuracy-oriented default.
  kernels::SumOrder sum_order = kernels::SumOrder::kPairwise;
  /// Optional reusable vectors; null falls back to per-call allocation.
  PcgWorkspace* workspace = nullptr;
};

struct PcgResult {
  bool converged = false;
  size_t iterations = 0;
  double residual_norm = 0.0;
};

/// Solves A x = b in place; `x` provides the initial guess.
PcgResult pcg_solve(const SparseMatrix& a, const std::vector<double>& b,
                    std::vector<double>& x, const PcgOptions& opts = {});

}  // namespace gnrfet::linalg
