#pragma once

#include <cstddef>
#include <vector>

/// Shared scalar kernels for the iterative-solver stack (PCG and the
/// preconditioner sweeps). Every reduction here runs in ONE documented,
/// input-independent order, so results are bit-reproducible run-to-run
/// and thread-count-to-thread-count (each solve runs on a single thread;
/// parallelism is across solves).
///
/// Two summation orders are provided:
///
///  - kSequential: strict left-to-right accumulation. This is the order
///    the original pcg_solve used; it is kept selectable because the
///    GNRFET_POISSON_PC=jacobi baseline path is pinned bit-for-bit to the
///    pre-preconditioner solver.
///  - kPairwise: blocked pairwise (tree) summation — the vector is cut
///    into fixed 32-element blocks accumulated left-to-right, and block
///    sums are combined by recursive halving. Rounding error grows
///    O(log n) instead of O(n), which matters for the 1e-9 relative
///    tolerances of the inner Newton solves on grids with ~1e5 nodes.
///    This is the default for the ic0/ssor production paths.
namespace gnrfet::linalg::kernels {

enum class SumOrder {
  kSequential,  ///< left-to-right; bit-compatible with the pre-PR solver
  kPairwise,    ///< blocked pairwise; default accuracy-oriented order
};

/// Inner product a . b over n entries in the given summation order.
double dot(const double* a, const double* b, size_t n, SumOrder order);

inline double dot(const std::vector<double>& a, const std::vector<double>& b, SumOrder order) {
  return dot(a.data(), b.data(), a.size(), order);
}

/// y += alpha * x (element-wise; no reduction, bit-identical in any order).
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// p = z + beta * p (the PCG direction update).
void xpby(const std::vector<double>& z, double beta, std::vector<double>& p);

/// Row-segment accumulator for sparse triangular sweeps: returns
/// sum_k values[k] * x[col[k]] for k in [begin, end). Rows of the Poisson
/// stencil hold at most 7 entries, so this always runs sequentially —
/// which IS the documented order for the preconditioner sweeps.
double gather_dot(const double* values, const size_t* col, size_t begin, size_t end,
                  const double* x);

}  // namespace gnrfet::linalg::kernels
