#include "linalg/preconditioner.hpp"

#include <cmath>
#include <stdexcept>

#include "common/metrics.hpp"
#include "linalg/kernels.hpp"

namespace gnrfet::linalg {

namespace {

/// Matches the escalation used by shifted-IC implementations: start
/// unshifted, then 1e-3 relative, then x10 per retry.
constexpr double kFirstShift = 1e-3;
constexpr double kMaxShift = 1e3;

void record_setup() { metrics::add(metrics::Counter::kPcgPrecondSetups); }

}  // namespace

// ---------------------------------------------------------------- Jacobi

void JacobiPreconditioner::factor(const SparseMatrix& a) {
  inv_diag_ = a.diagonal();
  // Same guard and formula as the pre-preconditioner pcg_solve: the
  // GNRFET_POISSON_PC=jacobi path must stay bit-identical to it.
  for (auto& d : inv_diag_) d = (std::abs(d) > 1e-300) ? 1.0 / d : 1.0;
  record_setup();
}

void JacobiPreconditioner::apply(const std::vector<double>& r, std::vector<double>& z) const {
  if (r.size() != inv_diag_.size()) {
    throw std::invalid_argument("JacobiPreconditioner::apply: size mismatch");
  }
  z.resize(r.size());
  for (size_t i = 0; i < r.size(); ++i) z[i] = inv_diag_[i] * r[i];
}

// ------------------------------------------------------------------ SSOR

SsorPreconditioner::SsorPreconditioner(double omega) : omega_(omega) {
  if (!(omega > 0.0 && omega < 2.0)) {
    throw std::invalid_argument("SsorPreconditioner: omega must be in (0, 2)");
  }
}

void SsorPreconditioner::factor(const SparseMatrix& a) {
  const size_t n = a.dim();
  a_ = &a;
  diag_idx_.assign(n, 0);
  omega_inv_diag_.assign(n, 0.0);
  const auto& row_ptr = a.row_ptr();
  const auto& col = a.col_idx();
  for (size_t i = 0; i < n; ++i) {
    size_t pos = row_ptr[i + 1];
    for (size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      if (col[k] == i) pos = k;
    }
    if (pos == row_ptr[i + 1]) {
      throw std::invalid_argument("SsorPreconditioner: row without diagonal entry");
    }
    diag_idx_[i] = pos;
    const double d = a.values()[pos];
    if (!(d > 0.0)) {
      throw std::invalid_argument("SsorPreconditioner: non-positive diagonal");
    }
    omega_inv_diag_[i] = omega_ / d;
  }
  t_.assign(n, 0.0);
  record_setup();
}

void SsorPreconditioner::refactor(const SparseMatrix& a) {
  if (a_ != &a || diag_idx_.size() != a.dim()) {
    factor(a);
    return;
  }
  // Pattern unchanged: only the diagonal scale needs refreshing.
  for (size_t i = 0; i < a.dim(); ++i) {
    const double d = a.values()[diag_idx_[i]];
    if (!(d > 0.0)) {
      throw std::invalid_argument("SsorPreconditioner: non-positive diagonal");
    }
    omega_inv_diag_[i] = omega_ / d;
  }
  record_setup();
}

void SsorPreconditioner::apply(const std::vector<double>& r, std::vector<double>& z) const {
  if (a_ == nullptr || r.size() != diag_idx_.size()) {
    throw std::invalid_argument("SsorPreconditioner::apply: not factored / size mismatch");
  }
  const size_t n = r.size();
  const auto& row_ptr = a_->row_ptr();
  const auto& col = a_->col_idx();
  const double* val = a_->values().data();
  const size_t* cols = col.data();
  z.resize(n);
  // Forward sweep: (D/w + L) t = r. Columns are sorted, so the strict
  // lower part of row i is exactly [row_ptr[i], diag_idx_[i]).
  for (size_t i = 0; i < n; ++i) {
    const double s = kernels::gather_dot(val, cols, row_ptr[i], diag_idx_[i], t_.data());
    t_[i] = (r[i] - s) * omega_inv_diag_[i];
  }
  // Scale by D/w, then backward sweep: (D/w + U) z = (D/w) t.
  for (size_t i = n; i-- > 0;) {
    const double s =
        kernels::gather_dot(val, cols, diag_idx_[i] + 1, row_ptr[i + 1], z.data());
    z[i] = (t_[i] / omega_inv_diag_[i] - s) * omega_inv_diag_[i];
  }
}

// ----------------------------------------------------------------- IC(0)

IncompleteCholesky::IncompleteCholesky(double drop_compensation) : theta_(drop_compensation) {
  if (!(theta_ >= 0.0 && theta_ <= 1.0)) {
    throw std::invalid_argument("IncompleteCholesky: drop_compensation must be in [0, 1]");
  }
}

void IncompleteCholesky::factor(const SparseMatrix& a) {
  const size_t n = a.dim();
  n_ = n;
  const auto& row_ptr = a.row_ptr();
  const auto& col = a.col_idx();

  // Symbolic: L takes the lower-triangular pattern of A, diagonal last in
  // each row (columns are sorted, so that is simply the j <= i prefix).
  lrow_ptr_.assign(n + 1, 0);
  lcol_.clear();
  amap_.clear();
  for (size_t i = 0; i < n; ++i) {
    lrow_ptr_[i] = lcol_.size();
    bool has_diag = false;
    for (size_t k = row_ptr[i]; k < row_ptr[i + 1] && col[k] <= i; ++k) {
      lcol_.push_back(col[k]);
      amap_.push_back(k);
      has_diag |= (col[k] == i);
    }
    if (!has_diag) {
      throw std::invalid_argument("IncompleteCholesky: row without diagonal entry");
    }
  }
  lrow_ptr_[n] = lcol_.size();
  lval_.assign(lcol_.size(), 0.0);
  inv_ldiag_.assign(n, 0.0);
  y_.assign(n, 0.0);

  // Strict upper part of L^T for the backward sweep: entry (i, j) of L
  // with j < i lands in row j, column i. Filling in ascending i keeps the
  // columns of each L^T row sorted.
  urow_ptr_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = lrow_ptr_[i]; k + 1 < lrow_ptr_[i + 1]; ++k) ++urow_ptr_[lcol_[k] + 1];
  }
  for (size_t i = 0; i < n; ++i) urow_ptr_[i + 1] += urow_ptr_[i];
  ucol_.assign(urow_ptr_[n], 0);
  umap_.assign(urow_ptr_[n], 0);
  uval_.assign(urow_ptr_[n], 0.0);
  std::vector<size_t> next(urow_ptr_.begin(), urow_ptr_.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = lrow_ptr_[i]; k + 1 < lrow_ptr_[i + 1]; ++k) {
      const size_t slot = next[lcol_[k]]++;
      ucol_[slot] = i;
      umap_[slot] = k;
    }
  }

  shift_ = 0.0;
  refactor_numeric(a);
}

void IncompleteCholesky::refactor(const SparseMatrix& a) {
  if (n_ != a.dim() || lrow_ptr_.empty()) {
    factor(a);
    return;
  }
  refactor_numeric(a);
}

/// Numeric (M)IC(0) on the stored pattern: right-looking column
/// elimination with dropped fill compensated onto the diagonal (weight
/// theta_), plus the diagonal-shift retry loop. Keeps any previously
/// needed shift (retrying from zero every Newton iteration would thrash);
/// escalates further on new breakdowns. Update order is column-major,
/// left-to-right — fixed, so the factorization is bit-deterministic.
void IncompleteCholesky::refactor_numeric(const SparseMatrix& a) {
  const double* aval = a.values().data();
  for (;;) {
    // (Re)load the lower-triangular values of A, shift applied to the
    // diagonal (relative to |A(ii)|).
    for (size_t k = 0; k < lval_.size(); ++k) lval_[k] = aval[amap_[k]];
    if (shift_ != 0.0) {
      for (size_t i = 0; i < n_; ++i) {
        const size_t diag_k = lrow_ptr_[i + 1] - 1;
        const double aii = lval_[diag_k];
        lval_[diag_k] = aii + shift_ * (std::abs(aii) > 0.0 ? std::abs(aii) : 1.0);
      }
    }

    bool breakdown = false;
    for (size_t j = 0; j < n_ && !breakdown; ++j) {
      const size_t diag_j = lrow_ptr_[j + 1] - 1;
      const double d = lval_[diag_j];
      const double ajj = aval[amap_[diag_j]];
      const double scale = std::abs(ajj) > 0.0 ? std::abs(ajj) : 1.0;
      if (!(d > 1e-12 * scale)) {
        breakdown = true;
        break;
      }
      lval_[diag_j] = std::sqrt(d);
      inv_ldiag_[j] = 1.0 / lval_[diag_j];
      // Scale column j (rows i > j live in the transpose index).
      const size_t cb = urow_ptr_[j];
      const size_t ce = urow_ptr_[j + 1];
      for (size_t u = cb; u < ce; ++u) lval_[umap_[u]] *= inv_ldiag_[j];
      // Schur update: S(i2, i1) -= L(i1, j) L(i2, j) for i2 >= i1 > j.
      // In-pattern targets are updated in place; dropped fill is folded
      // onto the two diagonals it would have coupled (MIC row-sum
      // preservation), weighted by theta_.
      for (size_t u1 = cb; u1 < ce; ++u1) {
        const size_t i1 = ucol_[u1];
        const double v1 = lval_[umap_[u1]];
        for (size_t u2 = u1; u2 < ce; ++u2) {
          const size_t i2 = ucol_[u2];
          const double upd = v1 * lval_[umap_[u2]];
          // Find position (i2, i1) in row i2 (sorted, <= 7 entries).
          size_t pos = lrow_ptr_[i2 + 1];
          for (size_t k = lrow_ptr_[i2]; k < lrow_ptr_[i2 + 1]; ++k) {
            if (lcol_[k] == i1) {
              pos = k;
              break;
            }
            if (lcol_[k] > i1) break;
          }
          if (pos != lrow_ptr_[i2 + 1]) {
            lval_[pos] -= upd;
          } else if (theta_ != 0.0) {
            lval_[lrow_ptr_[i1 + 1] - 1] -= theta_ * upd;
            lval_[lrow_ptr_[i2 + 1] - 1] -= theta_ * upd;
          }
        }
      }
    }
    if (!breakdown) break;
    shift_ = shift_ == 0.0 ? kFirstShift : shift_ * 10.0;
    if (shift_ > kMaxShift) {
      throw std::runtime_error(
          "IncompleteCholesky: breakdown persists at maximum diagonal shift");
    }
  }
  for (size_t u = 0; u < umap_.size(); ++u) uval_[u] = lval_[umap_[u]];
  record_setup();
}

void IncompleteCholesky::apply(const std::vector<double>& r, std::vector<double>& z) const {
  if (r.size() != n_ || lrow_ptr_.empty()) {
    throw std::invalid_argument("IncompleteCholesky::apply: not factored / size mismatch");
  }
  z.resize(n_);
  // Forward: L y = r (diagonal is the last entry of each L row).
  for (size_t i = 0; i < n_; ++i) {
    const size_t diag_k = lrow_ptr_[i + 1] - 1;
    const double s = kernels::gather_dot(lval_.data(), lcol_.data(), lrow_ptr_[i], diag_k,
                                         y_.data());
    y_[i] = (r[i] - s) * inv_ldiag_[i];
  }
  // Backward: L^T z = y, strict upper part stored row-wise in ucol_/uval_.
  for (size_t i = n_; i-- > 0;) {
    const double s = kernels::gather_dot(uval_.data(), ucol_.data(), urow_ptr_[i],
                                         urow_ptr_[i + 1], z.data());
    z[i] = (y_[i] - s) * inv_ldiag_[i];
  }
}

// --------------------------------------------------------------- factory

PreconditionerKind preconditioner_kind_from_string(const std::string& s) {
  if (s == "jacobi") return PreconditionerKind::kJacobi;
  if (s == "ssor") return PreconditionerKind::kSsor;
  if (s == "ic0") return PreconditionerKind::kIc0;
  if (s == "mg") return PreconditionerKind::kMg;
  throw std::invalid_argument("unknown preconditioner '" + s +
                              "' (expected jacobi, ssor, ic0, or mg)");
}

const char* to_string(PreconditionerKind kind) {
  switch (kind) {
    case PreconditionerKind::kJacobi:
      return "jacobi";
    case PreconditionerKind::kSsor:
      return "ssor";
    case PreconditionerKind::kIc0:
      return "ic0";
    case PreconditionerKind::kMg:
      return "mg";
  }
  return "unknown";
}

std::unique_ptr<Preconditioner> make_preconditioner(PreconditionerKind kind) {
  switch (kind) {
    case PreconditionerKind::kJacobi:
      return std::make_unique<JacobiPreconditioner>();
    case PreconditionerKind::kSsor:
      return std::make_unique<SsorPreconditioner>();
    case PreconditionerKind::kIc0:
      return std::make_unique<IncompleteCholesky>();
    case PreconditionerKind::kMg:
      throw std::invalid_argument(
          "make_preconditioner: mg needs grid geometry; construct "
          "poisson::MultigridPreconditioner from the Assembly instead");
  }
  throw std::invalid_argument("make_preconditioner: unknown kind");
}

}  // namespace gnrfet::linalg
