#include "linalg/kernels.hpp"

namespace gnrfet::linalg::kernels {

namespace {

constexpr size_t kBlock = 32;

double dot_sequential(const double* a, const double* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

/// Pairwise over [0, n): sequential below one block, recursive halving
/// above. The split point is the largest multiple of kBlock at or above
/// n/2, so the recursion shape depends only on n — never on the data.
double dot_pairwise(const double* a, const double* b, size_t n) {
  if (n <= kBlock) return dot_sequential(a, b, n);
  size_t half = (n / 2 + kBlock - 1) / kBlock * kBlock;
  if (half >= n) half = n - kBlock;
  return dot_pairwise(a, b, half) + dot_pairwise(a + half, b + half, n - half);
}

}  // namespace

double dot(const double* a, const double* b, size_t n, SumOrder order) {
  return order == SumOrder::kSequential ? dot_sequential(a, b, n) : dot_pairwise(a, b, n);
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void xpby(const std::vector<double>& z, double beta, std::vector<double>& p) {
  for (size_t i = 0; i < z.size(); ++i) p[i] = z[i] + beta * p[i];
}

double gather_dot(const double* values, const size_t* col, size_t begin, size_t end,
                  const double* x) {
  double s = 0.0;
  for (size_t k = begin; k < end; ++k) s += values[k] * x[col[k]];
  return s;
}

}  // namespace gnrfet::linalg::kernels
