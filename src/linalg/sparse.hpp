#pragma once

#include <cstddef>
#include <vector>

/// Compressed-sparse-row matrix for the 3D Poisson operator.
namespace gnrfet::linalg {

/// Triplet accumulator -> CSR. Duplicate (row, col) entries are summed,
/// which makes element-by-element assembly of the Poisson stencil natural.
class SparseBuilder {
 public:
  explicit SparseBuilder(size_t n) : n_(n) {}
  void add(size_t row, size_t col, double value);
  size_t dim() const { return n_; }

  struct Triplet {
    size_t row, col;
    double value;
  };
  const std::vector<Triplet>& triplets() const { return trips_; }

 private:
  size_t n_;
  std::vector<Triplet> trips_;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;
  explicit SparseMatrix(const SparseBuilder& b);

  size_t dim() const { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }

  /// y = A x.
  void multiply(const std::vector<double>& x, std::vector<double>& y) const;

  /// Diagonal entries (zero where absent), for Jacobi preconditioning.
  std::vector<double> diagonal() const;

  /// Add `value` to the diagonal entry of `row`. The entry must exist
  /// (Poisson assembly always creates diagonals); throws otherwise.
  /// Used by the nonlinear Poisson Newton loop to update the Jacobian
  /// without re-assembling the Laplacian.
  void add_to_diagonal(size_t row, double value);

  /// Overwrite the diagonal entry of `row` (same existence rule as
  /// add_to_diagonal). Lets a persistent Jacobian copy be retargeted each
  /// Newton iteration — diag(A) + charge term — without rebuilding or
  /// restoring the full value array.
  void set_diagonal(size_t row, double value);

  /// Diagonal entry of `row`, or 0 when absent.
  double diagonal_at(size_t row) const {
    return diag_pos_[row] >= 0 ? values_[static_cast<size_t>(diag_pos_[row])] : 0.0;
  }

  /// Overwrite every stored value while keeping the sparsity pattern.
  /// `values` must match the current nonzero count; throws otherwise.
  /// Pairs with values(): snapshot a pristine operator once, then restore
  /// it after diagonal edits instead of copying the whole matrix.
  void restore_values(const std::vector<double>& values);

  const std::vector<size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<size_t> row_ptr_;
  std::vector<size_t> col_idx_;
  std::vector<double> values_;
  std::vector<ptrdiff_t> diag_pos_;
};

}  // namespace gnrfet::linalg
