#pragma once

#include "linalg/dense.hpp"

/// Hermitian eigensolver used for band-structure computation and for the
/// numerical mode-space reduction of the GNR Hamiltonian.
namespace gnrfet::linalg {

struct EigResult {
  /// Eigenvalues in ascending order.
  std::vector<double> values;
  /// Eigenvectors as columns of a unitary matrix, ordered like `values`.
  CMatrix vectors;
};

/// Full eigendecomposition of a Hermitian matrix via the cyclic complex
/// Jacobi method. The input is symmetrized internally; throws if the
/// anti-Hermitian part is large (> 1e-8 relative), which indicates misuse.
EigResult eigh(const CMatrix& a);

/// Eigenvalues only, of a real symmetric matrix (convenience wrapper).
std::vector<double> eigvals_symmetric(const DMatrix& a);

}  // namespace gnrfet::linalg
