#pragma once

#include <complex>
#include <stdexcept>
#include <vector>

/// Dense matrix/vector types for the quantum-transport kernels.
///
/// Matrices are row-major and sized at construction. The NEGF layer works
/// with complex blocks of dimension <= 2N (N = GNR index, <= 18), so all
/// operations here are simple O(n^3) kernels without blocking; they are not
/// the bottleneck of the pipeline (the energy loop is).
namespace gnrfet::linalg {

using cplx = std::complex<double>;

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  static Matrix identity(size_t n) {
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  /// Reshape to rows x cols and zero-fill, reusing the existing allocation
  /// when capacity allows. The RGF workspaces call this once per energy on
  /// long-lived scratch matrices, so the hot loop never touches the heap.
  void resize_zero(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, T{});
  }

  Matrix& operator+=(const Matrix& o) {
    check_same_shape(o);
    for (size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }
  Matrix& operator-=(const Matrix& o) {
    check_same_shape(o);
    for (size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }
  Matrix& operator*=(T s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, T s) { return a *= s; }
  friend Matrix operator*(T s, Matrix a) { return a *= s; }

  friend Matrix operator*(const Matrix& a, const Matrix& b) {
    if (a.cols_ != b.rows_) throw std::invalid_argument("Matrix multiply: shape mismatch");
    Matrix c(a.rows_, b.cols_);
    for (size_t i = 0; i < a.rows_; ++i) {
      for (size_t k = 0; k < a.cols_; ++k) {
        const T aik = a(i, k);
        if (aik == T{}) continue;
        const T* brow = &b.data_[k * b.cols_];
        T* crow = &c.data_[i * c.cols_];
        for (size_t j = 0; j < b.cols_; ++j) crow[j] += aik * brow[j];
      }
    }
    return c;
  }

  /// Conjugate transpose for complex T, plain transpose for real T.
  Matrix adjoint() const {
    Matrix m(cols_, rows_);
    for (size_t i = 0; i < rows_; ++i) {
      for (size_t j = 0; j < cols_; ++j) {
        if constexpr (std::is_same_v<T, cplx>) {
          m(j, i) = std::conj((*this)(i, j));
        } else {
          m(j, i) = (*this)(i, j);
        }
      }
    }
    return m;
  }

  T trace() const {
    T t{};
    const size_t n = std::min(rows_, cols_);
    for (size_t i = 0; i < n; ++i) t += (*this)(i, i);
    return t;
  }

  double max_abs() const {
    double m = 0.0;
    for (const auto& v : data_) m = std::max(m, std::abs(v));
    return m;
  }

 private:
  void check_same_shape(const Matrix& o) const {
    if (rows_ != o.rows_ || cols_ != o.cols_) {
      throw std::invalid_argument("Matrix: shape mismatch");
    }
  }
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<T> data_;
};

/// c = a * b written into caller-owned storage (allocation reused). The
/// accumulation runs in exactly the order of operator* above, so the two
/// are bit-identical; c must not alias a or b.
template <typename T>
void multiply_into(Matrix<T>& c, const Matrix<T>& a, const Matrix<T>& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("multiply_into: shape mismatch");
  c.resize_zero(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const T aik = a(i, k);
      if (aik == T{}) continue;
      for (size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
}

/// dst = adjoint(src) into caller-owned storage; dst must not alias src.
template <typename T>
void adjoint_into(Matrix<T>& dst, const Matrix<T>& src) {
  dst.resize_zero(src.cols(), src.rows());
  for (size_t i = 0; i < src.rows(); ++i) {
    for (size_t j = 0; j < src.cols(); ++j) {
      if constexpr (std::is_same_v<T, cplx>) {
        dst(j, i) = std::conj(src(i, j));
      } else {
        dst(j, i) = src(i, j);
      }
    }
  }
}

using CMatrix = Matrix<cplx>;
using DMatrix = Matrix<double>;

/// Non-template CMatrix overloads (preferred by overload resolution over
/// the templates above): cache-blocked kernels with the complex arithmetic
/// expanded to branch-free split-component form, so the inner loops
/// vectorize instead of calling the NaN-recovery complex multiply. For
/// finite operands they are bit-identical to the templates — the same
/// per-element accumulation order (ascending k, zero-row skip included) and
/// the exact product formula the compiler emits for finite std::complex
/// multiplies. Defined in dense.cpp.
void multiply_into(CMatrix& c, const CMatrix& a, const CMatrix& b);
void adjoint_into(CMatrix& dst, const CMatrix& src);

/// Frobenius norm.
double frobenius_norm(const CMatrix& m);
double frobenius_norm(const DMatrix& m);

/// Hermitian part (A + A^dagger)/2.
CMatrix hermitian_part(const CMatrix& a);

/// Real diagonal of a complex matrix.
std::vector<double> real_diagonal(const CMatrix& a);

}  // namespace gnrfet::linalg
