#include "linalg/pcg.hpp"

#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace gnrfet::linalg {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// Records the final iteration count once, on every exit path.
struct IterationRecorder {
  const PcgResult& result;
  ~IterationRecorder() {
    metrics::add(metrics::Counter::kPcgIterations, static_cast<uint64_t>(result.iterations));
    metrics::observe(metrics::Histogram::kPcgIterationsPerSolve,
                     static_cast<double>(result.iterations));
  }
};

}  // namespace

PcgResult pcg_solve(const SparseMatrix& a, const std::vector<double>& b,
                    std::vector<double>& x, const PcgOptions& opts) {
  trace::Span span("linalg", "pcg_solve");
  const size_t n = a.dim();
  if (b.size() != n) throw std::invalid_argument("pcg_solve: rhs size mismatch");
  if (x.size() != n) x.assign(n, 0.0);

  std::vector<double> inv_diag = a.diagonal();
  for (auto& d : inv_diag) d = (std::abs(d) > 1e-300) ? 1.0 / d : 1.0;

  std::vector<double> r(n), z(n), p(n), ap(n);
  a.multiply(x, ap);
  for (size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  const double b_norm = std::sqrt(std::max(dot(b, b), 1e-300));

  for (size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  p = z;
  double rz = dot(r, z);

  PcgResult result;
  const IterationRecorder recorder{result};
  for (size_t it = 0; it < opts.max_iterations; ++it) {
    const double r_norm = std::sqrt(dot(r, r));
    result.residual_norm = r_norm;
    result.iterations = it;
    if (r_norm <= opts.rel_tolerance * b_norm || r_norm <= opts.abs_tolerance) {
      result.converged = true;
      GNRFET_ENSURE("linalg", "finite-solution", contracts::all_finite(x),
                    "PCG converged to a solution containing NaN/inf");
      return result;
    }
    a.multiply(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // not SPD or breakdown
    const double alpha = rz / pap;
    for (size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    for (size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.residual_norm = std::sqrt(dot(r, r));
  return result;
}

}  // namespace gnrfet::linalg
