#include "linalg/pcg.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace gnrfet::linalg {

namespace {

/// Records the final iteration count once, on every exit path — both into
/// the global PCG histogram and into the per-preconditioner one, so the
/// trace report can show the Jacobi-vs-SSOR-vs-IC(0) iteration split.
struct IterationRecorder {
  const PcgResult& result;
  metrics::Histogram per_pc;
  ~IterationRecorder() {
    metrics::add(metrics::Counter::kPcgIterations, static_cast<uint64_t>(result.iterations));
    metrics::observe(metrics::Histogram::kPcgIterationsPerSolve,
                     static_cast<double>(result.iterations));
    metrics::observe(per_pc, static_cast<double>(result.iterations));
  }
};

metrics::Histogram histogram_for(const Preconditioner* pc) {
  if (pc == nullptr || std::strcmp(pc->name(), "jacobi") == 0) {
    return metrics::Histogram::kPcgIterationsJacobi;
  }
  if (std::strcmp(pc->name(), "ssor") == 0) return metrics::Histogram::kPcgIterationsSsor;
  if (std::strcmp(pc->name(), "mg") == 0) return metrics::Histogram::kPcgIterationsMg;
  return metrics::Histogram::kPcgIterationsIc0;
}

}  // namespace

PcgResult pcg_solve(const SparseMatrix& a, const std::vector<double>& b,
                    std::vector<double>& x, const PcgOptions& opts) {
  trace::Span span("linalg", "pcg_solve");
  const size_t n = a.dim();
  if (b.size() != n) throw std::invalid_argument("pcg_solve: rhs size mismatch");
  if (x.size() != n) x.assign(n, 0.0);
  const kernels::SumOrder order = opts.sum_order;

  // Callers without an explicit preconditioner get the historical per-call
  // Jacobi; its factor() reproduces the old inv_diag formula exactly.
  JacobiPreconditioner fallback;
  const Preconditioner* precond = opts.preconditioner;
  if (precond == nullptr) {
    fallback.factor(a);
    precond = &fallback;
  }

  PcgWorkspace local;
  PcgWorkspace& ws = opts.workspace != nullptr ? *opts.workspace : local;
  ws.r.resize(n);
  ws.z.resize(n);
  ws.ap.resize(n);

  a.multiply(x, ws.ap);
  for (size_t i = 0; i < n; ++i) ws.r[i] = b[i] - ws.ap[i];
  const double b_norm = std::sqrt(std::max(kernels::dot(b, b, order), 1e-300));

  precond->apply(ws.r, ws.z);
  ws.p = ws.z;
  double rz = kernels::dot(ws.r, ws.z, order);

  PcgResult result;
  const IterationRecorder recorder{result, histogram_for(opts.preconditioner)};
  for (size_t it = 0; it < opts.max_iterations; ++it) {
    const double r_norm = std::sqrt(kernels::dot(ws.r, ws.r, order));
    result.residual_norm = r_norm;
    result.iterations = it;
    if (r_norm <= opts.rel_tolerance * b_norm || r_norm <= opts.abs_tolerance) {
      result.converged = true;
      GNRFET_ENSURE("linalg", "finite-solution", contracts::all_finite(x),
                    "PCG converged to a solution containing NaN/inf");
      return result;
    }
    a.multiply(ws.p, ws.ap);
    const double pap = kernels::dot(ws.p, ws.ap, order);
    if (pap <= 0.0) break;  // not SPD or breakdown
    const double alpha = rz / pap;
    kernels::axpy(alpha, ws.p, x);
    kernels::axpy(-alpha, ws.ap, ws.r);
    precond->apply(ws.r, ws.z);
    const double rz_new = kernels::dot(ws.r, ws.z, order);
    const double beta = rz_new / rz;
    rz = rz_new;
    kernels::xpby(ws.z, beta, ws.p);
  }
  result.residual_norm = std::sqrt(kernels::dot(ws.r, ws.r, order));
  return result;
}

}  // namespace gnrfet::linalg
